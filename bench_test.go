// Package-level benchmarks: one testing.B benchmark per table and figure in
// the paper's evaluation. Each benchmark reports simulated kHz via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// datapoints. cmd/gsim-bench produces the full formatted tables.
//
// Benchmarks use the two smaller designs by default so the suite completes
// in CI time; run cmd/gsim-bench for the full four-design sweep.
package gsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/fleet"
	"gsim/internal/gen"
	"gsim/internal/harness"
	"gsim/internal/ir"
	"gsim/internal/obs"
	"gsim/internal/partition"
	"gsim/internal/rv"
	"gsim/internal/server"
)

// benchDesigns: the real RV32 core plus the rocket-scale synthetic profile.
func benchDesigns() []harness.Design {
	return []harness.Design{
		harness.StuCore(),
		harness.Synthetic(gen.RocketLike()),
	}
}

// runSim measures one configuration under b, reporting simulated kHz.
func runSim(b *testing.B, d harness.Design, workload string, cfg core.Config) {
	b.Helper()
	sys, drive, err := harness.BuildSystemForDiag(d, workload, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	for c := 0; c < 20; c++ {
		drive(sys.Sim, c)
		sys.Sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive(sys.Sim, 20+i)
		sys.Sim.Step()
	}
	b.StopTimer()
	khz := float64(b.N) / b.Elapsed().Seconds() / 1000
	b.ReportMetric(khz, "simkHz")
	b.ReportMetric(sys.Sim.Stats().ActivityFactor(), "af")
}

// BenchmarkTable1 regenerates Table I: single-thread full-cycle (Verilator
// model) speed per design.
func BenchmarkTable1(b *testing.B) {
	for _, d := range benchDesigns() {
		b.Run(d.Name, func(b *testing.B) {
			runSim(b, d, harness.WorkloadLinux, core.Verilator())
		})
	}
}

// BenchmarkFig6 regenerates the overall-performance figure: every simulator
// on design × workload.
func BenchmarkFig6(b *testing.B) {
	for _, d := range benchDesigns() {
		for _, wl := range []string{harness.WorkloadLinux, harness.WorkloadCoreMark} {
			for _, cfg := range harness.Fig6Configs() {
				b.Run(fmt.Sprintf("%s/%s/%s", d.Name, wl, cfg.Name), func(b *testing.B) {
					runSim(b, d, wl, cfg)
				})
			}
		}
	}
}

// evalModes spans both evaluation paths for head-to-head benchmarks.
var evalModes = []engine.EvalMode{engine.EvalKernel, engine.EvalInterp}

// BenchmarkGSIMMT sweeps the multi-threaded essential-signal engine over
// thread counts and both evaluation modes, mirroring the Fig. 6 thread-sweep
// shape: like Verilator-MT, small designs pay the barrier cost and large
// designs amortize it. The kernel/interp axis shows how much of each
// datapoint is instruction dispatch.
func BenchmarkGSIMMT(b *testing.B) {
	for _, d := range benchDesigns() {
		for _, threads := range []int{1, 2, 4, 8} {
			for _, mode := range evalModes {
				cfg := core.GSIMMT(threads)
				cfg.Eval = mode
				b.Run(fmt.Sprintf("%s/%dT/%s", d.Name, threads, mode), func(b *testing.B) {
					runSim(b, d, harness.WorkloadLinux, cfg)
				})
			}
		}
	}
}

// BenchmarkKernelVsInterp is the kernel pipeline's headline head-to-head:
// every testdata FIRRTL design plus the stucore (real RV32 core) and
// rocket-scale profiles, under the full-cycle (verilator) and
// essential-signal (gsim) presets, across all three evaluation modes —
// the fused kernel pipeline (superinstructions + width classes), the PR-2
// per-instruction kernel baseline (kernel-nofuse), and the switch-dispatch
// interpreter — over the same compiled program, with random stimulus.
// ns/cycle is reported per sub-benchmark so the fusion win is measured, not
// asserted: compare the kernel and kernel-nofuse rows of one design/preset.
func BenchmarkKernelVsInterp(b *testing.B) {
	files, err := filepath.Glob("testdata/*.fir")
	if err != nil || len(files) == 0 {
		b.Fatalf("no testdata designs: %v", err)
	}
	type design struct {
		name  string
		graph *ir.Graph
	}
	var designs []design
	for _, f := range files {
		g, err := firrtl.LoadFile(f)
		if err != nil {
			b.Fatal(err)
		}
		designs = append(designs, design{strings.TrimSuffix(filepath.Base(f), ".fir"), g})
	}
	for _, d := range []harness.Design{harness.StuCore(), harness.Synthetic(gen.RocketLike())} {
		g, _, err := d.Build(harness.WorkloadLinux)
		if err != nil {
			b.Fatal(err)
		}
		designs = append(designs, design{d.Name, g})
	}
	kernelModes := []engine.EvalMode{engine.EvalKernel, engine.EvalKernelNoFuse, engine.EvalInterp}
	for _, d := range designs {
		g := d.graph
		for _, preset := range []func() core.Config{core.Verilator, core.GSIM} {
			for _, mode := range kernelModes {
				cfg := preset()
				cfg.Eval = mode
				b.Run(fmt.Sprintf("%s/%s/%s", d.name, cfg.Name, mode), func(b *testing.B) {
					benchCycles(b, g, cfg)
				})
			}
		}
	}
}

// benchCycles builds g under cfg and times Step with random stimulus,
// reporting ns/cycle.
func benchCycles(b *testing.B, g *ir.Graph, cfg core.Config) {
	b.Helper()
	sys, err := core.Build(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	var inputs []*ir.Node
	for _, n := range sys.Graph.Nodes {
		if n.Kind == ir.KindInput {
			inputs = append(inputs, n)
		}
	}
	rng := rand.New(rand.NewSource(1))
	poke := func() {
		for _, in := range inputs {
			sys.Sim.Poke(in.ID, bitvec.FromUint64(in.Width, rng.Uint64()))
		}
	}
	for c := 0; c < 20; c++ {
		poke()
		sys.Sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poke()
		sys.Sim.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cycle")
}

// BenchmarkSimplify measures what the generated algebraic rule set buys at
// runtime: the same design under the essential-signal preset with the rules
// enabled (the default) and disabled, same stimulus. The delta is the work
// the rewrites removed before the kernel compiler ever saw the graph.
func BenchmarkSimplify(b *testing.B) {
	for _, d := range benchDesigns() {
		for _, noalg := range []bool{false, true} {
			cfg := core.GSIM()
			if noalg {
				cfg.Name = "gsim-noalg"
				cfg.Opt.NoAlgebraic = true
			}
			b.Run(fmt.Sprintf("%s/%s", d.Name, cfg.Name), func(b *testing.B) {
				runSim(b, d, harness.WorkloadCoreMark, cfg)
			})
		}
	}
}

// muxChainFIR builds a FIRRTL design dominated by registered priority-mux
// cascades: each lane is one compare feeding a deep chain of muxes whose
// 1-bit selectors are shared bit-extracts, so the compiled chains are wall
// to wall mux-mux-mux and cmp-mux-mux triple-fusion windows.
func muxChainFIR(lanes, depth int) string {
	var sb strings.Builder
	sb.WriteString("circuit MuxChain :\n  module MuxChain :\n")
	sb.WriteString("    input clock : Clock\n    input reset : UInt<1>\n")
	sb.WriteString("    input sel : UInt<8>\n    input x : UInt<16>\n    input y : UInt<16>\n")
	for l := 0; l < lanes; l++ {
		fmt.Fprintf(&sb, "    output out%d : UInt<16>\n", l)
	}
	for d := 0; d < 8; d++ {
		fmt.Fprintf(&sb, "    node s%d = bits(sel, %d, %d)\n", d, d, d)
	}
	for l := 0; l < lanes; l++ {
		fmt.Fprintf(&sb, "    reg r%d : UInt<16>, clock with :\n      reset => (reset, UInt<16>(\"h0\"))\n", l)
		fmt.Fprintf(&sb, "    node c%d = lt(x, UInt<16>(%d))\n", l, 17+l*13)
		fmt.Fprintf(&sb, "    node m%d_0 = mux(c%d, x, y)\n", l, l)
		for d := 1; d < depth; d++ {
			fmt.Fprintf(&sb, "    node m%d_%d = mux(s%d, m%d_%d, r%d)\n", l, d, (l+d)%8, l, d-1, l)
		}
		fmt.Fprintf(&sb, "    r%d <= m%d_%d\n", l, l, depth-1)
		fmt.Fprintf(&sb, "    out%d <= r%d\n", l, l)
	}
	return sb.String()
}

// BenchmarkTripleFusion is the three-instruction superinstructions' own
// datapoint: the mux-cascade design above, fused kernel vs the
// per-instruction kernel baseline. On this shape most of the fused closures
// come from the triple rules, so the kernel/kernel-nofuse gap is dominated
// by the three-wide windows rather than the pair idioms.
func BenchmarkTripleFusion(b *testing.B) {
	g, err := firrtl.Load(muxChainFIR(16, 12))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []engine.EvalMode{engine.EvalKernel, engine.EvalKernelNoFuse} {
		cfg := core.GSIM()
		cfg.Eval = mode
		b.Run(mode.String(), func(b *testing.B) {
			benchCycles(b, g, cfg)
		})
	}
}

// BenchmarkFig7 regenerates the SPEC-checkpoint study: GSIM vs Verilator on
// per-checkpoint stimulus segments.
func BenchmarkFig7(b *testing.B) {
	p := gen.RocketLike()
	d := harness.Synthetic(p)
	for i, name := range harness.CheckpointNames[:4] {
		seed := int64(1000 + i*17)
		for _, cfg := range []core.Config{core.Verilator(), core.GSIM()} {
			b.Run(fmt.Sprintf("%s/%s", name, cfg.Name), func(b *testing.B) {
				sys, _, err := harness.BuildSystemForDiag(d, harness.WorkloadLinux, cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Close()
				drive := harness.CheckpointDriver(p, sys, seed)
				for c := 0; c < 20; c++ {
					drive(sys.Sim, c)
					sys.Sim.Step()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					drive(sys.Sim, 20+i)
					sys.Sim.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1000, "simkHz")
			})
		}
	}
}

// BenchmarkFig8 regenerates the per-technique breakdown on the rocket-scale
// design: each sub-benchmark is one cumulative stage.
func BenchmarkFig8(b *testing.B) {
	d := harness.Synthetic(gen.RocketLike())
	for _, st := range harness.Fig8StagesForBench() {
		cfg := st.Cfg()
		cfg.Name = st.Name
		b.Run(st.Name, func(b *testing.B) {
			runSim(b, d, harness.WorkloadCoreMark, cfg)
		})
	}
}

// BenchmarkFig9 regenerates the supernode-size sweep.
func BenchmarkFig9(b *testing.B) {
	d := harness.Synthetic(gen.RocketLike())
	for _, size := range []int{1, 4, 8, 16, 32, 64, 128, 256, 400} {
		cfg := core.GSIM()
		cfg.MaxSupernode = size
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			runSim(b, d, harness.WorkloadCoreMark, cfg)
		})
	}
}

// BenchmarkTable3 regenerates the partitioning-algorithm comparison.
func BenchmarkTable3(b *testing.B) {
	d := harness.Synthetic(gen.RocketLike())
	for _, kind := range []partition.Kind{partition.None, partition.Kernighan, partition.MFFC, partition.Enhanced} {
		cfg := core.Config{
			Name:      "part-" + kind.String(),
			Engine:    core.EngineActivity,
			Partition: kind,
			Activity:  engine.ActivityConfig{Activation: engine.ActBranch},
		}
		b.Run(kind.String(), func(b *testing.B) {
			runSim(b, d, harness.WorkloadCoreMark, cfg)
		})
	}
}

// BenchmarkTable4 regenerates the resource comparison: the measured quantity
// is emission (build) time; code/data sizes are reported as metrics.
func BenchmarkTable4(b *testing.B) {
	for _, d := range benchDesigns() {
		for _, cfg := range []core.Config{core.Verilator(), core.Essent(), core.Arcilator(), core.GSIM()} {
			b.Run(fmt.Sprintf("%s/%s", d.Name, cfg.Name), func(b *testing.B) {
				g, _, err := d.Build(harness.WorkloadLinux)
				if err != nil {
					b.Fatal(err)
				}
				var code, data int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys, err := core.Build(g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					code, data = sys.Prog.CodeBytes(), sys.Prog.DataBytes()
					sys.Close()
				}
				b.StopTimer()
				b.ReportMetric(float64(code), "codeB")
				b.ReportMetric(float64(data), "dataB")
			})
		}
	}
}

// BenchmarkMetricsOverhead pins the observability tax on the step hot loop:
// the same compiled design stepped bare and with an engine metrics bundle
// attached (stats deltas fold into process counters on the amortized flush
// schedule). The bench gate holds the instrumented row's regression bound,
// and the issue's acceptance bar is <2% between the two rows. The
// rocket-scale profile keeps each run long enough for the fixed-benchtime
// CI gate to resolve percent-level deltas.
func BenchmarkMetricsOverhead(b *testing.B) {
	d := harness.Synthetic(gen.RocketLike())
	g, _, err := d.Build(harness.WorkloadCoreMark)
	if err != nil {
		b.Fatal(err)
	}
	for _, instrumented := range []bool{false, true} {
		name := "bare"
		if instrumented {
			name = "instrumented"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := core.Build(g, core.GSIM())
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if instrumented {
				em := engine.NewMetrics(obs.NewRegistry())
				a, ok := sys.Sim.(interface{ AttachObs(*engine.Metrics) })
				if !ok {
					b.Fatalf("%T does not support AttachObs", sys.Sim)
				}
				a.AttachObs(em)
			}
			for c := 0; c < 20; c++ {
				sys.Sim.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Sim.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cycle")
		})
	}
}

// BenchmarkInterpreter measures raw interpreter throughput (instructions per
// second) on the RV core — the substrate's own datapoint.
func BenchmarkInterpreter(b *testing.B) {
	prog, err := rv.Assemble(rv.CoreMarkLike)
	if err != nil {
		b.Fatal(err)
	}
	c, err := rv.BuildCore(prog, rv.DefaultCoreConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.Build(c.Graph, core.Verilator())
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Sim.Step()
	}
	b.StopTimer()
	st := sys.Sim.Stats()
	b.ReportMetric(float64(st.InstrsExecuted)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkServerSessions measures the simulation service: warm-cache
// session creation rate (the compiled-design cache makes a create a map hit
// plus one engine instantiation) and cache-hit step throughput with several
// concurrent sessions multiplexed over one shared compile. The stucore
// profile keeps the numbers on the same design family as the engine rows.
func BenchmarkServerSessions(b *testing.B) {
	d := harness.Synthetic(gen.StuCoreLike())
	g, _, err := d.Build(harness.WorkloadCoreMark)
	if err != nil {
		b.Fatal(err)
	}
	key := d.Name + "/bench"
	spec := server.SessionSpec{}

	b.Run("create", func(b *testing.B) {
		mgr := server.NewManager()
		defer mgr.Drain(context.Background())
		// Pay the one cold compile outside the timer; every timed create
		// shares it.
		s, err := mgr.CreateSessionGraph(g, key, spec)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := mgr.CreateSessionGraph(g, key, spec)
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("step/%dsessions", n), func(b *testing.B) {
			mgr := server.NewManager()
			defer mgr.Drain(context.Background())
			sessions := make([]*server.Session, n)
			for i := range sessions {
				s, err := mgr.CreateSessionGraph(g, key, spec)
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			per := b.N/n + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, s := range sessions {
				wg.Add(1)
				go func(s *server.Session) {
					defer wg.Done()
					for c := 0; c < per; c += 10 {
						if _, err := s.Apply(context.Background(), []server.Op{{Op: "step", N: 10}}); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(n*per)/b.Elapsed().Seconds()/1000, "simkHz")
		})
	}
}

// BenchmarkGangThroughput measures batched-lane execution through the
// service: one cache-hit gang session at 1/2/4/8 lanes stepping through the
// batched-op path, reporting aggregate lane-cycles per second. The scalar
// full-cycle engine (verilator preset) is the model a gang lane mirrors
// bit-exactly, so the 1-lane row is the baseline the wider gangs amortize
// instruction dispatch against — on one core, 8 lanes should deliver well
// over 2x the aggregate of 8 independent scalar sessions.
func BenchmarkGangThroughput(b *testing.B) {
	d := harness.Synthetic(gen.StuCoreLike())
	g, _, err := d.Build(harness.WorkloadCoreMark)
	if err != nil {
		b.Fatal(err)
	}
	key := d.Name + "/gangbench"
	spec := server.SessionSpec{Engine: "verilator"}
	mgr := server.NewManager()
	defer mgr.Drain(context.Background())
	// Pay the one cold compile up front; every lane count shares it.
	warm, err := mgr.CreateSessionGraph(g, key, spec)
	if err != nil {
		b.Fatal(err)
	}
	warm.Close()

	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dlanes", lanes), func(b *testing.B) {
			gspec := spec
			gspec.Lanes = lanes
			s, err := mgr.CreateSessionGraph(g, key, gspec)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if !s.CacheHit {
				b.Fatal("gang session missed the warm compile cache")
			}
			const batch = 64
			b.ResetTimer()
			steps := 0
			for c := 0; c < b.N; c += batch {
				if _, err := s.Apply(context.Background(), []server.Op{{Op: "step", N: batch}}); err != nil {
					b.Fatal(err)
				}
				steps += batch
			}
			b.StopTimer()
			b.ReportMetric(float64(steps*lanes)/b.Elapsed().Seconds()/1000, "simkHz")
		})
	}
}

// BenchmarkRouterHop measures the fleet router's proxy overhead: the same
// single-step op batch issued over HTTP directly against a replica versus
// through a gsim-router in front of it. The delta is the cost of one hop —
// session-table lookup, migration-gate acquire, and the second HTTP leg.
func BenchmarkRouterHop(b *testing.B) {
	src, err := os.ReadFile("testdata/counter.fir")
	if err != nil {
		b.Fatal(err)
	}
	stepOps := server.OpsRequest{Ops: []server.Op{{Op: "step", N: 1}}}

	run := func(b *testing.B, base, sid string) {
		url := base + "/v1/sessions/" + sid + "/ops"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if status := benchPostJSON(b, url, stepOps, nil); status != 200 {
				b.Fatalf("ops: status %d", status)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}

	b.Run("direct", func(b *testing.B) {
		mgr := server.NewManager()
		defer mgr.Drain(context.Background())
		ts := httptest.NewServer(mgr.Handler())
		defer ts.Close()
		var created server.CreateResponse
		if status := benchPostJSON(b, ts.URL+"/v1/sessions", server.CreateRequest{FIRRTL: string(src)}, &created); status != 201 {
			b.Fatalf("create: status %d", status)
		}
		run(b, ts.URL, created.Session)
	})

	b.Run("routed", func(b *testing.B) {
		mgr := server.NewManager()
		defer mgr.Drain(context.Background())
		ts := httptest.NewServer(mgr.Handler())
		defer ts.Close()
		rt := fleet.NewRouter(fleet.Config{})
		defer rt.Close()
		rt.Register("r1", ts.URL)
		front := httptest.NewServer(rt.Handler())
		defer front.Close()
		var created server.CreateResponse
		if status := benchPostJSON(b, front.URL+"/v1/sessions", server.CreateRequest{FIRRTL: string(src)}, &created); status != 201 {
			b.Fatalf("create: status %d", status)
		}
		run(b, front.URL, created.Session)
	})
}

// BenchmarkMigration measures live-migration throughput in sessions/s: a
// fleet of two replicas, K sessions homed on one, DrainReplica moves them
// all (snapshot, reroute, recreate, restore, retarget) to the other. Between
// timed iterations the drained slot is recycled with a fresh replica process
// so the next drain has somewhere to go.
func BenchmarkMigration(b *testing.B) {
	src, err := os.ReadFile("testdata/counter.fir")
	if err != nil {
		b.Fatal(err)
	}
	const perDrain = 8

	rt := fleet.NewRouter(fleet.Config{})
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	mgrs := map[string]*server.Manager{}
	servers := map[string]*httptest.Server{}
	newReplica := func(name string) {
		if old, ok := servers[name]; ok {
			_ = mgrs[name].Drain(context.Background())
			old.Close()
		}
		mgr := server.NewManager()
		mgrs[name] = mgr
		servers[name] = httptest.NewServer(mgr.Handler())
		rt.Register(name, servers[name].URL)
	}
	newReplica("a")
	newReplica("b")
	defer func() {
		for name, ts := range servers {
			_ = mgrs[name].Drain(context.Background())
			ts.Close()
		}
	}()

	// All sessions share one design, so affinity homes them together; track
	// that home as it bounces between the two slots.
	var created server.CreateResponse
	if status := benchPostJSON(b, front.URL+"/v1/sessions", server.CreateRequest{FIRRTL: string(src)}, &created); status != 201 {
		b.Fatalf("create: status %d", status)
	}
	for i := 1; i < perDrain; i++ {
		if status := benchPostJSON(b, front.URL+"/v1/sessions", server.CreateRequest{FIRRTL: string(src)}, nil); status != 201 {
			b.Fatalf("create %d: status %d", i, status)
		}
	}
	home := "a"
	if mgrs["b"].SessionCount() > 0 {
		home = "b"
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		migrated, failed, err := rt.DrainReplica(home)
		if err != nil || migrated != perDrain || len(failed) != 0 {
			b.Fatalf("drain %s: migrated=%d failed=%v err=%v", home, migrated, failed, err)
		}
		b.StopTimer()
		newReplica(home) // recycle the drained slot outside the timer
		if home == "a" {
			home = "b"
		} else {
			home = "a"
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*perDrain)/b.Elapsed().Seconds(), "sessions/s")
}

// benchPostJSON is a minimal JSON POST helper for the HTTP benches.
func benchPostJSON(b *testing.B, url string, body, out any) int {
	b.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}
