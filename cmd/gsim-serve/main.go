// Command gsim-serve runs the simulation service: a long-lived HTTP server
// multiplexing many concurrent simulator sessions over a compiled-design
// cache, so one expensive compile (graph passes, partitioning, kernel
// fusion) serves any number of sessions and survives across them.
//
// Usage:
//
//	gsim-serve [-addr host:port] [-drain-timeout 10s]
//
// API (JSON; see internal/server):
//
//	POST   /v1/sessions               {"firrtl": "...", "engine": "gsim", "eval": "kernel",
//	                                   "threads": 0, "coarsen": false}
//	GET    /v1/sessions               list live sessions
//	POST   /v1/sessions/{id}/ops      {"ops": [{"op":"poke","name":"en","value":"1"},
//	                                           {"op":"step","n":100},
//	                                           {"op":"peek","name":"out"}]}
//	POST   /v1/sessions/{id}/snapshot serialize complete state (base64)
//	POST   /v1/sessions/{id}/restore  {"snapshot": "<base64>"}
//	DELETE /v1/sessions/{id}          close a session
//	GET    /v1/stats                  sessions, designs, cache hits/misses
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting new
// connections and sessions, lets in-flight requests finish (bounded by
// -drain-timeout), closes every session's engine, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsim/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "maximum time to wait for in-flight requests on shutdown")
	flag.Parse()

	mgr := server.NewManager()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsim-serve:", err)
		os.Exit(1)
	}
	// The resolved address line is machine-readable on purpose: the smoke
	// harness starts the binary with -addr 127.0.0.1:0 and scrapes the port.
	fmt.Printf("gsim-serve listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: mgr.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("gsim-serve: %v, draining (%d sessions)\n", s, mgr.SessionCount())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gsim-serve: shutdown:", err)
		}
		cancel()
		mgr.Drain()
		hits, misses, designs := mgr.CacheStats()
		fmt.Printf("gsim-serve: drained; compile cache served %d hits / %d misses over %d designs\n", hits, misses, designs)
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "gsim-serve:", err)
			os.Exit(1)
		}
	}
}
