// Command gsim-serve runs the simulation service: a long-lived HTTP server
// multiplexing many concurrent simulator sessions over a compiled-design
// cache, so one expensive compile (graph passes, partitioning, kernel
// fusion) serves any number of sessions and survives across them.
//
// Usage:
//
//	gsim-serve [-addr host:port] [-drain-timeout 10s]
//	           [-max-sessions N] [-max-inflight N] [-max-step-batch N]
//	           [-op-timeout D] [-session-idle-timeout D] [-cache-budget-mb N]
//	           [-max-body-bytes N]
//	           [-read-header-timeout D] [-read-timeout D] [-http-idle-timeout D]
//	           [-router URL] [-advertise URL] [-name NAME]
//	           [-log-format text|json] [-log-level debug|info|warn|error] [-pprof]
//
// API (JSON; see internal/server):
//
//	POST   /v1/sessions               {"firrtl": "...", "engine": "gsim", "eval": "kernel",
//	                                   "threads": 0, "coarsen": false,
//	                                   "lanes": 8, "trace_lanes": [0,3]}
//	GET    /v1/sessions               list live sessions
//	POST   /v1/sessions/{id}/ops      {"ops": [{"op":"poke","name":"en","value":"1","lane":2},
//	                                           {"op":"step","n":100},
//	                                           {"op":"park","lane":2},
//	                                           {"op":"peek","name":"out","lane":2}]}
//	GET    /v1/sessions/{id}/lanes    per-lane liveness, cycles, trace status
//	GET    /v1/sessions/{id}/vcd      a traced lane's waveform (?lane=N)
//	POST   /v1/sessions/{id}/snapshot serialize complete state (base64; ?lane=N on gangs)
//	POST   /v1/sessions/{id}/restore  {"snapshot": "<base64>"} (?lane=N on gangs)
//	DELETE /v1/sessions/{id}          close a session
//	GET    /v1/stats                  sessions, designs, cache + admission counters
//	GET    /metrics                   Prometheus text exposition (all layers)
//	GET    /healthz                   liveness
//	GET    /readyz                    readiness (503 the moment a drain begins)
//	POST   /admin/drain               begin a migration-window drain (refuse new
//	                                  sessions, keep serving existing ones)
//
// "lanes": K > 1 opens a gang session: K independent stimulus lanes batched
// through one compiled design (one instruction dispatch drives all lanes).
// Ops address lanes via "lane"; step advances every live lane in lockstep;
// park/wake freeze and resume individual lanes.
//
// Admission refusals return 429/503 with a Retry-After header; a session
// poisoned by an internal panic returns 500 and must be closed and
// re-created. On SIGINT/SIGTERM the server drains gracefully: readiness goes
// 503, new sessions are refused, in-flight op batches are canceled at their
// next chunk boundary, every session's engine is closed (all bounded by
// -drain-timeout), and the process exits.
//
// Fleet mode: -router points at a gsim-router (see cmd/gsim-router) and
// -advertise is the URL other processes reach this replica at. The replica
// self-registers, heartbeats, and on SIGINT/SIGTERM retires gracefully:
// readiness flips to 503 immediately, the router is asked to live-migrate
// every session away (state, stats, and waveforms continue bit-identically
// on their new homes), and only then does the local drain reap what is left.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsim/internal/fleet"
	"gsim/internal/obs"
	"gsim/internal/server"
)

// withPprof mounts the net/http/pprof profiling handlers beside the API.
// Shared by gsim-serve and gsim-router (via a copy) so -pprof means the same
// thing on both binaries.
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "maximum time to wait for in-flight requests and session closes on shutdown")

	// Admission control and resource governance (0 = unlimited/disabled).
	maxSessions := flag.Int("max-sessions", 0, "maximum live sessions (503 beyond)")
	maxInflight := flag.Int("max-inflight", 0, "maximum concurrently executing op batches (429 beyond)")
	maxStepBatch := flag.Int("max-step-batch", 0, "maximum step cycles one ops batch may request (429 beyond)")
	opTimeout := flag.Duration("op-timeout", 0, "per-request deadline for an ops batch (aborts at the next step chunk)")
	idleTimeout := flag.Duration("session-idle-timeout", 0, "close sessions with no operations for this long")
	cacheBudgetMB := flag.Int64("cache-budget-mb", 0, "compile-cache byte budget in MiB; cold designs evict LRU-first, designs with live sessions are pinned")
	maxBodyBytes := flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "maximum HTTP request body size (413 beyond; negative = unlimited)")

	// HTTP hygiene: slow-client (slowloris) protection. These bound how long
	// a connection may dribble its headers/body, not how long an op runs —
	// long step batches are governed by -op-timeout instead, so there is
	// deliberately no WriteTimeout.
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "maximum time to read a request's headers")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "maximum time to read a full request including body")
	httpIdleTimeout := flag.Duration("http-idle-timeout", 2*time.Minute, "keep-alive timeout for idle connections")

	// Fleet mode: register with a gsim-router so sessions are placed here by
	// design affinity and migrated away on graceful termination.
	routerURL := flag.String("router", "", "gsim-router base URL to register with (empty = standalone)")
	advertise := flag.String("advertise", "", "base URL other processes reach this replica at (default http://<resolved addr>)")
	name := flag.String("name", "", "replica name in the fleet registry (default the advertised address)")

	// Observability: structured logging, Prometheus metrics, profiling.
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	mgr := server.NewManagerLimits(server.Limits{
		MaxSessions:      *maxSessions,
		MaxInFlightOps:   *maxInflight,
		MaxStepsPerBatch: *maxStepBatch,
		OpTimeout:        *opTimeout,
		IdleTimeout:      *idleTimeout,
		CacheBudgetBytes: *cacheBudgetMB << 20,
		MaxBodyBytes:     *maxBodyBytes,
	})
	mgr.SetLogger(obs.NewLogger(os.Stderr, *logFormat, *logLevel))
	mgr.InitObs(obs.Default)
	obs.RegisterProcessMetrics(obs.Default)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsim-serve:", err)
		os.Exit(1)
	}
	// The resolved address line is machine-readable on purpose: the smoke
	// harness starts the binary with -addr 127.0.0.1:0 and scrapes the port.
	fmt.Printf("gsim-serve listening on http://%s\n", ln.Addr())

	handler := mgr.Handler()
	if *enablePprof {
		handler = withPprof(handler)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *httpIdleTimeout,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var agent *fleet.Agent
	if *routerURL != "" {
		self := *advertise
		if self == "" {
			self = fmt.Sprintf("http://%s", ln.Addr())
		}
		replicaName := *name
		if replicaName == "" {
			replicaName = self
		}
		agent = &fleet.Agent{
			RouterURL: *routerURL,
			Name:      replicaName,
			SelfURL:   self,
			Manager:   mgr,
		}
		regCtx, regCancel := context.WithTimeout(context.Background(), time.Minute)
		if err := agent.Start(regCtx); err != nil {
			fmt.Fprintln(os.Stderr, "gsim-serve: fleet registration:", err)
		} else {
			fmt.Printf("gsim-serve: registered with router %s as %s\n", *routerURL, replicaName)
		}
		regCancel()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("gsim-serve: %v, draining (%d sessions)\n", s, mgr.SessionCount())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if agent != nil {
			// Graceful retirement: the router live-migrates every session
			// homed here before the local drain destroys anything.
			if err := agent.Retire(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "gsim-serve: retire:", err)
			} else {
				fmt.Println("gsim-serve: all sessions migrated away")
			}
			agent.Stop()
		}
		// Drain sessions first (force-cancels in-flight chunked ops so their
		// HTTP requests finish), then shut the listener down within the same
		// deadline.
		if err := mgr.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gsim-serve: drain:", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gsim-serve: shutdown:", err)
		}
		cancel()
		cs := mgr.CacheStats()
		fmt.Printf("gsim-serve: drained; compile cache served %d hits / %d misses over %d designs\n", cs.Hits, cs.Misses, cs.Designs)
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "gsim-serve:", err)
			os.Exit(1)
		}
	}
}
