// Command rulegen compiles the declarative rewrite-rule tables in
// internal/emit/rules into the exhaustive Go matchers the kernel compiler
// and the passes pipeline run in production: internal/emit/fuse_gen.go
// (superinstruction fusion) and internal/passes/simplify_gen.go (algebraic
// simplification).
//
// It is wired through `go generate ./internal/emit/...` (the directive
// lives in the rules package, so the default output paths are relative to
// that directory). CI regenerates and fails on any diff, and the rules test
// suite compares the committed files against fresh generator output, so the
// generated matchers can never drift from the tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"gsim/internal/emit/rules"
)

func main() {
	fuseOut := flag.String("fuse", "../fuse_gen.go", "output path for the fusion matcher")
	simplifyOut := flag.String("simplify", "../../passes/simplify_gen.go", "output path for the algebraic rewriter")
	flag.Parse()
	for _, out := range []struct {
		path string
		gen  func() ([]byte, error)
	}{
		{*fuseOut, rules.GenerateFuse},
		{*simplifyOut, rules.GenerateSimplify},
	} {
		src, err := out.gen()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out.path, src, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		fmt.Println("rulegen: wrote", out.path)
	}
}
