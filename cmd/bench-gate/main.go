// Command bench-gate turns `go test -bench` output into the machine-readable
// benchmark trajectory (BENCH.json) and gates CI on it: parse converts raw
// benchmark text into structured rows, compare diffs a fresh BENCH.json
// against the committed BENCH_baseline.json and fails on a throughput
// regression.
//
// Usage:
//
//	go test -bench '...' -benchtime 200x -run '^$' . | bench-gate -parse -out BENCH.json
//	bench-gate -compare -baseline BENCH_baseline.json -current BENCH.json [-threshold 0.15]
//
// Because CI runners and developer machines differ in absolute speed, compare
// normalizes by default: every matched benchmark's throughput ratio
// (current/baseline) is divided by the median ratio across all matched rows,
// which cancels the machine-speed factor and leaves only per-benchmark
// shifts. A row whose normalized ratio drops below 1-threshold fails the
// gate. -raw compares absolute throughputs instead (for same-machine runs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Row is one benchmark datapoint of the trajectory.
type Row struct {
	Name    string  `json:"name"`              // full sub-benchmark name, -cpu suffix stripped
	Design  string  `json:"design,omitempty"`  // stucore, rocket-like, ... when derivable
	Engine  string  `json:"engine,omitempty"`  // gsim, verilator, gsim-mt, ...
	Eval    string  `json:"eval,omitempty"`    // kernel, kernel-nofuse, interp
	Threads int     `json:"threads,omitempty"` // worker count (1 when single-threaded)
	NsOp    float64 `json:"ns_op,omitempty"`   // wall ns per benchmark op
	KHz     float64 `json:"khz,omitempty"`     // simulated kHz (throughput)
}

// File is the BENCH.json schema.
type File struct {
	Go   string `json:"go"`
	Rows []Row  `json:"rows"`
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` output (stdin or -in) into BENCH.json")
	compare := flag.Bool("compare", false, "compare -current against -baseline and gate on regressions")
	in := flag.String("in", "", "input file for -parse (default stdin)")
	out := flag.String("out", "BENCH.json", "output file for -parse")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline for -compare")
	current := flag.String("current", "BENCH.json", "fresh results for -compare")
	threshold := flag.Float64("threshold", 0.15, "fail when normalized throughput drops more than this fraction")
	raw := flag.Bool("raw", false, "compare absolute throughputs (skip median normalization)")
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(*in, *out); err != nil {
			fatal(err)
		}
	case *compare:
		ok, err := runCompare(*baseline, *current, *threshold, *raw)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "bench-gate: need -parse or -compare")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-gate:", err)
	os.Exit(1)
}

// benchLine matches one benchmark result line:
//
//	BenchmarkFoo/sub/parts-8   200   51234 ns/op   19.5 ns/cycle   321 simkHz
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func runParse(inPath, outPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file := File{Go: runtime.Version()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		row := Row{Name: stripCPUSuffix(m[1])}
		// Metric pairs: value unit, value unit, ...
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				row.NsOp = val
			case "simkHz":
				row.KHz = val
			case "ns/cycle":
				if val > 0 && row.KHz == 0 {
					row.KHz = 1e6 / val // 1e9 ns/s / (ns/cycle) = Hz; /1e3 = kHz
				}
			}
		}
		if row.KHz == 0 && row.NsOp > 0 {
			row.KHz = 1e6 / row.NsOp // benchmarks step once per op
		}
		deriveFields(&row)
		file.Rows = append(file.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(file.Rows) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	// Benchmarks run with -count N for noise rejection: keep each name's
	// best throughput (the run least disturbed by the machine).
	best := map[string]int{}
	var dedup []Row
	for _, r := range file.Rows {
		if i, ok := best[r.Name]; ok {
			if r.KHz > dedup[i].KHz {
				dedup[i] = r
			}
			continue
		}
		best[r.Name] = len(dedup)
		dedup = append(dedup, r)
	}
	file.Rows = dedup
	sort.Slice(file.Rows, func(i, j int) bool { return file.Rows[i].Name < file.Rows[j].Name })
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-gate: wrote %d rows to %s\n", len(file.Rows), outPath)
	return nil
}

// stripCPUSuffix removes the trailing -GOMAXPROCS go test appends.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// deriveFields fills the structured columns from the benchmark name shapes
// this repository emits:
//
//	BenchmarkKernelVsInterp/<design>/<engine>/<eval>
//	BenchmarkGSIMMT/<design>/<N>T/<eval>
var threadsPart = regexp.MustCompile(`^(\d+)T$`)

func deriveFields(r *Row) {
	parts := strings.Split(r.Name, "/")
	switch {
	case strings.HasPrefix(parts[0], "BenchmarkKernelVsInterp") && len(parts) == 4:
		r.Design, r.Engine, r.Eval, r.Threads = parts[1], parts[2], parts[3], 1
	case strings.HasPrefix(parts[0], "BenchmarkGSIMMT") && len(parts) == 4:
		r.Design, r.Engine, r.Eval = parts[1], "gsim-mt", parts[3]
		if m := threadsPart.FindStringSubmatch(parts[2]); m != nil {
			r.Threads, _ = strconv.Atoi(m[1])
		}
	}
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func runCompare(basePath, curPath string, threshold float64, raw bool) (bool, error) {
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(curPath)
	if err != nil {
		return false, err
	}
	curBy := map[string]Row{}
	for _, r := range cur.Rows {
		curBy[r.Name] = r
	}
	type pair struct {
		name     string
		threads  int
		old, new float64
		ratio    float64
	}
	var pairs []pair
	var missing []string
	for _, b := range base.Rows {
		r, ok := curBy[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.KHz <= 0 || r.KHz <= 0 {
			continue
		}
		pairs = append(pairs, pair{b.Name, b.Threads, b.KHz, r.KHz, r.KHz / b.KHz})
	}
	// A baseline benchmark absent from the current run means lost coverage
	// (renamed, deleted, or a bench run that died partway) — that must fail
	// the gate, not shrink it.
	if len(missing) > 0 {
		for _, name := range missing {
			fmt.Printf("bench-gate: baseline benchmark missing from current run: %s\n", name)
		}
		fmt.Printf("bench-gate: FAIL — %d baseline benchmark(s) missing (rename? crashed run? refresh the baseline if intentional)\n", len(missing))
		return false, nil
	}
	if len(pairs) == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", basePath, curPath)
	}

	// Normalization cancels machine-speed differences between the baseline
	// recorder and this runner. The factor differs by parallelism (a
	// multi-core runner lifts multi-threaded benchmarks far more than
	// single-threaded ones than a single-core recorder would), so the median
	// is taken per thread-count group; groups too small for a stable median
	// fall back to the global one.
	median := func(keep func(p pair) bool) float64 {
		var rs []float64
		for _, p := range pairs {
			if keep(p) {
				rs = append(rs, p.ratio)
			}
		}
		if len(rs) == 0 {
			return 1
		}
		sort.Float64s(rs)
		if len(rs)%2 == 0 {
			return (rs[len(rs)/2-1] + rs[len(rs)/2]) / 2
		}
		return rs[len(rs)/2]
	}
	norms := map[int]float64{}
	if !raw {
		global := median(func(pair) bool { return true })
		byThreads := map[int]int{}
		for _, p := range pairs {
			byThreads[p.threads]++
		}
		for th, n := range byThreads {
			if n >= 4 {
				th := th
				norms[th] = median(func(p pair) bool { return p.threads == th })
			} else {
				norms[th] = global
			}
		}
		fmt.Printf("bench-gate: %d matched benchmarks, median throughput ratio %.3f global (per-thread-group normalizers applied)\n",
			len(pairs), global)
	} else {
		fmt.Printf("bench-gate: %d matched benchmarks, raw comparison\n", len(pairs))
	}

	failed := 0
	fmt.Printf("%-64s %12s %12s %8s %8s  %s\n", "benchmark", "base kHz", "cur kHz", "ratio", "norm", "status")
	for _, p := range pairs {
		n := p.ratio
		if !raw {
			n = p.ratio / norms[p.threads]
		}
		status := "ok"
		switch {
		case n < 1-threshold:
			status = "REGRESSION"
			failed++
		case n > 1+threshold:
			status = "improved"
		}
		fmt.Printf("%-64s %12.1f %12.1f %7.2fx %7.2fx  %s\n",
			strings.TrimPrefix(p.name, "Benchmark"), p.old, p.new, p.ratio, n, status)
	}
	if failed > 0 {
		fmt.Printf("bench-gate: FAIL — %d benchmark(s) regressed more than %.0f%%\n", failed, threshold*100)
		return false, nil
	}
	fmt.Printf("bench-gate: PASS — no benchmark regressed more than %.0f%%\n", threshold*100)
	return true, nil
}
