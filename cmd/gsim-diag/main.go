// Command gsim-diag prints per-configuration engine counters (activity
// factor, evaluations, examinations, activations, instructions per cycle,
// speed) for one synthetic design profile — the tool used to tune the
// partitioner defaults and to sanity-check the cost model against the
// paper's T = ((E+Asucc)*af + Aexam)*N.
//
//	go run ./cmd/gsim-diag [rocket|boom|xiangshan]
//
// Live mode inspects a running service instead: -live scrapes a gsim-serve
// (or gsim-router) /metrics endpoint twice, -interval apart, and renders the
// deltas as rates — simulation kHz per session, compile-cache hit rate, and
// op/migration latency quantiles estimated from the histogram buckets.
//
//	go run ./cmd/gsim-diag -live http://127.0.0.1:8080 [-interval 2s]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gsim/internal/core"
	"gsim/internal/emit"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/gen"
	"gsim/internal/harness"
	"gsim/internal/partition"
	"gsim/internal/passes"
	"gsim/internal/server"
	"gsim/internal/snapshot"
	"gsim/internal/trace"
)

func main() {
	live := flag.String("live", "", "base URL of a running gsim-serve/gsim-router; scrape its /metrics twice and render rates instead of the synthetic suite")
	interval := flag.Duration("interval", 2*time.Second, "gap between the two -live scrapes")
	flag.Parse()
	if *live != "" {
		if err := runLive(os.Stdout, *live, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "gsim-diag:", err)
			os.Exit(1)
		}
		return
	}

	prof := gen.StuCoreLike()
	if flag.NArg() > 0 {
		switch flag.Arg(0) {
		case "rocket":
			prof = gen.RocketLike()
		case "boom":
			prof = gen.BoomLike()
		case "xiangshan":
			prof = gen.XiangShanLike()
		}
	}
	d := harness.Synthetic(prof)
	cfgs := []core.Config{core.Verilator(), core.VerilatorMT(2), core.Arcilator(), core.Essent(), core.GSIM()}
	// The same pipeline under the reference interpreter and the pre-fusion
	// kernel baseline, to see what the closure-threaded kernels — and the
	// superinstruction/width-class pipeline on top of them — buy here.
	gi := core.GSIM()
	gi.Name = "gsim-interp"
	gi.Eval = engine.EvalInterp
	gnf := core.GSIM()
	gnf.Name = "gsim-nofuse"
	gnf.Eval = engine.EvalKernelNoFuse
	cfgs = append(cfgs, gi, gnf)
	// The multi-threaded engine, to report shard balance and batching reach,
	// and its coarsened twin, to report the schedule delta (levels before ->
	// after merging; one barrier per scheduled level per cycle).
	cfgs = append(cfgs, core.GSIMMT(2))
	gco := core.GSIMMT(2)
	gco.Name = "gsim-2T-coarsen"
	gco.Activity.Coarsen = true
	cfgs = append(cfgs, gco)
	// add gsim variants
	g2 := core.GSIM()
	g2.Name = "gsim-mffc"
	g2.Partition = partition.MFFC
	g3 := core.GSIM()
	g3.Name = "gsim-noopt"
	g3.Opt = core.Essent().Opt
	cfgs = append(cfgs, g2, g3)
	for _, sz := range []int{2, 4, 8, 16, 64} {
		gc := core.GSIM()
		gc.Name = fmt.Sprintf("gsim-sz%d", sz)
		gc.MaxSupernode = sz
		cfgs = append(cfgs, gc)
	}
	for _, sz := range []int{4, 8, 16} {
		gc := core.GSIM()
		gc.Partition = partition.MFFC
		gc.Name = fmt.Sprintf("gsim-mffc%d", sz)
		gc.MaxSupernode = sz
		cfgs = append(cfgs, gc)
	}
	for _, cfg := range cfgs {
		sys, drive, err := harness.BuildSystemForDiag(d, "coremark", cfg)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		n := 400
		for c := 0; c < n; c++ {
			drive(sys.Sim, c)
			sys.Sim.Step()
		}
		hz := float64(n) / time.Since(start).Seconds()
		st := sys.Sim.Stats()
		gstats := sys.Graph.ComputeStats()
		nsup := 0
		if sys.Part != nil {
			nsup = sys.Part.Count()
		}
		// instr/cyc reads the machine's retired counter, which must agree
		// with the engine stats in every evaluation mode.
		if ex := sys.Sim.Machine().Executed; ex != st.InstrsExecuted {
			panic(fmt.Sprintf("%s: Machine.Executed=%d disagrees with stats.InstrsExecuted=%d", cfg.Name, ex, st.InstrsExecuted))
		}
		extra := ""
		if pa, ok := sys.Sim.(*engine.ParallelActivity); ok {
			batched, total := pa.BatchedWords()
			sv := pa.Shard()
			extra = fmt.Sprintf(" imbalance=%.2f batchwords=%d/%d levels=%d->%d barriers/cyc=%d",
				sv.Imbalance(), batched, total, sv.OrigLevels, sv.Levels, sv.Levels)
		}
		fmt.Printf("%-16s nodes=%-6d sups=%-6d af=%.4f evals/cyc=%-7d exam/cyc=%-7d act/cyc=%-6d instr/cyc=%-8d speed=%.1fkHz%s\n",
			cfg.Name, gstats.Nodes, nsup, st.ActivityFactor(),
			st.NodeEvals/st.Cycles, st.Examinations/st.Cycles, st.Activations/st.Cycles, sys.Sim.Machine().Executed/st.Cycles, hz/1000, extra)
		sys.Close()
	}

	// Traced throughput: the same engine with waveform capture through the
	// synchronous coordinator-side writer vs the async pipeline (both to a
	// discarding sink, so the comparison isolates where the formatting work
	// runs, not disk speed). The async number must not trail the sync one.
	for _, mode := range []struct {
		name string
		opt  trace.Options
	}{
		{"sync", trace.Options{Sync: true}},
		{"async", trace.Options{}},
	} {
		sys, drive, err := harness.BuildSystemForDiag(d, "coremark", core.GSIM())
		if err != nil {
			panic(err)
		}
		tr, err := trace.NewVCD(io.Discard, sys.Prog, nil, mode.opt)
		if err != nil {
			panic(err)
		}
		sys.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(tr)
		start := time.Now()
		n := 400
		for c := 0; c < n; c++ {
			drive(sys.Sim, c)
			sys.Sim.Step()
		}
		hz := float64(n) / time.Since(start).Seconds()
		if err := tr.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("traced-%-10s speed=%.1fkHz\n", mode.name, hz/1000)
		sys.Close()
	}

	// Service-layer diagnostics. Compile cache: two sessions of the same
	// design and config must share one compile (hit rate 50% over two
	// lookups); per-session step throughput shows what each concurrent
	// session of the shared design sustains through the batched-op path.
	{
		gd, _, err := harness.BuildSystemForDiag(d, "coremark", core.GSIM())
		if err != nil {
			panic(err)
		}
		graph := gd.Graph
		gd.Close()
		mgr := server.NewManager()
		var sess []*server.Session
		for i := 0; i < 2; i++ {
			s, err := mgr.CreateSessionGraph(graph, "diag", server.SessionSpec{})
			if err != nil {
				panic(err)
			}
			sess = append(sess, s)
		}
		cs := mgr.CacheStats()
		fmt.Printf("compile-cache    sessions=%d designs=%d hits=%d misses=%d hitrate=%.1f%% compile=%v\n",
			mgr.SessionCount(), cs.Designs, cs.Hits, cs.Misses,
			100*float64(cs.Hits)/float64(cs.Hits+cs.Misses), sess[0].Design.CompileTime.Round(1000))
		n := 400
		for _, s := range sess {
			if _, err := s.Apply(context.Background(), []server.Op{{Op: "step", N: n}}); err != nil {
				panic(err)
			}
		}
		for i, s := range sess {
			fmt.Printf("session-step     session=%s cycles=%d speed=%.1fkHz/session%d\n",
				s.ID, n, s.Throughput(), i)
		}
		if err := mgr.Drain(context.Background()); err != nil {
			panic(err)
		}
	}

	// Gang batching: 8 stimulus lanes through one compiled design vs 8
	// independent scalar sessions of the same execution model (full-cycle —
	// what a gang lane mirrors bit-exactly). The gang's win is dispatch
	// amortization: one instruction walk drives all lanes, so aggregate
	// lane-cycles/s should scale well past the scalar fleet on one core.
	{
		gd, _, err := harness.BuildSystemForDiag(d, "coremark", core.Verilator())
		if err != nil {
			panic(err)
		}
		graph := gd.Graph
		gd.Close()
		mgr := server.NewManager()
		const lanes = 8
		n := 400
		spec := server.SessionSpec{Engine: "verilator"}
		var scalar []*server.Session
		for i := 0; i < lanes; i++ {
			s, err := mgr.CreateSessionGraph(graph, "diag-gang", spec)
			if err != nil {
				panic(err)
			}
			scalar = append(scalar, s)
		}
		start := time.Now()
		for _, s := range scalar {
			if _, err := s.Apply(context.Background(), []server.Op{{Op: "step", N: n}}); err != nil {
				panic(err)
			}
		}
		scalarAgg := float64(lanes*n) / time.Since(start).Seconds() / 1000
		gspec := spec
		gspec.Lanes = lanes
		gs, err := mgr.CreateSessionGraph(graph, "diag-gang", gspec)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		if _, err := gs.Apply(context.Background(), []server.Op{{Op: "step", N: n}}); err != nil {
			panic(err)
		}
		gangAgg := float64(lanes*n) / time.Since(start).Seconds() / 1000
		fmt.Printf("gang             lanes=%d cycles=%d gang=%.1fkHz-agg scalarx%d=%.1fkHz-agg speedup=%.2fx\n",
			lanes, n, gangAgg, lanes, scalarAgg, gangAgg/scalarAgg)
		infos, err := gs.LaneInfos()
		if err != nil {
			panic(err)
		}
		for _, li := range infos {
			fmt.Printf("gang-lane        lane=%d live=%v cycles=%d instr/cyc=%d\n",
				li.Lane, li.Live, li.Cycles, li.Instrs/li.Cycles)
		}
		if err := mgr.Drain(context.Background()); err != nil {
			panic(err)
		}
	}

	// Snapshot cost on this profile: blob size and encode/decode time for a
	// mid-run checkpoint (the quantities a checkpointing service budgets).
	{
		sys2, drive2, err := harness.BuildSystemForDiag(d, "coremark", core.GSIM())
		if err != nil {
			panic(err)
		}
		for c := 0; c < 200; c++ {
			drive2(sys2.Sim, c)
			sys2.Sim.Step()
		}
		start := time.Now()
		blob, err := snapshot.Save(sys2.Sim)
		if err != nil {
			panic(err)
		}
		encodeT := time.Since(start)
		sys3, _, err := harness.BuildSystemForDiag(d, "coremark", core.GSIM())
		if err != nil {
			panic(err)
		}
		start = time.Now()
		if err := snapshot.Restore(sys3.Sim, blob); err != nil {
			panic(err)
		}
		decodeT := time.Since(start)
		fmt.Printf("snapshot         size=%dKB encode=%v decode=%v cycles=%d\n",
			len(blob)/1024, encodeT.Round(1000), decodeT.Round(1000), sys2.Sim.Stats().Cycles)
		sys2.Close()
		sys3.Close()
	}

	// Fusion reach on this profile, measured over the same chains the GSIM
	// engine actually compiles: each supernode's concatenated member
	// instructions (not the linear stream, whose adjacencies differ). The
	// counts are indexed by the generated FuseRule table, so a new table line
	// shows up here without touching this tool.
	sys, _, err := harness.BuildSystemForDiag(d, "coremark", core.GSIM())
	if err != nil {
		panic(err)
	}
	counts := chainFusionStats(sys)
	printFusion("fusion", counts)
	sys.Close()

	// Rule coverage across the hand-written testdata designs: per-rule fire
	// counts for both generated rule sets, then the rules that fired nowhere
	// in this whole run — a never-firing rule is either dead weight or
	// missing a representative design, so it is flagged explicitly.
	fuseTotal := make([]int, emit.NumFuseRules)
	copy(fuseTotal, counts.counts)
	files, _ := filepath.Glob("testdata/*.fir")
	for _, f := range files {
		g, err := firrtl.LoadFile(f)
		if err != nil {
			panic(err)
		}
		tsys, err := core.Build(g, core.GSIM())
		if err != nil {
			panic(err)
		}
		tc := chainFusionStats(tsys)
		printFusion("fusion["+filepath.Base(f)+"]", tc)
		for r, n := range tc.counts {
			fuseTotal[r] += n
		}
		tsys.Close()
	}
	var neverFuse []string
	for r := emit.FuseRuleNone + 1; r < emit.NumFuseRules; r++ {
		if fuseTotal[r] == 0 {
			neverFuse = append(neverFuse, r.String())
		}
	}

	// The algebraic counters are process-wide, so after building the profile
	// configurations and every testdata design they cover everything this run
	// compiled.
	alg := passes.AlgebraicRuleStats()
	var neverAlg []string
	fmt.Printf("simplify rule fires (all builds this run):")
	for r := passes.AlgRuleNone + 1; r < passes.NumAlgRules; r++ {
		fmt.Printf(" %s=%d", r, alg[r])
		if alg[r] == 0 {
			neverAlg = append(neverAlg, r.String())
		}
	}
	fmt.Println()
	if len(neverFuse) > 0 {
		fmt.Printf("never-fired fusion rules: %s\n", strings.Join(neverFuse, " "))
	}
	if len(neverAlg) > 0 {
		fmt.Printf("never-fired simplify rules: %s\n", strings.Join(neverAlg, " "))
	}
}

// fusionCounts is a per-rule fusion histogram over one system's chains.
type fusionCounts struct {
	instrs int
	counts []int // indexed by emit.FuseRule
}

// chainFusionStats accumulates emit.FusionStats over every supernode chain
// of the system, exactly as CompileChainBound sees them.
func chainFusionStats(sys *core.System) fusionCounts {
	c := fusionCounts{counts: make([]int, emit.NumFuseRules)}
	var chain []emit.Instr
	for _, members := range sys.Part.Members {
		chain = chain[:0]
		for _, id := range members {
			r := sys.Prog.Code[id]
			chain = append(chain, sys.Prog.Instrs[r.Start:r.End]...)
		}
		c.instrs += len(chain)
		for r, n := range emit.FusionStats(chain) {
			c.counts[r] += n
		}
	}
	return c
}

// printFusion prints one per-rule fusion line. Triples cover three
// instructions per window, so coverage is weighted by rule arity.
func printFusion(label string, c fusionCounts) {
	windows, covered := 0, 0
	fmt.Printf("%s (of %d chained instrs):", label, c.instrs)
	for r := emit.FuseRuleNone + 1; r < emit.NumFuseRules; r++ {
		fmt.Printf(" %s=%d", r, c.counts[r])
		windows += c.counts[r]
		covered += c.counts[r] * r.Arity()
	}
	pct := 0.0
	if c.instrs > 0 {
		pct = 100 * float64(covered) / float64(c.instrs)
	}
	fmt.Printf(" total=%d windows (%.1f%% of instrs fused)\n", windows, pct)
}
