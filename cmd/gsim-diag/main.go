// Command gsim-diag prints per-configuration engine counters (activity
// factor, evaluations, examinations, activations, instructions per cycle,
// speed) for one synthetic design profile — the tool used to tune the
// partitioner defaults and to sanity-check the cost model against the
// paper's T = ((E+Asucc)*af + Aexam)*N.
//
//	go run ./cmd/gsim-diag [rocket|boom|xiangshan]
package main

import (
	"fmt"
	"os"
	"time"

	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/harness"
	"gsim/internal/partition"
)

func main() {
	prof := gen.StuCoreLike()
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "rocket":
			prof = gen.RocketLike()
		case "boom":
			prof = gen.BoomLike()
		case "xiangshan":
			prof = gen.XiangShanLike()
		}
	}
	d := harness.Synthetic(prof)
	cfgs := []core.Config{core.Verilator(), core.VerilatorMT(2), core.Arcilator(), core.Essent(), core.GSIM()}
	// The same pipeline under the reference interpreter, to see what the
	// closure-threaded kernels buy on this profile.
	gi := core.GSIM()
	gi.Name = "gsim-interp"
	gi.Eval = engine.EvalInterp
	cfgs = append(cfgs, gi)
	// add gsim variants
	g2 := core.GSIM()
	g2.Name = "gsim-mffc"
	g2.Partition = partition.MFFC
	g3 := core.GSIM()
	g3.Name = "gsim-noopt"
	g3.Opt = core.Essent().Opt
	cfgs = append(cfgs, g2, g3)
	for _, sz := range []int{2, 4, 8, 16, 64} {
		gc := core.GSIM()
		gc.Name = fmt.Sprintf("gsim-sz%d", sz)
		gc.MaxSupernode = sz
		cfgs = append(cfgs, gc)
	}
	for _, sz := range []int{4, 8, 16} {
		gc := core.GSIM()
		gc.Partition = partition.MFFC
		gc.Name = fmt.Sprintf("gsim-mffc%d", sz)
		gc.MaxSupernode = sz
		cfgs = append(cfgs, gc)
	}
	for _, cfg := range cfgs {
		sys, drive, err := harness.BuildSystemForDiag(d, "coremark", cfg)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		n := 400
		for c := 0; c < n; c++ {
			drive(sys.Sim, c)
			sys.Sim.Step()
		}
		hz := float64(n) / time.Since(start).Seconds()
		st := sys.Sim.Stats()
		gstats := sys.Graph.ComputeStats()
		nsup := 0
		if sys.Part != nil {
			nsup = sys.Part.Count()
		}
		_ = nsup
		// instr/cyc reads the machine's retired counter, which must agree
		// with the engine stats in every evaluation mode.
		if ex := sys.Sim.Machine().Executed; ex != st.InstrsExecuted {
			panic(fmt.Sprintf("%s: Machine.Executed=%d disagrees with stats.InstrsExecuted=%d", cfg.Name, ex, st.InstrsExecuted))
		}
		fmt.Printf("%-16s nodes=%-6d sups=%-6d af=%.4f evals/cyc=%-7d exam/cyc=%-7d act/cyc=%-6d instr/cyc=%-8d speed=%.1fkHz\n",
			cfg.Name, gstats.Nodes, nsup, st.ActivityFactor(),
			st.NodeEvals/st.Cycles, st.Examinations/st.Cycles, st.Activations/st.Cycles, sys.Sim.Machine().Executed/st.Cycles, hz/1000)
		sys.Close()
	}
}
