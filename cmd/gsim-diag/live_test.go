package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"gsim/internal/obs"
	"gsim/internal/server"
)

// TestLiveReport runs the -live path against an instrumented manager served
// over real HTTP: a session steps in the background while runLive takes its
// two scrapes, so every rate section has a nonzero window to render.
func TestLiveReport(t *testing.T) {
	mgr := server.NewManager()
	defer mgr.Drain(context.Background())
	reg := obs.NewRegistry()
	mgr.InitObs(reg)
	obs.RegisterProcessMetrics(reg)
	ts := httptest.NewServer(mgr.Handler())
	defer ts.Close()

	src, err := os.ReadFile("../../testdata/counter.fir")
	if err != nil {
		t.Fatal(err)
	}
	sid := createOverHTTP(t, ts.URL, string(src))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				postOps(t, ts.URL, sid, 50)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL, 300*time.Millisecond); err != nil {
		t.Fatalf("runLive: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"engine", "sim speed", "per-session",
		"server", "sessions", "op step",
		"compile cache", "hit rate",
		"process", "goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live report missing %q; got:\n%s", want, out)
		}
	}
}

// TestLiveAgainstRunningServe is the binary-level e2e: build gsim-serve and
// gsim-diag, start the server, step a session in the background, and assert
// `gsim-diag -live` renders the rate tables against the live process.
func TestLiveAgainstRunningServe(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped in -short")
	}
	bin := t.TempDir()
	for _, target := range []string{"gsim-serve", "gsim-diag"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, target), "gsim/cmd/"+target).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", target, err, out)
		}
	}

	serve := exec.Command(filepath.Join(bin, "gsim-serve"), "-addr", "127.0.0.1:0", "-log-level", "warn")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no banner from gsim-serve")
	}
	mm := regexp.MustCompile(`listening on (http://\S+)`).FindStringSubmatch(sc.Text())
	if mm == nil {
		t.Fatalf("unexpected banner %q", sc.Text())
	}
	url := mm[1]
	go func() {
		for sc.Scan() {
		}
	}()

	src, err := os.ReadFile("../../testdata/counter.fir")
	if err != nil {
		t.Fatal(err)
	}
	sid := createOverHTTP(t, url, string(src))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				postOps(t, url, sid, 50)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	out, err := exec.Command(filepath.Join(bin, "gsim-diag"),
		"-live", url, "-interval", "500ms").CombinedOutput()
	if err != nil {
		t.Fatalf("gsim-diag -live: %v\n%s", err, out)
	}
	for _, want := range []string{"sim speed", "op step", "hit rate"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("gsim-diag -live output missing %q; got:\n%s", want, out)
		}
	}
}

// createOverHTTP opens one session and returns its ID.
func createOverHTTP(t *testing.T, base, firrtl string) string {
	t.Helper()
	body, err := json.Marshal(server.CreateRequest{FIRRTL: firrtl})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var created server.CreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || created.Session == "" {
		t.Fatalf("create: status %d, session %q", resp.StatusCode, created.Session)
	}
	return created.Session
}

// postOps steps the session n cycles (best-effort: the server may already be
// shutting down when the background stepper's last batch lands).
func postOps(t *testing.T, base, sid string, n int) {
	t.Helper()
	body, err := json.Marshal(server.OpsRequest{Ops: []server.Op{{Op: "step", N: n}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+sid+"/ops", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp.Body.Close()
}
