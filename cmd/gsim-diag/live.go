// Live diagnosis: scrape a running service's /metrics twice, diff the two
// scrapes, and render the window as rates and quantiles — the operator's
// "what is this replica doing right now" view, built on the same exposition
// parser the tests use (internal/obs.ParseText).
package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"gsim/internal/obs"
)

// runLive renders a rate report for the service at base (a gsim-serve or
// gsim-router URL): two /metrics scrapes interval apart, then every section
// whose metric family is present in the payload. Router scrapes show the
// fleet section; replica scrapes show engine/server/cache; a scrape of a
// router that also re-exports process metrics shows both.
func runLive(w io.Writer, base string, interval time.Duration) error {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasSuffix(url, "/metrics") {
		url += "/metrics"
	}
	a, err := scrapeMetrics(url)
	if err != nil {
		return err
	}
	start := time.Now()
	time.Sleep(interval)
	b, err := scrapeMetrics(url)
	if err != nil {
		return err
	}
	dt := time.Since(start).Seconds()
	if dt <= 0 {
		return fmt.Errorf("degenerate scrape window %v", interval)
	}

	fmt.Fprintf(w, "== live: %s (window %.1fs) ==\n", url, dt)
	d := &window{a: a, b: b, dt: dt}
	renderEngine(w, d)
	renderServer(w, d)
	renderCache(w, d)
	renderFleet(w, d)
	renderProcess(w, d)
	return nil
}

func scrapeMetrics(url string) (*obs.Scrape, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return sc, nil
}

// window is two scrapes and the wall-clock seconds between them.
type window struct {
	a, b *obs.Scrape
	dt   float64
}

// delta is the counter increase over the window (clamped at zero: a restart
// between scrapes reads as no progress, not a negative rate).
func (d *window) delta(name string, kv ...string) (float64, bool) {
	va, oka := d.a.Value(name, kv...)
	vb, okb := d.b.Value(name, kv...)
	if !oka || !okb {
		return 0, false
	}
	if vb < va {
		return 0, true
	}
	return vb - va, true
}

// rate is the counter's per-second rate over the window.
func (d *window) rate(name string, kv ...string) (float64, bool) {
	dv, ok := d.delta(name, kv...)
	return dv / d.dt, ok
}

// gauge is the instantaneous value at the second scrape.
func (d *window) gauge(name string, kv ...string) (float64, bool) {
	return d.b.Value(name, kv...)
}

// quantiles estimates p50/p99 (in the histogram's native unit) over the
// window, plus the observation count. ok is false when the histogram is
// absent or saw nothing.
func (d *window) quantiles(name string, kv ...string) (p50, p99 float64, n uint64, ok bool) {
	buckets := obs.HistogramDelta(d.a, d.b, name, kv...)
	if buckets == nil {
		return 0, 0, 0, false
	}
	for _, bk := range buckets {
		n += bk.Count
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	return obs.Quantile(0.50, buckets), obs.Quantile(0.99, buckets), n, true
}

func renderEngine(w io.Writer, d *window) {
	cyc, ok := d.rate("gsim_engine_cycles_total")
	if !ok {
		return
	}
	fmt.Fprintf(w, "\nengine\n")
	fmt.Fprintf(w, "  sim speed            %10.1f kHz\n", cyc/1e3)
	if sessions, ok := d.gauge("gsim_server_sessions"); ok && sessions > 0 {
		fmt.Fprintf(w, "  per-session          %10.1f kHz over %.0f sessions\n", cyc/sessions/1e3, sessions)
	}
	if evals, ok := d.rate("gsim_engine_node_evals_total"); ok {
		fmt.Fprintf(w, "  node evals           %10.2f M/s\n", evals/1e6)
	}
	if instrs, ok := d.rate("gsim_engine_instrs_total"); ok {
		fmt.Fprintf(w, "  kernel instrs        %10.2f M/s\n", instrs/1e6)
	}
	if af, ok := d.gauge("gsim_engine_active_ratio"); ok {
		fmt.Fprintf(w, "  activity factor      %10.4f\n", af)
	}
}

func renderServer(w io.Writer, d *window) {
	sessions, ok := d.gauge("gsim_server_sessions")
	if !ok {
		return
	}
	fmt.Fprintf(w, "\nserver\n")
	lanes, _ := d.gauge("gsim_server_gang_lanes_live")
	fmt.Fprintf(w, "  sessions             %10.0f (%.0f live gang lanes)\n", sessions, lanes)
	if reqs, ok := d.rate("gsim_server_http_requests_total"); ok {
		fmt.Fprintf(w, "  http requests        %10.1f /s\n", reqs)
	}
	if stepc, ok := d.rate("gsim_server_step_cycles_total"); ok {
		fmt.Fprintf(w, "  step lane-cycles     %10.1f k/s\n", stepc/1e3)
	}

	// Per-op rate and latency quantiles, one row per op kind seen in the
	// payload (labels carried by gsim_server_ops_total).
	kinds := labelValues(d.b, "gsim_server_ops_total", "op")
	for _, kind := range kinds {
		r, _ := d.rate("gsim_server_ops_total", "op", kind)
		if p50, p99, n, ok := d.quantiles("gsim_server_op_latency_seconds", "op", kind); ok {
			fmt.Fprintf(w, "  op %-6s            %10.1f /s   p50 %s  p99 %s  (n=%d)\n",
				kind, r, fmtLatency(p50), fmtLatency(p99), n)
		} else if r > 0 {
			fmt.Fprintf(w, "  op %-6s            %10.1f /s\n", kind, r)
		}
	}
	for _, cause := range labelValues(d.b, "gsim_server_admission_rejects_total", "cause") {
		if dv, ok := d.delta("gsim_server_admission_rejects_total", "cause", cause); ok && dv > 0 {
			fmt.Fprintf(w, "  rejects[%-13s] %8.0f in window\n", cause, dv)
		}
	}
}

func renderCache(w io.Writer, d *window) {
	hits, okH := d.delta("gsim_compile_cache_hits_total")
	misses, okM := d.delta("gsim_compile_cache_misses_total")
	if !okH || !okM {
		return
	}
	fmt.Fprintf(w, "\ncompile cache\n")
	if total := hits + misses; total > 0 {
		fmt.Fprintf(w, "  hit rate             %10.1f %% over %.0f lookups in window\n", 100*hits/total, total)
	} else {
		// No lookups in the window: fall back to lifetime totals.
		lh, _ := d.gauge("gsim_compile_cache_hits_total")
		lm, _ := d.gauge("gsim_compile_cache_misses_total")
		if lt := lh + lm; lt > 0 {
			fmt.Fprintf(w, "  hit rate             %10.1f %% lifetime (%.0f lookups, idle window)\n", 100*lh/lt, lt)
		} else {
			fmt.Fprintf(w, "  hit rate                    n/a (no lookups yet)\n")
		}
	}
	if designs, ok := d.gauge("gsim_compile_cache_designs"); ok {
		bytes, _ := d.gauge("gsim_compile_cache_resident_bytes")
		fmt.Fprintf(w, "  resident             %10.0f designs, %.1f MiB\n", designs, bytes/(1<<20))
	}
	if ev, ok := d.delta("gsim_compile_cache_evictions_total"); ok && ev > 0 {
		fmt.Fprintf(w, "  evictions            %10.0f in window\n", ev)
	}
	if p50, p99, n, ok := d.quantiles("gsim_compile_duration_seconds"); ok {
		fmt.Fprintf(w, "  compile latency      p50 %s  p99 %s  (n=%d)\n", fmtLatency(p50), fmtLatency(p99), n)
	}
}

func renderFleet(w io.Writer, d *window) {
	replicas, ok := d.gauge("gsim_fleet_replicas")
	if !ok {
		return
	}
	fmt.Fprintf(w, "\nfleet\n")
	ready, _ := d.gauge("gsim_fleet_replicas_ready")
	sessions, _ := d.gauge("gsim_fleet_sessions")
	fmt.Fprintf(w, "  replicas             %10.0f (%.0f ready), %.0f routed sessions\n", replicas, ready, sessions)
	if lag, ok := d.gauge("gsim_fleet_heartbeat_lag_seconds"); ok {
		fmt.Fprintf(w, "  heartbeat lag        %10.2f s\n", lag)
	}
	if p50, p99, n, ok := d.quantiles("gsim_fleet_proxy_latency_seconds"); ok {
		fmt.Fprintf(w, "  proxy latency        p50 %s  p99 %s  (n=%d)\n", fmtLatency(p50), fmtLatency(p99), n)
	}
	okd, _ := d.delta("gsim_fleet_migrations_total", "outcome", "success")
	faild, _ := d.delta("gsim_fleet_migrations_total", "outcome", "failed")
	if okd > 0 || faild > 0 {
		fmt.Fprintf(w, "  migrations           %10.0f ok, %.0f failed in window\n", okd, faild)
		if by, ok := d.rate("gsim_fleet_migration_bytes_total"); ok {
			fmt.Fprintf(w, "  migration traffic    %10.2f MiB/s\n", by/(1<<20))
		}
	}
	if p50, p99, n, ok := d.quantiles("gsim_fleet_migration_duration_seconds"); ok {
		fmt.Fprintf(w, "  migration latency    p50 %s  p99 %s  (n=%d)\n", fmtLatency(p50), fmtLatency(p99), n)
	}
	if lost, ok := d.delta("gsim_fleet_sessions_lost_total"); ok && lost > 0 {
		fmt.Fprintf(w, "  sessions lost        %10.0f in window\n", lost)
	}
}

func renderProcess(w io.Writer, d *window) {
	gor, ok := d.gauge("gsim_go_goroutines")
	if !ok {
		return
	}
	heap, _ := d.gauge("gsim_go_heap_alloc_bytes")
	fmt.Fprintf(w, "\nprocess\n")
	fmt.Fprintf(w, "  goroutines           %10.0f\n", gor)
	fmt.Fprintf(w, "  heap                 %10.1f MiB\n", heap/(1<<20))
}

// labelValues collects the distinct values of one label across a metric's
// samples, sorted for stable output.
func labelValues(s *obs.Scrape, name, label string) []string {
	seen := map[string]bool{}
	for _, sm := range s.Matching(name) {
		if v, ok := sm.Labels[label]; ok && !seen[v] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// fmtLatency renders a seconds value in the most readable unit.
func fmtLatency(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	}
}
