// Command gsim compiles a FIRRTL design and simulates it.
//
// Usage:
//
//	gsim [flags] design.fir
//
//	-engine gsim|verilator|essent|arcilator   simulator preset (default gsim)
//	-eval kernel|kernel-nofuse|interp         instruction evaluation: the fused kernel
//	                                          pipeline (default: superinstructions,
//	                                          width classes, bound chains), the
//	                                          pre-fusion kernel baseline, or the
//	                                          reference interpreter
//	-threads N                                multi-threaded engine: gsim -> GSIMMT
//	                                          (parallel essential-signal), verilator
//	                                          -> Verilator-MT (parallel full-cycle)
//	-cycles N                                 cycles to simulate
//	-coarsen                                  merge sparse schedule levels (GSIMMT):
//	                                          fewer barriers per cycle on deep designs
//	-max-supernode N                          supernode size cap (paper Fig. 9)
//	-poke name=value                          set an input before simulation (repeatable)
//	-watch name                               print a node's value every cycle (repeatable)
//	-vcd file.vcd                             dump a waveform through the async pipeline
//	-vcd-sync                                 format the waveform on the coordinator
//	                                          instead (the pre-pipeline behavior)
//	-save file.snap                           write a snapshot of complete simulator
//	                                          state after the run (internal/snapshot)
//	-restore file.snap                        resume from a snapshot before simulating;
//	                                          the snapshot's design hash must match this
//	                                          build (same design, same -engine options)
//	-stats                                    print engine counters and build info
//
// Example:
//
//	gsim -engine gsim -cycles 100 -poke en=1 -watch out examples/quickstart/counter.fir
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/snapshot"
	"gsim/internal/trace"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	engineName := flag.String("engine", "gsim", "simulator preset: gsim, verilator, essent, arcilator")
	evalName := flag.String("eval", "kernel", "instruction evaluation: kernel (fused pipeline, default), kernel-nofuse (pre-fusion baseline), or interp (reference interpreter)")
	threads := flag.Int("threads", 0, "worker count: gsim -> parallel essential-signal (GSIMMT), verilator -> parallel full-cycle")
	cycles := flag.Int("cycles", 10, "cycles to simulate")
	coarsen := flag.Bool("coarsen", false, "adaptive level coarsening: merge sparse schedule levels (parallel essential-signal engine)")
	maxSup := flag.Int("max-supernode", 0, "maximum supernode size (0 = default)")
	showStats := flag.Bool("stats", false, "print engine counters and build info")
	vcdPath := flag.String("vcd", "", "dump a VCD waveform of inputs/outputs/registers to this file")
	vcdSync := flag.Bool("vcd-sync", false, "format the waveform synchronously on the coordinator instead of the async pipeline")
	savePath := flag.String("save", "", "write a snapshot of complete simulator state to this file after the run")
	restorePath := flag.String("restore", "", "resume from a snapshot file before simulating (design hash must match)")
	var pokes, watches repeated
	flag.Var(&pokes, "poke", "input assignment name=value (repeatable)")
	flag.Var(&watches, "watch", "node to print every cycle (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsim [flags] design.fir")
		flag.Usage()
		os.Exit(2)
	}
	g, err := firrtl.LoadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("loaded %s: %d nodes, %d edges, %d regs, %d mems\n",
		g.Name, st.Nodes, st.Edges, st.Regs, st.Mems)

	var cfg core.Config
	switch *engineName {
	case "gsim":
		if *threads > 0 {
			cfg = core.GSIMMT(*threads)
		} else {
			cfg = core.GSIM()
		}
	case "verilator":
		if *threads > 0 {
			cfg = core.VerilatorMT(*threads)
		} else {
			cfg = core.Verilator()
		}
	case "essent":
		cfg = core.Essent()
	case "arcilator":
		cfg = core.Arcilator()
	default:
		fatal(fmt.Errorf("unknown engine %q", *engineName))
	}
	if *threads > 0 && cfg.Threads == 0 {
		fatal(fmt.Errorf("-threads is only valid with -engine gsim or verilator"))
	}
	evalMode, err := engine.ParseEvalMode(*evalName)
	if err != nil {
		fatal(err)
	}
	cfg.Eval = evalMode
	cfg.Activity.Coarsen = *coarsen
	if *maxSup > 0 {
		cfg.MaxSupernode = *maxSup
	}
	sys, err := core.Build(g, cfg)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fmt.Printf("built %s (%s eval) in %v (passes: %s)\n", cfg.Name, cfg.Eval, sys.BuildTime.Round(1000), sys.PassResult)
	if sys.Part != nil {
		fmt.Printf("partition: %d supernodes (avg %.1f nodes, cut %d)\n",
			sys.Part.Count(), sys.Part.AvgSize(), sys.Part.CutEdges)
	}
	if pa, ok := sys.Sim.(*engine.ParallelActivity); ok {
		sv := pa.Shard()
		fmt.Printf("schedule: %d levels (%d before coarsening), %d barriers/cycle\n",
			sv.Levels, sv.OrigLevels, sv.Levels)
	}

	// Checkpoint restore happens before pokes and tracing: pokes override
	// restored input values, and the waveform resumes from the restored
	// cycle. The resume diff base is captured here — before the pokes —
	// so a -poke that changes a restored input still appears as a value
	// change in the resumed waveform.
	var resumeState []uint64
	if *restorePath != "" {
		data, err := os.ReadFile(*restorePath)
		if err != nil {
			fatal(err)
		}
		if err := snapshot.Restore(sys.Sim, data); err != nil {
			fatal(err)
		}
		resumeState = append([]uint64{}, sys.Sim.Machine().State...)
		fmt.Printf("restored %s: resuming at cycle %d\n", *restorePath, sys.Sim.Stats().Cycles)
	}

	for _, p := range pokes {
		name, val, ok := strings.Cut(p, "=")
		if !ok {
			fatal(fmt.Errorf("bad -poke %q, want name=value", p))
		}
		n := sys.Node(name)
		if n == nil {
			fatal(fmt.Errorf("no input %q", name))
		}
		bv, err := bitvec.Parse(n.Width, val)
		if err != nil {
			fatal(err)
		}
		sys.Sim.Poke(n.ID, bv)
	}

	// Waveform capture routes through the async pipeline by default: the
	// engine snapshots state at the end of each Step and a writer goroutine
	// formats behind it, so tracing no longer serializes the (parallel)
	// sweep. -vcd-sync restores coordinator-side formatting.
	var tracer *trace.VCD
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts := trace.Options{Sync: *vcdSync}
		if resumeState != nil {
			// Continue the waveform where the checkpointed run left off:
			// appending this stream to the pre-snapshot VCD reproduces an
			// uninterrupted run's bytes.
			opts.Resume = &trace.Resume{Time: sys.Sim.Stats().Cycles, State: resumeState}
		}
		tracer, err = trace.NewVCD(f, sys.Prog, nil, opts)
		if err != nil {
			fatal(err)
		}
		sys.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(tracer)
	}

	watchIDs := map[string]int{}
	for _, wname := range watches {
		n := sys.Node(wname)
		if n == nil {
			fatal(fmt.Errorf("no node %q to watch", wname))
		}
		watchIDs[wname] = n.ID
	}

	for c := 0; c < *cycles; c++ {
		sys.Sim.Step()
		if tracer != nil {
			select {
			case err := <-tracer.Err():
				fatal(fmt.Errorf("vcd: %v", err))
			default:
			}
		}
		if len(watchIDs) > 0 {
			fmt.Printf("cycle %4d:", c)
			for _, wname := range watches {
				fmt.Printf(" %s=%s", wname, sys.Sim.Peek(watchIDs[wname]))
			}
			fmt.Println()
		}
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal(fmt.Errorf("vcd: %v", err))
		}
	}

	if *savePath != "" {
		data, err := snapshot.Save(sys.Sim)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*savePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s: %d bytes at cycle %d\n", *savePath, len(data), sys.Sim.Stats().Cycles)
	}

	if *showStats {
		s := sys.Sim.Stats()
		fmt.Printf("cycles=%d nodeEvals=%d activations=%d examinations=%d instrs=%d af=%.4f\n",
			s.Cycles, s.NodeEvals, s.Activations, s.Examinations, s.InstrsExecuted, s.ActivityFactor())
		fmt.Printf("code=%dB data=%dB emit=%v\n", sys.Prog.CodeBytes(), sys.Prog.DataBytes(), sys.Prog.EmitTime.Round(1000))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsim:", err)
	os.Exit(1)
}
