// Command gsim-router is the fleet front-end for gsim-serve: a stateless
// routing layer that places sessions onto replicas by consistent-hashing
// their design (so every session of one design shares a single compiled
// artifact on one replica), proxies the /v1 API with per-session sticky
// routing, and live-migrates sessions off a replica when it drains —
// gracefully (SIGTERM, admin drain) or not (failed health checks).
//
// Usage:
//
//	gsim-router [-addr host:port]
//	            [-heartbeat-ttl 10s] [-probe-interval 2s] [-probe-fail-threshold 3]
//	            [-migration-retries 4] [-retry-backoff 25ms]
//	            [-snapshot-budget-mb 1024]
//	            [-log-format text|json] [-log-level debug|info|warn|error] [-pprof]
//
// Replicas join with gsim-serve's -router/-advertise flags (they register
// and heartbeat themselves); nothing is configured on the router ahead of
// time, and a router restart loses nothing but the session table — replicas
// re-register on their next heartbeat miss, but routed sessions must be
// re-created (the router is the only holder of the public-ID mapping).
//
// API: the full gsim-serve /v1 surface, proxied (session IDs are
// router-scoped: f1, f2, ...), plus the control plane:
//
//	POST /fleet/replicas                  {"name": "...", "url": "..."} register/refresh
//	POST /fleet/replicas/{name}/heartbeat liveness refresh
//	POST /fleet/replicas/{name}/drain     migrate every session off, exclude from placement
//	GET  /fleet                           topology: replicas, states, session counts
//	GET  /v1/stats                        fleet-aggregate + per-replica stats
//	GET  /metrics                         Prometheus text exposition (fleet layer)
//	GET  /healthz, /readyz                router liveness; ready = ≥1 ready replica
//
// Migration semantics: draining a replica snapshots each of its sessions
// (per-lane for gangs), reroutes via the hash ring minus that replica,
// restores on the new home, and resumes — the restored trajectory is
// bit-identical (state image, stat counters, VCD bytes) to an uninterrupted
// run. Proxied requests overlapping a migration block briefly and land on
// the new home; no request ever observes a half-moved session.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsim/internal/fleet"
	"gsim/internal/obs"
)

// withPprof mounts the net/http/pprof profiling handlers beside the API
// (mirrors gsim-serve's -pprof).
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address (use :0 for an ephemeral port)")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 10*time.Second, "declare a replica dead when its last heartbeat is older than this")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "cadence of /readyz health probes against ready replicas")
	probeFails := flag.Int("probe-fail-threshold", 3, "consecutive failed probes before a replica is drained/declared dead")
	migrationRetries := flag.Int("migration-retries", 4, "alternate targets a migration tries before giving up")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "base backoff between migration retries (doubled per attempt)")
	snapshotBudgetMB := flag.Int64("snapshot-budget-mb", 1024, "byte budget of the content-addressed snapshot handoff store, MiB")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	rt := fleet.NewRouter(fleet.Config{
		HeartbeatTTL:       *heartbeatTTL,
		ProbeInterval:      *probeInterval,
		ProbeFailThreshold: *probeFails,
		MigrationRetries:   *migrationRetries,
		RetryBackoff:       *retryBackoff,
		SnapshotBudget:     *snapshotBudgetMB << 20,
	})
	defer rt.Close()
	rt.SetLogger(obs.NewLogger(os.Stderr, *logFormat, *logLevel))
	rt.InitObs(obs.Default)
	obs.RegisterProcessMetrics(obs.Default)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsim-router:", err)
		os.Exit(1)
	}
	// Machine-readable on purpose: the fleet smoke harness starts the binary
	// with -addr 127.0.0.1:0 and scrapes the port.
	fmt.Printf("gsim-router listening on http://%s\n", ln.Addr())

	handler := rt.Handler()
	if *enablePprof {
		handler = withPprof(handler)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// The router holds no simulation state; shutting it down abandons
		// nothing but in-flight proxying. Replicas keep serving.
		fmt.Printf("gsim-router: %v, shutting down\n", s)
		_ = srv.Close()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "gsim-router:", err)
			os.Exit(1)
		}
	}
}
