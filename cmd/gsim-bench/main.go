// Command gsim-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gsim-bench -exp table1|fig6|gsimmt|coarsen|sessions|fig7|fig8|fig9|table3|table4|all [-quick] [-cycles N]
//	           [-threads 1,2,4,8]   thread counts for the gsimmt and coarsen sweeps
//	                                (doubles as the session counts for -exp sessions)
//	           [-eval kernel|kernel-nofuse|interp] evaluation mode for every measured config
//	           [-coarsen]           adaptive level coarsening for every measured config
//
// Results print as text tables in the paper's layout; EXPERIMENTS.md records
// a full run with commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig6, gsimmt, coarsen, sessions, fig7, fig8, fig9, table3, table4, all")
	quick := flag.Bool("quick", false, "small designs and short measurements (smoke run)")
	medium := flag.Bool("medium", false, "stucore + rocket-scale designs, full budget (the EXPERIMENTS.md tier)")
	cycles := flag.Int("cycles", 0, "override timed cycles per measurement")
	threadList := flag.String("threads", "1,2,4,8", "comma-separated thread counts for the gsimmt and coarsen sweeps")
	evalName := flag.String("eval", "kernel", "instruction evaluation for every measured config: kernel, kernel-nofuse, or interp")
	coarsen := flag.Bool("coarsen", false, "adaptive level coarsening for every measured config")
	flag.Parse()

	threadCounts, err := parseThreads(*threadList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	evalMode, err := engine.ParseEvalMode(*evalName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	budget := harness.DefaultBudget()
	designs := harness.Designs()
	fig7Profile := gen.XiangShanLike()
	table3Design := harness.Synthetic(gen.BoomLike())
	fig9Sizes := harness.Fig9Sizes
	if *medium {
		designs = []harness.Design{harness.StuCore(), harness.Synthetic(gen.RocketLike())}
		fig7Profile = gen.RocketLike()
		table3Design = harness.Synthetic(gen.RocketLike())
	}
	if *quick {
		budget = harness.QuickBudget()
		designs = harness.SmallDesigns()
		fig7Profile = gen.StuCoreLike()
		table3Design = harness.Synthetic(gen.StuCoreLike())
		fig9Sizes = []int{1, 20, 50, 200}
	}
	if *cycles > 0 {
		budget.TimedCycles = *cycles
	}
	budget.Eval = evalMode
	budget.Coarsen = *coarsen

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := harness.Table1(designs, budget)
		if err != nil {
			return err
		}
		harness.RenderTable1(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		cells, err := harness.Fig6(designs, budget)
		if err != nil {
			return err
		}
		harness.RenderFig6(os.Stdout, cells)
		return nil
	})
	run("gsimmt", func() error {
		rows, err := harness.GSIMMTSweep(designs, threadCounts, budget)
		if err != nil {
			return err
		}
		harness.RenderGSIMMT(os.Stdout, rows)
		return nil
	})
	run("coarsen", func() error {
		rows, err := harness.CoarsenSweep(designs, threadCounts, budget)
		if err != nil {
			return err
		}
		harness.RenderCoarsen(os.Stdout, rows)
		return nil
	})
	run("sessions", func() error {
		rows, err := harness.SessionsSweep(designs, threadCounts, budget)
		if err != nil {
			return err
		}
		harness.RenderSessions(os.Stdout, rows)
		return nil
	})
	run("fig7", func() error {
		rows, err := harness.Fig7(fig7Profile, budget)
		if err != nil {
			return err
		}
		harness.RenderFig7(os.Stdout, rows)
		return nil
	})
	run("fig8", func() error {
		steps, err := harness.Fig8(designs, budget)
		if err != nil {
			return err
		}
		harness.RenderFig8(os.Stdout, steps)
		return nil
	})
	run("fig9", func() error {
		pts, err := harness.Fig9(designs, fig9Sizes, budget)
		if err != nil {
			return err
		}
		harness.SortFig9(pts)
		harness.RenderFig9(os.Stdout, pts)
		return nil
	})
	run("table3", func() error {
		rows, err := harness.Table3(table3Design, budget)
		if err != nil {
			return err
		}
		harness.RenderTable3(os.Stdout, rows)
		return nil
	})
	run("table4", func() error {
		rows, err := harness.Table4(designs, budget)
		if err != nil {
			return err
		}
		harness.RenderTable4(os.Stdout, rows)
		return nil
	})
}

// parseThreads parses a comma-separated list of positive thread counts.
func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("gsim-bench: bad -threads entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
