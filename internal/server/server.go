// Package server is the simulation-as-a-service layer: a session manager
// multiplexing many concurrent simulator sessions over a compiled-design
// cache. The paper's compile-once/simulate-fast economics only pay off if the
// compile is amortized; here, N sessions of one (design, configuration) share
// a single core.CompiledDesign — compiled exactly once under singleflight —
// and each session owns only its mutable engine (machine state image, active
// bits). Sessions step fully concurrently; the shared Program and partition
// are read-only after compilation.
//
// The manager is transport-agnostic (harness experiments and benchmarks
// drive it in-process); http.go exposes it as the HTTP+JSON API behind
// cmd/gsim-serve.
package server

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/ir"
	"gsim/internal/snapshot"
)

// SessionSpec is a client's session configuration: the same knobs cmd/gsim
// exposes as flags, with the same defaults (gsim preset, kernel eval).
type SessionSpec struct {
	Engine       string `json:"engine,omitempty"`        // gsim | verilator | essent | arcilator (default gsim)
	Eval         string `json:"eval,omitempty"`          // kernel | kernel-nofuse | interp (default kernel)
	Threads      int    `json:"threads,omitempty"`       // gsim -> GSIMMT, verilator -> Verilator-MT
	Coarsen      bool   `json:"coarsen,omitempty"`       // adaptive level coarsening (parallel essential-signal)
	MaxSupernode int    `json:"max_supernode,omitempty"` // supernode size cap (0 = default)
}

// coreConfig resolves the spec to a core configuration, mirroring cmd/gsim's
// flag handling so a server session and a CLI run with the same knobs build
// the same simulator.
func (sp SessionSpec) coreConfig() (core.Config, error) {
	var cfg core.Config
	engineName := sp.Engine
	if engineName == "" {
		engineName = "gsim"
	}
	switch engineName {
	case "gsim":
		if sp.Threads > 0 {
			cfg = core.GSIMMT(sp.Threads)
		} else {
			cfg = core.GSIM()
		}
	case "verilator":
		if sp.Threads > 0 {
			cfg = core.VerilatorMT(sp.Threads)
		} else {
			cfg = core.Verilator()
		}
	case "essent":
		cfg = core.Essent()
	case "arcilator":
		cfg = core.Arcilator()
	default:
		return cfg, fmt.Errorf("server: unknown engine %q", engineName)
	}
	if sp.Threads > 0 && cfg.Threads == 0 {
		return cfg, fmt.Errorf("server: threads only valid with engine gsim or verilator")
	}
	evalName := sp.Eval
	if evalName == "" {
		evalName = "kernel"
	}
	mode, err := engine.ParseEvalMode(evalName)
	if err != nil {
		return cfg, fmt.Errorf("server: %v", err)
	}
	cfg.Eval = mode
	cfg.Activity.Coarsen = sp.Coarsen
	if sp.MaxSupernode > 0 {
		cfg.MaxSupernode = sp.MaxSupernode
	}
	return cfg, nil
}

// Manager multiplexes sessions over a compiled-design cache.
type Manager struct {
	cache *core.CompileCache

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	draining bool
}

// NewManager returns a manager with an empty compile cache.
func NewManager() *Manager {
	return &Manager{cache: core.NewCompileCache(), sessions: map[string]*Session{}}
}

// Session is one live simulator instance. All operations serialize on the
// session's own lock; distinct sessions never contend (beyond the shared
// read-only design).
type Session struct {
	ID       string
	Design   *core.CompiledDesign
	CacheHit bool // whether creation shared a previously compiled design

	mgr *Manager
	cfg core.Config

	mu       sync.Mutex
	sim      engine.Sim
	closed   bool
	steps    uint64        // cycles stepped through this session
	stepTime time.Duration // wall time inside Step, for sessions/s diagnostics
}

// CreateSession compiles (or reuses) the design described by FIRRTL source
// text under the spec's configuration and opens a session over it.
func (m *Manager) CreateSession(src string, spec SessionSpec) (*Session, error) {
	sum := sha256.Sum256([]byte(src))
	return m.create(fmt.Sprintf("firrtl:%x", sum), spec, func() (*ir.Graph, error) {
		return firrtl.Load(src)
	})
}

// CreateSessionGraph opens a session over a pre-elaborated graph. sourceKey
// must identify the design content (it anchors the compile-cache key the way
// the FIRRTL content hash does for CreateSession).
func (m *Manager) CreateSessionGraph(g *ir.Graph, sourceKey string, spec SessionSpec) (*Session, error) {
	return m.create("graph:"+sourceKey, spec, func() (*ir.Graph, error) { return g, nil })
}

func (m *Manager) create(sourceKey string, spec SessionSpec, load func() (*ir.Graph, error)) (*Session, error) {
	cfg, err := spec.coreConfig()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: draining, not accepting sessions")
	}
	m.mu.Unlock()

	design, hit, err := m.cache.Get(core.CacheKey(sourceKey, cfg), func() (*core.CompiledDesign, error) {
		g, err := load()
		if err != nil {
			return nil, err
		}
		return core.CompileDesign(g, cfg)
	})
	if err != nil {
		return nil, err
	}
	sim, err := design.NewSim(cfg)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		sim.Close()
		return nil, fmt.Errorf("server: draining, not accepting sessions")
	}
	m.nextID++
	s := &Session{
		ID:       fmt.Sprintf("s%d", m.nextID),
		Design:   design,
		CacheHit: hit,
		mgr:      m,
		cfg:      cfg,
		sim:      sim,
	}
	m.sessions[s.ID] = s
	return s, nil
}

// Session returns a live session by ID.
func (m *Manager) Session(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("server: no session %q", id)
	}
	return s, nil
}

// SessionIDs lists live sessions (sorted by creation: IDs are sequential).
func (m *Manager) SessionIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	return ids
}

// SessionCount returns the number of live sessions.
func (m *Manager) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// CacheStats reports compile-cache hits, misses, and resident designs.
func (m *Manager) CacheStats() (hits, misses uint64, designs int) {
	hits, misses = m.cache.Stats()
	return hits, misses, m.cache.Len()
}

// Drain stops accepting new sessions and closes every live one. Used by
// graceful shutdown: in-flight operations finish (each waits its session
// lock), new work is refused.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	for _, s := range open {
		s.Close()
	}
}

// Op is one entry of a batched operation list — the unit of the service's
// request batching. A round-trip per poke would dominate simulation cost;
// a batch applies many pokes/steps/peeks atomically under one session lock.
type Op struct {
	Op    string `json:"op"`              // poke | peek | step | reset
	Name  string `json:"name,omitempty"`  // poke/peek: node name
	Value string `json:"value,omitempty"` // poke: FIRRTL-style literal ("h1f", "42", "b101")
	N     int    `json:"n,omitempty"`     // step: cycle count (default 1)
}

// OpResult is the outcome of one Op. Peek fills Value (width'hHEX); step
// fills Cycles with the session's total simulated cycles after the step.
type OpResult struct {
	Op     string `json:"op"`
	Name   string `json:"name,omitempty"`
	Value  string `json:"value,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
}

// errClosed is returned for any operation on a closed session.
func (s *Session) errClosed() error { return fmt.Errorf("server: session %s is closed", s.ID) }

// Apply runs a batch of operations atomically: no other session operation
// interleaves. The first failing op aborts the batch; results for completed
// ops are returned alongside the error.
func (s *Session) Apply(ops []Op) ([]OpResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.errClosed()
	}
	results := make([]OpResult, 0, len(ops))
	for i, op := range ops {
		res := OpResult{Op: op.Op, Name: op.Name}
		switch op.Op {
		case "poke":
			n := s.Design.Graph.FindNode(op.Name)
			if n == nil {
				return results, fmt.Errorf("server: op %d: no node %q", i, op.Name)
			}
			v, err := bitvec.Parse(n.Width, op.Value)
			if err != nil {
				return results, fmt.Errorf("server: op %d: %v", i, err)
			}
			s.sim.Poke(n.ID, v)
		case "peek":
			n := s.Design.Graph.FindNode(op.Name)
			if n == nil {
				return results, fmt.Errorf("server: op %d: no node %q", i, op.Name)
			}
			res.Value = s.sim.Peek(n.ID).String()
		case "step":
			cycles := op.N
			if cycles <= 0 {
				cycles = 1
			}
			start := time.Now()
			for c := 0; c < cycles; c++ {
				s.sim.Step()
			}
			s.stepTime += time.Since(start)
			s.steps += uint64(cycles)
			res.Cycles = s.sim.Stats().Cycles
		case "reset":
			s.sim.Reset()
			s.steps, s.stepTime = 0, 0
			res.Cycles = 0
		default:
			return results, fmt.Errorf("server: op %d: unknown op %q (want poke, peek, step, or reset)", i, op.Op)
		}
		results = append(results, res)
	}
	return results, nil
}

// Poke sets an input by name from a FIRRTL-style literal.
func (s *Session) Poke(name, literal string) error {
	_, err := s.Apply([]Op{{Op: "poke", Name: name, Value: literal}})
	return err
}

// Peek reads a node by name, rendered as width'hHEX.
func (s *Session) Peek(name string) (string, error) {
	res, err := s.Apply([]Op{{Op: "peek", Name: name}})
	if err != nil {
		return "", err
	}
	return res[0].Value, nil
}

// Step simulates n cycles (n <= 0 steps one) and returns total cycles.
func (s *Session) Step(n int) (uint64, error) {
	res, err := s.Apply([]Op{{Op: "step", N: n}})
	if err != nil {
		return 0, err
	}
	return res[0].Cycles, nil
}

// Snapshot serializes the session's complete simulator state.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.errClosed()
	}
	return snapshot.Save(s.sim)
}

// Restore overwrites the session's state from a snapshot blob. The blob must
// carry this session's design hash (see internal/snapshot); a snapshot taken
// in any session of the same compiled design — or by cmd/gsim -save on the
// same design and options — restores cleanly.
func (s *Session) Restore(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.errClosed()
	}
	// steps/stepTime keep counting only cycles this session stepped itself —
	// a restored snapshot's history was simulated elsewhere, and folding it
	// in would corrupt Throughput.
	return snapshot.Restore(s.sim, data)
}

// Cycles returns the session's simulated cycle count.
func (s *Session) Cycles() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim.Stats().Cycles
}

// Throughput reports the session's cumulative step throughput in kHz (0 when
// it has not stepped).
func (s *Session) Throughput() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stepTime <= 0 {
		return 0
	}
	return float64(s.steps) / s.stepTime.Seconds() / 1000
}

// Close releases the session's engine and unregisters it. Idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.sim.Close()
	s.mu.Unlock()

	s.mgr.mu.Lock()
	delete(s.mgr.sessions, s.ID)
	s.mgr.mu.Unlock()
	return nil
}
