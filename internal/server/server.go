// Package server is the simulation-as-a-service layer: a session manager
// multiplexing many concurrent simulator sessions over a compiled-design
// cache. The paper's compile-once/simulate-fast economics only pay off if the
// compile is amortized; here, N sessions of one (design, configuration) share
// a single core.CompiledDesign — compiled exactly once under singleflight —
// and each session owns only its mutable engine (machine state image, active
// bits). Sessions step fully concurrently; the shared Program and partition
// are read-only after compilation.
//
// The manager is also the fault boundary of the service. A panic anywhere in
// a session's op path (a bad kernel, an engine bug) is contained to that
// session: the session is poisoned — subsequent operations return a
// structured "session failed" error — and every other session is unaffected.
// Operations carry a context; large step batches execute in bounded chunks
// that honor cancellation and deadlines between chunks. Admission control
// (max sessions, max in-flight ops, max step cycles per batch) sheds load
// before it queues, the compile cache evicts cold designs under a byte
// budget (designs with live sessions are pinned), and an idle reaper closes
// abandoned sessions.
//
// The manager is transport-agnostic (harness experiments and benchmarks
// drive it in-process); http.go exposes it as the HTTP+JSON API behind
// cmd/gsim-serve.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"math/bits"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/emit"
	"gsim/internal/engine"
	"gsim/internal/faultpoint"
	"gsim/internal/firrtl"
	"gsim/internal/ir"
	"gsim/internal/obs"
	"gsim/internal/snapshot"
	"gsim/internal/trace"
)

// Sentinel errors for the service's refusal paths. The HTTP layer maps them
// to statuses (429/503 with Retry-After for admission, 500 for poisoned
// sessions); in-process callers match with errors.Is.
var (
	// ErrDraining: the manager is shutting down and accepts no new work.
	ErrDraining = errors.New("draining")
	// ErrTooManySessions: the MaxSessions admission limit is reached.
	ErrTooManySessions = errors.New("session limit reached")
	// ErrTooManyInFlight: the MaxInFlightOps admission limit is reached.
	ErrTooManyInFlight = errors.New("too many ops in flight")
	// ErrStepBudget: one ops batch asks for more step cycles than allowed.
	ErrStepBudget = errors.New("step batch exceeds cycle budget")
	// ErrSessionFailed: the session was poisoned by a panic; it accepts no
	// further operations (close it and open a fresh one).
	ErrSessionFailed = errors.New("session failed")
)

// defaultStepChunk bounds how many cycles run between cancellation checks in
// a step op. The chunk is the service's cancellation latency unit: small
// enough that a canceled 10M-cycle batch aborts promptly, large enough that
// the per-chunk check is invisible next to thousands of simulated cycles.
const defaultStepChunk = 8192

// DefaultMaxBodyBytes is the request-body cap applied when Limits leaves
// MaxBodyBytes zero: generous enough for large FIRRTL sources and snapshot
// blobs, small enough that one malicious POST cannot balloon the heap.
const DefaultMaxBodyBytes int64 = 64 << 20

// minReapInterval floors the idle reaper's poll period. A misconfigured (or
// carelessly derived) interval of a few nanoseconds would make the reaper
// goroutine busy-spin on its ticker; anything below this is clamped.
const minReapInterval = time.Millisecond

// maxTraceBytesPerLane caps each lane's in-memory VCD capture. A traced lane
// that outgrows the cap keeps simulating; the waveform is truncated and
// flagged, never the session killed.
const maxTraceBytesPerLane = 16 << 20

// Limits is the manager's admission-control and resource-governance
// configuration. Zero values mean "unlimited" / "disabled" — NewManager uses
// all-zero Limits, preserving the permissive single-user behavior.
type Limits struct {
	// MaxSessions caps live sessions; creation beyond it returns
	// ErrTooManySessions (HTTP 503 + Retry-After).
	MaxSessions int
	// MaxInFlightOps caps concurrently executing (or lock-waiting) op
	// batches across all sessions; beyond it Apply returns
	// ErrTooManyInFlight (HTTP 429 + Retry-After).
	MaxInFlightOps int
	// MaxStepsPerBatch caps the total step cycles one ops batch may request;
	// beyond it Apply refuses the whole batch with ErrStepBudget before
	// executing anything (HTTP 429).
	MaxStepsPerBatch int
	// OpTimeout is the per-request deadline the HTTP layer applies to each
	// ops batch. Zero: no deadline.
	OpTimeout time.Duration
	// IdleTimeout reaps sessions with no operation for this long. Zero: no
	// reaping.
	IdleTimeout time.Duration
	// ReapInterval is the reaper's poll period (default IdleTimeout/4). Both
	// the derived and an explicitly configured period are clamped to at least
	// minReapInterval so a tiny IdleTimeout cannot produce a zero-period
	// (ticker panic) or busy-spinning reaper.
	ReapInterval time.Duration
	// MaxBodyBytes caps each HTTP request body the JSON transport reads
	// (create, ops, restore). Zero: DefaultMaxBodyBytes. Negative: unlimited.
	MaxBodyBytes int64
	// CacheBudgetBytes bounds the compile cache's resident code+data bytes;
	// cold designs evict LRU-first, designs with live sessions are pinned.
	// Zero: unlimited.
	CacheBudgetBytes int64
	// StepChunk overrides the cycles-per-cancellation-check chunk size
	// (default defaultStepChunk). Mostly for tests.
	StepChunk int
}

// SessionSpec is a client's session configuration: the same knobs cmd/gsim
// exposes as flags, with the same defaults (gsim preset, kernel eval).
type SessionSpec struct {
	Engine       string `json:"engine,omitempty"`        // gsim | verilator | essent | arcilator (default gsim)
	Eval         string `json:"eval,omitempty"`          // kernel | kernel-nofuse | interp (default kernel)
	Threads      int    `json:"threads,omitempty"`       // gsim -> GSIMMT, verilator -> Verilator-MT
	Coarsen      bool   `json:"coarsen,omitempty"`       // adaptive level coarsening (parallel essential-signal)
	MaxSupernode int    `json:"max_supernode,omitempty"` // supernode size cap (0 = default)

	// Lanes batches K independent stimulus lanes through one compiled design
	// (engine.Gang). 0 or 1 opens a plain scalar session; 2..emit.MaxGangLanes
	// opens a gang session whose ops address lanes (Op.Lane). Lanes is a
	// per-session execution knob, not a compile knob: it is deliberately
	// absent from the compile-cache key, so scalar sessions and gangs of every
	// width share one compiled design. Gang sessions execute on the full-cycle
	// model regardless of Engine (the spec still selects the optimization
	// pipeline and anchors the cache key).
	Lanes int `json:"lanes,omitempty"`
	// TraceLanes opts the listed lanes into in-memory VCD capture (fetched via
	// GET .../vcd?lane=N), bounded at maxTraceBytesPerLane per lane. Scalar
	// sessions accept only lane 0.
	TraceLanes []int `json:"trace_lanes,omitempty"`
	// TraceResume defers each traced lane's capture to its first restore:
	// instead of writing a VCD header at session creation, the lane's tracer
	// is attached in resume mode when a snapshot is restored into it, seeded
	// from the restored state and timestamped at the restored cycle — and
	// optionally prefixed with waveform bytes captured elsewhere (the restore
	// request's trace_prefix). This is the session-migration handoff: a fleet
	// router recreates a traced session on a new replica with TraceResume set,
	// restores each lane, and the lane's waveform continues byte-identically
	// to an unmigrated run.
	TraceResume bool `json:"trace_resume,omitempty"`
}

// coreConfig resolves the spec to a core configuration, mirroring cmd/gsim's
// flag handling so a server session and a CLI run with the same knobs build
// the same simulator.
func (sp SessionSpec) coreConfig() (core.Config, error) {
	var cfg core.Config
	engineName := sp.Engine
	if engineName == "" {
		engineName = "gsim"
	}
	switch engineName {
	case "gsim":
		if sp.Threads > 0 {
			cfg = core.GSIMMT(sp.Threads)
		} else {
			cfg = core.GSIM()
		}
	case "verilator":
		if sp.Threads > 0 {
			cfg = core.VerilatorMT(sp.Threads)
		} else {
			cfg = core.Verilator()
		}
	case "essent":
		cfg = core.Essent()
	case "arcilator":
		cfg = core.Arcilator()
	default:
		return cfg, fmt.Errorf("server: unknown engine %q", engineName)
	}
	if sp.Threads > 0 && cfg.Threads == 0 {
		return cfg, fmt.Errorf("server: threads only valid with engine gsim or verilator")
	}
	evalName := sp.Eval
	if evalName == "" {
		evalName = "kernel"
	}
	mode, err := engine.ParseEvalMode(evalName)
	if err != nil {
		return cfg, fmt.Errorf("server: %v", err)
	}
	cfg.Eval = mode
	cfg.Activity.Coarsen = sp.Coarsen
	if sp.MaxSupernode > 0 {
		cfg.MaxSupernode = sp.MaxSupernode
	}
	return cfg, nil
}

// Manager multiplexes sessions over a compiled-design cache.
type Manager struct {
	cache  *core.CompileCache
	limits Limits

	inflight atomic.Int64 // op batches admitted and not yet finished

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	draining bool
	metrics  *Metrics     // nil until InitObs
	logger   *slog.Logger // never nil (obs.NopLogger default)

	reapStop chan struct{} // closed to stop the reaper goroutine
	reapDone chan struct{} // closed when the reaper has exited
	stopOnce sync.Once
}

// NewManager returns a manager with an empty compile cache and no limits —
// the permissive configuration for in-process harnesses and tests.
func NewManager() *Manager {
	return NewManagerLimits(Limits{})
}

// NewManagerLimits returns a manager enforcing the given limits. If
// IdleTimeout is set, a background reaper runs until Drain.
func NewManagerLimits(l Limits) *Manager {
	if l.StepChunk <= 0 {
		l.StepChunk = defaultStepChunk
	}
	if l.IdleTimeout > 0 {
		if l.ReapInterval <= 0 {
			l.ReapInterval = l.IdleTimeout / 4
		}
		// Clamp last, covering both the derived period (IdleTimeout/4
		// truncates to zero below 4ns and time.NewTicker panics on
		// non-positive periods) and an explicit near-zero period that would
		// busy-spin the reaper goroutine.
		if l.ReapInterval < minReapInterval {
			l.ReapInterval = minReapInterval
		}
	}
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = DefaultMaxBodyBytes
	}
	m := &Manager{
		cache:    core.NewCompileCache(),
		limits:   l,
		sessions: map[string]*Session{},
		logger:   obs.NopLogger(),
	}
	if l.CacheBudgetBytes > 0 {
		m.cache.SetBudget(l.CacheBudgetBytes)
	}
	if l.IdleTimeout > 0 {
		m.reapStop = make(chan struct{})
		m.reapDone = make(chan struct{})
		go m.reapLoop()
	}
	return m
}

// Limits returns the manager's admission configuration.
func (m *Manager) Limits() Limits { return m.limits }

// capWriter is a bounded in-memory sink for per-lane VCD text. Writes past
// the cap are dropped (and flagged) rather than failing: a long-running
// traced lane keeps simulating with a truncated waveform instead of dying.
type capWriter struct {
	buf       bytes.Buffer
	limit     int
	truncated bool
}

func (c *capWriter) Write(p []byte) (int, error) {
	if room := c.limit - c.buf.Len(); room < len(p) {
		c.truncated = true
		if room > 0 {
			c.buf.Write(p[:room])
		}
		return len(p), nil
	}
	c.buf.Write(p)
	return len(p), nil
}

// laneTrace is one lane's opt-in waveform capture: a synchronous VCD encoder
// over a bounded buffer, flushed on demand when the client fetches it.
type laneTrace struct {
	sink *capWriter
	vcd  *trace.VCD
}

// Session is one live simulator instance — a scalar engine (sim) or a K-lane
// gang (gang); exactly one of the two is non-nil. All operations serialize on
// the session's own lock; distinct sessions never contend (beyond the shared
// read-only design).
type Session struct {
	ID       string
	Design   *core.CompiledDesign
	CacheHit bool // whether creation shared a previously compiled design

	mgr      *Manager
	cfg      core.Config
	cacheKey string
	lanes    int // 1 for scalar sessions

	lastActivity atomic.Int64  // unix nanos of the last operation
	liveLanes    atomic.Int64  // unparked lanes, readable without s.mu (scrapes)
	forceCancel  chan struct{} // closed by Drain to abort in-flight chunked ops
	cancelOnce   sync.Once

	mu           sync.Mutex
	sim          engine.Sim   // scalar sessions
	gang         *engine.Gang // gang sessions (lanes >= 2)
	laneVCD      []*laneTrace // indexed by lane; nil entries for untraced lanes
	pendingTrace []bool       // TraceResume lanes awaiting their arming restore
	closed       bool
	failed       error         // non-nil once poisoned by a panic
	lastCycles   uint64        // cycle count captured at Close (sim is gone after)
	steps        uint64        // lane-cycles stepped through this session
	stepTime     time.Duration // wall time inside Step, for sessions/s diagnostics
}

// Lanes returns the session's lane count (1 for scalar sessions).
func (s *Session) Lanes() int { return s.lanes }

// CreateSession compiles (or reuses) the design described by FIRRTL source
// text under the spec's configuration and opens a session over it.
func (m *Manager) CreateSession(src string, spec SessionSpec) (*Session, error) {
	sum := sha256.Sum256([]byte(src))
	return m.create(fmt.Sprintf("firrtl:%x", sum), spec, func() (*ir.Graph, error) {
		return firrtl.Load(src)
	})
}

// CreateSessionGraph opens a session over a pre-elaborated graph. sourceKey
// must identify the design content (it anchors the compile-cache key the way
// the FIRRTL content hash does for CreateSession).
func (m *Manager) CreateSessionGraph(g *ir.Graph, sourceKey string, spec SessionSpec) (*Session, error) {
	return m.create("graph:"+sourceKey, spec, func() (*ir.Graph, error) { return g, nil })
}

// admitSession checks creation-time admission under the manager lock.
func (m *Manager) admitSession() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.reject(rejectDraining)
		return fmt.Errorf("server: %w, not accepting sessions", ErrDraining)
	}
	if m.limits.MaxSessions > 0 && len(m.sessions) >= m.limits.MaxSessions {
		m.metrics.reject(rejectSessions)
		return fmt.Errorf("server: %w (%d live)", ErrTooManySessions, len(m.sessions))
	}
	return nil
}

// resolveLanes validates the spec's gang shape: lane count and trace opt-ins.
func resolveLanes(spec SessionSpec) (int, error) {
	lanes := spec.Lanes
	if lanes == 0 {
		lanes = 1
	}
	if lanes < 1 || lanes > emit.MaxGangLanes {
		return 0, fmt.Errorf("server: lanes %d outside [1,%d]", spec.Lanes, emit.MaxGangLanes)
	}
	for _, l := range spec.TraceLanes {
		if l < 0 || l >= lanes {
			return 0, fmt.Errorf("server: trace lane %d outside [0,%d)", l, lanes)
		}
	}
	return lanes, nil
}

func (m *Manager) create(sourceKey string, spec SessionSpec, load func() (*ir.Graph, error)) (*Session, error) {
	cfg, err := spec.coreConfig()
	if err != nil {
		return nil, err
	}
	lanes, err := resolveLanes(spec)
	if err != nil {
		return nil, err
	}
	if err := m.admitSession(); err != nil {
		return nil, err
	}

	// Get pins the design (refcount) until the session closes; every early
	// exit below must release it.
	key := core.CacheKey(sourceKey, cfg)
	design, hit, err := m.cache.Get(key, func() (*core.CompiledDesign, error) {
		g, err := load()
		if err != nil {
			return nil, err
		}
		return core.CompileDesign(g, cfg)
	})
	if err != nil {
		return nil, err
	}
	var sim engine.Sim
	var gang *engine.Gang
	if lanes > 1 {
		gang, err = design.NewGang(lanes)
	} else {
		sim, err = design.NewSim(cfg)
	}
	if err != nil {
		m.cache.Release(key)
		return nil, err
	}
	closeEngine := func() {
		if gang != nil {
			gang.Close()
		} else {
			sim.Close()
		}
	}

	// Wire opt-in per-lane VCD capture before the first step so traces start
	// at the session's cycle zero. TraceResume sessions defer the attach to
	// each lane's first restore instead (armResumeTrace), where the restored
	// state seeds the diff base and the restored cycle stamps the stream.
	var laneVCD []*laneTrace
	var pendingTrace []bool
	if spec.TraceResume {
		if len(spec.TraceLanes) > 0 {
			pendingTrace = make([]bool, lanes)
			for _, l := range spec.TraceLanes {
				pendingTrace[l] = true
			}
		}
	} else {
		laneVCD, err = attachLaneTraces(design, sim, gang, lanes, spec.TraceLanes, m.Metrics().traceMetrics())
		if err != nil {
			closeEngine()
			m.cache.Release(key)
			return nil, err
		}
	}

	m.mu.Lock()
	// Re-check admission: a drain or a competing create may have raced the
	// compile. Refusal must release everything acquired above.
	if m.draining || (m.limits.MaxSessions > 0 && len(m.sessions) >= m.limits.MaxSessions) {
		refuse, cause := ErrDraining, rejectDraining
		if !m.draining {
			refuse, cause = ErrTooManySessions, rejectSessions
		}
		m.metrics.reject(cause)
		m.mu.Unlock()
		closeEngine()
		m.cache.Release(key)
		return nil, fmt.Errorf("server: %w, not accepting sessions", refuse)
	}
	defer m.mu.Unlock()
	m.nextID++
	s := &Session{
		ID:           fmt.Sprintf("s%d", m.nextID),
		Design:       design,
		CacheHit:     hit,
		mgr:          m,
		cfg:          cfg,
		cacheKey:     key,
		lanes:        lanes,
		forceCancel:  make(chan struct{}),
		sim:          sim,
		gang:         gang,
		laneVCD:      laneVCD,
		pendingTrace: pendingTrace,
	}
	s.lastActivity.Store(time.Now().UnixNano())
	m.sessions[s.ID] = s
	// Metrics/logger are read directly: this goroutine holds m.mu.
	if m.metrics != nil {
		m.metrics.attachEngineObs(sim, gang)
		m.metrics.SessionsCreated.Inc()
	}
	s.syncLiveLanes()
	m.logger.Info("session created",
		"session", s.ID, "design", designHashPrefix(sourceKey),
		"lanes", lanes, "cache_hit", hit)
	return s, nil
}

// designHashPrefix shortens a session source key ("firrtl:<sha256>" or
// "graph:<key>") to a log-friendly design identifier.
func designHashPrefix(sourceKey string) string {
	if _, h, ok := strings.Cut(sourceKey, ":"); ok && len(h) > 12 {
		return h[:12]
	}
	return sourceKey
}

// attachLaneTraces builds bounded in-memory VCD capture for the requested
// lanes. Returns nil when nothing is traced.
func attachLaneTraces(design *core.CompiledDesign, sim engine.Sim, gang *engine.Gang, lanes int, traceLanes []int, tm *trace.Metrics) ([]*laneTrace, error) {
	if len(traceLanes) == 0 {
		return nil, nil
	}
	out := make([]*laneTrace, lanes)
	for _, l := range traceLanes {
		if out[l] != nil {
			continue // duplicate opt-in
		}
		sink := &capWriter{limit: maxTraceBytesPerLane}
		v, err := trace.NewVCD(sink, design.Prog, nil, trace.Options{Sync: true, Metrics: tm})
		if err != nil {
			return nil, err
		}
		if gang != nil {
			gang.AttachLaneTracer(l, v)
		} else {
			at, ok := sim.(interface{ AttachTracer(engine.Tracer) })
			if !ok {
				return nil, fmt.Errorf("server: engine does not support tracing")
			}
			at.AttachTracer(v)
		}
		out[l] = &laneTrace{sink: sink, vcd: v}
	}
	return out, nil
}

// Session returns a live session by ID.
func (m *Manager) Session(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("server: no session %q", id)
	}
	return s, nil
}

// SessionIDs lists live sessions (sorted by creation: IDs are sequential).
func (m *Manager) SessionIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	return ids
}

// SessionCount returns the number of live sessions.
func (m *Manager) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// InFlightOps returns the number of currently admitted op batches.
func (m *Manager) InFlightOps() int64 { return m.inflight.Load() }

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// CacheStats is the compile cache's full governance view: lookup traffic,
// residency, and eviction pressure.
type CacheStats struct {
	Hits      uint64 // lookups that found an existing entry
	Misses    uint64 // lookups that compiled
	Designs   int    // resident compiled designs
	Evictions uint64 // lifetime evictions under the byte budget
	Bytes     int64  // accounted resident bytes
	Budget    int64  // byte budget (0 = unlimited)
}

// CacheStats reports the compile cache's hit/miss traffic, resident designs
// and bytes, byte budget, and lifetime evictions.
func (m *Manager) CacheStats() CacheStats {
	hits, misses := m.cache.Stats()
	used, budget, evictions := m.cache.Governance()
	return CacheStats{
		Hits:      hits,
		Misses:    misses,
		Designs:   m.cache.Len(),
		Evictions: evictions,
		Bytes:     used,
		Budget:    budget,
	}
}

// CacheGovernance reports the compile cache's resident bytes, byte budget
// (0 = unlimited), and lifetime evictions.
func (m *Manager) CacheGovernance() (usedBytes, budgetBytes int64, evictions uint64) {
	return m.cache.Governance()
}

// reapLoop closes idle sessions until Drain stops it.
func (m *Manager) reapLoop() {
	defer close(m.reapDone)
	t := time.NewTicker(m.limits.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-m.reapStop:
			return
		case <-t.C:
			m.ReapIdle(m.limits.IdleTimeout)
		}
	}
}

// ReapIdle closes every session whose last operation is older than maxIdle
// and returns how many it closed. Safe to call concurrently with traffic: a
// session that becomes active between the scan and the close just closes —
// the idle threshold is advisory, not transactional.
func (m *Manager) ReapIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	m.mu.Lock()
	var idle []*Session
	for _, s := range m.sessions {
		if s.lastActivity.Load() < cutoff {
			idle = append(idle, s)
		}
	}
	m.mu.Unlock()
	for _, s := range idle {
		_ = s.Close()
	}
	if len(idle) > 0 {
		if mt := m.Metrics(); mt != nil {
			mt.SessionsReaped.Add(uint64(len(idle)))
		}
		m.log().Info("idle sessions reaped", "count", len(idle), "max_idle", maxIdle)
	}
	return len(idle)
}

// stopReaper is idempotent and safe when no reaper was started.
func (m *Manager) stopReaper() {
	m.stopOnce.Do(func() {
		if m.reapStop != nil {
			close(m.reapStop)
			<-m.reapDone
		}
	})
}

// BeginDrain flips the manager into its draining state without touching the
// live sessions: new session creation is refused with ErrDraining and /readyz
// reports 503, while existing sessions keep serving ops, snapshots, and
// restores. This is the migration window a fleet router needs — the replica
// stops attracting new placements the instant the drain is decided, but its
// sessions stay alive (and snapshot-able) until they have been moved off.
// Idempotent; Drain goes through it as its first step.
func (m *Manager) BeginDrain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Drain stops accepting new sessions and closes every live one, bounded by
// ctx. In-flight chunked operations are force-canceled (they abort at their
// next chunk boundary with a cancellation error); the drain then waits for
// each session to close. If ctx expires first, the remaining closes continue
// in the background and Drain reports how many sessions were still open.
func (m *Manager) Drain(ctx context.Context) error {
	m.BeginDrain()
	m.mu.Lock()
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()

	// Cancel before joining the reaper: the reaper may be blocked in Close on
	// a session mid-10M-cycle step, and only the force cancel makes that step
	// release the session lock at its next chunk boundary.
	for _, s := range open {
		s.cancel()
	}
	m.stopReaper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, s := range open {
			_ = s.Close()
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with %d sessions still open: %w", m.SessionCount(), ctx.Err())
	}
}

// Op is one entry of a batched operation list — the unit of the service's
// request batching. A round-trip per poke would dominate simulation cost;
// a batch applies many pokes/steps/peeks atomically under one session lock.
//
// On gang sessions Lane addresses one stimulus lane: poke/peek default to
// lane 0 when Lane is nil; step advances every live lane at once (Lane is
// rejected — lanes advance in lockstep, that is the point of a gang); reset
// with Lane resets one lane, without it the whole gang; park/wake (gang-only)
// require Lane and toggle the lane's liveness — a parked lane freezes
// bit-exactly and skips all work until woken. Scalar sessions accept only a
// nil or zero Lane and reject park/wake.
type Op struct {
	Op    string `json:"op"`              // poke | peek | step | reset | park | wake
	Name  string `json:"name,omitempty"`  // poke/peek: node name
	Value string `json:"value,omitempty"` // poke: FIRRTL-style literal ("h1f", "42", "b101")
	N     int    `json:"n,omitempty"`     // step: cycle count (default 1)
	Lane  *int   `json:"lane,omitempty"`  // gang sessions: target lane
}

// OpResult is the outcome of one Op. Peek fills Value (width'hHEX); step
// fills Cycles with the session's total simulated cycles after the step.
// Error is set only on the op that poisoned the session (panic + stack).
type OpResult struct {
	Op     string `json:"op"`
	Name   string `json:"name,omitempty"`
	Value  string `json:"value,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
	Lane   *int   `json:"lane,omitempty"`
	Error  string `json:"error,omitempty"`
}

// errClosed is returned for any operation on a closed session.
func (s *Session) errClosed() error { return fmt.Errorf("server: session %s is closed", s.ID) }

// touch records activity for the idle reaper.
func (s *Session) touch() { s.lastActivity.Store(time.Now().UnixNano()) }

// cancel force-aborts in-flight chunked operations (drain path). Idempotent.
func (s *Session) cancel() { s.cancelOnce.Do(func() { close(s.forceCancel) }) }

// checkCancel reports why a chunked op must stop early, or nil.
func (s *Session) checkCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("server: session %s: op canceled: %w", s.ID, err)
	}
	select {
	case <-s.forceCancel:
		return fmt.Errorf("server: session %s: op aborted: %w", s.ID, ErrDraining)
	default:
		return nil
	}
}

// stepBudget sums a batch's requested step cycles for admission.
func stepBudget(ops []Op) int {
	total := 0
	for _, op := range ops {
		if op.Op == "step" {
			n := op.N
			if n <= 0 {
				n = 1
			}
			total += n
		}
	}
	return total
}

// Apply runs a batch of operations atomically: no other session operation
// interleaves. The first failing op aborts the batch; results for completed
// ops are returned alongside the error.
//
// ctx bounds the batch: step ops execute in chunks (Limits.StepChunk cycles)
// and a cancellation or deadline aborts between chunks, returning the
// partial results — the session itself stays healthy, its cycle count
// reflects the cycles actually stepped.
//
// A panic inside any op (engine bug, injected fault) is contained here: the
// session is poisoned — this and every subsequent Apply returns an error
// wrapping ErrSessionFailed, with the panic value and stack in the failing
// op's result — and no other session is affected.
func (s *Session) Apply(ctx context.Context, ops []Op) (results []OpResult, err error) {
	mt := s.mgr.Metrics()
	if lim := s.mgr.limits.MaxInFlightOps; lim > 0 && s.mgr.inflight.Add(1) > int64(lim) {
		s.mgr.inflight.Add(-1)
		mt.reject(rejectInFlight)
		return nil, fmt.Errorf("server: %w (limit %d)", ErrTooManyInFlight, lim)
	} else if lim <= 0 {
		s.mgr.inflight.Add(1)
	}
	defer s.mgr.inflight.Add(-1)
	if lim := s.mgr.limits.MaxStepsPerBatch; lim > 0 {
		if total := stepBudget(ops); total > lim {
			mt.reject(rejectStepBudget)
			return nil, fmt.Errorf("server: %w (%d cycles requested, limit %d)", ErrStepBudget, total, lim)
		}
	}
	s.touch()
	defer s.touch()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.errClosed()
	}
	if s.failed != nil {
		return nil, s.failed
	}

	// SlowOp's stall (the armed delay) happens inside Hit itself.
	faultpoint.Hit(faultpoint.SlowOp)

	results = make([]OpResult, 0, len(ops))
	var cur Op
	// The fault boundary: runs before the mutex unlock (LIFO), so poisoning
	// happens under the session lock.
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			s.failed = fmt.Errorf("server: session %s: %w: panic in %q op: %v", s.ID, ErrSessionFailed, cur.Op, r)
			detail := fmt.Sprintf("panic in %q op: %v\n%s", cur.Op, r, stack)
			if mt != nil {
				mt.SessionsFailed.Inc()
			}
			s.mgr.log().Error("session poisoned",
				"session", s.ID, "op", cur.Op, "panic", fmt.Sprint(r), "stack", string(stack))
			results = append(results, OpResult{Op: cur.Op, Name: cur.Name, Error: detail})
			err = s.failed
		}
	}()

	chunk := s.mgr.limits.StepChunk
	if chunk <= 0 {
		chunk = defaultStepChunk
	}
	for i, op := range ops {
		cur = op
		res := OpResult{Op: op.Op, Name: op.Name, Lane: op.Lane}
		var opStart time.Time
		if mt != nil {
			opStart = time.Now()
		}
		switch op.Op {
		case "poke":
			n := s.Design.Graph.FindNode(op.Name)
			if n == nil {
				return results, fmt.Errorf("server: op %d: no node %q", i, op.Name)
			}
			v, err := bitvec.Parse(n.Width, op.Value)
			if err != nil {
				return results, fmt.Errorf("server: op %d: %v", i, err)
			}
			lane, lerr := s.opLane(op, i)
			if lerr != nil {
				return results, lerr
			}
			if s.gang != nil {
				s.gang.Poke(lane, n.ID, v)
			} else {
				s.sim.Poke(n.ID, v)
			}
		case "peek":
			n := s.Design.Graph.FindNode(op.Name)
			if n == nil {
				return results, fmt.Errorf("server: op %d: no node %q", i, op.Name)
			}
			lane, lerr := s.opLane(op, i)
			if lerr != nil {
				return results, lerr
			}
			if s.gang != nil {
				res.Value = s.gang.Peek(lane, n.ID).String()
			} else {
				res.Value = s.sim.Peek(n.ID).String()
			}
		case "step":
			if op.Lane != nil {
				// Lanes advance in lockstep — that is the gang's economics.
				// Park a lane to exclude it instead of stepping one lane.
				return results, fmt.Errorf("server: op %d: step takes no lane (park/wake control per-lane progress)", i)
			}
			cycles := op.N
			if cycles <= 0 {
				cycles = 1
			}
			// steps counts lane-cycles (simulated work), so a gang session's
			// Throughput reports aggregate lanes/s. The live mask is fixed for
			// the whole op: ops in a batch are sequential, so no park/wake can
			// interleave a step.
			laneFactor := uint64(1)
			if s.gang != nil {
				laneFactor = uint64(bits.OnesCount64(s.gang.LiveMask()))
			}
			start := time.Now()
			done := 0
			for done < cycles {
				if cerr := s.checkCancel(ctx); cerr != nil {
					s.stepTime += time.Since(start)
					s.steps += uint64(done) * laneFactor
					return results, cerr
				}
				if faultpoint.Hit(faultpoint.StepPanic) {
					panic("faultpoint: injected step panic")
				}
				n := cycles - done
				if n > chunk {
					n = chunk
				}
				if s.gang != nil {
					for c := 0; c < n; c++ {
						s.gang.Step()
					}
				} else {
					for c := 0; c < n; c++ {
						s.sim.Step()
					}
				}
				done += n
			}
			s.stepTime += time.Since(start)
			s.steps += uint64(cycles) * laneFactor
			if mt != nil {
				mt.StepCycles.Add(uint64(cycles) * laneFactor)
				// Flush so /metrics is exact between op batches, not just at
				// the 1k-cycle amortization boundary.
				flushEngineObs(s.sim, s.gang)
			}
			if s.gang != nil {
				res.Cycles = s.gang.Cycles()
			} else {
				res.Cycles = s.sim.Stats().Cycles
			}
		case "reset":
			if s.gang != nil && op.Lane != nil {
				lane, lerr := s.opLane(op, i)
				if lerr != nil {
					return results, lerr
				}
				s.gang.ResetLane(lane)
				res.Cycles = s.gang.Cycles()
				break
			}
			if s.gang != nil {
				s.gang.Reset()
			} else {
				s.sim.Reset()
			}
			s.steps, s.stepTime = 0, 0
			res.Cycles = 0
		case "park", "wake":
			if s.gang == nil {
				return results, fmt.Errorf("server: op %d: %q requires a gang session", i, op.Op)
			}
			if op.Lane == nil {
				return results, fmt.Errorf("server: op %d: %q requires a lane", i, op.Op)
			}
			lane, lerr := s.opLane(op, i)
			if lerr != nil {
				return results, lerr
			}
			s.gang.SetLive(lane, op.Op == "wake")
			s.syncLiveLanes()
		default:
			return results, fmt.Errorf("server: op %d: unknown op %q (want poke, peek, step, reset, park, or wake)", i, op.Op)
		}
		if mt != nil {
			mt.opDone(op.Op, time.Since(opStart).Seconds())
		}
		results = append(results, res)
	}
	return results, nil
}

// opLane resolves an op's target lane: nil defaults to lane 0 (the scalar
// behavior), anything else must fall inside the session's lane range.
func (s *Session) opLane(op Op, i int) (int, error) {
	if op.Lane == nil {
		return 0, nil
	}
	l := *op.Lane
	if l < 0 || l >= s.lanes {
		return 0, fmt.Errorf("server: op %d: lane %d outside [0,%d)", i, l, s.lanes)
	}
	return l, nil
}

// Poke sets an input by name from a FIRRTL-style literal.
func (s *Session) Poke(name, literal string) error {
	_, err := s.Apply(context.Background(), []Op{{Op: "poke", Name: name, Value: literal}})
	return err
}

// Peek reads a node by name, rendered as width'hHEX.
func (s *Session) Peek(name string) (string, error) {
	res, err := s.Apply(context.Background(), []Op{{Op: "peek", Name: name}})
	if err != nil {
		return "", err
	}
	return res[0].Value, nil
}

// Step simulates n cycles (n <= 0 steps one) and returns total cycles.
func (s *Session) Step(n int) (uint64, error) {
	res, err := s.Apply(context.Background(), []Op{{Op: "step", N: n}})
	if err != nil {
		return 0, err
	}
	return res[0].Cycles, nil
}

// Snapshot serializes the session's complete simulator state (gang sessions:
// lane 0 — use SnapshotLane for the others).
func (s *Session) Snapshot() ([]byte, error) { return s.SnapshotLane(0) }

// SnapshotLane serializes one lane's state in the standard scalar snapshot
// format: the blob restores into a scalar session, a cmd/gsim run, or any
// lane of any gang over the same compiled design.
func (s *Session) SnapshotLane(lane int) ([]byte, error) {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.errClosed()
	}
	if s.failed != nil {
		return nil, s.failed
	}
	if s.gang != nil {
		return snapshot.SaveLane(s.gang, lane)
	}
	if lane != 0 {
		return nil, fmt.Errorf("server: session %s is scalar; lane %d does not exist", s.ID, lane)
	}
	return snapshot.Save(s.sim)
}

// Restore overwrites the session's state from a snapshot blob. The blob must
// carry this session's design hash (see internal/snapshot); a snapshot taken
// in any session of the same compiled design — or by cmd/gsim -save on the
// same design and options — restores cleanly. A blob that fails validation
// (corruption, wrong design) leaves the session state untouched.
func (s *Session) Restore(data []byte) error { return s.RestoreLane(0, data) }

// RestoreLane overwrites one lane's state from a snapshot blob, leaving the
// other lanes untouched. The format is lane-agnostic: a scalar session's
// snapshot restores into any gang lane and vice versa.
func (s *Session) RestoreLane(lane int, data []byte) error {
	return s.restoreLane(lane, data, nil)
}

// RestoreLaneTrace is RestoreLane plus waveform continuation: vcdPrefix (the
// waveform the session captured before a migration handoff) seeds the lane's
// capture buffer, and the lane's resume-mode tracer — deferred at creation by
// SessionSpec.TraceResume — is armed from the restored state. Fetching the
// lane's VCD afterwards returns prefix + continuation, byte-identical to a
// session that was never moved.
func (s *Session) RestoreLaneTrace(lane int, data, vcdPrefix []byte) error {
	return s.restoreLane(lane, data, vcdPrefix)
}

func (s *Session) restoreLane(lane int, data, vcdPrefix []byte) error {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.errClosed()
	}
	if s.failed != nil {
		return s.failed
	}
	if s.gang == nil && lane != 0 {
		return fmt.Errorf("server: session %s is scalar; lane %d does not exist", s.ID, lane)
	}
	if len(vcdPrefix) > 0 && (s.pendingTrace == nil || lane >= len(s.pendingTrace) || !s.pendingTrace[lane]) {
		return fmt.Errorf("server: lane %d is not awaiting a trace resume (create the session with trace_resume and trace_lanes)", lane)
	}
	// Decode once so the restored state image is in hand for the resume
	// tracer's diff base; the blob's design hash is validated against this
	// session's compiled program exactly as snapshot.Restore would.
	st, err := snapshot.Decode(data, s.Design.Prog)
	if err != nil {
		return err
	}
	// steps/stepTime keep counting only cycles this session stepped itself —
	// a restored snapshot's history was simulated elsewhere, and folding it
	// in would corrupt Throughput.
	if s.gang != nil {
		if err := s.gang.RestoreLane(lane, st); err != nil {
			return err
		}
		// The gang's lockstep counter is wall-clock-like (Step calls issued);
		// re-anchor it so a migrated gang reports cycle continuity instead of
		// restarting from zero on its new home.
		if st.Stats.Cycles > s.gang.Cycles() {
			s.gang.SetCycles(st.Stats.Cycles)
		}
	} else {
		sn, ok := s.sim.(engine.Snapshotter)
		if !ok {
			return snapshot.ErrNotSnapshotter
		}
		if err := sn.RestoreState(st); err != nil {
			return err
		}
	}
	if s.pendingTrace != nil && lane < len(s.pendingTrace) && s.pendingTrace[lane] {
		if err := s.armResumeTrace(lane, st, vcdPrefix); err != nil {
			return err
		}
		s.pendingTrace[lane] = false
	}
	return nil
}

// armResumeTrace attaches a resume-mode tracer to a TraceResume lane after
// its first restore: the capture buffer is seeded with the pre-handoff
// waveform bytes, the diff base with the restored state, and the timestamp
// with the restored cycle — the continuation appends byte-identically to the
// prefix.
func (s *Session) armResumeTrace(lane int, st *engine.SimState, prefix []byte) error {
	sink := &capWriter{limit: maxTraceBytesPerLane}
	if len(prefix) > 0 {
		_, _ = sink.Write(prefix)
	}
	v, err := trace.NewVCD(sink, s.Design.Prog, nil, trace.Options{
		Sync:    true,
		Resume:  &trace.Resume{Time: st.Stats.Cycles, State: st.State},
		Metrics: s.mgr.Metrics().traceMetrics(),
	})
	if err != nil {
		return err
	}
	if s.gang != nil {
		s.gang.AttachLaneTracer(lane, v)
	} else {
		at, ok := s.sim.(interface{ AttachTracer(engine.Tracer) })
		if !ok {
			return fmt.Errorf("server: engine does not support tracing")
		}
		at.AttachTracer(v)
	}
	if s.laneVCD == nil {
		s.laneVCD = make([]*laneTrace, s.lanes)
	}
	s.laneVCD[lane] = &laneTrace{sink: sink, vcd: v}
	return nil
}

// Failed returns the poisoning error, or nil while the session is healthy.
func (s *Session) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Cycles returns the session's simulated cycle count (gang sessions: step
// calls issued, i.e. lockstep cycles, not lane-cycles). After Close it
// reports the final count captured at close time (the engine itself is gone).
func (s *Session) Cycles() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.lastCycles
	}
	if s.gang != nil {
		return s.gang.Cycles()
	}
	return s.sim.Stats().Cycles
}

// LaneInfo is one lane's state summary — GET /v1/sessions/{id}/lanes.
type LaneInfo struct {
	Lane           int    `json:"lane"`
	Live           bool   `json:"live"`
	Cycles         uint64 `json:"cycles"`
	Instrs         uint64 `json:"instrs"`
	Traced         bool   `json:"traced"`
	TraceTruncated bool   `json:"trace_truncated,omitempty"`
}

// LaneInfos summarizes every lane. Scalar sessions report one lane (always
// live), so clients can treat every session uniformly.
func (s *Session) LaneInfos() ([]LaneInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.errClosed()
	}
	infos := make([]LaneInfo, s.lanes)
	for l := range infos {
		infos[l].Lane = l
		if s.gang != nil {
			st := s.gang.LaneStats(l)
			infos[l].Live = s.gang.Live(l)
			infos[l].Cycles = st.Cycles
			infos[l].Instrs = st.InstrsExecuted
		} else {
			st := s.sim.Stats()
			infos[l].Live = true
			infos[l].Cycles = st.Cycles
			infos[l].Instrs = st.InstrsExecuted
		}
		if s.laneVCD != nil && s.laneVCD[l] != nil {
			infos[l].Traced = true
			infos[l].TraceTruncated = s.laneVCD[l].sink.truncated
		} else if s.pendingTrace != nil && s.pendingTrace[l] {
			infos[l].Traced = true // armed on first restore (TraceResume)
		}
	}
	return infos, nil
}

// FetchVCD flushes and returns one lane's captured waveform text. The lane
// must have been opted in at creation (SessionSpec.TraceLanes). truncated
// reports whether the capture hit its byte cap and lost the tail.
func (s *Session) FetchVCD(lane int) (vcd []byte, truncated bool, err error) {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, s.errClosed()
	}
	if lane < 0 || lane >= s.lanes {
		return nil, false, fmt.Errorf("server: lane %d outside [0,%d)", lane, s.lanes)
	}
	if s.laneVCD == nil || s.laneVCD[lane] == nil {
		return nil, false, fmt.Errorf("server: lane %d is not traced (opt in with trace_lanes at creation)", lane)
	}
	lt := s.laneVCD[lane]
	if err := lt.vcd.Flush(); err != nil {
		return nil, false, err
	}
	// Copy under the lock: the caller writes the response after we release,
	// and a concurrent step batch may append to the buffer meanwhile.
	out := append([]byte(nil), lt.sink.buf.Bytes()...)
	return out, lt.sink.truncated, nil
}

// Throughput reports the session's cumulative step throughput in kHz (0 when
// it has not stepped). Gang sessions count lane-cycles — K live lanes
// stepping N cycles is K*N — so this is aggregate simulated work per second.
func (s *Session) Throughput() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stepTime <= 0 {
		return 0
	}
	return float64(s.steps) / s.stepTime.Seconds() / 1000
}

// Close releases the session's engine, unregisters it, and unpins its design
// in the compile cache. Idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Fold any unflushed engine work into the process counters before the
	// engine is released — a session's tail cycles must not vanish.
	flushEngineObs(s.sim, s.gang)
	s.liveLanes.Store(0)
	if s.gang != nil {
		s.lastCycles = s.gang.Cycles()
		s.gang.Close()
	} else {
		s.lastCycles = s.sim.Stats().Cycles
		s.sim.Close()
	}
	for _, lt := range s.laneVCD {
		if lt != nil {
			_ = lt.vcd.Close()
		}
	}
	s.mu.Unlock()

	s.mgr.mu.Lock()
	delete(s.mgr.sessions, s.ID)
	if s.mgr.metrics != nil {
		s.mgr.metrics.SessionsClosed.Inc()
	}
	s.mgr.logger.Info("session closed", "session", s.ID, "cycles", s.lastCycles)
	s.mgr.mu.Unlock()
	s.mgr.cache.Release(s.cacheKey)
	return nil
}
