package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestReadyzFlipsOnBeginDrain is the readiness regression for fleet routing:
// the moment a drain begins — before any session is touched — /readyz must
// report 503 so routers and load balancers stop placing new sessions here,
// while the sessions already homed here keep serving (that window is when a
// router snapshots and migrates them). Previously the only way readiness
// flipped was the full Drain, which destroys every session in the same
// breath; a replica being drained for migration kept reporting ready.
func TestReadyzFlipsOnBeginDrain(t *testing.T) {
	m := NewManager()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	defer m.Drain(context.Background())

	var created CreateResponse
	postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", resp.StatusCode)
	}

	// Begin the migration-window drain over the admin endpoint.
	if resp := postJSON(t, ts.URL+"/admin/drain", struct{}{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin drain: %d", resp.StatusCode)
	}

	// Readiness flips immediately...
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after BeginDrain: %d, want 503", resp.StatusCode)
	}

	// ...new sessions are refused...
	if resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d, want 503", resp.StatusCode)
	}

	// ...but the session that lives here still serves ops and snapshots —
	// the handoff a migrating router depends on.
	base := ts.URL + "/v1/sessions/" + created.Session
	var ops OpsResponse
	if resp := postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "step", N: 5}}}, &ops); resp.StatusCode != http.StatusOK {
		t.Fatalf("ops while draining: %d, want 200", resp.StatusCode)
	}
	var snap SnapshotResponse
	if resp := postJSON(t, base+"/snapshot", struct{}{}, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot while draining: %d, want 200", resp.StatusCode)
	}
	if snap.Cycles != 5 {
		t.Fatalf("snapshot cycles = %d, want 5", snap.Cycles)
	}
}

// TestBeginDrainInProcess pins the manager-level contract Drain builds on:
// BeginDrain refuses new sessions and reports draining instantly, is
// idempotent, and leaves live sessions fully operable until Drain closes
// them.
func TestBeginDrainInProcess(t *testing.T) {
	m := NewManager()
	src := readDesign(t, "counter.fir")
	s, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}

	m.BeginDrain()
	m.BeginDrain() // idempotent
	if !m.Draining() {
		t.Fatal("manager does not report draining after BeginDrain")
	}
	if _, err := m.CreateSession(src, SessionSpec{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after BeginDrain: %v, want ErrDraining", err)
	}
	if _, err := s.Step(3); err != nil {
		t.Fatalf("step on live session during drain window: %v", err)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot during drain window: %v", err)
	}
	if got := m.SessionCount(); got != 1 {
		t.Fatalf("BeginDrain closed sessions: %d live, want 1", got)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.SessionCount() != 0 {
		t.Fatalf("Drain left %d sessions", m.SessionCount())
	}
}

// TestReadyzDuringDrain drives the full Drain while an op batch is mid-step
// and asserts readiness is already 503 before the drain completes — "the
// moment Drain begins", not after the last session closes.
func TestReadyzDuringDrain(t *testing.T) {
	m := NewManagerLimits(Limits{StepChunk: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	s, err := m.CreateSession(readDesign(t, "counter.fir"), SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// A long chunked step holds the session busy; Drain must cancel it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Apply(context.Background(), []Op{{Op: "step", N: 50_000_000}})
	}()
	// Wait until the op is actually in flight.
	for i := 0; m.InFlightOps() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- m.Drain(context.Background()) }()

	// Poll readiness; it must flip while the drain is still in progress (the
	// in-flight op guarantees a window) and certainly before drainDone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		select {
		case err := <-drainDone:
			t.Fatalf("drain completed (err=%v) before readyz ever reported 503", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
