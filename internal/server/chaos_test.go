package server

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsim/internal/faultpoint"
)

// TestChaosManager hammers one live manager with concurrent session
// lifecycles while a fault firer randomly arms every injection point in the
// tree. The invariant under test is blast-radius containment: a fault may
// fail the op that trips it (poisoned session, refused restore, failed
// compile, stalled batch) but must never corrupt anyone else — every healthy
// session's observable state stays lockstep-identical with an undisturbed
// reference trajectory, and the final drain still converges. Goroutine
// hygiene is enforced by the package's leakcheck TestMain.
func TestChaosManager(t *testing.T) {
	defer faultpoint.Reset()
	src := readDesign(t, "counter.fir")

	// Phase 0, faults disarmed: record the reference trajectory ref[c] =
	// Peek("out") at cycle c for an enabled counter. Any session in the chaos
	// phase that drifts from this table has been corrupted by a neighbor's
	// fault.
	const refCycles = 2048
	ref := make([]string, refCycles+1)
	{
		rm := NewManager()
		s, err := rm.CreateSession(src, SessionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Poke("en", "1"); err != nil {
			t.Fatal(err)
		}
		for c := 0; c <= refCycles; c++ {
			if ref[c], err = s.Peek("out"); err != nil {
				t.Fatal(err)
			}
			if c < refCycles {
				if _, err := s.Step(1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := rm.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// A tiny step chunk makes cancellation and step-panic boundaries land
	// mid-batch often; a tiny cache budget keeps eviction churning under the
	// create/close storm. Admission limits are set low enough to trip.
	m := NewManagerLimits(Limits{
		MaxSessions:      6,
		MaxInFlightOps:   16,
		MaxStepsPerBatch: 1 << 20,
		StepChunk:        16,
		CacheBudgetBytes: 1,
	})

	const workers = 8
	duration := 1200 * time.Millisecond
	if testing.Short() {
		duration = 300 * time.Millisecond
	}

	var (
		stop      = make(chan struct{}) // workers: wind down
		fireStop  = make(chan struct{}) // fault firer: stop arming
		fireDone  = make(chan struct{})
		wg        sync.WaitGroup
		created   atomic.Int64
		poisoned  atomic.Int64
		refused   atomic.Int64 // admission rejections observed
		mismatch  atomic.Int64
		gen       atomic.Int64 // bumped when a compile failure is cached
		compFails atomic.Int64
	)

	// CompileDesign caches failures by design (singleflight: a poisoned key
	// never retries), so a worker that eats an injected compile failure bumps
	// the generation, which salts the source and forces a fresh cache key.
	sourceFor := func() string {
		g := gen.Load()
		if g == 0 {
			return src
		}
		return src + "\n; chaos generation " + strconv.FormatInt(g, 10) + "\n"
	}

	// The fault firer round-robins every injection point so each fires at
	// least a few times per run, with jittered gaps so faults land at
	// arbitrary phases of the workers' op loops.
	go func() {
		defer close(fireDone)
		rng := rand.New(rand.NewSource(7))
		kinds := []string{faultpoint.StepPanic, faultpoint.SnapshotCorrupt, faultpoint.CompileFail, faultpoint.SlowOp}
		for i := 0; ; i++ {
			select {
			case <-fireStop:
				return
			case <-time.After(time.Duration(2+rng.Intn(8)) * time.Millisecond):
			}
			switch k := kinds[i%len(kinds)]; k {
			case faultpoint.SlowOp:
				faultpoint.ArmDelay(k, 1, time.Duration(1+rng.Intn(4))*time.Millisecond)
			default:
				faultpoint.Arm(k, 1)
			}
		}
	}()

	type held struct {
		sess       *Session
		cycles     uint64
		blob       []byte
		blobCycles uint64
	}

	worker := func(id int) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(id) + 100))
		var h held
		drop := func() {
			if h.sess != nil {
				_ = h.sess.Close() // closing a poisoned/raced session must always work
			}
			h = held{}
		}
		defer drop()
		for {
			select {
			case <-stop:
				return
			default:
			}

			if h.sess == nil {
				// Mostly reuse the shared design (cache-hit path); sometimes
				// salt the source so CompileDesign actually runs and an armed
				// compile-fail fault has a site to land on.
				csrc := sourceFor()
				if rng.Intn(8) == 0 {
					csrc += "\n; worker " + strconv.Itoa(id) + " salt " + strconv.Itoa(rng.Intn(4)) + "\n"
				}
				s, err := m.CreateSession(csrc, SessionSpec{})
				switch {
				case err == nil:
					if err := s.Poke("en", "1"); err != nil {
						t.Errorf("worker %d: poke on fresh session: %v", id, err)
						return
					}
					h = held{sess: s}
					created.Add(1)
				case errors.Is(err, ErrDraining):
					return
				case errors.Is(err, ErrTooManySessions):
					refused.Add(1)
					time.Sleep(time.Millisecond)
				case strings.Contains(err.Error(), "injected compile failure"):
					compFails.Add(1)
					gen.Add(1)
				default:
					t.Errorf("worker %d: unexpected create error: %v", id, err)
					return
				}
				continue
			}

			// classify routes an op error: fault-induced terminal states
			// recycle the session, shed/raced ops are retried, anything else
			// is a real bug.
			classify := func(op string, err error) (terminal bool) {
				switch {
				case errors.Is(err, ErrSessionFailed):
					poisoned.Add(1)
					drop()
					return true
				case errors.Is(err, ErrDraining), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					drop()
					return true
				case strings.Contains(err.Error(), "is closed"):
					h = held{} // reaped/raced away beneath us; nothing to close
					return true
				case errors.Is(err, ErrTooManyInFlight), errors.Is(err, ErrStepBudget):
					refused.Add(1)
					return false
				default:
					t.Errorf("worker %d: unexpected %s error: %v", id, op, err)
					return true
				}
			}

			switch r := rng.Intn(100); {
			case r < 55: // step a handful of cycles
				n := 1 + rng.Intn(5)
				if h.cycles+uint64(n) > refCycles {
					drop() // past the reference table; start over
					continue
				}
				if _, err := h.sess.Step(n); err != nil {
					classify("step", err)
					continue
				}
				h.cycles += uint64(n)
			case r < 80: // peek and hold the session to the reference run
				out, err := h.sess.Peek("out")
				if err != nil {
					classify("peek", err)
					continue
				}
				if want := ref[h.cycles]; out != want {
					mismatch.Add(1)
					t.Errorf("worker %d: session %s at cycle %d reads %s, reference says %s",
						id, h.sess.ID, h.cycles, out, want)
					drop()
				}
			case r < 88: // snapshot (blob may be corrupted by a fault)
				blob, err := h.sess.Snapshot()
				if err != nil {
					classify("snapshot", err)
					continue
				}
				h.blob, h.blobCycles = blob, h.cycles
			case r < 96: // restore: either rewinds exactly, or refuses and changes nothing
				if h.blob == nil {
					continue
				}
				before := h.cycles
				if err := h.sess.Restore(h.blob); err != nil {
					if errors.Is(err, ErrSessionFailed) || errors.Is(err, ErrDraining) || strings.Contains(err.Error(), "is closed") {
						classify("restore", err)
						continue
					}
					// A refused (corrupt) restore must leave state untouched.
					if out, perr := h.sess.Peek("out"); perr == nil && out != ref[before] {
						mismatch.Add(1)
						t.Errorf("worker %d: refused restore disturbed state: cycle %d reads %s, want %s",
							id, before, out, ref[before])
						drop()
					}
					h.blob = nil // don't retry a corrupt blob forever
					continue
				}
				h.cycles = h.blobCycles
			default: // churn: close and recreate
				drop()
			}
		}
	}

	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker(i)
	}

	time.Sleep(duration)

	// Drain while workers are still mid-loop: in-flight chunked steps must be
	// force-canceled, creates refused, and the manager must still converge
	// well inside the bound.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := m.Drain(drainCtx)
	close(stop)
	wg.Wait()
	close(fireStop)
	<-fireDone
	stepPanics := faultpoint.Fired(faultpoint.StepPanic)
	snapCorrupts := faultpoint.Fired(faultpoint.SnapshotCorrupt)
	slowOps := faultpoint.Fired(faultpoint.SlowOp)
	faultpoint.Reset()

	if drainErr != nil {
		t.Fatalf("drain under chaos: %v", drainErr)
	}
	if m.SessionCount() != 0 {
		t.Fatalf("%d sessions survived drain", m.SessionCount())
	}
	if created.Load() == 0 {
		t.Fatal("chaos run created no sessions — exercised nothing")
	}
	if mismatch.Load() != 0 {
		t.Fatalf("%d cross-session corruption(s) detected", mismatch.Load())
	}
	t.Logf("chaos: created=%d poisoned=%d compile-fails=%d shed=%d stepPanics=%d snapCorrupts=%d slowOps=%d",
		created.Load(), poisoned.Load(), compFails.Load(), refused.Load(),
		stepPanics, snapCorrupts, slowOps)
}
