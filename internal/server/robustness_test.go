package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsim/internal/faultpoint"
	"gsim/internal/ir"
)

// sessionGraph builds a small distinct design per index: the register count
// varies, so each compiles to a different, nonzero cache cost.
func sessionGraph(t testing.TB, idx int) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder(fmt.Sprintf("g%d", idx))
	en := b.Input("en", 1)
	prev := b.C(8, 1)
	for r := 0; r < 4+idx; r++ {
		reg := b.Reg(fmt.Sprintf("r%d", r), 8)
		b.SetNext(reg, b.Mux(b.R(en), b.AddW(b.R(reg), prev, 8), b.R(reg)))
		prev = b.R(reg)
	}
	b.Output("o", prev)
	return b.G
}

// TestPoisonedSessionIsolation is the fault-isolation contract at the
// session layer: an injected panic during one session's step poisons that
// session — the error carries the panic and stack, subsequent ops return a
// structured "session failed" error — while a concurrent session of the same
// design is untouched and stays on the reference trajectory.
func TestPoisonedSessionIsolation(t *testing.T) {
	defer faultpoint.Reset()
	src := readDesign(t, "counter.fir")
	m := NewManager()
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	victim, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{victim, bystander} {
		if err := s.Poke("en", "1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bystander.Step(3); err != nil {
		t.Fatal(err)
	}

	faultpoint.Arm(faultpoint.StepPanic, 1)
	results, err := victim.Apply(context.Background(), []Op{{Op: "step", N: 5}})
	if err == nil {
		t.Fatal("injected step panic did not fail the batch")
	}
	if !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("error %v does not wrap ErrSessionFailed", err)
	}
	// The op result surfaces panic + stack.
	if len(results) == 0 || !strings.Contains(results[len(results)-1].Error, "injected step panic") {
		t.Fatalf("op results %+v do not carry the panic", results)
	}
	if !strings.Contains(results[len(results)-1].Error, "goroutine") {
		t.Fatalf("op result error does not include a stack trace: %q", results[len(results)-1].Error)
	}

	// Subsequent ops on the poisoned session keep failing, structurally.
	if _, err := victim.Step(1); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("post-poison step error = %v, want ErrSessionFailed", err)
	}
	if _, err := victim.Snapshot(); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("post-poison snapshot error = %v, want ErrSessionFailed", err)
	}
	if victim.Failed() == nil {
		t.Fatal("Failed() nil on poisoned session")
	}

	// The bystander is unaffected: 3 + 4 cycles of an enabled counter reads 6
	// (the en poke lands with one cycle of input latency).
	if _, err := bystander.Step(4); err != nil {
		t.Fatalf("bystander step after neighbor poison: %v", err)
	}
	out, err := bystander.Peek("out")
	if err != nil {
		t.Fatal(err)
	}
	if out != "8'h6" {
		t.Fatalf("bystander out = %s, want 8'h6", out)
	}

	// The manager still opens fresh sessions, and closing the poisoned one
	// works.
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Step(1); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPanicPoisonsOneSession drives fault isolation through the
// parallel engine's worker pool: a panic on a pool goroutine must propagate
// to the stepping session (not kill the process) and poison only it.
func TestWorkerPanicPoisonsOneSession(t *testing.T) {
	defer faultpoint.Reset()
	src := readDesign(t, "counter.fir")
	m := NewManager()
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	victim, err := m.CreateSession(src, SessionSpec{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := m.CreateSession(src, SessionSpec{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := bystander.Poke("en", "1"); err != nil {
		t.Fatal(err)
	}

	faultpoint.Arm(faultpoint.PoolPanic, 1)
	if _, err := victim.Step(4); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("worker panic produced %v, want ErrSessionFailed", err)
	}
	if _, err := victim.Step(1); !errors.Is(err, ErrSessionFailed) {
		t.Fatal("session not poisoned after worker panic")
	}
	if _, err := bystander.Step(5); err != nil {
		t.Fatalf("bystander session on shared design failed: %v", err)
	}
	out, err := bystander.Peek("out")
	if err != nil {
		t.Fatal(err)
	}
	if out != "8'h4" {
		t.Fatalf("bystander out = %s, want 8'h4", out)
	}
}

// TestStepCancellation pins the chunked-step contract: a deadline or cancel
// aborts a huge step batch at a chunk boundary — promptly, with the partial
// cycle count recorded — and the session stays healthy.
func TestStepCancellation(t *testing.T) {
	const chunk = 256
	m := NewManagerLimits(Limits{StepChunk: chunk})
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	s, err := m.CreateSession(readDesign(t, "counter.fir"), SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("en", "1"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Apply(ctx, []Op{{Op: "step", N: 10_000_000}})
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled 10M-cycle step returned %v, want DeadlineExceeded", err)
	}
	// Must abort within roughly one chunk of the deadline, not run out the
	// full batch. The generous bound absorbs scheduler noise; the real
	// assertion is "nowhere near the seconds a 10M-cycle run takes".
	if aborted > 5*time.Second {
		t.Fatalf("cancellation took %v", aborted)
	}
	got := s.Cycles()
	if got == 0 || got >= 10_000_000 {
		t.Fatalf("cycles after abort = %d, want partial progress", got)
	}
	if got%chunk != 0 {
		t.Fatalf("aborted mid-chunk: %d cycles is not a multiple of %d", got, chunk)
	}

	// The session is healthy: further ops run and account from the partial
	// cycle count.
	after, err := s.Step(1)
	if err != nil {
		t.Fatalf("session unhealthy after cancellation: %v", err)
	}
	if after != got+1 {
		t.Fatalf("cycles after resume = %d, want %d", after, got+1)
	}
}

// TestAdmissionLimits covers the three admission axes and their HTTP
// statuses: session cap (503 + Retry-After), in-flight op cap (429), and the
// per-batch step budget (429).
func TestAdmissionLimits(t *testing.T) {
	defer faultpoint.Reset()
	src := readDesign(t, "counter.fir")
	m := NewManagerLimits(Limits{MaxSessions: 2, MaxInFlightOps: 1, MaxStepsPerBatch: 100})
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	s1, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession(src, SessionSpec{}); err != nil {
		t.Fatal(err)
	}

	// Session cap: in-process sentinel, then the HTTP mapping.
	if _, err := m.CreateSession(src, SessionSpec{}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third create: %v, want ErrTooManySessions", err)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: src}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Step budget: a batch totaling over 100 cycles is refused whole.
	if _, err := s1.Apply(context.Background(), []Op{{Op: "step", N: 60}, {Op: "step", N: 41}}); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("over-budget batch: %v, want ErrStepBudget", err)
	}
	if got := s1.Cycles(); got != 0 {
		t.Fatalf("refused batch still stepped %d cycles", got)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions/"+s1.ID+"/ops", OpsRequest{Ops: []Op{{Op: "step", N: 101}}}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status %d, want 429", resp.StatusCode)
	}

	// In-flight cap: park one op batch on the slow-op fault, then race a
	// second — it must be shed, not queued.
	faultpoint.ArmDelay(faultpoint.SlowOp, 1, 300*time.Millisecond)
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := s1.Apply(context.Background(), []Op{{Op: "step", N: 1}})
		done <- err
	}()
	<-started
	var shed bool
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := s1.Apply(context.Background(), []Op{{Op: "peek", Name: "out"}}); errors.Is(err, ErrTooManyInFlight) {
			shed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !shed {
		t.Fatal("second op batch was never shed while one was in flight")
	}
	if err := <-done; err != nil {
		t.Fatalf("parked op batch failed: %v", err)
	}
}

// TestIdleReaper pins session idle reaping: an untouched session is closed
// once it exceeds the idle timeout, an active one survives.
func TestIdleReaper(t *testing.T) {
	src := readDesign(t, "counter.fir")
	m := NewManagerLimits(Limits{IdleTimeout: 150 * time.Millisecond, ReapInterval: 20 * time.Millisecond})
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	idle, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	active, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Keep the active session warm past several idle windows.
	for i := 0; i < 10; i++ {
		if _, err := active.Step(1); err != nil {
			t.Fatalf("active session reaped: %v", err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if _, err := idle.Step(1); err == nil {
		t.Fatal("idle session survived the reaper")
	}
	if m.SessionCount() != 1 {
		t.Fatalf("%d sessions live, want 1 (the active one)", m.SessionCount())
	}
}

// TestDrainBounded pins the drain deadline: a drain racing a stalled op
// reports the stragglers when its context expires, and a follow-up unbounded
// drain completes cleanly.
func TestDrainBounded(t *testing.T) {
	defer faultpoint.Reset()
	src := readDesign(t, "counter.fir")
	m := NewManager()
	s, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Park an op batch on a 400ms stall, then drain with a 50ms budget.
	faultpoint.ArmDelay(faultpoint.SlowOp, 1, 400*time.Millisecond)
	opDone := make(chan struct{})
	go func() {
		defer close(opDone)
		_, _ = s.Apply(context.Background(), []Op{{Op: "step", N: 1}})
	}()
	time.Sleep(50 * time.Millisecond) // let the op take the session lock

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err == nil {
		t.Fatal("bounded drain with a stalled op reported success")
	}
	<-opDone
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("follow-up drain: %v", err)
	}
	if m.SessionCount() != 0 {
		t.Fatalf("%d sessions survived drain", m.SessionCount())
	}
}

// TestDrainCancelsInFlightStep pins the force-cancel path: a session mid
// way through an enormous step batch does not stall drain — the batch aborts
// at its next chunk boundary with a draining error.
func TestDrainCancelsInFlightStep(t *testing.T) {
	m := NewManagerLimits(Limits{StepChunk: 128})
	s, err := m.CreateSession(readDesign(t, "counter.fir"), SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("en", "1"); err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		_, err := s.Apply(context.Background(), []Op{{Op: "step", N: 1_000_000_000}})
		stepErr <- err
	}()
	// Wait for the batch to be visibly in flight before draining.
	for i := 0; i < 200 && m.InFlightOps() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain against a 1B-cycle step: %v", err)
	}
	if err := <-stepErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("in-flight step finished with %v, want ErrDraining", err)
	}
}

// TestConcurrentCreateCloseDrain hammers create/close/drain interleavings
// (the satellite's -race target): creates racing a drain either succeed and
// are then drained or fail with ErrDraining; a concurrent double-drain is
// safe; nothing leaks (TestMain's leak gate covers the package).
func TestConcurrentCreateCloseDrain(t *testing.T) {
	src := readDesign(t, "counter.fir")
	m := NewManager()

	const writers = 8
	var wg sync.WaitGroup
	var created, refused atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := m.CreateSession(src, SessionSpec{})
				if err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("create: %v", err)
					}
					refused.Add(1)
					continue
				}
				created.Add(1)
				// Step a little; tolerate the drain racing us to the close.
				if _, err := s.Step(2); err != nil && !strings.Contains(err.Error(), "closed") && !errors.Is(err, ErrDraining) {
					t.Errorf("step: %v", err)
				}
				if i%2 == 0 {
					_ = s.Close()
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	// Double-drain concurrently with the creators still running.
	var drains sync.WaitGroup
	for d := 0; d < 2; d++ {
		drains.Add(1)
		go func() {
			defer drains.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := m.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}()
	}
	drains.Wait()
	close(stop)
	wg.Wait()

	if m.SessionCount() != 0 {
		t.Fatalf("%d sessions alive after drain", m.SessionCount())
	}
	if _, err := m.CreateSession(src, SessionSpec{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: %v, want ErrDraining", err)
	}
	if created.Load() == 0 {
		t.Fatal("no session ever created — test exercised nothing")
	}
}

// TestSnapshotCorruptRejected pins the corrupt-blob path end to end: an
// injected corruption is detected on restore, the error is clean, and the
// session's state is untouched.
func TestSnapshotCorruptRejected(t *testing.T) {
	defer faultpoint.Reset()
	m := NewManager()
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	s, err := m.CreateSession(readDesign(t, "counter.fir"), SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("en", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(9); err != nil {
		t.Fatal(err)
	}

	faultpoint.Arm(faultpoint.SnapshotCorrupt, 1)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(blob); err == nil {
		t.Fatal("corrupted snapshot restored silently")
	}
	// State untouched by the refused restore: still at cycle 9, value 8
	// (the en poke lands with one cycle of input latency).
	if got := s.Cycles(); got != 9 {
		t.Fatalf("cycles after refused restore = %d, want 9", got)
	}
	out, err := s.Peek("out")
	if err != nil {
		t.Fatal(err)
	}
	if out != "8'h8" {
		t.Fatalf("out after refused restore = %s, want 8'h8", out)
	}
}

// TestHealthEndpoints pins /healthz (liveness, always 200) and /readyz
// (readiness: 200 serving, 503 once draining).
func TestHealthEndpoints(t *testing.T) {
	m := NewManager()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz while serving = %d", got)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d (liveness must hold)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", got)
	}
}

// TestCacheBudgetOverServer drives the compile cache's byte budget through
// the manager: a 3× overcommit of distinct designs stays under budget once
// their sessions close, while designs with live sessions are pinned and
// never evicted.
func TestCacheBudgetOverServer(t *testing.T) {
	// Measure one design's cost with an unlimited manager, then budget two.
	probe := NewManager()
	if _, err := probe.CreateSessionGraph(sessionGraph(t, 0), "probe", SessionSpec{}); err != nil {
		t.Fatal(err)
	}
	unit, _, _ := probe.CacheGovernance()
	if err := probe.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if unit <= 0 {
		t.Fatal("design cost not positive")
	}

	budget := 2*unit + unit/2
	m := NewManagerLimits(Limits{CacheBudgetBytes: budget})
	defer func() {
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	// Phase 1: pinned overcommit — 6 designs' sessions held open at once.
	// The cache must exceed budget rather than evict anything pinned.
	var open []*Session
	for i := 0; i < 6; i++ {
		s, err := m.CreateSessionGraph(sessionGraph(t, i), fmt.Sprintf("gov%d", i), SessionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, s)
	}
	if _, _, ev := m.CacheGovernance(); ev != 0 {
		t.Fatalf("%d evictions while every design had live sessions", ev)
	}
	if designs := m.CacheStats().Designs; designs != 6 {
		t.Fatalf("%d designs resident, want 6 (pinned)", designs)
	}

	// Phase 2: close them all — residency must settle under the budget.
	for _, s := range open {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	used, _, ev := m.CacheGovernance()
	if used > budget {
		t.Fatalf("used %d > budget %d after all sessions closed", used, budget)
	}
	if ev == 0 {
		t.Fatal("overcommit produced no evictions")
	}

	// Phase 3: sustained churn stays bounded.
	for i := 6; i < 12; i++ {
		s, err := m.CreateSessionGraph(sessionGraph(t, i), fmt.Sprintf("gov%d", i), SessionSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if used, _, _ := m.CacheGovernance(); used > budget {
			t.Fatalf("churn round %d: used %d > budget %d", i, used, budget)
		}
	}
}
