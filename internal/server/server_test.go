package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/firrtl"
)

func readDesign(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestConcurrentSessionsShareOneCompile is the manager-level acceptance
// check: N concurrent sessions of one design share a single compiled design
// (one miss, N-1 hits), step concurrently (the race job runs this suite with
// -race), and every session's results match a single-process core.Build run
// fed the same stimulus.
func TestConcurrentSessionsShareOneCompile(t *testing.T) {
	src := readDesign(t, "fifo.fir")
	const nSessions = 4
	const cycles = 40

	// Reference trajectories, one per session's distinct stimulus.
	g, err := firrtl.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]string, nSessions)
	for si := 0; si < nSessions; si++ {
		sys, err := core.Build(g, core.GSIM())
		if err != nil {
			t.Fatal(err)
		}
		dout := sys.Graph.FindNode("dout")
		push, pop, din := sys.Graph.FindNode("push"), sys.Graph.FindNode("pop"), sys.Graph.FindNode("din")
		if dout == nil || push == nil || pop == nil || din == nil {
			t.Fatalf("fifo design nodes missing")
		}
		for c := 0; c < cycles; c++ {
			sys.Sim.Poke(push.ID, bitvec.FromUint64(push.Width, uint64(c%2)))
			sys.Sim.Poke(pop.ID, bitvec.FromUint64(pop.Width, uint64(c%3)&1))
			sys.Sim.Poke(din.ID, bitvec.FromUint64(din.Width, uint64(c*7+si)))
			sys.Sim.Step()
			want[si] = append(want[si], sys.Sim.Peek(dout.ID).String())
		}
		sys.Close()
	}

	m := NewManager()
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for si := 0; si < nSessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s, err := m.CreateSession(src, SessionSpec{})
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for c := 0; c < cycles; c++ {
				res, err := s.Apply(context.Background(), []Op{
					{Op: "poke", Name: "push", Value: fmt.Sprintf("%d", c%2)},
					{Op: "poke", Name: "pop", Value: fmt.Sprintf("%d", (c%3)&1)},
					{Op: "poke", Name: "din", Value: fmt.Sprintf("%d", (c*7+si)&0xff)},
					{Op: "step"},
					{Op: "peek", Name: "dout"},
				})
				if err != nil {
					errs <- err
					return
				}
				if got := res[4].Value; got != want[si][c] {
					errs <- fmt.Errorf("session %d cycle %d: dout = %s, want %s", si, c, got, want[si][c])
					return
				}
			}
		}(si)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cs := m.CacheStats()
	if cs.Misses != 1 || cs.Hits != nSessions-1 || cs.Designs != 1 {
		t.Fatalf("cache stats: hits=%d misses=%d designs=%d, want %d/1/1", cs.Hits, cs.Misses, cs.Designs, nSessions-1)
	}
}

func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

// TestHTTPSnapshotRestoreMidSession drives the full HTTP surface: create,
// batched ops, snapshot mid-session, diverge, restore, and verify the
// restored continuation matches the pre-divergence trajectory.
func TestHTTPSnapshotRestoreMidSession(t *testing.T) {
	m := NewManager()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	defer m.Drain(context.Background())

	var created CreateResponse
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if created.CacheHit {
		t.Fatal("first session reported a cache hit")
	}
	base := ts.URL + "/v1/sessions/" + created.Session

	// Enable and run 10 cycles, reading the counter.
	var ops OpsResponse
	postJSON(t, base+"/ops", OpsRequest{Ops: []Op{
		{Op: "poke", Name: "en", Value: "1"},
		{Op: "step", N: 10},
		{Op: "peek", Name: "out"},
	}}, &ops)
	at10 := ops.Results[2].Value
	if ops.Results[1].Cycles != 10 {
		t.Fatalf("cycles after step = %d, want 10", ops.Results[1].Cycles)
	}

	var snap SnapshotResponse
	postJSON(t, base+"/snapshot", struct{}{}, &snap)
	if snap.Cycles != 10 || snap.Bytes == 0 {
		t.Fatalf("snapshot meta: %+v", snap)
	}

	// Diverge: 7 more cycles.
	postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "step", N: 7}, {Op: "peek", Name: "out"}}}, &ops)
	at17 := ops.Results[1].Value
	if at17 == at10 {
		t.Fatal("counter did not advance")
	}

	// Restore the checkpoint and verify the value and cycle count rewound.
	var restored RestoreResponse
	postJSON(t, base+"/restore", RestoreRequest{Snapshot: snap.Snapshot}, &restored)
	if restored.Cycles != 10 {
		t.Fatalf("restored cycles = %d, want 10", restored.Cycles)
	}
	postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out"}, {Op: "step", N: 7}, {Op: "peek", Name: "out"}}}, &ops)
	if ops.Results[0].Value != at10 {
		t.Fatalf("after restore out = %s, want %s", ops.Results[0].Value, at10)
	}
	if ops.Results[2].Value != at17 {
		t.Fatalf("replayed 7 cycles: out = %s, want %s", ops.Results[2].Value, at17)
	}

	// A second session of the same design is a cache hit and restores the
	// first session's snapshot (same compiled design, same hash).
	var created2 CreateResponse
	postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created2)
	if !created2.CacheHit {
		t.Fatal("second session missed the compile cache")
	}
	if created2.DesignHash != created.DesignHash {
		t.Fatal("sessions of one design disagree on its hash")
	}
	base2 := ts.URL + "/v1/sessions/" + created2.Session
	postJSON(t, base2+"/restore", RestoreRequest{Snapshot: snap.Snapshot}, &restored)
	postJSON(t, base2+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out"}}}, &ops)
	if ops.Results[0].Value != at10 {
		t.Fatalf("cross-session restore: out = %s, want %s", ops.Results[0].Value, at10)
	}

	var stats StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Sessions != 2 || stats.Designs != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	// Closing a session 404s further ops.
	req, _ := http.NewRequest(http.MethodDelete, base2, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	if resp := postJSON(t, base2+"/ops", OpsRequest{Ops: []Op{{Op: "step"}}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ops on closed session: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPErrors pins the API's refusal paths.
func TestHTTPErrors(t *testing.T) {
	m := NewManager()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	if resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: "not firrtl at all"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad firrtl: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty firrtl: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions",
		CreateRequest{FIRRTL: readDesign(t, "counter.fir"), SessionSpec: SessionSpec{Engine: "nope"}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions",
		CreateRequest{FIRRTL: readDesign(t, "counter.fir"), SessionSpec: SessionSpec{Engine: "essent", Threads: 2}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("threads with essent: status %d", resp.StatusCode)
	}

	var created CreateResponse
	postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created)
	base := ts.URL + "/v1/sessions/" + created.Session
	if resp := postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "no_such_node"}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown node: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "poke", Name: "en", Value: "zz"}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad literal: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/restore", RestoreRequest{Snapshot: "!!!"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad base64: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/restore",
		RestoreRequest{Snapshot: base64.StdEncoding.EncodeToString([]byte("garbage"))}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage snapshot: status %d", resp.StatusCode)
	}
}

// TestDrain pins graceful shutdown semantics: after Drain, creates are
// refused, existing sessions are closed, and Drain is idempotent.
func TestDrain(t *testing.T) {
	m := NewManager()
	src := readDesign(t, "counter.fir")
	s, err := m.CreateSession(src, SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.SessionCount() != 0 {
		t.Fatalf("drain left %d sessions", m.SessionCount())
	}
	if _, err := s.Step(1); err == nil {
		t.Fatal("step on drained session succeeded")
	}
	if _, err := m.CreateSession(src, SessionSpec{}); err == nil {
		t.Fatal("create after drain succeeded")
	}
	if err := m.Drain(context.Background()); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestServerEndToEnd is the scripted smoke the CI job runs under -race: it
// builds the real gsim-serve and gsim binaries, starts the server, drives a
// multi-session client over real HTTP — including a snapshot/restore
// mid-session — diffs every per-cycle value against the local cmd/gsim run,
// and finally exercises the graceful drain path via SIGTERM.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short")
	}
	bin := t.TempDir()
	for _, target := range []string{"gsim-serve", "gsim"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, target), "gsim/cmd/"+target).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", target, err, out)
		}
	}
	design, err := filepath.Abs("../../testdata/counter.fir")
	if err != nil {
		t.Fatal(err)
	}

	// Local reference: cmd/gsim with -watch prints out= per cycle.
	const cycles = 30
	cliOut, err := exec.Command(filepath.Join(bin, "gsim"),
		"-cycles", fmt.Sprint(cycles), "-poke", "en=1", "-watch", "out", design).Output()
	if err != nil {
		t.Fatalf("gsim run: %v", err)
	}
	watchRe := regexp.MustCompile(`cycle\s+\d+: out=(\S+)`)
	var want []string
	for _, line := range strings.Split(string(cliOut), "\n") {
		if mm := watchRe.FindStringSubmatch(line); mm != nil {
			want = append(want, mm[1])
		}
	}
	if len(want) != cycles {
		t.Fatalf("parsed %d watch lines from gsim, want %d\n%s", len(want), cycles, cliOut)
	}

	// Start the server on an ephemeral port and scrape the address.
	serve := exec.Command(filepath.Join(bin, "gsim-serve"), "-addr", "127.0.0.1:0", "-log-level", "warn")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no banner from gsim-serve")
	}
	addrRe := regexp.MustCompile(`listening on (http://\S+)`)
	mm := addrRe.FindStringSubmatch(sc.Text())
	if mm == nil {
		t.Fatalf("unexpected banner %q", sc.Text())
	}
	url := mm[1]
	// Keep draining the banner pipe so the server never blocks on stdout;
	// collect it for the drain assertions at the end.
	var tail strings.Builder
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
	}()

	srcBytes, err := os.ReadFile(design)
	if err != nil {
		t.Fatal(err)
	}
	src := string(srcBytes)

	// Two concurrent sessions; session 1 additionally checkpoints at cycle
	// 10, diverges, restores, and must land back on the reference trajectory.
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for si := 0; si < 2; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var created CreateResponse
			postJSON(t, url+"/v1/sessions", CreateRequest{FIRRTL: src}, &created)
			base := url + "/v1/sessions/" + created.Session
			var ops OpsResponse
			postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "poke", Name: "en", Value: "1"}}}, &ops)
			var snap SnapshotResponse
			didRestore := false
			for c := 0; c < cycles; c++ {
				postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "step"}, {Op: "peek", Name: "out"}}}, &ops)
				if got := ops.Results[1].Value; got != want[c] {
					errCh <- fmt.Errorf("session %d cycle %d: out=%s, gsim says %s", si, c, got, want[c])
					return
				}
				if si == 1 && c == 9 && !didRestore {
					postJSON(t, base+"/snapshot", struct{}{}, &snap)
				}
				if si == 1 && c == 19 && !didRestore {
					didRestore = true
					var restored RestoreResponse
					postJSON(t, base+"/restore", RestoreRequest{Snapshot: snap.Snapshot}, &restored)
					if restored.Cycles != 10 {
						errCh <- fmt.Errorf("restore rewound to cycle %d, want 10", restored.Cycles)
						return
					}
					c = 9 // replay the same reference values from the checkpoint
				}
			}
		}(si)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The two sessions must have shared one compile.
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CacheMisses != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats: %+v, want exactly one compile shared by two sessions", stats)
	}

	// Graceful drain: SIGTERM, then wait for stdout EOF (the child exiting
	// closes the pipe) before Wait — calling Wait while the tail goroutine
	// still reads the pipe would race it closed under the farewell line.
	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tailDone:
	case <-time.After(15 * time.Second):
		t.Fatal("gsim-serve did not drain within 15s")
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("gsim-serve exited with %v", err)
	}
	if !strings.Contains(tail.String(), "drained") {
		t.Fatalf("no drain confirmation in output:\n%s", tail.String())
	}
}
