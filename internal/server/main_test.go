package server

import (
	"os"
	"testing"

	"gsim/internal/leakcheck"
)

// TestMain gates the whole server suite on goroutine hygiene: every manager,
// session, reaper, worker pool, and drain helper the tests spin up must be
// gone when the suite ends, or the run fails with the stragglers' stacks.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
