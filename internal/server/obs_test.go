package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsim/internal/obs"
)

// TestMetricsEndpoint drives a session over HTTP against an instrumented
// manager and checks /metrics end to end: the payload parses as exposition
// text, every layer's families are present, and the series the session must
// have moved (engine cycles, op counters, cache misses) carry the expected
// values — the engine flush at step-op completion makes them exact, not
// merely eventually consistent.
func TestMetricsEndpoint(t *testing.T) {
	m := NewManager()
	reg := obs.NewRegistry()
	m.InitObs(reg)
	obs.RegisterProcessMetrics(reg)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	var created CreateResponse
	postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created)
	base := ts.URL + "/v1/sessions/" + created.Session
	postJSON(t, base+"/ops", OpsRequest{Ops: []Op{
		{Op: "poke", Name: "en", Value: "1"},
		{Op: "step", N: 100},
		{Op: "peek", Name: "out"},
	}}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}

	checks := []struct {
		name string
		kv   []string
		min  float64
	}{
		{"gsim_engine_cycles_total", nil, 100},
		{"gsim_server_sessions", nil, 1},
		{"gsim_server_sessions_created_total", nil, 1},
		{"gsim_server_step_cycles_total", nil, 100},
		{"gsim_server_http_requests_total", nil, 2},
		{"gsim_server_ops_total", []string{"op", "step"}, 1},
		{"gsim_server_ops_total", []string{"op", "poke"}, 1},
		{"gsim_server_op_latency_seconds_count", []string{"op", "step"}, 1},
		{"gsim_compile_cache_misses_total", nil, 1},
		{"gsim_compile_cache_designs", nil, 1},
		{"gsim_compile_duration_seconds_count", nil, 1},
		{"gsim_go_goroutines", nil, 1},
	}
	for _, c := range checks {
		v, ok := sc.Value(c.name, c.kv...)
		if !ok {
			t.Errorf("series %s %v missing from /metrics", c.name, c.kv)
			continue
		}
		if v < c.min {
			t.Errorf("%s %v = %v, want >= %v", c.name, c.kv, v, c.min)
		}
	}

	// The issue's breadth bar: a replica scrape alone (engine, trace, cache,
	// server, process families) must already expose a wide surface.
	families := map[string]bool{}
	for _, smp := range sc.Samples {
		name := smp.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		if strings.HasPrefix(name, "gsim_") {
			families[name] = true
		}
	}
	if len(families) < 25 {
		t.Errorf("/metrics exposes %d gsim_ families, want >= 25", len(families))
	}
}

// TestRequestIDHeader pins the request-ID contract: a caller-provided
// X-Gsim-Request-ID is echoed back verbatim, and a request without one gets
// a generated ID on the response.
func TestRequestIDHeader(t *testing.T) {
	m := NewManager()
	m.InitObs(obs.NewRegistry())
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "test-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "test-id-42" {
		t.Errorf("provided request ID echoed as %q, want test-id-42", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(RequestIDHeader); got == "" {
		t.Error("no generated request ID on a header-less request")
	}
}
