package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func intp(v int) *int { return &v }

func decodeInto(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestGangSessionHTTP drives a 4-lane gang session and 4 scalar sessions of
// the same design over the HTTP API with identical per-lane stimulus, and
// requires the gang to be indistinguishable lane-for-lane: same peeks, same
// snapshot bytes, same waveform bytes — while all five sessions share one
// compiled design (lanes are not a compile knob).
func TestGangSessionHTTP(t *testing.T) {
	m := NewManager()
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	defer m.Drain(context.Background())

	src := readDesign(t, "counter.fir")
	const k = 4
	const cycles = 12
	// The verilator preset maps to the full-cycle engine — the scalar model a
	// gang lane mirrors exactly, stats included.
	spec := SessionSpec{Engine: "verilator"}

	var gangCreated CreateResponse
	gangSpec := spec
	gangSpec.Lanes = k
	gangSpec.TraceLanes = []int{0, 1, 2, 3}
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: src, SessionSpec: gangSpec}, &gangCreated)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gang create status %d", resp.StatusCode)
	}
	gangBase := ts.URL + "/v1/sessions/" + gangCreated.Session

	scalarBase := make([]string, k)
	for l := 0; l < k; l++ {
		var created CreateResponse
		scalarSpec := spec
		scalarSpec.TraceLanes = []int{0}
		postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: src, SessionSpec: scalarSpec}, &created)
		if !created.CacheHit {
			t.Fatalf("scalar twin %d missed the compile cache: lanes must not fork the cache key", l)
		}
		if created.DesignHash != gangCreated.DesignHash {
			t.Fatalf("scalar twin %d hash %s != gang hash %s", l, created.DesignHash, gangCreated.DesignHash)
		}
		scalarBase[l] = ts.URL + "/v1/sessions/" + created.Session
	}

	// Per-lane stimulus: lanes 0 and 2 count, lanes 1 and 3 hold.
	enOf := func(l int) string { return fmt.Sprint(1 - l%2) }
	for c := 0; c < cycles; c++ {
		var gops OpsRequest
		for l := 0; l < k; l++ {
			gops.Ops = append(gops.Ops, Op{Op: "poke", Name: "en", Value: enOf(l), Lane: intp(l)})
		}
		gops.Ops = append(gops.Ops, Op{Op: "step"})
		for l := 0; l < k; l++ {
			gops.Ops = append(gops.Ops, Op{Op: "peek", Name: "out", Lane: intp(l)})
		}
		var gres OpsResponse
		if resp := postJSON(t, gangBase+"/ops", gops, &gres); resp.StatusCode != http.StatusOK {
			t.Fatalf("cycle %d: gang ops status %d", c, resp.StatusCode)
		}
		for l := 0; l < k; l++ {
			var sres OpsResponse
			postJSON(t, scalarBase[l]+"/ops", OpsRequest{Ops: []Op{
				{Op: "poke", Name: "en", Value: enOf(l)},
				{Op: "step"},
				{Op: "peek", Name: "out"},
			}}, &sres)
			gv, sv := gres.Results[k+1+l].Value, sres.Results[2].Value
			if gv != sv {
				t.Fatalf("cycle %d lane %d: gang out=%s, scalar twin out=%s", c, l, gv, sv)
			}
		}
	}

	// Lane snapshots must be byte-identical to the scalar twins' snapshots —
	// one blob format, interchangeable across shapes.
	for l := 0; l < k; l++ {
		var gsnap, ssnap SnapshotResponse
		postJSON(t, fmt.Sprintf("%s/snapshot?lane=%d", gangBase, l), struct{}{}, &gsnap)
		postJSON(t, scalarBase[l]+"/snapshot", struct{}{}, &ssnap)
		if gsnap.Snapshot != ssnap.Snapshot {
			t.Fatalf("lane %d snapshot differs from scalar twin (%d vs %d bytes)", l, gsnap.Bytes, ssnap.Bytes)
		}
		if gsnap.Cycles != cycles {
			t.Fatalf("lane %d snapshot cycles = %d, want %d", l, gsnap.Cycles, cycles)
		}
	}

	// Waveforms too: per-lane VCD equals the scalar twin's VCD.
	for l := 0; l < k; l++ {
		var gvcd, svcd VCDResponse
		postGet := func(url string, out *VCDResponse) {
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("vcd fetch %s: status %d", url, resp.StatusCode)
			}
			decodeInto(t, resp, out)
		}
		postGet(fmt.Sprintf("%s/vcd?lane=%d", gangBase, l), &gvcd)
		postGet(scalarBase[l]+"/vcd", &svcd)
		if gvcd.VCD == "" || gvcd.VCD != svcd.VCD {
			t.Fatalf("lane %d VCD differs from scalar twin (%d vs %d bytes)", l, gvcd.Bytes, svcd.Bytes)
		}
	}

	// Park lane 1, step 5: parked lane freezes, live lanes advance, and the
	// lanes endpoint reports the divergence.
	var before, after OpsResponse
	postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out", Lane: intp(0)}, {Op: "peek", Name: "out", Lane: intp(1)}}}, &before)
	postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "park", Lane: intp(1)}, {Op: "step", N: 5}}}, &after)
	postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out", Lane: intp(0)}, {Op: "peek", Name: "out", Lane: intp(1)}}}, &after)
	if after.Results[0].Value == before.Results[0].Value {
		t.Fatal("live lane 0 did not advance")
	}
	if after.Results[1].Value != before.Results[1].Value {
		t.Fatal("parked lane 1 advanced")
	}
	resp, err := http.Get(gangBase + "/lanes")
	if err != nil {
		t.Fatal(err)
	}
	var lanes []LaneInfo
	decodeInto(t, resp, &lanes)
	resp.Body.Close()
	if len(lanes) != k || lanes[1].Live || !lanes[0].Live {
		t.Fatalf("lanes: %+v", lanes)
	}
	if lanes[0].Cycles != cycles+5 || lanes[1].Cycles != cycles {
		t.Fatalf("lane cycles: live=%d (want %d), parked=%d (want %d)",
			lanes[0].Cycles, cycles+5, lanes[1].Cycles, cycles)
	}

	// Wake lane 1 and restore lane 3's checkpoint into it: per-lane restore
	// rewinds one lane without touching the rest.
	var snap3 SnapshotResponse
	postJSON(t, gangBase+"/snapshot?lane=3", struct{}{}, &snap3)
	var ops OpsResponse
	postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "wake", Lane: intp(1)}}}, &ops)
	var restored RestoreResponse
	if resp := postJSON(t, gangBase+"/restore?lane=1", RestoreRequest{Snapshot: snap3.Snapshot}, &restored); resp.StatusCode != http.StatusOK {
		t.Fatalf("lane restore status %d", resp.StatusCode)
	}
	postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out", Lane: intp(1)}, {Op: "peek", Name: "out", Lane: intp(3)}}}, &ops)
	if ops.Results[0].Value != ops.Results[1].Value {
		t.Fatalf("restored lane 1 out=%s, checkpoint source lane 3 out=%s", ops.Results[0].Value, ops.Results[1].Value)
	}

	// Lane-op validation: step takes no lane, scalar sessions reject lanes.
	if resp := postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "step", Lane: intp(1)}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("step with lane: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, gangBase+"/ops", OpsRequest{Ops: []Op{{Op: "peek", Name: "out", Lane: intp(k)}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range lane: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, scalarBase[0]+"/ops", OpsRequest{Ops: []Op{{Op: "park", Lane: intp(0)}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("park on scalar session: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: src, SessionSpec: SessionSpec{Lanes: 65}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lanes=65: status %d, want 400", resp.StatusCode)
	}

	// One compile served all five sessions.
	if cs := m.CacheStats(); cs.Misses != 1 || cs.Designs != 1 {
		t.Fatalf("cache: misses=%d designs=%d, want 1/1", cs.Misses, cs.Designs)
	}
}

// TestBodyLimit413 is the regression test for unbounded request-body reads:
// every JSON endpoint must refuse an oversized body with 413 instead of
// buffering it into the heap.
func TestBodyLimit413(t *testing.T) {
	m := NewManagerLimits(Limits{MaxBodyBytes: 4096})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	defer m.Drain(context.Background())

	big := strings.Repeat("x", 8192)
	if resp := postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: big}, nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d, want 413", resp.StatusCode)
	}

	var created CreateResponse
	postJSON(t, ts.URL+"/v1/sessions", CreateRequest{FIRRTL: readDesign(t, "counter.fir")}, &created)
	base := ts.URL + "/v1/sessions/" + created.Session
	if resp := postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "poke", Name: "en", Value: big}}}, nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ops: status %d, want 413", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/restore", RestoreRequest{Snapshot: big}, nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized restore: status %d, want 413", resp.StatusCode)
	}

	// The session is unharmed by the refusals, and a fitting body still works.
	var ops OpsResponse
	if resp := postJSON(t, base+"/ops", OpsRequest{Ops: []Op{{Op: "step"}}}, &ops); resp.StatusCode != http.StatusOK {
		t.Fatalf("normal ops after 413s: status %d", resp.StatusCode)
	}

	if got := NewManager().Limits().MaxBodyBytes; got != DefaultMaxBodyBytes {
		t.Fatalf("default MaxBodyBytes = %d, want %d", got, DefaultMaxBodyBytes)
	}
	if got := NewManagerLimits(Limits{MaxBodyBytes: -1}).Limits().MaxBodyBytes; got != -1 {
		t.Fatalf("negative MaxBodyBytes resolved to %d, want -1 (unlimited)", got)
	}
}

// TestTinyIdleTimeoutReaper is the regression test for the reap-interval
// derivation: an IdleTimeout small enough that IdleTimeout/4 truncates to
// zero must not panic the ticker or busy-spin — the poll period clamps to a
// sane minimum and the reaper still works.
func TestTinyIdleTimeoutReaper(t *testing.T) {
	m := NewManagerLimits(Limits{IdleTimeout: 2 * time.Nanosecond})
	defer m.Drain(context.Background())
	if got := m.Limits().ReapInterval; got < minReapInterval {
		t.Fatalf("ReapInterval = %v, want >= %v", got, minReapInterval)
	}

	s, err := m.CreateSession(readDesign(t, "counter.fir"), SessionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	deadline := time.Now().Add(5 * time.Second)
	for m.SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session not reaped within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An explicit sub-minimum interval clamps too.
	m2 := NewManagerLimits(Limits{IdleTimeout: time.Hour, ReapInterval: time.Nanosecond})
	defer m2.Drain(context.Background())
	if got := m2.Limits().ReapInterval; got != minReapInterval {
		t.Fatalf("explicit tiny ReapInterval = %v, want clamp to %v", got, minReapInterval)
	}
}
