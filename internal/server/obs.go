// Observability for the session manager: the server-layer metric bundle,
// the wiring that threads one obs.Registry through every layer a replica
// owns (engines, trace pipelines, compile cache), and the slog plumbing the
// HTTP transport and fault paths log through.
package server

import (
	"log/slog"
	"math/bits"

	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/obs"
	"gsim/internal/trace"
)

// opKinds is the closed set of Op.Op values; per-op metrics are pre-created
// per kind so the hot path is a map lookup, never a registration.
var opKinds = []string{"poke", "peek", "step", "reset", "park", "wake"}

// rejectCauses labels the admission-refusal counter.
const (
	rejectDraining   = "draining"
	rejectSessions   = "session_limit"
	rejectInFlight   = "inflight_limit"
	rejectStepBudget = "step_budget"
)

// Metrics is the server-layer bundle plus the per-layer bundles a replica
// threads through its engines, trace pipelines, and compile cache. Built by
// Manager.InitObs; nil on an uninstrumented manager (the default, keeping
// tests and benchmarks at zero overhead).
type Metrics struct {
	reg *obs.Registry

	// Engine / trace / cache bundles shared by every session.
	Engine *engine.Metrics
	Trace  *trace.Metrics
	Cache  *core.CacheMetrics

	SessionsCreated *obs.Counter
	SessionsClosed  *obs.Counter
	SessionsFailed  *obs.Counter
	SessionsReaped  *obs.Counter

	rejects   map[string]*obs.Counter   // by cause
	opLatency map[string]*obs.Histogram // by op kind
	opCount   map[string]*obs.Counter   // by op kind
	httpReqs  *obs.Counter

	StepCycles *obs.Counter
}

// Registry returns the registry this bundle registered into (the one
// /metrics serves).
func (mt *Metrics) Registry() *obs.Registry { return mt.reg }

// traceMetrics returns the trace bundle, surviving a nil receiver so
// uninstrumented managers pass nil through to trace.Options.Metrics.
func (mt *Metrics) traceMetrics() *trace.Metrics {
	if mt == nil {
		return nil
	}
	return mt.Trace
}

// InitObs instruments the manager: the server metric family registers in r,
// the engine/trace/cache bundles are created there too, the compile cache
// starts crediting it, and Handler() gains a GET /metrics route serving r.
// Idempotent in effect (re-registration returns the same series); sessions
// created before the call are not retroactively attached.
func (m *Manager) InitObs(r *obs.Registry) *Metrics {
	mt := &Metrics{
		reg:    r,
		Engine: engine.NewMetrics(r),
		Trace:  trace.NewMetrics(r),
		Cache:  core.NewCacheMetrics(r),

		SessionsCreated: r.Counter("gsim_server_sessions_created_total", "Sessions opened."),
		SessionsClosed:  r.Counter("gsim_server_sessions_closed_total", "Sessions closed (all causes)."),
		SessionsFailed:  r.Counter("gsim_server_sessions_failed_total", "Sessions poisoned by a panic."),
		SessionsReaped:  r.Counter("gsim_server_sessions_reaped_total", "Sessions closed by the idle reaper."),

		rejects:   map[string]*obs.Counter{},
		opLatency: map[string]*obs.Histogram{},
		opCount:   map[string]*obs.Counter{},
		httpReqs:  r.Counter("gsim_server_http_requests_total", "HTTP requests served."),

		StepCycles: r.Counter("gsim_server_step_cycles_total", "Lane-cycles stepped through ops batches."),
	}
	for _, cause := range []string{rejectDraining, rejectSessions, rejectInFlight, rejectStepBudget} {
		mt.rejects[cause] = r.Counter("gsim_server_admission_rejects_total",
			"Requests refused by admission control, by cause.", obs.L("cause", cause))
	}
	for _, kind := range opKinds {
		mt.opLatency[kind] = r.Histogram("gsim_server_op_latency_seconds",
			"Latency of individual session ops, by kind.", nil, obs.L("op", kind))
		mt.opCount[kind] = r.Counter("gsim_server_ops_total",
			"Session ops executed, by kind.", obs.L("op", kind))
	}
	r.GaugeFunc("gsim_server_sessions", "Live sessions.", func() float64 {
		return float64(m.SessionCount())
	})
	r.GaugeFunc("gsim_server_inflight_ops", "Op batches admitted and executing.", func() float64 {
		return float64(m.InFlightOps())
	})
	r.GaugeFunc("gsim_server_gang_lanes_live", "Live (unparked) gang lanes across sessions.", func() float64 {
		return float64(m.liveLanes())
	})
	m.cache.SetObs(mt.Cache)
	m.mu.Lock()
	m.metrics = mt
	m.mu.Unlock()
	return mt
}

// Metrics returns the bundle attached by InitObs, or nil.
func (m *Manager) Metrics() *Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics
}

// SetLogger routes the manager's structured logging (session lifecycle,
// poison events, HTTP access) through l. The default is obs.NopLogger(),
// keeping tests quiet; nil resets to it.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	m.mu.Lock()
	m.logger = l
	m.mu.Unlock()
}

// log returns the manager's logger (never nil).
func (m *Manager) log() *slog.Logger {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logger
}

// liveLanes sums unparked gang lanes across sessions. Each session maintains
// its count in an atomic (updated on create, park/wake, close), so the
// scrape never touches a session lock an in-flight step batch may hold.
func (m *Manager) liveLanes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.sessions {
		total += s.liveLanes.Load()
	}
	return total
}

// reject credits one admission refusal (no-op without metrics).
func (mt *Metrics) reject(cause string) {
	if mt == nil {
		return
	}
	if c, ok := mt.rejects[cause]; ok {
		c.Inc()
	}
}

// opDone credits one completed op (no-op without metrics).
func (mt *Metrics) opDone(kind string, seconds float64) {
	if mt == nil {
		return
	}
	if h, ok := mt.opLatency[kind]; ok {
		h.Observe(seconds)
	}
	if c, ok := mt.opCount[kind]; ok {
		c.Inc()
	}
}

// attachEngineObs points a session's engine at the shared engine bundle.
func (mt *Metrics) attachEngineObs(sim engine.Sim, gang *engine.Gang) {
	if mt == nil {
		return
	}
	if gang != nil {
		gang.AttachObs(mt.Engine)
		return
	}
	if a, ok := sim.(interface{ AttachObs(*engine.Metrics) }); ok {
		a.AttachObs(mt.Engine)
	}
}

// flushEngineObs folds a session engine's unflushed stats into the process
// counters — called after step batches and before close so /metrics is
// exact at op boundaries, not just every flush window.
func flushEngineObs(sim engine.Sim, gang *engine.Gang) {
	if gang != nil {
		gang.FlushObs()
		return
	}
	if f, ok := sim.(interface{ FlushObs() }); ok {
		f.FlushObs()
	}
}

// syncLiveLanes refreshes the session's unparked-lane count from the gang
// mask (scalar sessions always count 1). Caller holds s.mu.
func (s *Session) syncLiveLanes() {
	if s.gang != nil {
		s.liveLanes.Store(int64(bits.OnesCount64(s.gang.LiveMask())))
	} else {
		s.liveLanes.Store(1)
	}
}
