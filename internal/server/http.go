// HTTP+JSON transport for the session manager — the cmd/gsim-serve API.
//
// Endpoints (all JSON bodies; errors are {"error": "..."} with 4xx/5xx):
//
//	POST   /v1/sessions               create a session (spec "lanes" > 1 opens a gang)
//	GET    /v1/sessions               list live sessions
//	POST   /v1/sessions/{id}/ops      apply a batched op list atomically
//	GET    /v1/sessions/{id}/lanes    per-lane liveness, cycles, trace status
//	GET    /v1/sessions/{id}/vcd      fetch a traced lane's waveform (?lane=N)
//	POST   /v1/sessions/{id}/snapshot serialize state (base64 blob; ?lane=N on gangs)
//	POST   /v1/sessions/{id}/restore  overwrite state from a blob (?lane=N on gangs)
//	DELETE /v1/sessions/{id}          close a session
//	GET    /v1/stats                  manager + compile-cache counters
//	GET    /healthz                   liveness (200 while the process runs)
//	GET    /readyz                    readiness (503 the moment a drain begins)
//	POST   /admin/drain               begin a migration-window drain (refuse new
//	                                  sessions, keep serving existing ones)
//
// Failure semantics: admission refusals are 429 (too many in-flight ops,
// step budget) or 503 (session limit, draining) with a Retry-After header; a
// poisoned session reports 500 with the panic and stack in the body; a
// canceled or deadline-exceeded op batch reports 408 with the partial
// results; a request body over Limits.MaxBodyBytes reports 413.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gsim/internal/snapshot"
)

// CreateRequest is the POST /v1/sessions body: the design source plus the
// session spec (flattened).
type CreateRequest struct {
	FIRRTL string `json:"firrtl"`
	SessionSpec
}

// CreateResponse reports the opened session and how its compile was served.
type CreateResponse struct {
	Session    string  `json:"session"`
	DesignHash string  `json:"design_hash"`
	CacheHit   bool    `json:"cache_hit"`
	CompileMS  float64 `json:"compile_ms"` // the shared compile's cost (paid once per cache entry)
	Nodes      int     `json:"nodes"`
}

// OpsRequest is the POST /v1/sessions/{id}/ops body.
type OpsRequest struct {
	Ops []Op `json:"ops"`
}

// OpsResponse carries one result per completed op.
type OpsResponse struct {
	Results []OpResult `json:"results"`
}

// SnapshotResponse carries a serialized state blob.
type SnapshotResponse struct {
	Snapshot string `json:"snapshot"` // base64 of the internal/snapshot format
	Bytes    int    `json:"bytes"`
	Cycles   uint64 `json:"cycles"`
}

// RestoreRequest is the POST /v1/sessions/{id}/restore body.
type RestoreRequest struct {
	Snapshot string `json:"snapshot"` // base64 of the internal/snapshot format
	// TracePrefix carries the waveform bytes a migrated session captured on
	// its previous home (base64). Valid only on a lane created with
	// trace_resume: the prefix seeds the lane's capture buffer and the
	// restored state arms its continuation tracer.
	TracePrefix string `json:"trace_prefix,omitempty"`
}

// RestoreResponse reports the resumed cycle count.
type RestoreResponse struct {
	Cycles uint64 `json:"cycles"`
}

// SessionInfo is one GET /v1/sessions entry.
type SessionInfo struct {
	Session    string `json:"session"`
	DesignHash string `json:"design_hash"`
	Cycles     uint64 `json:"cycles"`
	Lanes      int    `json:"lanes,omitempty"`  // > 1 for gang sessions
	Failed     bool   `json:"failed,omitempty"` // poisoned by a panic
}

// VCDResponse is the GET /v1/sessions/{id}/vcd body.
type VCDResponse struct {
	Lane      int    `json:"lane"`
	VCD       string `json:"vcd"` // waveform text
	Bytes     int    `json:"bytes"`
	Truncated bool   `json:"truncated,omitempty"` // capture hit its byte cap
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Sessions        int    `json:"sessions"`
	Designs         int    `json:"designs"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	CacheBytes      int64  `json:"cache_bytes"`
	CacheBudget     int64  `json:"cache_budget,omitempty"` // 0 = unlimited
	CacheEvictions  uint64 `json:"cache_evictions"`
	InFlightOps     int64  `json:"in_flight_ops"`
	Draining        bool   `json:"draining,omitempty"`
	MaxSessions     int    `json:"max_sessions,omitempty"`
	MaxInFlightOps  int    `json:"max_in_flight_ops,omitempty"`
	MaxStepsPerOp   int    `json:"max_steps_per_batch,omitempty"`
	SessionIdleSecs int    `json:"session_idle_secs,omitempty"`
}

// Handler returns the manager's HTTP API.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/ops", m.withSession(m.handleOps))
	mux.HandleFunc("GET /v1/sessions/{id}/lanes", m.withSession(handleLanes))
	mux.HandleFunc("GET /v1/sessions/{id}/vcd", m.withSession(handleVCD))
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", m.withSession(handleSnapshot))
	mux.HandleFunc("POST /v1/sessions/{id}/restore", m.withSession(m.handleRestore))
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.withSession(handleClose))
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /readyz", m.handleReadyz)
	mux.HandleFunc("POST /admin/drain", m.handleAdminDrain)
	return m.withObs(mux)
}

// RequestIDHeader carries a request's correlation ID. The router stamps it
// when proxying; withObs generates one for direct requests. The value is
// echoed on the response and attached to every access-log line, so one ID
// follows a request across the fleet hop.
const RequestIDHeader = "X-Gsim-Request-ID"

// reqSeq numbers locally generated request IDs.
var reqSeq atomic.Uint64

// statusWriter records the status a handler wrote (200 when it never calls
// WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// withObs is the transport-level observability middleware: it assigns (or
// propagates) the request ID, counts the request, and emits one structured
// access-log line with method, path, session, status, and duration. With the
// default NopLogger and no metrics it is a thin passthrough.
func (m *Manager) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = fmt.Sprintf("local-%d", reqSeq.Add(1))
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if mt := m.Metrics(); mt != nil {
			mt.httpReqs.Inc()
		}
		attrs := []any{
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
		}
		if sid := sessionFromPath(r.URL.Path); sid != "" {
			attrs = append(attrs, "session", sid)
		}
		m.log().Info("http request", attrs...)
	})
}

// sessionFromPath extracts the {id} segment of /v1/sessions/{id}/... routes
// (the middleware runs outside the mux, so PathValue is not populated yet).
func sessionFromPath(p string) string {
	rest, ok := strings.CutPrefix(p, "/v1/sessions/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// handleMetrics serves the Prometheus text exposition of the registry wired
// by InitObs; 404 until the manager is instrumented.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mt := m.Metrics()
	if mt == nil {
		http.NotFound(w, r)
		return
	}
	mt.Registry().Handler().ServeHTTP(w, r)
}

// handleAdminDrain begins a migration-window drain: readiness flips to 503
// and new sessions are refused immediately, but live sessions keep serving so
// a fleet router can snapshot and move them before the process is retired.
// Idempotent; reports how many sessions are still homed here.
func (m *Manager) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	m.BeginDrain()
	writeJSON(w, http.StatusOK, map[string]any{
		"draining": true,
		"sessions": m.SessionCount(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps a manager error to an HTTP status and whether the condition
// is worth retrying (Retry-After). Admission refusals are the caller's cue to
// back off: 429 for transient per-request pressure, 503 for capacity and
// shutdown. A poisoned session is a server fault (500). Cancellation and
// deadline expiry are 408. Everything else is validation (400).
func errStatus(err error) (status int, retryable bool) {
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrTooManySessions):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, ErrTooManyInFlight), errors.Is(err, ErrStepBudget):
		return http.StatusTooManyRequests, true
	case errors.Is(err, ErrSessionFailed):
		return http.StatusInternalServerError, false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, false
	}
	return http.StatusBadRequest, false
}

// writeManagerError renders err with its mapped status, attaching Retry-After
// on backpressure statuses so well-behaved clients shed load instead of
// hammering.
func writeManagerError(w http.ResponseWriter, err error, extra any) {
	status, retryable := errStatus(err)
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	if extra != nil {
		writeJSON(w, status, extra)
		return
	}
	writeError(w, status, err)
}

// decodeBody decodes a JSON request body under the manager's byte cap and
// writes the error response itself on failure (413 when the cap is hit, 400
// for malformed JSON). Every JSON-consuming handler funnels through here:
// request bodies were previously read unbounded, so one oversized POST could
// balloon the heap before validation ever saw it.
func (m *Manager) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if limit := m.limits.MaxBodyBytes; limit > 0 {
		body = http.MaxBytesReader(w, r.Body, limit)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

// laneParam parses an optional ?lane=N query (default 0).
func laneParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("lane")
	if q == "" {
		return 0, nil
	}
	lane, err := strconv.Atoi(q)
	if err != nil {
		return 0, fmt.Errorf("bad lane %q: %v", q, err)
	}
	return lane, nil
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !m.decodeBody(w, r, &req) {
		return
	}
	if req.FIRRTL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("firrtl source required"))
		return
	}
	s, err := m.CreateSession(req.FIRRTL, req.SessionSpec)
	if err != nil {
		writeManagerError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		Session:    s.ID,
		DesignHash: s.Design.DesignHash(),
		CacheHit:   s.CacheHit,
		CompileMS:  float64(s.Design.CompileTime.Microseconds()) / 1000,
		Nodes:      len(s.Design.Graph.Nodes),
	})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	ids := m.SessionIDs()
	sort.Strings(ids)
	infos := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		s, err := m.Session(id)
		if err != nil {
			continue // closed concurrently
		}
		infos = append(infos, SessionInfo{
			Session:    s.ID,
			DesignHash: s.Design.DesignHash(),
			Cycles:     s.Cycles(),
			Lanes:      s.Lanes(),
			Failed:     s.Failed() != nil,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := m.CacheStats()
	l := m.Limits()
	writeJSON(w, http.StatusOK, StatsResponse{
		Sessions:        m.SessionCount(),
		Designs:         cs.Designs,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheBytes:      cs.Bytes,
		CacheBudget:     cs.Budget,
		CacheEvictions:  cs.Evictions,
		InFlightOps:     m.InFlightOps(),
		Draining:        m.Draining(),
		MaxSessions:     l.MaxSessions,
		MaxInFlightOps:  l.MaxInFlightOps,
		MaxStepsPerOp:   l.MaxStepsPerBatch,
		SessionIdleSecs: int(l.IdleTimeout.Seconds()),
	})
}

// handleHealthz is liveness: the process is up and serving.
func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing new work here while in-flight sessions finish.
func (m *Manager) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if m.Draining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// withSession resolves the {id} path segment before dispatching.
func (m *Manager) withSession(h func(s *Session, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, err := m.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		h(s, w, r)
	}
}

func (m *Manager) handleOps(s *Session, w http.ResponseWriter, r *http.Request) {
	var req OpsRequest
	if !m.decodeBody(w, r, &req) {
		return
	}
	// The per-request deadline: a runaway batch (a client asking for a
	// billion cycles) stops at the next chunk boundary instead of holding
	// the session lock forever.
	ctx := r.Context()
	if d := m.Limits().OpTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	results, err := s.Apply(ctx, req.Ops)
	if err != nil {
		// A failed batch is not rolled back — ops before the failing one did
		// run (steps advanced the session). Return their results alongside
		// the error so the client knows how far the batch applied.
		writeManagerError(w, err, struct {
			Error   string     `json:"error"`
			Results []OpResult `json:"results"`
		}{err.Error(), results})
		return
	}
	writeJSON(w, http.StatusOK, OpsResponse{Results: results})
}

func handleSnapshot(s *Session, w http.ResponseWriter, r *http.Request) {
	lane, err := laneParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := s.SnapshotLane(lane)
	if err != nil {
		writeManagerError(w, err, nil)
		return
	}
	// The cycle count comes from the blob's own header, not a second (and
	// racy) session read: a concurrent step batch could advance the session
	// between Save and here.
	h, err := snapshot.ReadHeader(data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Snapshot: base64.StdEncoding.EncodeToString(data),
		Bytes:    len(data),
		Cycles:   h.Cycles,
	})
}

func (m *Manager) handleRestore(s *Session, w http.ResponseWriter, r *http.Request) {
	var req RestoreRequest
	if !m.decodeBody(w, r, &req) {
		return
	}
	lane, err := laneParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.Snapshot)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad snapshot encoding: %v", err))
		return
	}
	var prefix []byte
	if req.TracePrefix != "" {
		prefix, err = base64.StdEncoding.DecodeString(req.TracePrefix)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace_prefix encoding: %v", err))
			return
		}
	}
	if err := s.RestoreLaneTrace(lane, data, prefix); err != nil {
		writeManagerError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, RestoreResponse{Cycles: s.Cycles()})
}

func handleLanes(s *Session, w http.ResponseWriter, r *http.Request) {
	infos, err := s.LaneInfos()
	if err != nil {
		writeManagerError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

func handleVCD(s *Session, w http.ResponseWriter, r *http.Request) {
	lane, err := laneParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	vcd, truncated, err := s.FetchVCD(lane)
	if err != nil {
		writeManagerError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, VCDResponse{
		Lane:      lane,
		VCD:       string(vcd),
		Bytes:     len(vcd),
		Truncated: truncated,
	})
}

func handleClose(s *Session, w http.ResponseWriter, r *http.Request) {
	_ = s.Close()
	writeJSON(w, http.StatusOK, map[string]string{"closed": s.ID})
}
