// HTTP+JSON transport for the session manager — the cmd/gsim-serve API.
//
// Endpoints (all JSON bodies; errors are {"error": "..."} with 4xx/5xx):
//
//	POST   /v1/sessions               create a session
//	GET    /v1/sessions               list live sessions
//	POST   /v1/sessions/{id}/ops      apply a batched op list atomically
//	POST   /v1/sessions/{id}/snapshot serialize state (base64 blob)
//	POST   /v1/sessions/{id}/restore  overwrite state from a blob
//	DELETE /v1/sessions/{id}          close a session
//	GET    /v1/stats                  manager + compile-cache counters
package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"gsim/internal/snapshot"
)

// CreateRequest is the POST /v1/sessions body: the design source plus the
// session spec (flattened).
type CreateRequest struct {
	FIRRTL string `json:"firrtl"`
	SessionSpec
}

// CreateResponse reports the opened session and how its compile was served.
type CreateResponse struct {
	Session    string  `json:"session"`
	DesignHash string  `json:"design_hash"`
	CacheHit   bool    `json:"cache_hit"`
	CompileMS  float64 `json:"compile_ms"` // the shared compile's cost (paid once per cache entry)
	Nodes      int     `json:"nodes"`
}

// OpsRequest is the POST /v1/sessions/{id}/ops body.
type OpsRequest struct {
	Ops []Op `json:"ops"`
}

// OpsResponse carries one result per completed op.
type OpsResponse struct {
	Results []OpResult `json:"results"`
}

// SnapshotResponse carries a serialized state blob.
type SnapshotResponse struct {
	Snapshot string `json:"snapshot"` // base64 of the internal/snapshot format
	Bytes    int    `json:"bytes"`
	Cycles   uint64 `json:"cycles"`
}

// RestoreRequest is the POST /v1/sessions/{id}/restore body.
type RestoreRequest struct {
	Snapshot string `json:"snapshot"` // base64 of the internal/snapshot format
}

// RestoreResponse reports the resumed cycle count.
type RestoreResponse struct {
	Cycles uint64 `json:"cycles"`
}

// SessionInfo is one GET /v1/sessions entry.
type SessionInfo struct {
	Session    string `json:"session"`
	DesignHash string `json:"design_hash"`
	Cycles     uint64 `json:"cycles"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Sessions    int    `json:"sessions"`
	Designs     int    `json:"designs"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Handler returns the manager's HTTP API.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/ops", m.withSession(handleOps))
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", m.withSession(handleSnapshot))
	mux.HandleFunc("POST /v1/sessions/{id}/restore", m.withSession(handleRestore))
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.withSession(handleClose))
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps a manager error to an HTTP status: validation-shaped errors
// (bad spec, unknown node, malformed literal, mismatched snapshot) are the
// client's fault; draining is unavailability.
func errStatus(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "draining") {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.FIRRTL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("firrtl source required"))
		return
	}
	s, err := m.CreateSession(req.FIRRTL, req.SessionSpec)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		Session:    s.ID,
		DesignHash: s.Design.DesignHash(),
		CacheHit:   s.CacheHit,
		CompileMS:  float64(s.Design.CompileTime.Microseconds()) / 1000,
		Nodes:      len(s.Design.Graph.Nodes),
	})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	ids := m.SessionIDs()
	sort.Strings(ids)
	infos := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		s, err := m.Session(id)
		if err != nil {
			continue // closed concurrently
		}
		infos = append(infos, SessionInfo{Session: s.ID, DesignHash: s.Design.DesignHash(), Cycles: s.Cycles()})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, designs := m.CacheStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Sessions:    m.SessionCount(),
		Designs:     designs,
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

// withSession resolves the {id} path segment before dispatching.
func (m *Manager) withSession(h func(s *Session, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, err := m.Session(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		h(s, w, r)
	}
}

func handleOps(s *Session, w http.ResponseWriter, r *http.Request) {
	var req OpsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	results, err := s.Apply(req.Ops)
	if err != nil {
		// A failed batch is not rolled back — ops before the failing one did
		// run (steps advanced the session). Return their results alongside
		// the error so the client knows how far the batch applied.
		writeJSON(w, errStatus(err), struct {
			Error   string     `json:"error"`
			Results []OpResult `json:"results"`
		}{err.Error(), results})
		return
	}
	writeJSON(w, http.StatusOK, OpsResponse{Results: results})
}

func handleSnapshot(s *Session, w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The cycle count comes from the blob's own header, not a second (and
	// racy) session read: a concurrent step batch could advance the session
	// between Save and here.
	h, err := snapshot.ReadHeader(data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Snapshot: base64.StdEncoding.EncodeToString(data),
		Bytes:    len(data),
		Cycles:   h.Cycles,
	})
}

func handleRestore(s *Session, w http.ResponseWriter, r *http.Request) {
	var req RestoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.Snapshot)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad snapshot encoding: %v", err))
		return
	}
	if err := s.Restore(data); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RestoreResponse{Cycles: s.Cycles()})
}

func handleClose(s *Session, w http.ResponseWriter, r *http.Request) {
	_ = s.Close()
	writeJSON(w, http.StatusOK, map[string]string{"closed": s.ID})
}
