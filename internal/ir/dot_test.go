package ir

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	g, _ := buildAdder(t)
	var sb strings.Builder
	if err := g.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph", "sum", "->", "invtrapezium"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("dot output missing %q:\n%s", frag, out)
		}
	}
}
