package ir

import (
	"fmt"

	"gsim/internal/bitvec"
)

// EvalExpr evaluates an expression tree using val to supply node values.
// This is the reference semantics for the whole simulator: the compiled
// interpreter in package emit must agree with it bit-for-bit, and the
// constant folder calls it with a nil val on constant subtrees.
func EvalExpr(e *Expr, val func(*Node) bitvec.BV) bitvec.BV {
	switch e.Op {
	case OpRef:
		v := val(e.Node)
		if v.Width != e.Width {
			v = bitvec.Pad(v, e.Width)
		}
		return v
	case OpConst:
		return e.Imm
	}
	var a, b, c bitvec.BV
	if len(e.Args) > 0 {
		a = EvalExpr(e.Args[0], val)
	}
	if len(e.Args) > 1 {
		b = EvalExpr(e.Args[1], val)
	}
	if len(e.Args) > 2 {
		c = EvalExpr(e.Args[2], val)
	}
	switch e.Op {
	case OpAdd:
		return bitvec.Add(a, b, e.Width)
	case OpSub:
		return bitvec.Sub(a, b, e.Width)
	case OpMul:
		return bitvec.Mul(a, b, e.Width)
	case OpDiv:
		return bitvec.Div(a, b, e.Width)
	case OpRem:
		return bitvec.Rem(a, b, e.Width)
	case OpNeg:
		return bitvec.Neg(a, e.Width)
	case OpAnd:
		return bitvec.And(a, b, e.Width)
	case OpOr:
		return bitvec.Or(a, b, e.Width)
	case OpXor:
		return bitvec.Xor(a, b, e.Width)
	case OpNot:
		return bitvec.Not(a, e.Width)
	case OpAndR:
		return bitvec.AndR(a)
	case OpOrR:
		return bitvec.OrR(a)
	case OpXorR:
		return bitvec.XorR(a)
	case OpEq:
		return bitvec.Eq(a, b)
	case OpNeq:
		return bitvec.Neq(a, b)
	case OpLt:
		return bitvec.Lt(a, b)
	case OpLeq:
		return bitvec.Leq(a, b)
	case OpGt:
		return bitvec.Gt(a, b)
	case OpGeq:
		return bitvec.Geq(a, b)
	case OpSLt:
		return bitvec.SLt(a, b)
	case OpSLeq:
		return bitvec.SLeq(a, b)
	case OpSGt:
		return bitvec.SGt(a, b)
	case OpSGeq:
		return bitvec.SGeq(a, b)
	case OpShl:
		return bitvec.Shl(a, e.Lo, e.Width)
	case OpShr:
		return bitvec.Shr(a, e.Lo, e.Width)
	case OpDshl:
		return bitvec.Dshl(a, b, e.Width)
	case OpDshr:
		return bitvec.Dshr(a, b, e.Width)
	case OpCat:
		return bitvec.Cat(a, b)
	case OpBits:
		return bitvec.Bits(a, e.Hi, e.Lo)
	case OpPad:
		return bitvec.Pad(a, e.Width)
	case OpSExt:
		return bitvec.SExt(a, e.Width)
	case OpMux:
		return bitvec.Mux(a, b, c, e.Width)
	}
	panic(fmt.Sprintf("ir: EvalExpr on %v", e.Op))
}

// IsConst reports whether e contains no node references.
func (e *Expr) IsConst() bool {
	ok := true
	e.Walk(func(x *Expr) {
		if x.Op == OpRef {
			ok = false
		}
	})
	return ok
}

// FoldConst evaluates a reference-free expression to a constant value.
func (e *Expr) FoldConst() bitvec.BV {
	return EvalExpr(e, func(n *Node) bitvec.BV {
		panic(fmt.Sprintf("ir: FoldConst reached ref %q", n.Name))
	})
}
