package ir

import (
	"fmt"

	"gsim/internal/bitvec"
)

// NodeKind classifies graph nodes.
type NodeKind uint8

// Node kinds.
const (
	KindInvalid  NodeKind = iota
	KindInput             // external input; value set by Poke
	KindComb              // combinational signal; Expr is its value
	KindReg               // register; Expr computes the next value
	KindMemRead           // combinational memory read port; Expr is the address
	KindMemWrite          // synchronous memory write port; WAddr/WData/WEn
)

var kindNames = [...]string{
	KindInvalid:  "invalid",
	KindInput:    "input",
	KindComb:     "comb",
	KindReg:      "reg",
	KindMemRead:  "memread",
	KindMemWrite: "memwrite",
}

// String returns the kind name.
func (k NodeKind) String() string { return kindNames[k] }

// Memory is a word-addressed RAM with combinational read ports and
// synchronous write ports (writes become visible at the end of the cycle,
// like register updates).
type Memory struct {
	ID    int
	Name  string
	Depth int // number of elements
	Width int // bits per element

	// Init optionally preloads the memory contents at Reset; indexed by
	// address, missing entries are zero.
	Init map[int]bitvec.BV

	// Reads and Writes are filled in by Graph.Freeze with the port nodes.
	Reads  []*Node
	Writes []*Node
}

// AddrWidth returns the width of this memory's address inputs.
func (m *Memory) AddrWidth() int {
	w := 1
	for (1 << uint(w)) < m.Depth {
		w++
	}
	return w
}

// Node is a vertex of the dataflow graph.
type Node struct {
	ID    int
	Name  string
	Kind  NodeKind
	Width int

	// Expr is the node's value computation: the signal value for KindComb,
	// the next-cycle value for KindReg, and the read address for KindMemRead.
	// Nil for KindInput and KindMemWrite.
	Expr *Expr

	// Register metadata. Init is the reset value. After the reset-extraction
	// pass (passes.ResetOpt), ResetSig holds the 1-bit reset signal that was
	// hoisted out of Expr; engines with the reset slow path enabled must then
	// apply Init whenever ResetSig is high at the end of a cycle.
	Init     bitvec.BV
	ResetSig *Node

	// Memory port fields.
	Mem   *Memory
	WAddr *Expr
	WData *Expr
	WEn   *Expr

	// IsOutput marks externally observable nodes; they are never eliminated.
	IsOutput bool
}

// String returns a short description of the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s %s:%d (id %d)", n.Kind, n.Name, n.Width, n.ID)
}

// EachExpr calls f with a pointer to each of the node's root expression
// slots, allowing passes to rewrite them in place. Nil slots are skipped.
func (n *Node) EachExpr(f func(slot **Expr)) {
	if n.Expr != nil {
		f(&n.Expr)
	}
	if n.WAddr != nil {
		f(&n.WAddr)
	}
	if n.WData != nil {
		f(&n.WData)
	}
	if n.WEn != nil {
		f(&n.WEn)
	}
}

// HasCode reports whether the node carries evaluation work during a cycle
// (everything except inputs).
func (n *Node) HasCode() bool {
	return n.Kind != KindInput && n.Kind != KindInvalid
}
