package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"gsim/internal/bitvec"
)

func buildAdder(t *testing.T) (*Graph, *Builder) {
	t.Helper()
	b := NewBuilder("adder")
	a := b.Input("a", 8)
	c := b.Input("b", 8)
	sum := b.Comb("sum", b.Add(b.R(a), b.R(c)))
	b.Output("out", b.R(sum))
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	return b.G, b
}

func TestResultWidthRules(t *testing.T) {
	cases := []struct {
		op        Op
		wa, wb, n int
		want      int
	}{
		{OpAdd, 8, 4, 0, 9},
		{OpSub, 4, 8, 0, 9},
		{OpMul, 8, 4, 0, 12},
		{OpDiv, 8, 4, 0, 8},
		{OpRem, 8, 4, 0, 4},
		{OpNeg, 8, 0, 0, 9},
		{OpAnd, 8, 4, 0, 8},
		{OpNot, 8, 0, 0, 8},
		{OpAndR, 8, 0, 0, 1},
		{OpEq, 8, 16, 0, 1},
		{OpShl, 8, 0, 3, 11},
		{OpShr, 8, 0, 3, 5},
		{OpShr, 8, 0, 20, 1},
		{OpDshr, 8, 5, 0, 8},
		{OpCat, 8, 4, 0, 12},
		{OpBits, 8, 0, 5, 5},
		{OpPad, 8, 0, 16, 16},
		{OpPad, 8, 0, 4, 8},
	}
	for _, c := range cases {
		if got := ResultWidth(c.op, c.wa, c.wb, c.n); got != c.want {
			t.Errorf("ResultWidth(%v, %d, %d, %d) = %d, want %d", c.op, c.wa, c.wb, c.n, got, c.want)
		}
	}
}

func TestOpArityAndCost(t *testing.T) {
	if OpMux.Arity() != 3 || OpNot.Arity() != 1 || OpAdd.Arity() != 2 || OpRef.Arity() != 0 {
		t.Fatal("arity table broken")
	}
	if OpMul.Cost() <= OpAdd.Cost() {
		t.Fatal("mul should cost more than add")
	}
	if !OpAdd.Commutative() || OpSub.Commutative() {
		t.Fatal("commutativity table broken")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g, _ := buildAdder(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	posOf := make(map[int32]int)
	for i, id := range order {
		posOf[id] = i
	}
	for _, n := range g.Nodes {
		if n.Expr == nil {
			continue
		}
		n.Expr.Walk(func(e *Expr) {
			if e.Op == OpRef && e.Node.Kind == KindComb {
				if posOf[int32(e.Node.ID)] > posOf[int32(n.ID)] {
					t.Fatalf("node %s ordered before its dep %s", n.Name, e.Node.Name)
				}
			}
		})
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cyc")
	// Two combs referencing each other.
	n1 := b.G.AddNode(&Node{Name: "x", Kind: KindComb, Width: 1})
	n2 := b.G.AddNode(&Node{Name: "y", Kind: KindComb, Width: 1})
	n1.Expr = Ref(n2)
	n2.Expr = Ref(n1)
	if _, err := b.G.TopoOrder(); err == nil {
		t.Fatal("expected cycle detection")
	}
}

func TestRegisterFeedbackIsLegal(t *testing.T) {
	b := NewBuilder("fb")
	r := b.Counter("c", 8, 1)
	b.Output("o", b.R(r))
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesWidthMismatch(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a", 8)
	n := b.Comb("n", b.R(a))
	n.Width = 9 // corrupt
	if err := b.G.Validate(); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, _ := buildAdder(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size differs")
	}
	// Mutating the clone must not touch the original.
	for _, n := range c.Nodes {
		if n.Kind == KindComb && !n.IsOutput {
			n.Expr = ConstUint(n.Width, 0)
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == KindComb && !n.IsOutput && n.Expr.Op == OpConst {
			t.Fatal("clone shares expressions with original")
		}
	}
	// Clone refs must point at clone nodes.
	for _, n := range c.Nodes {
		n.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op == OpRef && c.Nodes[e.Node.ID] != e.Node {
					t.Fatal("clone ref escapes clone")
				}
			})
		})
	}
}

func TestSortTopologicalMakesIDOrderTopological(t *testing.T) {
	b := NewBuilder("s")
	in := b.Input("in", 8)
	// Build in reverse-ish order via forward decls.
	r := b.Reg("r", 8)
	x := b.Comb("x", b.Add(b.R(in), b.R(r)))
	y := b.Comb("y", b.Not(b.R(x)))
	b.SetNext(r, b.Fit(b.R(y), 8))
	b.Output("o", b.R(y))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	for _, n := range b.G.Nodes {
		n.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op == OpRef && e.Node.Kind == KindComb && e.Node.ID > n.ID && n.Kind != KindReg {
					// comb deps must come earlier except register next-exprs
					t.Fatalf("node %d reads later comb %d", n.ID, e.Node.ID)
				}
			})
		})
	}
}

func TestStructEqAndHash(t *testing.T) {
	b := NewBuilder("h")
	a := b.Input("a", 8)
	e1 := b.Add(b.R(a), b.C(8, 1))
	e2 := b.Add(b.R(a), b.C(8, 1))
	e3 := b.Add(b.R(a), b.C(8, 2))
	if !StructEq(e1, e2) {
		t.Fatal("identical trees not StructEq")
	}
	if StructEq(e1, e3) {
		t.Fatal("different consts StructEq")
	}
	if e1.Hash() != e2.Hash() {
		t.Fatal("equal trees hash differently")
	}
	if e1.Hash() == e3.Hash() {
		t.Fatal("hash collision on trivially different trees (suspicious)")
	}
}

func TestExprCloneDeep(t *testing.T) {
	b := NewBuilder("c")
	a := b.Input("a", 8)
	e := b.Add(b.R(a), b.C(8, 1))
	c := e.Clone()
	c.Args[1].Imm.W[0] = 99
	if e.Args[1].Imm.Uint64() == 99 {
		t.Fatal("clone shares constant storage")
	}
}

func TestEvalExprMatchesBitvec(t *testing.T) {
	b := NewBuilder("e")
	x := b.Input("x", 16)
	y := b.Input("y", 16)
	vals := map[*Node]bitvec.BV{
		x: bitvec.FromUint64(16, 0xabcd),
		y: bitvec.FromUint64(16, 0x1234),
	}
	look := func(n *Node) bitvec.BV { return vals[n] }
	e := b.Mux(b.Lt(b.R(x), b.R(y)), b.R(x), b.R(y))
	got := EvalExpr(e, look)
	if got.Uint64() != 0x1234 {
		t.Fatalf("mux(lt) = %#x", got.Uint64())
	}
	e2 := b.Cat(b.R(x), b.R(y))
	if got := EvalExpr(e2, look); got.Uint64() != 0xabcd1234 {
		t.Fatalf("cat = %#x", got.Uint64())
	}
}

func TestLevelize(t *testing.T) {
	g, _ := buildAdder(t)
	order, _ := g.TopoOrder()
	levels, byLevel := g.Levelize(order)
	if len(byLevel) < 2 {
		t.Fatalf("expected >= 2 levels, got %d", len(byLevel))
	}
	sum := g.FindNode("sum")
	out := g.FindNode("out")
	if levels[sum.ID] >= levels[out.ID] {
		t.Fatal("out should be at a deeper level than sum")
	}
}

func TestStatsCounts(t *testing.T) {
	g, _ := buildAdder(t)
	s := g.ComputeStats()
	if s.Inputs != 2 || s.Outputs != 1 || s.Nodes != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBuilderCounterSemantics(t *testing.T) {
	b := NewBuilder("cnt")
	c := b.Counter("c", 4, 3)
	if c.Expr == nil || c.Expr.Width != 4 {
		t.Fatal("counter next not fitted to register width")
	}
}

func TestExprString(t *testing.T) {
	b := NewBuilder("s")
	a := b.Input("a", 8)
	e := b.Bits(b.Add(b.R(a), b.C(8, 1)), 3, 0)
	s := e.String()
	for _, frag := range []string{"bits(", "add(", "a", "3, 0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

// TestWalkPtrReplaces checks in-place rewriting through WalkPtr.
func TestWalkPtrReplaces(t *testing.T) {
	b := NewBuilder("w")
	a := b.Input("a", 8)
	e := b.Add(b.R(a), b.R(a))
	WalkPtr(&e, func(pe **Expr) bool {
		if (*pe).Op == OpRef {
			*pe = ConstUint(8, 7)
			return false
		}
		return true
	})
	if e.Args[0].Op != OpConst || e.Args[1].Op != OpConst {
		t.Fatal("WalkPtr failed to replace refs")
	}
}

// Property: ResultWidth is always >= 1 for valid inputs.
func TestResultWidthPositive(t *testing.T) {
	f := func(wa, wb uint8, n uint8) bool {
		a, bw := 1+int(wa%64), 1+int(wb%64)
		for _, op := range []Op{OpAdd, OpSub, OpMul, OpAnd, OpEq, OpCat, OpDshr, OpShr} {
			if ResultWidth(op, a, bw, int(n%8)) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
