// Package ir defines the dataflow-graph intermediate representation GSIM
// operates on: a directed graph whose nodes are registers, combinational
// signals, and memory ports, and whose node values are expression trees over
// FIRRTL-style primitive operations.
//
// The IR follows the paper's model directly: "each node corresponds to a
// register or logic unit, and each edge represents the propagation of signals
// between nodes" (§II-A). Registers are two-phase (a current value read by
// combinational logic and a next value computed during the cycle), which
// breaks all cycles and makes the graph a DAG.
package ir

import "fmt"

// Op identifies a primitive operation inside an expression tree. The set
// mirrors the FIRRTL primops GSIM accepts, plus Ref (read another node's
// value) and Const.
type Op uint8

// Expression operators.
const (
	OpInvalid Op = iota
	OpRef        // value of another node
	OpConst      // literal

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg

	OpAnd
	OpOr
	OpXor
	OpNot
	OpAndR
	OpOrR
	OpXorR

	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpSLt
	OpSLeq
	OpSGt
	OpSGeq

	OpShl  // static shift left; amount in Lo
	OpShr  // static shift right; amount in Lo
	OpDshl // dynamic shift left
	OpDshr // dynamic shift right

	OpCat  // {hi: args[0], lo: args[1]}
	OpBits // args[0][Hi:Lo]
	OpPad  // zero-extend to Width
	OpSExt // sign-extend to Width

	OpMux // args[0] ? args[1] : args[2]

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpRef:     "ref",
	OpConst:   "const",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpRem:     "rem",
	OpNeg:     "neg",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpNot:     "not",
	OpAndR:    "andr",
	OpOrR:     "orr",
	OpXorR:    "xorr",
	OpEq:      "eq",
	OpNeq:     "neq",
	OpLt:      "lt",
	OpLeq:     "leq",
	OpGt:      "gt",
	OpGeq:     "geq",
	OpSLt:     "slt",
	OpSLeq:    "sleq",
	OpSGt:     "sgt",
	OpSGeq:    "sgeq",
	OpShl:     "shl",
	OpShr:     "shr",
	OpDshl:    "dshl",
	OpDshr:    "dshr",
	OpCat:     "cat",
	OpBits:    "bits",
	OpPad:     "pad",
	OpSExt:    "sext",
	OpMux:     "mux",
}

// String returns the lowercase primop name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Arity returns the number of expression arguments the operator takes.
func (o Op) Arity() int {
	switch o {
	case OpRef, OpConst:
		return 0
	case OpNot, OpNeg, OpAndR, OpOrR, OpXorR, OpShl, OpShr, OpBits, OpPad, OpSExt:
		return 1
	case OpMux:
		return 3
	default:
		return 2
	}
}

// Commutative reports whether the operator's two arguments can be swapped
// without changing the result.
func (o Op) Commutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNeq:
		return true
	}
	return false
}

// Cost returns the abstract evaluation cost of one application of the
// operator, in "operator units" — the unit the paper's inline/extract cost
// model is expressed in (§III-B: "in terms of the number of operators
// involved"). Multiplication and division are weighted heavier to reflect
// host-instruction cost.
func (o Op) Cost() int {
	switch o {
	case OpRef, OpConst:
		return 0
	case OpMul:
		return 3
	case OpDiv, OpRem:
		return 6
	default:
		return 1
	}
}

// ResultWidth computes the FIRRTL result width for the operator applied to
// argument widths. n is the static parameter (shift amount for Shl/Shr, the
// target width for Pad/SExt, hi and lo for Bits via hi-lo+1 computed by the
// caller). Binary ops pass both widths; unary ops pass the width in wa.
func ResultWidth(o Op, wa, wb, n int) int {
	max := wa
	if wb > max {
		max = wb
	}
	switch o {
	case OpAdd, OpSub:
		return max + 1
	case OpMul:
		return wa + wb
	case OpDiv:
		return wa
	case OpRem:
		if wa < wb {
			return wa
		}
		return wb
	case OpNeg:
		return wa + 1
	case OpAnd, OpOr, OpXor:
		return max
	case OpNot:
		return wa
	case OpAndR, OpOrR, OpXorR:
		return 1
	case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq, OpSLt, OpSLeq, OpSGt, OpSGeq:
		return 1
	case OpShl:
		return wa + n
	case OpShr:
		w := wa - n
		if w < 1 {
			w = 1
		}
		return w
	case OpDshl:
		// FIRRTL: wa + 2^wb - 1; capped by callers that know better.
		if wb > 20 {
			panic(fmt.Sprintf("ir: dshl shift-amount width %d too large", wb))
		}
		return wa + (1 << uint(wb)) - 1
	case OpDshr:
		return wa
	case OpCat:
		return wa + wb
	case OpBits:
		return n
	case OpPad, OpSExt:
		if n > wa {
			return n
		}
		return wa
	case OpMux:
		// args[1] and args[2] widths; caller passes them as wa, wb.
		return max
	}
	panic(fmt.Sprintf("ir: ResultWidth on %v", o))
}
