package ir

import (
	"fmt"
	"hash/maphash"
	"strings"

	"gsim/internal/bitvec"
)

// Expr is a node in an expression tree. Leaves are OpRef (read a graph node)
// or OpConst. Width is the value's bit width; it is fixed at construction
// following the FIRRTL width rules and kept consistent by all rewrites.
type Expr struct {
	Op    Op
	Args  []*Expr
	Node  *Node     // OpRef target
	Imm   bitvec.BV // OpConst value
	Hi    int       // OpBits high index
	Lo    int       // OpBits low index; static amount for OpShl/OpShr
	Width int
}

// Ref returns an expression reading node n.
func Ref(n *Node) *Expr {
	if n == nil {
		panic("ir: Ref(nil)")
	}
	return &Expr{Op: OpRef, Node: n, Width: n.Width}
}

// Const returns a literal expression.
func Const(v bitvec.BV) *Expr {
	return &Expr{Op: OpConst, Imm: v, Width: v.Width}
}

// ConstUint returns a literal expression of the given width.
func ConstUint(width int, v uint64) *Expr {
	return Const(bitvec.FromUint64(width, v))
}

// Unary builds a unary expression with inferred width. For OpShl/OpShr the
// static amount is n; for OpPad/OpSExt, n is the target width.
func Unary(op Op, a *Expr, n int) *Expr {
	e := &Expr{Op: op, Args: []*Expr{a}, Width: ResultWidth(op, a.Width, 0, n)}
	if op == OpShl || op == OpShr {
		e.Lo = n
	}
	return e
}

// Binary builds a binary expression with inferred width.
func Binary(op Op, a, b *Expr) *Expr {
	return &Expr{Op: op, Args: []*Expr{a, b}, Width: ResultWidth(op, a.Width, b.Width, 0)}
}

// BitsOf builds args[hi:lo].
func BitsOf(a *Expr, hi, lo int) *Expr {
	if hi < lo || lo < 0 || hi >= a.Width {
		panic(fmt.Sprintf("ir: bits(%d,%d) out of range for width %d", hi, lo, a.Width))
	}
	return &Expr{Op: OpBits, Args: []*Expr{a}, Hi: hi, Lo: lo, Width: hi - lo + 1}
}

// MuxOf builds sel ? a : b. The arms must have equal width.
func MuxOf(sel, a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic(fmt.Sprintf("ir: mux arm widths differ: %d vs %d", a.Width, b.Width))
	}
	if sel.Width != 1 {
		panic(fmt.Sprintf("ir: mux selector width %d != 1", sel.Width))
	}
	return &Expr{Op: OpMux, Args: []*Expr{sel, a, b}, Width: a.Width}
}

// Clone returns a deep copy of e. Node references are shared (they point at
// graph nodes), constants are copied.
func (e *Expr) Clone() *Expr {
	c := &Expr{Op: e.Op, Node: e.Node, Hi: e.Hi, Lo: e.Lo, Width: e.Width}
	if e.Op == OpConst {
		c.Imm = e.Imm.Clone()
	}
	if len(e.Args) > 0 {
		c.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = a.Clone()
		}
	}
	return c
}

// Walk calls f on every sub-expression of e in post-order (children first).
func (e *Expr) Walk(f func(*Expr)) {
	for _, a := range e.Args {
		a.Walk(f)
	}
	f(e)
}

// WalkPtr calls f with a pointer to every expression slot reachable from the
// root pointer, in pre-order, so callers can replace sub-expressions in
// place. If f returns false the walk does not descend into the (possibly
// replaced) expression's children.
func WalkPtr(root **Expr, f func(**Expr) bool) {
	if *root == nil {
		return
	}
	if !f(root) {
		return
	}
	for i := range (*root).Args {
		WalkPtr(&(*root).Args[i], f)
	}
}

// Cost returns the total abstract evaluation cost of the tree — the sum of
// Op.Cost over every operator — matching the paper's cost(f(A)) metric.
func (e *Expr) Cost() int {
	c := e.Op.Cost()
	for _, a := range e.Args {
		c += a.Cost()
	}
	return c
}

// CountOps returns the number of non-leaf operators in the tree.
func (e *Expr) CountOps() int {
	n := 0
	if e.Op != OpRef && e.Op != OpConst {
		n = 1
	}
	for _, a := range e.Args {
		n += a.CountOps()
	}
	return n
}

// Refs appends the distinct nodes referenced by e to dst and returns it.
func (e *Expr) Refs(dst []*Node) []*Node {
	seen := map[*Node]bool{}
	for _, n := range dst {
		seen[n] = true
	}
	e.Walk(func(x *Expr) {
		if x.Op == OpRef && !seen[x.Node] {
			seen[x.Node] = true
			dst = append(dst, x.Node)
		}
	})
	return dst
}

// RefersTo reports whether e references node n anywhere.
func (e *Expr) RefersTo(n *Node) bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Op == OpRef && x.Node == n {
			found = true
		}
	})
	return found
}

// StructEq reports whether two trees are structurally identical: same ops,
// parameters, widths, constants, and referenced nodes.
func StructEq(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Op != b.Op || a.Width != b.Width || a.Hi != b.Hi || a.Lo != b.Lo {
		return false
	}
	switch a.Op {
	case OpRef:
		return a.Node == b.Node
	case OpConst:
		return a.Imm.Equal(b.Imm)
	}
	if len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !StructEq(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

var exprSeed = maphash.MakeSeed()

// Hash returns a structural hash of e, consistent with StructEq.
func (e *Expr) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(exprSeed)
	e.hashInto(&h)
	return h.Sum64()
}

func (e *Expr) hashInto(h *maphash.Hash) {
	h.WriteByte(byte(e.Op))
	writeInt := func(v int) {
		for i := 0; i < 4; i++ {
			h.WriteByte(byte(v >> (8 * i)))
		}
	}
	writeInt(e.Width)
	writeInt(e.Hi)
	writeInt(e.Lo)
	switch e.Op {
	case OpRef:
		writeInt(e.Node.ID)
	case OpConst:
		for _, w := range e.Imm.W {
			for i := 0; i < 8; i++ {
				h.WriteByte(byte(w >> (8 * i)))
			}
		}
	}
	for _, a := range e.Args {
		a.hashInto(h)
	}
}

// String renders the expression in FIRRTL-ish prefix form.
func (e *Expr) String() string {
	var sb strings.Builder
	e.format(&sb)
	return sb.String()
}

func (e *Expr) format(sb *strings.Builder) {
	switch e.Op {
	case OpRef:
		sb.WriteString(e.Node.Name)
	case OpConst:
		fmt.Fprintf(sb, "UInt<%d>(%s)", e.Width, e.Imm.String())
	case OpBits:
		sb.WriteString("bits(")
		e.Args[0].format(sb)
		fmt.Fprintf(sb, ", %d, %d)", e.Hi, e.Lo)
	case OpShl, OpShr, OpPad, OpSExt:
		sb.WriteString(e.Op.String())
		sb.WriteByte('(')
		e.Args[0].format(sb)
		n := e.Lo
		if e.Op == OpPad || e.Op == OpSExt {
			n = e.Width
		}
		fmt.Fprintf(sb, ", %d)", n)
	default:
		sb.WriteString(e.Op.String())
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			a.format(sb)
		}
		sb.WriteByte(')')
	}
}
