package ir

import (
	"fmt"
	"io"
)

// WriteDot renders the graph in Graphviz DOT format for debugging: one box
// per node (shape by kind), value-dependence edges, dashed edges for
// register reads (the cycle-breaking edges). Intended for small graphs;
// large designs produce unusably dense plots.
func (g *Graph) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", g.Name); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		shape, color := "ellipse", "black"
		switch n.Kind {
		case KindInput:
			shape, color = "invtrapezium", "blue"
		case KindReg:
			shape, color = "box", "darkgreen"
		case KindMemRead, KindMemWrite:
			shape, color = "cylinder", "purple"
		}
		label := fmt.Sprintf("%s\\n%s:%d", n.Name, n.Kind, n.Width)
		if n.IsOutput {
			color = "red"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s color=%s];\n", n.ID, label, shape, color); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		seen := map[int]bool{}
		n.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op != OpRef || seen[e.Node.ID] {
					return
				}
				seen[e.Node.ID] = true
				style := ""
				if e.Node.Kind == KindReg {
					style = " [style=dashed]"
				}
				fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.Node.ID, n.ID, style)
			})
		})
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
