package ir

import (
	"fmt"
	"sort"

	"gsim/internal/bitvec"
)

// Graph is the dataflow graph for one elaborated circuit. Nodes are indexed
// by ID; deleted nodes are nil until Compact is called.
type Graph struct {
	Name  string
	Nodes []*Node
	Mems  []*Memory
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node, assigning its ID.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddMem appends a memory, assigning its ID.
func (g *Graph) AddMem(m *Memory) *Memory {
	m.ID = len(g.Mems)
	g.Mems = append(g.Mems, m)
	return m
}

// Live returns the non-nil nodes.
func (g *Graph) Live() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// NumNodes returns the count of live nodes ("IR node" in the paper's Table I).
func (g *Graph) NumNodes() int {
	c := 0
	for _, n := range g.Nodes {
		if n != nil {
			c++
		}
	}
	return c
}

// NumEdges returns the count of dataflow edges ("IR edge" in Table I): one
// edge per (referencing node, referenced node) pair, counted with
// multiplicity per distinct pair.
func (g *Graph) NumEdges() int {
	c := 0
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		seen := map[int]bool{}
		n.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op == OpRef && !seen[e.Node.ID] {
					seen[e.Node.ID] = true
					c++
				}
			})
		})
	}
	return c
}

// Compact renumbers nodes densely, dropping nil entries, and rebuilds memory
// port lists. Expression Node pointers remain valid since nodes are shared.
func (g *Graph) Compact() {
	live := g.Live()
	g.Nodes = g.Nodes[:0]
	for _, n := range live {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
	}
	g.freezeMems()
}

func (g *Graph) freezeMems() {
	for _, m := range g.Mems {
		m.Reads = m.Reads[:0]
		m.Writes = m.Writes[:0]
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		switch n.Kind {
		case KindMemRead:
			n.Mem.Reads = append(n.Mem.Reads, n)
		case KindMemWrite:
			n.Mem.Writes = append(n.Mem.Writes, n)
		}
	}
}

// Adjacency holds successor and predecessor lists per node ID (deduplicated,
// sorted). Edges express value dependence: an edge u->v means v's expressions
// reference u's value.
type Adjacency struct {
	Succs [][]int32
	Preds [][]int32
}

// BuildAdjacency computes the adjacency lists from node expressions.
func (g *Graph) BuildAdjacency() *Adjacency {
	n := len(g.Nodes)
	adj := &Adjacency{Succs: make([][]int32, n), Preds: make([][]int32, n)}
	for _, v := range g.Nodes {
		if v == nil {
			continue
		}
		seen := map[int32]bool{}
		v.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op == OpRef {
					u := int32(e.Node.ID)
					if !seen[u] {
						seen[u] = true
						adj.Preds[v.ID] = append(adj.Preds[v.ID], u)
						adj.Succs[u] = append(adj.Succs[u], int32(v.ID))
					}
				}
			})
		})
	}
	for i := range adj.Succs {
		sortInt32(adj.Succs[i])
		sortInt32(adj.Preds[i])
	}
	return adj
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// TopoOrder returns all live node IDs in a deterministic topological order of
// the value-dependence DAG. Register and memory-write nodes depend on their
// expression inputs like any combinational node (they compute next-cycle
// state); register *reads* do not create dependence edges into the register's
// next-value computation because the current value is stable within a cycle —
// but in this IR a register node is both the holder of the current value and
// the computer of the next value, so a register may appear before nodes that
// read it. To keep evaluation correct, the returned order is a topological
// sort treating register nodes as SOURCES for their readers (reads see the
// old value via separate storage) and as ordinary consumers of their
// next-value inputs. Concretely: edges u->v are included for every reference
// unless u is a register or input, in which case u is still ordered before v
// if possible but cycles through registers are legal and broken at the
// register.
//
// Implementation: run Kahn's algorithm on the edge set excluding out-edges of
// registers, inputs, and memory-read... (memory reads are combinational, so
// their out-edges ARE included). Only register and input out-edges are
// excluded, which provably breaks all cycles in a well-formed synchronous
// design. An error is returned if a combinational cycle remains.
func (g *Graph) TopoOrder() ([]int32, error) {
	n := len(g.Nodes)
	indeg := make([]int32, n)
	succs := make([][]int32, n)
	for _, v := range g.Nodes {
		if v == nil {
			continue
		}
		seen := map[int32]bool{}
		v.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op != OpRef {
					return
				}
				u := e.Node
				if u.Kind == KindReg || u.Kind == KindInput {
					return // current-value read: no ordering constraint
				}
				uid := int32(u.ID)
				if !seen[uid] {
					seen[uid] = true
					succs[uid] = append(succs[uid], int32(v.ID))
					indeg[v.ID]++
				}
			})
		})
	}
	// Deterministic Kahn: a min-heap over ready IDs would be O(n log n); a
	// simple monotone queue seeded in ID order is deterministic enough and
	// O(V+E) — ready nodes are appended in discovery order after an initial
	// ID-ordered seed.
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for id, v := range g.Nodes {
		if v != nil && indeg[id] == 0 {
			queue = append(queue, int32(id))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.NumNodes() {
		return nil, fmt.Errorf("ir: combinational cycle detected (%d of %d nodes ordered)", len(order), g.NumNodes())
	}
	return order, nil
}

// Levelize assigns each node a level: inputs and registers at level 0, every
// other node at 1 + max(level of combinational predecessors). It returns the
// level of each node and the nodes grouped per level (IDs ascending). The
// grouping drives the parallel full-cycle engine: all nodes in one level are
// independent given the previous levels.
func (g *Graph) Levelize(order []int32) (levels []int32, byLevel [][]int32) {
	levels = make([]int32, len(g.Nodes))
	maxLevel := int32(0)
	for _, id := range order {
		v := g.Nodes[id]
		lv := int32(0)
		v.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if e.Op != OpRef {
					return
				}
				u := e.Node
				if u.Kind == KindReg || u.Kind == KindInput {
					return
				}
				if levels[u.ID]+1 > lv {
					lv = levels[u.ID] + 1
				}
			})
		})
		levels[id] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	byLevel = make([][]int32, maxLevel+1)
	for _, id := range order {
		lv := levels[id]
		byLevel[lv] = append(byLevel[lv], id)
	}
	return levels, byLevel
}

// Validate checks structural invariants: widths consistent with operator
// rules, references to live nodes, register init widths, memory port shapes,
// and acyclicity. It returns the first problem found.
func (g *Graph) Validate() error {
	for id, n := range g.Nodes {
		if n == nil {
			continue
		}
		if n.ID != id {
			return fmt.Errorf("node %q: ID %d stored at index %d", n.Name, n.ID, id)
		}
		if n.Width <= 0 && n.Kind != KindMemWrite {
			return fmt.Errorf("node %q: width %d", n.Name, n.Width)
		}
		switch n.Kind {
		case KindInput:
			if n.Expr != nil {
				return fmt.Errorf("input %q has an expression", n.Name)
			}
		case KindComb:
			if n.Expr == nil {
				return fmt.Errorf("comb %q has no expression", n.Name)
			}
			if n.Expr.Width != n.Width {
				return fmt.Errorf("comb %q: expr width %d != node width %d", n.Name, n.Expr.Width, n.Width)
			}
		case KindReg:
			if n.Expr == nil {
				return fmt.Errorf("reg %q has no next expression", n.Name)
			}
			if n.Expr.Width != n.Width {
				return fmt.Errorf("reg %q: next width %d != reg width %d", n.Name, n.Expr.Width, n.Width)
			}
			if n.Init.Width != 0 && n.Init.Width != n.Width {
				return fmt.Errorf("reg %q: init width %d != reg width %d", n.Name, n.Init.Width, n.Width)
			}
			if n.ResetSig != nil && n.ResetSig.Width != 1 {
				return fmt.Errorf("reg %q: reset signal width %d != 1", n.Name, n.ResetSig.Width)
			}
		case KindMemRead:
			if n.Mem == nil || n.Expr == nil {
				return fmt.Errorf("memread %q incomplete", n.Name)
			}
			if n.Width != n.Mem.Width {
				return fmt.Errorf("memread %q: width %d != mem width %d", n.Name, n.Width, n.Mem.Width)
			}
		case KindMemWrite:
			if n.Mem == nil || n.WAddr == nil || n.WData == nil || n.WEn == nil {
				return fmt.Errorf("memwrite %q incomplete", n.Name)
			}
			if n.WData.Width != n.Mem.Width {
				return fmt.Errorf("memwrite %q: data width %d != mem width %d", n.Name, n.WData.Width, n.Mem.Width)
			}
			if n.WEn.Width != 1 {
				return fmt.Errorf("memwrite %q: enable width %d != 1", n.Name, n.WEn.Width)
			}
		default:
			return fmt.Errorf("node %q: invalid kind", n.Name)
		}
		var exprErr error
		n.EachExpr(func(slot **Expr) {
			(*slot).Walk(func(e *Expr) {
				if exprErr != nil {
					return
				}
				if err := validateExpr(g, e); err != nil {
					exprErr = fmt.Errorf("node %q: %v", n.Name, err)
				}
			})
		})
		if exprErr != nil {
			return exprErr
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func validateExpr(g *Graph, e *Expr) error {
	if len(e.Args) != e.Op.Arity() {
		return fmt.Errorf("%v: arity %d, want %d", e.Op, len(e.Args), e.Op.Arity())
	}
	switch e.Op {
	case OpRef:
		t := e.Node
		if t == nil || t.ID >= len(g.Nodes) || g.Nodes[t.ID] != t {
			return fmt.Errorf("ref to dead or foreign node %v", t)
		}
		if e.Width != t.Width {
			return fmt.Errorf("ref %q: width %d != node width %d", t.Name, e.Width, t.Width)
		}
	case OpConst:
		if e.Imm.Width != e.Width {
			return fmt.Errorf("const width mismatch: %d vs %d", e.Imm.Width, e.Width)
		}
	case OpBits:
		a := e.Args[0]
		if e.Hi < e.Lo || e.Lo < 0 || e.Hi >= a.Width {
			return fmt.Errorf("bits(%d,%d) out of range for width %d", e.Hi, e.Lo, a.Width)
		}
		if e.Width != e.Hi-e.Lo+1 {
			return fmt.Errorf("bits width %d != %d", e.Width, e.Hi-e.Lo+1)
		}
	case OpMux:
		if e.Args[0].Width != 1 {
			return fmt.Errorf("mux selector width %d", e.Args[0].Width)
		}
		if e.Args[1].Width != e.Args[2].Width || e.Width != e.Args[1].Width {
			return fmt.Errorf("mux arm widths %d/%d, node %d", e.Args[1].Width, e.Args[2].Width, e.Width)
		}
	case OpPad, OpSExt:
		if e.Width < e.Args[0].Width {
			return fmt.Errorf("%v narrows %d -> %d", e.Op, e.Args[0].Width, e.Width)
		}
	case OpShl:
		if e.Width != e.Args[0].Width+e.Lo {
			return fmt.Errorf("shl width %d != %d+%d", e.Width, e.Args[0].Width, e.Lo)
		}
	case OpCat:
		if e.Width != e.Args[0].Width+e.Args[1].Width {
			return fmt.Errorf("cat width %d != %d+%d", e.Width, e.Args[0].Width, e.Args[1].Width)
		}
	}
	return nil
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Name     string
	Nodes    int
	Edges    int
	Inputs   int
	Outputs  int
	Regs     int
	Mems     int
	MemBits  int
	TotalOps int
}

// ComputeStats gathers Stats for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Name: g.Name, Nodes: g.NumNodes(), Edges: g.NumEdges(), Mems: len(g.Mems)}
	for _, m := range g.Mems {
		s.MemBits += m.Depth * m.Width
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		switch n.Kind {
		case KindInput:
			s.Inputs++
		case KindReg:
			s.Regs++
		}
		if n.IsOutput {
			s.Outputs++
		}
		n.EachExpr(func(slot **Expr) {
			s.TotalOps += (*slot).CountOps()
		})
	}
	return s
}

// FindNode returns the live node with the given name, or nil.
func (g *Graph) FindNode(name string) *Node {
	for _, n := range g.Nodes {
		if n != nil && n.Name == name {
			return n
		}
	}
	return nil
}

// ZeroInit returns a zero BV of the node's width, used as the default
// register initial value.
func ZeroInit(n *Node) bitvec.BV { return bitvec.New(n.Width) }
