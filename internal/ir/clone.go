package ir

import "gsim/internal/bitvec"

// Clone returns a deep copy of the graph: fresh nodes, fresh expression
// trees with references remapped to the new nodes, and fresh memories.
// Experiments use this to run many independent optimization pipelines over
// one elaborated design.
func (g *Graph) Clone() *Graph {
	ng := NewGraph(g.Name)
	memMap := make(map[*Memory]*Memory, len(g.Mems))
	for _, m := range g.Mems {
		nm := &Memory{Name: m.Name, Depth: m.Depth, Width: m.Width}
		if m.Init != nil {
			nm.Init = make(map[int]bitvec.BV, len(m.Init))
			for k, v := range m.Init {
				nm.Init[k] = v.Clone()
			}
		}
		ng.AddMem(nm)
		memMap[m] = nm
	}
	nodeMap := make(map[*Node]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		if n == nil {
			ng.Nodes = append(ng.Nodes, nil)
			continue
		}
		nn := &Node{
			ID:       len(ng.Nodes),
			Name:     n.Name,
			Kind:     n.Kind,
			Width:    n.Width,
			Init:     n.Init.Clone(),
			IsOutput: n.IsOutput,
		}
		if n.Mem != nil {
			nn.Mem = memMap[n.Mem]
		}
		ng.Nodes = append(ng.Nodes, nn)
		nodeMap[n] = nn
	}
	remap := func(e *Expr) *Expr {
		if e == nil {
			return nil
		}
		c := e.Clone()
		WalkPtr(&c, func(pe **Expr) bool {
			if (*pe).Op == OpRef {
				(*pe).Node = nodeMap[(*pe).Node]
			}
			return true
		})
		return c
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		nn := nodeMap[n]
		nn.Expr = remap(n.Expr)
		nn.WAddr = remap(n.WAddr)
		nn.WData = remap(n.WData)
		nn.WEn = remap(n.WEn)
		if n.ResetSig != nil {
			nn.ResetSig = nodeMap[n.ResetSig]
		}
	}
	ng.freezeMems()
	return ng
}

// SortTopological compacts the graph and renumbers nodes so that ID order
// is a topological order of the value-dependence DAG. The compiled
// instruction stream then evaluates correctly as one linear sweep, and
// supernode member lists sorted by ID are dependence-ordered.
func (g *Graph) SortTopological() error {
	g.Compact()
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	nodes := make([]*Node, len(order))
	for i, id := range order {
		nodes[i] = g.Nodes[id]
	}
	g.Nodes = nodes
	for i, n := range g.Nodes {
		n.ID = i
	}
	g.freezeMems()
	return nil
}
