package ir

import (
	"fmt"

	"gsim/internal/bitvec"
)

// Builder is a convenience layer for constructing graphs programmatically —
// the same role Chisel plays for the paper's designs. All expression helpers
// infer FIRRTL result widths; Trunc/Extend adjust widths explicitly.
type Builder struct {
	G      *Graph
	prefix string
	anon   int
}

// NewBuilder returns a builder for a fresh graph.
func NewBuilder(name string) *Builder {
	return &Builder{G: NewGraph(name)}
}

// Scoped returns a builder that prefixes node names, for composing modules.
func (b *Builder) Scoped(prefix string) *Builder {
	return &Builder{G: b.G, prefix: b.prefix + prefix + "."}
}

func (b *Builder) name(n string) string {
	if n == "" {
		b.anon++
		n = fmt.Sprintf("_t%d", b.anon)
	}
	return b.prefix + n
}

// Input adds an external input node.
func (b *Builder) Input(name string, width int) *Node {
	return b.G.AddNode(&Node{Name: b.name(name), Kind: KindInput, Width: width})
}

// Comb adds a named combinational node for the expression.
func (b *Builder) Comb(name string, e *Expr) *Node {
	return b.G.AddNode(&Node{Name: b.name(name), Kind: KindComb, Width: e.Width, Expr: e})
}

// Output adds a combinational node marked externally observable.
func (b *Builder) Output(name string, e *Expr) *Node {
	n := b.Comb(name, e)
	n.IsOutput = true
	return n
}

// MarkOutput flags an existing node as observable.
func (b *Builder) MarkOutput(n *Node) *Node {
	n.IsOutput = true
	return n
}

// Reg adds a register with a zero init whose next-value expression must be
// assigned later via SetNext (to allow feedback loops).
func (b *Builder) Reg(name string, width int) *Node {
	return b.G.AddNode(&Node{
		Name:  b.name(name),
		Kind:  KindReg,
		Width: width,
		Init:  bitvec.New(width),
	})
}

// RegInit adds a register with an explicit initial value.
func (b *Builder) RegInit(name string, width int, init bitvec.BV) *Node {
	n := b.Reg(name, width)
	n.Init = bitvec.Pad(init, width)
	return n
}

// SetNext assigns a register's next-value expression, padding or truncating
// the expression to the register width.
func (b *Builder) SetNext(r *Node, e *Expr) {
	if r.Kind != KindReg {
		panic(fmt.Sprintf("ir: SetNext on non-register %v", r))
	}
	r.Expr = b.Fit(e, r.Width)
}

// Mem adds a memory.
func (b *Builder) Mem(name string, depth, width int) *Memory {
	return b.G.AddMem(&Memory{Name: b.name(name), Depth: depth, Width: width})
}

// MemRead adds a combinational read port on m at the given address.
func (b *Builder) MemRead(name string, m *Memory, addr *Expr) *Node {
	return b.G.AddNode(&Node{
		Name: b.name(name), Kind: KindMemRead, Width: m.Width,
		Mem: m, Expr: b.Fit(addr, m.AddrWidth()),
	})
}

// MemWrite adds a synchronous write port on m.
func (b *Builder) MemWrite(name string, m *Memory, addr, data, en *Expr) *Node {
	return b.G.AddNode(&Node{
		Name: b.name(name), Kind: KindMemWrite, Width: m.Width,
		Mem:   m,
		WAddr: b.Fit(addr, m.AddrWidth()),
		WData: b.Fit(data, m.Width),
		WEn:   b.Fit(en, 1),
	})
}

// --- Expression helpers (width-inferring) ---

// R returns a reference to node n.
func (b *Builder) R(n *Node) *Expr { return Ref(n) }

// C returns a constant of the given width.
func (b *Builder) C(width int, v uint64) *Expr { return ConstUint(width, v) }

// CB returns a constant from a bit vector.
func (b *Builder) CB(v bitvec.BV) *Expr { return Const(v) }

// Add returns x+y (width max+1).
func (b *Builder) Add(x, y *Expr) *Expr { return Binary(OpAdd, x, y) }

// Sub returns x-y (width max+1).
func (b *Builder) Sub(x, y *Expr) *Expr { return Binary(OpSub, x, y) }

// Mul returns x*y (width sum).
func (b *Builder) Mul(x, y *Expr) *Expr { return Binary(OpMul, x, y) }

// Div returns x/y.
func (b *Builder) Div(x, y *Expr) *Expr { return Binary(OpDiv, x, y) }

// Rem returns x%y.
func (b *Builder) Rem(x, y *Expr) *Expr { return Binary(OpRem, x, y) }

// And returns x&y.
func (b *Builder) And(x, y *Expr) *Expr { return Binary(OpAnd, x, y) }

// Or returns x|y.
func (b *Builder) Or(x, y *Expr) *Expr { return Binary(OpOr, x, y) }

// Xor returns x^y.
func (b *Builder) Xor(x, y *Expr) *Expr { return Binary(OpXor, x, y) }

// Not returns ^x.
func (b *Builder) Not(x *Expr) *Expr { return Unary(OpNot, x, 0) }

// AndR returns the AND reduction of x.
func (b *Builder) AndR(x *Expr) *Expr { return Unary(OpAndR, x, 0) }

// OrR returns the OR reduction of x.
func (b *Builder) OrR(x *Expr) *Expr { return Unary(OpOrR, x, 0) }

// XorR returns the XOR reduction of x.
func (b *Builder) XorR(x *Expr) *Expr { return Unary(OpXorR, x, 0) }

// Eq returns x==y.
func (b *Builder) Eq(x, y *Expr) *Expr { return Binary(OpEq, x, y) }

// Neq returns x!=y.
func (b *Builder) Neq(x, y *Expr) *Expr { return Binary(OpNeq, x, y) }

// Lt returns x<y unsigned.
func (b *Builder) Lt(x, y *Expr) *Expr { return Binary(OpLt, x, y) }

// Leq returns x<=y unsigned.
func (b *Builder) Leq(x, y *Expr) *Expr { return Binary(OpLeq, x, y) }

// Gt returns x>y unsigned.
func (b *Builder) Gt(x, y *Expr) *Expr { return Binary(OpGt, x, y) }

// Geq returns x>=y unsigned.
func (b *Builder) Geq(x, y *Expr) *Expr { return Binary(OpGeq, x, y) }

// SLt returns x<y signed.
func (b *Builder) SLt(x, y *Expr) *Expr { return Binary(OpSLt, x, y) }

// SGeq returns x>=y signed.
func (b *Builder) SGeq(x, y *Expr) *Expr { return Binary(OpSGeq, x, y) }

// Shl returns x<<n (static).
func (b *Builder) Shl(x *Expr, n int) *Expr { return Unary(OpShl, x, n) }

// Shr returns x>>n (static).
func (b *Builder) Shr(x *Expr, n int) *Expr { return Unary(OpShr, x, n) }

// Dshl returns x<<y (dynamic), capped at the given result width.
func (b *Builder) Dshl(x, y *Expr, width int) *Expr {
	e := Binary(OpDshl, x, y)
	return b.Fit(e, width)
}

// DshlFull returns x<<y at the full FIRRTL width.
func (b *Builder) DshlFull(x, y *Expr) *Expr { return Binary(OpDshl, x, y) }

// Dshr returns x>>y (dynamic).
func (b *Builder) Dshr(x, y *Expr) *Expr { return Binary(OpDshr, x, y) }

// Cat returns {hi, lo}.
func (b *Builder) Cat(hi, lo *Expr) *Expr { return Binary(OpCat, hi, lo) }

// CatAll concatenates parts, first argument highest.
func (b *Builder) CatAll(parts ...*Expr) *Expr {
	if len(parts) == 0 {
		panic("ir: CatAll with no parts")
	}
	e := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		e = b.Cat(parts[i], e)
	}
	return e
}

// Bits returns x[hi:lo].
func (b *Builder) Bits(x *Expr, hi, lo int) *Expr { return BitsOf(x, hi, lo) }

// Bit returns x[i] as a 1-bit value.
func (b *Builder) Bit(x *Expr, i int) *Expr { return BitsOf(x, i, i) }

// Mux returns sel ? x : y, padding the arms to a common width.
func (b *Builder) Mux(sel, x, y *Expr) *Expr {
	w := x.Width
	if y.Width > w {
		w = y.Width
	}
	return MuxOf(b.Fit(sel, 1), b.Fit(x, w), b.Fit(y, w))
}

// Fit pads or truncates e to exactly width bits.
func (b *Builder) Fit(e *Expr, width int) *Expr {
	switch {
	case e.Width == width:
		return e
	case e.Width < width:
		return &Expr{Op: OpPad, Args: []*Expr{e}, Width: width}
	default:
		return BitsOf(e, width-1, 0)
	}
}

// SExt sign-extends e to width bits.
func (b *Builder) SExt(e *Expr, width int) *Expr {
	if e.Width >= width {
		return b.Fit(e, width)
	}
	return &Expr{Op: OpSExt, Args: []*Expr{e}, Width: width}
}

// AddW returns x+y truncated to width.
func (b *Builder) AddW(x, y *Expr, width int) *Expr { return b.Fit(b.Add(x, y), width) }

// SubW returns x-y truncated to width.
func (b *Builder) SubW(x, y *Expr, width int) *Expr { return b.Fit(b.Sub(x, y), width) }

// Counter builds a free-running width-bit counter register incrementing by
// step each cycle, and returns it.
func (b *Builder) Counter(name string, width int, step uint64) *Node {
	r := b.Reg(name, width)
	b.SetNext(r, b.Add(b.R(r), b.C(width, step)))
	return r
}

// Pipeline builds a chain of n registers fed by e; returns the final stage.
func (b *Builder) Pipeline(name string, e *Expr, n int) *Node {
	var last *Node
	for i := 0; i < n; i++ {
		r := b.Reg(fmt.Sprintf("%s_s%d", name, i), e.Width)
		b.SetNext(r, e)
		e = b.R(r)
		last = r
	}
	return last
}
