// Package leakcheck is a dependency-free goroutine-leak detector for tests
// (the role go.uber.org/goleak plays elsewhere; the container policy is no
// new modules). A leaked goroutine is the quietest way a server grows until
// it falls over, and the session manager owns several kinds — engine worker
// pools, the idle reaper, drain helpers — so the server suite fails if any
// of them outlives its owner.
//
// Usage, once per test package:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
//
// or per test: defer leakcheck.Check(t).
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// ignoredPrefixes match the first function line of goroutine stacks that are
// part of the runtime/testing machinery or long-lived by design, not leaks.
var ignoredPrefixes = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/trace.Start",
	// The test binary's own HTTP plumbing: idle keep-alive conns owned by
	// the default transport park goroutines between requests; closing the
	// test server reaps them, but the reap is asynchronous.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
}

// leaked returns the stacks of goroutines that are neither the caller nor
// ignorable machinery.
func leaked() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		lines := strings.Split(g, "\n")
		if len(lines) < 2 {
			continue
		}
		if strings.Contains(g, "leakcheck.leaked(") {
			continue // the checker's own goroutine (leaked runs on the caller)
		}
		ignore := false
		for _, l := range lines[1:] {
			l = strings.TrimSpace(l)
			for _, p := range ignoredPrefixes {
				if strings.HasPrefix(l, p) {
					ignore = true
					break
				}
			}
			if ignore {
				break
			}
		}
		if !ignore {
			out = append(out, g)
		}
	}
	return out
}

// Verify waits up to timeout for every non-machinery goroutine to exit and
// returns the stacks of the stragglers (nil when clean). The wait absorbs
// legitimately asynchronous teardown (connection reaping, worker joins).
func Verify(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	var last []string
	for {
		last = leaked()
		if len(last) == 0 || time.Now().After(deadline) {
			return last
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Main runs the package's tests and then fails the run (exit 1) if any
// goroutine outlives them.
func Main(m interface{ Run() int }) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	if stragglers := Verify(5 * time.Second); len(stragglers) > 0 {
		fmt.Printf("leakcheck: %d goroutine(s) leaked after tests:\n\n%s\n",
			len(stragglers), strings.Join(stragglers, "\n\n"))
		return 1
	}
	return code
}

// TB is the subset of testing.TB leakcheck needs (avoids importing testing
// into non-test binaries).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check fails t if goroutines leak past the end of the current test. Use as
// defer leakcheck.Check(t) at the top of a test that owns goroutine-spawning
// state.
func Check(t TB) {
	t.Helper()
	if stragglers := Verify(5 * time.Second); len(stragglers) > 0 {
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s", len(stragglers), strings.Join(stragglers, "\n\n"))
	}
}
