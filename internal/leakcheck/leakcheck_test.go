package leakcheck

import (
	"testing"
	"time"
)

func TestCleanByDefault(t *testing.T) {
	if got := Verify(2 * time.Second); len(got) != 0 {
		t.Fatalf("clean test reported leaks:\n%s", got)
	}
}

func TestDetectsStuckGoroutine(t *testing.T) {
	block := make(chan struct{})
	release := make(chan struct{})
	go func() {
		<-block
		close(release)
	}()
	// The blocked goroutine must show up with its stack.
	if got := Verify(100 * time.Millisecond); len(got) == 0 {
		t.Fatal("blocked goroutine not reported")
	}
	close(block)
	<-release
	if got := Verify(2 * time.Second); len(got) != 0 {
		t.Fatalf("leak report did not clear after goroutine exit:\n%s", got)
	}
}
