// Package bitvec implements arbitrary-width unsigned bit vectors backed by
// []uint64 words, little-endian (word 0 holds bits 0..63).
//
// BV is the reference value type for the simulator: the constant folder, the
// FIRRTL literal parser, and all engine peek/poke paths traffic in BV. The hot
// simulation loop operates on raw word arrays (package emit); bitvec defines
// the semantics those fast paths must match, and the test suite checks them
// against each other.
//
// All values are canonical: bits at and above Width are zero. Operations that
// produce a result width (Add, Cat, ...) follow the FIRRTL primop width rules
// used by package ir.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// BV is an unsigned bit vector of a fixed width. The zero value is a
// zero-width vector.
type BV struct {
	Width int
	W     []uint64
}

// WordsFor returns the number of 64-bit words needed to hold width bits.
func WordsFor(width int) int {
	if width <= 0 {
		return 0
	}
	return (width + 63) / 64
}

// New returns a zero-valued bit vector of the given width.
func New(width int) BV {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return BV{Width: width, W: make([]uint64, WordsFor(width))}
}

// FromUint64 returns a bit vector of the given width holding v truncated to
// width bits.
func FromUint64(width int, v uint64) BV {
	b := New(width)
	if len(b.W) > 0 {
		b.W[0] = v
	}
	b.norm()
	return b
}

// FromWords returns a bit vector of the given width using a copy of w,
// truncated or zero-extended as needed.
func FromWords(width int, w []uint64) BV {
	b := New(width)
	copy(b.W, w)
	b.norm()
	return b
}

// Clone returns a deep copy of b.
func (b BV) Clone() BV {
	c := BV{Width: b.Width, W: make([]uint64, len(b.W))}
	copy(c.W, b.W)
	return c
}

// norm zeroes any bits above Width in the top word.
func (b *BV) norm() {
	if b.Width <= 0 || len(b.W) == 0 {
		return
	}
	top := b.Width & 63
	if top != 0 {
		b.W[len(b.W)-1] &= (uint64(1) << uint(top)) - 1
	}
}

// TopMask returns the mask for the valid bits of the top word of a vector of
// the given width (all ones when width is a multiple of 64).
func TopMask(width int) uint64 {
	top := width & 63
	if top == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(top)) - 1
}

// Uint64 returns the low 64 bits of b.
func (b BV) Uint64() uint64 {
	if len(b.W) == 0 {
		return 0
	}
	return b.W[0]
}

// Bit returns bit i of b (0 if i is out of range).
func (b BV) Bit(i int) uint64 {
	if i < 0 || i >= b.Width {
		return 0
	}
	return (b.W[i/64] >> uint(i%64)) & 1
}

// SetBit sets bit i of b to v (0 or 1). It panics if i is out of range.
func (b *BV) SetBit(i int, v uint64) {
	if i < 0 || i >= b.Width {
		panic(fmt.Sprintf("bitvec: SetBit(%d) out of range for width %d", i, b.Width))
	}
	if v&1 != 0 {
		b.W[i/64] |= uint64(1) << uint(i%64)
	} else {
		b.W[i/64] &^= uint64(1) << uint(i%64)
	}
}

// IsZero reports whether every bit of b is zero.
func (b BV) IsZero() bool {
	for _, w := range b.W {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same width and value.
func (b BV) Equal(o BV) bool {
	if b.Width != o.Width {
		return false
	}
	for i := range b.W {
		if b.W[i] != o.W[i] {
			return false
		}
	}
	return true
}

// EqValue reports whether a and b hold the same numeric value, ignoring width.
func (b BV) EqValue(o BV) bool {
	n := len(b.W)
	if len(o.W) > n {
		n = len(o.W)
	}
	for i := 0; i < n; i++ {
		var x, y uint64
		if i < len(b.W) {
			x = b.W[i]
		}
		if i < len(o.W) {
			y = o.W[i]
		}
		if x != y {
			return false
		}
	}
	return true
}

// IsOnes reports whether b is all ones across its width.
func (b BV) IsOnes() bool {
	if b.Width == 0 {
		return false
	}
	for i, w := range b.W {
		want := ^uint64(0)
		if i == len(b.W)-1 {
			want = TopMask(b.Width)
		}
		if w != want {
			return false
		}
	}
	return true
}

// String renders b as width'hHEX, e.g. 8'h1f.
func (b BV) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'h", b.Width)
	started := false
	for i := len(b.W) - 1; i >= 0; i-- {
		if !started {
			if b.W[i] == 0 && i > 0 {
				continue
			}
			fmt.Fprintf(&sb, "%x", b.W[i])
			started = true
		} else {
			fmt.Fprintf(&sb, "%016x", b.W[i])
		}
	}
	if !started {
		sb.WriteByte('0')
	}
	return sb.String()
}

// Parse parses a FIRRTL-style literal body: "h1f", "o17", "b101", or "42".
// The value is truncated to width bits.
func Parse(width int, s string) (BV, error) {
	base := 10
	digits := s
	if len(s) > 0 {
		switch s[0] {
		case 'h', 'H':
			base, digits = 16, s[1:]
		case 'o', 'O':
			base, digits = 8, s[1:]
		case 'b', 'B':
			base, digits = 2, s[1:]
		}
	}
	b := New(width)
	if digits == "" {
		return b, fmt.Errorf("bitvec: empty literal %q", s)
	}
	for _, c := range digits {
		if c == '_' {
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return b, fmt.Errorf("bitvec: bad digit %q in literal %q", c, s)
		}
		if d >= uint64(base) {
			return b, fmt.Errorf("bitvec: digit %q out of range for base %d in %q", c, base, s)
		}
		b = b.mulSmallAdd(uint64(base), d)
	}
	b.norm()
	return b, nil
}

// mulSmallAdd returns b*m + a, keeping b's width (truncating).
func (b BV) mulSmallAdd(m, a uint64) BV {
	r := New(b.Width)
	carry := a
	for i, w := range b.W {
		hi, lo := bits.Mul64(w, m)
		lo, c := bits.Add64(lo, carry, 0)
		r.W[i] = lo
		carry = hi + c
	}
	r.norm()
	return r
}

// --- Arithmetic ---

// Add returns a+b at the given result width (FIRRTL: max(wa,wb)+1).
func Add(a, b BV, width int) BV {
	r := New(width)
	var carry uint64
	for i := range r.W {
		x, y := word(a, i), word(b, i)
		s, c1 := bits.Add64(x, y, 0)
		s, c2 := bits.Add64(s, carry, 0)
		r.W[i] = s
		carry = c1 + c2
	}
	r.norm()
	return r
}

// Sub returns a-b (two's complement) at the given result width.
func Sub(a, b BV, width int) BV {
	r := New(width)
	var borrow uint64
	for i := range r.W {
		x, y := word(a, i), word(b, i)
		d, b1 := bits.Sub64(x, y, borrow)
		r.W[i] = d
		borrow = b1
	}
	r.norm()
	return r
}

// Mul returns a*b at the given result width (FIRRTL: wa+wb).
func Mul(a, b BV, width int) BV {
	r := New(width)
	for i, x := range a.W {
		if x == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < len(r.W); j++ {
			y := word(b, j)
			hi, lo := bits.Mul64(x, y)
			lo, c1 := bits.Add64(lo, r.W[i+j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			r.W[i+j] = lo
			carry = hi + c1 + c2
		}
	}
	r.norm()
	return r
}

// Div returns a/b at the given result width; division by zero yields zero
// (the simulator's defined semantics for FIRRTL's unspecified case).
// Both operands must fit in 64 bits.
func Div(a, b BV, width int) BV {
	x, y := a.Uint64(), b.Uint64()
	if len(a.W) > 1 || len(b.W) > 1 {
		panic("bitvec: Div on width > 64 not supported")
	}
	if y == 0 {
		return New(width)
	}
	return FromUint64(width, x/y)
}

// Rem returns a%b at the given result width; modulo by zero yields zero.
// Both operands must fit in 64 bits.
func Rem(a, b BV, width int) BV {
	x, y := a.Uint64(), b.Uint64()
	if len(a.W) > 1 || len(b.W) > 1 {
		panic("bitvec: Rem on width > 64 not supported")
	}
	if y == 0 {
		return New(width)
	}
	return FromUint64(width, x%y)
}

// Neg returns the two's complement negation of a at the given width.
func Neg(a BV, width int) BV {
	return Sub(New(width), a, width)
}

// --- Bitwise ---

// And returns a&b at the given width.
func And(a, b BV, width int) BV {
	return bitwise(a, b, width, func(x, y uint64) uint64 { return x & y })
}

// Or returns a|b at the given width.
func Or(a, b BV, width int) BV {
	return bitwise(a, b, width, func(x, y uint64) uint64 { return x | y })
}

// Xor returns a^b at the given width.
func Xor(a, b BV, width int) BV {
	return bitwise(a, b, width, func(x, y uint64) uint64 { return x ^ y })
}

// Not returns ^a at the given width.
func Not(a BV, width int) BV {
	r := New(width)
	for i := range r.W {
		r.W[i] = ^word(a, i)
	}
	r.norm()
	return r
}

func bitwise(a, b BV, width int, f func(x, y uint64) uint64) BV {
	r := New(width)
	for i := range r.W {
		r.W[i] = f(word(a, i), word(b, i))
	}
	r.norm()
	return r
}

// AndR returns the 1-bit AND reduction of a.
func AndR(a BV) BV {
	if a.IsOnes() {
		return FromUint64(1, 1)
	}
	return New(1)
}

// OrR returns the 1-bit OR reduction of a.
func OrR(a BV) BV {
	if a.IsZero() {
		return New(1)
	}
	return FromUint64(1, 1)
}

// XorR returns the 1-bit XOR (parity) reduction of a.
func XorR(a BV) BV {
	var p uint64
	for _, w := range a.W {
		p ^= uint64(bits.OnesCount64(w)) & 1
	}
	return FromUint64(1, p&1)
}

// --- Comparison (all return width-1 results) ---

// CmpU compares a and b as unsigned integers: -1, 0, or +1.
func CmpU(a, b BV) int {
	n := len(a.W)
	if len(b.W) > n {
		n = len(b.W)
	}
	for i := n - 1; i >= 0; i-- {
		x, y := word(a, i), word(b, i)
		if x < y {
			return -1
		}
		if x > y {
			return 1
		}
	}
	return 0
}

// CmpS compares a and b as two's complement signed integers of their widths.
func CmpS(a, b BV) int {
	sa, sb := a.SignBit(), b.SignBit()
	if sa != sb {
		if sa == 1 {
			return -1
		}
		return 1
	}
	// Same sign: compare the sign-extended magnitudes. For same-width values
	// plain unsigned compare works; for differing widths, sign-extend to the
	// wider width first.
	w := a.Width
	if b.Width > w {
		w = b.Width
	}
	return CmpU(SExt(a, w), SExt(b, w))
}

// SignBit returns the most significant bit of a (0 for zero-width).
func (b BV) SignBit() uint64 {
	if b.Width == 0 {
		return 0
	}
	return b.Bit(b.Width - 1)
}

func boolBV(v bool) BV {
	if v {
		return FromUint64(1, 1)
	}
	return New(1)
}

// Eq returns a==b as a 1-bit vector.
func Eq(a, b BV) BV { return boolBV(CmpU(a, b) == 0) }

// Neq returns a!=b as a 1-bit vector.
func Neq(a, b BV) BV { return boolBV(CmpU(a, b) != 0) }

// Lt returns a<b (unsigned) as a 1-bit vector.
func Lt(a, b BV) BV { return boolBV(CmpU(a, b) < 0) }

// Leq returns a<=b (unsigned) as a 1-bit vector.
func Leq(a, b BV) BV { return boolBV(CmpU(a, b) <= 0) }

// Gt returns a>b (unsigned) as a 1-bit vector.
func Gt(a, b BV) BV { return boolBV(CmpU(a, b) > 0) }

// Geq returns a>=b (unsigned) as a 1-bit vector.
func Geq(a, b BV) BV { return boolBV(CmpU(a, b) >= 0) }

// SLt returns a<b (signed) as a 1-bit vector.
func SLt(a, b BV) BV { return boolBV(CmpS(a, b) < 0) }

// SLeq returns a<=b (signed) as a 1-bit vector.
func SLeq(a, b BV) BV { return boolBV(CmpS(a, b) <= 0) }

// SGt returns a>b (signed) as a 1-bit vector.
func SGt(a, b BV) BV { return boolBV(CmpS(a, b) > 0) }

// SGeq returns a>=b (signed) as a 1-bit vector.
func SGeq(a, b BV) BV { return boolBV(CmpS(a, b) >= 0) }

// --- Shifts, slicing, concatenation ---

// Shl returns a<<n at the given result width (FIRRTL: wa+n).
func Shl(a BV, n, width int) BV {
	r := New(width)
	wordShift, bitShift := n/64, uint(n%64)
	for i := len(r.W) - 1; i >= 0; i-- {
		src := i - wordShift
		var v uint64
		if src >= 0 {
			v = word(a, src) << bitShift
			if bitShift > 0 && src > 0 {
				v |= word(a, src-1) >> (64 - bitShift)
			}
		}
		r.W[i] = v
	}
	r.norm()
	return r
}

// Shr returns a>>n at the given result width (FIRRTL: max(wa-n, 1)).
func Shr(a BV, n, width int) BV {
	r := New(width)
	wordShift, bitShift := n/64, uint(n%64)
	for i := range r.W {
		src := i + wordShift
		var v uint64
		if src < len(a.W) {
			v = a.W[src] >> bitShift
			if bitShift > 0 && src+1 < len(a.W) {
				v |= a.W[src+1] << (64 - bitShift)
			}
		}
		r.W[i] = v
	}
	r.norm()
	return r
}

// Dshl returns a << b for a dynamic shift amount, at the given result width.
func Dshl(a, b BV, width int) BV {
	n := b.Uint64()
	if len(b.W) > 1 {
		for _, w := range b.W[1:] {
			if w != 0 {
				return New(width)
			}
		}
	}
	if n >= uint64(width) {
		return New(width)
	}
	return Shl(a, int(n), width)
}

// Dshr returns a >> b for a dynamic shift amount, at the given result width.
func Dshr(a, b BV, width int) BV {
	n := b.Uint64()
	if len(b.W) > 1 {
		for _, w := range b.W[1:] {
			if w != 0 {
				return New(width)
			}
		}
	}
	if n >= uint64(a.Width) {
		return New(width)
	}
	return Shr(a, int(n), width)
}

// Cat returns {a, b}: a in the high bits, b in the low bits (FIRRTL cat).
func Cat(a, b BV) BV {
	r := Shl(a, b.Width, a.Width+b.Width)
	for i := range b.W {
		r.W[i] |= b.W[i]
	}
	r.norm()
	return r
}

// Bits returns a[hi:lo] inclusive as a vector of width hi-lo+1.
func Bits(a BV, hi, lo int) BV {
	if hi < lo || lo < 0 {
		panic(fmt.Sprintf("bitvec: Bits(%d,%d) invalid", hi, lo))
	}
	return Shr(a, lo, hi-lo+1)
}

// Pad zero-extends (or keeps) a at the given width. Width must be >= a.Width
// for true padding, but truncation is also supported for convenience.
func Pad(a BV, width int) BV {
	r := New(width)
	copy(r.W, a.W)
	r.norm()
	return r
}

// SExt sign-extends a (interpreted as two's complement of a.Width bits) to
// the given width.
func SExt(a BV, width int) BV {
	r := Pad(a, width)
	if a.SignBit() == 1 && width > a.Width {
		for i := a.Width; i < width; i++ {
			r.SetBit(i, 1)
		}
	}
	return r
}

// Mux returns a when sel is nonzero, else b, at the given result width.
func Mux(sel, a, b BV, width int) BV {
	if !sel.IsZero() {
		return Pad(a, width)
	}
	return Pad(b, width)
}

// word returns word i of b, or 0 if out of range.
func word(b BV, i int) uint64 {
	if i < len(b.W) {
		return b.W[i]
	}
	return 0
}
