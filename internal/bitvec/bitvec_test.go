package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a BV to a big.Int for cross-checking.
func toBig(b BV) *big.Int {
	v := new(big.Int)
	for i := len(b.W) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(b.W[i]))
	}
	return v
}

// fromBig truncates a big.Int to width bits.
func maskBig(v *big.Int, width int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(width))
	m.Sub(m, big.NewInt(1))
	return new(big.Int).And(v, m)
}

// randBV produces a random value of a random width in [1, 200].
func randBV(rng *rand.Rand) BV {
	w := 1 + rng.Intn(200)
	b := New(w)
	for i := range b.W {
		b.W[i] = rng.Uint64()
	}
	b.norm()
	return b
}

// checkBinary cross-checks a bitvec op against big.Int semantics on random
// operands.
func checkBinary(t *testing.T, name string, op func(a, b BV, w int) BV,
	ref func(x, y *big.Int) *big.Int, width func(wa, wb int) int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
	for i := 0; i < 500; i++ {
		a, b := randBV(rng), randBV(rng)
		w := width(a.Width, b.Width)
		got := op(a, b, w)
		want := maskBig(ref(toBig(a), toBig(b)), w)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("%s(%s, %s) width %d = %s, want %s", name, a, b, w, toBig(got), want)
		}
		if got.Width != w {
			t.Fatalf("%s result width %d, want %d", name, got.Width, w)
		}
		// Canonical form: no bits above width.
		top := got
		top.norm()
		if !top.Equal(got) {
			t.Fatalf("%s result not canonical: %s", name, got)
		}
	}
}

func TestAddSubMulAgainstBig(t *testing.T) {
	maxP1 := func(wa, wb int) int { return max(wa, wb) + 1 }
	checkBinary(t, "add", Add, func(x, y *big.Int) *big.Int { return new(big.Int).Add(x, y) }, maxP1)
	checkBinary(t, "sub", Sub, func(x, y *big.Int) *big.Int { return new(big.Int).Sub(x, y) }, maxP1)
	checkBinary(t, "mul", Mul, func(x, y *big.Int) *big.Int { return new(big.Int).Mul(x, y) },
		func(wa, wb int) int { return wa + wb })
}

func TestBitwiseAgainstBig(t *testing.T) {
	maxW := func(wa, wb int) int { return max(wa, wb) }
	checkBinary(t, "and", And, func(x, y *big.Int) *big.Int { return new(big.Int).And(x, y) }, maxW)
	checkBinary(t, "or", Or, func(x, y *big.Int) *big.Int { return new(big.Int).Or(x, y) }, maxW)
	checkBinary(t, "xor", Xor, func(x, y *big.Int) *big.Int { return new(big.Int).Xor(x, y) }, maxW)
}

func TestNotInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randBV(rng)
		if got := Not(Not(a, a.Width), a.Width); !got.Equal(a) {
			t.Fatalf("not(not(%s)) = %s", a, got)
		}
	}
}

func TestDivRem64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		w := 1 + rng.Intn(64)
		a := FromUint64(w, rng.Uint64())
		b := FromUint64(w, rng.Uint64()>>uint(rng.Intn(64)))
		q, r := Div(a, b, w), Rem(a, b, w)
		if b.IsZero() {
			if !q.IsZero() || !r.IsZero() {
				t.Fatalf("div/rem by zero should be zero, got %s, %s", q, r)
			}
			continue
		}
		if q.Uint64() != a.Uint64()/b.Uint64() || r.Uint64() != a.Uint64()%b.Uint64() {
			t.Fatalf("div/rem(%s, %s) = %s, %s", a, b, q, r)
		}
	}
}

func TestShiftsAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := randBV(rng)
		n := rng.Intn(140)
		wShl := a.Width + n
		if got, want := toBig(Shl(a, n, wShl)), maskBig(new(big.Int).Lsh(toBig(a), uint(n)), wShl); got.Cmp(want) != 0 {
			t.Fatalf("shl(%s, %d) = %s, want %s", a, n, got, want)
		}
		wShr := a.Width - n
		if wShr < 1 {
			wShr = 1
		}
		if got, want := toBig(Shr(a, n, wShr)), maskBig(new(big.Int).Rsh(toBig(a), uint(n)), wShr); got.Cmp(want) != 0 {
			t.Fatalf("shr(%s, %d) = %s, want %s", a, n, got, want)
		}
	}
}

func TestCatBits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		a, b := randBV(rng), randBV(rng)
		c := Cat(a, b)
		if c.Width != a.Width+b.Width {
			t.Fatalf("cat width %d", c.Width)
		}
		if got := Bits(c, b.Width-1, 0); !got.Equal(b) {
			t.Fatalf("low part of cat mismatch: %s vs %s", got, b)
		}
		if got := Bits(c, c.Width-1, b.Width); !got.Equal(a) {
			t.Fatalf("high part of cat mismatch: %s vs %s", got, a)
		}
		// Random slice against big.Int.
		hi := rng.Intn(c.Width)
		lo := rng.Intn(hi + 1)
		want := maskBig(new(big.Int).Rsh(toBig(c), uint(lo)), hi-lo+1)
		if got := toBig(Bits(c, hi, lo)); got.Cmp(want) != 0 {
			t.Fatalf("bits(%s, %d, %d) = %s, want %s", c, hi, lo, got, want)
		}
	}
}

func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		a, b := randBV(rng), randBV(rng)
		cmp := toBig(a).Cmp(toBig(b))
		if got := CmpU(a, b); got != cmp {
			t.Fatalf("CmpU(%s, %s) = %d, want %d", a, b, got, cmp)
		}
		checks := []struct {
			name string
			got  BV
			want bool
		}{
			{"lt", Lt(a, b), cmp < 0},
			{"leq", Leq(a, b), cmp <= 0},
			{"gt", Gt(a, b), cmp > 0},
			{"geq", Geq(a, b), cmp >= 0},
			{"eq", Eq(a, b), cmp == 0},
			{"neq", Neq(a, b), cmp != 0},
		}
		for _, c := range checks {
			if (c.got.Uint64() == 1) != c.want {
				t.Fatalf("%s(%s, %s) = %s, want %v", c.name, a, b, c.got, c.want)
			}
		}
	}
}

// signedBig interprets b as two's complement.
func signedBig(b BV) *big.Int {
	v := toBig(b)
	if b.SignBit() == 1 {
		v.Sub(v, new(big.Int).Lsh(big.NewInt(1), uint(b.Width)))
	}
	return v
}

func TestSignedComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		a, b := randBV(rng), randBV(rng)
		cmp := signedBig(a).Cmp(signedBig(b))
		if got := CmpS(a, b); got != cmp {
			t.Fatalf("CmpS(%s, %s) = %d, want %d", a, b, got, cmp)
		}
		if (SLt(a, b).Uint64() == 1) != (cmp < 0) {
			t.Fatalf("SLt(%s, %s) wrong", a, b)
		}
	}
}

func TestSExt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a := randBV(rng)
		w := a.Width + rng.Intn(100)
		got := SExt(a, w)
		want := maskBig(signedBig(a), w)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("sext(%s, %d) = %s, want %s", a, w, toBig(got), want)
		}
	}
}

func TestNegTwosComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 300; i++ {
		a := randBV(rng)
		w := a.Width + 1
		got := Neg(a, w)
		want := maskBig(new(big.Int).Neg(toBig(a)), w)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("neg(%s) = %s, want %s", a, toBig(got), want)
		}
	}
}

func TestReductions(t *testing.T) {
	if AndR(FromUint64(3, 7)).Uint64() != 1 {
		t.Error("andr(3'b111) != 1")
	}
	if AndR(FromUint64(3, 6)).Uint64() != 0 {
		t.Error("andr(3'b110) != 0")
	}
	if OrR(New(70)).Uint64() != 0 {
		t.Error("orr(0) != 0")
	}
	w := New(70)
	w.SetBit(69, 1)
	if OrR(w).Uint64() != 1 {
		t.Error("orr(1<<69) != 1")
	}
	if XorR(FromUint64(8, 0xf0)).Uint64() != 0 {
		t.Error("xorr(0xf0) != 0")
	}
	if XorR(FromUint64(8, 0xe0)).Uint64() != 1 {
		t.Error("xorr(0xe0) != 1")
	}
}

func TestDshlDshr(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		a := randBV(rng)
		n := uint64(rng.Intn(a.Width + 80))
		sh := FromUint64(32, n)
		w := a.Width + 16
		wantL := maskBig(new(big.Int).Lsh(toBig(a), uint(n)), w)
		if n >= uint64(w) {
			wantL = big.NewInt(0)
		}
		if got := toBig(Dshl(a, sh, w)); got.Cmp(wantL) != 0 {
			t.Fatalf("dshl(%s, %d) = %s, want %s", a, n, got, wantL)
		}
		wantR := new(big.Int).Rsh(toBig(a), uint(n))
		if got := toBig(Dshr(a, sh, a.Width)); got.Cmp(wantR) != 0 {
			t.Fatalf("dshr(%s, %d) = %s, want %s", a, n, got, wantR)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		s    string
		w    int
		want uint64
	}{
		{"h1f", 8, 0x1f},
		{"hFF", 8, 0xff},
		{"b101", 4, 5},
		{"o17", 6, 15},
		{"42", 8, 42},
		{"h1_f", 8, 0x1f},
		{"300", 8, 300 & 0xff}, // truncation
	}
	for _, c := range cases {
		got, err := Parse(c.w, c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if got.Uint64() != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.s, got.Uint64(), c.want)
		}
	}
	for _, bad := range []string{"", "hxyz", "b2", "o9", "12a"} {
		if _, err := Parse(8, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseWide(t *testing.T) {
	got, err := Parse(128, "hffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsOnes() {
		t.Fatalf("128-bit all-ones parse failed: %s", got)
	}
}

// TestMulCommutes is a quick-check property: multiplication commutes.
func TestMulCommutes(t *testing.T) {
	f := func(x, y uint64, wa, wb uint8) bool {
		a := FromUint64(1+int(wa%100), x)
		b := FromUint64(1+int(wb%100), y)
		w := a.Width + b.Width
		return Mul(a, b, w).Equal(Mul(b, a, w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAddAssociates is a quick-check property at fixed width.
func TestAddAssociates(t *testing.T) {
	f := func(x, y, z uint64) bool {
		const w = 80
		a, b, c := FromUint64(w, x), FromUint64(w, y), FromUint64(w, z)
		ab := Add(Add(a, b, w), c, w)
		bc := Add(a, Add(b, c, w), w)
		return ab.Equal(bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCatAssociates: cat(cat(a,b),c) == cat(a,cat(b,c)).
func TestCatAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		a, b, c := randBV(rng), randBV(rng), randBV(rng)
		l := Cat(Cat(a, b), c)
		r := Cat(a, Cat(b, c))
		if !l.Equal(r) {
			t.Fatalf("cat not associative for %s, %s, %s", a, b, c)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	b := FromUint64(12, 0xabc)
	if b.String() != "12'habc" {
		t.Fatalf("String() = %q", b.String())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
