package partition

import (
	"testing"

	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/passes"
)

func testGraph(t *testing.T, seed int64) *ir.Graph {
	t.Helper()
	g := gen.Random(seed, gen.DefaultRandomConfig())
	passes.Normalize(g)
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	return g
}

// checkInvariants verifies the properties every partitioner must provide:
// full coverage of evaluable nodes, disjointness, the size cap, and — the
// correctness-critical one — that the supernode sequence is a topological
// order of the value-dependence condensation.
func checkInvariants(t *testing.T, g *ir.Graph, r *Result, maxSize int, capped bool) {
	t.Helper()
	seen := map[int32]int{}
	for si, members := range r.Members {
		if len(members) == 0 {
			t.Fatalf("supernode %d empty", si)
		}
		if capped && len(members) > maxSize {
			t.Fatalf("supernode %d has %d members, cap %d", si, len(members), maxSize)
		}
		for _, id := range members {
			if _, dup := seen[id]; dup {
				t.Fatalf("node %d in two supernodes", id)
			}
			seen[id] = si
			if r.SupOf[id] != int32(si) {
				t.Fatalf("SupOf inconsistent for node %d", id)
			}
		}
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		if n.HasCode() {
			if _, ok := seen[int32(n.ID)]; !ok {
				t.Fatalf("evaluable node %d (%s) not covered", n.ID, n.Name)
			}
		} else if r.SupOf[n.ID] != -1 {
			t.Fatalf("input %d assigned to a supernode", n.ID)
		}
	}
	// Dependence edges must never point to an earlier supernode, and member
	// lists must be ascending (intra-supernode dependence order).
	for _, n := range g.Nodes {
		if n == nil || !n.HasCode() {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op != ir.OpRef {
					return
				}
				u := e.Node
				if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
					return
				}
				if r.SupOf[u.ID] > r.SupOf[n.ID] {
					t.Fatalf("dep edge %s -> %s goes backward across supernodes (%d > %d)",
						u.Name, n.Name, r.SupOf[u.ID], r.SupOf[n.ID])
				}
			})
		})
	}
	for si, members := range r.Members {
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Fatalf("supernode %d members not ascending", si)
			}
		}
	}
}

func TestAllKindsInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testGraph(t, seed)
		for _, kind := range []Kind{None, Kernighan, MFFC, Enhanced} {
			for _, size := range []int{1, 4, 32, 200} {
				r := Build(g, kind, size)
				checkInvariants(t, g, r, size, true)
			}
		}
	}
}

func TestNoneIsSingletons(t *testing.T) {
	g := testGraph(t, 1)
	r := Build(g, None, 32)
	evaluable := 0
	for _, n := range g.Nodes {
		if n != nil && n.HasCode() {
			evaluable++
		}
	}
	if r.Count() != evaluable {
		t.Fatalf("None produced %d supernodes, want %d", r.Count(), evaluable)
	}
}

func TestEnhancedGroupsMoreThanNone(t *testing.T) {
	g := testGraph(t, 2)
	none := Build(g, None, 32)
	enh := Build(g, Enhanced, 32)
	if enh.Count() >= none.Count() {
		t.Fatalf("Enhanced did not group anything: %d vs %d", enh.Count(), none.Count())
	}
	// Grouping should reduce crossing activation edges.
	if enh.CutEdges >= none.CutEdges {
		t.Fatalf("Enhanced did not reduce cut: %d vs %d", enh.CutEdges, none.CutEdges)
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t, 3)
	for _, kind := range []Kind{Kernighan, MFFC, Enhanced} {
		a := Build(g, kind, 16)
		b := Build(g, kind, 16)
		if a.Count() != b.Count() {
			t.Fatalf("%v nondeterministic supernode count", kind)
		}
		for i := range a.SupOf {
			if a.SupOf[i] != b.SupOf[i] {
				t.Fatalf("%v nondeterministic assignment at node %d", kind, i)
			}
		}
	}
}

func TestSizeCapShrinksSupernodes(t *testing.T) {
	g := testGraph(t, 4)
	small := Build(g, Enhanced, 2)
	large := Build(g, Enhanced, 64)
	if small.Count() <= large.Count() {
		t.Fatalf("smaller cap should give more supernodes: %d vs %d", small.Count(), large.Count())
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{None, Kernighan, MFFC, Enhanced} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

// TestMFFCFanoutFree verifies the cone property: inside an MFFC group, every
// non-root member's dep successors stay within the group.
func TestMFFCFanoutFree(t *testing.T) {
	g := testGraph(t, 5)
	r := Build(g, MFFC, 1<<30) // uncapped: pure cones
	adj := g.BuildAdjacency()
	for _, members := range r.Members {
		inGroup := map[int32]bool{}
		for _, id := range members {
			inGroup[id] = true
		}
		// The cone root is the single member whose dependence fanout may
		// leave the group; every other member's dep successors stay inside.
		leaving := 0
		for _, id := range members {
			n := g.Nodes[id]
			if n.Kind == ir.KindReg || n.Kind == ir.KindMemWrite {
				continue // register/write out-edges are not dep edges
			}
			allInside := true
			for _, s := range adj.Succs[id] {
				if !inGroup[s] {
					allInside = false
					break
				}
			}
			if !allInside {
				leaving++
			}
		}
		if leaving > 1 {
			t.Fatalf("MFFC group with %d members has %d fanout nodes, want <= 1", len(members), leaving)
		}
	}
}

// checkShardInvariants verifies the thread-shard view's contract: every
// supernode appears in exactly one (level, shard) chunk consistent with
// LevelOf/ShardOf, and every dependence edge between distinct supernodes
// crosses to a strictly later level — the property the parallel engine's
// level barriers rely on.
func checkShardInvariants(t *testing.T, g *ir.Graph, r *Result, v *ShardView) {
	t.Helper()
	seen := make(map[int32]bool)
	for lv, shards := range v.Chunks {
		if len(shards) != v.Threads {
			t.Fatalf("level %d has %d shards, want %d", lv, len(shards), v.Threads)
		}
		for w, chunk := range shards {
			for i, s := range chunk {
				if seen[s] {
					t.Fatalf("supernode %d in two chunks", s)
				}
				seen[s] = true
				if v.LevelOf[s] != int32(lv) || v.ShardOf[s] != int32(w) {
					t.Fatalf("supernode %d chunk (%d,%d) disagrees with LevelOf=%d ShardOf=%d",
						s, lv, w, v.LevelOf[s], v.ShardOf[s])
				}
				if i > 0 && chunk[i-1] >= s {
					t.Fatalf("chunk (%d,%d) not ascending", lv, w)
				}
			}
		}
	}
	if len(seen) != r.Count() {
		t.Fatalf("shard view covers %d supernodes, want %d", len(seen), r.Count())
	}
	// Chunk metadata: one weight row per level, one entry per shard; an
	// empty chunk weighs zero and a populated chunk weighs at least its
	// supernode count under the default (per-node) weighting, at least zero
	// under any custom weighting.
	if len(v.ChunkWeight) != v.Levels {
		t.Fatalf("ChunkWeight has %d levels, want %d", len(v.ChunkWeight), v.Levels)
	}
	for lv, ws := range v.ChunkWeight {
		if len(ws) != v.Threads {
			t.Fatalf("ChunkWeight level %d has %d entries, want %d", lv, len(ws), v.Threads)
		}
		for w, weight := range ws {
			if len(v.Chunks[lv][w]) == 0 && weight != 0 {
				t.Fatalf("empty chunk (%d,%d) has weight %d", lv, w, weight)
			}
			if weight < 0 {
				t.Fatalf("chunk (%d,%d) has negative weight %d", lv, w, weight)
			}
		}
	}
	if im := v.Imbalance(); im < 1.0 {
		t.Fatalf("Imbalance() = %v, must be >= 1", im)
	}
	for _, n := range g.Nodes {
		if n == nil || !n.HasCode() {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op != ir.OpRef {
					return
				}
				u := e.Node
				if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
					return
				}
				us, ns := r.SupOf[u.ID], r.SupOf[n.ID]
				if us < 0 || us == ns {
					return
				}
				if v.LevelOf[us] >= v.LevelOf[ns] {
					t.Fatalf("dep edge %s -> %s does not advance levels (%d >= %d)",
						u.Name, n.Name, v.LevelOf[us], v.LevelOf[ns])
				}
			})
		})
	}
}

func TestShardInvariants(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := testGraph(t, seed)
		for _, kind := range []Kind{None, MFFC, Enhanced} {
			r := Build(g, kind, 8)
			for _, threads := range []int{1, 2, 4, 7} {
				checkShardInvariants(t, g, r, r.Shard(g, threads, nil))
			}
		}
	}
}

// TestShardBalance: with many equal-weight supernodes per level, the LPT
// assignment must not put everything on one shard.
func TestShardBalance(t *testing.T) {
	g := testGraph(t, 1)
	r := Build(g, None, 1) // singletons: plenty of parallel slack
	v := r.Shard(g, 4, nil)
	perShard := make([]int, v.Threads)
	for _, s := range v.ShardOf {
		perShard[s]++
	}
	for w, n := range perShard {
		if n == 0 {
			t.Fatalf("shard %d received no supernodes: %v", w, perShard)
		}
	}
	// Weighted sharding must honor the weight function, not just counts:
	// make one supernode in a multi-supernode level outweigh all its level
	// peers combined — LPT must then give it a shard of its own in that
	// level, with every peer packed onto the other shard.
	heavy := int32(-1)
	for _, sups := range levelSups(v) {
		if len(sups) > 2 {
			heavy = sups[0]
			break
		}
	}
	if heavy < 0 {
		t.Fatal("no level with > 2 supernodes in test graph")
	}
	heavyNodes := map[int32]bool{}
	for _, id := range r.Members[heavy] {
		heavyNodes[id] = true
	}
	wv := r.Shard(g, 2, func(id int32) int64 {
		if heavyNodes[id] {
			return 1 << 20
		}
		return 1
	})
	hl, hs := wv.LevelOf[heavy], wv.ShardOf[heavy]
	if got := len(wv.Chunks[hl][hs]); got != 1 {
		t.Fatalf("heavy supernode should sit alone in its shard at level %d, chunk has %d", hl, got)
	}
}

// levelSups flattens a ShardView back to per-level supernode lists.
func levelSups(v *ShardView) [][]int32 {
	out := make([][]int32, v.Levels)
	for lv, shards := range v.Chunks {
		for _, c := range shards {
			out[lv] = append(out[lv], c...)
		}
	}
	return out
}

func TestShardDeterminism(t *testing.T) {
	g := testGraph(t, 2)
	r := Build(g, Enhanced, 8)
	a := r.Shard(g, 4, nil)
	b := r.Shard(g, 4, nil)
	for s := range a.ShardOf {
		if a.ShardOf[s] != b.ShardOf[s] || a.LevelOf[s] != b.LevelOf[s] {
			t.Fatalf("nondeterministic shard assignment at supernode %d", s)
		}
	}
}
