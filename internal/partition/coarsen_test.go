package partition

import (
	"fmt"
	"testing"

	"gsim/internal/ir"
	"gsim/internal/passes"
)

// deepChainGraph builds a deliberately deep, narrow design: a few lanes of
// long combinational chains feeding registers. Its dependence levelization is
// ~depth levels of tiny weight — the shape where one barrier per level
// dominates and coarsening must collapse the schedule.
func deepChainGraph(t *testing.T, depth, lanes int) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder("deepchain")
	in := b.Input("in", 16)
	for l := 0; l < lanes; l++ {
		r := b.Reg(fmt.Sprintf("state%d", l), 16)
		cur := b.Xor(b.R(r), b.R(in))
		for d := 0; d < depth; d++ {
			cur = b.R(b.Comb(fmt.Sprintf("lane%d_d%d", l, d), b.Add(b.Not(cur), b.R(in))))
		}
		b.SetNext(r, cur)
		b.MarkOutput(b.Comb(fmt.Sprintf("out%d", l), cur))
	}
	g := b.G
	passes.Normalize(g)
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	return g
}

// checkCoarsenInvariants verifies the coarsened schedule's contract: full
// coverage, chunk/table consistency, and — the correctness-critical one —
// that a merged level never reorders a cross-level dependency: every
// dependence edge either still advances to a strictly later scheduled level
// (sequenced by the barrier) or lands inside one shard's chunk with the
// source strictly before the target in chunk order (sequenced by the ordered
// chain).
func checkCoarsenInvariants(t *testing.T, g *ir.Graph, r *Result, v *ShardView) {
	t.Helper()
	if v.Levels > v.OrigLevels {
		t.Fatalf("coarsening grew the schedule: %d levels from %d", v.Levels, v.OrigLevels)
	}
	seen := make(map[int32]bool)
	pos := make(map[int32]int) // supernode -> index within its chunk
	for lv, shards := range v.Chunks {
		if len(shards) != v.Threads {
			t.Fatalf("level %d has %d shards, want %d", lv, len(shards), v.Threads)
		}
		for w, chunk := range shards {
			for i, s := range chunk {
				if seen[s] {
					t.Fatalf("supernode %d in two chunks", s)
				}
				seen[s] = true
				pos[s] = i
				if v.LevelOf[s] != int32(lv) || v.ShardOf[s] != int32(w) {
					t.Fatalf("supernode %d chunk (%d,%d) disagrees with LevelOf=%d ShardOf=%d",
						s, lv, w, v.LevelOf[s], v.ShardOf[s])
				}
				if i > 0 && chunk[i-1] >= s {
					t.Fatalf("chunk (%d,%d) not ascending", lv, w)
				}
			}
		}
	}
	if len(seen) != r.Count() {
		t.Fatalf("coarsened view covers %d supernodes, want %d", len(seen), r.Count())
	}
	for _, n := range g.Nodes {
		if n == nil || !n.HasCode() {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op != ir.OpRef {
					return
				}
				u := e.Node
				if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
					return
				}
				us, ns := r.SupOf[u.ID], r.SupOf[n.ID]
				if us < 0 || us == ns {
					return
				}
				switch {
				case v.LevelOf[us] < v.LevelOf[ns]:
					// Cross-level: the barrier sequences it.
				case v.LevelOf[us] > v.LevelOf[ns]:
					t.Fatalf("dep edge %s -> %s goes backward across levels (%d > %d)",
						u.Name, n.Name, v.LevelOf[us], v.LevelOf[ns])
				default:
					// Merged into one level: must be one shard's ordered chain.
					if v.ShardOf[us] != v.ShardOf[ns] {
						t.Fatalf("dep edge %s -> %s split across shards %d/%d inside merged level %d",
							u.Name, n.Name, v.ShardOf[us], v.ShardOf[ns], v.LevelOf[us])
					}
					if pos[us] >= pos[ns] {
						t.Fatalf("dep edge %s -> %s reordered inside merged level %d (chunk pos %d >= %d)",
							u.Name, n.Name, v.LevelOf[us], pos[us], pos[ns])
					}
				}
			})
		})
	}
}

func TestCoarsenInvariants(t *testing.T) {
	graphs := []*ir.Graph{deepChainGraph(t, 40, 3)}
	for seed := int64(0); seed < 3; seed++ {
		graphs = append(graphs, testGraph(t, seed))
	}
	for gi, g := range graphs {
		for _, kind := range []Kind{None, Enhanced} {
			r := Build(g, kind, 8)
			for _, threads := range []int{1, 2, 4} {
				for _, grain := range []int64{0, 1, 64, 1 << 20} {
					v := r.ShardOpts(g, threads, nil, CoarsenOptions{Enable: true, Grain: grain})
					checkCoarsenInvariants(t, g, r, v)
					_ = gi
				}
			}
		}
	}
}

// TestCoarsenCutsDeepSchedule pins the point of the feature: on a deep,
// narrow design the coarsened schedule must use far fewer barrier levels
// than the dependence depth, while a disabled pass must leave it alone.
func TestCoarsenCutsDeepSchedule(t *testing.T) {
	g := deepChainGraph(t, 60, 2)
	r := Build(g, Enhanced, 4)
	plain := r.Shard(g, 2, nil)
	if plain.Levels != plain.OrigLevels {
		t.Fatalf("uncoarsened view reports Levels=%d != OrigLevels=%d", plain.Levels, plain.OrigLevels)
	}
	if plain.OrigLevels < 20 {
		t.Fatalf("deep chain levelized to only %d levels; test design too shallow", plain.OrigLevels)
	}
	v := r.ShardOpts(g, 2, nil, CoarsenOptions{Enable: true})
	if v.OrigLevels != plain.OrigLevels {
		t.Fatalf("coarsened OrigLevels=%d, want %d", v.OrigLevels, plain.OrigLevels)
	}
	if v.Levels*2 > v.OrigLevels {
		t.Fatalf("coarsening left %d of %d levels; expected at least a 2x cut on a deep chain",
			v.Levels, v.OrigLevels)
	}
}

// TestCoarsenGrainMonotone: a coarser grain can only shorten the schedule.
func TestCoarsenGrainMonotone(t *testing.T) {
	g := deepChainGraph(t, 30, 3)
	r := Build(g, Enhanced, 4)
	prev := -1
	for _, grain := range []int64{1, 8, 64, 1 << 20} {
		v := r.ShardOpts(g, 2, nil, CoarsenOptions{Enable: true, Grain: grain})
		if prev >= 0 && v.Levels > prev {
			t.Fatalf("grain %d produced %d levels, more than the finer grain's %d", grain, v.Levels, prev)
		}
		prev = v.Levels
	}
}

func TestCoarsenDeterminism(t *testing.T) {
	g := testGraph(t, 2)
	r := Build(g, Enhanced, 8)
	a := r.ShardOpts(g, 4, nil, CoarsenOptions{Enable: true})
	b := r.ShardOpts(g, 4, nil, CoarsenOptions{Enable: true})
	if a.Levels != b.Levels || a.OrigLevels != b.OrigLevels {
		t.Fatalf("nondeterministic level counts: %d/%d vs %d/%d", a.Levels, a.OrigLevels, b.Levels, b.OrigLevels)
	}
	for s := range a.ShardOf {
		if a.ShardOf[s] != b.ShardOf[s] || a.LevelOf[s] != b.LevelOf[s] {
			t.Fatalf("nondeterministic coarsened assignment at supernode %d", s)
		}
	}
}
