package partition

import "hash/maphash"

// intervalDP is the sequential-partition dynamic program after Kernighan
// (JACM 1971): given groups in topological order, choose block boundaries
// that minimize total cost subject to a per-block node-count cap. The cost
// of a partition balances the paper's two competing factors:
//
//   - every activation edge crossing a block boundary costs Aexam+Asucc work
//     at runtime (crossing term), which favors merging;
//   - placing two *unrelated* neighbor groups (no activation edge between
//     them) in one block inflates af — activating either evaluates both —
//     which favors splitting. Each unrelated interior adjacency is charged
//     the size of the smaller group (the expected spurious evaluations).
//
// Returns the merged groups (position lists).
func intervalDP(v *graphView, ordered [][]int32, maxSize int) [][]int32 {
	gN := len(ordered)
	if gN == 0 {
		return nil
	}
	// Map positions to group-sequence indices.
	gpos := make([]int32, len(v.seq))
	for gi, grp := range ordered {
		for _, p := range grp {
			gpos[p] = int32(gi)
		}
	}
	// crossing[b] = activation edges spanning the boundary before group b,
	// and adjacency relatedness for the mixing penalty.
	diff := make([]int64, gN+1)
	related := make([]bool, gN+1) // related[k]: act edge between groups k-1 and k
	for up, succs := range v.actSucc {
		gu := gpos[up]
		for _, vp := range succs {
			gv := gpos[vp]
			if gu == gv {
				continue
			}
			lo, hi := gu, gv
			if lo > hi {
				lo, hi = hi, lo
			}
			diff[lo+1]++
			diff[hi+1]--
			if hi == lo+1 {
				related[hi] = true
			}
		}
	}
	crossing := make([]int64, gN+1)
	var acc int64
	for b := 1; b <= gN; b++ {
		acc += diff[b]
		crossing[b] = acc
	}
	// Prefix weights (node counts) and prefix mixing penalties.
	wsum := make([]int64, gN+1)
	for i, grp := range ordered {
		wsum[i+1] = wsum[i] + int64(len(grp))
	}
	mixPenalty := make([]int64, gN+1) // prefix sum over adjacency k = (k-1,k)
	for k := 1; k < gN; k++ {
		pen := int64(0)
		if !related[k] {
			a, b := int64(len(ordered[k-1])), int64(len(ordered[k]))
			if a < b {
				pen = a
			} else {
				pen = b
			}
		}
		mixPenalty[k+1] = mixPenalty[k] + pen
	}
	const inf = int64(1) << 62
	dp := make([]int64, gN+1)
	choice := make([]int32, gN+1)
	for i := 1; i <= gN; i++ {
		dp[i] = inf
		for j := i - 1; j >= 0; j-- {
			if j < i-1 && wsum[i]-wsum[j] > int64(maxSize) {
				break
			}
			var c int64
			if j > 0 {
				c = crossing[j]
			}
			// Interior adjacencies of block [j, i) are j+1 .. i-1.
			c += mixPenalty[i] - mixPenalty[j+1]
			if cand := dp[j] + c; cand < dp[i] {
				dp[i] = cand
				choice[i] = int32(j)
			}
			if j == i-1 && wsum[i]-wsum[j] > int64(maxSize) {
				// A single group already exceeds the cap; it must stand alone.
				break
			}
		}
	}
	// Reconstruct boundaries.
	var bounds []int32
	for i := int32(gN); i > 0; i = choice[i] {
		bounds = append(bounds, i)
	}
	// bounds are descending block ends; assemble blocks.
	out := make([][]int32, 0, len(bounds))
	start := int32(0)
	for k := len(bounds) - 1; k >= 0; k-- {
		end := bounds[k]
		var blk []int32
		for gi := start; gi < end; gi++ {
			blk = append(blk, ordered[gi]...)
		}
		out = append(out, blk)
		start = end
	}
	return out
}

// mffcGroups builds maximal fanout-free cones over the dep-edge DAG —
// ESSENT's partitioning style. A node joins its successors' cone when every
// fanout leads into the same cone, subject to the size cap.
func mffcGroups(v *graphView, maxSize int) []int32 {
	n := len(v.seq)
	root := make([]int32, n)
	size := make([]int32, n)
	for i := range root {
		root[i] = int32(i)
		size[i] = 1
	}
	for p := int32(n) - 1; p >= 0; p-- {
		succs := v.depSucc[p]
		if len(succs) == 0 {
			continue
		}
		r0 := find(root, succs[0])
		same := true
		for _, s := range succs[1:] {
			if find(root, s) != r0 {
				same = false
				break
			}
		}
		if same {
			union(root, size, p, succs[0], int32(maxSize))
		}
	}
	return root
}

// enhancedGroups implements GSIM's rule-based pre-grouping (§III-A): nodes
// that are near-certain to activate together are unioned up front so the
// interval DP cannot separate them:
//
//	❶ a node with out-degree 1 joins its sole successor;
//	❷ a node with in-degree 1 joins its sole predecessor;
//	❸ siblings with identical predecessor sets join each other.
func enhancedGroups(v *graphView, maxSize int) []int32 {
	n := len(v.seq)
	root := make([]int32, n)
	size := make([]int32, n)
	for i := range root {
		root[i] = int32(i)
		size[i] = 1
	}
	cap32 := int32(maxSize)
	// ❶ out-degree 1.
	for p := int32(0); p < int32(n); p++ {
		if len(v.actSucc[p]) == 1 {
			union(root, size, p, v.actSucc[p][0], cap32)
		}
	}
	// ❷ in-degree 1.
	for p := int32(0); p < int32(n); p++ {
		if len(v.actPred[p]) == 1 {
			union(root, size, p, v.actPred[p][0], cap32)
		}
	}
	// ❸ same-predecessor siblings: bucket by predecessor-list hash, verify
	// exact equality, then union bucket members pairwise.
	var seed = maphash.MakeSeed()
	buckets := map[uint64][]int32{}
	for p := int32(0); p < int32(n); p++ {
		preds := v.actPred[p]
		if len(preds) == 0 {
			continue
		}
		var h maphash.Hash
		h.SetSeed(seed)
		for _, q := range preds {
			h.WriteByte(byte(q))
			h.WriteByte(byte(q >> 8))
			h.WriteByte(byte(q >> 16))
			h.WriteByte(byte(q >> 24))
		}
		k := h.Sum64()
		buckets[k] = append(buckets[k], p)
	}
	for _, members := range buckets {
		if len(members) < 2 {
			continue
		}
		for i := 1; i < len(members); i++ {
			if equalPreds(v.actPred[members[0]], v.actPred[members[i]]) {
				union(root, size, members[0], members[i], cap32)
			}
		}
	}
	return root
}

func equalPreds(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
