package partition

import (
	"sort"

	"gsim/internal/ir"
)

// ShardView distributes a partition's supernodes across thread shards for
// parallel essential-signal evaluation. Supernodes are first levelized over
// the dependence condensation (all supernodes in one level are mutually
// independent given earlier levels), then each level's supernodes are spread
// across shards balanced by evaluation weight. The view is what
// engine.ParallelActivity executes: workers sweep level by level with a
// barrier between levels, so intra-cycle activations — which always target
// strictly later levels — are visible before their targets are examined.
type ShardView struct {
	Threads int
	Levels  int
	LevelOf []int32     // supernode -> level
	ShardOf []int32     // supernode -> shard
	Chunks  [][][]int32 // level -> shard -> supernode IDs, ascending

	// ChunkWeight is the per-chunk metadata the assignment balanced:
	// ChunkWeight[level][shard] is the summed evaluation weight of that
	// chunk's supernodes. Engines use it to size batched kernel chains and
	// diagnostics use it to report shard imbalance (Imbalance).
	ChunkWeight [][]int64
}

// Imbalance reports the worst per-level load ratio: max over levels of
// (heaviest chunk / mean chunk weight), weighted toward the levels that
// carry work. 1.0 is a perfect split; levels with no weight are skipped.
func (v *ShardView) Imbalance() float64 {
	worst := 1.0
	for _, ws := range v.ChunkWeight {
		var total, max int64
		for _, w := range ws {
			total += w
			if w > max {
				max = w
			}
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(ws))
		if r := float64(max) / mean; r > worst {
			worst = r
		}
	}
	return worst
}

// Shard builds the thread-shard view of the partition. nodeWeight gives the
// evaluation cost of one node (typically its compiled instruction count);
// nil weighs every node equally. threads < 1 is treated as 1.
//
// Levelization relies on the package's correctness invariant: the supernode
// sequence is a topological order of the value-dependence condensation, so a
// supernode's dependence predecessors always carry smaller indices.
func (r *Result) Shard(g *ir.Graph, threads int, nodeWeight func(id int32) int64) *ShardView {
	if threads < 1 {
		threads = 1
	}
	n := r.Count()
	v := &ShardView{
		Threads: threads,
		LevelOf: make([]int32, n),
		ShardOf: make([]int32, n),
	}
	if n == 0 {
		return v
	}

	// Supernode level: 1 + max level over dependence-predecessor supernodes.
	// Register and input reads see last cycle's value and are excluded, the
	// same dependence relation the partitioners order by.
	weights := make([]int64, n)
	for s := 0; s < n; s++ {
		lv := int32(0)
		for _, id := range r.Members[s] {
			node := g.Nodes[id]
			if nodeWeight != nil {
				weights[s] += nodeWeight(id)
			} else {
				weights[s]++
			}
			node.EachExpr(func(slot **ir.Expr) {
				(*slot).Walk(func(e *ir.Expr) {
					if e.Op != ir.OpRef {
						return
					}
					u := e.Node
					if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
						return
					}
					us := r.SupOf[u.ID]
					if us < 0 || us == int32(s) {
						return
					}
					if l := v.LevelOf[us] + 1; l > lv {
						lv = l
					}
				})
			})
		}
		v.LevelOf[s] = lv
		if int(lv)+1 > v.Levels {
			v.Levels = int(lv) + 1
		}
	}

	// Per level, longest-processing-time assignment: heaviest supernode first
	// onto the least-loaded shard (lowest index on ties, for determinism).
	byLevel := make([][]int32, v.Levels)
	for s := int32(0); s < int32(n); s++ {
		byLevel[v.LevelOf[s]] = append(byLevel[v.LevelOf[s]], s)
	}
	v.Chunks = make([][][]int32, v.Levels)
	v.ChunkWeight = make([][]int64, v.Levels)
	load := make([]int64, threads)
	for lv, sups := range byLevel {
		ordered := make([]int32, len(sups))
		copy(ordered, sups)
		sortByWeightDesc(ordered, weights)
		for i := range load {
			load[i] = 0
		}
		v.Chunks[lv] = make([][]int32, threads)
		for _, s := range ordered {
			w := 0
			for t := 1; t < threads; t++ {
				if load[t] < load[w] {
					w = t
				}
			}
			load[w] += weights[s]
			v.ShardOf[s] = int32(w)
			v.Chunks[lv][w] = append(v.Chunks[lv][w], s)
		}
		for w := 0; w < threads; w++ {
			sortInt32(v.Chunks[lv][w])
		}
		v.ChunkWeight[lv] = append([]int64(nil), load...)
	}
	return v
}

// sortByWeightDesc orders supernode IDs by descending weight, breaking ties
// by ascending ID so the assignment is deterministic.
func sortByWeightDesc(s []int32, weights []int64) {
	sort.Slice(s, func(i, j int) bool {
		if weights[s[i]] != weights[s[j]] {
			return weights[s[i]] > weights[s[j]]
		}
		return s[i] < s[j]
	})
}
