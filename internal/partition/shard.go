package partition

import (
	"sort"

	"gsim/internal/ir"
)

// ShardView distributes a partition's supernodes across thread shards for
// parallel essential-signal evaluation. Supernodes are first levelized over
// the dependence condensation (all supernodes in one level are mutually
// independent given earlier levels), then each level's supernodes are spread
// across shards balanced by evaluation weight. The view is what
// engine.ParallelActivity executes: workers sweep level by level with a
// barrier between levels, so intra-cycle activations — which always target
// strictly later levels — are visible before their targets are examined.
//
// With coarsening (CoarsenOptions.Enable) consecutive sparse levels are
// merged into one scheduled level wherever the cross-level edges permit:
// supernodes connected by an intra-merged-range dependence edge are
// co-assigned to one shard, and each shard's chunk keeps its members in
// ascending supernode order — a topological order of the dependence
// condensation (the package invariant) — so the chunk executes as an ordered
// chain and the dependence is honored without a barrier. Deep, narrow designs
// pay one barrier per scheduled level; coarsening cuts Levels (and with it
// barriers per cycle) from OrigLevels down to roughly total-weight/grain.
type ShardView struct {
	Threads int
	Levels  int         // scheduled levels (== OrigLevels when coarsening is off)
	LevelOf []int32     // supernode -> scheduled level
	ShardOf []int32     // supernode -> shard
	Chunks  [][][]int32 // level -> shard -> supernode IDs, ascending

	// OrigLevels is the dependence levelization depth before coarsening —
	// the barrier count the schedule would have paid without merging. The
	// schedule delta (OrigLevels -> Levels) is what gsim-diag and the
	// harness report.
	OrigLevels int

	// ChunkWeight is the per-chunk metadata the assignment balanced:
	// ChunkWeight[level][shard] is the summed evaluation weight of that
	// chunk's supernodes. Engines use it to size batched kernel chains and
	// diagnostics use it to report shard imbalance (Imbalance).
	ChunkWeight [][]int64
}

// CoarsenOptions configures adaptive level coarsening.
type CoarsenOptions struct {
	// Enable turns coarsening on.
	Enable bool
	// Grain is the target minimum evaluation weight per merged level:
	// consecutive levels merge until the run reaches it, so barriers are only
	// paid where at least Grain work amortizes them. Zero or negative selects
	// the adaptive default: threads x DefaultGrainPerShard — the work a
	// barrier must buy each worker — floored at the mean original level
	// weight, so bulky schedules (whose levels already dwarf the barrier)
	// are left alone however many threads run.
	Grain int64
}

// DefaultGrainPerShard is the per-worker evaluation weight (in nodeWeight
// units — compiled instructions, when the engine supplies its weighting) a
// scheduled level should reach before a barrier is worth paying. Sized
// against the level-barrier cost: workers hand off through one atomic
// countdown plus a spin-yield, which costs on the order of dozens of
// instruction evaluations per worker.
const DefaultGrainPerShard = 64

// Imbalance reports the worst per-level load ratio: max over levels of
// (heaviest chunk / mean chunk weight), weighted toward the levels that
// carry work. 1.0 is a perfect split; levels with no weight are skipped.
func (v *ShardView) Imbalance() float64 {
	worst := 1.0
	for _, ws := range v.ChunkWeight {
		var total, max int64
		for _, w := range ws {
			total += w
			if w > max {
				max = w
			}
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(ws))
		if r := float64(max) / mean; r > worst {
			worst = r
		}
	}
	return worst
}

// Shard builds the thread-shard view of the partition with coarsening off.
// nodeWeight gives the evaluation cost of one node (typically its compiled
// instruction count); nil weighs every node equally. threads < 1 is treated
// as 1.
func (r *Result) Shard(g *ir.Graph, threads int, nodeWeight func(id int32) int64) *ShardView {
	return r.ShardOpts(g, threads, nodeWeight, CoarsenOptions{})
}

// ShardOpts builds the thread-shard view, optionally coarsening the level
// schedule. The assignment is one algorithm for both modes: original levels
// are grouped into runs (every run a single level when coarsening is off),
// supernodes connected by an intra-run dependence edge are fused into
// components (always singletons when runs are single levels, because
// dependence edges strictly increase the level), and each run's components
// are spread across shards longest-processing-time first.
//
// Correctness of a merged run: every dependence edge whose endpoints both
// land in the run connects supernodes of one component, hence one shard; the
// shard's chunk is sorted by ascending supernode index, which the package
// invariant guarantees is a topological order of the dependence
// condensation, so the chunk's ordered chain evaluates the edge's source
// before its target. Edges entering the run from earlier runs are sequenced
// by the barrier, exactly as before.
func (r *Result) ShardOpts(g *ir.Graph, threads int, nodeWeight func(id int32) int64, co CoarsenOptions) *ShardView {
	if threads < 1 {
		threads = 1
	}
	n := r.Count()
	v := &ShardView{
		Threads: threads,
		LevelOf: make([]int32, n),
		ShardOf: make([]int32, n),
	}
	if n == 0 {
		return v
	}

	// Supernode level: 1 + max level over dependence-predecessor supernodes.
	// Register and input reads see last cycle's value and are excluded, the
	// same dependence relation the partitioners order by.
	origLevel := make([]int32, n)
	weights := make([]int64, n)
	origLevels := 0
	for s := 0; s < n; s++ {
		lv := int32(0)
		for _, id := range r.Members[s] {
			node := g.Nodes[id]
			if nodeWeight != nil {
				weights[s] += nodeWeight(id)
			} else {
				weights[s]++
			}
			node.EachExpr(func(slot **ir.Expr) {
				(*slot).Walk(func(e *ir.Expr) {
					if e.Op != ir.OpRef {
						return
					}
					u := e.Node
					if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
						return
					}
					us := r.SupOf[u.ID]
					if us < 0 || us == int32(s) {
						return
					}
					if l := origLevel[us] + 1; l > lv {
						lv = l
					}
				})
			})
		}
		origLevel[s] = lv
		if int(lv)+1 > origLevels {
			origLevels = int(lv) + 1
		}
	}
	v.OrigLevels = origLevels

	// Group original levels into runs. Without coarsening every level is its
	// own run; with it, consecutive levels accumulate until the run carries
	// at least Grain weight (a level that alone reaches the grain always
	// starts fresh, so heavy levels never serialize behind a sparse prefix).
	runOf := make([]int32, origLevels)
	coarsened := false
	if co.Enable {
		levelWeight := make([]int64, origLevels)
		var total int64
		for s := 0; s < n; s++ {
			levelWeight[origLevel[s]] += weights[s]
			total += weights[s]
		}
		grain := co.Grain
		if grain <= 0 {
			grain = int64(threads) * DefaultGrainPerShard
			if mean := total / int64(origLevels); mean > grain {
				grain = mean
			}
		}
		run, acc := int32(0), int64(0)
		open := false
		for lv := 0; lv < origLevels; lv++ {
			if open && levelWeight[lv] >= grain {
				run++
				acc = 0
			}
			runOf[lv] = run
			open = true
			acc += levelWeight[lv]
			if acc >= grain {
				run++
				acc = 0
				open = false
			}
		}
		if open {
			run++
		}
		v.Levels = int(run)
		coarsened = v.Levels < origLevels
	} else {
		for lv := range runOf {
			runOf[lv] = int32(lv)
		}
		v.Levels = origLevels
	}

	// Component fusion: supernodes joined by a dependence edge that stays
	// inside one run must share a shard. Dependence edges strictly increase
	// the original level, so with single-level runs no edge qualifies and
	// every component is a singleton — the classic per-supernode LPT.
	root := make([]int32, n)
	for s := range root {
		root[s] = int32(s)
	}
	if coarsened {
		for _, node := range g.Nodes {
			sv := r.SupOf[node.ID]
			if sv < 0 {
				continue
			}
			node.EachExpr(func(slot **ir.Expr) {
				(*slot).Walk(func(e *ir.Expr) {
					if e.Op != ir.OpRef {
						return
					}
					u := e.Node
					if u.Kind == ir.KindReg || u.Kind == ir.KindInput {
						return
					}
					su := r.SupOf[u.ID]
					if su < 0 || su == sv {
						return
					}
					if runOf[origLevel[su]] != runOf[origLevel[sv]] {
						return
					}
					ra, rb := find(root, su), find(root, sv)
					if ra != rb {
						root[rb] = ra
					}
				})
			})
		}
	}

	// Collect components per run: member lists (ascending supernode ID, so
	// min ID is first), summed weight.
	type component struct {
		sups   []int32
		weight int64
	}
	compIdx := make(map[int32]int32, n)
	byRun := make([][]int32, v.Levels) // run -> component indices
	var comps []component
	for s := int32(0); s < int32(n); s++ {
		rt := find(root, s)
		ci, ok := compIdx[rt]
		if !ok {
			ci = int32(len(comps))
			compIdx[rt] = ci
			comps = append(comps, component{})
			byRun[runOf[origLevel[s]]] = append(byRun[runOf[origLevel[s]]], ci)
		}
		comps[ci].sups = append(comps[ci].sups, s)
		comps[ci].weight += weights[s]
	}

	// Per run, longest-processing-time assignment: heaviest component first
	// onto the least-loaded shard (ties broken toward the lower shard index
	// and the component with the smallest leading supernode, for
	// determinism).
	v.Chunks = make([][][]int32, v.Levels)
	v.ChunkWeight = make([][]int64, v.Levels)
	load := make([]int64, threads)
	for run, cis := range byRun {
		sort.Slice(cis, func(i, j int) bool {
			a, b := &comps[cis[i]], &comps[cis[j]]
			if a.weight != b.weight {
				return a.weight > b.weight
			}
			return a.sups[0] < b.sups[0]
		})
		for i := range load {
			load[i] = 0
		}
		v.Chunks[run] = make([][]int32, threads)
		for _, ci := range cis {
			c := &comps[ci]
			w := 0
			for t := 1; t < threads; t++ {
				if load[t] < load[w] {
					w = t
				}
			}
			load[w] += c.weight
			for _, s := range c.sups {
				v.ShardOf[s] = int32(w)
				v.LevelOf[s] = int32(run)
			}
			v.Chunks[run][w] = append(v.Chunks[run][w], c.sups...)
		}
		for w := 0; w < threads; w++ {
			sortInt32(v.Chunks[run][w])
		}
		v.ChunkWeight[run] = append([]int64(nil), load...)
	}
	return v
}
