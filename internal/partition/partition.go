// Package partition groups graph nodes into supernodes — the paper's
// supernode-level optimization (§III-A). Each supernode gets a single active
// bit in the Activity engine; all members are evaluated together when it is
// set.
//
// Four builders are provided, matching Table III:
//
//   - None: every node is its own supernode (the paper's "None" row).
//   - Kernighan: the classic sequential-interval partition after Kernighan
//     (JACM 1971) — a dynamic program over a topological order that chooses
//     block boundaries minimizing crossing edges under a size cap.
//   - MFFC: maximal fanout-free cones, ESSENT's partitioning style.
//   - Enhanced: GSIM's algorithm — rule-based pre-grouping of strongly
//     correlated nodes (out-degree-1 nodes with their successor, in-degree-1
//     nodes with their predecessor, same-predecessor siblings), protected
//     from separation, followed by the Kernighan interval DP over the
//     contracted graph.
//
// Correctness invariant: the supernode sequence is a topological order of
// the value-dependence condensation, so the Activity engine's single forward
// sweep per cycle never misses an intra-cycle activation. Interval partitions
// guarantee this by construction; cone- and rule-based groups are checked
// for convexity (an SCC pass on the condensation) and dissolved if they
// would create a cycle.
package partition

import (
	"fmt"
	"sort"
	"time"

	"gsim/internal/ir"
)

// Kind selects a partitioning algorithm.
type Kind uint8

// Partitioner kinds.
const (
	None Kind = iota
	Kernighan
	MFFC
	Enhanced
)

var kindNames = [...]string{"none", "kernighan", "mffc", "enhanced"}

// String returns the algorithm name.
func (k Kind) String() string { return kindNames[k] }

// ParseKind converts a name to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("partition: unknown kind %q", s)
}

// Result is a supernode partition of a graph's evaluable nodes.
type Result struct {
	Kind    Kind
	SupOf   []int32   // node ID -> supernode index; -1 for inputs
	Members [][]int32 // supernode -> member node IDs, ascending (= topo order)

	BuildTime time.Duration
	CutEdges  int // activation edges between distinct supernodes
	MaxSize   int
}

// Count returns the number of supernodes.
func (r *Result) Count() int { return len(r.Members) }

// AvgSize returns the mean supernode size.
func (r *Result) AvgSize() float64 {
	if len(r.Members) == 0 {
		return 0
	}
	total := 0
	for _, m := range r.Members {
		total += len(m)
	}
	return float64(total) / float64(len(r.Members))
}

// graphView is the precomputed edge structure partitioners work on.
// Positions index the sequence of evaluable nodes in topological (== ID)
// order. Two edge relations are kept:
//
//   - dep edges: value dependences that constrain intra-cycle evaluation
//     order (excludes register read edges, which see last cycle's value);
//   - act edges: activation correlations (includes register read edges),
//     the paper's notion of "activated together".
type graphView struct {
	g   *ir.Graph
	seq []int32 // position -> node ID
	pos []int32 // node ID -> position (-1 for inputs)

	depSucc [][]int32 // position -> dep successor positions (dedup, sorted)
	actSucc [][]int32 // position -> act successor positions (no self edges)
	actPred [][]int32
}

func newGraphView(g *ir.Graph) *graphView {
	v := &graphView{g: g, pos: make([]int32, len(g.Nodes))}
	for i := range v.pos {
		v.pos[i] = -1
	}
	v.seq = dfsTopoOrder(g)
	for p, id := range v.seq {
		v.pos[id] = int32(p)
	}
	n := len(v.seq)
	v.depSucc = make([][]int32, n)
	v.actSucc = make([][]int32, n)
	v.actPred = make([][]int32, n)
	for _, node := range g.Nodes {
		vp := v.pos[node.ID]
		if vp < 0 {
			continue
		}
		seen := map[int32]bool{}
		node.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op != ir.OpRef {
					return
				}
				u := e.Node
				up := v.pos[u.ID]
				if up < 0 || up == vp || seen[up] {
					return
				}
				seen[up] = true
				v.actSucc[up] = append(v.actSucc[up], vp)
				v.actPred[vp] = append(v.actPred[vp], up)
				if u.Kind != ir.KindReg {
					v.depSucc[up] = append(v.depSucc[up], vp)
				}
			})
		})
	}
	for i := 0; i < n; i++ {
		sortInt32(v.depSucc[i])
		sortInt32(v.actSucc[i])
		sortInt32(v.actPred[i])
	}
	return v
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// dfsTopoOrder returns the evaluable node IDs in a locality-preserving
// topological order: DFS reverse post-order over the dep-edge DAG. Interval
// partitions need neighboring positions to be *related* nodes — Kernighan's
// sequential method presumes such an order — and a BFS/Kahn order interleaves
// unrelated regions, which makes every interval mix strangers and inflates
// the activity factor.
func dfsTopoOrder(g *ir.Graph) []int32 {
	n := len(g.Nodes)
	// Dep successors per node (IDs), built once.
	succs := make([][]int32, n)
	indeg := make([]int32, n)
	for _, node := range g.Nodes {
		if node == nil || !node.HasCode() {
			continue
		}
		seen := map[int32]bool{}
		node.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op != ir.OpRef {
					return
				}
				u := e.Node
				if u.Kind == ir.KindReg || u.Kind == ir.KindInput || u.ID == node.ID {
					return
				}
				uid := int32(u.ID)
				if !seen[uid] {
					seen[uid] = true
					succs[uid] = append(succs[uid], int32(node.ID))
					indeg[node.ID]++
				}
			})
		})
	}
	visited := make([]bool, n)
	var post []int32
	// Iterative DFS with explicit post-order emission.
	type frame struct {
		id int32
		ei int
	}
	for start, node := range g.Nodes {
		if node == nil || !node.HasCode() || visited[start] || indeg[start] != 0 {
			continue
		}
		frames := []frame{{int32(start), 0}}
		visited[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(succs[f.id]) {
				w := succs[f.id][f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					frames = append(frames, frame{w, 0})
				}
				continue
			}
			post = append(post, f.id)
			frames = frames[:len(frames)-1]
		}
	}
	// Unreached nodes (cycles through registers only; shouldn't happen for
	// nodes with indeg 0 roots covering a DAG, but stay safe).
	for id, node := range g.Nodes {
		if node != nil && node.HasCode() && !visited[id] {
			post = append(post, int32(id))
		}
	}
	// Reverse post-order is a topological order.
	order := make([]int32, len(post))
	for i, id := range post {
		order[len(post)-1-i] = id
	}
	return order
}

// Build partitions the graph's evaluable nodes. maxSize caps the number of
// nodes per supernode (the paper's command-line parameter, Fig. 9); values
// < 1 are treated as 1.
func Build(g *ir.Graph, kind Kind, maxSize int) *Result {
	start := time.Now()
	if maxSize < 1 {
		maxSize = 1
	}
	v := newGraphView(g)
	var groups [][]int32 // lists of positions
	switch kind {
	case None:
		groups = singletons(len(v.seq))
	case Kernighan:
		ordered := singletons(len(v.seq))
		groups = intervalDP(v, ordered, maxSize)
	case MFFC:
		groups = v.finalize(mffcGroups(v, maxSize))
	case Enhanced:
		pre := v.finalize(enhancedGroups(v, maxSize))
		groups = intervalDP(v, pre, maxSize)
	default:
		panic(fmt.Sprintf("partition: bad kind %d", kind))
	}
	r := &Result{
		Kind:    kind,
		SupOf:   make([]int32, len(g.Nodes)),
		Members: make([][]int32, len(groups)),
		MaxSize: maxSize,
	}
	for i := range r.SupOf {
		r.SupOf[i] = -1
	}
	for si, grp := range groups {
		ids := make([]int32, len(grp))
		for j, p := range grp {
			ids[j] = v.seq[p]
		}
		sortInt32(ids)
		r.Members[si] = ids
		for _, id := range ids {
			r.SupOf[id] = int32(si)
		}
	}
	// Cut metric: activation edges crossing supernodes.
	for up, succs := range v.actSucc {
		su := r.SupOf[v.seq[up]]
		for _, vp := range succs {
			if r.SupOf[v.seq[vp]] != su {
				r.CutEdges++
			}
		}
	}
	r.BuildTime = time.Since(start)
	return r
}

func singletons(n int) [][]int32 {
	groups := make([][]int32, n)
	for i := range groups {
		groups[i] = []int32{int32(i)}
	}
	return groups
}

// finalize takes a grouping as a union-find root array over positions,
// dissolves any group that breaks the condensation's acyclicity, and returns
// the groups ordered topologically w.r.t. dep edges.
func (v *graphView) finalize(root []int32) [][]int32 {
	n := len(v.seq)
	// Collect groups.
	index := make(map[int32]int32)
	var groups [][]int32
	groupOf := make([]int32, n)
	for p := 0; p < n; p++ {
		r := find(root, int32(p))
		gi, ok := index[r]
		if !ok {
			gi = int32(len(groups))
			index[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], int32(p))
		groupOf[p] = gi
	}
	// Convexity check: SCCs of the dep-edge condensation. Dissolve every
	// non-singleton group inside a multi-vertex SCC.
	scc := condensationSCC(groups, groupOf, v.depSucc)
	dissolved := false
	sccSize := map[int32]int{}
	for _, s := range scc {
		sccSize[s]++
	}
	for gi, grp := range groups {
		if len(grp) > 1 && sccSize[scc[gi]] > 1 {
			dissolved = true
			for _, p := range grp[1:] {
				root[p] = p // break the union
			}
			root[grp[0]] = grp[0]
		}
	}
	if dissolved {
		// Rebuild groups after dissolution (now guaranteed acyclic).
		for p := range root {
			find(root, int32(p))
		}
		return v.finalize(root)
	}
	// Topological order of groups (Kahn over the group dep graph).
	gN := len(groups)
	indeg := make([]int32, gN)
	gsucc := make([][]int32, gN)
	for p := 0; p < n; p++ {
		gu := groupOf[p]
		for _, q := range v.depSucc[p] {
			gv := groupOf[q]
			if gu != gv {
				gsucc[gu] = append(gsucc[gu], gv)
				indeg[gv]++
			}
		}
	}
	// Priority-queue Kahn keyed by min member position: among ready groups,
	// emit the one earliest in the locality order, so the group sequence
	// stays close to the DFS order the interval DP depends on.
	minPos := make([]int32, gN)
	for gi, grp := range groups {
		mp := grp[0]
		for _, p := range grp {
			if p < mp {
				mp = p
			}
		}
		minPos[gi] = mp
	}
	pq := &groupHeap{minPos: minPos}
	for gi := 0; gi < gN; gi++ {
		if indeg[gi] == 0 {
			pq.push(int32(gi))
		}
	}
	ordered := make([][]int32, 0, gN)
	for pq.len() > 0 {
		gu := pq.pop()
		grp := groups[gu]
		sortInt32(grp)
		ordered = append(ordered, grp)
		for _, gv := range gsucc[gu] {
			indeg[gv]--
			if indeg[gv] == 0 {
				pq.push(gv)
			}
		}
	}
	if len(ordered) != gN {
		panic("partition: group condensation still cyclic after dissolution")
	}
	return ordered
}

// find is a path-compressing union-find lookup.
func find(root []int32, x int32) int32 {
	for root[x] != x {
		root[x] = root[root[x]]
		x = root[x]
	}
	return x
}

// union merges the sets of a and b if the combined size fits the cap.
// Returns true on success.
func union(root []int32, size []int32, a, b int32, cap int32) bool {
	ra, rb := find(root, a), find(root, b)
	if ra == rb {
		return true
	}
	if size[ra]+size[rb] > cap {
		return false
	}
	if size[ra] < size[rb] {
		ra, rb = rb, ra
	}
	root[rb] = ra
	size[ra] += size[rb]
	return true
}

// condensationSCC runs an iterative Tarjan SCC over the group graph and
// returns each group's SCC ID.
func condensationSCC(groups [][]int32, groupOf []int32, depSucc [][]int32) []int32 {
	gN := len(groups)
	gsucc := make([][]int32, gN)
	for p := range depSucc {
		gu := groupOf[p]
		for _, q := range depSucc[p] {
			gv := groupOf[q]
			if gu != gv {
				gsucc[gu] = append(gsucc[gu], gv)
			}
		}
	}
	const unvisited = -1
	idx := make([]int32, gN)
	low := make([]int32, gN)
	onStack := make([]bool, gN)
	sccID := make([]int32, gN)
	for i := range idx {
		idx[i] = unvisited
		sccID[i] = unvisited
	}
	var stack []int32
	var counter, nScc int32
	type frame struct {
		v  int32
		ei int
	}
	for start := 0; start < gN; start++ {
		if idx[start] != unvisited {
			continue
		}
		frames := []frame{{int32(start), 0}}
		idx[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(gsucc[f.v]) {
				w := gsucc[f.v][f.ei]
				f.ei++
				if idx[w] == unvisited {
					idx[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			// post-visit
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == idx[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccID[w] = nScc
					if w == v {
						break
					}
				}
				nScc++
			}
		}
	}
	return sccID
}

// groupHeap is a small binary min-heap of group indices keyed by minPos.
type groupHeap struct {
	items  []int32
	minPos []int32
}

func (h *groupHeap) len() int { return len(h.items) }

func (h *groupHeap) less(a, b int32) bool { return h.minPos[a] < h.minPos[b] }

func (h *groupHeap) push(x int32) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *groupHeap) pop() int32 {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
