package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gsim/internal/stats"
)

// RenderTable1 prints Table I.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I: single-thread full-cycle (Verilator-model) simulation speed\n")
	fmt.Fprintf(w, "%-16s %10s %10s %12s\n", "Design", "IR node", "IR edge", "Speed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d %10d %12s\n", r.Design, r.Nodes, r.Edges, hz(r.SpeedHz))
	}
}

func hz(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fMHz", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fkHz", v/1e3)
	default:
		return fmt.Sprintf("%.0fHz", v)
	}
}

// RenderFig6 prints the overall-performance matrix.
func RenderFig6(w io.Writer, cells []Fig6Cell) {
	fmt.Fprintf(w, "Figure 6: overall performance (speedup normalized to single-thread Verilator)\n")
	// Group by design+workload.
	type key struct{ d, wl string }
	groups := map[key]map[string]Fig6Cell{}
	var order []key
	var sims []string
	seenSim := map[string]bool{}
	for _, c := range cells {
		k := key{c.Design, c.Workload}
		if groups[k] == nil {
			groups[k] = map[string]Fig6Cell{}
			order = append(order, k)
		}
		groups[k][c.Simulator] = c
		if !seenSim[c.Simulator] {
			seenSim[c.Simulator] = true
			sims = append(sims, c.Simulator)
		}
	}
	fmt.Fprintf(w, "%-16s %-9s", "Design", "Workload")
	for _, s := range sims {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, k := range order {
		fmt.Fprintf(w, "%-16s %-9s", k.d, k.wl)
		for _, s := range sims {
			c := groups[k][s]
			fmt.Fprintf(w, " %11.2fx", c.Speedup)
		}
		fmt.Fprintln(w)
	}
}

// RenderGSIMMT prints the multi-threaded GSIM thread sweep.
func RenderGSIMMT(w io.Writer, rows []GSIMMTRow) {
	fmt.Fprintf(w, "GSIMMT: parallel essential-signal engine thread sweep (speedup vs 1T GSIM)\n")
	fmt.Fprintf(w, "%-16s %-9s %-9s %12s %9s\n", "Design", "Workload", "Threads", "Speed", "Speedup")
	for _, r := range rows {
		label := "gsim"
		if r.Threads > 0 {
			label = fmt.Sprintf("%dT", r.Threads)
		}
		fmt.Fprintf(w, "%-16s %-9s %-9s %12s %8.2fx\n", r.Design, r.Workload, label, hz(r.SpeedHz), r.Speedup)
	}
}

// RenderCoarsen prints the level-coarsening study: the schedule delta and
// both throughputs per cell.
func RenderCoarsen(w io.Writer, rows []CoarsenRow) {
	fmt.Fprintf(w, "Coarsening: GSIMMT barrier schedule, per-level vs adaptively merged\n")
	fmt.Fprintf(w, "%-16s %-9s %-8s %16s %12s %12s %9s\n",
		"Design", "Workload", "Threads", "levels (off->on)", "speed off", "speed on", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-9s %-8d %11d->%-4d %12s %12s %8.2fx\n",
			r.Design, r.Workload, r.Threads, r.LevelsOff, r.LevelsOn,
			hz(r.SpeedOffHz), hz(r.SpeedOnHz), r.Speedup)
	}
}

// RenderFig7 prints the checkpoint study.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: SPEC CPU2006 checkpoints on the largest design (speedup vs 1T Verilator)\n")
	fmt.Fprintf(w, "%-20s %14s %14s %8s\n", "Checkpoint", "Verilator-4T", "Verilator-8T", "GSIM")
	var g4, g8, gg []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %13.2fx %13.2fx %7.2fx\n", r.Checkpoint, r.V4T, r.V8T, r.Vs1T)
		g4 = append(g4, r.V4T)
		g8 = append(g8, r.V8T)
		gg = append(gg, r.Vs1T)
	}
	fmt.Fprintf(w, "%-20s %13.2fx %13.2fx %7.2fx\n", "geometric mean",
		stats.GeoMean(g4), stats.GeoMean(g8), stats.GeoMean(gg))
}

// RenderFig8 prints the per-technique breakdown.
func RenderFig8(w io.Writer, steps []Fig8Step) {
	fmt.Fprintf(w, "Figure 8: performance breakdown (cumulative; bar height = log10 gain)\n")
	var design string
	for _, s := range steps {
		if s.Design != design {
			design = s.Design
			fmt.Fprintf(w, "-- %s\n", design)
		}
		// Regressions (negative gain) render as an empty bar; the signed
		// number next to it carries the information.
		n := int(s.Log10Gain*40 + 0.5)
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("#", n)
		fmt.Fprintf(w, "   %-34s %12s  %+.3f %s\n", s.Technique, hz(s.SpeedHz), s.Log10Gain, bar)
	}
}

// RenderFig9 prints the supernode-size sweep.
func RenderFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintf(w, "Figure 9: performance vs maximum supernode size (normalized per design)\n")
	byDesign := map[string][]Fig9Point{}
	var names []string
	for _, p := range pts {
		if _, ok := byDesign[p.Design]; !ok {
			names = append(names, p.Design)
		}
		byDesign[p.Design] = append(byDesign[p.Design], p)
	}
	for _, n := range names {
		fmt.Fprintf(w, "-- %s\n", n)
		best := byDesign[n][0]
		for _, p := range byDesign[n] {
			if p.SpeedHz > best.SpeedHz {
				best = p
			}
		}
		for _, p := range byDesign[n] {
			mark := ""
			if p.MaxSize == best.MaxSize {
				mark = "  <-- optimum"
			}
			fmt.Fprintf(w, "   size %4d: %8.3fx (%s)%s\n", p.MaxSize, p.Speedup, hz(p.SpeedHz), mark)
		}
	}
}

// RenderTable3 prints the partitioning comparison.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table III: partitioning algorithms (BOOM-scale design, CoreMark workload)\n")
	fmt.Fprintf(w, "%-12s %14s %11s %17s %13s %12s\n",
		"partition", "time (ms)", "supernode", "activations/cyc", "active/cyc", "speed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14.1f %11d %17d %13d %12s\n",
			r.Algorithm, r.PartitionMS, r.Supernodes, r.Activations, r.ActiveNodes, hz(r.SpeedHz))
	}
}

// RenderTable4 prints the resource comparison.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table IV: resources (emission time, code size, data size; memories excluded)\n")
	fmt.Fprintf(w, "%-16s %-12s %14s %12s %12s\n", "Design", "Simulator", "Emit (ms)", "Code", "Data")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12s %14.1f %12s %12s\n",
			r.Design, r.Simulator, r.EmitTimeMS, bytes(r.CodeBytes), bytes(r.DataBytes))
	}
}

func bytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SortFig9 orders points by design then size (stable rendering for tests).
func SortFig9(pts []Fig9Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Design != pts[j].Design {
			return pts[i].Design < pts[j].Design
		}
		return pts[i].MaxSize < pts[j].MaxSize
	})
}
