// Package harness regenerates every table and figure in the paper's
// evaluation (§IV): the design registry (Table I's processors), the workload
// stimulus drivers (CoreMark / Linux / SPEC checkpoints), and one driver
// function per experiment. cmd/gsim-bench and the repository's benchmarks
// are thin wrappers over this package.
package harness

import (
	"fmt"
	"math/rand"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/passes"
	"gsim/internal/rv"
)

// Driver pokes a simulator's inputs for one cycle of a workload.
type Driver func(sim engine.Sim, cycle int)

// Design is one evaluation design plus its workload drivers.
type Design struct {
	Name string
	// Build elaborates the design for a workload. The graph differs per
	// workload only for the processor core (whose instruction ROM holds the
	// program); synthetic profiles share one graph.
	Build func(workload string) (*ir.Graph, func(g *ir.Graph) Driver, error)
}

// Workload names understood by every design.
const (
	WorkloadCoreMark = "coremark"
	WorkloadLinux    = "linux"
)

// Designs returns the Table I design list: the real RV32 core as stuCore
// and the three scaled synthetic profiles.
func Designs() []Design {
	return []Design{
		StuCore(),
		Synthetic(gen.RocketLike()),
		Synthetic(gen.BoomLike()),
		Synthetic(gen.XiangShanLike()),
	}
}

// SmallDesigns returns a fast subset for tests.
func SmallDesigns() []Design {
	return []Design{StuCore(), Synthetic(gen.StuCoreLike())}
}

// StuCore is the real RV32I core; the workload selects the program burned
// into its instruction ROM.
func StuCore() Design {
	return Design{
		Name: "stucore",
		Build: func(workload string) (*ir.Graph, func(*ir.Graph) Driver, error) {
			src, ok := rv.Workloads[workload]
			if !ok {
				return nil, nil, fmt.Errorf("harness: no rv program for workload %q", workload)
			}
			prog, err := rv.Assemble(src)
			if err != nil {
				return nil, nil, err
			}
			c, err := rv.BuildCore(prog, rv.DefaultCoreConfig())
			if err != nil {
				return nil, nil, err
			}
			passes.Normalize(c.Graph) // paper-form node counts (one op per node)
			// The core restarts its program when it halts: the driver
			// reloads state via reset-less PC wrap — simplest is to just let
			// it sit halted; speed measurement uses the pre-halt window, and
			// programs run long enough for every measurement interval.
			return c.Graph, func(*ir.Graph) Driver {
				return func(engineSim engine.Sim, cycle int) {}
			}, nil
		},
	}
}

// Synthetic wraps a gen profile as a Design.
func Synthetic(p gen.Profile) Design {
	return Design{
		Name: p.Name,
		Build: func(workload string) (*ir.Graph, func(*ir.Graph) Driver, error) {
			g := gen.BuildProfile(p)
			passes.Normalize(g)
			mk := func(g2 *ir.Graph) Driver {
				stim := g2.FindNode("stim")
				if stim == nil {
					panic("harness: stim input missing")
				}
				id := stim.ID
				next := stimulus(p, workload)
				return func(sim engine.Sim, cycle int) {
					sim.Poke(id, next(cycle))
				}
			}
			return g, mk, nil
		},
	}
}

// stimulus returns the per-cycle stim value generator for a workload on a
// profile. CoreMark-like stimulus dwells on two clusters with a short
// repeating payload (hot spots, low activity); Linux-like stimulus sweeps
// every cluster in phases with a long-period payload (no hot spots).
// Checkpoint stimuli (fig. 7) use checkpointStimulus below.
func stimulus(p gen.Profile, workload string) func(cycle int) bitvec.BV {
	switch workload {
	case WorkloadCoreMark:
		rng := rand.New(rand.NewSource(101))
		table := make([]uint64, 8)
		for i := range table {
			table[i] = rng.Uint64()
		}
		return func(cycle int) bitvec.BV {
			// Hot loop: both selectors dwell on one cluster, hopping to a
			// second one only on a long period — the paper's "exhibits hot
			// spots" profile with a low, stable activity factor.
			sel := uint64(cycle/256) & 1
			payload := table[cycle%len(table)]
			return stimValue(p, sel, sel, payload, 0)
		}
	case WorkloadLinux:
		rng := rand.New(rand.NewSource(202))
		return func(cycle int) bitvec.BV {
			// Boot: one selector phases through every cluster, the other
			// jumps randomly — activity keeps moving, no hot spots.
			sel := uint64(cycle/16) % uint64(p.Clusters)
			sel2 := uint64(rng.Intn(p.Clusters))
			return stimValue(p, sel, sel2, rng.Uint64(), rng.Uint64())
		}
	default:
		panic(fmt.Sprintf("harness: unknown workload %q", workload))
	}
}

// checkpointStimulus builds the Fig. 7 SPEC-checkpoint stimuli: each
// checkpoint is a segment with its own cluster working set and payload
// distribution, the way SimPoint segments of different benchmarks stress
// different units.
func checkpointStimulus(p gen.Profile, seed int64) func(cycle int) bitvec.BV {
	rng := rand.New(rand.NewSource(seed))
	// Working set: between 1 and Clusters/2 clusters, fixed per checkpoint.
	ws := 1 + rng.Intn(p.Clusters/2)
	clusters := rng.Perm(p.Clusters)[:ws]
	// Payload churn: how often the payload changes (hot vs streaming).
	churn := 1 + rng.Intn(8)
	payload := rng.Uint64()
	return func(cycle int) bitvec.BV {
		if cycle%churn == 0 {
			payload = rng.Uint64()
		}
		sel := uint64(clusters[(cycle/4)%len(clusters)])
		sel2 := uint64(clusters[(cycle/64)%len(clusters)])
		return stimValue(p, sel, sel2, payload, payload>>32)
	}
}

func stimValue(p gen.Profile, sel, sel2, payload, hi uint64) bitvec.BV {
	selW := uint(bitsForClusters(p.Clusters))
	mask := uint64(1)<<selW - 1
	lo := sel&mask | (sel2&mask)<<selW | payload<<(2*selW)
	return bitvec.FromWords(128, []uint64{lo, hi<<(2*selW) | payload>>(64-2*selW)})
}

func bitsForClusters(n int) int {
	w := 1
	for 1<<uint(w) < n {
		w++
	}
	return w
}

// buildSystem compiles one design+workload under one configuration.
func buildSystem(d Design, workload string, cfg core.Config) (*core.System, Driver, error) {
	g, mkDriver, err := d.Build(workload)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.Build(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	return sys, mkDriver(sys.Graph), nil
}

// BuildSystemForDiag exposes buildSystem for diagnostic tools.
func BuildSystemForDiag(d Design, workload string, cfg core.Config) (*core.System, Driver, error) {
	return buildSystem(d, workload, cfg)
}

// CheckpointDriver exposes a Fig. 7 checkpoint stimulus for benchmarks.
func CheckpointDriver(p gen.Profile, sys *core.System, seed int64) Driver {
	n := sys.Graph.FindNode("stim")
	next := checkpointStimulus(p, seed)
	return func(sim engine.Sim, cycle int) { sim.Poke(n.ID, next(cycle)) }
}

// Fig8Stage is one cumulative technique stage, exported for benchmarks.
type Fig8Stage struct {
	Name string
	Cfg  func() core.Config
}

// Fig8StagesForBench exposes the Fig. 8 stage list.
func Fig8StagesForBench() []Fig8Stage {
	var out []Fig8Stage
	for _, st := range fig8Stages() {
		out = append(out, Fig8Stage{Name: st.Name, Cfg: st.Cfg})
	}
	return out
}
