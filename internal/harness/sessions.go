package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"gsim/internal/ir"
	"gsim/internal/server"
)

// SessionsRow is one cell of the service-level experiment: how the session
// server multiplexes N concurrent sessions of one design over a single
// cached compile. It is the sessions/s analogue of the paper's kHz tables —
// the quantity the ROADMAP's serve-heavy-traffic goal is measured by.
type SessionsRow struct {
	Design    string
	Sessions  int
	CompileMS float64 // the one cold compile every session shares
	CreatePS  float64 // warm-cache session creations per second
	AggKHz    float64 // aggregate step throughput across all sessions
	PerKHz    float64 // AggKHz / Sessions
	HitRate   float64 // compile-cache hit rate over the cell's creations
}

// sessionStim picks the design's first non-reset input to toggle each batch,
// keeping the essential-signal engines from measuring an all-idle circuit.
func sessionStim(g *ir.Graph) string {
	for _, n := range g.Nodes {
		if n.Kind == ir.KindInput && n.Name != "reset" {
			return n.Name
		}
	}
	return ""
}

// SessionsSweep measures the session server in-process (no HTTP): for each
// design and session count, one manager compiles the design once, opens N
// sessions over the shared artifact, and all N step concurrently in batched
// ops with a toggling input. Budget scales the cycle count; Eval/Coarsen
// apply to every session like the other experiments.
func SessionsSweep(designs []Design, counts []int, b Budget) ([]SessionsRow, error) {
	var rows []SessionsRow
	for _, d := range designs {
		g, _, err := d.Build(WorkloadCoreMark)
		if err != nil {
			return nil, err
		}
		spec := server.SessionSpec{Eval: b.Eval.String(), Coarsen: b.Coarsen}
		for _, n := range counts {
			mgr := server.NewManager()
			key := d.Name + "/" + WorkloadCoreMark

			// Cold create compiles; it is the cost every later session shares.
			first, err := mgr.CreateSessionGraph(g, key, spec)
			if err != nil {
				return nil, err
			}
			compileMS := float64(first.Design.CompileTime.Microseconds()) / 1000

			// Warm-cache creation rate.
			const warmCreates = 32
			start := time.Now()
			for i := 0; i < warmCreates; i++ {
				s, err := mgr.CreateSessionGraph(g, key, spec)
				if err != nil {
					return nil, err
				}
				s.Close()
			}
			createPS := warmCreates / time.Since(start).Seconds()

			// n concurrent sessions stepping batched cycles.
			sessions := []*server.Session{first}
			for len(sessions) < n {
				s, err := mgr.CreateSessionGraph(g, key, spec)
				if err != nil {
					return nil, err
				}
				sessions = append(sessions, s)
			}
			stimName := sessionStim(g)
			cycles := b.TimedCycles
			const batch = 10
			start = time.Now()
			var wg sync.WaitGroup
			errCh := make(chan error, n)
			for _, s := range sessions {
				wg.Add(1)
				go func(s *server.Session) {
					defer wg.Done()
					for c := 0; c < cycles; c += batch {
						ops := []server.Op{}
						if stimName != "" {
							ops = append(ops, server.Op{Op: "poke", Name: stimName, Value: fmt.Sprintf("%d", (c/batch)&1)})
						}
						ops = append(ops, server.Op{Op: "step", N: batch})
						if _, err := s.Apply(context.Background(), ops); err != nil {
							errCh <- err
							return
						}
					}
				}(s)
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			close(errCh)
			for err := range errCh {
				return nil, err
			}
			agg := float64(n*cycles) / elapsed / 1000

			cstats := mgr.CacheStats()
			hits, misses := cstats.Hits, cstats.Misses
			if err := mgr.Drain(context.Background()); err != nil {
				return nil, err
			}
			rows = append(rows, SessionsRow{
				Design:    d.Name,
				Sessions:  n,
				CompileMS: compileMS,
				CreatePS:  createPS,
				AggKHz:    agg,
				PerKHz:    agg / float64(n),
				HitRate:   float64(hits) / float64(hits+misses),
			})
		}
	}
	return rows, nil
}

// RenderSessions prints the sweep in the repo's table style.
func RenderSessions(w io.Writer, rows []SessionsRow) {
	fmt.Fprintf(w, "%-14s %9s %11s %11s %10s %10s %8s\n",
		"design", "sessions", "compile", "creates/s", "agg kHz", "kHz/sess", "hit%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %9.1fms %11.0f %10.1f %10.1f %7.1f%%\n",
			r.Design, r.Sessions, r.CompileMS, r.CreatePS, r.AggKHz, r.PerKHz, 100*r.HitRate)
	}
}
