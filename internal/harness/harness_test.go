package harness

import (
	"strings"
	"testing"

	"gsim/internal/core"
	"gsim/internal/gen"
)

// TestExperimentsSmoke runs every experiment end to end on the small designs
// with a tiny budget, checking structure rather than magnitudes.
func TestExperimentsSmoke(t *testing.T) {
	designs := SmallDesigns()
	b := QuickBudget()

	t.Run("table1", func(t *testing.T) {
		rows, err := Table1(designs, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(designs) {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, r := range rows {
			if r.Nodes <= 0 || r.Edges <= 0 || r.SpeedHz <= 0 {
				t.Fatalf("bad row %+v", r)
			}
		}
		var sb strings.Builder
		RenderTable1(&sb, rows)
		if !strings.Contains(sb.String(), "stucore") {
			t.Fatal("render missing design")
		}
	})

	t.Run("fig6", func(t *testing.T) {
		cells, err := Fig6(designs[:1], b)
		if err != nil {
			t.Fatal(err)
		}
		want := len(Fig6Configs()) * 2 // two workloads
		if len(cells) != want {
			t.Fatalf("got %d cells, want %d", len(cells), want)
		}
		for _, c := range cells {
			if c.Simulator == "verilator" && (c.Speedup < 0.99 || c.Speedup > 1.01) {
				t.Fatalf("baseline not normalized: %+v", c)
			}
		}
		var sb strings.Builder
		RenderFig6(&sb, cells)
		if !strings.Contains(sb.String(), "gsim") {
			t.Fatal("render missing gsim column")
		}
	})

	t.Run("gsimmt", func(t *testing.T) {
		rows, err := GSIMMTSweep(designs[:1], []int{2, 4}, b)
		if err != nil {
			t.Fatal(err)
		}
		want := 3 * 2 // baseline + two thread counts, two workloads
		if len(rows) != want {
			t.Fatalf("got %d rows, want %d", len(rows), want)
		}
		for _, r := range rows {
			if r.SpeedHz <= 0 {
				t.Fatalf("bad row %+v", r)
			}
			if r.Threads == 0 && (r.Speedup < 0.99 || r.Speedup > 1.01) {
				t.Fatalf("baseline not normalized: %+v", r)
			}
		}
		var sb strings.Builder
		RenderGSIMMT(&sb, rows)
		if !strings.Contains(sb.String(), "4T") {
			t.Fatal("render missing thread count")
		}
	})

	t.Run("fig7", func(t *testing.T) {
		rows, err := Fig7(gen.StuCoreLike(), b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(CheckpointNames) {
			t.Fatalf("got %d checkpoints", len(rows))
		}
		var sb strings.Builder
		RenderFig7(&sb, rows)
		if !strings.Contains(sb.String(), "geometric mean") {
			t.Fatal("render missing geomean")
		}
	})

	t.Run("fig8", func(t *testing.T) {
		steps, err := Fig8(designs[1:], b)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) != len(fig8Stages()) {
			t.Fatalf("got %d steps, want %d", len(steps), len(fig8Stages()))
		}
		if steps[0].Technique != "baseline" {
			t.Fatalf("first step %q", steps[0].Technique)
		}
		var sb strings.Builder
		RenderFig8(&sb, steps)
		if !strings.Contains(sb.String(), "supernode") {
			t.Fatal("render missing technique")
		}
	})

	t.Run("fig9", func(t *testing.T) {
		sizes := []int{1, 8, 64}
		pts, err := Fig9(designs[1:], sizes, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(sizes) {
			t.Fatalf("got %d points", len(pts))
		}
		SortFig9(pts)
		var sb strings.Builder
		RenderFig9(&sb, pts)
		if !strings.Contains(sb.String(), "optimum") {
			t.Fatal("render missing optimum marker")
		}
	})

	t.Run("table3", func(t *testing.T) {
		rows, err := Table3(designs[1], b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("got %d rows", len(rows))
		}
		byName := map[string]Table3Row{}
		for _, r := range rows {
			byName[r.Algorithm] = r
		}
		// Structural expectations from the paper's Table III: None has the
		// most supernodes; GSIM has fewer supernodes than MFFC.
		if byName["None"].Supernodes <= byName["GSIM"].Supernodes {
			t.Fatalf("None should have the most supernodes: %+v", rows)
		}
		var sb strings.Builder
		RenderTable3(&sb, rows)
		if !strings.Contains(sb.String(), "Kernighan") {
			t.Fatal("render missing algorithm")
		}
	})

	t.Run("table4", func(t *testing.T) {
		rows, err := Table4(designs, QuickBudget())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(designs)*4 {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, r := range rows {
			if r.CodeBytes <= 0 || r.DataBytes <= 0 || r.EmitTimeMS < 0 {
				t.Fatalf("bad row %+v", r)
			}
		}
		var sb strings.Builder
		RenderTable4(&sb, rows)
		if !strings.Contains(sb.String(), "arcilator") {
			t.Fatal("render missing simulator")
		}
	})
}

// TestWorkloadActivityDiffers checks the workload design premise: the
// hot-loop stimulus must produce a lower activity factor than the boot-like
// stimulus on the same design under GSIM.
func TestWorkloadActivityDiffers(t *testing.T) {
	d := Synthetic(gen.StuCoreLike())
	af := map[string]float64{}
	for _, wl := range []string{WorkloadCoreMark, WorkloadLinux} {
		sys, drive, err := buildSystem(d, wl, core.GSIM())
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 200; c++ {
			drive(sys.Sim, c)
			sys.Sim.Step()
		}
		af[wl] = sys.Sim.Stats().ActivityFactor()
		sys.Close()
	}
	if af[WorkloadCoreMark] >= af[WorkloadLinux] {
		t.Fatalf("coremark af (%.3f) should be below linux af (%.3f)", af[WorkloadCoreMark], af[WorkloadLinux])
	}
}

// TestCheckpointStimuliDiffer: distinct checkpoints must have distinct
// working sets (else Fig. 7 degenerates).
func TestCheckpointStimuliDiffer(t *testing.T) {
	p := gen.RocketLike()
	a := checkpointStimulus(p, 1000)
	b := checkpointStimulus(p, 1017)
	same := 0
	for c := 0; c < 64; c++ {
		if a(c).Equal(b(c)) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("two checkpoints produced identical stimulus")
	}
}
