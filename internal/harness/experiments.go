package harness

import (
	"fmt"
	"math"
	"time"

	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/partition"
)

// Budget controls how long each measurement runs, and which evaluation mode
// every measured configuration uses. The defaults keep the whole suite in
// CI-scale time; -full in cmd/gsim-bench raises them.
type Budget struct {
	WarmupCycles int
	TimedCycles  int

	// Eval is applied to every configuration the experiments build: the
	// fused kernel pipeline (zero value, default), the pre-fusion kernel
	// baseline (cmd/gsim-bench -eval kernel-nofuse), or the reference
	// interpreter (-eval interp).
	Eval engine.EvalMode

	// Coarsen applies adaptive level coarsening to every measured
	// configuration that schedules with barriers (the parallel
	// essential-signal engine); cmd/gsim-bench -coarsen sets it.
	Coarsen bool
}

// DefaultBudget is sized so every experiment completes in minutes.
func DefaultBudget() Budget { return Budget{WarmupCycles: 30, TimedCycles: 150} }

// QuickBudget is for tests.
func QuickBudget() Budget { return Budget{WarmupCycles: 5, TimedCycles: 25} }

// measure runs the driver+engine for the budget and returns simulated Hz.
func measure(sys *core.System, drive Driver, b Budget) float64 {
	for c := 0; c < b.WarmupCycles; c++ {
		drive(sys.Sim, c)
		sys.Sim.Step()
	}
	start := time.Now()
	for c := 0; c < b.TimedCycles; c++ {
		drive(sys.Sim, b.WarmupCycles+c)
		sys.Sim.Step()
	}
	el := time.Since(start)
	if el <= 0 {
		return 0
	}
	return float64(b.TimedCycles) / el.Seconds()
}

// runConfig builds and measures one (design, workload, config) cell.
func runConfig(d Design, workload string, cfg core.Config, b Budget) (float64, *core.System, error) {
	cfg.Eval = b.Eval
	if b.Coarsen {
		cfg.Activity.Coarsen = true
	}
	sys, drive, err := buildSystem(d, workload, cfg)
	if err != nil {
		return 0, nil, err
	}
	defer sys.Close()
	hz := measure(sys, drive, b)
	return hz, sys, nil
}

// --- Table I: baseline full-cycle speed vs design scale ---

// Table1Row is one design's baseline datapoint.
type Table1Row struct {
	Design  string
	Nodes   int
	Edges   int
	SpeedHz float64
}

// Table1 reproduces Table I: single-threaded full-cycle ("Verilator") speed
// for each design, with IR node and edge counts.
func Table1(designs []Design, b Budget) ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range designs {
		g, mk, err := d.Build(WorkloadLinux)
		if err != nil {
			return nil, err
		}
		stats := g.ComputeStats()
		cfg := core.Verilator()
		cfg.Eval = b.Eval
		sys, err := core.Build(g, cfg)
		if err != nil {
			return nil, err
		}
		hz := measure(sys, mk(sys.Graph), b)
		sys.Close()
		rows = append(rows, Table1Row{Design: d.Name, Nodes: stats.Nodes, Edges: stats.Edges, SpeedHz: hz})
	}
	return rows, nil
}

// --- Figure 6: overall performance ---

// Fig6Cell is one bar: a simulator's speedup over single-thread Verilator.
type Fig6Cell struct {
	Design    string
	Workload  string
	Simulator string
	SpeedHz   float64
	Speedup   float64
}

// Fig6Configs lists the simulators in the figure's legend order, extended
// with the multi-threaded GSIM variants.
func Fig6Configs() []core.Config {
	return []core.Config{
		core.Verilator(),
		core.VerilatorMT(2),
		core.VerilatorMT(4),
		core.VerilatorMT(8),
		core.VerilatorMT(16),
		core.Essent(),
		core.Arcilator(),
		core.GSIM(),
		core.GSIMMT(2),
		core.GSIMMT(4),
		core.GSIMMT(8),
	}
}

// Fig6 reproduces the overall-performance figure: every simulator on every
// design × workload, normalized to single-thread Verilator.
func Fig6(designs []Design, b Budget) ([]Fig6Cell, error) {
	var cells []Fig6Cell
	for _, d := range designs {
		for _, wl := range []string{WorkloadLinux, WorkloadCoreMark} {
			base := 0.0
			for _, cfg := range Fig6Configs() {
				hz, _, err := runConfig(d, wl, cfg, b)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %v", d.Name, wl, cfg.Name, err)
				}
				if cfg.Name == "verilator" {
					base = hz
				}
				sp := 0.0
				if base > 0 {
					sp = hz / base
				}
				cells = append(cells, Fig6Cell{
					Design: d.Name, Workload: wl, Simulator: cfg.Name,
					SpeedHz: hz, Speedup: sp,
				})
			}
		}
	}
	return cells, nil
}

// --- GSIMMT: multi-threaded essential-signal thread sweep ---

// GSIMMTRow is one (design, workload, thread-count) datapoint of the GSIMMT
// sweep, normalized to single-threaded GSIM on the same cell.
type GSIMMTRow struct {
	Design   string
	Workload string
	Threads  int // 0 marks the single-threaded GSIM baseline
	SpeedHz  float64
	Speedup  float64
}

// GSIMMTSweep measures the parallel essential-signal engine across thread
// counts — the Fig. 6 thread-sweep shape applied to GSIM itself. Like
// Verilator-MT, small designs pay the barrier cost and large designs win.
func GSIMMTSweep(designs []Design, threadCounts []int, b Budget) ([]GSIMMTRow, error) {
	var rows []GSIMMTRow
	for _, d := range designs {
		for _, wl := range []string{WorkloadLinux, WorkloadCoreMark} {
			base, _, err := runConfig(d, wl, core.GSIM(), b)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/gsim: %v", d.Name, wl, err)
			}
			rows = append(rows, GSIMMTRow{Design: d.Name, Workload: wl, SpeedHz: base, Speedup: 1})
			for _, th := range threadCounts {
				hz, _, err := runConfig(d, wl, core.GSIMMT(th), b)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/gsim-%dT: %v", d.Name, wl, th, err)
				}
				sp := 0.0
				if base > 0 {
					sp = hz / base
				}
				rows = append(rows, GSIMMTRow{
					Design: d.Name, Workload: wl, Threads: th, SpeedHz: hz, Speedup: sp,
				})
			}
		}
	}
	return rows, nil
}

// --- Coarsening: schedule delta and throughput, barriers on vs merged ---

// CoarsenRow is one (design, workload, threads) comparison of the GSIMMT
// schedule with and without adaptive level coarsening: the schedule delta
// (levels == barriers per cycle, before and after merging) plus the measured
// throughput of both.
type CoarsenRow struct {
	Design     string
	Workload   string
	Threads    int
	LevelsOff  int // barrier levels without coarsening (== OrigLevels)
	LevelsOn   int // barrier levels of the coarsened schedule
	SpeedOffHz float64
	SpeedOnHz  float64
	Speedup    float64 // coarsened / uncoarsened
}

// CoarsenSweep measures adaptive level coarsening across thread counts: for
// every (design, workload, threads) cell it builds the parallel
// essential-signal engine twice — barriers at every dependence level, and the
// merged schedule — and reports the schedule delta with both throughputs.
func CoarsenSweep(designs []Design, threadCounts []int, b Budget) ([]CoarsenRow, error) {
	var rows []CoarsenRow
	for _, d := range designs {
		for _, wl := range []string{WorkloadLinux, WorkloadCoreMark} {
			for _, th := range threadCounts {
				row := CoarsenRow{Design: d.Name, Workload: wl, Threads: th}
				for _, on := range []bool{false, true} {
					cfg := core.GSIMMT(th)
					cfg.Eval = b.Eval
					cfg.Activity.Coarsen = on
					sys, drive, err := buildSystem(d, wl, cfg)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%dT: %v", d.Name, wl, th, err)
					}
					hz := measure(sys, drive, b)
					pa, ok := sys.Sim.(*engine.ParallelActivity)
					if !ok {
						sys.Close()
						return nil, fmt.Errorf("%s/%s/%dT: engine is not ParallelActivity", d.Name, wl, th)
					}
					sv := pa.Shard()
					if on {
						row.LevelsOn = sv.Levels
						row.SpeedOnHz = hz
					} else {
						row.LevelsOff = sv.Levels
						row.SpeedOffHz = hz
					}
					sys.Close()
				}
				if row.SpeedOffHz > 0 {
					row.Speedup = row.SpeedOnHz / row.SpeedOffHz
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// --- Figure 7: SPEC CPU2006 checkpoints ---

// Fig7Row is one checkpoint's speedups.
type Fig7Row struct {
	Checkpoint string
	Vs1T       float64 // GSIM vs Verilator 1T
	V4T        float64 // Verilator-4T vs 1T
	V8T        float64 // Verilator-8T vs 1T
}

// CheckpointNames mirrors the benchmarks in the paper's Fig. 7.
var CheckpointNames = []string{
	"perlbench_diffmail", "bzip2_chicken", "mcf", "gobmk_13x13",
	"hmmer_retro", "libquantum", "h264ref_sss", "omnetpp",
	"xalancbmk", "bwaves", "GemsFDTD", "lbm",
}

// Fig7 reproduces the checkpoint study on the largest design: each named
// checkpoint is a stimulus segment with its own working set; speeds are
// normalized to single-thread Verilator per checkpoint.
func Fig7(p gen.Profile, b Budget) ([]Fig7Row, error) {
	g := gen.BuildProfile(p)
	stim := func(g2 *core.System, seed int64) Driver {
		n := g2.Graph.FindNode("stim")
		next := checkpointStimulus(p, seed)
		return func(sim engine.Sim, cycle int) { sim.Poke(n.ID, next(cycle)) }
	}
	var rows []Fig7Row
	for i, name := range CheckpointNames {
		seed := int64(1000 + i*17)
		speed := map[string]float64{}
		for _, cfg := range []core.Config{core.Verilator(), core.VerilatorMT(4), core.VerilatorMT(8), core.GSIM()} {
			cfg.Eval = b.Eval
			sys, err := core.Build(g, cfg)
			if err != nil {
				return nil, err
			}
			speed[cfg.Name] = measure(sys, stim(sys, seed), b)
			sys.Close()
		}
		base := speed["verilator"]
		rows = append(rows, Fig7Row{
			Checkpoint: name,
			Vs1T:       speed["gsim"] / base,
			V4T:        speed["verilator-4T"] / base,
			V8T:        speed["verilator-8T"] / base,
		})
	}
	return rows, nil
}

// --- Figure 8: per-technique breakdown ---

// Fig8Step is one incremental technique measurement.
type Fig8Step struct {
	Design    string
	Technique string
	SpeedHz   float64
	Log10Gain float64 // log10(P_i / P_{i-1}), the bar height in the figure
}

// fig8Stages applies the paper's techniques cumulatively, in the legend
// order of Fig. 8. The baseline is the essential-signal engine with
// single-node supernodes and no graph optimization (Listing 2).
func fig8Stages() []struct {
	Name string
	Cfg  func() core.Config
} {
	baseline := func() core.Config {
		return core.Config{
			Engine:    core.EngineActivity,
			Partition: partition.None,
			Activity:  engine.ActivityConfig{Activation: engine.ActBranch},
		}
	}
	stage := func(mod func(*core.Config)) func() core.Config {
		return func() core.Config {
			c := baseline()
			mod(&c)
			return c
		}
	}
	// Each stage includes all previous ones.
	withSimplify := func(c *core.Config) { c.Opt.Simplify = true }
	withRedundant := func(c *core.Config) { withSimplify(c); c.Opt.Redundant = true }
	withInline := func(c *core.Config) { withRedundant(c); c.Opt.Inline = true }
	withSupernode := func(c *core.Config) { withInline(c); c.Partition = partition.Enhanced }
	withExtract := func(c *core.Config) { withSupernode(c); c.Opt.Extract = true }
	withReset := func(c *core.Config) { withExtract(c); c.Opt.ResetOpt = true }
	withMultiBit := func(c *core.Config) { withReset(c); c.Activity.MultiBitCheck = true }
	withActOpt := func(c *core.Config) { withMultiBit(c); c.Activity.Activation = engine.ActCostModel }
	withBitSplit := func(c *core.Config) { withActOpt(c); c.Opt.BitSplit = true }

	return []struct {
		Name string
		Cfg  func() core.Config
	}{
		{"baseline", baseline},
		{"expression simplification", stage(withSimplify)},
		{"redundant node elimination", stage(withRedundant)},
		{"node inline", stage(withInline)},
		{"supernode", stage(withSupernode)},
		{"node extraction", stage(withExtract)},
		{"reset handling optimization", stage(withReset)},
		{"checking multiple active bits", stage(withMultiBit)},
		{"activation overhead optimization", stage(withActOpt)},
		{"node splitting at bit level", stage(withBitSplit)},
	}
}

// Fig8 reproduces the performance breakdown: techniques applied
// incrementally, reporting log10 speedup per step.
func Fig8(designs []Design, b Budget) ([]Fig8Step, error) {
	var steps []Fig8Step
	for _, d := range designs {
		prev := 0.0
		for _, st := range fig8Stages() {
			cfg := st.Cfg()
			cfg.Name = st.Name
			hz, _, err := runConfig(d, WorkloadCoreMark, cfg, b)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", d.Name, st.Name, err)
			}
			gain := 0.0
			if prev > 0 && hz > 0 {
				gain = log10(hz / prev)
			}
			steps = append(steps, Fig8Step{Design: d.Name, Technique: st.Name, SpeedHz: hz, Log10Gain: gain})
			prev = hz
		}
	}
	return steps, nil
}

// --- Figure 9: maximum supernode size sweep ---

// Fig9Point is one (design, size) speed sample.
type Fig9Point struct {
	Design  string
	MaxSize int
	SpeedHz float64
	Speedup float64 // normalized to the design's size-32 point
}

// Fig9Sizes spans the paper's 0-400 sweep, with extra resolution at the
// small end where this implementation's optimum sits (see EXPERIMENTS.md:
// interpreted evaluation shifts the optimum far below the paper's 20-50).
var Fig9Sizes = []int{1, 2, 4, 8, 16, 32, 50, 100, 150, 200, 300, 400}

// Fig9 reproduces the supernode-size study: GSIM with every optimization
// on, sweeping the maximum supernode size.
func Fig9(designs []Design, sizes []int, b Budget) ([]Fig9Point, error) {
	var pts []Fig9Point
	for _, d := range designs {
		speeds := make([]float64, len(sizes))
		for i, size := range sizes {
			cfg := core.GSIM()
			cfg.MaxSupernode = size
			hz, _, err := runConfig(d, WorkloadCoreMark, cfg, b)
			if err != nil {
				return nil, err
			}
			speeds[i] = hz
		}
		// Normalize to the size-32-nearest point (the paper normalizes
		// within each curve; size 32 sits mid-sweep for both).
		base := speeds[0]
		for i, size := range sizes {
			if size <= 32 {
				base = speeds[i]
			}
		}
		for i, size := range sizes {
			pts = append(pts, Fig9Point{Design: d.Name, MaxSize: size, SpeedHz: speeds[i], Speedup: speeds[i] / base})
		}
	}
	return pts, nil
}

// --- Table III: partitioning algorithm comparison ---

// Table3Row is one partitioning algorithm's metrics.
type Table3Row struct {
	Algorithm   string
	PartitionMS float64
	Supernodes  int
	Activations uint64
	ActiveNodes uint64
	SpeedHz     float64
}

// Table3 reproduces the partitioning comparison: each algorithm on the
// BOOM-scale design running the CoreMark workload, all other optimizations
// disabled (as in the paper).
func Table3(d Design, b Budget) ([]Table3Row, error) {
	// Each algorithm runs under its own optimal size parameter, as the paper
	// does ("under their own optimal parameters"): the enhanced partitioner's
	// optimum sits lower here because interpreted node evaluation is costlier
	// relative to bit examination than the paper's emitted C++ (see Fig. 9).
	algos := []struct {
		name string
		kind partition.Kind
		size int
	}{
		{"None", partition.None, 1},
		{"Kernighan", partition.Kernighan, 16},
		{"MFFC-based", partition.MFFC, 32},
		{"GSIM", partition.Enhanced, 4},
	}
	var rows []Table3Row
	for _, a := range algos {
		cfg := core.Config{
			Name:         "part-" + a.name,
			Engine:       core.EngineActivity,
			Partition:    a.kind,
			MaxSupernode: a.size,
			Activity:     engine.ActivityConfig{Activation: engine.ActBranch},
			Eval:         b.Eval,
		}
		sys, drive, err := buildSystem(d, WorkloadCoreMark, cfg)
		if err != nil {
			return nil, err
		}
		hz := measure(sys, drive, b)
		st := sys.Sim.Stats()
		cycles := st.Cycles
		rows = append(rows, Table3Row{
			Algorithm:   a.name,
			PartitionMS: float64(sys.Part.BuildTime.Microseconds()) / 1000,
			Supernodes:  sys.Part.Count(),
			Activations: st.Activations / cycles,
			ActiveNodes: st.NodeEvals / cycles,
			SpeedHz:     hz,
		})
		sys.Close()
	}
	return rows, nil
}

// --- Table IV: resource usage ---

// Table4Row is one (design, simulator) resource measurement.
type Table4Row struct {
	Design     string
	Simulator  string
	EmitTimeMS float64
	CodeBytes  int
	DataBytes  int
}

// Table4 reproduces the resource comparison: emission time (full build:
// passes + compile, including the kernel table in kernel mode), code size
// (compiled instruction bytes), and data size (state image bytes, memories
// excluded) per design and simulator.
func Table4(designs []Design, b Budget) ([]Table4Row, error) {
	cfgs := []core.Config{core.Verilator(), core.Essent(), core.Arcilator(), core.GSIM()}
	var rows []Table4Row
	for _, d := range designs {
		for _, cfg := range cfgs {
			cfg.Eval = b.Eval
			g, _, err := d.Build(WorkloadLinux)
			if err != nil {
				return nil, err
			}
			sys, err := core.Build(g, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Design:     d.Name,
				Simulator:  cfg.Name,
				EmitTimeMS: float64(sys.BuildTime.Microseconds()) / 1000,
				CodeBytes:  sys.Prog.CodeBytes(),
				DataBytes:  sys.Prog.DataBytes(),
			})
			sys.Close()
		}
	}
	return rows, nil
}

func log10(x float64) float64 { return math.Log10(x) }
