package passes

import "gsim/internal/ir"

// hoistResets implements the paper's reset handling optimization
// (Listing 5 → Listing 6): a register whose next-value expression is
// mux(rst, init, e) — with rst a 1-bit signal and init the register's
// initial value — is rewritten to compute just e on the fast path. The
// reset signal is recorded on the register (ir.Node.ResetSig); engines then
// check each distinct reset signal once per cycle and force the init value
// at commit time, reducing reset checks from the number of registers with a
// reset port to the number of reset signals in the design.
//
// The transformation is exact: with the slow path applied at end of cycle,
// the register's committed value when rst is high is init — the same value
// the mux would have produced.
func hoistResets(g *ir.Graph) int {
	count := 0
	for _, n := range g.Nodes {
		if n == nil || n.Kind != ir.KindReg || n.ResetSig != nil {
			continue
		}
		mux, wrap := unwrapPad(n.Expr)
		if mux == nil || mux.Op != ir.OpMux {
			continue
		}
		sel, t, f := mux.Args[0], mux.Args[1], mux.Args[2]
		// Only top-level input resets are hoisted: the activity engine must
		// observe the signal's transitions at poke time to re-arm the
		// registers when reset deasserts. A derived (combinational) reset
		// would settle mid-sweep, too late for an exact same-cycle update.
		if sel.Op != ir.OpRef || sel.Node.Width != 1 || sel.Node.Kind != ir.KindInput {
			continue
		}
		if t.Op != ir.OpConst {
			continue
		}
		// The hoisted value must equal the register's initial value, or the
		// power-on state would change.
		initv := n.Init
		if initv.Width == 0 {
			initv = ir.ZeroInit(n)
		}
		tv := t.Imm
		if !tv.EqValue(initv) {
			continue
		}
		n.ResetSig = sel.Node
		next := f
		if wrap {
			next = fit(next, n.Width)
		}
		n.Expr = fit(next, n.Width)
		count++
	}
	return count
}

// unwrapPad looks through a possible width-fitting Pad around the reset mux
// and reports whether one was present.
func unwrapPad(e *ir.Expr) (*ir.Expr, bool) {
	if e.Op == ir.OpPad {
		return e.Args[0], true
	}
	return e, false
}
