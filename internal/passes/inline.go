package passes

import (
	"fmt"
	"sort"

	"gsim/internal/ir"
)

// inlineNodes dissolves combinational nodes into their readers when the
// paper's cost model says duplication is cheaper than keeping the node:
// inline when cost(f)·#refs ≤ cost(f) + cost_node (§III-B). Expressions
// larger than maxCost are never duplicated.
//
// Decisions are made in topological order with fully resolved expressions,
// so an inlined node's expression already reflects earlier inlining (its
// true post-substitution cost).
func inlineNodes(g *ir.Graph, costNode, maxCost int) int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	keep := keepAlive(g)

	// Reference occurrence counts (not distinct readers — every occurrence
	// re-evaluates the inlined expression).
	refs := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op == ir.OpRef {
					refs[e.Node.ID]++
				}
			})
		})
	}

	inlined := map[*ir.Node]*ir.Expr{}
	resolve := func(slot **ir.Expr) {
		ir.WalkPtr(slot, func(pe **ir.Expr) bool {
			e := *pe
			if e.Op == ir.OpRef {
				if repl, ok := inlined[e.Node]; ok {
					*pe = repl.Clone()
					return false // replacement is already fully resolved
				}
			}
			return true
		})
	}

	count := 0
	for _, id := range order {
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		// Resolve references to already-inlined nodes first so this node's
		// cost reflects the substitutions.
		n.EachExpr(resolve)
		if keep[n] || n.Kind != ir.KindComb {
			continue
		}
		k := refs[n.ID]
		if k == 0 {
			continue // dead; DCE's business
		}
		c := n.Expr.Cost()
		if c > maxCost {
			continue
		}
		// The paper's trade-off: keeping the node costs c + cost_node;
		// inlining costs c per reference.
		if c*k <= c+costNode {
			inlined[n] = n.Expr
			g.Nodes[n.ID] = nil
			count++
		}
	}
	if count == 0 {
		return 0
	}
	// A final resolve over all remaining nodes catches references from nodes
	// positioned before their inlined successors in the walk above (register
	// readers, which topological order does not constrain).
	for _, n := range g.Nodes {
		if n != nil {
			n.EachExpr(resolve)
		}
	}
	return count
}

// extractCommon is the opposite direction: common subexpressions whose
// repeated evaluation costs more than a dedicated node are extracted into
// one (§III-B node extraction). Uses structural value numbering; chosen
// subexpressions become new combinational nodes and every occurrence is
// replaced by a reference.
func extractCommon(g *ir.Graph, costNode int) int {
	type vnInfo struct {
		expr  *ir.Expr // representative
		count int
		cost  int
	}
	table := map[uint64]*vnInfo{}

	// Count structurally identical non-trivial subexpressions.
	var scan func(e *ir.Expr)
	scan = func(e *ir.Expr) {
		for _, a := range e.Args {
			scan(a)
		}
		if e.Op == ir.OpRef || e.Op == ir.OpConst {
			return
		}
		h := e.Hash()
		if info, ok := table[h]; ok && ir.StructEq(info.expr, e) {
			info.count++
			return
		}
		if _, ok := table[h]; !ok {
			table[h] = &vnInfo{expr: e, count: 1, cost: e.Cost()}
		}
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) { scan(*slot) })
	}

	// Candidates worth extracting: cost·k > cost + cost_node.
	var chosen []*vnInfo
	for _, info := range table {
		if info.count >= 2 && info.cost*info.count > info.cost+costNode {
			chosen = append(chosen, info)
		}
	}
	if len(chosen) == 0 {
		return 0
	}
	// Materialize larger expressions first so smaller chosen subexpressions
	// can still be referenced inside them. Ties break on the canonical
	// rendering, never on map-iteration order: extraction order names the
	// _cse nodes and therefore fixes the compiled program's layout, which
	// must be bit-identical across builds and processes (design hashing,
	// snapshot compatibility, the compiled-design cache all depend on it).
	// Expr.Hash cannot serve here — maphash seeds differ per process.
	keys := make(map[*vnInfo]string, len(chosen))
	for _, info := range chosen {
		keys[info] = fmt.Sprintf("%d:%s", info.expr.Width, info.expr)
	}
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].cost != chosen[j].cost {
			return chosen[i].cost > chosen[j].cost
		}
		return keys[chosen[i]] < keys[chosen[j]]
	})

	newNode := map[uint64]*ir.Node{}
	replace := func(slot **ir.Expr, self *ir.Node) {
		ir.WalkPtr(slot, func(pe **ir.Expr) bool {
			e := *pe
			if e.Op == ir.OpRef || e.Op == ir.OpConst {
				return false
			}
			if nn, ok := newNode[e.Hash()]; ok && nn != self && ir.StructEq(nn.Expr, e) {
				*pe = ir.Ref(nn)
				return false
			}
			return true
		})
	}
	count := 0
	for _, info := range chosen {
		h := info.expr.Hash()
		if _, dup := newNode[h]; dup {
			continue
		}
		n := g.AddNode(&ir.Node{
			Name:  "_cse" + itoa(count),
			Kind:  ir.KindComb,
			Width: info.expr.Width,
			Expr:  info.expr.Clone(),
		})
		newNode[h] = n
		count++
	}
	// Rewrite every node, including the new CSE nodes (nesting), skipping
	// each node's own defining expression root.
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		self := n
		n.EachExpr(func(slot **ir.Expr) {
			// Do not replace the root of a CSE node with a ref to itself.
			if nn, ok := newNode[(*slot).Hash()]; ok && nn == self {
				for i := range (*slot).Args {
					replace(&(*slot).Args[i], self)
				}
				return
			}
			replace(slot, self)
		})
	}
	return count
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
