package passes

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
)

// --- Simplify ---

func simplified(t *testing.T, e *ir.Expr) *ir.Expr {
	t.Helper()
	r, _ := simplifyExpr(e, true)
	return r
}

func TestSimplifyOneHot(t *testing.T) {
	// The paper's §III-B example: bits(dshl(1, a), k, k) → eq(a, k).
	b := ir.NewBuilder("oh")
	a := b.Input("a", 3)
	e := b.Bit(b.DshlFull(b.C(1, 1), b.R(a)), 5)
	r := simplified(t, e)
	if r.Op != ir.OpEq {
		t.Fatalf("one-hot pattern not recognized: %s", r)
	}
	if r.Args[1].Op != ir.OpConst || r.Args[1].Imm.Uint64() != 5 {
		t.Fatalf("wrong comparison constant: %s", r)
	}
	// Out-of-range bit is constant false.
	e2 := b.Bit(b.Fit(b.DshlFull(b.C(1, 1), b.R(a)), 16), 12)
	r2 := simplified(t, e2)
	if r2.Op != ir.OpConst || !r2.Imm.IsZero() {
		t.Fatalf("unreachable one-hot bit should fold to 0: %s", r2)
	}
}

func TestSimplifyAlgebra(t *testing.T) {
	b := ir.NewBuilder("alg")
	a := b.Input("a", 8)
	cases := []struct {
		name string
		in   *ir.Expr
		want func(e *ir.Expr) bool
	}{
		{"add-zero", b.Add(b.R(a), b.C(8, 0)), func(e *ir.Expr) bool { return e.Op == ir.OpPad && e.Args[0].Op == ir.OpRef }},
		{"sub-self", b.Sub(b.R(a), b.R(a)), func(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.IsZero() }},
		{"mul-zero", b.Mul(b.R(a), b.C(8, 0)), func(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.IsZero() }},
		{"and-ones", b.And(b.R(a), b.CB(bitvec.FromUint64(8, 0xff))), func(e *ir.Expr) bool { return e.Op == ir.OpRef }},
		{"xor-self", b.Xor(b.R(a), b.R(a)), func(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.IsZero() }},
		{"not-not", b.Not(b.Not(b.R(a))), func(e *ir.Expr) bool { return e.Op == ir.OpRef }},
		{"eq-self", b.Eq(b.R(a), b.R(a)), func(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.Uint64() == 1 }},
		{"mux-same", b.Mux(b.Fit(b.R(a), 1), b.R(a), b.R(a)), func(e *ir.Expr) bool { return e.Op != ir.OpMux }},
		{"fold", b.Add(b.C(8, 3), b.C(8, 4)), func(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.Uint64() == 7 }},
		{"bits-full", b.Bits(b.R(a), 7, 0), func(e *ir.Expr) bool { return e.Op == ir.OpRef }},
		{"bits-of-bits", b.Bits(b.Bits(b.R(a), 6, 1), 3, 2), func(e *ir.Expr) bool {
			return e.Op == ir.OpBits && e.Hi == 4 && e.Lo == 3
		}},
		{"shl-zero", b.Shl(b.R(a), 0), func(e *ir.Expr) bool { return e.Op == ir.OpRef }},
		{"mux-const-sel", ir.MuxOf(b.C(1, 1), b.R(a), b.C(8, 0)), func(e *ir.Expr) bool { return e.Op == ir.OpRef }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := c.in.Width
			r := simplified(t, c.in)
			if r.Width != w {
				t.Fatalf("width changed: %d -> %d", w, r.Width)
			}
			if !c.want(r) {
				t.Fatalf("unexpected rewrite: %s", r)
			}
		})
	}
}

func TestSimplifyBitsOfCat(t *testing.T) {
	b := ir.NewBuilder("bc")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	// bits(cat(x, y), 3, 0) → bits(y, 3, 0)
	r := simplified(t, b.Bits(b.Cat(b.R(x), b.R(y)), 3, 0))
	if r.Op != ir.OpBits || r.Args[0].Op != ir.OpRef || r.Args[0].Node != y {
		t.Fatalf("low slice of cat: %s", r)
	}
	// bits(cat(x, y), 15, 8) → x
	r2 := simplified(t, b.Bits(b.Cat(b.R(x), b.R(y)), 15, 8))
	if r2.Op != ir.OpRef || r2.Node != x {
		t.Fatalf("high slice of cat: %s", r2)
	}
}

// --- Redundant elimination ---

func TestAliasElimination(t *testing.T) {
	b := ir.NewBuilder("al")
	a := b.Input("a", 8)
	w1 := b.Comb("w1", b.R(a))  // alias of a
	w2 := b.Comb("w2", b.R(w1)) // alias of alias
	out := b.Output("o", b.Add(b.R(w2), b.C(8, 1)))
	removed := eliminateAliases(b.G)
	if removed != 2 {
		t.Fatalf("removed %d aliases, want 2", removed)
	}
	if !out.Expr.Args[0].RefersTo(a) && out.Expr.Args[0].Op != ir.OpRef {
		t.Fatalf("output not redirected: %s", out.Expr)
	}
}

func TestDeadAndUnusedRegElimination(t *testing.T) {
	b := ir.NewBuilder("dce")
	a := b.Input("a", 8)
	live := b.Comb("live", b.Not(b.R(a)))
	b.Output("o", b.R(live))
	b.Comb("dead", b.Add(b.R(a), b.C(8, 1)))
	// Self-updating register unused by anything else (paper Fig. 2 ❹).
	r := b.Reg("unused_reg", 8)
	b.SetNext(r, b.Add(b.R(r), b.C(8, 1)))
	removed := eliminateDead(b.G)
	if removed != 2 {
		t.Fatalf("removed %d nodes, want 2 (dead comb + unused reg)", removed)
	}
	if b.G.FindNode("dead") != nil || b.G.FindNode("unused_reg") != nil {
		t.Fatal("dead nodes still present")
	}
	if b.G.FindNode("live") == nil || b.G.FindNode("a") == nil {
		t.Fatal("live nodes removed")
	}
}

func TestMemLiveness(t *testing.T) {
	b := ir.NewBuilder("mem")
	a := b.Input("a", 4)
	m1 := b.Mem("m1", 16, 8)
	m2 := b.Mem("m2", 16, 8)
	rd := b.MemRead("rd", m1, b.R(a))
	b.MemWrite("w1", m1, b.R(a), b.R(rd), b.C(1, 1))
	// m2 written but never read: its write port is dead.
	b.MemWrite("w2", m2, b.R(a), b.Fit(b.R(a), 8), b.C(1, 1))
	b.Output("o", b.R(rd))
	eliminateDead(b.G)
	if b.G.FindNode("w1") == nil {
		t.Fatal("live memory write removed")
	}
	if b.G.FindNode("w2") != nil {
		t.Fatal("write to never-read memory kept")
	}
}

func TestShortedNodeElimination(t *testing.T) {
	// Fig. 2 ❸: G = mux(D, E+1, F) with D = const 1 discards F.
	b := ir.NewBuilder("sh")
	e := b.Input("E", 8)
	f := b.Comb("F", b.Not(b.R(e)))
	g := b.Comb("G", b.Mux(b.C(1, 1), b.AddW(b.R(e), b.C(8, 1), 8), b.R(f)))
	b.Output("o", b.R(g))
	simplifyGraph(b.G, true)
	eliminateAliases(b.G)
	eliminateDead(b.G)
	if b.G.FindNode("F") != nil {
		t.Fatal("shorted node F survived")
	}
}

// --- Inline / extract ---

func TestInlineCostModel(t *testing.T) {
	b := ir.NewBuilder("inl")
	a := b.Input("a", 8)
	// Cheap node referenced twice: cost 1, k=2 → 2 <= 1+2, inline.
	cheap := b.Comb("cheap", b.Not(b.R(a)))
	// Expensive node referenced 4 times: cost 6 (div), 24 > 8, keep.
	exp := b.Comb("exp", b.Div(b.R(a), b.C(8, 3)))
	sum := b.Comb("s1", b.Add(b.R(cheap), b.R(cheap)))
	s2 := b.Comb("s2", b.Add(b.Add(b.R(exp), b.R(exp)), b.Add(b.R(exp), b.R(exp))))
	b.Output("o", b.Add(b.R(sum), b.R(s2)))
	n := inlineNodes(b.G, DefaultCostNode, DefaultMaxInlineCost)
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	if b.G.FindNode("cheap") != nil {
		t.Fatal("cheap node should be inlined away")
	}
	if b.G.FindNode("exp") == nil {
		t.Fatal("expensive shared node should be kept")
	}
}

func TestExtractCommon(t *testing.T) {
	b := ir.NewBuilder("cse")
	a := b.Input("a", 16)
	c := b.Input("b", 16)
	mk := func() *ir.Expr { return b.Mul(b.Fit(b.R(a), 16), b.Fit(b.R(c), 16)) }
	b.Output("o1", b.Add(mk(), b.C(32, 1)))
	b.Output("o2", b.Add(mk(), b.C(32, 2)))
	b.Output("o3", b.Sub(mk(), b.C(32, 3)))
	n := extractCommon(b.G, DefaultCostNode)
	if n != 1 {
		t.Fatalf("extracted %d, want 1", n)
	}
	// The multiply should now exist exactly once in the graph.
	muls := 0
	for _, node := range b.G.Live() {
		node.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				if e.Op == ir.OpMul {
					muls++
				}
			})
		})
	}
	if muls != 1 {
		t.Fatalf("%d multiplies after CSE, want 1", muls)
	}
}

// --- Reset hoisting ---

func TestResetHoisting(t *testing.T) {
	b := ir.NewBuilder("rst")
	rst := b.Input("reset", 1)
	d := b.Input("d", 8)
	r := b.RegInit("r", 8, bitvec.FromUint64(8, 0x5a))
	b.SetNext(r, b.Mux(b.R(rst), b.C(8, 0x5a), b.R(d)))
	b.Output("o", b.R(r))
	n := hoistResets(b.G)
	if n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	if r.ResetSig == nil || r.ResetSig.Name != "reset" {
		t.Fatal("reset signal not recorded")
	}
	if r.Expr.RefersTo(rst) {
		t.Fatal("reset still in fast path")
	}
}

func TestResetHoistRequiresInitMatch(t *testing.T) {
	b := ir.NewBuilder("rst2")
	rst := b.Input("reset", 1)
	d := b.Input("d", 8)
	r := b.RegInit("r", 8, bitvec.FromUint64(8, 1))
	// Mux constant (7) differs from init (1): hoisting would change
	// power-on state, must be refused.
	b.SetNext(r, b.Mux(b.R(rst), b.C(8, 7), b.R(d)))
	b.Output("o", b.R(r))
	if n := hoistResets(b.G); n != 0 {
		t.Fatalf("hoisted %d, want 0 (init mismatch)", n)
	}
}

func TestResetHoistRequiresInputSignal(t *testing.T) {
	b := ir.NewBuilder("rst3")
	x := b.Input("x", 8)
	derived := b.Comb("derived_rst", b.Eq(b.R(x), b.C(8, 0)))
	d := b.Input("d", 8)
	r := b.Reg("r", 8)
	b.SetNext(r, b.Mux(b.R(derived), b.C(8, 0), b.R(d)))
	b.Output("o", b.R(r))
	if n := hoistResets(b.G); n != 0 {
		t.Fatalf("hoisted %d, want 0 (derived reset)", n)
	}
}

// --- Bit-level splitting ---

// TestBitSplitPaperExample reproduces the paper's Fig. 4: D = cat(C, B, A),
// E = not(D), F = bits(E, 1, 0), G = bits(E, 5, 2). After splitting, G must
// no longer transitively depend on A.
func TestBitSplitPaperExample(t *testing.T) {
	b := ir.NewBuilder("fig4")
	a := b.Input("A", 2)
	bb := b.Input("B", 2)
	c := b.Input("C", 2)
	d := b.Comb("D", b.CatAll(b.R(c), b.R(bb), b.R(a)))
	e := b.Comb("E", b.Not(b.R(d)))
	f := b.Comb("F", b.Bits(b.R(e), 1, 0))
	g := b.Comb("G", b.Bits(b.R(e), 5, 2))
	b.MarkOutput(f)
	b.MarkOutput(g)
	split := bitSplit(b.G, DefaultMaxSplitParts)
	if split < 2 {
		t.Fatalf("split %d nodes, want >= 2 (D and E)", split)
	}
	simplifyGraph(b.G, true)
	eliminateAliases(b.G)
	eliminateDead(b.G)
	b.G.Compact()
	// Reachability: walk G's transitive predecessors; A must not appear.
	seen := map[*ir.Node]bool{}
	var stack []*ir.Node
	stack = append(stack, g)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(x *ir.Expr) {
				if x.Op == ir.OpRef && !seen[x.Node] {
					seen[x.Node] = true
					stack = append(stack, x.Node)
				}
			})
		})
	}
	if seen[a] {
		t.Fatal("G still depends on A after bit splitting (Fig. 4 violated)")
	}
	if !seen[bb] || !seen[c] {
		t.Fatal("G lost its real dependencies")
	}
}

func TestBitSplitRejectsArithmetic(t *testing.T) {
	b := ir.NewBuilder("ns")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	d := b.Comb("D", b.AddW(b.R(x), b.R(y), 8)) // carries cross bits: not splittable
	f := b.Comb("F", b.Bits(b.R(d), 3, 0))
	g := b.Comb("G", b.Bits(b.R(d), 7, 4))
	b.MarkOutput(f)
	b.MarkOutput(g)
	if n := bitSplit(b.G, DefaultMaxSplitParts); n != 0 {
		t.Fatalf("split %d arithmetic nodes, want 0", n)
	}
}

// --- Normalize ---

func TestNormalizeSingleOpForm(t *testing.T) {
	b := ir.NewBuilder("nm")
	a := b.Input("a", 8)
	b.Output("o", b.Add(b.Not(b.R(a)), b.Mul(b.Fit(b.R(a), 8), b.C(8, 3))))
	created := Normalize(b.G)
	if created == 0 {
		t.Fatal("nothing normalized")
	}
	for _, n := range b.G.Live() {
		n.EachExpr(func(slot **ir.Expr) {
			if (*slot).CountOps() > 1 {
				t.Fatalf("node %s still has %d ops", n.Name, (*slot).CountOps())
			}
		})
	}
	if again := Normalize(b.G); again != 0 {
		t.Fatalf("Normalize not idempotent: created %d more", again)
	}
}

// --- Semantics preservation (pass-level differential test) ---

// TestPassesPreserveSemantics runs every pass combination on random circuits
// and compares golden-model trajectories of the optimized and unoptimized
// graphs.
func TestPassesPreserveSemantics(t *testing.T) {
	combos := []Options{
		{Simplify: true},
		{Redundant: true},
		{Simplify: true, Redundant: true, Inline: true},
		{Simplify: true, Redundant: true, Extract: true},
		{ResetOpt: true},
		{BitSplit: true, Simplify: true, Redundant: true},
		All(),
	}
	for seed := int64(10); seed < 14; seed++ {
		g := gen.Random(seed, gen.DefaultRandomConfig())
		ref, err := engine.NewReference(g)
		if err != nil {
			t.Fatal(err)
		}
		var optimized []*engine.Reference
		var names []string
		for ci, opts := range combos {
			og := g.Clone()
			Normalize(og)
			Run(og, opts)
			if err := og.Validate(); err != nil {
				t.Fatalf("combo %d: invalid after passes: %v", ci, err)
			}
			r2, err := engine.NewReference(og)
			if err != nil {
				t.Fatal(err)
			}
			optimized = append(optimized, r2)
			names = append(names, fmt.Sprintf("combo%d", ci))
		}
		rng := rand.New(rand.NewSource(seed))
		inNames := inputNames(g)
		for cycle := 0; cycle < 40; cycle++ {
			for _, name := range inNames {
				v := bitvec.FromWords(96, []uint64{rng.Uint64(), rng.Uint64()})
				if name == "reset" {
					v = bitvec.FromUint64(1, uint64(rng.Intn(5)/4))
				}
				pokeByName(t, ref, g, name, v)
				for i, r2 := range optimized {
					pokeByName(t, r2, r2.Graph(), name, v)
					_ = i
				}
			}
			ref.Step()
			for i, r2 := range optimized {
				r2.Step()
				compareOutputs(t, names[i], cycle, ref, g, r2, r2.Graph())
			}
		}
	}
}

func inputNames(g *ir.Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindInput {
			out = append(out, n.Name)
		}
	}
	return out
}

func pokeByName(t *testing.T, s engine.Sim, g *ir.Graph, name string, v bitvec.BV) {
	t.Helper()
	n := g.FindNode(name)
	if n == nil {
		t.Fatalf("input %q missing", name)
	}
	s.Poke(n.ID, v)
}

func compareOutputs(t *testing.T, label string, cycle int, ref engine.Sim, gRef *ir.Graph, got engine.Sim, gGot *ir.Graph) {
	t.Helper()
	for _, n := range gRef.Nodes {
		if n == nil || !n.IsOutput {
			continue
		}
		m := gGot.FindNode(n.Name)
		if m == nil {
			t.Fatalf("%s: output %q missing after passes", label, n.Name)
		}
		a, b := ref.Peek(n.ID), got.Peek(m.ID)
		if !a.EqValue(b) {
			t.Fatalf("%s cycle %d: output %q: %s vs %s", label, cycle, n.Name, a, b)
		}
	}
}
