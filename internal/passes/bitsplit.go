package passes

import (
	"fmt"
	"sort"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// bitSplit implements the paper's bit-level node splitting (§III-C, Fig. 4).
// When every reader of a multi-bit node accesses only bit slices, and the
// node's value is bitwise-decomposable (concatenations, bitwise logic,
// muxes, pads, slices), the node is split into one sub-node per accessed
// slice. Readers of an unchanged slice then stop being activated when only
// other slices change, reducing the activity factor.
//
// Splitting propagates: the sub-node expressions slice the original
// operands, turning full-width references upstream into slice references,
// which can make the upstream node splittable on the next round — the
// paper's path P0 P1 ... Pn. Rounds repeat to a fixed point (capped).
func bitSplit(g *ir.Graph, maxParts int) int {
	total := 0
	for round := 0; round < 6; round++ {
		n := splitRound(g, maxParts)
		if n == 0 {
			break
		}
		total += n
	}
	return total
}

// useInfo accumulates how a node is read.
type useInfo struct {
	full   bool
	ranges [][2]int
}

func splitRound(g *ir.Graph, maxParts int) int {
	uses := map[*ir.Node]*useInfo{}
	get := func(n *ir.Node) *useInfo {
		u := uses[n]
		if u == nil {
			u = &useInfo{}
			uses[n] = u
		}
		return u
	}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			ir.WalkPtr(slot, func(pe **ir.Expr) bool {
				e := *pe
				if e.Op == ir.OpBits && e.Args[0].Op == ir.OpRef {
					u := get(e.Args[0].Node)
					u.ranges = append(u.ranges, [2]int{e.Lo, e.Hi})
					return false // the inner ref is a slice use, not a full use
				}
				if e.Op == ir.OpRef {
					get(e.Node).full = true
				}
				return true
			})
		})
		if n.Kind == ir.KindReg && n.ResetSig != nil {
			get(n.ResetSig).full = true
		}
	}

	// Select all candidates first, then rewrite the whole graph once: a
	// per-candidate rewrite walk would make the pass quadratic in graph
	// size (measured as minutes on the BOOM-scale design).
	var plans []*splitPlan
	byNode := map[*ir.Node]*splitPlan{}
	for _, d := range g.Live() {
		if d.IsOutput || d.Width < 2 {
			continue
		}
		if d.Kind != ir.KindComb && d.Kind != ir.KindReg {
			continue
		}
		u := uses[d]
		if u == nil || u.full || len(u.ranges) < 2 {
			continue
		}
		cuts := cutPoints(d.Width, u.ranges)
		if len(cuts) < 3 || len(cuts)-1 > maxParts {
			continue
		}
		if p := planSplit(d, cuts); p != nil {
			plans = append(plans, p)
			byNode[d] = p
		}
	}
	if len(plans) == 0 {
		return 0
	}
	// Materialize sub-nodes for every plan.
	for _, p := range plans {
		materialize(g, p)
	}
	// One rewrite pass over everything, including the new sub-nodes (a
	// split register's parts slice the original register through its old
	// name and must be redirected too).
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			ir.WalkPtr(slot, func(pe **ir.Expr) bool {
				e := *pe
				if e.Op == ir.OpBits && e.Args[0].Op == ir.OpRef {
					if p, ok := byNode[e.Args[0].Node]; ok {
						*pe = composeParts(p.cuts, p.parts, e.Hi, e.Lo)
						return false
					}
				}
				return true
			})
		})
	}
	for _, p := range plans {
		g.Nodes[p.node.ID] = nil
	}
	return len(plans)
}

// splitPlan is one node's pending bit-level split.
type splitPlan struct {
	node      *ir.Node
	cuts      []int
	partExprs []*ir.Expr
	parts     []*ir.Node
}

// planSplit checks decomposability and builds the per-part expressions
// without mutating the graph. Returns nil when the node does not decompose.
func planSplit(d *ir.Node, cuts []int) *splitPlan {
	nParts := len(cuts) - 1
	p := &splitPlan{node: d, cuts: cuts, partExprs: make([]*ir.Expr, nParts)}
	for i := 0; i < nParts; i++ {
		hi, lo := cuts[i+1]-1, cuts[i]
		pe := trySlice(d.Expr, hi, lo)
		if pe == nil {
			return nil
		}
		p.partExprs[i] = pe
	}
	return p
}

// materialize adds the sub-nodes for a plan.
func materialize(g *ir.Graph, p *splitPlan) {
	d := p.node
	p.parts = make([]*ir.Node, len(p.partExprs))
	for i := range p.partExprs {
		hi, lo := p.cuts[i+1]-1, p.cuts[i]
		nn := &ir.Node{
			Name:  fmt.Sprintf("%s_%d_%d", d.Name, hi, lo),
			Kind:  d.Kind,
			Width: hi - lo + 1,
			Expr:  p.partExprs[i],
		}
		if d.Kind == ir.KindReg {
			init := d.Init
			if init.Width == 0 {
				init = ir.ZeroInit(d)
			}
			nn.Init = bitvec.Bits(init, hi, lo)
			nn.ResetSig = d.ResetSig
		}
		p.parts[i] = g.AddNode(nn)
	}
}

// cutPoints returns the sorted distinct cut positions {0, ..., width}
// implied by the use ranges.
func cutPoints(width int, ranges [][2]int) []int {
	set := map[int]bool{0: true, width: true}
	for _, r := range ranges {
		set[r[0]] = true
		set[r[1]+1] = true
	}
	cuts := make([]int, 0, len(set))
	for c := range set {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

// composeParts builds the expression for bits [hi:lo] of the split node out
// of sub-nodes. Direct use ranges land on cut points and map onto whole
// parts; ranges that arrived indirectly (a split register slicing itself
// through an offset) may overlap parts partially and get an inner slice.
func composeParts(cuts []int, parts []*ir.Node, hi, lo int) *ir.Expr {
	var pieces []*ir.Expr // low to high
	for i := 0; i < len(parts); i++ {
		pl, ph := cuts[i], cuts[i+1]-1
		if ph < lo || pl > hi {
			continue
		}
		ref := ir.Ref(parts[i])
		il, ih := pl, ph
		if il < lo {
			il = lo
		}
		if ih > hi {
			ih = hi
		}
		if il == pl && ih == ph {
			pieces = append(pieces, ref)
		} else {
			pieces = append(pieces, ir.BitsOf(ref, ih-pl, il-pl))
		}
	}
	e := pieces[0]
	for _, p := range pieces[1:] {
		e = ir.Binary(ir.OpCat, p, e)
	}
	return e
}

// trySlice returns a fresh expression computing bits [hi:lo] of e, or nil
// when e does not decompose bitwise. 0 <= lo <= hi < e.Width.
func trySlice(e *ir.Expr, hi, lo int) *ir.Expr {
	switch e.Op {
	case ir.OpRef:
		if lo == 0 && hi == e.Width-1 {
			return ir.Ref(e.Node)
		}
		return ir.BitsOf(ir.Ref(e.Node), hi, lo)
	case ir.OpConst:
		return ir.Const(bitvec.Bits(e.Imm, hi, lo))
	case ir.OpCat:
		h, l := e.Args[0], e.Args[1]
		if hi < l.Width {
			return trySlice(l, hi, lo)
		}
		if lo >= l.Width {
			return trySlice(h, hi-l.Width, lo-l.Width)
		}
		lp := trySlice(l, l.Width-1, lo)
		if lp == nil {
			return nil
		}
		hp := trySlice(h, hi-l.Width, 0)
		if hp == nil {
			return nil
		}
		return ir.Binary(ir.OpCat, hp, lp)
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		a := sliceZextTry(e.Args[0], hi, lo)
		if a == nil {
			return nil
		}
		b := sliceZextTry(e.Args[1], hi, lo)
		if b == nil {
			return nil
		}
		return ir.Binary(e.Op, a, b)
	case ir.OpNot:
		a := trySlice(e.Args[0], hi, lo)
		if a == nil {
			return nil
		}
		return ir.Unary(ir.OpNot, a, 0)
	case ir.OpPad:
		return sliceZextTry(e.Args[0], hi, lo)
	case ir.OpBits:
		return trySlice(e.Args[0], e.Lo+hi, e.Lo+lo)
	case ir.OpMux:
		t := sliceZextTry(e.Args[1], hi, lo)
		if t == nil {
			return nil
		}
		f := sliceZextTry(e.Args[2], hi, lo)
		if f == nil {
			return nil
		}
		return ir.MuxOf(e.Args[0].Clone(), t, f)
	}
	return nil
}

// sliceZextTry slices e as if zero-extended: bits above e.Width read zero.
func sliceZextTry(e *ir.Expr, hi, lo int) *ir.Expr {
	w := hi - lo + 1
	if lo >= e.Width {
		return ir.ConstUint(w, 0)
	}
	if hi < e.Width {
		return trySlice(e, hi, lo)
	}
	inner := trySlice(e, e.Width-1, lo)
	if inner == nil {
		return nil
	}
	return fit(inner, w)
}
