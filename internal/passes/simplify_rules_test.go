package passes

import (
	"testing"

	"gsim/internal/ir"
)

// algCase is one exemplar expression for a generated algebraic rule.
type algCase struct {
	name string
	rule AlgRule
	in   *ir.Expr
}

// algExemplars maps every generated algebraic rule to at least one concrete
// expression that fires it. TestAlgebraicRuleCoverage sweeps the AlgRule
// enumeration against this table, so adding a table line without an
// exemplar fails the suite. Constant operand values are chosen so no
// earlier rule in the table matches first (5 is neither zero, one, nor
// all-ones at width 4).
func algExemplars() []algCase {
	c := func(w int, v uint64) *ir.Expr { return ir.ConstUint(w, v) }
	x := func() *ir.Expr { return c(4, 5) }
	// A non-constant selector, so the constant-select rules don't shadow the
	// structural mux rules. Only shape matters to the matcher.
	sel := func() *ir.Expr { return &ir.Expr{Op: ir.OpRef, Width: 1} }
	return []algCase{
		{"add-zero", AlgRuleAddZero, ir.Binary(ir.OpAdd, x(), c(4, 0))},
		{"add-zero-comm", AlgRuleAddZero, ir.Binary(ir.OpAdd, c(4, 0), x())},
		{"sub-zero", AlgRuleSubZero, ir.Binary(ir.OpSub, x(), c(4, 0))},
		{"sub-self", AlgRuleSubSelf, ir.Binary(ir.OpSub, x(), x())},
		{"mul-zero", AlgRuleMulZero, ir.Binary(ir.OpMul, x(), c(4, 0))},
		{"mul-one", AlgRuleMulOne, ir.Binary(ir.OpMul, x(), c(4, 1))},
		{"mul-one-comm", AlgRuleMulOne, ir.Binary(ir.OpMul, c(4, 1), x())},
		{"div-one", AlgRuleDivOne, ir.Binary(ir.OpDiv, x(), c(4, 1))},
		{"rem-one", AlgRuleRemOne, ir.Binary(ir.OpRem, x(), c(4, 1))},
		{"and-zero", AlgRuleAndZero, ir.Binary(ir.OpAnd, x(), c(4, 0))},
		{"and-ones", AlgRuleAndOnes, ir.Binary(ir.OpAnd, x(), c(4, 0xf))},
		{"and-self", AlgRuleAndSelf, ir.Binary(ir.OpAnd, x(), x())},
		{"or-zero", AlgRuleOrZero, ir.Binary(ir.OpOr, x(), c(4, 0))},
		{"or-self", AlgRuleOrSelf, ir.Binary(ir.OpOr, x(), x())},
		{"xor-zero", AlgRuleXorZero, ir.Binary(ir.OpXor, x(), c(4, 0))},
		{"xor-self", AlgRuleXorSelf, ir.Binary(ir.OpXor, x(), x())},
		{"not-not", AlgRuleNotNot, ir.Unary(ir.OpNot, ir.Unary(ir.OpNot, x(), 0), 0)},
		{"andr-bool", AlgRuleAndrBool, ir.Unary(ir.OpAndR, c(1, 1), 0)},
		{"orr-bool", AlgRuleOrrBool, ir.Unary(ir.OpOrR, c(1, 0), 0)},
		{"xorr-bool", AlgRuleXorrBool, ir.Unary(ir.OpXorR, c(1, 1), 0)},
		{"eq-self", AlgRuleEqSelf, ir.Binary(ir.OpEq, x(), x())},
		{"neq-self", AlgRuleNeqSelf, ir.Binary(ir.OpNeq, x(), x())},
		{"neq-zero", AlgRuleNeqZero, ir.Binary(ir.OpNeq, x(), c(4, 0))},
		{"neq-zero-comm", AlgRuleNeqZero, ir.Binary(ir.OpNeq, c(4, 0), x())},
		{"lt-self", AlgRuleLtSelf, ir.Binary(ir.OpLt, x(), x())},
		{"lt-zero", AlgRuleLtZero, ir.Binary(ir.OpLt, x(), c(4, 0))},
		{"zero-lt", AlgRuleZeroLt, ir.Binary(ir.OpLt, c(4, 0), x())},
		{"gt-self", AlgRuleGtSelf, ir.Binary(ir.OpGt, x(), x())},
		{"gt-zero", AlgRuleGtZero, ir.Binary(ir.OpGt, x(), c(4, 0))},
		{"zero-gt", AlgRuleZeroGt, ir.Binary(ir.OpGt, c(4, 0), x())},
		{"leq-self", AlgRuleLeqSelf, ir.Binary(ir.OpLeq, x(), x())},
		{"leq-zero", AlgRuleLeqZero, ir.Binary(ir.OpLeq, x(), c(4, 0))},
		{"zero-leq", AlgRuleZeroLeq, ir.Binary(ir.OpLeq, c(4, 0), x())},
		{"geq-self", AlgRuleGeqSelf, ir.Binary(ir.OpGeq, x(), x())},
		{"geq-zero", AlgRuleGeqZero, ir.Binary(ir.OpGeq, x(), c(4, 0))},
		{"zero-geq", AlgRuleZeroGeq, ir.Binary(ir.OpGeq, c(4, 0), x())},
		{"mux-sel-zero", AlgRuleMuxSelZero, ir.MuxOf(c(1, 0), x(), c(4, 3))},
		{"mux-sel-one", AlgRuleMuxSelOne, ir.MuxOf(c(1, 1), x(), c(4, 3))},
		{"mux-same", AlgRuleMuxSame, ir.MuxOf(sel(), x(), x())},
		{"mux-bool", AlgRuleMuxBool, ir.MuxOf(sel(), c(1, 1), c(1, 0))},
		{"mux-bool-not", AlgRuleMuxBoolNot, ir.MuxOf(sel(), c(1, 0), c(1, 1))},
	}
}

func hasRef(e *ir.Expr) bool {
	if e.Op == ir.OpRef {
		return true
	}
	for _, a := range e.Args {
		if hasRef(a) {
			return true
		}
	}
	return false
}

// TestAlgebraicRuleCoverage sweeps the full generated AlgRule enumeration:
// every rule must have at least one exemplar, the generated rewriter must
// classify each exemplar as its rule, and — for fully-constant exemplars —
// the rewrite must be value-preserving under the golden constant evaluator.
func TestAlgebraicRuleCoverage(t *testing.T) {
	cases := algExemplars()
	seen := make(map[AlgRule]bool)
	for _, c := range cases {
		seen[c.rule] = true
	}
	for r := AlgRuleNone + 1; r < NumAlgRules; r++ {
		if !seen[r] {
			t.Fatalf("algebraic rule %d (%s) has no exemplar — extend algExemplars", r, r)
		}
		if r.Pattern() == "" {
			t.Fatalf("algebraic rule %s has no pattern string", r)
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, rule := rewriteAlgebraic(c.in)
			if got == nil {
				t.Fatalf("rewriteAlgebraic did not fire on %s", c.in)
			}
			if rule != c.rule {
				t.Fatalf("fired %s, want %s", rule, c.rule)
			}
			if hasRef(c.in) {
				return // shape-only exemplar; no constant value to compare
			}
			want := c.in.FoldConst()
			have := fit(got, c.in.Width).FoldConst()
			if !want.EqValue(have) {
				t.Fatalf("rule %s changed the value: %s -> %s (got %s)", c.rule, c.in, want, have)
			}
		})
	}
}

// TestAlgebraicRuleStats checks the process-wide per-rule counters advance
// when a rule fires through the full simplify entry point, and that the
// NoAlgebraic path leaves both the expression and the counters untouched.
func TestAlgebraicRuleStats(t *testing.T) {
	mk := func() *ir.Expr {
		return ir.Binary(ir.OpAdd, &ir.Expr{Op: ir.OpRef, Width: 8}, ir.ConstUint(8, 0))
	}
	before := AlgebraicRuleStats()
	r, n := simplifyExpr(mk(), true)
	if n == 0 || r.Op == ir.OpAdd {
		t.Fatalf("add-zero did not simplify: %s (%d rewrites)", r, n)
	}
	after := AlgebraicRuleStats()
	if after[AlgRuleAddZero] != before[AlgRuleAddZero]+1 {
		t.Fatalf("add-zero counter: %d -> %d, want +1", before[AlgRuleAddZero], after[AlgRuleAddZero])
	}
	r2, n2 := simplifyExpr(mk(), false)
	if n2 != 0 || r2.Op != ir.OpAdd {
		t.Fatalf("NoAlgebraic still rewrote: %s (%d rewrites)", r2, n2)
	}
	final := AlgebraicRuleStats()
	if final[AlgRuleAddZero] != after[AlgRuleAddZero] {
		t.Fatal("NoAlgebraic run advanced the counters")
	}
}
