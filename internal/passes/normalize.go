package passes

import (
	"fmt"

	"gsim/internal/ir"
)

// Normalize flattens every expression tree into single-operation nodes: the
// canonical "one IR node per register or logic unit" form the paper's graphs
// are in (Table I counts nodes this way). Programmatic builders produce fat
// expression trees for convenience; normalization rebuilds the fine-grained
// graph, and the inline/extract passes then re-fuse operations where the
// cost model says so — the same pipeline GSIM applies to FIRRTL input.
//
// Idempotent: a graph already in one-op form is returned unchanged.
// Returns the number of nodes created.
func Normalize(g *ir.Graph) int {
	created := 0
	fresh := 0
	var flatten func(owner string, e *ir.Expr) *ir.Expr
	flatten = func(owner string, e *ir.Expr) *ir.Expr {
		// Make every argument a leaf (ref or const), creating nodes for
		// interior operations bottom-up.
		for i, a := range e.Args {
			if a.Op == ir.OpRef || a.Op == ir.OpConst {
				continue
			}
			sub := flatten(owner, a)
			fresh++
			n := g.AddNode(&ir.Node{
				Name:  fmt.Sprintf("%s#%d", owner, fresh),
				Kind:  ir.KindComb,
				Width: sub.Width,
				Expr:  sub,
			})
			created++
			e.Args[i] = ir.Ref(n)
		}
		return e
	}
	for _, n := range g.Live() {
		n.EachExpr(func(slot **ir.Expr) {
			*slot = flatten(n.Name, *slot)
		})
	}
	if created > 0 {
		g.Compact()
	}
	return created
}
