package passes

import (
	"sync/atomic"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// algFired counts, per generated rule, how many times the algebraic
// rewriter fired across every simplification run in the process — the
// diagnostic behind cmd/gsim-diag's simplify report. Atomic because designs
// compile concurrently (the session server and the tests both do).
var algFired [NumAlgRules]atomic.Uint64

// AlgebraicRuleStats snapshots the process-wide per-rule fire counters,
// indexed by AlgRule.
func AlgebraicRuleStats() []uint64 {
	out := make([]uint64, NumAlgRules)
	for i := range out {
		out[i] = algFired[i].Load()
	}
	return out
}

// simplifyGraph rewrites every expression bottom-up with constant folding,
// structural rewrites, and (when alg) the generated algebraic rule set.
// Returns the number of rewrites applied.
func simplifyGraph(g *ir.Graph, alg bool) int {
	changed := 0
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			var c int
			*slot, c = simplifyExpr(*slot, alg)
			changed += c
		})
	}
	return changed
}

// simplifyExpr rewrites e bottom-up and returns the replacement plus the
// number of rewrites. The returned expression always has e's width.
func simplifyExpr(e *ir.Expr, alg bool) (*ir.Expr, int) {
	changed := 0
	for i := range e.Args {
		var c int
		e.Args[i], c = simplifyExpr(e.Args[i], alg)
		changed += c
	}
	for {
		r := rewriteOnce(e, alg)
		if r == nil {
			return e, changed
		}
		if r.Width != e.Width {
			r = fit(r, e.Width)
		}
		e = r
		changed++
	}
}

func isConst(e *ir.Expr) bool { return e.Op == ir.OpConst }

func isZero(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.IsZero() }

func isOnes(e *ir.Expr) bool { return e.Op == ir.OpConst && e.Imm.IsOnes() }

func isOne(e *ir.Expr) bool {
	return e.Op == ir.OpConst && e.Imm.Uint64() == 1 && bitvec.OrR(bitvec.Shr(e.Imm, 1, e.Imm.Width)).IsZero()
}

func constOf(width int, v uint64) *ir.Expr { return ir.ConstUint(width, v) }

// rewriteOnce applies one simplification rule to the root of e, or returns
// nil when no rule applies. Arguments are assumed already simplified.
// Constant folding and the structural rewrites (shift, pad, cat, bits)
// always run; the algebraic rule set — generated into rewriteAlgebraic from
// the table in internal/emit/rules — is gated by alg so the fuzz harness can
// diff simplified against unsimplified builds.
func rewriteOnce(e *ir.Expr, alg bool) *ir.Expr {
	// Constant folding for any fully-constant operator application.
	if e.Op != ir.OpRef && e.Op != ir.OpConst {
		all := true
		for _, a := range e.Args {
			if !isConst(a) {
				all = false
				break
			}
		}
		if all && foldable(e) {
			return ir.Const(e.FoldConst())
		}
	}

	if alg {
		if r, rule := rewriteAlgebraic(e); r != nil {
			algFired[rule].Add(1)
			return r
		}
	}

	a0 := func() *ir.Expr { return e.Args[0] }
	a1 := func() *ir.Expr { return e.Args[1] }

	switch e.Op {
	case ir.OpShl, ir.OpShr:
		if e.Lo == 0 {
			return a0()
		}
	case ir.OpDshl:
		if isConst(a1()) {
			n := a1().Imm.Uint64()
			if n >= uint64(e.Width) {
				return constOf(e.Width, 0)
			}
			return ir.Unary(ir.OpShl, a0(), int(n))
		}
	case ir.OpDshr:
		if isConst(a1()) {
			n := a1().Imm.Uint64()
			if n >= uint64(a0().Width) {
				return constOf(e.Width, 0)
			}
			return ir.Unary(ir.OpShr, a0(), int(n))
		}
	case ir.OpPad:
		if a0().Width == e.Width {
			return a0()
		}
		if a0().Op == ir.OpPad {
			return fit(a0().Args[0], e.Width)
		}
	case ir.OpSExt:
		if a0().Width == e.Width {
			return a0()
		}
	case ir.OpCat:
		// cat(0, x) is a zero extension.
		if isZero(a0()) {
			return fit(a1(), e.Width)
		}
		// Adjacent slices of the same expression merge: cat(x[h1:l1],
		// x[h2:l2]) with l1 == h2+1 becomes x[h1:l2].
		if a0().Op == ir.OpBits && a1().Op == ir.OpBits &&
			a0().Lo == a1().Hi+1 && ir.StructEq(a0().Args[0], a1().Args[0]) {
			return ir.BitsOf(a0().Args[0], a0().Hi, a1().Lo)
		}
	case ir.OpBits:
		return rewriteBits(e)
	}
	return nil
}

// foldable guards constant folding against the unsupported wide-division
// case (the emitter rejects it too, so folding must not be the only escape).
func foldable(e *ir.Expr) bool {
	if e.Op == ir.OpDiv || e.Op == ir.OpRem {
		return e.Args[0].Width <= 64 && e.Args[1].Width <= 64
	}
	return true
}

// rewriteBits simplifies a bits() application, including the paper's
// one-hot decode pattern: bits(dshl(1, a), k, k) → eq(a, k).
func rewriteBits(e *ir.Expr) *ir.Expr {
	a := e.Args[0]
	hi, lo := e.Hi, e.Lo
	// Full-width slice.
	if lo == 0 && hi == a.Width-1 {
		return a
	}
	switch a.Op {
	case ir.OpBits:
		return ir.BitsOf(a.Args[0], a.Lo+hi, a.Lo+lo)
	case ir.OpCat:
		h, l := a.Args[0], a.Args[1]
		if hi < l.Width {
			return ir.BitsOf(l, hi, lo)
		}
		if lo >= l.Width {
			return ir.BitsOf(h, hi-l.Width, lo-l.Width)
		}
	case ir.OpPad:
		x := a.Args[0]
		if hi < x.Width {
			return ir.BitsOf(x, hi, lo)
		}
		if lo >= x.Width {
			return constOf(e.Width, 0)
		}
		return fit(ir.BitsOf(x, x.Width-1, lo), e.Width)
	case ir.OpShl:
		n := a.Lo
		if lo >= n {
			return ir.BitsOf(a.Args[0], hi-n, lo-n)
		}
		if hi < n {
			return constOf(e.Width, 0)
		}
	case ir.OpDshl:
		// One-hot decode: bit k of (1 << a) is (a == k).
		if hi == lo && isOne(a.Args[0]) {
			amt := a.Args[1]
			k := uint64(lo)
			if amt.Width < 63 && k >= uint64(1)<<uint(amt.Width) {
				return constOf(1, 0)
			}
			return ir.Binary(ir.OpEq, amt, constOf(amt.Width, k))
		}
	case ir.OpMux:
		// Slicing distributes over mux; this narrows wide muxes whose users
		// only need a few bits.
		sel, t, f := a.Args[0], a.Args[1], a.Args[2]
		return ir.MuxOf(sel, sliceZext(t, hi, lo), sliceZext(f, hi, lo))
	}
	return nil
}

// sliceZext returns bits [hi:lo] of e treating e as zero-extended to any
// width: out-of-range bits read as zero.
func sliceZext(e *ir.Expr, hi, lo int) *ir.Expr {
	w := hi - lo + 1
	if lo >= e.Width {
		return constOf(w, 0)
	}
	if hi < e.Width {
		return ir.BitsOf(e, hi, lo)
	}
	return fit(ir.BitsOf(e, e.Width-1, lo), w)
}
