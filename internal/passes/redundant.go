package passes

import "gsim/internal/ir"

// eliminateAliases removes combinational nodes whose expression is a bare
// reference to another node of the same width (the paper's Alias Nodes,
// Fig. 2 ❶), redirecting all readers to the original.
func eliminateAliases(g *ir.Graph) int {
	// Resolve alias chains: target[n] = ultimate non-alias node.
	target := map[*ir.Node]*ir.Node{}
	var resolve func(n *ir.Node) *ir.Node
	resolve = func(n *ir.Node) *ir.Node {
		if t, ok := target[n]; ok {
			return t
		}
		t := n
		if n.Kind == ir.KindComb && !n.IsOutput && n.Expr.Op == ir.OpRef && n.Expr.Node.Width == n.Width {
			target[n] = n.Expr.Node // provisional, breaks cycles (none exist)
			t = resolve(n.Expr.Node)
		}
		target[n] = t
		return t
	}
	removed := 0
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		if resolve(n) != n {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	for id, n := range g.Nodes {
		if n == nil {
			continue
		}
		if target[n] != n {
			g.Nodes[id] = nil
			continue
		}
		n.EachExpr(func(slot **ir.Expr) {
			ir.WalkPtr(slot, func(pe **ir.Expr) bool {
				e := *pe
				if e.Op == ir.OpRef {
					if t := resolve(e.Node); t != e.Node {
						e.Node = t
					}
				}
				return true
			})
		})
		if n.Kind == ir.KindReg && n.ResetSig != nil {
			n.ResetSig = resolve(n.ResetSig)
		}
	}
	return removed
}

// eliminateDead removes nodes unreachable (as transitive predecessors) from
// any output — the paper's Dead Nodes (Fig. 2 ❷), Shorted Nodes left behind
// by mux constant folding (❸), and Unused Registers including self-updating
// ones (❹). Memory write ports stay live only while some read port of the
// same memory is live.
func eliminateDead(g *ir.Graph) int {
	marked := make([]bool, len(g.Nodes))
	var stack []*ir.Node
	mark := func(n *ir.Node) {
		if n != nil && !marked[n.ID] {
			marked[n.ID] = true
			stack = append(stack, n)
		}
	}
	for _, n := range g.Nodes {
		if n != nil && n.IsOutput {
			mark(n)
		}
	}
	// Track memories with a live read port; their write ports become roots.
	memLive := make([]bool, len(g.Mems))
	writesOf := make([][]*ir.Node, len(g.Mems))
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindMemWrite {
			writesOf[n.Mem.ID] = append(writesOf[n.Mem.ID], n)
		}
	}
	for {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n.EachExpr(func(slot **ir.Expr) {
				(*slot).Walk(func(e *ir.Expr) {
					if e.Op == ir.OpRef {
						mark(e.Node)
					}
				})
			})
			if n.Kind == ir.KindReg && n.ResetSig != nil {
				mark(n.ResetSig)
			}
			if n.Kind == ir.KindMemRead && !memLive[n.Mem.ID] {
				memLive[n.Mem.ID] = true
			}
		}
		// Promote write ports of newly live memories; loop if that marked
		// anything new.
		grew := false
		for mi, live := range memLive {
			if !live {
				continue
			}
			for _, w := range writesOf[mi] {
				if !marked[w.ID] {
					mark(w)
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	removed := 0
	for id, n := range g.Nodes {
		if n == nil || marked[id] {
			continue
		}
		if n.Kind == ir.KindInput {
			continue // inputs stay: they are the testbench interface
		}
		g.Nodes[id] = nil
		removed++
	}
	return removed
}
