// Package passes implements GSIM's node-level and bit-level graph
// optimizations (paper §III-B, §III-C):
//
//   - Simplify: constant propagation and expression simplification,
//     including the one-hot pattern bits(dshl(1,a),k,k) → eq(a,k);
//   - Redundant: alias-, dead-, and shorted-node elimination plus
//     unused-register elimination via reachability from outputs;
//   - Inline / Extract: the inline-versus-extraction trade-off decided by
//     the paper's cost model cost(f)·#refs ≷ cost(f) + cost_node;
//   - ResetOpt: hoisting reset muxes out of register next-value expressions
//     so engines check one reset signal per cycle instead of one per
//     register (Listing 5 → Listing 6);
//   - BitSplit: bit-level node splitting along per-bit dataflow (Fig. 4).
//
// All passes preserve cycle-accurate semantics; the test suite verifies
// optimized and unoptimized graphs produce identical trajectories.
package passes

import (
	"fmt"

	"gsim/internal/ir"
)

// Options selects which optimizations to run. The zero value runs nothing.
type Options struct {
	Simplify  bool
	Redundant bool
	Inline    bool
	Extract   bool
	ResetOpt  bool
	BitSplit  bool

	// CostNode is the paper's cost_node constant: the abstract overhead of
	// introducing one extra node (activation bookkeeping + scheduling).
	// Zero means DefaultCostNode.
	CostNode int
	// MaxInlineCost caps the size of expressions that may be duplicated by
	// inlining. Zero means DefaultMaxInlineCost.
	MaxInlineCost int
	// MaxSplitParts caps how many pieces one node may be split into at the
	// bit level. Zero means DefaultMaxSplitParts.
	MaxSplitParts int

	// NoAlgebraic disables the generated algebraic rule set (rewriteAlgebraic,
	// from the table in internal/emit/rules) while keeping constant folding
	// and the structural rewrites. The zero value ships the rules enabled;
	// the fuzz harness flips this to diff simplified against unsimplified
	// builds.
	NoAlgebraic bool
}

// Defaults for the cost-model constants.
const (
	DefaultCostNode      = 2
	DefaultMaxInlineCost = 48
	DefaultMaxSplitParts = 8
)

// All returns Options with every optimization enabled.
func All() Options {
	return Options{
		Simplify: true, Redundant: true, Inline: true,
		Extract: true, ResetOpt: true, BitSplit: true,
	}
}

// Basic returns the light pipeline used for the Verilator-like baseline:
// expression simplification and redundant-node elimination only.
func Basic() Options {
	return Options{Simplify: true, Redundant: true}
}

func (o *Options) fill() {
	if o.CostNode == 0 {
		o.CostNode = DefaultCostNode
	}
	if o.MaxInlineCost == 0 {
		o.MaxInlineCost = DefaultMaxInlineCost
	}
	if o.MaxSplitParts == 0 {
		o.MaxSplitParts = DefaultMaxSplitParts
	}
}

// Result reports what each pass did.
type Result struct {
	Simplified    int // expressions rewritten
	AliasRemoved  int
	DeadRemoved   int // dead nodes + unused registers removed
	Inlined       int
	Extracted     int
	ResetsHoisted int
	NodesSplit    int
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("simplified=%d alias=%d dead=%d inlined=%d extracted=%d resets=%d split=%d",
		r.Simplified, r.AliasRemoved, r.DeadRemoved, r.Inlined, r.Extracted, r.ResetsHoisted, r.NodesSplit)
}

// Run applies the selected passes in dependency order and compacts the
// graph. The graph is mutated in place.
func Run(g *ir.Graph, opts Options) Result {
	opts.fill()
	var res Result
	if opts.Simplify {
		res.Simplified += simplifyGraph(g, !opts.NoAlgebraic)
	}
	if opts.Redundant {
		res.AliasRemoved += eliminateAliases(g)
		res.DeadRemoved += eliminateDead(g)
	}
	if opts.BitSplit {
		res.NodesSplit += bitSplit(g, opts.MaxSplitParts)
		if res.NodesSplit > 0 {
			if opts.Simplify {
				res.Simplified += simplifyGraph(g, !opts.NoAlgebraic)
			}
			if opts.Redundant {
				res.AliasRemoved += eliminateAliases(g)
				res.DeadRemoved += eliminateDead(g)
			}
		}
	}
	if opts.Inline {
		res.Inlined += inlineNodes(g, opts.CostNode, opts.MaxInlineCost)
	}
	if opts.Extract {
		res.Extracted += extractCommon(g, opts.CostNode)
	}
	if opts.ResetOpt {
		res.ResetsHoisted += hoistResets(g)
	}
	if opts.Redundant {
		res.DeadRemoved += eliminateDead(g)
	}
	g.Compact()
	return res
}

// fit pads or slices e to exactly width bits, preserving value semantics
// (zero extension / truncation).
func fit(e *ir.Expr, width int) *ir.Expr {
	switch {
	case e.Width == width:
		return e
	case e.Width < width:
		return &ir.Expr{Op: ir.OpPad, Args: []*ir.Expr{e}, Width: width}
	default:
		return ir.BitsOf(e, width-1, 0)
	}
}

// keepAlive returns the set of nodes that must never be removed or inlined:
// outputs, inputs, memory ports, registers, and reset signals.
func keepAlive(g *ir.Graph) map[*ir.Node]bool {
	keep := map[*ir.Node]bool{}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		if n.Kind != ir.KindComb || n.IsOutput {
			keep[n] = true
		}
		if n.Kind == ir.KindReg && n.ResetSig != nil {
			keep[n.ResetSig] = true
		}
	}
	return keep
}
