// Package trace is the asynchronous waveform pipeline: a VCD writer whose
// formatting and I/O run on a dedicated goroutine, fed by a bounded ring of
// per-cycle state snapshots. The paper motivates software simulation with
// "100% signal visibility"; before this package, visibility came at the price
// of serializing the parallel sweep — VCD sampling (value formatting plus
// file writes) ran on the coordinator between cycles, inside the only serial
// window the GSIMMT engine has. The pipeline moves everything but a bounded
// memcpy off the coordinator:
//
//	coordinator (per cycle)            writer goroutine
//	--------------------------         ------------------------------
//	Snapshot: pack traced words   -->  diff against previous image,
//	into a free ring slot (block       format value changes, write
//	only when the ring is full)        VCD text, recycle the slot
//
// Output is byte-for-byte identical to the synchronous engine.VCD writer —
// the golden-waveform suite pins both against the same committed files — and
// deterministic regardless of scheduling, because the byte stream depends
// only on the snapshot sequence. Errors from the underlying io.Writer are
// captured at the first failing write, published on Err, and returned from
// Close; after an error the writer keeps draining (and discarding) snapshots
// so the simulation never deadlocks on a dead sink.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
)

// DefaultRing is the snapshot ring depth used when Options.Ring is zero:
// deep enough to hide write bursts (a page flush, a slow disk) without
// letting the writer fall unboundedly behind the simulation.
const DefaultRing = 8

// Options configures a waveform pipeline.
type Options struct {
	// Ring is the snapshot ring depth (bounded backpressure window). Zero
	// selects DefaultRing; negative values are treated as 1.
	Ring int
	// Sync disables the pipeline: Snapshot formats and writes on the calling
	// goroutine, exactly like the legacy coordinator-side writer. It exists
	// as the measurable baseline for the async path (gsim-diag reports both).
	Sync bool
	// Resume continues a waveform across a snapshot/restore boundary: no
	// header is written, the first Snapshot is stamped Resume.Time, and the
	// diff base is seeded from Resume.State instead of emitting a full dump.
	// Appending the resumed stream to the bytes written up to the checkpoint
	// reproduces an uninterrupted run's VCD exactly (the snapshot round-trip
	// suite pins this).
	Resume *Resume
	// Metrics, when non-nil, credits pipeline activity (snapshots, stalls,
	// occupancy, sink bytes, errors) to the process-wide trace bundle. Nil
	// leaves the pipeline uninstrumented.
	Metrics *Metrics
}

// Resume is the waveform continuation point after a snapshot restore.
type Resume struct {
	// Time is the VCD timestamp of the first post-restore cycle — the number
	// of cycles the restored engine has already simulated (Stats.Cycles).
	Time uint64
	// State is the restored engine's state image; the traced nodes' current
	// values seed the change detector, exactly as if the writer had emitted
	// them last cycle.
	State []uint64
}

// field is one traced node: where its value lives in the engine state image,
// where it lives in the packed snapshot, and how it renders.
type field struct {
	off   int32  // state-image word offset (Program.Off)
	pos   int32  // packed snapshot word offset
	words int32  // value width in words
	mask  uint64 // top-word mask for the node's bit width
	width int    // bit width
	id    string // VCD identifier
}

// VCD is the pipelined waveform writer. Construct with NewVCD, feed one
// Snapshot per simulated cycle (engines attached via AttachTracer do this
// automatically at the end of every Step), then Close.
type VCD struct {
	w      *bufio.Writer
	fields []field
	words  int32 // packed snapshot size

	sync bool

	// Pipeline channels: free slots flow coordinator-ward, filled snapshots
	// writer-ward. Both carry the same fixed set of buffers, so memory stays
	// bounded at ring × snapshot size.
	free chan []uint64
	full chan []uint64
	done chan struct{}

	closeOnce sync.Once
	closeErr  error

	errOnce sync.Once
	errCh   chan error
	errMu   sync.Mutex
	err     error

	// Writer-goroutine state (coordinator-owned in Sync mode).
	last    []uint64
	opened  bool
	time    uint64
	syncBuf []uint64

	m *Metrics // nil = uninstrumented
}

// SelectNodes returns the default trace set — every input, register, and
// output, sorted by name — matching the synchronous engine.VCD default.
func SelectNodes(g *ir.Graph) []*ir.Node {
	var nodes []*ir.Node
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		if n.Kind == ir.KindInput || n.Kind == ir.KindReg || n.IsOutput {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

// NewVCD builds a waveform pipeline over the given nodes (SelectNodes(p.Graph)
// when nodes is nil), writes the VCD header synchronously, and — unless
// opt.Sync — starts the writer goroutine.
func NewVCD(w io.Writer, p *emit.Program, nodes []*ir.Node, opt Options) (*VCD, error) {
	if nodes == nil {
		nodes = SelectNodes(p.Graph)
	}
	if opt.Metrics != nil {
		// Count under the bufio layer so Bytes reports what actually
		// reached the sink, not what entered the buffer.
		w = &countingWriter{w: w, c: opt.Metrics.Bytes}
	}
	v := &VCD{w: bufio.NewWriter(w), sync: opt.Sync, m: opt.Metrics}
	v.fields = make([]field, len(nodes))
	var pos int32
	for i, n := range nodes {
		words := p.WordsOf[n.ID] // >= 1: traceable nodes always carry storage
		v.fields[i] = field{
			off:   p.Off[n.ID],
			pos:   pos,
			words: words,
			mask:  bitvec.TopMask(n.Width),
			width: n.Width,
			id:    vcdID(i),
		}
		pos += words
	}
	v.words = pos
	v.last = make([]uint64, v.words)
	if opt.Resume != nil {
		// Continuation stream: skip the header, seed the diff base from the
		// restored image, and stamp from the resume time onward.
		v.pack(opt.Resume.State, v.last)
		v.opened = true
		v.time = opt.Resume.Time
	} else if err := v.header(nodes); err != nil {
		return nil, err
	}
	if v.sync {
		v.syncBuf = make([]uint64, v.words)
		return v, nil
	}
	ring := opt.Ring
	if ring == 0 {
		ring = DefaultRing
	}
	if ring < 1 {
		ring = 1
	}
	v.free = make(chan []uint64, ring)
	v.full = make(chan []uint64, ring)
	v.done = make(chan struct{})
	v.errCh = make(chan error, 1)
	for i := 0; i < ring; i++ {
		v.free <- make([]uint64, v.words)
	}
	go v.writer()
	return v, nil
}

// vcdID generates the compact printable identifiers VCD uses — the same
// alphabet and ordering as the synchronous writer, so both emit identical
// streams for the same node list.
func vcdID(i int) string {
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var sb strings.Builder
	for {
		sb.WriteByte(chars[i%len(chars)])
		i /= len(chars)
		if i == 0 {
			return sb.String()
		}
	}
}

func (v *VCD) header(nodes []*ir.Node) error {
	fmt.Fprintf(v.w, "$date gsim $end\n$version gsim reproduction $end\n$timescale 1ns $end\n")
	fmt.Fprintf(v.w, "$scope module top $end\n")
	for i, n := range nodes {
		name := strings.ReplaceAll(n.Name, ".", "_")
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", n.Width, v.fields[i].id, name)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	return v.w.Flush()
}

// Snapshot captures one cycle: the traced nodes' current words are packed
// (and top-masked) out of the engine state image into a ring slot. When every
// slot is in flight the call blocks until the writer frees one — bounded
// backpressure, so a slow sink throttles the simulation instead of growing an
// unbounded queue, and a failed sink never blocks it at all (the writer keeps
// recycling slots after an error). Snapshot must come from one goroutine (the
// engine coordinator); it is not safe to call concurrently with Close.
func (v *VCD) Snapshot(st []uint64) {
	if v.m != nil {
		v.m.Snapshots.Inc()
	}
	if v.sync {
		v.pack(st, v.syncBuf)
		v.encode(v.syncBuf)
		return
	}
	var buf []uint64
	select {
	case buf = <-v.free:
	default:
		// Ring full: this capture will block the coordinator until the
		// writer recycles a slot — the backpressure event worth counting.
		if v.m != nil {
			v.m.Stalls.Inc()
		}
		buf = <-v.free
	}
	v.pack(st, buf)
	v.full <- buf
	if v.m != nil {
		v.m.RingOccupancy.Set(float64(len(v.full)))
	}
}

// pack copies the traced words into a snapshot buffer, masking each field's
// top word to its bit width — the packed image then compares and renders
// exactly like the BV values the synchronous writer reads through Peek.
func (v *VCD) pack(st, buf []uint64) {
	for i := range v.fields {
		f := &v.fields[i]
		copy(buf[f.pos:f.pos+f.words], st[f.off:f.off+f.words])
		buf[f.pos+f.words-1] &= f.mask
	}
}

// flushEvery bounds both the syscall rate (the bufio buffer batches small
// per-cycle deltas between flushes) and the error-detection latency (a dead
// sink surfaces within this many cycles even when deltas are tiny).
const flushEvery = 64

// writer drains the ring: diff, format, write, recycle. Runs until Close
// closes the full channel; setErr after the first failed write flips it into
// drain-only mode.
func (v *VCD) writer() {
	defer close(v.done)
	n := 0
	for buf := range v.full {
		if v.getErr() == nil {
			if err := v.encode(buf); err != nil {
				v.setErr(err)
			} else if n++; n%flushEvery == 0 {
				if err := v.w.Flush(); err != nil {
					v.setErr(err)
				}
			}
		}
		v.free <- buf
	}
}

// encode emits one cycle's value changes, byte-compatible with the
// synchronous writer: a #time stamp only when something changed, width-1
// signals as single digits, wider values as leading-zero-suppressed binary.
// The returned error is bufio's sticky write error — it surfaces once the
// buffer has actually spilled to the failed sink.
func (v *VCD) encode(buf []uint64) error {
	var err error
	wrote := false
	for i := range v.fields {
		f := &v.fields[i]
		cur := buf[f.pos : f.pos+f.words]
		if v.opened && wordsEqual(cur, v.last[f.pos:f.pos+f.words]) {
			continue
		}
		if !wrote {
			if _, e := fmt.Fprintf(v.w, "#%d\n", v.time); e != nil && err == nil {
				err = e
			}
			wrote = true
		}
		if e := v.emit(f, cur); e != nil && err == nil {
			err = e
		}
		copy(v.last[f.pos:f.pos+f.words], cur)
	}
	v.opened = true
	v.time++
	return err
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (v *VCD) emit(f *field, words []uint64) error {
	if f.width == 1 {
		_, err := fmt.Fprintf(v.w, "%d%s\n", words[0]&1, f.id)
		return err
	}
	var sb strings.Builder
	sb.WriteByte('b')
	started := false
	for i := f.width - 1; i >= 0; i-- {
		b := (words[i/64] >> uint(i%64)) & 1
		if !started && b == 0 && i > 0 {
			continue // VCD allows leading-zero suppression
		}
		started = true
		sb.WriteByte(byte('0' + b))
	}
	if !started {
		sb.WriteByte('0')
	}
	_, err := fmt.Fprintf(v.w, "%s %s\n", sb.String(), f.id)
	return err
}

// Err returns a channel that receives the first write error (capacity one,
// never closed). Poll it mid-run to notice a dead sink before Close. In Sync
// mode there is no writer goroutine and the channel is nil (a nil channel
// never delivers; poll with a default case) — errors surface from Close,
// like the legacy coordinator-side writer.
func (v *VCD) Err() <-chan error { return v.errCh }

func (v *VCD) setErr(err error) {
	v.errOnce.Do(func() {
		v.errMu.Lock()
		v.err = err
		v.errMu.Unlock()
		if v.m != nil {
			v.m.Errors.Inc()
		}
		if v.errCh != nil {
			v.errCh <- err
		}
	})
}

func (v *VCD) getErr() error {
	v.errMu.Lock()
	defer v.errMu.Unlock()
	return v.err
}

// Flush pushes buffered output to the underlying writer without ending the
// trace — a consistent mid-run waveform read (e.g. serving a live session's
// VCD over HTTP). Only synchronous tracers support it: in pipelined mode the
// writer goroutine owns the buffer and a coordinator-side flush would race it.
// Flush must not race Snapshot: stop stepping the engine first.
func (v *VCD) Flush() error {
	if !v.sync {
		return fmt.Errorf("trace: Flush requires a synchronous tracer (Options.Sync)")
	}
	return v.w.Flush()
}

// Close drains the pipeline and flushes the stream: every snapshot taken
// before Close is formatted and written (or discarded, after a write error)
// before Close returns. The first error — mid-run write failure or final
// flush — is returned; calling Close again returns the same result. Close
// must not race Snapshot: stop stepping the engine first.
func (v *VCD) Close() error {
	v.closeOnce.Do(func() {
		if v.sync {
			v.closeErr = v.w.Flush()
			return
		}
		close(v.full)
		<-v.done
		if err := v.getErr(); err != nil {
			v.closeErr = err
			return
		}
		v.closeErr = v.w.Flush()
	})
	return v.closeErr
}
