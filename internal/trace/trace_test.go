package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"gsim/internal/emit"
	"gsim/internal/ir"
)

// testProgram compiles a small design with the value shapes the writer has
// to format: 1-bit, narrow, exactly-64-bit, and 2-word signals, plus a
// register.
func testProgram(t *testing.T) *emit.Program {
	t.Helper()
	b := ir.NewBuilder("tracetest")
	in := b.Input("in", 96)
	r := b.Reg("r", 64)
	b.SetNext(r, b.Bits(b.R(in), 63, 0))
	b.MarkOutput(b.Comb("bit", b.OrR(b.R(in))))
	b.MarkOutput(b.Comb("narrow", b.Bits(b.R(in), 8, 0)))
	b.MarkOutput(b.Comb("wide", b.Not(b.R(in))))
	g := b.G
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// feed drives n pseudo-random snapshots through v over a scratch state image
// shaped like the program's, mutating the traced slots each cycle (holding
// some cycles steady so the change-suppression path runs too).
func feed(t *testing.T, v *VCD, p *emit.Program, n int, seed int64) {
	t.Helper()
	st := make([]uint64, p.NumWords)
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < n; c++ {
		if c%5 != 4 { // every fifth cycle: no change at all
			for _, node := range p.Graph.Nodes {
				if node == nil || p.WordsOf[node.ID] == 0 {
					continue
				}
				off := p.Off[node.ID]
				for w := int32(0); w < p.WordsOf[node.ID]; w++ {
					st[off+w] = rng.Uint64()
				}
			}
		}
		v.Snapshot(st)
	}
}

// TestAsyncMatchesSync pins the pipeline's byte stream against the
// synchronous writer over the same snapshot sequence, across ring depths —
// determinism regardless of scheduling is the contract.
func TestAsyncMatchesSync(t *testing.T) {
	p := testProgram(t)
	var want bytes.Buffer
	sv, err := NewVCD(&want, p, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sv, p, 200, 7)
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("sync writer produced no output")
	}
	for _, ring := range []int{1, 2, DefaultRing, 64} {
		var got bytes.Buffer
		av, err := NewVCD(&got, p, nil, Options{Ring: ring})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, av, p, 200, 7)
		if err := av.Close(); err != nil {
			t.Fatalf("ring %d: %v", ring, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("ring %d: async output diverges from sync (%d vs %d bytes)",
				ring, got.Len(), want.Len())
		}
	}
}

// slowWriter delays every write — a saturated disk. With a tiny ring the
// coordinator must block on backpressure, not drop or reorder snapshots.
type slowWriter struct {
	buf   bytes.Buffer
	delay time.Duration
}

func (w *slowWriter) Write(b []byte) (int, error) {
	time.Sleep(w.delay)
	return w.buf.Write(b)
}

func TestBackpressureSlowWriter(t *testing.T) {
	p := testProgram(t)
	var want bytes.Buffer
	sv, err := NewVCD(&want, p, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sv, p, 60, 11)
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	slow := &slowWriter{delay: 2 * time.Millisecond}
	av, err := NewVCD(slow, p, nil, Options{Ring: 1})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, av, p, 60, 11)
	if err := av.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slow.buf.Bytes(), want.Bytes()) {
		t.Fatalf("backpressured output diverges (%d vs %d bytes)", slow.buf.Len(), want.Len())
	}
}

// failWriter accepts a budget of bytes, then fails every write — a full
// disk mid-run.
type failWriter struct {
	budget int
	err    error
}

func (w *failWriter) Write(b []byte) (int, error) {
	if w.budget <= 0 {
		return 0, w.err
	}
	w.budget -= len(b)
	return len(b), nil
}

// TestErrorPropagation: after the sink dies mid-run, the first error surfaces
// on Err, Snapshot keeps draining without blocking (ring 1: a stalled writer
// would deadlock the second post-error snapshot), and Close returns the
// error — every call.
func TestErrorPropagation(t *testing.T) {
	p := testProgram(t)
	sinkErr := errors.New("disk full")
	fw := &failWriter{budget: 600, err: sinkErr}
	v, err := NewVCD(fw, p, nil, Options{Ring: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		feed(t, v, p, 500, 23)
	}()
	select {
	case err := <-v.Err():
		if !errors.Is(err, sinkErr) {
			t.Fatalf("Err delivered %v, want %v", err, sinkErr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no error surfaced on Err within 10s")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Snapshot blocked after sink error (drain mode broken)")
	}
	for i := 0; i < 2; i++ {
		if err := v.Close(); !errors.Is(err, sinkErr) {
			t.Fatalf("Close #%d = %v, want %v", i+1, err, sinkErr)
		}
	}
}

// TestHeaderError: a sink that is dead from the start fails construction.
func TestHeaderError(t *testing.T) {
	p := testProgram(t)
	fw := &failWriter{budget: 0, err: errors.New("dead sink")}
	if _, err := NewVCD(fw, p, nil, Options{}); err == nil {
		t.Fatal("NewVCD succeeded on a dead sink")
	}
}

// TestCloseIdempotent: Close drains once and keeps returning the same result.
func TestCloseIdempotent(t *testing.T) {
	p := testProgram(t)
	var buf bytes.Buffer
	v, err := NewVCD(&buf, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, v, p, 10, 3)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatalf("second Close wrote %d more bytes", buf.Len()-n)
	}
}

// TestSelectNodesDefault: nil node list selects inputs, registers, and
// outputs, name-sorted — the contract the golden waveforms depend on.
func TestSelectNodesDefault(t *testing.T) {
	p := testProgram(t)
	nodes := SelectNodes(p.Graph)
	if len(nodes) == 0 {
		t.Fatal("no nodes selected")
	}
	for i, n := range nodes {
		if !(n.Kind == ir.KindInput || n.Kind == ir.KindReg || n.IsOutput) {
			t.Fatalf("node %s (kind %v) selected but not traceable-by-default", n.Name, n.Kind)
		}
		if i > 0 && nodes[i-1].Name >= n.Name {
			t.Fatalf("selection not name-sorted at %d: %s >= %s", i, nodes[i-1].Name, n.Name)
		}
	}
}

// TestEmitFormats spot-checks the value formatting rules against hand-built
// expectations: width-1 digits, leading-zero suppression, all-zero values.
func TestEmitFormats(t *testing.T) {
	b := ir.NewBuilder("fmt")
	in := b.Input("a", 8)
	b.MarkOutput(b.Comb("b1", b.OrR(b.R(in))))
	g := b.G
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	v, err := NewVCD(&buf, p, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	st := make([]uint64, p.NumWords)
	a := p.Off[g.FindNode("a").ID]
	b1 := p.Off[g.FindNode("b1").ID]
	st[a], st[b1] = 0, 0
	v.Snapshot(st)
	st[a], st[b1] = 0b101, 1
	v.Snapshot(st)
	v.Snapshot(st) // no change: no timestamp
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"#0\nb0 !\n0\"\n", "#1\nb101 !\n1\"\n"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("#2")) {
		t.Fatalf("change-free cycle emitted a timestamp:\n%s", out)
	}
}

var _ io.Writer = (*slowWriter)(nil)

// TestResumeSplitsStream pins the Resume option: splitting a run at any
// cycle K and continuing with Options.Resume{Time: K, State: <image at K>}
// produces a second stream that, appended to the first K cycles' bytes,
// equals the uninterrupted stream exactly — the property the snapshot
// round-trip suite relies on, isolated from the engines.
func TestResumeSplitsStream(t *testing.T) {
	p := testProgram(t)
	const cycles = 30

	// Deterministic state sequence, captured so both runs replay it exactly.
	states := make([][]uint64, cycles)
	{
		st := make([]uint64, p.NumWords)
		rng := rand.New(rand.NewSource(77))
		for c := 0; c < cycles; c++ {
			if c%5 != 4 {
				for _, node := range p.Graph.Nodes {
					if node == nil || p.WordsOf[node.ID] == 0 {
						continue
					}
					off := p.Off[node.ID]
					for w := int32(0); w < p.WordsOf[node.ID]; w++ {
						st[off+w] = rng.Uint64()
					}
				}
			}
			states[c] = append([]uint64(nil), st...)
		}
	}
	run := func(v *VCD, from, to int) {
		for c := from; c < to; c++ {
			v.Snapshot(states[c])
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var gold bytes.Buffer
	vg, err := NewVCD(&gold, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run(vg, 0, cycles)

	for _, K := range []int{1, 7, 15, cycles - 1} {
		for _, sync := range []bool{false, true} {
			var part1, part2 bytes.Buffer
			v1, err := NewVCD(&part1, p, nil, Options{Sync: sync})
			if err != nil {
				t.Fatal(err)
			}
			run(v1, 0, K)
			v2, err := NewVCD(&part2, p, nil, Options{Sync: sync,
				Resume: &Resume{Time: uint64(K), State: states[K-1]}})
			if err != nil {
				t.Fatal(err)
			}
			run(v2, K, cycles)
			joined := append(append([]byte{}, part1.Bytes()...), part2.Bytes()...)
			if !bytes.Equal(gold.Bytes(), joined) {
				t.Fatalf("K=%d sync=%v: resumed stream diverges (%d vs %d bytes)", K, sync, gold.Len(), len(joined))
			}
		}
	}
}
