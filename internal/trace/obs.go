package trace

import (
	"io"

	"gsim/internal/obs"
)

// Metrics is the trace-pipeline observability bundle. One bundle serves
// every VCD pipeline in the process (pass it via Options.Metrics): the
// counters aggregate across sessions, and the occupancy gauge reports the
// most recently sampled ring — a fleet-level congestion signal, not a
// per-session one.
type Metrics struct {
	// Snapshots counts cycles captured into the pipeline (sync or async).
	Snapshots *obs.Counter
	// Stalls counts Snapshot calls that found the ring full and had to
	// block for the writer — the backpressure events that throttle the
	// simulation to the sink's speed.
	Stalls *obs.Counter
	// RingOccupancy is the number of filled slots observed at the last
	// Snapshot (0..ring depth).
	RingOccupancy *obs.Gauge
	// Bytes counts VCD bytes that reached the underlying sink.
	Bytes *obs.Counter
	// Errors counts sink write failures (at most one per pipeline — after
	// the first, the writer drains without encoding).
	Errors *obs.Counter
}

// NewMetrics registers the trace metric family in r (idempotent).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Snapshots:     r.Counter("gsim_trace_snapshots_total", "Cycles captured into waveform pipelines."),
		Stalls:        r.Counter("gsim_trace_backpressure_stalls_total", "Snapshot calls that blocked on a full ring."),
		RingOccupancy: r.Gauge("gsim_trace_ring_occupancy", "Filled ring slots at the last snapshot (most recent pipeline sampled)."),
		Bytes:         r.Counter("gsim_trace_bytes_written_total", "VCD bytes written to trace sinks."),
		Errors:        r.Counter("gsim_trace_errors_total", "Trace sink write failures."),
	}
}

// countingWriter forwards to w, crediting written bytes to c. It wraps the
// sink *under* the bufio layer, so the counter reports bytes that actually
// left the process-side buffer.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}
