package fleet

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gsim/internal/server"
)

// TestFleetEndToEnd is the subprocess smoke the CI fleet-smoke job runs: a
// real gsim-router process fronting three real gsim-serve replicas (each
// self-registered via -router/-advertise), a traced scalar session and a
// traced gang session stepped mid-run, the replica homing them SIGTERMed —
// which must retire gracefully: readiness flips, the router live-migrates
// both sessions, the process exits clean — and both trajectories finished on
// their new homes must be bit-identical (state snapshot, stats, VCD bytes)
// to uninterrupted in-process reference runs.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short")
	}
	bin := t.TempDir()
	for _, target := range []string{"gsim-serve", "gsim-router"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, target), "gsim/cmd/"+target).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", target, err, out)
		}
	}
	src := readDesign(t, "counter.fir")

	// The router, on an ephemeral port with fast health probing.
	routerURL, _, routerKill := startProcTail(t, filepath.Join(bin, "gsim-router"),
		"-addr", "127.0.0.1:0", "-probe-interval", "500ms", "-retry-backoff", "5ms")
	defer routerKill()

	// Three replicas registered with it. Replica tails are collected so the
	// SIGTERM path's own reporting can be asserted.
	type replica struct {
		name string
		url  string
		cmd  *exec.Cmd
		tail *procTail
	}
	var reps []replica
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("rep%d", i)
		url, tail, kill := startProcTail(t, filepath.Join(bin, "gsim-serve"),
			"-addr", "127.0.0.1:0", "-router", routerURL, "-name", name, "-drain-timeout", "30s")
		defer kill()
		reps = append(reps, replica{name: name, url: url, cmd: tail.cmd, tail: tail})
	}
	waitFor(t, 10*time.Second, func() bool {
		var fleetResp struct {
			Replicas []ReplicaInfo `json:"replicas"`
		}
		if doJSON(t, "GET", routerURL+"/fleet", nil, &fleetResp) != http.StatusOK {
			return false
		}
		ready := 0
		for _, r := range fleetResp.Replicas {
			if r.State == "ready" {
				ready++
			}
		}
		return ready == 3
	})

	scalarSpec := server.SessionSpec{TraceLanes: []int{0}}
	gangSpec := server.SessionSpec{Lanes: 3, TraceLanes: []int{1}}
	scalarP1 := []server.Op{{Op: "poke", Name: "en", Value: "1"}, {Op: "step", N: 12}}
	scalarP2 := []server.Op{{Op: "step", N: 9}, {Op: "peek", Name: "out"}}
	gangP1 := []server.Op{
		{Op: "poke", Name: "en", Value: "1", Lane: lane(0)},
		{Op: "poke", Name: "en", Value: "1", Lane: lane(1)},
		{Op: "step", N: 6},
		{Op: "park", Lane: lane(2)},
		{Op: "step", N: 3},
	}
	gangP2 := []server.Op{
		{Op: "step", N: 4},
		{Op: "wake", Lane: lane(2)},
		{Op: "step", N: 2},
		{Op: "peek", Name: "out", Lane: lane(1)},
	}

	// Uninterrupted references, computed in-process (compiles are
	// deterministic across processes, so blobs and waveforms are comparable).
	refURL := refServer(t)
	refScalar, _ := createSession(t, refURL, src, scalarSpec)
	refScalar.ops(scalarP1...)
	refScalarPeek := refScalar.ops(scalarP2...)[1].Value
	refScalarBlob, _ := refScalar.snapshotLane(0)
	refScalarVCD := refScalar.vcd(0)
	refGang, _ := createSession(t, refURL, src, gangSpec)
	refGang.ops(gangP1...)
	refGangPeek := refGang.ops(gangP2...)[3].Value
	var refGangBlobs [][]byte
	for l := 0; l < 3; l++ {
		b, _ := refGang.snapshotLane(l)
		refGangBlobs = append(refGangBlobs, b)
	}
	refGangVCD := refGang.vcd(1)

	// The fleet run. Both sessions share one design, so affinity homes them
	// on the same replica — the one we then terminate.
	scalar, scalarCreated := createSession(t, routerURL, src, scalarSpec)
	gang, gangCreated := createSession(t, routerURL, src, gangSpec)
	if scalarCreated.Replica != gangCreated.Replica {
		t.Fatalf("affinity broken across processes: scalar on %s, gang on %s",
			scalarCreated.Replica, gangCreated.Replica)
	}
	scalar.ops(scalarP1...)
	gang.ops(gangP1...)

	var victim replica
	for _, r := range reps {
		if r.name == scalarCreated.Replica {
			victim = r
		}
	}
	if victim.name == "" {
		t.Fatalf("home %s not among started replicas", scalarCreated.Replica)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := victim.tail.waitExit(); err != nil {
		t.Fatalf("victim replica exited dirty: %v\n%s", err, victim.tail.String())
	}
	if out := victim.tail.String(); !strings.Contains(out, "all sessions migrated away") {
		t.Fatalf("victim did not report a clean migration handoff:\n%s", out)
	}

	// Both sessions must keep serving through the router, now on new homes.
	if got := scalar.ops(scalarP2...)[1].Value; got != refScalarPeek {
		t.Fatalf("scalar peek after migration: %s, reference %s", got, refScalarPeek)
	}
	if got := gang.ops(gangP2...)[3].Value; got != refGangPeek {
		t.Fatalf("gang peek after migration: %s, reference %s", got, refGangPeek)
	}
	if blob, _ := scalar.snapshotLane(0); !bytes.Equal(blob, refScalarBlob) {
		t.Fatal("scalar state snapshot differs from uninterrupted reference")
	}
	if vcd := scalar.vcd(0); !bytes.Equal(vcd, refScalarVCD) {
		t.Fatalf("scalar VCD differs from uninterrupted reference:\n--- migrated\n%s\n--- reference\n%s", vcd, refScalarVCD)
	}
	for l := 0; l < 3; l++ {
		if blob, _ := gang.snapshotLane(l); !bytes.Equal(blob, refGangBlobs[l]) {
			t.Fatalf("gang lane %d state snapshot differs from uninterrupted reference", l)
		}
	}
	if vcd := gang.vcd(1); !bytes.Equal(vcd, refGangVCD) {
		t.Fatalf("gang VCD differs from uninterrupted reference:\n--- migrated\n%s\n--- reference\n%s", vcd, refGangVCD)
	}

	var stats FleetStats
	if doJSON(t, "GET", routerURL+"/v1/stats", nil, &stats) != http.StatusOK {
		t.Fatal("router stats unavailable after migration")
	}
	if stats.Migrated != 2 || stats.SessionsLost != 0 || stats.MigrationsFail != 0 {
		t.Fatalf("migration accounting: %+v", stats)
	}
}

// --- subprocess plumbing ---------------------------------------------------

var bannerRe = regexp.MustCompile(`listening on (http://\S+)`)

type procTail struct {
	cmd     *exec.Cmd
	drained chan struct{} // closed when stdout hits EOF (process exited)
	mu      sync.Mutex
	buf     strings.Builder
}

func (p *procTail) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// waitExit blocks until the process exits AND its stdout is fully drained —
// cmd.Wait alone closes the pipe and can race the tail goroutine out of the
// final lines.
func (p *procTail) waitExit() error {
	<-p.drained
	return p.cmd.Wait()
}

// startProcTail launches a binary that prints a "listening on http://..."
// banner, scrapes the URL, and keeps draining its stdout (so the process
// never blocks) into an inspectable tail. kill is idempotent and safe after
// the process already exited.
func startProcTail(t *testing.T, bin string, args ...string) (url string, tail *procTail, kill func()) {
	t.Helper()
	// Warn-level logging keeps the forwarded stderr quiet in healthy runs
	// while still surfacing drain/migration failures.
	cmd := exec.Command(bin, append([]string{"-log-level", "warn"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		t.Fatalf("no banner from %s", bin)
	}
	mm := bannerRe.FindStringSubmatch(sc.Text())
	if mm == nil {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected banner %q from %s", sc.Text(), bin)
	}
	tail = &procTail{cmd: cmd, drained: make(chan struct{})}
	go func() {
		defer close(tail.drained)
		for sc.Scan() {
			tail.mu.Lock()
			tail.buf.WriteString(sc.Text() + "\n")
			tail.mu.Unlock()
		}
	}()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			<-tail.drained
		})
	}
	return mm[1], tail, kill
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
