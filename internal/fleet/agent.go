package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gsim/internal/server"
)

// Agent is the replica side of the fleet protocol, run inside gsim-serve
// when it is launched with a router: it self-registers, heartbeats, and on
// graceful termination asks the router to migrate its sessions away before
// the process drains for real.
type Agent struct {
	RouterURL string // router base URL
	Name      string // this replica's registry name
	SelfURL   string // this replica's advertised base URL
	Manager   *server.Manager
	// Heartbeat cadence (0 = 2s). Keep well under the router's HeartbeatTTL.
	Interval time.Duration
	// HTTPClient overrides the client for router traffic.
	HTTPClient *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

func (a *Agent) client() *http.Client {
	if a.HTTPClient != nil {
		return a.HTTPClient
	}
	return http.DefaultClient
}

func (a *Agent) interval() time.Duration {
	if a.Interval > 0 {
		return a.Interval
	}
	return 2 * time.Second
}

// Start registers with the router (retrying until it answers — the router
// may come up after its replicas) and begins the heartbeat loop. Returns
// once the first registration succeeds or ctx ends.
func (a *Agent) Start(ctx context.Context) error {
	a.stop = make(chan struct{})
	for {
		if err := a.register(); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: registration canceled: %w", ctx.Err())
		case <-time.After(a.interval()):
		}
	}
	a.wg.Add(1)
	go a.heartbeatLoop()
	return nil
}

// Stop ends the heartbeat loop. It does not deregister: a stopping replica
// either drained (router already knows) or crashed (heartbeats expire).
func (a *Agent) Stop() {
	a.stopOnce.Do(func() {
		if a.stop != nil {
			close(a.stop)
		}
	})
	a.wg.Wait()
}

func (a *Agent) register() error {
	return a.post("/fleet/replicas", RegisterRequest{Name: a.Name, URL: a.SelfURL})
}

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.interval())
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			if err := a.post("/fleet/replicas/"+a.Name+"/heartbeat", struct{}{}); err != nil {
				// 404 = the router restarted and lost us; re-register so our
				// slot (and placement share) comes back.
				_ = a.register()
			}
		}
	}
}

// Retire runs the graceful-termination handoff: flip this replica to its
// migration-window drain (readyz 503, creates refused, sessions serving),
// ask the router to migrate everything away, then wait — up to ctx — for the
// session count to reach zero. Callers follow with Manager.Drain to reap
// whatever remains (sessions the router could not move, or all of them when
// no router is reachable).
func (a *Agent) Retire(ctx context.Context) error {
	a.Manager.BeginDrain()
	if err := a.post("/fleet/replicas/"+a.Name+"/drain", struct{}{}); err != nil {
		return fmt.Errorf("fleet: drain notification failed (sessions will be dropped): %w", err)
	}
	for a.Manager.SessionCount() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: %d sessions still homed here: %w", a.Manager.SessionCount(), ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil
}

func (a *Agent) post(path string, body any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := a.client().Post(a.RouterURL+path, "application/json", &buf)
	if err != nil {
		return err
	}
	return decodeResponse(resp, nil)
}
