package fleet

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"gsim/internal/server"
)

// --- in-process fleet harness ---------------------------------------------

// testFleet is an in-process fleet: N managers behind httptest servers,
// registered with a router that is itself served over httptest. Everything
// is torn down (and leak-checked by TestMain) via t.Cleanup.
type testFleet struct {
	t      *testing.T
	rt     *Router
	router *httptest.Server
	mgrs   map[string]*server.Manager
	reps   map[string]*httptest.Server
}

func newTestFleet(t *testing.T, names ...string) *testFleet {
	t.Helper()
	rt := NewRouter(Config{RetryBackoff: time.Millisecond})
	fl := &testFleet{
		t:    t,
		rt:   rt,
		mgrs: make(map[string]*server.Manager),
		reps: make(map[string]*httptest.Server),
	}
	for _, name := range names {
		mgr := server.NewManager()
		ts := httptest.NewServer(mgr.Handler())
		fl.mgrs[name] = mgr
		fl.reps[name] = ts
		rt.Register(name, ts.URL)
	}
	fl.router = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		fl.router.Close()
		rt.Close()
		for name, ts := range fl.reps {
			_ = fl.mgrs[name].Drain(context.Background())
			ts.Close()
		}
	})
	return fl
}

// home returns the replica a routed session currently lives on.
func (fl *testFleet) home(sid string) string {
	fl.rt.mu.Lock()
	fs, ok := fl.rt.sessions[sid]
	fl.rt.mu.Unlock()
	if !ok {
		fl.t.Fatalf("no routed session %s", sid)
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.replica
}

func readDesign(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func doJSON(t testing.TB, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("%s %s: undecodable body: %v", method, url, err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: %v (body %s)", method, url, err, raw)
		}
	}
	return resp.StatusCode
}

// apiSession drives one session over HTTP — the same helper serves routed
// sessions (base = router URL) and direct ones (base = replica URL), which
// is what lets the bit-identity tests compare a migrated trajectory against
// an uninterrupted reference through identical machinery.
type apiSession struct {
	t    *testing.T
	base string
	id   string
}

func createSession(t *testing.T, base, firrtl string, spec server.SessionSpec) (apiSession, RoutedCreateResponse) {
	t.Helper()
	var resp RoutedCreateResponse
	status := doJSON(t, "POST", base+"/v1/sessions", server.CreateRequest{FIRRTL: firrtl, SessionSpec: spec}, &resp)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	return apiSession{t: t, base: base, id: resp.Session}, resp
}

func (s apiSession) ops(ops ...server.Op) []server.OpResult {
	s.t.Helper()
	var resp server.OpsResponse
	if status := doJSON(s.t, "POST", s.base+"/v1/sessions/"+s.id+"/ops", server.OpsRequest{Ops: ops}, &resp); status != http.StatusOK {
		s.t.Fatalf("ops: status %d", status)
	}
	return resp.Results
}

func (s apiSession) snapshotLane(lane int) ([]byte, uint64) {
	s.t.Helper()
	var resp server.SnapshotResponse
	url := fmt.Sprintf("%s/v1/sessions/%s/snapshot?lane=%d", s.base, s.id, lane)
	if status := doJSON(s.t, "POST", url, struct{}{}, &resp); status != http.StatusOK {
		s.t.Fatalf("snapshot lane %d: status %d", lane, status)
	}
	data, err := base64.StdEncoding.DecodeString(resp.Snapshot)
	if err != nil {
		s.t.Fatal(err)
	}
	return data, resp.Cycles
}

func (s apiSession) vcd(lane int) []byte {
	s.t.Helper()
	var resp server.VCDResponse
	url := fmt.Sprintf("%s/v1/sessions/%s/vcd?lane=%d", s.base, s.id, lane)
	if status := doJSON(s.t, "GET", url, nil, &resp); status != http.StatusOK {
		s.t.Fatalf("vcd lane %d: status %d", lane, status)
	}
	return []byte(resp.VCD)
}

func (s apiSession) laneInfos() []server.LaneInfo {
	s.t.Helper()
	var infos []server.LaneInfo
	if status := doJSON(s.t, "GET", s.base+"/v1/sessions/"+s.id+"/lanes", nil, &infos); status != http.StatusOK {
		s.t.Fatalf("lanes: status %d", status)
	}
	return infos
}

func lane(n int) *int { return &n }

// refServer opens a standalone replica (no fleet) for uninterrupted
// reference trajectories.
func refServer(t *testing.T) string {
	t.Helper()
	mgr := server.NewManager()
	ts := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		_ = mgr.Drain(context.Background())
		ts.Close()
	})
	return ts.URL
}

// --- placement + proxy -----------------------------------------------------

// TestPlacementAffinity pins the economics the router exists for: every
// session of one design — scalar or gang, traced or not — lands on the same
// replica, so the whole fleet pays exactly one compile for it.
func TestPlacementAffinity(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2", "r3")
	src := readDesign(t, "counter.fir")

	specs := []server.SessionSpec{
		{},
		{Lanes: 4},
		{TraceLanes: []int{0}},
		{Lanes: 2, TraceLanes: []int{1}},
	}
	var home string
	for i, spec := range specs {
		_, resp := createSession(t, fl.router.URL, src, spec)
		if i == 0 {
			home = resp.Replica
		} else if resp.Replica != home {
			t.Fatalf("session %d (spec %+v) placed on %s, earlier ones on %s", i, spec, resp.Replica, home)
		}
	}

	var stats FleetStats
	if status := doJSON(t, "GET", fl.router.URL+"/v1/stats", nil, &stats); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var hits, misses uint64
	for _, rs := range stats.PerReplica {
		hits += rs.CacheHits
		misses += rs.CacheMisses
	}
	if misses != 1 || hits != uint64(len(specs)-1) {
		t.Fatalf("fleet compiled %d times with %d cache hits for one design, want 1 compile / %d hits",
			misses, hits, len(specs)-1)
	}

	// A spec that changes the compile key places independently — and also
	// deterministically (same key, same home).
	_, a := createSession(t, fl.router.URL, src, server.SessionSpec{Eval: "interp"})
	_, b := createSession(t, fl.router.URL, src, server.SessionSpec{Eval: "interp"})
	if a.Replica != b.Replica {
		t.Fatalf("same placement key landed on %s then %s", a.Replica, b.Replica)
	}
}

func TestRouterProxy(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2")
	s, created := createSession(t, fl.router.URL, readDesign(t, "counter.fir"), server.SessionSpec{})
	if created.DesignHash == "" || created.Replica == "" {
		t.Fatalf("create response missing routing metadata: %+v", created)
	}

	results := s.ops(
		server.Op{Op: "poke", Name: "en", Value: "1"},
		server.Op{Op: "step", N: 10},
		server.Op{Op: "peek", Name: "out"},
	)
	if len(results) != 3 || results[2].Value != "8'h9" {
		t.Fatalf("proxied ops results: %+v", results)
	}

	var list []RoutedSessionInfo
	if status := doJSON(t, "GET", fl.router.URL+"/v1/sessions", nil, &list); status != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: status %d, %+v", status, list)
	}
	if list[0].Session != s.id || list[0].Replica != created.Replica || list[0].Cycles != 10 {
		t.Fatalf("listed session: %+v", list[0])
	}

	if status := doJSON(t, "POST", fl.router.URL+"/v1/sessions/nope/ops", server.OpsRequest{}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}
	if status := doJSON(t, "DELETE", fl.router.URL+"/v1/sessions/"+s.id, nil, nil); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	if status := doJSON(t, "POST", fl.router.URL+"/v1/sessions/"+s.id+"/ops", server.OpsRequest{}, nil); status != http.StatusNotFound {
		t.Fatalf("ops after delete: status %d, want 404", status)
	}
}

// TestCreateRetriesDrainingReplica: a replica that began draining on its own
// (SIGTERM landed before any router notification) refuses the create with
// 503; the router must re-resolve the ring and place elsewhere instead of
// surfacing the refusal.
func TestCreateRetriesDrainingReplica(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2")
	src := readDesign(t, "counter.fir")
	key := PlacementKey(src, server.SessionSpec{})
	preferred, ok := fl.rt.pickReplica(key, nil)
	if !ok {
		t.Fatal("no placement")
	}
	fl.mgrs[preferred.Name].BeginDrain()

	_, resp := createSession(t, fl.router.URL, src, server.SessionSpec{})
	if resp.Replica == preferred.Name {
		t.Fatalf("session placed on draining replica %s", preferred.Name)
	}
}

func TestRouterReadyz(t *testing.T) {
	fl := newTestFleet(t, "r1")
	if status := doJSON(t, "GET", fl.router.URL+"/readyz", nil, nil); status != http.StatusOK {
		t.Fatalf("readyz with a ready replica: %d", status)
	}
	if _, _, err := fl.rt.DrainReplica("r1"); err != nil {
		t.Fatal(err)
	}
	if status := doJSON(t, "GET", fl.router.URL+"/readyz", nil, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no ready replica: %d, want 503", status)
	}
}

// --- live migration --------------------------------------------------------

// TestMigrationScalarBitIdentical is the cross-process correctness property
// this package exists to uphold: a traced scalar session stepped N cycles,
// live-migrated to another replica, and stepped M more must be bit-identical
// — state image, stat counters, waveform bytes — to the same N+M cycles run
// uninterrupted.
func TestMigrationScalarBitIdentical(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2", "r3")
	src := readDesign(t, "counter.fir")
	spec := server.SessionSpec{TraceLanes: []int{0}}

	phase1 := []server.Op{{Op: "poke", Name: "en", Value: "1"}, {Op: "step", N: 10}}
	phase2 := []server.Op{{Op: "step", N: 7}, {Op: "peek", Name: "out"}}

	// Uninterrupted reference.
	ref, _ := createSession(t, refServer(t), src, spec)
	ref.ops(phase1...)
	refPeek := ref.ops(phase2...)[1].Value
	refBlob, refCycles := ref.snapshotLane(0)
	refVCD := ref.vcd(0)

	// Migrated run: identical trajectory, interrupted by a drain of its home.
	mig, created := createSession(t, fl.router.URL, src, spec)
	mig.ops(phase1...)
	oldHome := created.Replica
	migrated, failed, err := fl.rt.DrainReplica(oldHome)
	if err != nil || migrated != 1 || len(failed) != 0 {
		t.Fatalf("drain %s: migrated=%d failed=%v err=%v", oldHome, migrated, failed, err)
	}
	newHome := fl.home(mig.id)
	if newHome == oldHome {
		t.Fatalf("session still homed on drained replica %s", oldHome)
	}
	if n := fl.mgrs[oldHome].SessionCount(); n != 0 {
		t.Fatalf("drained replica still holds %d sessions", n)
	}
	migPeek := mig.ops(phase2...)[1].Value
	migBlob, migCycles := mig.snapshotLane(0)
	migVCD := mig.vcd(0)

	if migPeek != refPeek {
		t.Fatalf("peek after migration: %s, reference %s", migPeek, refPeek)
	}
	if migCycles != refCycles {
		t.Fatalf("cycles after migration: %d, reference %d", migCycles, refCycles)
	}
	if !bytes.Equal(migBlob, refBlob) {
		t.Fatalf("state snapshot differs after migration (%d vs %d bytes)", len(migBlob), len(refBlob))
	}
	if !bytes.Equal(migVCD, refVCD) {
		t.Fatalf("VCD differs after migration:\n--- migrated (%d bytes)\n%s\n--- reference (%d bytes)\n%s",
			len(migVCD), migVCD, len(refVCD), refVCD)
	}
}

// TestMigrationGangBitIdentical extends the property to gang sessions:
// per-lane state, per-lane waveforms, and the park/wake live mask all
// survive the move.
func TestMigrationGangBitIdentical(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2", "r3")
	src := readDesign(t, "counter.fir")
	spec := server.SessionSpec{Lanes: 4, TraceLanes: []int{0, 2}}

	phase1 := []server.Op{
		{Op: "poke", Name: "en", Value: "1", Lane: lane(0)},
		{Op: "poke", Name: "en", Value: "1", Lane: lane(1)},
		{Op: "poke", Name: "en", Value: "1", Lane: lane(2)},
		{Op: "step", N: 3},
		{Op: "park", Lane: lane(1)},
		{Op: "step", N: 4},
	}
	phase2 := []server.Op{
		{Op: "step", N: 5},
		{Op: "wake", Lane: lane(1)},
		{Op: "step", N: 2},
		{Op: "peek", Name: "out", Lane: lane(0)},
		{Op: "peek", Name: "out", Lane: lane(1)},
		{Op: "peek", Name: "out", Lane: lane(3)},
	}

	run := func(s apiSession, migrateBetween func()) (peeks []string, blobs [][]byte, vcds [][]byte, infos []server.LaneInfo) {
		s.ops(phase1...)
		if migrateBetween != nil {
			migrateBetween()
		}
		res := s.ops(phase2...)
		for _, r := range res[len(res)-3:] {
			peeks = append(peeks, r.Value)
		}
		for l := 0; l < 4; l++ {
			blob, _ := s.snapshotLane(l)
			blobs = append(blobs, blob)
		}
		return peeks, blobs, [][]byte{s.vcd(0), s.vcd(2)}, s.laneInfos()
	}

	ref, _ := createSession(t, refServer(t), src, spec)
	refPeeks, refBlobs, refVCDs, refInfos := run(ref, nil)

	mig, created := createSession(t, fl.router.URL, src, spec)
	migPeeks, migBlobs, migVCDs, migInfos := run(mig, func() {
		migrated, failed, err := fl.rt.DrainReplica(created.Replica)
		if err != nil || migrated != 1 || len(failed) != 0 {
			t.Fatalf("drain: migrated=%d failed=%v err=%v", migrated, failed, err)
		}
		// The park mask must survive the move itself (not just the final
		// state): lane 1 was parked when its home drained.
		for _, li := range mig.laneInfos() {
			if li.Lane == 1 && li.Live {
				t.Fatal("parked lane woke up across migration")
			}
		}
	})

	for i := range refPeeks {
		if migPeeks[i] != refPeeks[i] {
			t.Fatalf("peek %d: migrated %s, reference %s", i, migPeeks[i], refPeeks[i])
		}
	}
	for l := range refBlobs {
		if !bytes.Equal(migBlobs[l], refBlobs[l]) {
			t.Fatalf("lane %d state snapshot differs after migration", l)
		}
	}
	for i := range refVCDs {
		if !bytes.Equal(migVCDs[i], refVCDs[i]) {
			t.Fatalf("traced lane %d VCD differs after migration:\n--- migrated\n%s\n--- reference\n%s",
				[]int{0, 2}[i], migVCDs[i], refVCDs[i])
		}
	}
	for l := range refInfos {
		if migInfos[l].Live != refInfos[l].Live || migInfos[l].Cycles != refInfos[l].Cycles {
			t.Fatalf("lane %d info diverged: migrated %+v, reference %+v", l, migInfos[l], refInfos[l])
		}
	}
}

// TestMigrationRace: the chosen migration target begins draining between
// ring resolution and the create. The orchestrator must absorb the 503,
// exclude the target, and land on the third replica.
func TestMigrationRace(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2", "r3")
	src := readDesign(t, "counter.fir")

	s, created := createSession(t, fl.router.URL, src, server.SessionSpec{})
	s.ops(server.Op{Op: "poke", Name: "en", Value: "1"}, server.Op{Op: "step", N: 6})

	key := PlacementKey(src, server.SessionSpec{})
	target, ok := fl.rt.pickReplica(key, map[string]bool{created.Replica: true})
	if !ok {
		t.Fatal("no migration target")
	}
	// The race: the preferred target starts its own drain, but the router's
	// registry still believes it is ready.
	fl.mgrs[target.Name].BeginDrain()

	migrated, failed, err := fl.rt.DrainReplica(created.Replica)
	if err != nil || migrated != 1 || len(failed) != 0 {
		t.Fatalf("drain: migrated=%d failed=%v err=%v", migrated, failed, err)
	}
	newHome := fl.home(s.id)
	if newHome == created.Replica || newHome == target.Name {
		t.Fatalf("session landed on %s; both %s (drained) and %s (racing) should be excluded",
			newHome, created.Replica, target.Name)
	}
	if got := s.ops(server.Op{Op: "step", N: 4}, server.Op{Op: "peek", Name: "out"})[1].Value; got != "8'h9" {
		t.Fatalf("post-race trajectory: out = %s, want 8'h9", got)
	}
}

// TestMigrationNoTarget: draining the only replica cannot move its sessions
// anywhere. The drain must report the failure and leave the session intact
// and serving on its (still-alive, still-draining) home rather than destroy
// it.
func TestMigrationNoTarget(t *testing.T) {
	fl := newTestFleet(t, "r1")
	s, _ := createSession(t, fl.router.URL, readDesign(t, "counter.fir"), server.SessionSpec{})
	s.ops(server.Op{Op: "poke", Name: "en", Value: "1"}, server.Op{Op: "step", N: 3})

	migrated, failed, err := fl.rt.DrainReplica("r1")
	if err != nil || migrated != 0 || len(failed) != 1 || failed[0] != s.id {
		t.Fatalf("drain of only replica: migrated=%d failed=%v err=%v", migrated, failed, err)
	}
	if got := s.ops(server.Op{Op: "peek", Name: "out"})[0].Value; got != "8'h2" {
		t.Fatalf("session damaged by failed migration: out = %s", got)
	}
}

// TestDrainReinstateBounce: the planned-maintenance cycle. Drain moves
// everything off; Reinstate refuses while the replica-level drain is still
// in effect (its manager refuses creates), and a fresh process registering
// under the same name returns the slot to rotation.
func TestDrainReinstateBounce(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2")
	src := readDesign(t, "counter.fir")
	s, created := createSession(t, fl.router.URL, src, server.SessionSpec{})
	s.ops(server.Op{Op: "step", N: 2})

	if _, failed, err := fl.rt.DrainReplica(created.Replica); err != nil || len(failed) != 0 {
		t.Fatalf("drain: failed=%v err=%v", failed, err)
	}
	if err := fl.rt.Reinstate(created.Replica); err == nil {
		t.Fatal("Reinstate succeeded while the replica itself is still draining")
	}

	// "Process restart": a fresh manager takes over the slot.
	old := fl.reps[created.Replica]
	_ = fl.mgrs[created.Replica].Drain(context.Background())
	old.Close()
	mgr := server.NewManager()
	ts := httptest.NewServer(mgr.Handler())
	fl.mgrs[created.Replica] = mgr
	fl.reps[created.Replica] = ts
	fl.rt.Register(created.Replica, ts.URL)

	if err := fl.rt.Reinstate(created.Replica); err != nil {
		t.Fatalf("Reinstate after restart: %v", err)
	}
	// The migrated session kept working through all of it.
	if got := s.ops(server.Op{Op: "peek", Name: "out"})[0].Value; got != "8'h0" {
		t.Fatalf("session lost across bounce: out = %s", got)
	}
}

// TestConcurrentOpsDuringMigration: proxied traffic racing a drain must
// never observe a half-moved session — every op lands either before the
// snapshot or after the restore, and the final count proves none was lost
// or doubled.
func TestConcurrentOpsDuringMigration(t *testing.T) {
	fl := newTestFleet(t, "r1", "r2", "r3")
	src := readDesign(t, "counter.fir")
	s, created := createSession(t, fl.router.URL, src, server.SessionSpec{})
	s.ops(server.Op{Op: "poke", Name: "en", Value: "1"})

	const steps = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < steps; i++ {
			s.ops(server.Op{Op: "step", N: 1})
		}
	}()
	time.Sleep(2 * time.Millisecond) // let some ops land pre-drain
	if _, failed, err := fl.rt.DrainReplica(created.Replica); err != nil || len(failed) != 0 {
		t.Fatalf("drain under load: failed=%v err=%v", failed, err)
	}
	<-done

	if got := s.ops(server.Op{Op: "peek", Name: "out"})[0].Value; got != fmt.Sprintf("8'h%x", steps-1) {
		t.Fatalf("ops lost or doubled across migration: out = %s, want 8'h%x", got, steps-1)
	}
}
