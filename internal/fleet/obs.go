// Observability for the fleet router: placement, proxy, membership, and
// migration metrics, the snapshot handoff store's bundle, and structured
// logging for the control-plane events an operator pages on.
package fleet

import (
	"log/slog"
	"time"

	"gsim/internal/obs"
	"gsim/internal/snapshot"
)

// RouterMetrics is the router-layer observability bundle. Built by
// Router.InitObs; nil on an uninstrumented router.
type RouterMetrics struct {
	reg *obs.Registry

	// Store is the snapshot handoff store's bundle (puts/gets/evictions,
	// resident and pinned bytes).
	Store *snapshot.StoreMetrics

	PlacementLookups *obs.Counter
	ProxyLatency     *obs.Histogram
	SessionsLost     *obs.Counter

	MigrationsOK     *obs.Counter
	MigrationsFailed *obs.Counter
	MigrationSeconds *obs.Histogram
	MigrationBytes   *obs.Counter
}

// Registry returns the registry this bundle registered into.
func (rm *RouterMetrics) Registry() *obs.Registry { return rm.reg }

// InitObs instruments the router: the fleet metric family registers in r,
// the handoff store starts crediting its bundle, and Handler() gains a
// GET /metrics route serving r.
func (rt *Router) InitObs(r *obs.Registry) *RouterMetrics {
	rm := &RouterMetrics{
		reg:   r,
		Store: snapshot.NewStoreMetrics(r),

		PlacementLookups: r.Counter("gsim_fleet_placement_lookups_total", "Consistent-hash placement resolutions."),
		ProxyLatency:     r.Histogram("gsim_fleet_proxy_latency_seconds", "Round-trip time of requests proxied to replicas.", nil),
		SessionsLost:     r.Counter("gsim_fleet_sessions_lost_total", "Sessions dropped because their home replica died."),

		MigrationsOK:     r.Counter("gsim_fleet_migrations_total", "Session migrations, by outcome.", obs.L("outcome", "success")),
		MigrationsFailed: r.Counter("gsim_fleet_migrations_total", "Session migrations, by outcome.", obs.L("outcome", "failed")),
		MigrationSeconds: r.Histogram("gsim_fleet_migration_duration_seconds", "Wall time of each successful session migration.", nil),
		MigrationBytes:   r.Counter("gsim_fleet_migration_bytes_total", "Snapshot and waveform bytes moved by successful migrations."),
	}
	r.GaugeFunc("gsim_fleet_replicas", "Registered replicas (any state).", func() float64 {
		n, _ := rt.replicaCounts()
		return float64(n)
	})
	r.GaugeFunc("gsim_fleet_replicas_ready", "Replicas eligible for placement.", func() float64 {
		_, ready := rt.replicaCounts()
		return float64(ready)
	})
	r.GaugeFunc("gsim_fleet_sessions", "Sessions in the routing table.", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(len(rt.sessions))
	})
	r.GaugeFunc("gsim_fleet_heartbeat_lag_seconds", "Age of the stalest live replica heartbeat.", func() float64 {
		return rt.heartbeatLag(time.Now()).Seconds()
	})
	rt.store.SetObs(rm.Store)
	rt.mu.Lock()
	rt.metrics = rm
	rt.mu.Unlock()
	return rm
}

// Metrics returns the bundle attached by InitObs, or nil.
func (rt *Router) Metrics() *RouterMetrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.metrics
}

// SetLogger routes the router's structured logging through l (default
// obs.NopLogger(); nil resets to it).
func (rt *Router) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	rt.mu.Lock()
	rt.logger = l
	rt.mu.Unlock()
}

// log returns the router's logger (never nil).
func (rt *Router) log() *slog.Logger {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.logger
}

// replicaCounts reports total and ready replicas.
func (rt *Router) replicaCounts() (total, ready int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, rep := range rt.replicas {
		total++
		if rep.State == StateReady {
			ready++
		}
	}
	return total, ready
}

// heartbeatLag is the age of the stalest heartbeat among non-dead replicas —
// the early-warning signal that precedes a TTL expiry. Zero with no live
// replicas.
func (rt *Router) heartbeatLag(now time.Time) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var worst time.Duration
	for _, rep := range rt.replicas {
		if rep.State == StateDead {
			continue
		}
		if lag := now.Sub(rep.lastBeat); lag > worst {
			worst = lag
		}
	}
	return worst
}
