package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"gsim/internal/obs"
	"gsim/internal/server"
)

// jsonBody encodes v for requests that need explicit headers (doJSON owns
// the plain-JSON path).
func jsonBody(t *testing.T, v any) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestMetricNameLint instantiates every metric bundle in the codebase —
// server (which pulls in engine, trace, and compile cache), fleet (which
// pulls in the snapshot store), and process — against one registry and walks
// the registered names: everything must match the gsim_ naming convention,
// and the combined surface must clear the fleet-wide breadth bar.
func TestMetricNameLint(t *testing.T) {
	reg := obs.NewRegistry()

	mgr := server.NewManager()
	defer mgr.Drain(context.Background())
	mgr.InitObs(reg)

	rt := NewRouter(Config{})
	defer rt.Close()
	rt.InitObs(reg)

	obs.RegisterProcessMetrics(reg)

	nameRE := regexp.MustCompile(`^gsim_[a-z0-9_]+$`)
	names := reg.Names()
	for _, n := range names {
		if !nameRE.MatchString(n) {
			t.Errorf("metric %q violates the gsim_[a-z0-9_]+ naming convention", n)
		}
	}
	if len(names) < 25 {
		t.Errorf("registry holds %d metric families, want >= 25 across all layers", len(names))
	}
}

// TestRouterMetricsAndRequestID checks the router half of the observability
// surface over real HTTP: the router's /metrics reflects membership, routed
// sessions, and placement traffic; a caller-supplied X-Gsim-Request-ID rides
// the proxied request all the way to the replica and comes back on the
// response; and header-less requests get router-generated IDs that propagate
// the same way.
func TestRouterMetricsAndRequestID(t *testing.T) {
	mgr := server.NewManager()
	defer mgr.Drain(context.Background())
	inner := mgr.Handler()

	// Wrap the replica to record the request ID each proxied call arrives
	// with (the create below is the only traffic, so a plain mutex is ample).
	var mu sync.Mutex
	var seenIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seenIDs = append(seenIDs, r.Header.Get(server.RequestIDHeader))
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	rt := NewRouter(Config{RetryBackoff: time.Millisecond})
	defer rt.Close()
	reg := obs.NewRegistry()
	rt.InitObs(reg)
	rt.Register("a", ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	src := readDesign(t, "counter.fir")
	req, err := http.NewRequest("POST", front.URL+"/v1/sessions",
		jsonBody(t, server.CreateRequest{FIRRTL: src}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.RequestIDHeader, "fleet-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed create: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(server.RequestIDHeader); got != "fleet-trace-7" {
		t.Errorf("request ID came back as %q, want fleet-trace-7", got)
	}
	mu.Lock()
	forwarded := append([]string(nil), seenIDs...)
	mu.Unlock()
	if len(forwarded) == 0 || forwarded[len(forwarded)-1] != "fleet-trace-7" {
		t.Errorf("replica saw request IDs %v, want the caller's fleet-trace-7 last", forwarded)
	}

	// Header-less requests get a router-generated ID, also propagated.
	resp2, err := http.Get(front.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(server.RequestIDHeader) == "" {
		t.Error("no generated request ID on a header-less routed request")
	}

	// The fleet families must reflect what just happened.
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	sc, err := obs.ParseText(mresp.Body)
	if err != nil {
		t.Fatalf("parsing router /metrics: %v", err)
	}
	for _, c := range []struct {
		name string
		min  float64
	}{
		{"gsim_fleet_replicas", 1},
		{"gsim_fleet_replicas_ready", 1},
		{"gsim_fleet_sessions", 1},
		{"gsim_fleet_placement_lookups_total", 1},
	} {
		v, ok := sc.Value(c.name)
		if !ok || v < c.min {
			t.Errorf("%s = %v (present=%v), want >= %v", c.name, v, ok, c.min)
		}
	}
	// Registered-but-idle families still expose their zero series.
	if _, ok := sc.Value("gsim_snapshot_store_puts_total"); !ok {
		t.Error("snapshot store family missing from router /metrics")
	}
	if _, ok := sc.Value("gsim_fleet_migrations_total", "outcome", "success"); !ok {
		t.Error("migration outcome series missing from router /metrics")
	}
}
