package fleet

import (
	"fmt"
	"sort"
	"time"
)

// ReplicaState is a replica's position in its lifecycle.
type ReplicaState int

const (
	// StateReady: serving, eligible for new placements.
	StateReady ReplicaState = iota
	// StateDraining: still serving existing sessions (the migration window)
	// but excluded from placement; the router is moving its sessions off.
	StateDraining
	// StateDead: failed health checks or missed heartbeats; excluded from
	// placement and treated as unreachable.
	StateDead
)

func (s ReplicaState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Replica is one registered gsim-serve instance.
type Replica struct {
	Name  string
	URL   string // base URL, e.g. http://10.0.0.3:8080
	State ReplicaState

	lastBeat  time.Time
	probeFail int // consecutive failed /readyz probes
}

// RegisterRequest is the POST /fleet/replicas body a replica sends to
// self-register (and that gsim-serve's agent sends on startup).
type RegisterRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ReplicaInfo is the wire form of a replica in GET /fleet.
type ReplicaInfo struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	State    string `json:"state"`
	Sessions int    `json:"sessions"`
}

// register adds or refreshes a replica. Re-registering an existing name
// (a replica restarted on the same slot) resets it to ready with the new URL;
// its old sessions are gone with the old process, so the caller prunes the
// session table. Returns whether the ring membership changed. Caller holds
// rt.mu.
func (rt *Router) registerLocked(name, url string, now time.Time) (membershipChanged bool) {
	r, exists := rt.replicas[name]
	if !exists {
		r = &Replica{Name: name}
		rt.replicas[name] = r
	}
	wasPlaceable := exists && r.State == StateReady
	r.URL = url
	r.State = StateReady
	r.lastBeat = now
	r.probeFail = 0
	if !wasPlaceable {
		rt.rebuildRingLocked()
	}
	return !wasPlaceable
}

// rebuildRingLocked recomputes the placement ring from the ready replicas.
// Draining and dead replicas are simply absent: lookups during a drain
// naturally land on the survivors, which is exactly the "ring minus that
// replica" rerouting migration needs. Caller holds rt.mu.
func (rt *Router) rebuildRingLocked() {
	var names []string
	for name, r := range rt.replicas {
		if r.State == StateReady {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rt.ring = BuildRing(names, rt.cfg.Vnodes)
}

// heartbeatLocked refreshes a replica's liveness. Caller holds rt.mu.
func (rt *Router) heartbeatLocked(name string, now time.Time) error {
	r, ok := rt.replicas[name]
	if !ok {
		return fmt.Errorf("fleet: unknown replica %q", name)
	}
	r.lastBeat = now
	if r.State == StateDead {
		// A dead replica that heartbeats again is back (partition healed,
		// process never actually died). Its sessions were already migrated or
		// lost, so it returns empty — but placeable.
		r.State = StateReady
		r.probeFail = 0
		rt.rebuildRingLocked()
	}
	return nil
}

// expireReplicasLocked marks replicas whose heartbeat is older than the TTL
// as dead and returns them so the caller can migrate their sessions. Caller
// holds rt.mu.
func (rt *Router) expireReplicasLocked(now time.Time) []*Replica {
	if rt.cfg.HeartbeatTTL <= 0 {
		return nil
	}
	var expired []*Replica
	for _, r := range rt.replicas {
		if r.State != StateDead && now.Sub(r.lastBeat) > rt.cfg.HeartbeatTTL {
			r.State = StateDead
			expired = append(expired, r)
		}
	}
	if len(expired) > 0 {
		rt.rebuildRingLocked()
	}
	return expired
}

// replicaByName returns a snapshot (copy) of the named replica.
func (rt *Router) replicaByName(name string) (Replica, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r, ok := rt.replicas[name]
	if !ok {
		return Replica{}, false
	}
	return *r, true
}
