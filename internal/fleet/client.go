package fleet

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gsim/internal/server"
)

// replicaClient is a typed client for the slice of the gsim-serve API the
// migration orchestrator drives directly (everything else is proxied raw).
type replicaClient struct {
	base  string // replica base URL
	http  *http.Client
	reqID string // correlation ID stamped on outgoing requests ("" = none)
}

// statusError carries the replica's HTTP status so callers can distinguish
// retryable refusals (503 draining, 429 backpressure) from hard failures.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("replica returned %d: %s", e.status, e.msg)
}

// retryableStatus reports whether err is a replica refusal worth retrying on
// another replica (the migration-race case: the chosen target started
// draining between placement and create).
func retryableStatus(err error) bool {
	var se *statusError
	if !errors.As(err, &se) {
		return false
	}
	return se.status == http.StatusServiceUnavailable || se.status == http.StatusTooManyRequests
}

// postJSON sends body as JSON and decodes the response into out (when
// non-nil). Non-2xx responses become *statusError with the replica's error
// string.
func (c *replicaClient) postJSON(path string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func (c *replicaClient) getJSON(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// do stamps the correlation ID (when the client carries one) and sends.
func (c *replicaClient) do(req *http.Request) (*http.Response, error) {
	if c.reqID != "" {
		req.Header.Set(server.RequestIDHeader, c.reqID)
	}
	return c.http.Do(req)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(data)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &statusError{status: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *replicaClient) create(req server.CreateRequest) (server.CreateResponse, error) {
	var resp server.CreateResponse
	err := c.postJSON("/v1/sessions", req, &resp)
	return resp, err
}

func (c *replicaClient) lanes(id string) ([]server.LaneInfo, error) {
	var infos []server.LaneInfo
	err := c.getJSON("/v1/sessions/"+id+"/lanes", &infos)
	return infos, err
}

// snapshotLane fetches lane's serialized state as raw snapshot-format bytes.
func (c *replicaClient) snapshotLane(id string, lane int) ([]byte, error) {
	var resp server.SnapshotResponse
	if err := c.postJSON("/v1/sessions/"+id+"/snapshot?lane="+strconv.Itoa(lane), struct{}{}, &resp); err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(resp.Snapshot)
}

// restoreLane writes blob into lane; a non-empty vcdPrefix seeds the lane's
// trace-resume buffer (requires the session was created with trace_resume).
func (c *replicaClient) restoreLane(id string, lane int, blob, vcdPrefix []byte) error {
	req := server.RestoreRequest{Snapshot: base64.StdEncoding.EncodeToString(blob)}
	if len(vcdPrefix) > 0 {
		req.TracePrefix = base64.StdEncoding.EncodeToString(vcdPrefix)
	}
	return c.postJSON("/v1/sessions/"+id+"/restore?lane="+strconv.Itoa(lane), req, nil)
}

func (c *replicaClient) vcd(id string, lane int) (data []byte, truncated bool, err error) {
	var resp server.VCDResponse
	if err := c.getJSON("/v1/sessions/"+id+"/vcd?lane="+strconv.Itoa(lane), &resp); err != nil {
		return nil, false, err
	}
	return []byte(resp.VCD), resp.Truncated, nil
}

// applyOps runs an op batch (migration uses this to re-park lanes that were
// parked on the old home).
func (c *replicaClient) applyOps(id string, ops []server.Op) error {
	return c.postJSON("/v1/sessions/"+id+"/ops", server.OpsRequest{Ops: ops}, nil)
}

func (c *replicaClient) deleteSession(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, nil)
}

func (c *replicaClient) stats() (server.StatsResponse, error) {
	var resp server.StatsResponse
	err := c.getJSON("/v1/stats", &resp)
	return resp, err
}

// ready probes /readyz; false covers both a 503 (draining) and an
// unreachable replica.
func (c *replicaClient) ready() bool {
	resp, err := c.http.Get(c.base + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// beginDrain asks the replica to enter its migration-window drain.
func (c *replicaClient) beginDrain() error {
	return c.postJSON("/admin/drain", struct{}{}, nil)
}
