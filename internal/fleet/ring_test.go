package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	names := []string{"r1", "r2", "r3"}
	a := BuildRing(names, 0)
	b := BuildRing([]string{"r3", "r1", "r2"}, 0) // order must not matter
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("design-%d", i)
		ga, oka := a.Lookup(key, nil)
		gb, okb := b.Lookup(key, nil)
		if !oka || !okb || ga != gb {
			t.Fatalf("key %s: ring built from permuted members disagrees: %s vs %s", key, ga, gb)
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := BuildRing([]string{"r1", "r2", "r3"}, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		name, ok := r.Lookup(fmt.Sprintf("design-%d", i), nil)
		if !ok {
			t.Fatal("lookup failed on non-empty ring")
		}
		counts[name]++
	}
	for name, n := range counts {
		if n < 500 || n > 1800 {
			t.Fatalf("member %s owns %d/3000 keys — spread is badly skewed: %v", name, n, counts)
		}
	}
}

// TestRingStability pins the consistency property the compile caches depend
// on: removing one member only remaps the keys that lived on it.
func TestRingStability(t *testing.T) {
	full := BuildRing([]string{"r1", "r2", "r3", "r4"}, 0)
	minus := BuildRing([]string{"r1", "r2", "r4"}, 0) // r3 gone
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("design-%d", i)
		before, _ := full.Lookup(key, nil)
		after, _ := minus.Lookup(key, nil)
		if before == "r3" {
			if after == "r3" {
				t.Fatalf("key %s still maps to removed member", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved from %s to %s though its home never left", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingExclusion: Lookup with an exclusion behaves like a ring without
// that member — the "ring minus the draining replica" rerouting rule.
func TestRingExclusion(t *testing.T) {
	full := BuildRing([]string{"r1", "r2", "r3"}, 0)
	minus := BuildRing([]string{"r1", "r3"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("design-%d", i)
		got, ok := full.Lookup(key, func(n string) bool { return n == "r2" })
		want, _ := minus.Lookup(key, nil)
		if !ok || got != want {
			t.Fatalf("key %s: excluded lookup %s, ring-minus-member %s", key, got, want)
		}
	}
	if _, ok := full.Lookup("any", func(string) bool { return true }); ok {
		t.Fatal("lookup succeeded with every member excluded")
	}
	if _, ok := BuildRing(nil, 0).Lookup("any", nil); ok {
		t.Fatal("lookup succeeded on empty ring")
	}
}
