package fleet

import (
	"testing"

	"gsim/internal/leakcheck"
)

// TestMain gates the whole fleet suite on goroutine hygiene: every router,
// replica server, and manager a test starts must be torn down by the time
// the suite ends — the CI fleet-smoke job runs this package under -race with
// leak checking as one of its acceptance criteria.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
