package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsim/internal/obs"
	"gsim/internal/server"
	"gsim/internal/snapshot"
)

// Config tunes a Router. The zero value is usable; DefaultConfig fills in
// production defaults.
type Config struct {
	// Vnodes per replica on the placement ring (0 = DefaultVnodes).
	Vnodes int
	// HeartbeatTTL marks a replica dead when its last heartbeat is older
	// than this. 0 disables heartbeat expiry (probing still applies).
	HeartbeatTTL time.Duration
	// ProbeInterval is the cadence of the background health prober. <= 0
	// disables the prober goroutine (tests call CheckHealth directly).
	ProbeInterval time.Duration
	// ProbeFailThreshold is how many consecutive failed /readyz probes turn
	// a replica unhealthy (0 = 3).
	ProbeFailThreshold int
	// MigrationRetries bounds how many alternate targets a migration (or a
	// racing create) tries before giving up (0 = 4).
	MigrationRetries int
	// RetryBackoff is the base backoff between migration retries, doubled
	// per attempt (0 = 25ms).
	RetryBackoff time.Duration
	// SnapshotBudget bounds the content-addressed handoff store, bytes
	// (0 = 1 GiB). Blobs of in-flight migrations are pinned and never
	// evicted regardless of budget.
	SnapshotBudget int64
	// MaxBodyBytes caps request bodies the router itself decodes (create).
	// 0 = 256 MiB. Proxied bodies stream through and are capped by the
	// replica's own limit.
	MaxBodyBytes int64
	// HTTPClient overrides the client used for all replica traffic.
	HTTPClient *http.Client
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		HeartbeatTTL:  10 * time.Second,
		ProbeInterval: 2 * time.Second,
	}
}

func (c *Config) fill() {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.ProbeFailThreshold <= 0 {
		c.ProbeFailThreshold = 3
	}
	if c.MigrationRetries <= 0 {
		c.MigrationRetries = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.SnapshotBudget <= 0 {
		c.SnapshotBudget = 1 << 30
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 5 * time.Minute}
	}
}

// Router is the stateless fleet front-end: it owns no simulation state, only
// the session table mapping public session IDs to (replica, backend session)
// pairs, the replica registry, and the placement ring. Sessions are placed by
// consistent-hashing their design placement key so every session of one
// design lands on the same replica and shares its compiled artifact; all /v1
// traffic is proxied sticky to the session's current home; draining a replica
// live-migrates its sessions to the ring minus that replica.
type Router struct {
	cfg   Config
	store *snapshot.Store // FIRRTL sources + migration checkpoint handoff

	mu       sync.Mutex
	replicas map[string]*Replica
	ring     *Ring
	sessions map[string]*fleetSession
	nextID   uint64
	metrics  *RouterMetrics // nil until InitObs
	logger   *slog.Logger   // never nil (obs.NopLogger default)

	migrated    atomic.Uint64 // sessions successfully migrated
	migrateFail atomic.Uint64 // sessions whose migration failed
	lost        atomic.Uint64 // sessions dropped because their home died

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// fleetSession is one routed session. The RWMutex is the migration gate:
// proxied requests hold it shared for the duration of the backend round trip,
// migration holds it exclusive — so a migration observes no in-flight ops
// (the snapshot is taken at a quiescent point) and proxied requests never see
// a half-moved session; they block briefly and land on the new home.
type fleetSession struct {
	id        string // public ID ("f1", "f2", ...)
	placeKey  string // consistent-hash placement key
	sourceKey string // content-store key of the FIRRTL source (pinned)
	spec      server.SessionSpec
	lanes     int

	mu         sync.RWMutex
	replica    string // current home (registry name)
	backendID  string // session ID on that replica
	designHash string
	closed     bool
}

// NewRouter builds a router and, when cfg.ProbeInterval > 0, starts its
// background health prober. Close releases it.
func NewRouter(cfg Config) *Router {
	cfg.fill()
	rt := &Router{
		cfg:      cfg,
		store:    snapshot.NewStore(cfg.SnapshotBudget),
		replicas: make(map[string]*Replica),
		ring:     BuildRing(nil, cfg.Vnodes),
		sessions: make(map[string]*fleetSession),
		logger:   obs.NopLogger(),
		stop:     make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		rt.wg.Add(1)
		go rt.probeLoop()
	}
	return rt
}

// Close stops the router's background goroutines. It does not touch replica
// state: a router restart must be invisible to the fleet.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// PlacementKey derives the consistent-hash key for a session: the SHA-256 of
// the FIRRTL source plus every spec field that feeds the compile cache.
// Lanes and trace options are deliberately absent — they are per-session
// execution knobs, invisible to the compile, so scalar sessions and gangs of
// any width for one design co-locate and share a single compiled artifact.
// (The true DesignHash only exists after compiling; with deterministic
// compiles, equal placement keys imply equal design hashes, which is all
// affinity needs.)
func PlacementKey(firrtl string, spec server.SessionSpec) string {
	h := sha256.New()
	io.WriteString(h, firrtl)
	fmt.Fprintf(h, "|engine=%s|eval=%s|threads=%d|coarsen=%t|maxsup=%d",
		spec.Engine, spec.Eval, spec.Threads, spec.Coarsen, spec.MaxSupernode)
	return hex.EncodeToString(h.Sum(nil))
}

// Register adds or refreshes a replica (the programmatic form of
// POST /fleet/replicas). Re-registration after death or with a new URL means
// a new process: sessions homed on the old incarnation are gone, so the
// router drops them from its table.
func (rt *Router) Register(name, url string) {
	now := time.Now()
	rt.mu.Lock()
	prev, existed := rt.replicas[name]
	newProcess := existed && (prev.State == StateDead || prev.URL != url)
	rt.registerLocked(name, url, now)
	var orphans []*fleetSession
	if newProcess {
		orphans = rt.sessionsOnLocked(name)
	}
	rt.mu.Unlock()
	rt.log().Info("replica registered", "replica", name, "url", url, "new_process", newProcess)
	for _, fs := range orphans {
		rt.dropSession(fs, "home replica restarted")
	}
}

// sessionsOnLocked returns the sessions currently homed on name. Caller
// holds rt.mu; the per-session read takes the session's own lock, which is
// safe because migration never holds a session gate while taking rt.mu.
func (rt *Router) sessionsOnLocked(name string) []*fleetSession {
	var out []*fleetSession
	for _, fs := range rt.sessions {
		fs.mu.RLock()
		if fs.replica == name && !fs.closed {
			out = append(out, fs)
		}
		fs.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// dropSession removes a session whose simulation state is unrecoverable
// (its home died). Subsequent requests for it return 404.
func (rt *Router) dropSession(fs *fleetSession, reason string) {
	fs.mu.Lock()
	already := fs.closed
	fs.closed = true
	fs.mu.Unlock()
	if already {
		return
	}
	rt.mu.Lock()
	delete(rt.sessions, fs.id)
	rt.mu.Unlock()
	rt.store.Unpin(fs.sourceKey)
	rt.lost.Add(1)
	if rm := rt.Metrics(); rm != nil {
		rm.SessionsLost.Inc()
	}
	rt.log().Warn("session lost", "session", fs.id, "reason", reason)
}

// pickReplica resolves the placement for key among ready replicas, skipping
// the excluded set. Returns a copy of the chosen replica.
func (rt *Router) pickReplica(key string, exclude map[string]bool) (Replica, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.metrics != nil {
		rt.metrics.PlacementLookups.Inc()
	}
	name, ok := rt.ring.Lookup(key, func(n string) bool {
		if exclude[n] {
			return true
		}
		r, present := rt.replicas[n]
		return !present || r.State != StateReady
	})
	if !ok {
		return Replica{}, false
	}
	return *rt.replicas[name], true
}

func (rt *Router) clientFor(r Replica) *replicaClient {
	return &replicaClient{base: r.URL, http: rt.cfg.HTTPClient}
}

// clientForReq is clientFor carrying the inbound request's correlation ID,
// so replica calls made on behalf of req (session creates, closes) appear in
// the replica's access log under the same ID as the routed request itself.
func (rt *Router) clientForReq(r Replica, req *http.Request) *replicaClient {
	c := rt.clientFor(r)
	c.reqID = req.Header.Get(server.RequestIDHeader)
	return c
}

// Handler returns the router's HTTP API: the full /v1 surface (proxied), the
// /fleet control plane, and health endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/ops", rt.proxySession)
	mux.HandleFunc("GET /v1/sessions/{id}/lanes", rt.proxySession)
	mux.HandleFunc("GET /v1/sessions/{id}/vcd", rt.proxySession)
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", rt.proxySession)
	mux.HandleFunc("POST /v1/sessions/{id}/restore", rt.proxySession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleClose)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("POST /fleet/replicas", rt.handleRegister)
	mux.HandleFunc("POST /fleet/replicas/{name}/heartbeat", rt.handleHeartbeat)
	mux.HandleFunc("POST /fleet/replicas/{name}/drain", rt.handleDrainReplica)
	mux.HandleFunc("GET /fleet", rt.handleFleet)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt.withObs(mux)
}

// handleMetrics serves the registry wired by InitObs; 404 until then.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rm := rt.Metrics()
	if rm == nil {
		http.NotFound(w, r)
		return
	}
	rm.Registry().Handler().ServeHTTP(w, r)
}

// routerReqSeq numbers request IDs the router originates.
var routerReqSeq atomic.Uint64

// routerStatusWriter records the status written to a routed response.
type routerStatusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *routerStatusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// withObs assigns each request its fleet-wide correlation ID (stamped into
// the request headers so forward propagates it to the replica), echoes it on
// the response, and emits one access-log line. Heartbeats are logged at
// Debug — they arrive every couple of seconds per replica and would bury
// real events at Info.
func (rt *Router) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(server.RequestIDHeader)
		if id == "" {
			id = "r" + strconv.FormatUint(routerReqSeq.Add(1), 10)
			r.Header.Set(server.RequestIDHeader, id)
		}
		w.Header().Set(server.RequestIDHeader, id)
		sw := &routerStatusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logf := rt.log().Info
		if strings.HasSuffix(r.URL.Path, "/heartbeat") {
			logf = rt.log().Debug
		}
		logf("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// RoutedCreateResponse is the replica's create response plus where the
// session landed.
type RoutedCreateResponse struct {
	server.CreateResponse
	Replica string `json:"replica"`
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req server.CreateRequest
	body := http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.FIRRTL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("firrtl source required"))
		return
	}
	key := PlacementKey(req.FIRRTL, req.SessionSpec)

	// Placement with retry: the chosen replica can refuse (it began draining
	// or hit its session cap between our lookup and the create). Each refusal
	// excludes that replica and re-resolves the ring.
	exclude := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.MigrationRetries; attempt++ {
		rep, ok := rt.pickReplica(key, exclude)
		if !ok {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("fleet: no ready replica for placement (last error: %v)", lastErr))
			return
		}
		resp, err := rt.clientForReq(rep, r).create(req)
		if err != nil {
			lastErr = err
			if retryableStatus(err) {
				exclude[rep.Name] = true
				continue
			}
			// Hard replica error: surface it with the replica's own status.
			var se *statusError
			if errors.As(err, &se) {
				writeJSON(w, se.status, map[string]string{"error": se.msg, "replica": rep.Name})
				return
			}
			writeError(w, http.StatusBadGateway, fmt.Errorf("replica %s: %v", rep.Name, err))
			return
		}

		sourceKey := rt.store.PutPinned([]byte(req.FIRRTL))
		rt.mu.Lock()
		rt.nextID++
		fs := &fleetSession{
			id:         "f" + strconv.FormatUint(rt.nextID, 10),
			placeKey:   key,
			sourceKey:  sourceKey,
			spec:       req.SessionSpec,
			lanes:      max(req.Lanes, 1),
			replica:    rep.Name,
			backendID:  resp.Session,
			designHash: resp.DesignHash,
		}
		rt.sessions[fs.id] = fs
		rt.mu.Unlock()

		out := RoutedCreateResponse{CreateResponse: resp, Replica: rep.Name}
		out.Session = fs.id
		writeJSON(w, http.StatusCreated, out)
		return
	}
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("fleet: placement failed after %d attempts: %v", rt.cfg.MigrationRetries+1, lastErr))
}

// proxySession forwards a session-scoped request to the session's current
// home, rewriting the public session ID to the backend one. The shared gate
// hold spans the whole round trip: a concurrent migration waits for it, and
// once migration holds the gate this request's successor lands on the new
// home transparently.
func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	fs, ok := rt.sessions[r.PathValue("id")]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet: no session %s", r.PathValue("id")))
		return
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet: session %s is closed", fs.id))
		return
	}
	rep, ok := rt.replicaByName(fs.replica)
	if !ok {
		writeError(w, http.StatusBadGateway, fmt.Errorf("fleet: session %s homed on unknown replica %s", fs.id, fs.replica))
		return
	}
	rt.forward(w, r, rep, fs.backendID)
}

// forward relays r to the replica with the {id} path segment replaced by
// backendID, streaming the body both ways and copying status and headers
// verbatim — the router adds no failure semantics of its own beyond 502 when
// the replica is unreachable.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, rep Replica, backendID string) {
	path := "/v1/sessions/" + backendID
	if rest := pathSuffix(r.URL.Path); rest != "" {
		path += "/" + rest
	}
	url := rep.URL + path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	// The correlation ID follows the request onto the replica, so one ID
	// stitches the router and replica access logs together.
	if id := r.Header.Get(server.RequestIDHeader); id != "" {
		req.Header.Set(server.RequestIDHeader, id)
	}
	start := time.Now()
	resp, err := rt.cfg.HTTPClient.Do(req)
	if rm := rt.Metrics(); rm != nil {
		rm.ProxyLatency.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("replica %s: %v", rep.Name, err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// pathSuffix extracts the trailing segment after /v1/sessions/{id}/ ("ops",
// "vcd", ...); empty for the bare session path.
func pathSuffix(p string) string {
	const prefix = "/v1/sessions/"
	rest := p[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[i+1:]
		}
	}
	return ""
}

func (rt *Router) handleClose(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	fs, ok := rt.sessions[r.PathValue("id")]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet: no session %s", r.PathValue("id")))
		return
	}
	fs.mu.Lock()
	already := fs.closed
	fs.closed = true
	rep, repOK := rt.replicaByName(fs.replica)
	backendID := fs.backendID
	fs.mu.Unlock()
	if !already {
		rt.mu.Lock()
		delete(rt.sessions, fs.id)
		rt.mu.Unlock()
		rt.store.Unpin(fs.sourceKey)
		if repOK {
			// Best-effort: a dead home means the backend session died with it.
			_ = rt.clientForReq(rep, r).deleteSession(backendID)
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": fs.id})
}

// RoutedSessionInfo is one GET /v1/sessions entry: the replica's view plus
// routing metadata.
type RoutedSessionInfo struct {
	server.SessionInfo
	Replica string `json:"replica"`
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	all := make([]*fleetSession, 0, len(rt.sessions))
	for _, fs := range rt.sessions {
		all = append(all, fs)
	}
	rt.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	// One list fetch per distinct home, then join on backend ID.
	byReplica := make(map[string]map[string]server.SessionInfo)
	infos := make([]RoutedSessionInfo, 0, len(all))
	for _, fs := range all {
		fs.mu.RLock()
		home, backendID, closed := fs.replica, fs.backendID, fs.closed
		fs.mu.RUnlock()
		if closed {
			continue
		}
		backends, fetched := byReplica[home]
		if !fetched {
			backends = make(map[string]server.SessionInfo)
			if rep, ok := rt.replicaByName(home); ok {
				if list, err := func() ([]server.SessionInfo, error) {
					var l []server.SessionInfo
					err := rt.clientFor(rep).getJSON("/v1/sessions", &l)
					return l, err
				}(); err == nil {
					for _, si := range list {
						backends[si.Session] = si
					}
				}
			}
			byReplica[home] = backends
		}
		si, ok := backends[backendID]
		if !ok {
			continue // mid-migration or backend lost; skip rather than lie
		}
		si.Session = fs.id
		infos = append(infos, RoutedSessionInfo{SessionInfo: si, Replica: home})
	}
	writeJSON(w, http.StatusOK, infos)
}

// FleetStats is the GET /v1/stats body: aggregate counters plus per-replica
// breakdown and router-level migration accounting.
type FleetStats struct {
	Sessions        int                             `json:"sessions"`
	Replicas        int                             `json:"replicas"`
	ReadyReplicas   int                             `json:"ready_replicas"`
	Migrated        uint64                          `json:"migrated"`
	MigrationsFail  uint64                          `json:"migrations_failed"`
	SessionsLost    uint64                          `json:"sessions_lost"`
	StoreBytes      int64                           `json:"store_bytes"`
	StoreBlobs      int                             `json:"store_blobs"`
	StoreEvictions  uint64                          `json:"store_evictions"`
	PerReplica      map[string]server.StatsResponse `json:"per_replica,omitempty"`
	UnreachableReps []string                        `json:"unreachable,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	sessions := len(rt.sessions)
	reps := make([]Replica, 0, len(rt.replicas))
	ready := 0
	for _, rep := range rt.replicas {
		reps = append(reps, *rep)
		if rep.State == StateReady {
			ready++
		}
	}
	rt.mu.Unlock()

	used, _, blobs, evictions := rt.store.Stats()
	out := FleetStats{
		Sessions:       sessions,
		Replicas:       len(reps),
		ReadyReplicas:  ready,
		Migrated:       rt.migrated.Load(),
		MigrationsFail: rt.migrateFail.Load(),
		SessionsLost:   rt.lost.Load(),
		StoreBytes:     used,
		StoreBlobs:     blobs,
		StoreEvictions: evictions,
		PerReplica:     make(map[string]server.StatsResponse, len(reps)),
	}
	for _, rep := range reps {
		if rep.State == StateDead {
			continue
		}
		stats, err := rt.clientFor(rep).stats()
		if err != nil {
			out.UnreachableReps = append(out.UnreachableReps, rep.Name)
			continue
		}
		out.PerReplica[rep.Name] = stats
	}
	sort.Strings(out.UnreachableReps)
	writeJSON(w, http.StatusOK, out)
}

// handleReadyz: the router is ready when at least one replica can take
// placements.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	ready := 0
	for _, rep := range rt.replicas {
		if rep.State == StateReady {
			ready++
		}
	}
	rt.mu.Unlock()
	if ready == 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready replicas"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "replicas": ready})
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Name == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("name and url required"))
		return
	}
	rt.Register(req.Name, req.URL)
	writeJSON(w, http.StatusOK, map[string]string{"registered": req.Name})
}

func (rt *Router) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	err := rt.heartbeatLocked(r.PathValue("name"), time.Now())
	rt.mu.Unlock()
	if err != nil {
		// Unknown name: the router restarted and lost the registry, or the
		// replica was expired. 404 tells the agent to re-register.
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleDrainReplica(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	migrated, failed, err := rt.DrainReplica(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replica":  name,
		"migrated": migrated,
		"failed":   failed,
	})
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	perReplica := make(map[string]int)
	for _, fs := range rt.sessions {
		fs.mu.RLock()
		if !fs.closed {
			perReplica[fs.replica]++
		}
		fs.mu.RUnlock()
	}
	infos := make([]ReplicaInfo, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		infos = append(infos, ReplicaInfo{
			Name:     rep.Name,
			URL:      rep.URL,
			State:    rep.State.String(),
			Sessions: perReplica[rep.Name],
		})
	}
	rt.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"replicas": infos})
}

// probeLoop is the background health checker: expire stale heartbeats, probe
// ready replicas' /readyz, and drain-or-declare-dead the ones that fail.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckHealth(time.Now())
		}
	}
}

// CheckHealth runs one health pass synchronously: heartbeat expiry, then a
// /readyz probe of every ready replica. A replica answering 503 (it began
// draining on its own, e.g. SIGTERM before the agent's notification arrived)
// or failing ProbeFailThreshold consecutive probes is drained: its sessions
// migrate to the ring minus it. An unreachable replica's sessions cannot be
// snapshotted; they are dropped (counted in SessionsLost) — the documented
// cost of a crash, as opposed to a drain.
func (rt *Router) CheckHealth(now time.Time) {
	rt.mu.Lock()
	expired := rt.expireReplicasLocked(now)
	var probeTargets []Replica
	for _, rep := range rt.replicas {
		if rep.State == StateReady {
			probeTargets = append(probeTargets, *rep)
		}
	}
	rt.mu.Unlock()

	for _, rep := range expired {
		rt.reapDeadReplica(rep.Name)
	}

	for _, rep := range probeTargets {
		if rt.clientFor(rep).ready() {
			rt.mu.Lock()
			if live, ok := rt.replicas[rep.Name]; ok {
				live.probeFail = 0
			}
			rt.mu.Unlock()
			continue
		}
		rt.mu.Lock()
		live, ok := rt.replicas[rep.Name]
		if !ok || live.State != StateReady {
			rt.mu.Unlock()
			continue
		}
		live.probeFail++
		failed := live.probeFail >= rt.cfg.ProbeFailThreshold
		rt.mu.Unlock()
		if failed {
			// Try a graceful drain first — the replica may be refusing new
			// work but still serving (self-initiated drain). Sessions that
			// cannot be moved are lost.
			_, _, _ = rt.DrainReplica(rep.Name)
			rt.reapDeadReplica(rep.Name)
		}
	}
}

// reapDeadReplica marks name dead and drops the sessions still homed there
// whose state died with the process.
func (rt *Router) reapDeadReplica(name string) {
	rt.mu.Lock()
	rep, ok := rt.replicas[name]
	died := ok && rep.State != StateDead
	if died {
		rep.State = StateDead
		rt.rebuildRingLocked()
	}
	orphans := rt.sessionsOnLocked(name)
	rt.mu.Unlock()
	if died {
		rt.log().Warn("replica dead", "replica", name, "orphans", len(orphans))
	}
	for _, fs := range orphans {
		rt.dropSession(fs, "home replica died")
	}
}
