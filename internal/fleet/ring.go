// Package fleet scales gsim-serve horizontally: a stateless router places
// sessions onto replicas by consistent-hashing their design placement key (so
// one replica's compile cache serves all traffic for a design), proxies the
// /v1 API with per-session sticky routing, and live-migrates sessions off a
// replica when it drains — snapshot on the old home, restore on the new one,
// bit-identical state, stats, and waveform continuation.
//
// The package splits into the hash ring (ring.go), the replica registry and
// health model (registry.go), a typed client for the gsim-serve API
// (client.go), the routing front-end (router.go), the migration orchestrator
// (migrate.go), and the replica-side agent that registers a gsim-serve with a
// router and handles graceful termination (agent.go).
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over replica names. Each member contributes
// vnodes points (hashes of "name#i") so load spreads evenly even with few
// replicas, and membership changes move only ~1/N of the keyspace — the
// property that keeps compile caches hot: a design keeps hashing to the same
// surviving replica when an unrelated one joins or leaves.
//
// The ring is immutable once built; the registry rebuilds it on every
// membership change (cheap at fleet sizes) so lookups need no locking beyond
// swapping the pointer. Hashing is SHA-256-based and fully deterministic:
// every router instance with the same member list computes the same ring,
// which is what makes the router stateless — a restarted router places the
// same designs on the same replicas.
type Ring struct {
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash uint64
	name string
}

// DefaultVnodes balances spread quality against ring size. 64 points per
// member keeps the max/min load ratio under ~1.3 for small fleets.
const DefaultVnodes = 64

// BuildRing constructs a ring from the given member names. vnodes <= 0 uses
// DefaultVnodes. Order of names does not matter.
func BuildRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(names)*vnodes)}
	for _, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashPoint(fmt.Sprintf("%s#%d", name, i)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes (vanishingly rare) still order
		// deterministically across router instances.
		return r.points[i].name < r.points[j].name
	})
	return r
}

// Lookup walks the ring clockwise from key's hash and returns the first
// member for which exclude returns false. A nil exclude accepts everyone.
// Returns ok=false when the ring is empty or every member is excluded.
func (r *Ring) Lookup(key string, exclude func(name string) bool) (name string, ok bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] {
			continue
		}
		seen[p.name] = true
		if exclude == nil || !exclude(p.name) {
			return p.name, true
		}
	}
	return "", false
}

// Members returns the distinct member names on the ring, sorted.
func (r *Ring) Members() []string {
	seen := make(map[string]bool)
	var names []string
	for _, p := range r.points {
		if !seen[p.name] {
			seen[p.name] = true
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// hashPoint maps a string to a ring position: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 (rather than a faster non-crypto hash) keeps
// placement identical across architectures and Go versions — placement is a
// cross-process contract, not a per-process detail.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
