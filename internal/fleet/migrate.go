package fleet

import (
	"fmt"
	"time"

	"gsim/internal/server"
)

// DrainReplica live-migrates every session off the named replica: the
// replica is excluded from placement, told to begin its migration-window
// drain (readyz flips, new sessions refused, existing sessions keep serving),
// and each of its sessions is snapshotted, rerouted through the ring minus
// that replica, restored on its new home, and resumed — state image, stats,
// and waveform continuation all bit-identical to an uninterrupted run.
// Returns how many sessions moved and the public IDs of any that could not.
func (rt *Router) DrainReplica(name string) (migrated int, failed []string, err error) {
	rt.mu.Lock()
	rep, ok := rt.replicas[name]
	if !ok {
		rt.mu.Unlock()
		return 0, nil, fmt.Errorf("fleet: unknown replica %q", name)
	}
	if rep.State == StateReady {
		rep.State = StateDraining
		rt.rebuildRingLocked()
	}
	repCopy := *rep
	victims := rt.sessionsOnLocked(name)
	rt.mu.Unlock()

	// Idempotent; also covers the admin-triggered path where the replica
	// does not yet know it is being retired. Best-effort: a replica already
	// draining (SIGTERM path) or unreachable (dead path) changes nothing.
	_ = rt.clientFor(repCopy).beginDrain()

	rt.log().Info("drain started", "replica", name, "sessions", len(victims))
	for _, fs := range victims {
		if merr := rt.migrateSession(fs, name); merr != nil {
			rt.migrateFail.Add(1)
			if rm := rt.Metrics(); rm != nil {
				rm.MigrationsFailed.Inc()
			}
			rt.log().Error("migration failed", "session", fs.id, "from", name, "error", merr)
			failed = append(failed, fs.id)
			continue
		}
		migrated++
	}
	rt.log().Info("drain finished", "replica", name, "migrated", migrated, "failed", len(failed))
	return migrated, failed, nil
}

// migrateSession moves one session off fromReplica. It holds the session's
// write gate for the whole move, so no proxied request can observe the
// session between homes: requests block on the gate and then transparently
// land on the new home.
//
// The move is ordered so every failure mode is safe: all reads from the old
// home (waveform prefixes, per-lane snapshots) happen before anything is
// created on the new home, the new session is fully restored and re-parked
// before the routing table flips, and the old session is deleted only after
// the flip. A failure anywhere before the flip leaves the session untouched
// on its old home; a failure to delete after the flip leaks a dying session
// on a draining replica, which its final Drain reaps anyway.
func (rt *Router) migrateSession(fs *fleetSession, fromReplica string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed || fs.replica != fromReplica {
		return nil // closed or already moved by a concurrent pass
	}
	moveStart := time.Now()
	oldRep, ok := rt.replicaByName(fromReplica)
	if !ok {
		return fmt.Errorf("fleet: replica %s vanished", fromReplica)
	}
	oldC := rt.clientFor(oldRep)

	// Phase 1 — capture on the old home. The gate guarantees quiescence:
	// no proxied op can run between the waveform read and the state
	// snapshot, so the two are coherent.
	infos, err := oldC.lanes(fs.backendID)
	if err != nil {
		return fmt.Errorf("fleet: capture lanes of %s on %s: %w", fs.id, fromReplica, err)
	}
	prefixes := make(map[int][]byte)
	var tracedLanes []int
	for _, li := range infos {
		if !li.Traced {
			continue
		}
		data, _, err := oldC.vcd(fs.backendID, li.Lane)
		if err != nil {
			return fmt.Errorf("fleet: capture vcd lane %d of %s: %w", li.Lane, fs.id, err)
		}
		prefixes[li.Lane] = data
		tracedLanes = append(tracedLanes, li.Lane)
	}
	blobKeys := make([]string, len(infos))
	blobs := make([][]byte, len(infos))
	for i, li := range infos {
		blob, err := oldC.snapshotLane(fs.backendID, li.Lane)
		if err != nil {
			return fmt.Errorf("fleet: snapshot lane %d of %s: %w", li.Lane, fs.id, err)
		}
		// Pinned in the handoff store for the duration of the move: dedup
		// collapses identical lane images (fresh gangs, retried migrations)
		// and the pin shields them from budget eviction mid-move.
		blobs[i] = blob
		blobKeys[i] = rt.store.PutPinned(blob)
	}
	defer func() {
		for _, k := range blobKeys {
			rt.store.Unpin(k)
		}
	}()
	src, err := rt.store.Get(fs.sourceKey)
	if err != nil {
		return fmt.Errorf("fleet: source of %s: %w", fs.id, err)
	}

	// Phase 2 — recreate on a new home, with retry/backoff over the ring
	// minus the draining replica. A target that refuses (it raced into its
	// own drain, or is at capacity) is excluded and the ring re-resolved.
	spec := fs.spec
	spec.TraceLanes = tracedLanes
	spec.TraceResume = len(tracedLanes) > 0
	exclude := map[string]bool{fromReplica: true}
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.MigrationRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(rt.cfg.RetryBackoff << (attempt - 1))
		}
		newRep, ok := rt.pickReplica(fs.placeKey, exclude)
		if !ok {
			lastErr = fmt.Errorf("fleet: no ready replica outside %v", exclude)
			continue // membership may recover within the retry budget
		}
		newC := rt.clientFor(newRep)
		created, err := newC.create(server.CreateRequest{FIRRTL: string(src), SessionSpec: spec})
		if err != nil {
			lastErr = err
			if retryableStatus(err) {
				exclude[newRep.Name] = true
				continue
			}
			return fmt.Errorf("fleet: recreate %s on %s: %w", fs.id, newRep.Name, err)
		}
		if err := rt.restoreOnto(newC, created.Session, infos, blobs, prefixes); err != nil {
			// Half-restored target: destroy it and fail the move rather than
			// flip routing onto a session in an unknown state.
			_ = newC.deleteSession(created.Session)
			return fmt.Errorf("fleet: restore %s on %s: %w", fs.id, newRep.Name, err)
		}

		// Phase 3 — flip routing, then retire the old incarnation.
		oldBackend := fs.backendID
		fs.replica = newRep.Name
		fs.backendID = created.Session
		fs.designHash = created.DesignHash
		_ = oldC.deleteSession(oldBackend)
		rt.migrated.Add(1)
		var moved uint64
		for _, b := range blobs {
			moved += uint64(len(b))
		}
		for _, p := range prefixes {
			moved += uint64(len(p))
		}
		elapsed := time.Since(moveStart)
		if rm := rt.Metrics(); rm != nil {
			rm.MigrationsOK.Inc()
			rm.MigrationSeconds.Observe(elapsed.Seconds())
			rm.MigrationBytes.Add(moved)
		}
		rt.log().Info("session migrated",
			"session", fs.id, "from", fromReplica, "to", newRep.Name,
			"lanes", len(infos), "bytes", moved,
			"duration_ms", float64(elapsed.Microseconds())/1000)
		return nil
	}
	return fmt.Errorf("fleet: migrate %s off %s: no target after %d attempts: %v",
		fs.id, fromReplica, rt.cfg.MigrationRetries+1, lastErr)
}

// restoreOnto replays the captured lanes into the freshly created session:
// restore each lane's state blob (traced lanes also carry their waveform
// prefix, arming the resume tracer), then re-park the lanes that were parked
// at capture so the gang's live mask survives the move.
func (rt *Router) restoreOnto(c *replicaClient, backendID string, infos []server.LaneInfo, blobs [][]byte, prefixes map[int][]byte) error {
	for i, li := range infos {
		if err := c.restoreLane(backendID, li.Lane, blobs[i], prefixes[li.Lane]); err != nil {
			return fmt.Errorf("restore lane %d: %w", li.Lane, err)
		}
	}
	var parks []server.Op
	for _, li := range infos {
		if len(infos) > 1 && !li.Live {
			lane := li.Lane
			parks = append(parks, server.Op{Op: "park", Lane: &lane})
		}
	}
	if len(parks) > 0 {
		if err := c.applyOps(backendID, parks); err != nil {
			return fmt.Errorf("re-park lanes: %w", err)
		}
	}
	return nil
}

// Reinstate returns a drained replica to placement rotation (the counterpart
// of DrainReplica for planned maintenance bounces: drain, update, reinstate).
// The replica must be reachable and not draining at the server level — its
// manager refuses sessions once draining, so reinstating a still-draining
// process would only bounce creates. Fails if the replica's /readyz says it
// cannot take work.
func (rt *Router) Reinstate(name string) error {
	rt.mu.Lock()
	rep, ok := rt.replicas[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("fleet: unknown replica %q", name)
	}
	repCopy := *rep
	rt.mu.Unlock()
	if !rt.clientFor(repCopy).ready() {
		return fmt.Errorf("fleet: replica %s is not ready (still draining or unreachable)", name)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rep, ok = rt.replicas[name]
	if !ok {
		return fmt.Errorf("fleet: replica %q vanished", name)
	}
	rep.State = StateReady
	rep.probeFail = 0
	rep.lastBeat = time.Now()
	rt.rebuildRingLocked()
	return nil
}
