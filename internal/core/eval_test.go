package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/gen"
	"gsim/internal/ir"
)

// evalLockstepConfigs are the engine configurations the kernel/interp
// equivalence suite pins: full-cycle, parallel full-cycle, essential-signal,
// and the multi-threaded essential-signal engine at 2 and 4 threads (the
// race detector covers the threaded runs in CI).
func evalLockstepConfigs() []Config {
	return []Config{Verilator(), VerilatorMT(2), GSIM(), GSIMMT(2), GSIMMT(4)}
}

// lockstepDesigns returns every testdata FIRRTL design plus two generated
// ones, as (name, graph) pairs.
func lockstepDesigns(t *testing.T) (names []string, graphs []*ir.Graph) {
	t.Helper()
	files, err := filepath.Glob("../../testdata/*.fir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata designs found: %v", err)
	}
	for _, f := range files {
		g, err := firrtl.LoadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		names = append(names, filepath.Base(f))
		graphs = append(graphs, g)
	}
	for _, seed := range []int64{5, 17} {
		names = append(names, "gen"+string(rune('0'+seed%10)))
		graphs = append(graphs, gen.Random(seed, gen.DefaultRandomConfig()))
	}
	return names, graphs
}

// interpTwin instantiates an interpreter-mode engine over the same compiled
// program (and partition) as sys, so the two share node IDs and state layout
// and their state images can be compared word for word.
func interpTwin(t *testing.T, sys *System) engine.Sim {
	t.Helper()
	cfg := sys.Config
	switch cfg.Engine {
	case EngineFullCycle:
		return engine.NewFullCycle(sys.Prog, engine.EvalInterp)
	case EngineParallel:
		order := make([]int32, len(sys.Graph.Nodes))
		for i := range order {
			order[i] = int32(i)
		}
		_, byLevel := sys.Graph.Levelize(order)
		return engine.NewParallel(sys.Prog, byLevel, cfg.Threads, engine.EvalInterp)
	case EngineActivity:
		return engine.NewActivity(sys.Prog, sys.Part, cfg.Activity, engine.EvalInterp)
	case EngineParallelActivity:
		return engine.NewParallelActivity(sys.Prog, sys.Part, cfg.Activity, cfg.Threads, engine.EvalInterp)
	}
	t.Fatalf("unknown engine %v", cfg.Engine)
	return nil
}

// TestEvalModesLockstep is the PR's core acceptance test: on every testdata
// design and generated designs, for every engine, the kernel and interpreter
// evaluation modes must produce bit-identical state images over 200
// random-stimulus cycles, both must match the golden reference model on the
// outputs, and the stat counters (including Machine.Executed) must agree
// between modes. The interpreter engine runs over the same compiled program
// as the kernel engine, so the comparison covers every state word including
// temporaries.
func TestEvalModesLockstep(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 50
	}
	names, graphs := lockstepDesigns(t)
	for di, g := range graphs {
		for _, cfg := range evalLockstepConfigs() {
			cfg.Eval = engine.EvalKernel
			sysK, err := Build(g, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", names[di], cfg.Name, err)
			}
			simI := interpTwin(t, sysK)
			ref, err := engine.NewReference(sysK.Graph)
			if err != nil {
				t.Fatalf("%s/%s: %v", names[di], cfg.Name, err)
			}

			var inputs, outputs []*ir.Node
			for _, n := range sysK.Graph.Nodes {
				if n.Kind == ir.KindInput {
					inputs = append(inputs, n)
				}
				if n.IsOutput {
					outputs = append(outputs, n)
				}
			}
			rng := rand.New(rand.NewSource(int64(di)*101 + 7))
			for c := 0; c < cycles; c++ {
				for _, in := range inputs {
					v := bitvec.FromUint64(in.Width, rng.Uint64())
					if in.Name == "reset" {
						v = bitvec.FromUint64(1, uint64(rng.Intn(10)/9))
					}
					ref.Poke(in.ID, v)
					sysK.Sim.Poke(in.ID, v)
					simI.Poke(in.ID, v)
				}
				ref.Step()
				sysK.Sim.Step()
				simI.Step()
				stK, stI := sysK.Sim.Machine().State, simI.Machine().State
				for w := range stK {
					if stK[w] != stI[w] {
						t.Fatalf("%s/%s cycle %d: state word %d: kernel %#x vs interp %#x",
							names[di], cfg.Name, c, w, stK[w], stI[w])
					}
				}
				for _, n := range outputs {
					if a, b := ref.Peek(n.ID), sysK.Sim.Peek(n.ID); !a.EqValue(b) {
						t.Fatalf("%s/%s cycle %d: output %q: reference %s vs kernel %s",
							names[di], cfg.Name, c, n.Name, a, b)
					}
				}
			}

			// Stat counters must not depend on the evaluation mode, and the
			// machine's retired-instruction counter must track the stats in
			// both modes (gsim-diag and the harness read either).
			a, b := sysK.Sim.Stats(), simI.Stats()
			if a.NodeEvals != b.NodeEvals || a.Activations != b.Activations ||
				a.Examinations != b.Examinations || a.InstrsExecuted != b.InstrsExecuted ||
				a.RegCommits != b.RegCommits {
				t.Fatalf("%s/%s: stats diverge between modes:\nkernel %+v\ninterp %+v",
					names[di], cfg.Name, *a, *b)
			}
			if ex := sysK.Sim.Machine().Executed; ex != a.InstrsExecuted {
				t.Fatalf("%s/%s: kernel Machine.Executed=%d vs stats %d", names[di], cfg.Name, ex, a.InstrsExecuted)
			}
			if ex := simI.Machine().Executed; ex != b.InstrsExecuted {
				t.Fatalf("%s/%s: interp Machine.Executed=%d vs stats %d", names[di], cfg.Name, ex, b.InstrsExecuted)
			}
			if c, ok := simI.(interface{ Close() }); ok {
				c.Close()
			}
			sysK.Close()
		}
	}
}
