// Compiled-design caching: the compile-once/simulate-many split behind
// simulation-as-a-service. GSIM's whole premise is that an expensive build
// (graph passes, supernode partitioning, kernel-pipeline compilation) buys
// fast cycles; this file makes the expensive half a durable, shareable
// artifact. CompileDesign produces an immutable CompiledDesign; NewSim stamps
// out per-session engines over it (each engine owns only its mutable machine
// state); CompileCache deduplicates concurrent compiles under singleflight so
// N sessions of one design pay for one build.
package core

import (
	"fmt"
	"sync"
	"time"

	"gsim/internal/emit"
	"gsim/internal/engine"
	"gsim/internal/faultpoint"
	"gsim/internal/ir"
	"gsim/internal/partition"
	"gsim/internal/passes"
)

// CompiledDesign is the immutable output of the expensive build half:
// optimized graph, compiled program, supernode partition, and (for the
// level-scheduled engine) the levelization. Safe to share across concurrent
// sessions — nothing here is written after CompileDesign returns, and engine
// construction over it is serialized internally (some build-time helpers
// memoize into shared tables).
type CompiledDesign struct {
	Config  Config // the normalized configuration it was compiled under
	Graph   *ir.Graph
	Prog    *emit.Program
	Part    *partition.Result // nil for full-cycle engines
	ByLevel [][]int32         // nil unless Config.Engine == EngineParallel

	PassResult  passes.Result
	PassTime    time.Duration
	CompileTime time.Duration // passes + sort + emit + partition

	simMu sync.Mutex
}

// CompileDesign runs the compile half of Build: clone, normalize, optimize,
// topo-sort, emit, partition. The result is immutable and reusable by any
// number of NewSim calls.
func CompileDesign(g *ir.Graph, cfg Config) (*CompiledDesign, error) {
	if faultpoint.Hit(faultpoint.CompileFail) {
		return nil, fmt.Errorf("core: injected compile failure (faultpoint %s)", faultpoint.CompileFail)
	}
	start := time.Now()
	if cfg.MaxSupernode <= 0 {
		cfg.MaxSupernode = DefaultMaxSupernode
	}
	work := g.Clone()

	passStart := time.Now()
	// Canonicalize to one operation per node (the paper's input form) so
	// every configuration optimizes the same fine-grained graph.
	passes.Normalize(work)
	passRes := passes.Run(work, cfg.Opt)
	passTime := time.Since(passStart)

	if err := work.SortTopological(); err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("core: optimized graph invalid: %v", err)
	}
	prog, err := emit.Compile(work)
	if err != nil {
		return nil, err
	}

	d := &CompiledDesign{
		Config:     cfg,
		Graph:      work,
		Prog:       prog,
		PassResult: passRes,
		PassTime:   passTime,
	}
	switch cfg.Engine {
	case EngineFullCycle:
		// no schedule artifacts
	case EngineParallel:
		order := make([]int32, len(work.Nodes))
		for i := range order {
			order[i] = int32(i)
		}
		_, d.ByLevel = work.Levelize(order)
	case EngineActivity, EngineParallelActivity:
		d.Part = partition.Build(work, cfg.Partition, cfg.MaxSupernode)
	default:
		return nil, fmt.Errorf("core: unknown engine %d", cfg.Engine)
	}
	d.CompileTime = time.Since(start)
	return d, nil
}

// DesignHash returns the compiled program's identity hash (hex) — the
// snapshot compatibility key.
func (d *CompiledDesign) DesignHash() string { return d.Prog.DesignHashString() }

// NewSim instantiates one engine over the shared artifacts. cfg selects the
// cheap per-session knobs (engine kind, eval mode, threads, activity config);
// it must request the same engine family the design was compiled for (the
// partition and levelization are engine-specific). Construction is
// serialized: building an engine compiles machine-bound closure chains and
// may memoize shared per-program tables, and serializing here keeps that
// invisible to concurrent sessions. Once constructed, engines step fully
// concurrently — each owns its machine state; the Program is read-only.
func (d *CompiledDesign) NewSim(cfg Config) (engine.Sim, error) {
	if cfg.Engine != d.Config.Engine {
		return nil, fmt.Errorf("core: design compiled for engine %s, session asks for %s", d.Config.Engine, cfg.Engine)
	}
	d.simMu.Lock()
	defer d.simMu.Unlock()
	switch cfg.Engine {
	case EngineFullCycle:
		return engine.NewFullCycle(d.Prog, cfg.Eval), nil
	case EngineParallel:
		return engine.NewParallel(d.Prog, d.ByLevel, cfg.Threads, cfg.Eval), nil
	case EngineActivity:
		return engine.NewActivity(d.Prog, d.Part, cfg.Activity, cfg.Eval), nil
	case EngineParallelActivity:
		return engine.NewParallelActivity(d.Prog, d.Part, cfg.Activity, cfg.Threads, cfg.Eval), nil
	}
	return nil, fmt.Errorf("core: unknown engine %d", cfg.Engine)
}

// NewGang instantiates a k-lane gang engine over the shared artifacts — K
// independent stimulus lanes through the one compiled program (see
// engine.Gang). Lane count is a per-session execution knob, deliberately NOT
// part of CacheKey: one compile serves scalar sessions and gangs of every
// width. Construction is serialized like NewSim — building a gang memoizes a
// per-lane-count kernel table into the shared Program.
func (d *CompiledDesign) NewGang(k int) (*engine.Gang, error) {
	if k < 1 || k > emit.MaxGangLanes {
		return nil, fmt.Errorf("core: gang lane count %d outside [1,%d]", k, emit.MaxGangLanes)
	}
	d.simMu.Lock()
	defer d.simMu.Unlock()
	return engine.NewGang(d.Prog, k), nil
}

// CacheKey derives the compile-cache key for a design source identity (the
// caller supplies a content hash of the elaborated input, e.g. a FIRRTL text
// hash) under a configuration. Every knob that can change the compiled
// artifact or the per-session engine shape is folded in — optimization
// options, engine, eval mode, threads, coarsening, partitioner, supernode
// cap — so sessions share a cache entry exactly when their builds would be
// interchangeable.
func CacheKey(sourceHash string, cfg Config) string {
	if cfg.MaxSupernode <= 0 {
		cfg.MaxSupernode = DefaultMaxSupernode
	}
	return fmt.Sprintf("%s|opt=%+v|engine=%s|eval=%s|threads=%d|coarsen=%v/%d|part=%d|maxsup=%d|act=%d/%d/%v",
		sourceHash, cfg.Opt, cfg.Engine, cfg.Eval, cfg.Threads,
		cfg.Activity.Coarsen, cfg.Activity.CoarsenGrain,
		cfg.Partition, cfg.MaxSupernode,
		cfg.Activity.Activation, cfg.Activity.BranchlessMax, cfg.Activity.MultiBitCheck)
}

// CompileCache deduplicates design compilation: one entry per CacheKey,
// compiled exactly once under singleflight (concurrent requests for the same
// key block on the first compile instead of repeating it). Failed compiles
// are cached too: compilation is deterministic, so retrying the same key
// cannot succeed.
//
// Residency is governed by a byte budget: each entry's cost is its compiled
// code + state-image + memory-image bytes, and when the cached total exceeds
// SetBudget's limit, least-recently-used entries are evicted — but only
// unreferenced ones. Get acquires a reference (released with Release), so a
// design with live sessions is pinned no matter how cold its key is; the
// cache may run over budget while everything resident is pinned, and settles
// back under it as references drop. A zero budget (the default) disables
// eviction entirely.
type CompileCache struct {
	mu        sync.Mutex
	entries   map[string]*cacheEntry
	budget    int64 // bytes; 0 = unlimited
	used      int64 // accounted cost of resident entries
	seq       uint64
	hits      uint64
	misses    uint64
	evictions uint64
	m         *CacheMetrics // nil = uninstrumented
}

type cacheEntry struct {
	once   sync.Once
	design *CompiledDesign
	err    error

	// Governance fields, guarded by the cache mutex.
	refs      int    // live Get acquisitions not yet Released
	cost      int64  // code+data+mem bytes, known once compile completes
	accounted bool   // cost already folded into used
	lastUse   uint64 // recency stamp for LRU
	evicted   bool   // detached from the map (late Release must not re-count)
}

// NewCompileCache returns an empty cache with no byte budget (no eviction).
func NewCompileCache() *CompileCache {
	return &CompileCache{entries: map[string]*cacheEntry{}}
}

// SetBudget sets the resident-byte budget and immediately evicts down to it.
// budget <= 0 disables eviction.
func (c *CompileCache) SetBudget(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	c.evictLocked()
	c.syncGaugesLocked()
}

// SetObs attaches the metrics bundle; subsequent cache activity is credited
// to it and the residency gauges snap to the current state.
func (c *CompileCache) SetObs(m *CacheMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = m
	c.syncGaugesLocked()
}

// syncGaugesLocked mirrors the governance view into the gauges. Caller holds
// c.mu.
func (c *CompileCache) syncGaugesLocked() {
	if c.m == nil {
		return
	}
	c.m.ResidentBytes.Set(float64(c.used))
	c.m.Designs.Set(float64(len(c.entries)))
}

// designCost is an entry's residency weight: the bytes that stay alive as
// long as the compiled design does. Code dominates for logic-heavy designs,
// the initial state image and memory images for state-heavy ones.
func designCost(d *CompiledDesign) int64 {
	return int64(d.Prog.CodeBytes() + d.Prog.DataBytes() + d.Prog.MemBytes())
}

// Get returns the design for key, invoking compile at most once per key
// across all concurrent callers. The bool reports whether the entry already
// existed (a cache hit — the caller shares a previous compile). On success
// the caller holds a reference pinning the entry against eviction; it must
// call Release(key) when the design is no longer in use (session close).
// Failed compiles return the cached error and hold no reference.
func (c *CompileCache) Get(key string, compile func() (*CompiledDesign, error)) (*CompiledDesign, bool, error) {
	c.mu.Lock()
	m := c.m
	e, hit := c.entries[key]
	if !hit {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
		if m != nil {
			m.Misses.Inc()
		}
	} else {
		c.hits++
		if m != nil {
			m.Hits.Inc()
		}
	}
	e.refs++ // pin through the compile so a concurrent eviction can't drop it
	c.seq++
	e.lastUse = c.seq
	c.mu.Unlock()

	e.once.Do(func() {
		start := time.Now()
		e.design, e.err = compile()
		if m != nil {
			m.CompileSeconds.Observe(time.Since(start).Seconds())
		}
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	if e.err != nil {
		e.refs--
		return nil, hit, e.err
	}
	if !e.accounted {
		e.accounted = true
		e.cost = designCost(e.design)
		c.used += e.cost
	}
	c.evictLocked()
	c.syncGaugesLocked()
	return e.design, hit, nil
}

// Release drops one reference acquired by Get, unpinning the entry once no
// callers remain and evicting if the cache is over budget.
func (c *CompileCache) Release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.refs <= 0 {
		return
	}
	e.refs--
	c.evictLocked()
	c.syncGaugesLocked()
}

// evictLocked drops least-recently-used unreferenced entries until the
// resident total fits the budget. Pinned entries (live references) never
// evict, so the cache can legitimately sit over budget while every resident
// design has sessions on it.
func (c *CompileCache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget {
		var victim *cacheEntry
		var victimKey string
		for k, e := range c.entries {
			if e.refs > 0 || !e.accounted || e.cost == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		victim.evicted = true
		c.used -= victim.cost
		c.evictions++
		if c.m != nil {
			c.m.Evictions.Inc()
		}
	}
}

// Stats reports cumulative lookups: hits (entry existed) and misses (this
// lookup created the entry and ran the compile).
func (c *CompileCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Governance reports the residency picture: accounted resident bytes, the
// configured budget (0 = unlimited), and lifetime evictions.
func (c *CompileCache) Governance() (usedBytes, budgetBytes int64, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, c.budget, c.evictions
}

// Len returns the number of cached designs (including failed compiles).
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
