package core

import (
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
)

// TestGSIMMTMatchesReference runs the full multi-threaded pipeline
// (optimization passes, partition, shard, parallel essential-signal engine)
// against the golden model on generated designs with random stimulus.
func TestGSIMMTMatchesReference(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 50
	}
	for _, seed := range []int64{5, 17} {
		for _, threads := range []int{2, 4} {
			g := gen.Random(seed, gen.DefaultRandomConfig())
			ref, err := engine.NewReference(g)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Build(g, GSIMMT(threads))
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			var inputs []*ir.Node
			for _, n := range g.Nodes {
				if n != nil && n.Kind == ir.KindInput {
					inputs = append(inputs, n)
				}
			}
			rng := rand.New(rand.NewSource(seed + 1000))
			for c := 0; c < cycles; c++ {
				for _, in := range inputs {
					v := bitvec.FromUint64(in.Width, rng.Uint64())
					if in.Name == "reset" {
						v = bitvec.FromUint64(1, uint64(rng.Intn(10)/9))
					}
					ref.Poke(in.ID, v)
					m := sys.Node(in.Name)
					sys.Sim.Poke(m.ID, v)
				}
				ref.Step()
				sys.Sim.Step()
				for _, n := range g.Nodes {
					if n == nil || !n.IsOutput {
						continue
					}
					m := sys.Node(n.Name)
					if m == nil {
						t.Fatalf("output %q missing after optimization", n.Name)
					}
					if a, b := ref.Peek(n.ID), sys.Sim.Peek(m.ID); !a.EqValue(b) {
						t.Fatalf("seed %d threads %d cycle %d: output %q: reference %s vs gsimmt %s",
							seed, threads, c, n.Name, a, b)
					}
				}
			}
			if af := sys.Sim.Stats().ActivityFactor(); af <= 0 || af >= 1 {
				t.Fatalf("gsimmt activity factor %.3f outside (0, 1)", af)
			}
		}
	}
}

// TestGSIMMTMatchesGSIMStats: both engines walk the same partition, so their
// per-cycle evaluation counts must match exactly under identical stimulus —
// parallelization must not change what gets evaluated, only where.
func TestGSIMMTMatchesGSIMStats(t *testing.T) {
	g := gen.Random(23, gen.DefaultRandomConfig())
	st, err := Build(g, GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mt, err := Build(g, GSIMMT(3))
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	var inputs []*ir.Node
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindInput {
			inputs = append(inputs, n)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < 100; c++ {
		for _, in := range inputs {
			v := bitvec.FromUint64(in.Width, rng.Uint64())
			st.Sim.Poke(st.Node(in.Name).ID, v)
			mt.Sim.Poke(mt.Node(in.Name).ID, v)
		}
		st.Sim.Step()
		mt.Sim.Step()
	}
	a, b := st.Sim.Stats(), mt.Sim.Stats()
	if a.NodeEvals != b.NodeEvals {
		t.Fatalf("node evals diverge: gsim %d vs gsimmt %d", a.NodeEvals, b.NodeEvals)
	}
	if a.RegCommits != b.RegCommits {
		t.Fatalf("reg commits diverge: gsim %d vs gsimmt %d", a.RegCommits, b.RegCommits)
	}
}
