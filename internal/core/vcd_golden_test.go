package core

import (
	"bytes"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/ir"
	"gsim/internal/trace"
)

// updateGolden regenerates the committed reference waveforms:
//
//	go test ./internal/core -run TestGoldenVCD -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/*.vcd reference waveforms")

const goldenCycles = 50

// goldenVCD renders the design's waveform under a fixed stimulus protocol:
// reset held for the first two cycles, then every input driven from a
// deterministic per-design stream. Everything here — node selection order,
// stimulus, cycle count — is part of the golden-file contract; change it
// only together with -update-golden.
func goldenVCD(t *testing.T, g *ir.Graph, name string, mode engine.EvalMode) []byte {
	t.Helper()
	cfg := GSIM()
	cfg.Eval = mode
	sys, err := Build(g, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer sys.Close()
	var buf bytes.Buffer
	vcd, err := engine.NewVCD(&buf, sys.Sim, sys.Graph, nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var inputs []*ir.Node
	for _, n := range sys.Graph.Nodes {
		if n.Kind == ir.KindInput {
			inputs = append(inputs, n)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	for c := 0; c < goldenCycles; c++ {
		for _, in := range inputs {
			v := bitvec.FromUint64(in.Width, rng.Uint64())
			if in.Name == "reset" {
				v = bitvec.FromUint64(1, b2u(c < 2))
			}
			sys.Sim.Poke(in.ID, v)
		}
		sys.Sim.Step()
		vcd.Sample()
	}
	if err := vcd.Close(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.Bytes()
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// TestGoldenVCD pins the committed reference waveforms for every testdata
// design, byte for byte, under all three evaluation modes — so
// superinstruction fusion, width classes, and chunk batching can never
// silently change trace output, and neither can a VCD writer refactor.
func TestGoldenVCD(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.fir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata designs found: %v", err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".fir")
		g, err := firrtl.LoadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		golden := filepath.Join("../../testdata/golden", name+".vcd")
		got := goldenVCD(t, g, name, engine.EvalKernel)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", golden, len(got))
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: missing golden waveform (run with -update-golden): %v", name, err)
		}
		for _, m := range []struct {
			label string
			mode  engine.EvalMode
		}{
			{"kernel", engine.EvalKernel},
			{"kernel-nofuse", engine.EvalKernelNoFuse},
			{"interp", engine.EvalInterp},
		} {
			out := got
			if m.mode != engine.EvalKernel {
				out = goldenVCD(t, g, name, m.mode)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("%s/%s: VCD diverges from golden (%d vs %d bytes): %s",
					name, m.label, len(out), len(want), firstDiff(out, want))
			}
		}
	}
}

// asyncGoldenVCD renders the same golden protocol through the pipelined
// tracer (internal/trace) attached to the engine, instead of the external
// synchronous writer: the engine samples at the end of every Step and the
// writer goroutine formats behind it.
func asyncGoldenVCD(t *testing.T, g *ir.Graph, name string, cfg Config, ring int, sync bool) []byte {
	t.Helper()
	sys, err := Build(g, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer sys.Close()
	var buf bytes.Buffer
	tr, err := trace.NewVCD(&buf, sys.Prog, nil, trace.Options{Ring: ring, Sync: sync})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	sys.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(tr)
	var inputs []*ir.Node
	for _, n := range sys.Graph.Nodes {
		if n.Kind == ir.KindInput {
			inputs = append(inputs, n)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	for c := 0; c < goldenCycles; c++ {
		for _, in := range inputs {
			v := bitvec.FromUint64(in.Width, rng.Uint64())
			if in.Name == "reset" {
				v = bitvec.FromUint64(1, b2u(c < 2))
			}
			sys.Sim.Poke(in.ID, v)
		}
		sys.Sim.Step()
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.Bytes()
}

// TestGoldenVCDAsync pins the committed reference waveforms through the
// asynchronous pipeline for every engine × eval mode × thread count (plus the
// coarsened schedule and the tracer's own sync mode), byte for byte. Same
// optimization pipeline as the goldens (GSIM passes + enhanced partition);
// only the execution engine and tracer vary — so waveform capture moving off
// the coordinator can never change what lands in the file.
func TestGoldenVCDAsync(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.fir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata designs found: %v", err)
	}
	type cell struct {
		label string
		cfg   func() Config
		ring  int
		sync  bool
	}
	var cells []cell
	engines := []struct {
		label  string
		engine EngineKind
		thr    int
		coarse bool
	}{
		{"fullcycle", EngineFullCycle, 0, false},
		{"activity", EngineActivity, 0, false},
		{"parallel-1T", EngineParallel, 1, false},
		{"parallel-2T", EngineParallel, 2, false},
		{"parallel-4T", EngineParallel, 4, false},
		{"parallel-activity-1T", EngineParallelActivity, 1, false},
		{"parallel-activity-2T", EngineParallelActivity, 2, false},
		{"parallel-activity-4T", EngineParallelActivity, 4, false},
		{"parallel-activity-coarsen-2T", EngineParallelActivity, 2, true},
	}
	for _, e := range engines {
		for _, m := range []engine.EvalMode{engine.EvalKernel, engine.EvalKernelNoFuse, engine.EvalInterp} {
			e, m := e, m
			cells = append(cells, cell{
				label: fmt.Sprintf("%s/%s", e.label, m),
				cfg: func() Config {
					cfg := GSIM()
					cfg.Engine = e.engine
					cfg.Threads = e.thr
					cfg.Eval = m
					cfg.Activity.Coarsen = e.coarse
					if e.coarse {
						cfg.Activity.CoarsenGrain = 1 << 30
					}
					return cfg
				},
			})
		}
	}
	// Tracer-shape variants on the default engine: tiny ring (live
	// backpressure in the golden path) and the synchronous fallback.
	cells = append(cells,
		cell{label: "gsim/ring1", cfg: GSIM, ring: 1},
		cell{label: "gsim/sync", cfg: GSIM, sync: true},
	)
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".fir")
		g, err := firrtl.LoadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		want, err := os.ReadFile(filepath.Join("../../testdata/golden", name+".vcd"))
		if err != nil {
			t.Fatalf("%s: missing golden waveform (run TestGoldenVCD with -update-golden): %v", name, err)
		}
		for _, c := range cells {
			out := asyncGoldenVCD(t, g, name, c.cfg(), c.ring, c.sync)
			if !bytes.Equal(out, want) {
				t.Fatalf("%s/%s: async VCD diverges from golden (%d vs %d bytes): %s",
					name, c.label, len(out), len(want), firstDiff(out, want))
			}
		}
	}
}

// firstDiff locates the first byte where two streams diverge, with context.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 30
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d: got ...%q want ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("one stream is a prefix of the other (diff at byte %d)", n)
}
