package core

import (
	"fmt"
	"testing"

	"gsim/internal/faultpoint"
	"gsim/internal/ir"
)

// cacheDesign builds a small distinct design per index (the register count
// varies, so each compiles to a different nonzero byte cost).
func cacheDesign(t *testing.T, idx int) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder(fmt.Sprintf("d%d", idx))
	en := b.Input("en", 1)
	prev := b.C(8, 1)
	for r := 0; r < 4+idx; r++ {
		reg := b.Reg(fmt.Sprintf("r%d", r), 8)
		b.SetNext(reg, b.Mux(b.R(en), b.AddW(b.R(reg), prev, 8), b.R(reg)))
		prev = b.R(reg)
	}
	b.Output("o", prev)
	return b.G
}

func mustCompile(t *testing.T, c *CompileCache, idx int) (*CompiledDesign, string) {
	t.Helper()
	g := cacheDesign(t, idx)
	key := CacheKey(fmt.Sprintf("test:%d", idx), GSIM())
	d, _, err := c.Get(key, func() (*CompiledDesign, error) { return CompileDesign(g, GSIM()) })
	if err != nil {
		t.Fatal(err)
	}
	return d, key
}

// TestCacheEvictionUnderBudget is the governance acceptance check: a 3×
// overcommit workload (entries released as their sessions would close) keeps
// residency at or under the configured byte budget, while entries with live
// references are never evicted.
func TestCacheEvictionUnderBudget(t *testing.T) {
	c := NewCompileCache()
	d0, k0 := mustCompile(t, c, 0)
	unit := designCost(d0)
	if unit <= 0 {
		t.Fatal("design cost not positive")
	}
	budget := 2 * unit
	c.SetBudget(budget)
	c.Release(k0)

	// Overcommit ~3x the budget with released (unpinned) designs: the cache
	// must stay within budget by evicting cold entries.
	for i := 1; i < 8; i++ {
		_, k := mustCompile(t, c, i)
		c.Release(k)
		if used, _, _ := c.Governance(); used > budget {
			t.Fatalf("after design %d: used %d > budget %d", i, used, budget)
		}
	}
	if _, _, ev := c.Governance(); ev == 0 {
		t.Fatal("overcommit produced no evictions")
	}

	// Pinned designs are immune: hold references on several entries whose
	// joint cost exceeds the budget; the cache runs over budget rather than
	// evicting anything pinned.
	c2 := NewCompileCache()
	keys := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		_, k := mustCompile(t, c2, i)
		keys = append(keys, k)
	}
	c2.SetBudget(unit) // far below the pinned total
	if got := c2.Len(); got != 6 {
		t.Fatalf("pinned entries evicted: %d of 6 remain", got)
	}
	if _, _, ev := c2.Governance(); ev != 0 {
		t.Fatalf("%d evictions of refcounted designs", ev)
	}
	// Releasing the pins lets the cache settle back under budget.
	for _, k := range keys {
		c2.Release(k)
	}
	if used, _, _ := c2.Governance(); used > unit {
		t.Fatalf("after release: used %d > budget %d", used, unit)
	}
}

// TestCacheLRUOrder pins the recency policy: touching an entry saves it, the
// coldest unpinned entry goes first.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCompileCache()
	dA, kA := mustCompile(t, c, 0)
	_, kB := mustCompile(t, c, 1)
	c.Release(kA)
	c.Release(kB)
	unit := designCost(dA)

	// Touch A so B is the LRU, then shrink the budget to one entry's cost:
	// B must be the victim.
	g := cacheDesign(t, 0)
	if _, hit, err := c.Get(kA, func() (*CompiledDesign, error) { return CompileDesign(g, GSIM()) }); err != nil || !hit {
		t.Fatalf("re-get A: hit=%v err=%v", hit, err)
	}
	c.Release(kA)
	c.SetBudget(unit + int64(unit)/2)

	gB := cacheDesign(t, 1)
	compiled := false
	if _, hit, err := c.Get(kB, func() (*CompiledDesign, error) {
		compiled = true
		return CompileDesign(gB, GSIM())
	}); err != nil || hit {
		t.Fatalf("get evicted B: hit=%v err=%v", hit, err)
	} else if !compiled {
		t.Fatal("B was served without recompiling — it should have been evicted")
	}
	c.Release(kB)
}

// TestCacheCompileFailFaultpoint pins the injected-compile-failure path: the
// error is cached (deterministic compile), holds no reference, and does not
// poison later distinct keys.
func TestCacheCompileFailFaultpoint(t *testing.T) {
	defer faultpoint.Reset()
	c := NewCompileCache()
	g := cacheDesign(t, 0)
	faultpoint.Arm(faultpoint.CompileFail, 1)
	_, _, err := c.Get("bad", func() (*CompiledDesign, error) { return CompileDesign(g, GSIM()) })
	if err == nil {
		t.Fatal("injected compile failure did not surface")
	}
	// Same key: cached error, compile not retried.
	_, hit, err2 := c.Get("bad", func() (*CompiledDesign, error) {
		t.Fatal("retried a deterministic failed compile")
		return nil, nil
	})
	if err2 == nil || !hit {
		t.Fatalf("cached failure: hit=%v err=%v", hit, err2)
	}
	// A different key compiles fine; the fault was one-shot.
	if _, k := mustCompile(t, c, 1); k == "" {
		t.Fatal("unexpected")
	}
}
