package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/partition"
	"gsim/internal/passes"
)

// testConfigs returns every simulator configuration whose trajectories must
// agree bit-for-bit.
func testConfigs() []Config {
	cfgs := []Config{
		Verilator(),
		VerilatorMT(2),
		VerilatorMT(4),
		Arcilator(),
		Essent(),
		GSIM(),
	}
	// No optimization at all, full-cycle: the most literal baseline.
	cfgs = append(cfgs, Config{Name: "raw", Engine: EngineFullCycle})
	// Activity engine with every partitioner and no graph opts.
	for _, pk := range []partition.Kind{partition.None, partition.Kernighan, partition.MFFC, partition.Enhanced} {
		cfgs = append(cfgs, Config{
			Name:      "act-" + pk.String(),
			Engine:    EngineActivity,
			Partition: pk,
		})
	}
	// GSIM variants: toggled engine techniques.
	g1 := GSIM()
	g1.Name = "gsim-nobitcheck"
	g1.Activity.MultiBitCheck = false
	g2 := GSIM()
	g2.Name = "gsim-branch"
	g2.Activity.Activation = engine.ActBranch
	g3 := GSIM()
	g3.Name = "gsim-branchless"
	g3.Activity.Activation = engine.ActBranchless
	g4 := GSIM()
	g4.Name = "gsim-size1"
	g4.MaxSupernode = 1
	g5 := GSIM()
	g5.Name = "gsim-size200"
	g5.MaxSupernode = 200
	// Individual passes in isolation on the activity engine.
	for _, p := range []struct {
		name string
		opt  passes.Options
	}{
		{"only-simplify", passes.Options{Simplify: true}},
		{"only-redundant", passes.Options{Redundant: true}},
		{"only-inline", passes.Options{Inline: true}},
		{"only-extract", passes.Options{Extract: true}},
		{"only-reset", passes.Options{ResetOpt: true}},
		{"only-bitsplit", passes.Options{BitSplit: true}},
	} {
		cfgs = append(cfgs, Config{
			Name:      p.name,
			Opt:       p.opt,
			Engine:    EngineActivity,
			Partition: partition.Enhanced,
		})
	}
	return append(cfgs, g1, g2, g3, g4, g5)
}

type harness struct {
	name    string
	sim     engine.Sim
	inputs  map[string]int // input name -> node ID in this sim's graph
	outputs map[string]int
	closer  func()
}

func newHarness(t *testing.T, name string, sim engine.Sim, g *ir.Graph, closer func()) *harness {
	t.Helper()
	h := &harness{name: name, sim: sim, inputs: map[string]int{}, outputs: map[string]int{}, closer: closer}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		if n.Kind == ir.KindInput {
			h.inputs[n.Name] = n.ID
		}
		if n.IsOutput {
			h.outputs[n.Name] = n.ID
		}
	}
	return h
}

// TestEngineEquivalence drives every configuration with identical stimulus
// on randomized circuits and requires identical output trajectories — the
// repository's master correctness property.
func TestEngineEquivalence(t *testing.T) {
	cfgs := testConfigs()
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := gen.Random(seed, gen.DefaultRandomConfig())
			ref, err := engine.NewReference(g)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			sims := []*harness{newHarness(t, "reference", ref, g, nil)}
			for _, cfg := range cfgs {
				sys, err := Build(g, cfg)
				if err != nil {
					t.Fatalf("build %s: %v", cfg.Name, err)
				}
				defer sys.Close()
				sims = append(sims, newHarness(t, cfg.Name, sys.Sim, sys.Graph, nil))
			}
			runLockstep(t, sims, seed, 80)
		})
	}
}

// runLockstep drives all harnesses with the same inputs for n cycles and
// compares outputs each cycle against the first harness.
func runLockstep(t *testing.T, sims []*harness, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 7919))
	golden := sims[0]
	inNames := make([]string, 0, len(golden.inputs))
	for name := range golden.inputs {
		inNames = append(inNames, name)
	}
	for cycle := 0; cycle < n; cycle++ {
		for _, name := range inNames {
			var v bitvec.BV
			if name == "reset" {
				// Pulse reset occasionally, including a multi-cycle pulse.
				hold := cycle >= 30 && cycle < 33
				if hold || rng.Intn(17) == 0 {
					v = bitvec.FromUint64(1, 1)
				} else {
					v = bitvec.New(1)
				}
			} else {
				w := 96
				v = bitvec.FromWords(w, []uint64{rng.Uint64(), rng.Uint64()})
				// Occasionally hold inputs at zero to create low activity.
				if rng.Intn(3) != 0 {
					v = bitvec.New(w)
				}
			}
			for _, h := range sims {
				id, ok := h.inputs[name]
				if !ok {
					t.Fatalf("%s: missing input %q", h.name, name)
				}
				h.sim.Poke(id, v)
			}
		}
		for _, h := range sims {
			h.sim.Step()
		}
		for name, gid := range golden.outputs {
			want := golden.sim.Peek(gid)
			for _, h := range sims[1:] {
				id, ok := h.outputs[name]
				if !ok {
					t.Fatalf("%s: missing output %q", h.name, name)
				}
				got := h.sim.Peek(id)
				if !want.EqValue(got) {
					t.Fatalf("cycle %d: output %q: %s=%s, %s=%s",
						cycle, name, golden.name, want, h.name, got)
				}
			}
		}
	}
}
