// Package core is GSIM's compilation driver and public entry point: it takes
// an elaborated ir.Graph (from the FIRRTL frontend or a programmatic
// builder), runs the selected optimization pipeline, compiles the result to
// an executable program, builds a supernode partition, and instantiates a
// simulation engine.
//
// Configurations for every simulator the paper compares are provided as
// presets (Verilator single- and multi-threaded, ESSENT, Arcilator, GSIM).
package core

import (
	"fmt"
	"time"

	"gsim/internal/emit"
	"gsim/internal/engine"
	"gsim/internal/ir"
	"gsim/internal/partition"
	"gsim/internal/passes"
)

// EngineKind selects the simulation engine.
type EngineKind uint8

// Engine kinds.
const (
	EngineFullCycle EngineKind = iota
	EngineParallel
	EngineActivity
	EngineParallelActivity
)

var engineNames = [...]string{"fullcycle", "parallel", "activity", "parallel-activity"}

// String returns the engine name.
func (k EngineKind) String() string { return engineNames[k] }

// Config selects the full simulator configuration: which graph optimizations
// run, how supernodes are built, and which engine executes.
type Config struct {
	Name string // preset label for reports

	Opt passes.Options

	Engine  EngineKind
	Threads int // EngineParallel / EngineParallelActivity worker count

	// Eval selects instruction evaluation: the fused kernel pipeline
	// (the zero value, default on for every preset — superinstruction
	// fusion, 2-word width classes, machine-bound chains), the pre-fusion
	// per-instruction kernel baseline (engine.EvalKernelNoFuse), or the
	// reference switch-dispatch interpreter (engine.EvalInterp).
	Eval engine.EvalMode

	// Activity-engine knobs.
	Partition    partition.Kind
	MaxSupernode int // paper's max supernode size parameter (Fig. 9)
	Activity     engine.ActivityConfig
}

// DefaultMaxSupernode is the supernode size cap used when unset. The paper
// finds optima in the 20-50 range for emitted C++ (Fig. 9); this repository's
// interpreted evaluation makes node evaluation relatively more expensive than
// active-bit examination, shifting the optimum down (see EXPERIMENTS.md's
// Fig. 9 discussion).
const DefaultMaxSupernode = 4

// System is a compiled, runnable simulator for one design.
type System struct {
	Config Config
	Graph  *ir.Graph // the optimized graph (topologically numbered)
	Prog   *emit.Program
	Part   *partition.Result // nil for full-cycle engines
	Sim    engine.Sim

	PassResult passes.Result
	PassTime   time.Duration
	BuildTime  time.Duration // total: passes + sort + emit + partition + engine
}

// Build compiles a fresh simulator from the input graph. The input graph is
// cloned first and never mutated, so one elaborated design can be built many
// ways (as the experiments do). Build is CompileDesign + NewSim in one call;
// long-lived services that amortize the compile across many sessions use
// those two halves directly (with a CompileCache between them).
func Build(g *ir.Graph, cfg Config) (*System, error) {
	start := time.Now()
	d, err := CompileDesign(g, cfg)
	if err != nil {
		return nil, err
	}
	sim, err := d.NewSim(cfg)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Config:     d.Config,
		Graph:      d.Graph,
		Prog:       d.Prog,
		Part:       d.Part,
		Sim:        sim,
		PassResult: d.PassResult,
		PassTime:   d.PassTime,
		BuildTime:  time.Since(start),
	}
	return sys, nil
}

// Close releases engine resources (parallel workers).
func (s *System) Close() { s.Sim.Close() }

// Node returns the optimized graph's node with the given name, or nil. Note
// that optimization may remove or rename internal nodes; inputs and outputs
// always survive.
func (s *System) Node(name string) *ir.Node { return s.Graph.FindNode(name) }

// --- Presets: the simulators compared in the paper ---

// Verilator models single-threaded Verilator: full-cycle evaluation with
// expression optimization and statement fusion (Verilator -O3 inlines
// aggressively when emitting C++).
func Verilator() Config {
	opt := passes.Basic()
	opt.Inline = true
	return Config{Name: "verilator", Opt: opt, Engine: EngineFullCycle}
}

// VerilatorMT models Verilator --threads N.
func VerilatorMT(threads int) Config {
	cfg := Verilator()
	cfg.Name = fmt.Sprintf("verilator-%dT", threads)
	cfg.Engine = EngineParallel
	cfg.Threads = threads
	return cfg
}

// Arcilator models the CIRCT/MLIR simulator: aggressive expression-level
// optimization, still evaluating every signal every cycle.
func Arcilator() Config {
	return Config{
		Name: "arcilator",
		Opt: passes.Options{
			Simplify: true, Redundant: true, Inline: true, Extract: true,
		},
		Engine: EngineFullCycle,
	}
}

// Essent models ESSENT: essential-signal simulation with MFFC partitions and
// unconditionally branchless activation, plus basic expression optimization.
func Essent() Config {
	return Config{
		Name: "essent",
		Opt: passes.Options{
			Simplify: true, Redundant: true, Inline: true,
		},
		Engine:    EngineActivity,
		Partition: partition.MFFC,
		Activity: engine.ActivityConfig{
			MultiBitCheck: false,
			Activation:    engine.ActBranchless,
		},
	}
}

// GSIM is the paper's simulator: every optimization at all three levels.
func GSIM() Config {
	return Config{
		Name:      "gsim",
		Opt:       passes.All(),
		Engine:    EngineActivity,
		Partition: partition.Enhanced,
		Activity: engine.ActivityConfig{
			MultiBitCheck: true,
			Activation:    engine.ActCostModel,
		},
	}
}

// GSIMMT is the multi-threaded GSIM: the full essential-signal pipeline
// executed by the ParallelActivity engine, which shards supernodes across N
// persistent workers with level barriers.
func GSIMMT(threads int) Config {
	cfg := GSIM()
	cfg.Name = fmt.Sprintf("gsim-%dT", threads)
	cfg.Engine = EngineParallelActivity
	cfg.Threads = threads
	return cfg
}
