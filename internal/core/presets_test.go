package core

import (
	"testing"

	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

func exprRefTo(n *ir.Node) *ir.Expr { return ir.Ref(n) }

// TestPresetShapes pins the preset configurations to the simulators they
// model, so a refactor cannot silently turn "essent" into something else.
func TestPresetShapes(t *testing.T) {
	v := Verilator()
	if v.Engine != EngineFullCycle || !v.Opt.Simplify || !v.Opt.Inline || v.Opt.BitSplit {
		t.Fatalf("verilator preset drifted: %+v", v)
	}
	mt := VerilatorMT(4)
	if mt.Engine != EngineParallel || mt.Threads != 4 || mt.Name != "verilator-4T" {
		t.Fatalf("verilator-MT preset drifted: %+v", mt)
	}
	a := Arcilator()
	if a.Engine != EngineFullCycle || !a.Opt.Extract {
		t.Fatalf("arcilator preset drifted: %+v", a)
	}
	e := Essent()
	if e.Engine != EngineActivity || e.Partition != partition.MFFC ||
		e.Activity.Activation != engine.ActBranchless || e.Activity.MultiBitCheck {
		t.Fatalf("essent preset drifted: %+v", e)
	}
	g := GSIM()
	if g.Engine != EngineActivity || g.Partition != partition.Enhanced ||
		!g.Activity.MultiBitCheck || g.Activity.Activation != engine.ActCostModel ||
		!g.Opt.BitSplit || !g.Opt.ResetOpt {
		t.Fatalf("gsim preset drifted: %+v", g)
	}
	gmt := GSIMMT(4)
	if gmt.Engine != EngineParallelActivity || gmt.Threads != 4 || gmt.Name != "gsim-4T" ||
		gmt.Partition != partition.Enhanced || !gmt.Activity.MultiBitCheck ||
		gmt.Activity.Activation != engine.ActCostModel || !gmt.Opt.BitSplit {
		t.Fatalf("gsimmt preset drifted: %+v", gmt)
	}
}

// TestBuildDoesNotMutateInput verifies the clone contract: building many
// configurations from one graph leaves the input untouched.
func TestBuildDoesNotMutateInput(t *testing.T) {
	g := gen.Random(3, gen.DefaultRandomConfig())
	before := g.ComputeStats()
	for _, cfg := range []Config{Verilator(), GSIM()} {
		sys, err := Build(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Close()
	}
	after := g.ComputeStats()
	if before != after {
		t.Fatalf("input graph mutated by Build: %+v -> %+v", before, after)
	}
}

// TestBuildRejectsCombinationalCycle: a broken graph must fail cleanly.
func TestBuildRejectsCombinationalCycle(t *testing.T) {
	g := gen.Random(0, gen.DefaultRandomConfig())
	// Introduce a cycle between the first two combinational nodes.
	var combs []int
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindComb {
			combs = append(combs, n.ID)
			if len(combs) == 2 {
				break
			}
		}
	}
	a, b := g.Nodes[combs[0]], g.Nodes[combs[1]]
	a.Expr = exprRefTo(b)
	a.Width = b.Width
	b.Expr = exprRefTo(a)
	b.Width = a.Width
	if _, err := Build(g, GSIM()); err == nil {
		t.Fatal("expected combinational-cycle error")
	}
}
