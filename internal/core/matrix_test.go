package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
)

// matrixSim is one cell of the conformance matrix: an engine instance over
// the shared compiled program.
type matrixSim struct {
	name string
	sim  engine.Sim
}

// matrixEngines instantiates the full engine × eval-mode × thread-count ×
// coarsening matrix over ONE compiled program and partition, so every cell
// shares node IDs and state layout and the state images can be compared word
// for word:
//
//	fullcycle, activity                   × {kernel, kernel-nofuse, interp}
//	parallel, parallel-activity           × {kernel, kernel-nofuse, interp} × {1, 2, 4} threads
//	parallel-activity (coarsened)         × {kernel, kernel-nofuse, interp} × {1, 2, 4} threads
//
// The coarsened cells run the merged-level schedule with an aggressive grain
// (so merging actually happens on small designs) and must stay bit-identical
// to every other cell — the adaptive-coarsening correctness pin.
//
// All engines must produce identical state trajectories (the package
// contract in internal/engine); before this test only kernel-vs-interp pairs
// of the same engine were pinned.
func matrixEngines(t *testing.T, sys *System) []matrixSim {
	t.Helper()
	order := make([]int32, len(sys.Graph.Nodes))
	for i := range order {
		order[i] = int32(i)
	}
	_, byLevel := sys.Graph.Levelize(order)

	coarse := sys.Config.Activity
	coarse.Coarsen = true
	coarse.CoarsenGrain = 1 << 30 // merge everything mergeable: worst case for ordering bugs

	modes := []engine.EvalMode{engine.EvalKernel, engine.EvalKernelNoFuse, engine.EvalInterp}
	var sims []matrixSim
	for _, mode := range modes {
		sims = append(sims,
			matrixSim{fmt.Sprintf("fullcycle/%s", mode), engine.NewFullCycle(sys.Prog, mode)},
			matrixSim{fmt.Sprintf("activity/%s", mode), engine.NewActivity(sys.Prog, sys.Part, sys.Config.Activity, mode)},
		)
		for _, threads := range []int{1, 2, 4} {
			sims = append(sims,
				matrixSim{fmt.Sprintf("parallel-%dT/%s", threads, mode),
					engine.NewParallel(sys.Prog, byLevel, threads, mode)},
				matrixSim{fmt.Sprintf("parallel-activity-%dT/%s", threads, mode),
					engine.NewParallelActivity(sys.Prog, sys.Part, sys.Config.Activity, threads, mode)},
				matrixSim{fmt.Sprintf("parallel-activity-coarsen-%dT/%s", threads, mode),
					engine.NewParallelActivity(sys.Prog, sys.Part, coarse, threads, mode)},
			)
		}
	}
	return sims
}

// matrixDesigns: every testdata FIRRTL design, two generated random designs,
// and the small generated profile (the synthetic processor shape with
// clusters, one-hot decode, FIFOs, and a 128-bit stimulus register that
// exercises the 2-word width class).
func matrixDesigns(t *testing.T) (names []string, graphs []*ir.Graph) {
	t.Helper()
	names, graphs = lockstepDesigns(t)
	names = append(names, "stucore-like-profile")
	graphs = append(graphs, gen.BuildProfile(gen.StuCoreLike()))
	return names, graphs
}

// TestEngineMatrixLockstep sweeps the conformance matrix: all four engines,
// all three evaluation modes, threaded engines at 1/2/4 workers, lockstep
// over every design with randomized stimulus and reset pulses. Every cell's
// full state image must stay bit-identical to the first cell every cycle,
// and the first cell's outputs must match the independent ir-reference
// oracle — so superinstruction fusion, width classes, and chunk batching can
// never diverge any engine from any other.
func TestEngineMatrixLockstep(t *testing.T) {
	cycles := 60
	if testing.Short() {
		cycles = 20
	}
	names, graphs := matrixDesigns(t)
	for di, g := range graphs {
		sys, err := Build(g, GSIM())
		if err != nil {
			t.Fatalf("%s: %v", names[di], err)
		}
		sims := matrixEngines(t, sys)
		ref, err := engine.NewReference(sys.Graph)
		if err != nil {
			t.Fatalf("%s: %v", names[di], err)
		}

		var inputs, outputs []*ir.Node
		for _, n := range sys.Graph.Nodes {
			if n.Kind == ir.KindInput {
				inputs = append(inputs, n)
			}
			if n.IsOutput {
				outputs = append(outputs, n)
			}
		}
		// The gang cell: a 3-lane gang with every lane fed the matrix
		// stimulus. Each lane's extracted state must track the scalar cells
		// word for word — the batched-lane sweep kernels join the same
		// bit-identity contract as every engine × mode × thread cell.
		const gangLanes = 3
		gang := engine.NewGang(sys.Prog, gangLanes)

		rng := rand.New(rand.NewSource(int64(di)*977 + 13))
		base := sims[0]
		for c := 0; c < cycles; c++ {
			for _, in := range inputs {
				v := bitvec.FromUint64(in.Width, rng.Uint64())
				if in.Name == "reset" {
					v = bitvec.FromUint64(1, uint64(rng.Intn(12)/11))
				}
				ref.Poke(in.ID, v)
				for _, ms := range sims {
					ms.sim.Poke(in.ID, v)
				}
				for l := 0; l < gangLanes; l++ {
					gang.Poke(l, in.ID, v)
				}
			}
			ref.Step()
			for _, ms := range sims {
				ms.sim.Step()
			}
			gang.Step()
			st0 := base.sim.Machine().State
			for _, ms := range sims[1:] {
				st := ms.sim.Machine().State
				for w := range st0 {
					if st0[w] != st[w] {
						t.Fatalf("%s cycle %d: state word %d: %s %#x vs %s %#x",
							names[di], c, w, base.name, st0[w], ms.name, st[w])
					}
				}
			}
			for l := 0; l < gangLanes; l++ {
				gst, err := gang.CaptureLane(l)
				if err != nil {
					t.Fatal(err)
				}
				for w := range st0 {
					if st0[w] != gst.State[w] {
						t.Fatalf("%s cycle %d: state word %d: %s %#x vs gang lane %d %#x",
							names[di], c, w, base.name, st0[w], l, gst.State[w])
					}
				}
			}
			for _, n := range outputs {
				if a, b := ref.Peek(n.ID), base.sim.Peek(n.ID); !a.EqValue(b) {
					t.Fatalf("%s cycle %d: output %q: reference %s vs %s %s",
						names[di], c, n.Name, a, base.name, b)
				}
			}
		}

		for _, ms := range sims {
			if c, ok := ms.sim.(interface{ Close() }); ok {
				c.Close()
			}
		}
		gang.Close()
		sys.Close()
	}
}
