package core

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/snapshot"
	"gsim/internal/trace"

	"math/rand"
)

// fuzzGraph decodes a byte string into a design. Inputs that parse as FIRRTL
// become that circuit (so the testdata corpus seeds real designs and their
// mutations); anything else seeds internal/gen's random circuit generator,
// with the shape knobs — node count, widths, memory, wide-value and reset
// fractions — drawn from the bytes so the fuzzer explores the design space,
// not just stimulus. Returns nil for inputs not worth simulating (parse
// errors on FIRRTL-looking text are fine — they fall through to gen — but
// designs too large to lockstep quickly are skipped).
func fuzzGraph(data []byte) *ir.Graph {
	if g := parseFIRRTL(data); g != nil {
		return g
	}
	if len(data) == 0 {
		return nil
	}
	at := func(i int) byte {
		return data[i%len(data)]
	}
	var seed int64
	if len(data) >= 8 {
		seed = int64(binary.LittleEndian.Uint64(data))
	} else {
		for i, b := range data {
			seed |= int64(b) << (8 * i)
		}
	}
	cfg := gen.RandomConfig{
		Nodes:     20 + int(at(8))%120,
		Inputs:    1 + int(at(9))%4,
		Regs:      1 + int(at(10))%14,
		MaxWidth:  1 + int(at(11))%90,
		MemDepth:  []int{0, 4, 16}[int(at(12))%3],
		WideFrac:  float64(int(at(13))%4) * 0.1,
		ResetFrac: float64(int(at(14))%3) * 0.4,
	}
	return gen.Random(seed, cfg)
}

// parseFIRRTL attempts to interpret the bytes as a FIRRTL circuit, bounding
// the result so a fuzz-mutated width or depth cannot blow up the lockstep
// run. The parser is not the fuzz target — a panic on mangled text degrades
// to the random-design path instead of failing the run.
func parseFIRRTL(data []byte) (g *ir.Graph) {
	defer func() {
		if recover() != nil {
			g = nil
		}
	}()
	parsed, err := firrtl.Load(string(data))
	if err != nil || parsed == nil {
		return nil
	}
	words := 0
	for _, n := range parsed.Nodes {
		if n == nil || n.Width < 0 || n.Width > 4096 {
			return nil
		}
		words += bitvec.WordsFor(n.Width)
	}
	if len(parsed.Nodes) > 4000 || words > 1<<16 {
		return nil
	}
	for _, m := range parsed.Mems {
		if m.Depth > 1<<12 || m.Width > 4096 {
			return nil
		}
	}
	return parsed
}

// FuzzKernelLockstep is the generative conformance harness behind the kernel
// compiler: for every fuzz input, decode a design, then run the fused kernel
// pipeline, the pre-fusion kernel baseline, the reference interpreter, and
// the independent ir-reference oracle in lockstep, failing on any state or
// stat divergence. The seed corpus is the committed testdata designs plus a
// handful of byte seeds for the generator path; `go test -fuzz=FuzzKernelLockstep`
// explores from there (CI runs a 30s smoke).
func FuzzKernelLockstep(f *testing.F) {
	files, err := filepath.Glob("../../testdata/*.fir")
	if err != nil || len(files) == 0 {
		f.Fatalf("no testdata designs found: %v", err)
	}
	for _, fp := range files {
		data, err := os.ReadFile(fp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("gsim"))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x40, 0x02, 0x07, 0x50, 0x01, 0x03, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			t.Skip("input decodes to no design")
		}
		sysK, err := Build(g, GSIM())
		if err != nil {
			t.Skip("design does not compile:", err)
		}
		defer sysK.Close()
		simNF := engine.NewActivity(sysK.Prog, sysK.Part, sysK.Config.Activity, engine.EvalKernelNoFuse)
		simI := engine.NewActivity(sysK.Prog, sysK.Part, sysK.Config.Activity, engine.EvalInterp)
		// The coarsening axis: the merged-level schedule at its most
		// aggressive grain, two workers, must track the same trajectory.
		coarseCfg := sysK.Config.Activity
		coarseCfg.Coarsen = true
		coarseCfg.CoarsenGrain = 1 << 30
		simC := engine.NewParallelActivity(sysK.Prog, sysK.Part, coarseCfg, 2, engine.EvalKernel)
		defer simC.Close()
		// The snapshot axis: this engine is serialized through the versioned
		// snapshot format and restored into a fresh engine mid-run; its
		// trajectory and stats must never diverge from the uninterrupted one.
		var simS engine.Sim = engine.NewActivity(sysK.Prog, sysK.Part, sysK.Config.Activity, engine.EvalKernel)
		ref, err := engine.NewReference(sysK.Graph)
		if err != nil {
			t.Fatal(err)
		}

		var inputs, outputs []*ir.Node
		for _, n := range sysK.Graph.Nodes {
			if n.Kind == ir.KindInput {
				inputs = append(inputs, n)
			}
			if n.IsOutput {
				outputs = append(outputs, n)
			}
		}

		// The simplify axis: the same design built with the generated
		// algebraic rule set disabled. The optimized graphs differ (that is
		// the point), so node IDs do too — the comparison maps the surviving
		// interface nodes by name and requires identical per-cycle values AND
		// byte-identical VCD streams over that common set. The unsimplified
		// build may legitimately fail to compile (e.g. a wide division the
		// rules previously folded away), which skips the axis, not the run.
		cfgNA := GSIM()
		cfgNA.Name = "gsim-noalg"
		cfgNA.Opt.NoAlgebraic = true
		sysNA, errNA := Build(g, cfgNA)
		var naByID map[int]*ir.Node // sysK interface node ID -> NA twin
		var commonK, commonNA []*ir.Node
		var vcdK, vcdNA bytes.Buffer
		var trK, trNA *trace.VCD
		if errNA == nil {
			defer sysNA.Close()
			naByID = make(map[int]*ir.Node)
			for _, n := range append(append([]*ir.Node{}, inputs...), outputs...) {
				m := sysNA.Graph.FindNode(n.Name)
				if m == nil || m.Width != n.Width {
					continue // interface drift would be a bug, but not this axis's
				}
				naByID[n.ID] = m
				commonK = append(commonK, n)
				commonNA = append(commonNA, m)
			}
			trK, err = trace.NewVCD(&vcdK, sysK.Prog, commonK, trace.Options{Sync: true})
			if err != nil {
				t.Fatal(err)
			}
			trNA, err = trace.NewVCD(&vcdNA, sysNA.Prog, commonNA, trace.Options{Sync: true})
			if err != nil {
				t.Fatal(err)
			}
			sysK.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(trK)
			sysNA.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(trNA)
		}
		// The gang axis: a 2-lane gang over the same compiled program. Lane 0
		// rides the main stimulus and must track the kernel engine's state
		// image word for word; lane 1 runs divergent stimulus beside a scalar
		// full-cycle twin — parked at random so the masked gather/scatter
		// paths fuzz too — and finishes with a snapshot epilogue where the
		// lane's blob must equal the twin's byte for byte.
		gang := engine.NewGang(sysK.Prog, 2)
		defer gang.Close()
		twin := engine.NewFullCycle(sysK.Prog, engine.EvalKernel)
		defer twin.Close()
		rngL1 := rand.New(rand.NewSource(int64(len(data))*77 + 3))

		rng := rand.New(rand.NewSource(int64(len(data))*31 + 5))
		const cycles = 24
		for c := 0; c < cycles; c++ {
			if c == cycles/2 {
				// Snapshot boundary between Steps: save, restore into a
				// brand-new engine, and continue on the replacement.
				blob, err := snapshot.Save(simS)
				if err != nil {
					t.Fatal(err)
				}
				fresh := engine.NewActivity(sysK.Prog, sysK.Part, sysK.Config.Activity, engine.EvalKernel)
				if err := snapshot.Restore(fresh, blob); err != nil {
					t.Fatal(err)
				}
				simS = fresh
			}
			for _, in := range inputs {
				v := bitvec.FromUint64(in.Width, rng.Uint64())
				if in.Name == "reset" {
					v = bitvec.FromUint64(1, uint64(rng.Intn(8)/7))
				}
				ref.Poke(in.ID, v)
				sysK.Sim.Poke(in.ID, v)
				simNF.Poke(in.ID, v)
				simI.Poke(in.ID, v)
				simC.Poke(in.ID, v)
				simS.Poke(in.ID, v)
				gang.Poke(0, in.ID, v)
				// Lane 1 and its twin always receive the divergent stimulus —
				// pokes land on a parked lane too (they write state, they do
				// not step it), and the twin mirrors that exactly.
				v1 := bitvec.FromUint64(in.Width, rngL1.Uint64())
				gang.Poke(1, in.ID, v1)
				twin.Poke(in.ID, v1)
				if errNA == nil {
					if m, ok := naByID[in.ID]; ok {
						sysNA.Sim.Poke(m.ID, v)
					}
				}
			}
			lane1Live := rngL1.Intn(6) != 0
			gang.SetLive(1, lane1Live)
			ref.Step()
			sysK.Sim.Step()
			simNF.Step()
			simI.Step()
			simC.Step()
			simS.Step()
			gang.Step()
			if lane1Live {
				twin.Step()
			}
			if errNA == nil {
				sysNA.Sim.Step()
				for i, n := range commonK {
					if a, b := sysK.Sim.Peek(n.ID), sysNA.Sim.Peek(commonNA[i].ID); !a.EqValue(b) {
						t.Fatalf("cycle %d: node %q: simplified %s vs unsimplified %s", c, n.Name, a, b)
					}
				}
			}
			stK := sysK.Sim.Machine().State
			lane0, err := gang.CaptureLane(0)
			if err != nil {
				t.Fatal(err)
			}
			lane1, err := gang.CaptureLane(1)
			if err != nil {
				t.Fatal(err)
			}
			for name, st := range map[string][]uint64{
				"kernel-nofuse":      simNF.Machine().State,
				"interp":             simI.Machine().State,
				"coarsen-2T":         simC.Machine().State,
				"snapshot-roundtrip": simS.Machine().State,
				"gang-lane0":         lane0.State,
			} {
				for w := range stK {
					if stK[w] != st[w] {
						t.Fatalf("cycle %d: state word %d: kernel %#x vs %s %#x",
							c, w, stK[w], name, st[w])
					}
				}
			}
			for w, tw := range twin.Machine().State {
				if lane1.State[w] != tw {
					t.Fatalf("cycle %d: state word %d: gang lane1 %#x vs scalar twin %#x (live=%v)",
						c, w, lane1.State[w], tw, lane1Live)
				}
			}
			for _, n := range outputs {
				if a, b := ref.Peek(n.ID), sysK.Sim.Peek(n.ID); !a.EqValue(b) {
					t.Fatalf("cycle %d: output %q: reference %s vs kernel %s", c, n.Name, a, b)
				}
			}
		}

		// Gang epilogue: the divergent lane's snapshot must be byte-identical
		// to its scalar twin's — one blob format across shapes, stats and all.
		laneBlob, err := snapshot.SaveLane(gang, 1)
		if err != nil {
			t.Fatal(err)
		}
		twinBlob, err := snapshot.Save(twin)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(laneBlob, twinBlob) {
			t.Fatalf("gang lane 1 snapshot differs from scalar twin (%d vs %d bytes)",
				len(laneBlob), len(twinBlob))
		}

		// Stats must not depend on the evaluation mode — nor on a snapshot
		// round-trip through a fresh engine mid-run.
		a, b, nf := sysK.Sim.Stats(), simI.Stats(), simNF.Stats()
		if s := simS.Stats(); *a != *s {
			t.Fatalf("stats diverge kernel vs snapshot-roundtrip:\nkernel   %+v\nsnapshot %+v", *a, *s)
		}
		for name, other := range map[string]*engine.Stats{"interp": b, "kernel-nofuse": nf} {
			if a.NodeEvals != other.NodeEvals || a.Activations != other.Activations ||
				a.Examinations != other.Examinations || a.InstrsExecuted != other.InstrsExecuted ||
				a.RegCommits != other.RegCommits {
				t.Fatalf("stats diverge kernel vs %s:\nkernel %+v\n%s %+v", name, *a, name, *other)
			}
		}

		// Simplify-axis epilogue: the two VCD streams over the shared
		// interface nodes must be byte-identical. Stats beyond that are
		// allowed to differ — the graphs do, and a few rules deliberately
		// trade one wide instruction for two narrow ones (leq-zero becomes
		// not(orr x)), so strict instruction-count monotonicity does not
		// hold. What must never happen is gross pessimization: each rewrite
		// replaces one node with at most two, so anything past 2x (plus
		// scheduling slack) means the rule set is expanding work, not
		// simplifying it.
		if errNA == nil {
			if err := trK.Close(); err != nil {
				t.Fatal(err)
			}
			if err := trNA.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(vcdK.Bytes(), vcdNA.Bytes()) {
				t.Fatalf("VCD streams diverge between simplified and unsimplified builds (%d vs %d bytes)",
					vcdK.Len(), vcdNA.Len())
			}
			if ks, ns := sysK.Sim.Stats(), sysNA.Sim.Stats(); ks.InstrsExecuted > 2*ns.InstrsExecuted+64 {
				t.Fatalf("simplified build executed far more instructions: %d vs %d",
					ks.InstrsExecuted, ns.InstrsExecuted)
			}
		}
	})
}
