package core

import "gsim/internal/obs"

// CacheMetrics is the compile-cache observability bundle: lookup traffic,
// eviction pressure, residency, and the compile-duration histogram. Attach
// to a CompileCache with SetObs.
type CacheMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
	// ResidentBytes / Designs mirror the cache's governance view on every
	// mutation, so /metrics needs no lock acquisition at scrape time.
	ResidentBytes *obs.Gauge
	Designs       *obs.Gauge
	// CompileSeconds observes each actual compile (singleflight winners
	// only — hits and blocked waiters don't re-observe).
	CompileSeconds *obs.Histogram
}

// NewCacheMetrics registers the compile-cache metric family in r
// (idempotent).
func NewCacheMetrics(r *obs.Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits:           r.Counter("gsim_compile_cache_hits_total", "Compile-cache lookups that found an existing entry."),
		Misses:         r.Counter("gsim_compile_cache_misses_total", "Compile-cache lookups that created the entry and ran the compile."),
		Evictions:      r.Counter("gsim_compile_cache_evictions_total", "Compiled designs evicted under the byte budget."),
		ResidentBytes:  r.Gauge("gsim_compile_cache_resident_bytes", "Accounted bytes of resident compiled designs."),
		Designs:        r.Gauge("gsim_compile_cache_designs", "Cached designs (including failed compiles)."),
		CompileSeconds: r.Histogram("gsim_compile_duration_seconds", "Wall time of each design compile.", nil),
	}
}
