package rv

import (
	"testing"

	"gsim/internal/core"
)

func TestAssembleBasics(t *testing.T) {
	prog, err := Assemble(`
start:
    addi x1, x0, 5
    add  x2, x1, x1
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("got %d words, want 3", len(prog))
	}
	if prog[0] != 0x00500093 {
		t.Errorf("addi x1,x0,5 = %#x, want 0x00500093", prog[0])
	}
	if prog[1] != 0x00108133 {
		t.Errorf("add x2,x1,x1 = %#x, want 0x00108133", prog[1])
	}
	if prog[2] != 0x73 {
		t.Errorf("ecall = %#x, want 0x73", prog[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"addi x1, x0",        // missing operand
		"addi x1, x0, 99999", // immediate out of range
		"frob x1, x2, x3",    // unknown op
		"lw x1, (q0)",        // bad register
		"foo: foo: nop",      // duplicate label (same line)
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestISSSmoke(t *testing.T) {
	prog, err := Assemble(`
    li   a0, 0
    li   t0, 10
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	iss := NewISS(prog, 1024)
	if err := iss.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !iss.Halted {
		t.Fatal("ISS did not halt")
	}
	if iss.Regs[10] != 55 {
		t.Fatalf("a0 = %d, want 55", iss.Regs[10])
	}
}

// runOnCore executes a program on the RTL core under the given config until
// halt, returning the final a0 and retired instruction count.
func runOnCore(t *testing.T, prog []uint32, cfg core.Config, maxCycles int) (uint32, uint32) {
	t.Helper()
	c, err := BuildCore(prog, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(c.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	halted := sys.Node("halted")
	if halted == nil {
		t.Fatal("halted node missing after optimization")
	}
	for i := 0; i < maxCycles; i++ {
		sys.Sim.Step()
		if sys.Sim.Peek(halted.ID).Uint64() == 1 {
			a0 := sys.Sim.PeekMem(c.RFID, 10).Uint64()
			ret := sys.Sim.Peek(sys.Node("instret").ID).Uint64()
			return uint32(a0), uint32(ret)
		}
	}
	t.Fatalf("core did not halt within %d cycles (config %s)", maxCycles, cfg.Name)
	return 0, 0
}

// TestCoreMatchesISS is the end-to-end differential test: every workload on
// every simulator configuration must produce the ISS's architectural result.
func TestCoreMatchesISS(t *testing.T) {
	cfgs := []core.Config{core.Verilator(), core.VerilatorMT(2), core.Arcilator(), core.Essent(), core.GSIM()}
	for name, src := range Workloads {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog, err := Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			iss := NewISS(prog, DefaultCoreConfig().DMemWords)
			if err := iss.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			if !iss.Halted {
				t.Fatal("ISS did not halt")
			}
			want := iss.Regs[10]
			for _, cfg := range cfgs {
				a0, ret := runOnCore(t, prog, cfg, int(iss.Count)+16)
				if a0 != want {
					t.Errorf("%s: a0 = %#x, want %#x", cfg.Name, a0, want)
				}
				if uint64(ret) != iss.Count {
					t.Errorf("%s: instret = %d, ISS retired %d", cfg.Name, ret, iss.Count)
				}
			}
		})
	}
}

// TestCoreStateLockstep compares the full architectural state (PC + all 32
// registers) between the RTL core under GSIM and the ISS cycle by cycle for
// the first 2000 instructions of each workload.
func TestCoreStateLockstep(t *testing.T) {
	prog, err := Assemble(CoreMarkLike)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCore(prog, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(c.Graph, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	iss := NewISS(prog, DefaultCoreConfig().DMemWords)
	pcNode := sys.Node("pc")
	for i := 0; i < 2000 && !iss.Halted; i++ {
		sys.Sim.Step()
		if err := iss.Step(); err != nil {
			t.Fatal(err)
		}
		if got, want := uint32(sys.Sim.Peek(pcNode.ID).Uint64()), iss.PC; got != want {
			t.Fatalf("step %d: PC=%#x, ISS PC=%#x", i, got, want)
		}
		for r := 1; r < 32; r++ {
			got := uint32(sys.Sim.PeekMem(c.RFID, r).Uint64())
			if got != iss.Regs[r] {
				t.Fatalf("step %d: x%d=%#x, ISS x%d=%#x", i, r, got, r, iss.Regs[r])
			}
		}
	}
}

var engineSims = []func() core.Config{core.Verilator, core.Essent, core.GSIM}

// TestWorkloadChecksumsStable pins the workload results so accidental
// assembler or core regressions change a known constant.
func TestWorkloadChecksumsStable(t *testing.T) {
	want := map[string]bool{}
	for name, src := range Workloads {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		iss := NewISS(prog, DefaultCoreConfig().DMemWords)
		if err := iss.Run(2_000_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !iss.Halted {
			t.Fatalf("%s: did not halt", name)
		}
		if iss.Regs[10] == 0 {
			t.Fatalf("%s: checksum is zero — workload degenerate", name)
		}
		want[name] = true
	}
	_ = engineSims
	if len(want) != 2 {
		t.Fatalf("expected 2 workloads, got %d", len(want))
	}
}
