package rv

// Workload programs. The experiments need two software behaviors the paper
// distinguishes (§IV-A): CoreMark "exhibits hot spots" — a small set of hot
// loops dominating execution — while a Linux boot "does not" — control flow
// keeps moving through different code. The two programs below reproduce
// those activity profiles at the scale of the bundled core; both terminate
// with ecall and leave a checksum in a0 so runs are self-verifying.

// CoreMarkLike is the hot-loop workload: CRC accumulation, a small
// matrix-multiply kernel, and a find-max scan, iterated many times — the
// same loop bodies over and over, like CoreMark's list/matrix/state work.
const CoreMarkLike = `
start:
    li   sp, 0x1f00
    li   s0, 0          # checksum accumulator
    li   s1, 5          # outer iterations

outer:
    # --- phase 1: CRC16 over a counter stream ---
    li   t0, 0xffff     # crc
    li   t1, 64         # bytes
    li   t2, 1          # data byte seed
crc_loop:
    xor  t0, t0, t2
    li   t3, 8
crc_bit:
    andi t4, t0, 1
    srli t0, t0, 1
    beqz t4, crc_noxor
    li   t5, 0xa001
    xor  t0, t0, t5
crc_noxor:
    addi t3, t3, -1
    bnez t3, crc_bit
    addi t2, t2, 7
    andi t2, t2, 0xff
    addi t1, t1, -1
    bnez t1, crc_loop
    add  s0, s0, t0

    # --- phase 2: 4x4 matrix multiply (values synthesized in registers) ---
    li   t0, 0          # i
mm_i:
    li   t1, 0          # j
mm_j:
    li   t2, 0          # k
    li   t3, 0          # acc
mm_k:
    # a[i][k] = i*4+k+1 ; b[k][j] = k*4+j+2
    slli t4, t0, 2
    add  t4, t4, t2
    addi t4, t4, 1
    slli t5, t2, 2
    add  t5, t5, t1
    addi t5, t5, 2
    # acc += a*b via shift-add multiply (8 partial products)
    li   t6, 8
mulloop:
    andi a1, t5, 1
    beqz a1, mulskip
    add  t3, t3, t4
mulskip:
    slli t4, t4, 1
    srli t5, t5, 1
    addi t6, t6, -1
    bnez t6, mulloop
    addi t2, t2, 1
    slti a1, t2, 4
    bnez a1, mm_k
    add  s0, s0, t3
    addi t1, t1, 1
    slti a1, t1, 4
    bnez a1, mm_j
    addi t0, t0, 1
    slti a1, t0, 4
    bnez a1, mm_i

    # --- phase 3: find-max over a strided sequence ---
    li   t0, 0          # max
    li   t1, 97         # value
    li   t2, 50         # count
fm_loop:
    bgeu t0, t1, fm_skip
    mv   t0, t1
fm_skip:
    addi t1, t1, 61
    andi t1, t1, 0x1ff
    addi t2, t2, -1
    bnez t2, fm_loop
    add  s0, s0, t0

    addi s1, s1, -1
    bnez s1, outer

    mv   a0, s0
    ecall
`

// LinuxBootLike is the no-hot-spot workload: a sequence of distinct phases —
// memory clearing, table initialization, pointer-chasing, string searching,
// byte I/O, and a dispatch loop that keeps jumping to different handlers —
// so activity keeps shifting between regions, like early kernel boot.
const LinuxBootLike = `
start:
    li   sp, 0x1f00
    li   s0, 0          # checksum

    # --- phase 1: clear 256 words of memory (like BSS zeroing) ---
    li   t0, 0x100
    li   t1, 256
clear_loop:
    sw   zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, clear_loop

    # --- phase 2: build a pseudo page-table (scatter writes) ---
    li   t0, 0          # index
    li   t1, 0x100      # base
pt_loop:
    slli t2, t0, 2
    add  t2, t2, t1
    slli t3, t0, 7
    addi t3, t3, 0x11
    sw   t3, 0(t2)
    addi t0, t0, 1
    slti t4, t0, 128
    bnez t4, pt_loop

    # --- phase 3: pointer-chase through the table ---
    li   t0, 0          # current index
    li   t1, 200        # steps
    li   t5, 0x100
chase_loop:
    slli t2, t0, 2
    add  t2, t2, t5
    lw   t3, 0(t2)
    add  s0, s0, t3
    andi t0, t3, 127
    addi t1, t1, -1
    bnez t1, chase_loop

    # --- phase 4: byte writes and string scan (like console output) ---
    li   t0, 0x600      # buffer
    li   t1, 64
    li   t2, 65
emit_loop:
    sb   t2, 0(t0)
    addi t0, t0, 1
    addi t2, t2, 1
    andi t2, t2, 0x7f
    addi t1, t1, -1
    bnez t1, emit_loop
    li   t0, 0x600
    li   t1, 64
scan_loop:
    lbu  t3, 0(t0)
    add  s0, s0, t3
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, scan_loop

    # --- phase 5: dispatch loop over four handlers ---
    li   t0, 40         # iterations
    li   t1, 0          # selector
dispatch:
    andi t2, t1, 3
    beqz t2, h0
    addi t3, t2, -1
    beqz t3, h1
    addi t3, t2, -2
    beqz t3, h2
h3:
    slli t4, s0, 1
    xor  s0, s0, t4
    j    dispatch_next
h0:
    addi s0, s0, 13
    j    dispatch_next
h1:
    srli t4, s0, 3
    add  s0, s0, t4
    j    dispatch_next
h2:
    xori s0, s0, 0x55
dispatch_next:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, dispatch

    mv   a0, s0
    ecall
`

// Workloads maps workload names to their assembly sources.
var Workloads = map[string]string{
	"coremark": CoreMarkLike,
	"linux":    LinuxBootLike,
}
