package rv

import "fmt"

// ISS is the reference RV32I instruction-set simulator: the golden model
// the RTL core is checked against. Word-addressed Harvard memories matching
// the core's layout.
type ISS struct {
	PC     uint32
	Regs   [32]uint32
	IMem   []uint32 // instruction words
	DMem   []uint32 // data words
	Halted bool
	Count  uint64 // retired instructions
}

// NewISS builds an ISS with the program loaded at PC 0.
func NewISS(program []uint32, dmemWords int) *ISS {
	iss := &ISS{IMem: program, DMem: make([]uint32, dmemWords)}
	return iss
}

// Step executes one instruction. Halted machines stay halted.
func (s *ISS) Step() error {
	if s.Halted {
		return nil
	}
	idx := s.PC >> 2
	if idx >= uint32(len(s.IMem)) {
		return fmt.Errorf("iss: PC %#x outside instruction memory", s.PC)
	}
	in := s.IMem[idx]
	s.Count++
	op := in & 0x7f
	rd := in >> 7 & 0x1f
	f3 := in >> 12 & 0x7
	rs1 := in >> 15 & 0x1f
	rs2 := in >> 20 & 0x1f
	f7 := in >> 25
	r1, r2 := s.Regs[rs1], s.Regs[rs2]
	immI := uint32(int32(in) >> 20)
	immS := uint32(int32(in)>>25<<5) | (in >> 7 & 0x1f)
	immB := uint32(int32(in)>>31<<12) | (in>>7&1)<<11 | (in >> 25 & 0x3f << 5) | (in >> 8 & 0xf << 1)
	immU := in & 0xfffff000
	immJ := uint32(int32(in)>>31<<20) | (in & 0xff000) | (in >> 20 & 1 << 11) | (in >> 21 & 0x3ff << 1)

	next := s.PC + 4
	setRd := func(v uint32) {
		if rd != 0 {
			s.Regs[rd] = v
		}
	}
	ldw := func(addr uint32) (uint32, error) {
		w := addr >> 2
		if w >= uint32(len(s.DMem)) {
			return 0, fmt.Errorf("iss: load from %#x outside data memory", addr)
		}
		return s.DMem[w], nil
	}

	switch op {
	case 0x37: // lui
		setRd(immU)
	case 0x17: // auipc
		setRd(s.PC + immU)
	case 0x6f: // jal
		setRd(s.PC + 4)
		next = s.PC + immJ
	case 0x67: // jalr
		t := (r1 + immI) &^ 1
		setRd(s.PC + 4)
		next = t
	case 0x63: // branches
		taken := false
		switch f3 {
		case 0:
			taken = r1 == r2
		case 1:
			taken = r1 != r2
		case 4:
			taken = int32(r1) < int32(r2)
		case 5:
			taken = int32(r1) >= int32(r2)
		case 6:
			taken = r1 < r2
		case 7:
			taken = r1 >= r2
		default:
			return fmt.Errorf("iss: bad branch funct3 %d", f3)
		}
		if taken {
			next = s.PC + immB
		}
	case 0x03: // loads
		addr := r1 + immI
		w, err := ldw(addr)
		if err != nil {
			return err
		}
		sh := (addr & 3) * 8
		switch f3 {
		case 0: // lb
			b := w >> sh & 0xff
			setRd(uint32(int32(b<<24) >> 24))
		case 1: // lh
			h := w >> sh & 0xffff
			setRd(uint32(int32(h<<16) >> 16))
		case 2: // lw
			setRd(w)
		case 4: // lbu
			setRd(w >> sh & 0xff)
		case 5: // lhu
			setRd(w >> sh & 0xffff)
		default:
			return fmt.Errorf("iss: unsupported load funct3 %d", f3)
		}
	case 0x23: // stores
		addr := r1 + immS
		w := addr >> 2
		if w >= uint32(len(s.DMem)) {
			return fmt.Errorf("iss: store to %#x outside data memory", addr)
		}
		switch f3 {
		case 0: // sb
			sh := (addr & 3) * 8
			mask := uint32(0xff) << sh
			s.DMem[w] = s.DMem[w]&^mask | (r2&0xff)<<sh
		case 1: // sh
			sh := (addr & 2) * 8
			mask := uint32(0xffff) << sh
			s.DMem[w] = s.DMem[w]&^mask | (r2&0xffff)<<sh
		case 2: // sw
			s.DMem[w] = r2
		default:
			return fmt.Errorf("iss: unsupported store funct3 %d", f3)
		}
	case 0x13: // ALU immediate
		var v uint32
		switch f3 {
		case 0:
			v = r1 + immI
		case 1:
			v = r1 << (immI & 31)
		case 2:
			if int32(r1) < int32(immI) {
				v = 1
			}
		case 3:
			if r1 < immI {
				v = 1
			}
		case 4:
			v = r1 ^ immI
		case 5:
			if f7 == 0x20 {
				v = uint32(int32(r1) >> (immI & 31))
			} else {
				v = r1 >> (immI & 31)
			}
		case 6:
			v = r1 | immI
		case 7:
			v = r1 & immI
		}
		setRd(v)
	case 0x33: // ALU register
		var v uint32
		switch f3 {
		case 0:
			if f7 == 0x20 {
				v = r1 - r2
			} else {
				v = r1 + r2
			}
		case 1:
			v = r1 << (r2 & 31)
		case 2:
			if int32(r1) < int32(r2) {
				v = 1
			}
		case 3:
			if r1 < r2 {
				v = 1
			}
		case 4:
			v = r1 ^ r2
		case 5:
			if f7 == 0x20 {
				v = uint32(int32(r1) >> (r2 & 31))
			} else {
				v = r1 >> (r2 & 31)
			}
		case 6:
			v = r1 | r2
		case 7:
			v = r1 & r2
		}
		setRd(v)
	case 0x73: // ecall: halt
		s.Halted = true
	default:
		return fmt.Errorf("iss: unknown opcode %#x at PC %#x", op, s.PC)
	}
	s.PC = next
	return nil
}

// Run executes until halt or the cycle limit.
func (s *ISS) Run(maxSteps int) error {
	for i := 0; i < maxSteps && !s.Halted; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
