package rv

import (
	"fmt"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// CoreConfig sizes the core's memories.
type CoreConfig struct {
	IMemWords int // instruction memory size in words
	DMemWords int // data memory size in words
}

// DefaultCoreConfig fits the bundled workloads.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{IMemWords: 2048, DMemWords: 2048}
}

// Core describes the elaborated processor: the graph plus the node and
// memory handles a testbench needs.
type Core struct {
	Graph *ir.Graph
	Cfg   CoreConfig

	// Node names (stable across optimization, all marked as outputs).
	PCName      string
	HaltedName  string
	InstretName string

	IMemID int // memory IDs for loading/peeking
	DMemID int
	RFID   int
}

// BuildCore elaborates a single-cycle RV32I subset core into a fresh graph.
// The design is deliberately real hardware: instruction fetch from a ROM,
// full decode, a 32-entry register file (as a two-read one-write memory),
// ALU with all RV32I register/immediate ops, byte-addressable loads/stores
// via read-modify-write, branch/jump resolution, and an ecall halt latch.
// It is the repository's stuCore: the smallest design in Table I.
func BuildCore(program []uint32, cfg CoreConfig) (*Core, error) {
	if len(program) > cfg.IMemWords {
		return nil, fmt.Errorf("rv: program (%d words) exceeds imem (%d words)", len(program), cfg.IMemWords)
	}
	b := ir.NewBuilder("rv32")
	g := b.G

	// Memories.
	imem := b.Mem("imem", cfg.IMemWords, 32)
	imem.Init = map[int]bitvec.BV{}
	for i, w := range program {
		imem.Init[i] = bitvec.FromUint64(32, uint64(w))
	}
	dmem := b.Mem("dmem", cfg.DMemWords, 32)
	rf := b.Mem("rf", 32, 32)

	// Architectural state.
	pc := b.Reg("pc", 32)
	halted := b.Reg("halted", 1)
	instret := b.Reg("instret", 32)

	// Fetch.
	pcR := b.R(pc)
	instrN := b.MemRead("instr", imem, b.Bits(pcR, 31, 2))
	instr := b.R(instrN)

	// Decode fields.
	opcode := b.Comb("opcode", b.Bits(instr, 6, 0))
	rd := b.Comb("rd", b.Bits(instr, 11, 7))
	f3 := b.Comb("f3", b.Bits(instr, 14, 12))
	rs1 := b.Comb("rs1", b.Bits(instr, 19, 15))
	rs2 := b.Comb("rs2", b.Bits(instr, 24, 20))
	f7 := b.Comb("f7", b.Bits(instr, 31, 25))

	isOp := func(name string, v uint64) *ir.Expr {
		return b.R(b.Comb("is_"+name, b.Eq(b.R(opcode), b.C(7, v))))
	}
	isLUI := isOp("lui", 0x37)
	isAUIPC := isOp("auipc", 0x17)
	isJAL := isOp("jal", 0x6f)
	isJALR := isOp("jalr", 0x67)
	isBranch := isOp("branch", 0x63)
	isLoad := isOp("load", 0x03)
	isStore := isOp("store", 0x23)
	isALUI := isOp("alui", 0x13)
	isALUR := isOp("alur", 0x33)
	isEcall := isOp("ecall", 0x73)

	// Immediates.
	sext32 := func(e *ir.Expr) *ir.Expr { return b.SExt(e, 32) }
	immI := b.Comb("immI", sext32(b.Bits(instr, 31, 20)))
	immS := b.Comb("immS", sext32(b.Cat(b.Bits(instr, 31, 25), b.Bits(instr, 11, 7))))
	immB := b.Comb("immB", sext32(b.CatAll(
		b.Bit(instr, 31), b.Bit(instr, 7), b.Bits(instr, 30, 25), b.Bits(instr, 11, 8), b.C(1, 0))))
	immU := b.Comb("immU", b.Cat(b.Bits(instr, 31, 12), b.C(12, 0)))
	immJ := b.Comb("immJ", sext32(b.CatAll(
		b.Bit(instr, 31), b.Bits(instr, 19, 12), b.Bit(instr, 20), b.Bits(instr, 30, 21), b.C(1, 0))))

	// Register file reads (x0 reads zero).
	rs1raw := b.MemRead("rs1raw", rf, b.R(rs1))
	rs2raw := b.MemRead("rs2raw", rf, b.R(rs2))
	rs1v := b.Comb("rs1v", b.Mux(b.Eq(b.R(rs1), b.C(5, 0)), b.C(32, 0), b.R(rs1raw)))
	rs2v := b.Comb("rs2v", b.Mux(b.Eq(b.R(rs2), b.C(5, 0)), b.C(32, 0), b.R(rs2raw)))

	// ALU.
	aluB := b.Comb("aluB", b.Mux(isALUI, b.R(immI), b.R(rs2v)))
	a := b.R(rs1v)
	bb := b.R(aluB)
	shamt := b.Comb("shamt", b.Bits(bb, 4, 0))
	sh := b.R(shamt)
	// Arithmetic right shift: shift the 63-bit sign extension logically.
	sraFull := b.Dshr(b.SExt(a, 63), sh)
	subOrAdd := b.Mux(
		b.And(b.Eq(b.R(f7), b.C(7, 0x20)), isALUR),
		b.SubW(a, bb, 32),
		b.AddW(a, bb, 32))
	aluOut := b.Comb("aluOut", b.Fit(muxTree(b, b.R(f3), []*ir.Expr{
		subOrAdd,                // 0: add/sub
		b.Dshl(a, sh, 32),       // 1: sll
		b.Fit(b.SLt(a, bb), 32), // 2: slt
		b.Fit(b.Lt(a, bb), 32),  // 3: sltu
		b.Xor(a, bb),            // 4: xor
		b.Mux(b.Eq(b.R(f7), b.C(7, 0x20)), b.Fit(sraFull, 32), b.Dshr(a, sh)), // 5: srl/sra
		b.Or(a, bb),  // 6: or
		b.And(a, bb), // 7: and
	}), 32))

	// Branch resolution.
	takenRaw := muxTree(b, b.R(f3), []*ir.Expr{
		b.Eq(a, b.R(rs2v)),         // beq
		b.Neq(a, b.R(rs2v)),        // bne
		b.C(1, 0),                  // (2) unused
		b.C(1, 0),                  // (3) unused
		b.SLt(a, b.R(rs2v)),        // blt
		b.Not(b.SLt(a, b.R(rs2v))), // bge
		b.Lt(a, b.R(rs2v)),         // bltu
		b.Not(b.Lt(a, b.R(rs2v))),  // bgeu
	})
	taken := b.Comb("taken", b.And(isBranch, b.Fit(takenRaw, 1)))

	// Effective addresses.
	loadAddr := b.Comb("loadAddr", b.AddW(a, b.R(immI), 32))
	storeAddr := b.Comb("storeAddr", b.AddW(a, b.R(immS), 32))

	// Data memory: a load read port and a read-modify-write port for byte
	// stores.
	loadWordN := b.MemRead("loadWord", dmem, b.Bits(b.R(loadAddr), 31, 2))
	storeWordN := b.MemRead("storeWord", dmem, b.Bits(b.R(storeAddr), 31, 2))

	loadShift := b.Comb("loadShift", b.Cat(b.Bits(b.R(loadAddr), 1, 0), b.C(3, 0)))     // byte offset * 8
	loadHalfShift := b.Comb("loadHalfShift", b.Cat(b.Bit(b.R(loadAddr), 1), b.C(4, 0))) // half offset * 16
	loadByteRaw := b.Comb("loadByteRaw", b.Fit(b.Dshr(b.R(loadWordN), b.R(loadShift)), 8))
	loadHalfRaw := b.Comb("loadHalfRaw", b.Fit(b.Dshr(b.R(loadWordN), b.R(loadHalfShift)), 16))
	loadData := b.Comb("loadData", b.Fit(muxTree(b, b.R(f3), []*ir.Expr{
		b.SExt(b.R(loadByteRaw), 32), // 0: lb
		b.SExt(b.R(loadHalfRaw), 32), // 1: lh
		b.R(loadWordN),               // 2: lw
		b.C(32, 0),                   // 3
		b.Fit(b.R(loadByteRaw), 32),  // 4: lbu
		b.Fit(b.R(loadHalfRaw), 32),  // 5: lhu
		b.C(32, 0), b.C(32, 0),
	}), 32))

	// Store data: word, or read-modify-write merge for byte/half stores.
	storeShift := b.Comb("storeShift", b.Cat(b.Bits(b.R(storeAddr), 1, 0), b.C(3, 0)))
	storeHalfShift := b.Comb("storeHalfShift", b.Cat(b.Bit(b.R(storeAddr), 1), b.C(4, 0)))
	byteMask := b.Comb("byteMask", b.Fit(b.Dshl(b.C(8, 0xff), b.R(storeShift), 40), 32))
	byteData := b.Comb("byteData", b.Fit(b.Dshl(b.Fit(b.R(rs2v), 8), b.R(storeShift), 40), 32))
	halfMask := b.Comb("halfMask", b.Fit(b.Dshl(b.C(16, 0xffff), b.R(storeHalfShift), 48), 32))
	halfData := b.Comb("halfData", b.Fit(b.Dshl(b.Fit(b.R(rs2v), 16), b.R(storeHalfShift), 48), 32))
	isSB := b.Comb("isSB", b.And(isStore, b.Eq(b.R(f3), b.C(3, 0))))
	isSH := b.Comb("isSH", b.And(isStore, b.Eq(b.R(f3), b.C(3, 1))))
	storeData := b.Comb("storeData",
		b.Mux(b.R(isSB),
			b.Or(b.And(b.R(storeWordN), b.Not(b.R(byteMask))), b.R(byteData)),
			b.Mux(b.R(isSH),
				b.Or(b.And(b.R(storeWordN), b.Not(b.R(halfMask))), b.R(halfData)),
				b.R(rs2v))))

	notHalted := b.Comb("notHalted", b.Not(b.R(halted)))
	b.MemWrite("dmem_w", dmem, b.Bits(b.R(storeAddr), 31, 2), b.R(storeData),
		b.And(isStore, b.R(notHalted)))

	// Register file write-back.
	pcPlus4 := b.Comb("pcPlus4", b.AddW(pcR, b.C(32, 4), 32))
	wbData := b.Comb("wbData",
		b.Mux(isLUI, b.R(immU),
			b.Mux(isAUIPC, b.AddW(pcR, b.R(immU), 32),
				b.Mux(b.Or(isJAL, isJALR), b.R(pcPlus4),
					b.Mux(isLoad, b.R(loadData), b.R(aluOut))))))
	writesRd := b.Comb("writesRd", b.Or(b.Or(isLUI, isAUIPC), b.Or(b.Or(isJAL, isJALR), b.Or(isLoad, b.Or(isALUI, isALUR)))))
	rfWen := b.Comb("rfWen", b.And(b.And(b.R(writesRd), b.Neq(b.R(rd), b.C(5, 0))), b.R(notHalted)))
	b.MemWrite("rf_w", rf, b.R(rd), b.R(wbData), b.R(rfWen))

	// Next PC.
	jalrTarget := b.Comb("jalrTarget", b.And(b.AddW(a, b.R(immI), 32), b.Not(b.C(32, 1))))
	nextPC := b.Comb("nextPC",
		b.Mux(b.R(halted), pcR,
			b.Mux(isJAL, b.AddW(pcR, b.R(immJ), 32),
				b.Mux(isJALR, b.R(jalrTarget),
					b.Mux(b.R(taken), b.AddW(pcR, b.R(immB), 32), b.R(pcPlus4))))))
	b.SetNext(pc, b.R(nextPC))

	// Halt latch and retired-instruction counter.
	b.SetNext(halted, b.Or(b.R(halted), isEcall))
	b.SetNext(instret, b.Mux(b.R(notHalted), b.AddW(b.R(instret), b.C(32, 1), 32), b.R(instret)))

	// Observability.
	b.MarkOutput(pc)
	b.MarkOutput(halted)
	b.MarkOutput(instret)
	b.Output("pc_out", b.R(pc))
	b.Output("halted_out", b.R(halted))

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("rv: core graph invalid: %v", err)
	}
	return &Core{
		Graph: g, Cfg: cfg,
		PCName: "pc", HaltedName: "halted", InstretName: "instret",
		IMemID: imem.ID, DMemID: dmem.ID, RFID: rf.ID,
	}, nil
}

// muxTree builds an 8-way selector over a 3-bit index. Arms are padded to a
// common width.
func muxTree(b *ir.Builder, sel *ir.Expr, arms []*ir.Expr) *ir.Expr {
	if len(arms) != 8 {
		panic("rv: muxTree needs 8 arms")
	}
	w := 0
	for _, a := range arms {
		if a.Width > w {
			w = a.Width
		}
	}
	for i := range arms {
		arms[i] = b.Fit(arms[i], w)
	}
	s0, s1, s2 := b.Bit(sel, 0), b.Bit(sel, 1), b.Bit(sel, 2)
	m01 := b.Mux(s0, arms[1], arms[0])
	m23 := b.Mux(s0, arms[3], arms[2])
	m45 := b.Mux(s0, arms[5], arms[4])
	m67 := b.Mux(s0, arms[7], arms[6])
	lo := b.Mux(s1, m23, m01)
	hi := b.Mux(s1, m67, m45)
	return b.Mux(s2, hi, lo)
}
