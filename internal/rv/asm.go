// Package rv provides the end-to-end correctness anchor for the simulator:
// a small RV32I processor core elaborated in the IR (the repository's
// stand-in for the paper's stuCore), a two-pass assembler for the supported
// instruction subset, a reference instruction-set simulator (ISS), and the
// CoreMark-like / Linux-boot-like workload programs used by the experiments.
//
// The same assembled program runs on the RTL core under every engine and on
// the ISS; architectural state must match instruction for instruction.
package rv

import (
	"fmt"
	"strconv"
	"strings"
)

// Instruction subset: LUI AUIPC JAL JALR BEQ BNE BLT BGE BLTU BGEU LW LH LHU
// LB LBU SW SH SB ADDI SLTI SLTIU XORI ORI ANDI SLLI SRLI SRAI ADD SUB SLL
// SLT SLTU XOR SRL SRA OR AND ECALL, plus pseudo-instructions LI MV J NOP
// BEQZ BNEZ RET CALL.

var regNames = map[string]uint32{}

func init() {
	abi := []string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	for i := 0; i < 32; i++ {
		regNames[fmt.Sprintf("x%d", i)] = uint32(i)
		regNames[abi[i]] = uint32(i)
	}
	regNames["fp"] = 8
}

// Assemble translates assembly text into instruction words. Two passes:
// label collection, then encoding. Supports labels, comments (# and //),
// .word directives, and the pseudo-instructions listed above.
func Assemble(src string) ([]uint32, error) {
	type line struct {
		no   int
		text string
	}
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		s := raw
		if j := strings.Index(s, "#"); j >= 0 {
			s = s[:j]
		}
		if j := strings.Index(s, "//"); j >= 0 {
			s = s[:j]
		}
		s = strings.TrimSpace(s)
		if s != "" {
			lines = append(lines, line{i + 1, s})
		}
	}

	// Pass 1: label addresses. Each line holds at most one label then
	// optionally an instruction.
	labels := map[string]uint32{}
	pc := uint32(0)
	type pending struct {
		no   int
		op   string
		args []string
		pc   uint32
	}
	var prog []pending
	for _, ln := range lines {
		text := ln.text
		for {
			if i := strings.Index(text, ":"); i >= 0 && !strings.ContainsAny(text[:i], " \t") {
				label := strings.TrimSpace(text[:i])
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", ln.no, label)
				}
				labels[label] = pc
				text = strings.TrimSpace(text[i+1:])
				continue
			}
			break
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		op := strings.ToLower(fields[0])
		args := splitArgs(strings.Join(fields[1:], " "))
		prog = append(prog, pending{ln.no, op, args, pc})
		pc += uint32(4 * instrWords(op))
	}

	// Pass 2: encode.
	var out []uint32
	for _, p := range prog {
		words, err := encode(p.op, p.args, p.pc, labels)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", p.no, err)
		}
		out = append(out, words...)
	}
	return out, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// instrWords returns how many 32-bit words an op expands to.
func instrWords(op string) int {
	switch op {
	case "li", "call":
		return 2 // worst case lui+addi / auipc+jalr; always two for stable layout
	}
	return 1
}

func reg(s string) (uint32, error) {
	if r, ok := regNames[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func imm(s string, labels map[string]uint32) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := labels[s]; ok {
		return int64(v), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	}
	v, err := strconv.ParseInt(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// memOperand parses "imm(reg)".
func memOperand(s string, labels map[string]uint32) (int64, uint32, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if t := strings.TrimSpace(s[:open]); t != "" {
		v, err := imm(t, labels)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := reg(strings.TrimSpace(s[open+1 : close]))
	return off, r, err
}

// --- encoders ---

func encR(f7, rs2, rs1, f3, rd, op uint32) uint32 {
	return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encI(immv int64, rs1, f3, rd, op uint32) (uint32, error) {
	if immv < -2048 || immv > 2047 {
		return 0, fmt.Errorf("I-immediate %d out of range", immv)
	}
	return uint32(immv)&0xfff<<20 | rs1<<15 | f3<<12 | rd<<7 | op, nil
}

func encS(immv int64, rs2, rs1, f3, op uint32) (uint32, error) {
	if immv < -2048 || immv > 2047 {
		return 0, fmt.Errorf("S-immediate %d out of range", immv)
	}
	u := uint32(immv) & 0xfff
	return (u>>5)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u&0x1f)<<7 | op, nil
}

func encB(off int64, rs2, rs1, f3 uint32) (uint32, error) {
	if off%2 != 0 || off < -4096 || off > 4094 {
		return 0, fmt.Errorf("branch offset %d invalid", off)
	}
	u := uint32(off)
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 | f3<<12 |
		(u>>1&0xf)<<8 | (u>>11&1)<<7 | 0x63, nil
}

func encU(immv int64, rd, op uint32) uint32 {
	return uint32(immv)&0xfffff<<12 | rd<<7 | op
}

func encJ(off int64, rd uint32) (uint32, error) {
	if off%2 != 0 || off < -(1<<20) || off >= 1<<20 {
		return 0, fmt.Errorf("jump offset %d invalid", off)
	}
	u := uint32(off)
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12 | rd<<7 | 0x6f, nil
}

var rOps = map[string][2]uint32{ // funct3, funct7
	"add": {0, 0x00}, "sub": {0, 0x20}, "sll": {1, 0x00}, "slt": {2, 0x00},
	"sltu": {3, 0x00}, "xor": {4, 0x00}, "srl": {5, 0x00}, "sra": {5, 0x20},
	"or": {6, 0x00}, "and": {7, 0x00},
}

var iOps = map[string]uint32{ // funct3
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var branchOps = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

func encode(op string, args []string, pc uint32, labels map[string]uint32) ([]uint32, error) {
	one := func(w uint32, err error) ([]uint32, error) {
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	switch {
	case op == ".word":
		var out []uint32
		for _, a := range args {
			v, err := imm(a, labels)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(v))
		}
		return out, nil

	case rOps[op] != [2]uint32{} || op == "add":
		if f, ok := rOps[op]; ok {
			if len(args) != 3 {
				return nil, fmt.Errorf("%s needs 3 operands", op)
			}
			rd, e1 := reg(args[0])
			rs1, e2 := reg(args[1])
			rs2, e3 := reg(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			return []uint32{encR(f[1], rs2, rs1, f[0], rd, 0x33)}, nil
		}
	}
	switch op {
	case "addi", "slti", "sltiu", "xori", "ori", "andi":
		if len(args) != 3 {
			return nil, fmt.Errorf("%s needs 3 operands", op)
		}
		rd, e1 := reg(args[0])
		rs1, e2 := reg(args[1])
		v, e3 := imm(args[2], labels)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return one(encI(v, rs1, iOps[op], rd, 0x13))

	case "slli", "srli", "srai":
		rd, e1 := reg(args[0])
		rs1, e2 := reg(args[1])
		v, e3 := imm(args[2], labels)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		if v < 0 || v > 31 {
			return nil, fmt.Errorf("shift amount %d out of range", v)
		}
		f3 := uint32(1)
		hi := uint32(0)
		if op != "slli" {
			f3 = 5
			if op == "srai" {
				hi = 0x20
			}
		}
		return []uint32{encR(hi, uint32(v), rs1, f3, rd, 0x13)}, nil

	case "lui", "auipc":
		rd, e1 := reg(args[0])
		v, e2 := imm(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		opc := uint32(0x37)
		if op == "auipc" {
			opc = 0x17
		}
		return []uint32{encU(v, rd, opc)}, nil

	case "jal":
		if len(args) == 1 { // jal label  (rd = ra)
			args = []string{"ra", args[0]}
		}
		rd, e1 := reg(args[0])
		target, e2 := imm(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return one(encJ(target-int64(pc), rd))

	case "jalr":
		if len(args) == 1 { // jalr rs1
			args = []string{"ra", "0(" + args[0] + ")"}
		}
		rd, e1 := reg(args[0])
		off, rs1, e2 := memOperand(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return one(encI(off, rs1, 0, rd, 0x67))

	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		rs1, e1 := reg(args[0])
		rs2, e2 := reg(args[1])
		target, e3 := imm(args[2], labels)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return one(encB(target-int64(pc), rs2, rs1, branchOps[op]))

	case "lw", "lb", "lbu", "lh", "lhu":
		rd, e1 := reg(args[0])
		off, rs1, e2 := memOperand(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		f3 := map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}[op]
		return one(encI(off, rs1, f3, rd, 0x03))

	case "sw", "sb", "sh":
		rs2, e1 := reg(args[0])
		off, rs1, e2 := memOperand(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		f3 := map[string]uint32{"sb": 0, "sh": 1, "sw": 2}[op]
		return one(encS(off, rs2, rs1, f3, 0x23))

	case "ecall":
		return []uint32{0x73}, nil

	// --- pseudo-instructions ---
	case "nop":
		return []uint32{0x13}, nil // addi x0, x0, 0
	case "mv":
		rd, e1 := reg(args[0])
		rs, e2 := reg(args[1])
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		w, err := encI(0, rs, 0, rd, 0x13)
		return one(w, err)
	case "li":
		rd, e1 := reg(args[0])
		v, e2 := imm(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		// Always two words (lui+addi) so label layout is stable.
		lo := v & 0xfff
		if lo >= 0x800 {
			lo -= 0x1000
		}
		hi := (v - lo) >> 12
		w2, err := encI(lo, rd, 0, rd, 0x13)
		if err != nil {
			return nil, err
		}
		return []uint32{encU(hi, rd, 0x37), w2}, nil
	case "j":
		target, err := imm(args[0], labels)
		if err != nil {
			return nil, err
		}
		return one(encJ(target-int64(pc), 0))
	case "beqz":
		rs, e1 := reg(args[0])
		target, e2 := imm(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return one(encB(target-int64(pc), 0, rs, 0))
	case "bnez":
		rs, e1 := reg(args[0])
		target, e2 := imm(args[1], labels)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return one(encB(target-int64(pc), 0, rs, 1))
	case "ret":
		w, err := encI(0, 1, 0, 0, 0x67)
		return one(w, err)
	case "call":
		target, err := imm(args[0], labels)
		if err != nil {
			return nil, err
		}
		// Two words: jal ra, target preceded by a nop to keep the fixed
		// two-word expansion.
		w, err := encJ(target-int64(pc)-4, 1)
		if err != nil {
			return nil, err
		}
		return []uint32{0x13, w}, nil
	}
	return nil, fmt.Errorf("unknown instruction %q", op)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
