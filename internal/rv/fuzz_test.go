package rv

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gsim/internal/core"
)

// randomProgram generates a straight-line RV32I program of random ALU,
// memory, and (forward-only) branch instructions, ending in ecall. Forward
// branches to numbered labels keep it guaranteed to terminate.
func randomProgram(rng *rand.Rand, n int) string {
	var sb strings.Builder
	regs := []string{"t0", "t1", "t2", "t3", "t4", "s1", "a1", "a2"} // s0 stays the stable memory base
	r := func() string { return regs[rng.Intn(len(regs))] }
	// Seed registers and a valid memory base.
	sb.WriteString("  li t0, 0x1a2b\n  li t1, 0x3c4d\n  li t2, 7\n  li s0, 0x400\n  li s1, 99\n")
	label := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			fmt.Fprintf(&sb, "  add %s, %s, %s\n", r(), r(), r())
		case 1:
			fmt.Fprintf(&sb, "  sub %s, %s, %s\n", r(), r(), r())
		case 2:
			fmt.Fprintf(&sb, "  xor %s, %s, %s\n", r(), r(), r())
		case 3:
			fmt.Fprintf(&sb, "  and %s, %s, %s\n", r(), r(), r())
		case 4:
			fmt.Fprintf(&sb, "  addi %s, %s, %d\n", r(), r(), rng.Intn(4000)-2000)
		case 5:
			fmt.Fprintf(&sb, "  slli %s, %s, %d\n", r(), r(), rng.Intn(32))
		case 6:
			fmt.Fprintf(&sb, "  srai %s, %s, %d\n", r(), r(), rng.Intn(32))
		case 7:
			fmt.Fprintf(&sb, "  slt %s, %s, %s\n", r(), r(), r())
		case 8:
			fmt.Fprintf(&sb, "  sltu %s, %s, %s\n", r(), r(), r())
		case 9:
			// Word store + load through the safe base register.
			off := 4 * rng.Intn(16)
			fmt.Fprintf(&sb, "  sw %s, %d(s0)\n", r(), off)
			fmt.Fprintf(&sb, "  lw %s, %d(s0)\n", r(), off)
		case 10:
			if rng.Intn(2) == 0 {
				off := rng.Intn(32)
				fmt.Fprintf(&sb, "  sb %s, %d(s0)\n", r(), off)
				fmt.Fprintf(&sb, "  lbu %s, %d(s0)\n", r(), off)
				fmt.Fprintf(&sb, "  lb %s, %d(s0)\n", r(), off)
			} else {
				off := 2 * rng.Intn(16)
				fmt.Fprintf(&sb, "  sh %s, %d(s0)\n", r(), off)
				fmt.Fprintf(&sb, "  lhu %s, %d(s0)\n", r(), off)
				fmt.Fprintf(&sb, "  lh %s, %d(s0)\n", r(), off)
			}
		default:
			// Forward branch over a couple of instructions.
			fmt.Fprintf(&sb, "  b%s %s, %s, L%d\n",
				[]string{"eq", "ne", "lt", "ge", "ltu", "geu"}[rng.Intn(6)], r(), r(), label)
			fmt.Fprintf(&sb, "  addi %s, %s, 1\n", r(), r())
			fmt.Fprintf(&sb, "L%d:\n", label)
			label++
		}
	}
	// Fold everything into a0 so divergence anywhere shows in the result.
	sb.WriteString("  add a0, t0, t1\n  add a0, a0, t2\n  add a0, a0, s1\n  ecall\n")
	return sb.String()
}

// TestRandomProgramsMatchISS is the instruction-level fuzz test: random
// programs must produce identical architectural results on the RTL core
// (under GSIM and Verilator configs) and the ISS.
func TestRandomProgramsMatchISS(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng, 60)
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		iss := NewISS(prog, DefaultCoreConfig().DMemWords)
		if err := iss.Run(100000); err != nil {
			t.Fatalf("seed %d: iss: %v", seed, err)
		}
		if !iss.Halted {
			t.Fatalf("seed %d: iss did not halt", seed)
		}
		for _, cfg := range []core.Config{core.Verilator(), core.GSIM()} {
			a0, ret := runOnCore(t, prog, cfg, int(iss.Count)+16)
			if a0 != iss.Regs[10] {
				t.Fatalf("seed %d %s: a0=%#x, iss=%#x\n%s", seed, cfg.Name, a0, iss.Regs[10], src)
			}
			if uint64(ret) != iss.Count {
				t.Fatalf("seed %d %s: instret=%d, iss=%d", seed, cfg.Name, ret, iss.Count)
			}
		}
	}
}

// TestPseudoInstructions verifies the assembler's pseudo-instruction
// expansions through execution.
func TestPseudoInstructions(t *testing.T) {
	prog, err := Assemble(`
  li   t0, 0x12345678     # lui+addi with carry adjustment
  li   t1, -5             # negative immediate
  mv   a1, t0
  call func
  j    end
func:
  addi a2, a1, 1
  ret
end:
  beqz zero, fin
  nop
fin:
  add  a0, a2, t1
  ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	iss := NewISS(prog, 64)
	if err := iss.Run(1000); err != nil {
		t.Fatal(err)
	}
	want := uint32(0x12345678) + 1 - 5
	if iss.Regs[10] != want {
		t.Fatalf("a0 = %#x, want %#x", iss.Regs[10], want)
	}
	// And on the RTL core.
	a0, _ := runOnCore(t, prog, core.GSIM(), 200)
	if a0 != want {
		t.Fatalf("core a0 = %#x, want %#x", a0, want)
	}
}
