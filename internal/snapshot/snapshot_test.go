package snapshot_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/firrtl"
	"gsim/internal/gen"
	"gsim/internal/harness"
	"gsim/internal/ir"
	"gsim/internal/snapshot"
	"gsim/internal/trace"
)

// loadDesign elaborates one committed testdata design.
func loadDesign(t testing.TB, name string) *ir.Graph {
	t.Helper()
	g, err := firrtl.LoadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stim returns a deterministic, stateless input value for (cycle, input):
// every run of the same design replays the identical stimulus regardless of
// how it is segmented around a snapshot.
func stim(width int, cycle, idx int) bitvec.BV {
	v := uint64(cycle+1)*2654435761 ^ uint64(idx)*0x9e3779b97f4a7c15
	return bitvec.FromUint64(width, v)
}

// inputsOf collects a graph's input nodes in ID order, treating "reset"
// specially is the driver's business (stim keeps reset mostly deasserted by
// masking to 1 bit naturally; dedicated reset toggles come from the cycle
// pattern below).
func inputsOf(g *ir.Graph) []*ir.Node {
	var ins []*ir.Node
	for _, n := range g.Nodes {
		if n.Kind == ir.KindInput {
			ins = append(ins, n)
		}
	}
	return ins
}

// drive pokes every input for one cycle. Reset-named inputs pulse on a fixed
// sparse pattern so the reset slow path is exercised on both sides of the
// snapshot boundary.
func drive(sim engine.Sim, ins []*ir.Node, cycle int) {
	for i, n := range ins {
		if n.Name == "reset" {
			v := uint64(0)
			if cycle%11 == 7 {
				v = 1
			}
			sim.Poke(n.ID, bitvec.FromUint64(1, v))
			continue
		}
		sim.Poke(n.ID, stim(n.Width, cycle, i))
	}
}

// matrixConfigs enumerates the acceptance matrix: 4 engines x 3 eval modes x
// {1,2,4} threads x {coarsen off,on}. Thread count and coarsening are inert
// for the serial engines and thread count shapes the parallel ones; every
// cell still runs, pinning that the inert axes really are inert.
func matrixConfigs() []core.Config {
	var cfgs []core.Config
	for _, kind := range []core.EngineKind{core.EngineFullCycle, core.EngineParallel, core.EngineActivity, core.EngineParallelActivity} {
		for _, eval := range []engine.EvalMode{engine.EvalKernel, engine.EvalInterp, engine.EvalKernelNoFuse} {
			for _, threads := range []int{1, 2, 4} {
				for _, coarsen := range []bool{false, true} {
					var cfg core.Config
					switch kind {
					case core.EngineFullCycle:
						cfg = core.Verilator()
					case core.EngineParallel:
						cfg = core.VerilatorMT(threads)
					case core.EngineActivity:
						cfg = core.GSIM()
					case core.EngineParallelActivity:
						cfg = core.GSIMMT(threads)
					}
					cfg.Eval = eval
					cfg.Activity.Coarsen = coarsen
					cfg.Name = fmt.Sprintf("%s-%s-%dT-co%v", kind, eval, threads, coarsen)
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	return cfgs
}

// runTraced builds a simulator, optionally restores a snapshot into it,
// drives cycles [from, to) with the shared stimulus, captures the VCD bytes
// produced, and returns the system still open.
func runTraced(t *testing.T, g *ir.Graph, cfg core.Config, blob []byte, from, to int, vcd *bytes.Buffer) *core.System {
	t.Helper()
	sys, err := core.Build(g, cfg)
	if err != nil {
		t.Fatalf("%s: build: %v", cfg.Name, err)
	}
	opts := trace.Options{}
	if blob != nil {
		if err := snapshot.Restore(sys.Sim, blob); err != nil {
			t.Fatalf("%s: restore: %v", cfg.Name, err)
		}
		opts.Resume = &trace.Resume{Time: sys.Sim.Stats().Cycles, State: sys.Sim.Machine().State}
	}
	tr, err := trace.NewVCD(vcd, sys.Prog, nil, opts)
	if err != nil {
		t.Fatalf("%s: vcd: %v", cfg.Name, err)
	}
	sys.Sim.(interface{ AttachTracer(engine.Tracer) }).AttachTracer(tr)
	ins := inputsOf(sys.Graph)
	for c := from; c < to; c++ {
		drive(sys.Sim, ins, c)
		sys.Sim.Step()
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("%s: vcd close: %v", cfg.Name, err)
	}
	return sys
}

// TestRoundTripMatrix is the snapshot determinism acceptance test: for every
// engine x eval mode x thread count x coarsen cell, a run of K cycles,
// snapshot, restore into a fresh engine, then M more cycles must be
// bit-identical — final state image, memory arrays, stat counters, and VCD
// bytes — to an uninterrupted K+M-cycle run.
func TestRoundTripMatrix(t *testing.T) {
	const K, M = 16, 16
	for _, designName := range []string{"fifo.fir", "lfsr.fir"} {
		g := loadDesign(t, designName)
		for _, cfg := range matrixConfigs() {
			cfg := cfg
			t.Run(designName+"/"+cfg.Name, func(t *testing.T) {
				// Uninterrupted K+M-cycle run.
				var goldVCD bytes.Buffer
				gold := runTraced(t, g, cfg, nil, 0, K+M, &goldVCD)
				defer gold.Close()

				// Segment 1: K cycles, then snapshot.
				var vcd1 bytes.Buffer
				seg1 := runTraced(t, g, cfg, nil, 0, K, &vcd1)
				blob, err := snapshot.Save(seg1.Sim)
				if err != nil {
					t.Fatal(err)
				}
				seg1.Close()

				// Segment 2: fresh build, restore, M more cycles.
				var vcd2 bytes.Buffer
				seg2 := runTraced(t, g, cfg, blob, K, K+M, &vcd2)
				defer seg2.Close()

				a, b := gold.Sim.Machine(), seg2.Sim.Machine()
				for w := range a.State {
					if a.State[w] != b.State[w] {
						t.Fatalf("state word %d: uninterrupted %#x vs resumed %#x", w, a.State[w], b.State[w])
					}
				}
				for mi := range a.Mems {
					for w := range a.Mems[mi] {
						if a.Mems[mi][w] != b.Mems[mi][w] {
							t.Fatalf("mem %d word %d: uninterrupted %#x vs resumed %#x", mi, w, a.Mems[mi][w], b.Mems[mi][w])
						}
					}
				}
				if ga, gb := *gold.Sim.Stats(), *seg2.Sim.Stats(); ga != gb {
					t.Fatalf("stats diverge:\nuninterrupted %+v\nresumed       %+v", ga, gb)
				}
				if a.Executed != b.Executed {
					t.Fatalf("Machine.Executed: uninterrupted %d vs resumed %d", a.Executed, b.Executed)
				}
				resumed := append(append([]byte{}, vcd1.Bytes()...), vcd2.Bytes()...)
				if !bytes.Equal(goldVCD.Bytes(), resumed) {
					t.Fatalf("VCD bytes diverge: uninterrupted %d bytes, resumed %d bytes", goldVCD.Len(), len(resumed))
				}
			})
		}
	}
}

// TestCrossEngineRestore pins snapshot portability inside one compiled
// design: a checkpoint taken by the serial Activity engine restores into
// ParallelActivity at several thread counts (and back), and the continued
// runs match the uninterrupted serial trajectory exactly — the activity
// section travels in partition space, not engine-word space.
func TestCrossEngineRestore(t *testing.T) {
	const K, M = 16, 16
	g := loadDesign(t, "fifo.fir")

	gold, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	ins := inputsOf(gold.Graph)
	for c := 0; c < K+M; c++ {
		drive(gold.Sim, ins, c)
		gold.Sim.Step()
	}

	src, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for c := 0; c < K; c++ {
		drive(src.Sim, ins, c)
		src.Sim.Step()
	}
	blob, err := snapshot.Save(src.Sim)
	if err != nil {
		t.Fatal(err)
	}

	for _, threads := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("activity-to-%dT", threads), func(t *testing.T) {
			cfg := core.GSIMMT(threads)
			dst, err := core.Build(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Close()
			if err := snapshot.Restore(dst.Sim, blob); err != nil {
				t.Fatal(err)
			}
			dins := inputsOf(dst.Graph)
			for c := K; c < K+M; c++ {
				drive(dst.Sim, dins, c)
				dst.Sim.Step()
			}
			ga, gb := gold.Sim.Machine().State, dst.Sim.Machine().State
			for w := range ga {
				if ga[w] != gb[w] {
					t.Fatalf("state word %d: serial %#x vs %dT %#x", w, ga[w], threads, gb[w])
				}
			}
		})
	}
}

// TestRestoreIntoUsedEngine pins that restoring does not depend on engine
// freshness: an engine that already simulated a different trajectory restores
// to exactly the same continuation as a fresh one.
func TestRestoreIntoUsedEngine(t *testing.T) {
	const K, M = 12, 12
	g := loadDesign(t, "fifo.fir")
	src, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ins := inputsOf(src.Graph)
	for c := 0; c < K; c++ {
		drive(src.Sim, ins, c)
		src.Sim.Step()
	}
	blob, err := snapshot.Save(src.Sim)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	used, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer used.Close()
	// Pollute the "used" engine with an unrelated trajectory first.
	uins := inputsOf(used.Graph)
	for c := 0; c < 7; c++ {
		drive(used.Sim, uins, c+1000)
		used.Sim.Step()
	}

	for _, sys := range []*core.System{fresh, used} {
		if err := snapshot.Restore(sys.Sim, blob); err != nil {
			t.Fatal(err)
		}
	}
	fins := inputsOf(fresh.Graph)
	for c := K; c < K+M; c++ {
		drive(fresh.Sim, fins, c)
		drive(used.Sim, uins, c)
		fresh.Sim.Step()
		used.Sim.Step()
	}
	fa, fb := fresh.Sim.Machine().State, used.Sim.Machine().State
	for w := range fa {
		if fa[w] != fb[w] {
			t.Fatalf("state word %d: fresh-restore %#x vs used-restore %#x", w, fa[w], fb[w])
		}
	}
	if sa, sb := *fresh.Sim.Stats(), *used.Sim.Stats(); sa != sb {
		t.Fatalf("stats diverge:\nfresh %+v\nused  %+v", sa, sb)
	}
}

// TestResetIsPowerOn pins the session-pooling contract: Reset on a used
// engine captures bit-identically to a never-stepped engine of the same
// build, for every engine kind.
func TestResetIsPowerOn(t *testing.T) {
	g := loadDesign(t, "fifo.fir")
	for _, cfg := range []core.Config{core.Verilator(), core.VerilatorMT(2), core.GSIM(), core.GSIMMT(2)} {
		t.Run(cfg.Name, func(t *testing.T) {
			fresh, err := core.Build(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			used, err := core.Build(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer used.Close()
			ins := inputsOf(used.Graph)
			for c := 0; c < 20; c++ {
				drive(used.Sim, ins, c)
				used.Sim.Step()
			}
			used.Sim.Reset()

			fs, us := fresh.Sim.(engine.Snapshotter).CaptureState(), used.Sim.(engine.Snapshotter).CaptureState()
			fb, err := snapshot.Encode(fs, fresh.Prog)
			if err != nil {
				t.Fatal(err)
			}
			ub, err := snapshot.Encode(us, used.Prog)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fb, ub) {
				t.Fatalf("Reset is not power-on: fresh capture %d bytes != reset capture %d bytes\nfresh %+v\nreset %+v",
					len(fb), len(ub), fs.Stats, us.Stats)
			}
			// Close composes with Reset in any order, repeatedly.
			used.Sim.Close()
			used.Sim.Reset()
			used.Sim.Close()
		})
	}
}

// TestRestoreValidation exercises every refusal path: wrong design, wrong
// partition shape, corrupt and truncated blobs, bad version.
func TestRestoreValidation(t *testing.T) {
	g := loadDesign(t, "fifo.fir")
	sys, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	blob, err := snapshot.Save(sys.Sim)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-design", func(t *testing.T) {
		other, err := core.Build(loadDesign(t, "counter.fir"), core.GSIM())
		if err != nil {
			t.Fatal(err)
		}
		defer other.Close()
		if err := snapshot.Restore(other.Sim, blob); err == nil {
			t.Fatal("restore onto a different design succeeded")
		}
	})
	t.Run("wrong-opt-level", func(t *testing.T) {
		other, err := core.Build(g, core.Essent()) // different passes => different program
		if err != nil {
			t.Fatal(err)
		}
		defer other.Close()
		if err := snapshot.Restore(other.Sim, blob); err == nil {
			t.Fatal("restore onto a different optimization level succeeded")
		}
	})
	t.Run("wrong-partition", func(t *testing.T) {
		cfg := core.GSIM()
		cfg.MaxSupernode = 64 // same program, different supernode shape
		other, err := core.Build(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer other.Close()
		if other.Prog.DesignHash() != sys.Prog.DesignHash() {
			t.Skip("partition cap changed the program; cell not applicable")
		}
		if err := snapshot.Restore(other.Sim, blob); err == nil {
			t.Fatal("restore onto a different partition shape succeeded")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, 43, len(blob) / 2, len(blob) - 1} {
			if err := snapshot.Restore(sys.Sim, blob[:n]); err == nil {
				t.Fatalf("restore of %d-byte prefix succeeded", n)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte{}, blob...)
		bad[0] ^= 0xff
		if err := snapshot.Restore(sys.Sim, bad); err == nil {
			t.Fatal("restore with corrupt magic succeeded")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte{}, blob...)
		bad[8] = 0xfe
		if err := snapshot.Restore(sys.Sim, bad); err == nil {
			t.Fatal("restore with unknown version succeeded")
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte{}, blob...), 0xaa)
		if err := snapshot.Restore(sys.Sim, bad); err == nil {
			t.Fatal("restore with trailing bytes succeeded")
		}
	})
}

// TestEncodeDeterminism pins that the same state always serializes to the
// same bytes (the service dedupes and content-addresses snapshots on this).
func TestEncodeDeterminism(t *testing.T) {
	g := loadDesign(t, "lfsr.fir")
	sys, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ins := inputsOf(sys.Graph)
	for c := 0; c < 9; c++ {
		drive(sys.Sim, ins, c)
		sys.Sim.Step()
	}
	a, err := snapshot.Save(sys.Sim)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshot.Save(sys.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same state differ")
	}
	h, err := snapshot.ReadHeader(a)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cycles != 9 {
		t.Fatalf("header cycles = %d, want 9", h.Cycles)
	}
	if h.DesignHash != sys.Prog.DesignHash() {
		t.Fatal("header design hash does not match program")
	}
}

// TestCLISnapshotFormat pins the on-disk artifact: what cmd/gsim -save wrote
// in the smoke example stays readable (guards accidental format drift without
// a version bump). Generated and checked in-process to avoid committing
// binary fixtures.
func TestCLISnapshotFormat(t *testing.T) {
	g := loadDesign(t, "counter.fir")
	sys, err := core.Build(g, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	blob, err := snapshot.Save(sys.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != snapshot.Magic {
		t.Fatalf("blob does not start with magic: %q", blob[:8])
	}
	f, err := os.CreateTemp(t.TempDir(), "*.snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(blob); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Restore(sys.Sim, data); err != nil {
		t.Fatal(err)
	}
}

// TestDesignHashDeterminism pins build determinism on a design large enough
// for every optimization pass to fire with cost ties: rebuilding the same
// graph must reproduce the identical program hash, or snapshots could not
// travel between builds (this caught extraction ordering leaking
// map-iteration order into node numbering).
func TestDesignHashDeterminism(t *testing.T) {
	d := harness.Synthetic(gen.StuCoreLike())
	g, _, err := d.Build(harness.WorkloadCoreMark)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for i := 0; i < 3; i++ {
		sys, err := core.Build(g, core.GSIM())
		if err != nil {
			t.Fatal(err)
		}
		got := sys.Prog.DesignHashString()
		sys.Close()
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("rebuild %d produced hash %s, first build %s", i, got, want)
		}
	}
	// Regenerating the design from its profile must also agree: snapshots
	// of synthetic designs travel across processes this way.
	g2, _, err := d.Build(harness.WorkloadCoreMark)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(g2, core.GSIM())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Prog.DesignHashString(); got != want {
		t.Fatalf("regenerated design hashed %s, want %s", got, want)
	}
}
