package snapshot

import "gsim/internal/obs"

// StoreMetrics is the snapshot-store observability bundle: blob traffic,
// eviction pressure, and residency (total and pinned bytes). Attach to a
// Store with SetObs.
type StoreMetrics struct {
	Puts      *obs.Counter
	Gets      *obs.Counter
	Evictions *obs.Counter
	// ResidentBytes / PinnedBytes / Blobs mirror the store's occupancy on
	// every mutation; pinned bytes are the portion eviction cannot reclaim
	// (live migration handoffs).
	ResidentBytes *obs.Gauge
	PinnedBytes   *obs.Gauge
	Blobs         *obs.Gauge
}

// NewStoreMetrics registers the snapshot-store metric family in r
// (idempotent).
func NewStoreMetrics(r *obs.Registry) *StoreMetrics {
	return &StoreMetrics{
		Puts:          r.Counter("gsim_snapshot_store_puts_total", "Blob store puts (including deduplicated re-puts)."),
		Gets:          r.Counter("gsim_snapshot_store_gets_total", "Blob store reads."),
		Evictions:     r.Counter("gsim_snapshot_store_evictions_total", "Blobs evicted under the byte budget."),
		ResidentBytes: r.Gauge("gsim_snapshot_store_resident_bytes", "Bytes of resident snapshot blobs."),
		PinnedBytes:   r.Gauge("gsim_snapshot_store_pinned_bytes", "Bytes of pinned (eviction-exempt) snapshot blobs."),
		Blobs:         r.Gauge("gsim_snapshot_store_blobs", "Resident snapshot blobs."),
	}
}

// SetObs attaches the metrics bundle; the occupancy gauges snap to the
// current state and track every subsequent mutation.
func (s *Store) SetObs(m *StoreMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	s.syncGaugesLocked()
}

// syncGaugesLocked mirrors occupancy into the gauges. Caller holds s.mu.
func (s *Store) syncGaugesLocked() {
	if s.m == nil {
		return
	}
	s.m.ResidentBytes.Set(float64(s.used))
	s.m.PinnedBytes.Set(float64(s.pinned))
	s.m.Blobs.Set(float64(len(s.blobs)))
}
