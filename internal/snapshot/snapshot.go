// Package snapshot serializes complete simulator state — the durable half of
// the simulation-as-a-service split. A compiled design (emit.Program) is an
// immutable artifact; everything that changes as a simulation runs fits in an
// engine.SimState (machine image, memories, counters, activity arming). This
// package turns that state into a versioned, deterministic byte blob and
// back, so a run can stop, persist, move between processes (or engines, or
// thread counts), and resume bit-identically — final state image, stat
// counters, and waveform bytes all match an uninterrupted run.
//
// Format (all integers little-endian):
//
//	magic      [8]byte  "GSIMSNAP"
//	version    u32      format version (currently 1)
//	designHash [32]byte emit.Program.DesignHash of the build that captured it
//	cycles     u64      Stats.Cycles at capture (redundant with the stats
//	                    section; lets tools report resume points header-only)
//	state      u64 n, then n x u64        machine state image
//	mems       u64 k, then k x (u64 n, n x u64)
//	executed   u64                        Machine.Executed
//	stats      8 x u64                    the engine.Stats block
//	supCount   u64                        capturing partition size (0 = none)
//	active     u64 n, then n x u32        armed supernode indices, ascending
//	pending    u64 n, then n x u32        uncommitted register node IDs
//
// Compatibility rule: Restore requires the snapshot's design hash to equal
// the target Program's. The hash covers the instruction stream, storage
// layout, initial image, and memory specs — everything that gives state-image
// words their meaning — so equal hashes make images interchangeable even
// across engines, eval modes, and thread counts (the activity section is
// stored in partition space, not engine-word space, for the same reason).
// Unequal hashes (different design, different optimization level) refuse to
// restore instead of corrupting silently. The version field gates format
// evolution: readers reject versions they do not understand.
package snapshot

import (
	"encoding/binary"
	"fmt"

	"gsim/internal/emit"
	"gsim/internal/engine"
	"gsim/internal/faultpoint"
)

// Magic identifies a gsim snapshot blob.
const Magic = "GSIMSNAP"

// Version is the current format version.
const Version = 1

const headerBytes = 8 + 4 + 32 + 8

// Header is the fixed-size snapshot prefix.
type Header struct {
	Version    uint32
	DesignHash [32]byte
	Cycles     uint64
}

// ErrNotSnapshotter marks engines without state enumeration (none in-tree).
var ErrNotSnapshotter = fmt.Errorf("snapshot: engine does not implement engine.Snapshotter")

// Save captures sim's complete state and serializes it. Call between Steps
// only. The sim must expose a compiled program (engine.Reference does not).
func Save(sim engine.Sim) ([]byte, error) {
	sn, ok := sim.(engine.Snapshotter)
	if !ok {
		return nil, ErrNotSnapshotter
	}
	m := sim.Machine()
	if m == nil {
		return nil, fmt.Errorf("snapshot: engine has no compiled program")
	}
	data, err := Encode(sn.CaptureState(), m.Prog)
	if err != nil {
		return nil, err
	}
	if faultpoint.Hit(faultpoint.SnapshotCorrupt) {
		// Model a corrupted blob (torn write, bit rot in transit). Smashing
		// the magic and the design hash guarantees every reader detects it —
		// a corrupt snapshot must be an error on restore, never silent state.
		data[0] ^= 0xff
		data[12] ^= 0xff
	}
	return data, nil
}

// Restore deserializes data and overwrites sim's state with it, after
// validating the format version and the design-hash compatibility rule
// against sim's own compiled program. Call between Steps only.
func Restore(sim engine.Sim, data []byte) error {
	sn, ok := sim.(engine.Snapshotter)
	if !ok {
		return ErrNotSnapshotter
	}
	m := sim.Machine()
	if m == nil {
		return fmt.Errorf("snapshot: engine has no compiled program")
	}
	st, err := Decode(data, m.Prog)
	if err != nil {
		return err
	}
	return sn.RestoreState(st)
}

// SaveLane captures one lane of a gang and serializes it in the standard
// scalar format: the blob is byte-identical to Save of a scalar FullCycle
// engine that ran the same stimulus, and restores into either shape.
func SaveLane(g *engine.Gang, lane int) ([]byte, error) {
	st, err := g.CaptureLane(lane)
	if err != nil {
		return nil, err
	}
	data, err := Encode(st, g.Program())
	if err != nil {
		return nil, err
	}
	if faultpoint.Hit(faultpoint.SnapshotCorrupt) {
		data[0] ^= 0xff
		data[12] ^= 0xff
	}
	return data, nil
}

// RestoreLane deserializes data into one lane of a gang, after the same
// version and design-hash validation Restore applies. The other lanes are
// untouched; a blob that fails validation leaves the lane untouched too.
func RestoreLane(g *engine.Gang, lane int, data []byte) error {
	st, err := Decode(data, g.Program())
	if err != nil {
		return err
	}
	return g.RestoreLane(lane, st)
}

// Encode serializes a captured state for the given program. The output is
// deterministic: the same state and program always produce the same bytes.
func Encode(st *engine.SimState, p *emit.Program) ([]byte, error) {
	size := headerBytes
	size += 8 + 8*len(st.State)
	size += 8
	for _, mem := range st.Mems {
		size += 8 + 8*len(mem)
	}
	size += 8     // executed
	size += 8 * 8 // stats
	size += 8     // supCount
	size += 8 + 4*len(st.ActiveSups)
	size += 8 + 4*len(st.PendingRegs)

	buf := make([]byte, size)
	w := writer{buf: buf}
	w.bytes([]byte(Magic))
	w.u32(Version)
	hash := p.DesignHash()
	w.bytes(hash[:])
	w.u64(st.Stats.Cycles)
	w.words(st.State)
	w.u64(uint64(len(st.Mems)))
	for _, mem := range st.Mems {
		w.words(mem)
	}
	w.u64(st.Executed)
	w.stats(&st.Stats)
	w.u64(uint64(st.SupCount))
	w.i32s(st.ActiveSups)
	w.i32s(st.PendingRegs)
	if w.off != len(buf) {
		return nil, fmt.Errorf("snapshot: internal size mismatch: wrote %d of %d", w.off, len(buf))
	}
	return buf, nil
}

// ReadHeader parses and validates the fixed-size prefix without decoding the
// body — enough to report a blob's resume cycle and check compatibility.
func ReadHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < headerBytes {
		return h, fmt.Errorf("snapshot: truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != Magic {
		return h, fmt.Errorf("snapshot: bad magic %q", data[:8])
	}
	h.Version = binary.LittleEndian.Uint32(data[8:])
	if h.Version != Version {
		return h, fmt.Errorf("snapshot: unsupported format version %d (this build reads %d)", h.Version, Version)
	}
	copy(h.DesignHash[:], data[12:44])
	h.Cycles = binary.LittleEndian.Uint64(data[44:])
	return h, nil
}

// Decode deserializes a snapshot, validating the header against p's design
// hash. The returned state aliases freshly decoded slices (never data).
func Decode(data []byte, p *emit.Program) (*engine.SimState, error) {
	h, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if want := p.DesignHash(); h.DesignHash != want {
		return nil, fmt.Errorf("snapshot: design hash %x does not match this build's %x: snapshot was taken on a different design or optimization level",
			h.DesignHash[:8], want[:8])
	}
	r := reader{buf: data, off: headerBytes}
	st := &engine.SimState{}
	st.State = r.words()
	nMems := r.u64()
	if nMems > uint64(len(data)) { // cheap sanity bound before allocating
		return nil, fmt.Errorf("snapshot: implausible memory count %d", nMems)
	}
	st.Mems = make([][]uint64, 0, nMems)
	for i := uint64(0); i < nMems; i++ {
		st.Mems = append(st.Mems, r.words())
	}
	st.Executed = r.u64()
	r.stats(&st.Stats)
	st.SupCount = int(r.u64())
	st.ActiveSups = r.i32s()
	st.PendingRegs = r.i32s()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", len(data)-r.off)
	}
	if h.Cycles != st.Stats.Cycles {
		return nil, fmt.Errorf("snapshot: header cycles %d disagree with stats %d", h.Cycles, st.Stats.Cycles)
	}
	return st, nil
}

// writer appends fixed-width little-endian fields to a pre-sized buffer.
type writer struct {
	buf []byte
	off int
}

func (w *writer) bytes(b []byte) { copy(w.buf[w.off:], b); w.off += len(b) }
func (w *writer) u32(v uint32)   { binary.LittleEndian.PutUint32(w.buf[w.off:], v); w.off += 4 }
func (w *writer) u64(v uint64)   { binary.LittleEndian.PutUint64(w.buf[w.off:], v); w.off += 8 }

func (w *writer) words(vs []uint64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

func (w *writer) i32s(vs []int32) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u32(uint32(v))
	}
}

func (w *writer) stats(s *engine.Stats) {
	for _, v := range statsFields(s) {
		w.u64(*v)
	}
}

// reader consumes fixed-width little-endian fields, remembering the first
// truncation error and returning zero values after it.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: truncated at byte %d of %d", r.off, len(r.buf))
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) words() []uint64 {
	n := r.u64()
	if r.err != nil || n > uint64(len(r.buf)-r.off)/8 {
		r.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.buf[r.off:])
		r.off += 8
	}
	return out
}

func (r *reader) i32s() []int32 {
	n := r.u64()
	if r.err != nil || n > uint64(len(r.buf)-r.off)/4 {
		r.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.buf[r.off:]))
		r.off += 4
	}
	return out
}

func (r *reader) stats(s *engine.Stats) {
	for _, v := range statsFields(s) {
		*v = r.u64()
	}
}

// statsFields fixes the serialization order of the Stats block. Append-only:
// reordering or removing entries is a format version bump.
func statsFields(s *engine.Stats) [8]*uint64 {
	return [8]*uint64{
		&s.Cycles, &s.NodeEvals, &s.Activations, &s.Examinations,
		&s.InstrsExecuted, &s.RegCommits, &s.EvaluableNodes, &s.ResetFastSkips,
	}
}
