package snapshot

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Store is an in-memory content-addressed blob store for checkpoint handoff.
// Blobs are keyed by the SHA-256 of their bytes, so identical snapshots (the
// common case when a fleet migrates many sessions of one design, or retries a
// migration) deduplicate to a single copy, and every read re-verifies the
// hash — a blob that rotted in place is refused rather than restored into a
// live simulation.
//
// The store holds transient state (a migration window, a retry budget), not
// durable history, so it runs under a byte budget with LRU eviction. Entries
// a caller still depends on are pinned: Pin/Unpin maintain a refcount, and
// eviction skips pinned entries even when that leaves the store over budget —
// correctness (a live session's handoff blob) beats the budget. All methods
// are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	budget int64
	used   int64
	pinned int64 // bytes of blobs with pins > 0 (eviction-exempt residency)
	blobs  map[string]*storeEntry
	lru    *list.List // front = most recently used; holds *storeEntry
	evict  uint64
	m      *StoreMetrics // nil = uninstrumented
}

type storeEntry struct {
	key  string
	data []byte
	pins int
	elem *list.Element
}

// NewStore builds a store with the given byte budget. A budget <= 0 means
// unbounded (nothing is ever evicted).
func NewStore(budgetBytes int64) *Store {
	return &Store{
		budget: budgetBytes,
		blobs:  make(map[string]*storeEntry),
		lru:    list.New(),
	}
}

// Put stores data and returns its content key (lowercase hex SHA-256). A blob
// already present is deduplicated: the existing entry is refreshed in LRU
// order and no bytes are copied. The stored copy is private — later mutation
// of the caller's slice cannot corrupt it. The just-stored blob is never the
// eviction victim of its own Put, but it may be evicted by any later
// operation; callers that need the blob to survive use PutPinned.
func (s *Store) Put(data []byte) string {
	return s.put(data, false)
}

// PutPinned stores data already pinned — Put and Pin with no window in
// between for eviction to reclaim the blob. Deduplicated puts add a pin to
// the existing entry. Release with Unpin.
func (s *Store) PutPinned(data []byte) string {
	return s.put(data, true)
}

func (s *Store) put(data []byte, pin bool) string {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m != nil {
		s.m.Puts.Inc()
	}
	if e, ok := s.blobs[key]; ok {
		s.lru.MoveToFront(e.elem)
		if pin {
			s.pinLocked(e)
		}
		s.syncGaugesLocked()
		return key
	}
	e := &storeEntry{key: key, data: append([]byte(nil), data...)}
	e.elem = s.lru.PushFront(e)
	s.blobs[key] = e
	s.used += int64(len(e.data))
	if pin {
		s.pinLocked(e)
	}
	s.evictOverBudget(e)
	s.syncGaugesLocked()
	return key
}

// pinLocked adds one pin, tracking the pinned-byte transition. Caller holds
// s.mu.
func (s *Store) pinLocked(e *storeEntry) {
	if e.pins == 0 {
		s.pinned += int64(len(e.data))
	}
	e.pins++
}

// Get returns a copy of the blob stored under key. The bytes are re-hashed on
// every read; a mismatch (memory corruption, a bug writing through the map)
// returns an error instead of the poisoned blob.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m != nil {
		s.m.Gets.Inc()
	}
	e, ok := s.blobs[key]
	if !ok {
		return nil, fmt.Errorf("snapshot: store has no blob %s", key)
	}
	sum := sha256.Sum256(e.data)
	if hex.EncodeToString(sum[:]) != key {
		return nil, fmt.Errorf("snapshot: blob %s failed content verification (stored bytes hash to %x)", key, sum)
	}
	s.lru.MoveToFront(e.elem)
	return append([]byte(nil), e.data...), nil
}

// Pin marks the blob as in-use; pinned blobs survive eviction. Pins nest —
// each Pin needs a matching Unpin. Pinning a missing key is an error so
// callers learn immediately that the blob they depend on is already gone.
func (s *Store) Pin(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blobs[key]
	if !ok {
		return fmt.Errorf("snapshot: cannot pin missing blob %s", key)
	}
	s.pinLocked(e)
	s.syncGaugesLocked()
	return nil
}

// Unpin releases one Pin. When the last pin drops, the blob becomes evictable
// again; if the store is over budget it is reclaimed eagerly.
func (s *Store) Unpin(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blobs[key]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		s.pinned -= int64(len(e.data))
		s.evictOverBudget(nil)
	}
	s.syncGaugesLocked()
}

// Delete removes the blob regardless of pins. Use when the owning operation
// completed and the blob is known dead.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.blobs[key]; ok {
		s.removeLocked(e)
		s.syncGaugesLocked()
	}
}

// Stats reports current occupancy and lifetime eviction count.
func (s *Store) Stats() (usedBytes, budgetBytes int64, blobs int, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used, s.budget, len(s.blobs), s.evict
}

// evictOverBudget drops least-recently-used unpinned blobs until the store
// fits its budget. keep (the entry a Put just inserted, may be nil) is exempt
// so a Put can never evict its own blob. Caller holds s.mu.
func (s *Store) evictOverBudget(keep *storeEntry) {
	if s.budget <= 0 {
		return
	}
	for e := s.lru.Back(); e != nil && s.used > s.budget; {
		prev := e.Prev()
		entry := e.Value.(*storeEntry)
		if entry.pins == 0 && entry != keep {
			s.removeLocked(entry)
			s.evict++
			if s.m != nil {
				s.m.Evictions.Inc()
			}
		}
		e = prev
	}
	s.syncGaugesLocked()
}

// removeLocked unlinks the entry. Caller holds s.mu.
func (s *Store) removeLocked(e *storeEntry) {
	s.lru.Remove(e.elem)
	delete(s.blobs, e.key)
	s.used -= int64(len(e.data))
	if e.pins > 0 {
		s.pinned -= int64(len(e.data)) // Delete removes regardless of pins
	}
}
