package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(0)
	blob := []byte("GSIMSNAP pretend checkpoint bytes")
	key := s.Put(blob)

	sum := sha256.Sum256(blob)
	if want := hex.EncodeToString(sum[:]); key != want {
		t.Fatalf("Put key = %s, want sha256 %s", key, want)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Get returned %q, want %q", got, blob)
	}

	// The store must hold its own copy: mutating either the original slice
	// or a returned one must not affect later reads.
	blob[0] ^= 0xff
	got[1] ^= 0xff
	again, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get after caller mutation: %v", err)
	}
	if again[0] != 'G' || again[1] != 'S' {
		t.Fatal("store shares memory with caller slices")
	}

	if _, err := s.Get(strings.Repeat("0", 64)); err == nil {
		t.Fatal("Get of missing key succeeded")
	}
}

func TestStoreDedup(t *testing.T) {
	s := NewStore(0)
	blob := bytes.Repeat([]byte("lane"), 1024)
	k1 := s.Put(blob)
	k2 := s.Put(append([]byte(nil), blob...)) // equal bytes, distinct slice
	if k1 != k2 {
		t.Fatalf("identical blobs got distinct keys %s vs %s", k1, k2)
	}
	used, _, blobs, _ := s.Stats()
	if blobs != 1 {
		t.Fatalf("store holds %d blobs after duplicate Put, want 1", blobs)
	}
	if used != int64(len(blob)) {
		t.Fatalf("store used %d bytes, want %d (one copy)", used, len(blob))
	}
}

func TestStoreEviction(t *testing.T) {
	// Budget fits exactly two 100-byte blobs.
	s := NewStore(200)
	mk := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i)}, 100)
		b[0] = byte(i) // distinct content per i even for i=0
		return b
	}
	k0 := s.Put(mk(0))
	k1 := s.Put(mk(1))
	// Touch k0 so k1 is the LRU victim.
	if _, err := s.Get(k0); err != nil {
		t.Fatal(err)
	}
	k2 := s.Put(mk(2))

	if _, err := s.Get(k1); err == nil {
		t.Fatal("LRU blob survived eviction under budget pressure")
	}
	for _, k := range []string{k0, k2} {
		if _, err := s.Get(k); err != nil {
			t.Fatalf("recently used blob %s was evicted: %v", k, err)
		}
	}
	used, budget, blobs, evictions := s.Stats()
	if used > budget {
		t.Fatalf("store over budget: %d > %d", used, budget)
	}
	if blobs != 2 || evictions != 1 {
		t.Fatalf("blobs=%d evictions=%d, want 2 and 1", blobs, evictions)
	}
}

func TestStorePinBlocksEviction(t *testing.T) {
	s := NewStore(200)
	pinned := s.Put(bytes.Repeat([]byte{1}, 100))
	if err := s.Pin(pinned); err != nil {
		t.Fatal(err)
	}
	// Flood the store; the pinned blob is always the LRU candidate but must
	// survive every round.
	for i := 2; i < 10; i++ {
		s.Put(bytes.Repeat([]byte{byte(i)}, 100))
	}
	if _, err := s.Get(pinned); err != nil {
		t.Fatalf("pinned blob was evicted: %v", err)
	}
	used, budget, _, _ := s.Stats()
	if used > budget {
		t.Fatalf("store over budget with evictable blobs present: %d > %d", used, budget)
	}
	if err := s.Pin("feedface"); err == nil {
		t.Fatal("Pin of missing blob succeeded")
	}
}

func TestStorePinnedBeatsBudget(t *testing.T) {
	// Two pinned 100-byte blobs under a 150-byte budget: the store runs over
	// budget rather than dropping a blob a live migration depends on. The
	// first Unpin reclaims eagerly.
	s := NewStore(150)
	kA := s.PutPinned(bytes.Repeat([]byte{1}, 100))
	kB := s.PutPinned(bytes.Repeat([]byte{2}, 100))
	used, budget, blobs, _ := s.Stats()
	if blobs != 2 {
		t.Fatalf("pinned blob evicted: %d blobs, want 2", blobs)
	}
	if used <= budget {
		t.Fatalf("test setup broken: used %d should exceed budget %d", used, budget)
	}
	s.Unpin(kA)
	if _, err := s.Get(kA); err == nil {
		t.Fatal("unpinned blob survived while store over budget")
	}
	if _, err := s.Get(kB); err != nil {
		t.Fatalf("still-pinned blob lost: %v", err)
	}
	used, budget, _, _ = s.Stats()
	if used > budget {
		t.Fatalf("store over budget after reclaim: %d > %d", used, budget)
	}
	s.Unpin(kB)
}

func TestStorePutPinnedDedupNestsPins(t *testing.T) {
	s := NewStore(150)
	blob := bytes.Repeat([]byte{7}, 100)
	k1 := s.PutPinned(blob)
	k2 := s.PutPinned(blob) // dedup — must add a second pin
	if k1 != k2 {
		t.Fatalf("dedup broke: %s vs %s", k1, k2)
	}
	s.Unpin(k1)
	// One pin remains; flooding must not evict it.
	s.Put(bytes.Repeat([]byte{8}, 100))
	if _, err := s.Get(k1); err != nil {
		t.Fatalf("blob with remaining pin evicted: %v", err)
	}
	s.Unpin(k1)
}

func TestStoreRefusesHashMismatch(t *testing.T) {
	s := NewStore(0)
	key := s.Put([]byte("pristine checkpoint"))

	// Corrupt the stored bytes behind the store's back (white-box: same
	// package). This models memory corruption between Put and Get.
	s.mu.Lock()
	s.blobs[key].data[0] ^= 0x01
	s.mu.Unlock()

	if _, err := s.Get(key); err == nil {
		t.Fatal("Get returned a blob whose bytes no longer match its content key")
	} else if !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStoreDeleteIgnoresPins(t *testing.T) {
	s := NewStore(0)
	key := s.Put([]byte("doomed"))
	if err := s.Pin(key); err != nil {
		t.Fatal(err)
	}
	s.Delete(key)
	if _, err := s.Get(key); err == nil {
		t.Fatal("blob readable after Delete")
	}
	used, _, blobs, _ := s.Stats()
	if used != 0 || blobs != 0 {
		t.Fatalf("used=%d blobs=%d after Delete, want 0/0", used, blobs)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(10_000)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 200; i++ {
				blob := []byte(fmt.Sprintf("worker %d blob %d", w, i%10))
				key := s.Put(blob)
				if got, e := s.Get(key); e == nil && !bytes.Equal(got, blob) {
					err = fmt.Errorf("worker %d read wrong bytes", w)
				}
				_ = s.Pin(key)
				s.Unpin(key)
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
