package firrtl

// stmt parses one statement (at current line start).
func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected statement, got %s", t)
	}
	base := stmtBase{Line: t.line}
	switch t.text {
	case "wire":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &WireStmt{stmtBase: base, Name: name, Type: ty}, nil

	case "reg":
		p.pos++
		return p.regStmt(base)

	case "regreset":
		p.pos++
		return p.regresetStmt(base)

	case "node":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &NodeStmt{stmtBase: base, Name: name, Expr: e}, nil

	case "skip":
		p.pos++
		return &SkipStmt{base}, nil

	case "stop", "printf", "assert", "assume", "cover":
		p.pos++
		if err := p.skipParens(); err != nil {
			return nil, err
		}
		// Optional trailing `: name` label.
		if p.acceptPunct(":") {
			if _, err := p.ident(); err != nil {
				return nil, err
			}
		}
		return &SkipStmt{base}, nil

	case "when":
		p.pos++
		return p.whenStmt(base)

	case "inst":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectIdent("of"); err != nil {
			return nil, err
		}
		mod, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &InstStmt{stmtBase: base, Name: name, Module: mod}, nil

	case "mem":
		p.pos++
		return p.memStmt(base)
	}

	// Reference statement: `target <= expr` or `target is invalid`.
	target, err := p.dottedRef()
	if err != nil {
		return nil, err
	}
	if p.acceptIdent("is") {
		if err := p.expectIdent("invalid"); err != nil {
			return nil, err
		}
		return &InvalidStmt{stmtBase: base, Target: target}, nil
	}
	if err := p.expectPunct("<="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ConnectStmt{stmtBase: base, Target: target, Value: e}, nil
}

// regStmt parses: reg NAME : TYPE, CLOCK [with : (reset => (SIG, INIT))]
// The `with` clause may be inline in parentheses or an indented block.
func (p *parser) regStmt(base stmtBase) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if _, err := p.expr(); err != nil { // clock expression, ignored
		return nil, err
	}
	st := &RegStmt{stmtBase: base, Name: name, Type: ty}
	if !p.acceptIdent("with") {
		return st, nil
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	parenthesized := p.acceptPunct("(")
	if !parenthesized {
		// Indented form.
		p.skipNewlines()
		if _, err := p.expectKind(tokIndent); err != nil {
			return nil, err
		}
	}
	if err := p.expectIdent("reset"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("=>"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	sig, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if parenthesized {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else {
		p.skipNewlines()
		if _, err := p.expectKind(tokDedent); err != nil {
			return nil, err
		}
	}
	st.HasReset = true
	st.ResetSig = sig
	st.Init = init
	return st, nil
}

// regresetStmt parses the FIRRTL 3.x form:
// regreset NAME : TYPE, CLOCK, RESET, INIT
func (p *parser) regresetStmt(base stmtBase) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if _, err := p.expr(); err != nil { // clock
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	sig, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &RegStmt{stmtBase: base, Name: name, Type: ty, HasReset: true, ResetSig: sig, Init: init}, nil
}

func (p *parser) whenStmt(base stmtBase) (Stmt, error) {
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	thenBlk, err := p.stmtBlock()
	if err != nil {
		return nil, err
	}
	st := &WhenStmt{stmtBase: base, Cond: cond, Then: thenBlk}
	p.skipNewlines()
	if p.acceptIdent("else") {
		if p.peek().kind == tokIdent && p.peek().text == "when" {
			// else when ... : chained conditional.
			p.pos++
			inner, err := p.whenStmt(stmtBase{Line: p.peek().line})
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{inner}
		} else {
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			elseBlk, err := p.stmtBlock()
			if err != nil {
				return nil, err
			}
			st.Else = elseBlk
		}
	}
	return st, nil
}

// memStmt parses an indented mem block.
func (p *parser) memStmt(base stmtBase) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if _, err := p.expectKind(tokIndent); err != nil {
		return nil, err
	}
	st := &MemStmt{stmtBase: base, Name: name, WriteLatency: 1}
	for {
		p.skipNewlines()
		if p.peek().kind == tokDedent {
			p.pos++
			break
		}
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("=>"); err != nil {
			return nil, err
		}
		switch key {
		case "data-type":
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.DataType = ty
		case "depth":
			d, err := p.intLit()
			if err != nil {
				return nil, err
			}
			st.Depth = d
		case "read-latency":
			v, err := p.intLit()
			if err != nil {
				return nil, err
			}
			st.ReadLatency = v
		case "write-latency":
			v, err := p.intLit()
			if err != nil {
				return nil, err
			}
			st.WriteLatency = v
		case "reader":
			r, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Readers = append(st.Readers, r)
		case "writer":
			w, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Writers = append(st.Writers, w)
		case "read-under-write":
			if _, err := p.ident(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(p.peek(), "unsupported mem field %q", key)
		}
	}
	return st, nil
}

// skipParens consumes a balanced parenthesized argument list.
func (p *parser) skipParens() error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		if t.kind == tokEOF {
			return p.errf(t, "unterminated argument list")
		}
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
	}
	return nil
}

// dottedRef parses name(.name)*, allowing numeric fields.
func (p *parser) dottedRef() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	for p.acceptPunct(".") {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokInt {
			return "", p.errf(t, "expected field name, got %s", t)
		}
		name += "." + t.text
	}
	return name, nil
}
