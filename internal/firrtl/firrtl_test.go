package firrtl

import (
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/ir"
)

const counterSrc = `
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>

    reg count : UInt<8>, clock with :
      reset => (reset, UInt<8>("h0"))
    when en :
      count <= tail(add(count, UInt<8>(1)), 1)
    out <= count
`

func mustLoad(t *testing.T, src string) *ir.Graph {
	t.Helper()
	g, err := Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return g
}

func refSim(t *testing.T, g *ir.Graph) *engine.Reference {
	t.Helper()
	r, err := engine.NewReference(g)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	return r
}

func poke(t *testing.T, s engine.Sim, g *ir.Graph, name string, v uint64) {
	t.Helper()
	n := g.FindNode(name)
	if n == nil {
		t.Fatalf("no node %q", name)
	}
	s.Poke(n.ID, bitvec.FromUint64(n.Width, v))
}

func peek(t *testing.T, s engine.Sim, g *ir.Graph, name string) uint64 {
	t.Helper()
	n := g.FindNode(name)
	if n == nil {
		t.Fatalf("no node %q", name)
	}
	return s.Peek(n.ID).Uint64()
}

func TestCounter(t *testing.T) {
	g := mustLoad(t, counterSrc)
	sim := refSim(t, g)
	poke(t, sim, g, "reset", 0)
	poke(t, sim, g, "en", 1)
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	// Step is evaluate-then-commit: registers reflect the new edge, while
	// combinational nodes (like `out`) settle on the next evaluation.
	if got := peek(t, sim, g, "count"); got != 10 {
		t.Fatalf("count after 10 enabled cycles = %d, want 10", got)
	}
	if got := peek(t, sim, g, "out"); got != 9 {
		t.Fatalf("out lags one evaluation: got %d, want 9", got)
	}
	poke(t, sim, g, "en", 0)
	sim.Step()
	sim.Step()
	if got := peek(t, sim, g, "out"); got != 10 {
		t.Fatalf("count should hold at 10 when disabled, got %d", got)
	}
	poke(t, sim, g, "reset", 1)
	sim.Step()
	if got := peek(t, sim, g, "count"); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

const gcdSrc = `
circuit GCD :
  module GCD :
    input clock : Clock
    input reset : UInt<1>
    input start : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output result : UInt<16>
    output done : UInt<1>

    reg x : UInt<16>, clock
    reg y : UInt<16>, clock

    when start :
      x <= a
      y <= b
    else :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else :
        when neq(y, UInt<16>(0)) :
          y <= tail(sub(y, x), 1)

    result <= x
    done <= eq(y, UInt<16>(0))
`

func TestGCD(t *testing.T) {
	g := mustLoad(t, gcdSrc)
	sim := refSim(t, g)
	poke(t, sim, g, "reset", 0)
	poke(t, sim, g, "start", 1)
	poke(t, sim, g, "a", 48)
	poke(t, sim, g, "b", 36)
	sim.Step()
	poke(t, sim, g, "start", 0)
	for i := 0; i < 64; i++ {
		sim.Step()
		if peek(t, sim, g, "done") == 1 {
			break
		}
	}
	if got := peek(t, sim, g, "result"); got != 12 {
		t.Fatalf("gcd(48,36) = %d, want 12", got)
	}
}

const hierSrc = `
circuit Top :
  module Inc :
    input x : UInt<8>
    output y : UInt<8>
    y <= tail(add(x, UInt<8>(1)), 1)

  module Top :
    input clock : Clock
    input in : UInt<8>
    output out : UInt<8>

    inst i1 of Inc
    inst i2 of Inc
    i1.x <= in
    i2.x <= i1.y
    out <= i2.y
`

func TestHierarchy(t *testing.T) {
	g := mustLoad(t, hierSrc)
	sim := refSim(t, g)
	poke(t, sim, g, "in", 7)
	sim.Step()
	if got := peek(t, sim, g, "out"); got != 9 {
		t.Fatalf("out = %d, want 9", got)
	}
}

const memSrc = `
circuit Scratch :
  module Scratch :
    input clock : Clock
    input waddr : UInt<4>
    input wdata : UInt<32>
    input wen : UInt<1>
    input raddr : UInt<4>
    output rdata : UInt<32>

    mem m :
      data-type => UInt<32>
      depth => 16
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w

    m.r.addr <= raddr
    m.r.en <= UInt<1>(1)
    m.r.clk <= asClock(UInt<1>(0))
    m.w.addr <= waddr
    m.w.data <= wdata
    m.w.en <= wen
    m.w.clk <= asClock(UInt<1>(0))
    m.w.mask <= UInt<1>(1)
    rdata <= m.r.data
`

func TestMemory(t *testing.T) {
	g := mustLoad(t, memSrc)
	sim := refSim(t, g)
	poke(t, sim, g, "waddr", 5)
	poke(t, sim, g, "wdata", 0xdeadbeef)
	poke(t, sim, g, "wen", 1)
	sim.Step()
	poke(t, sim, g, "wen", 0)
	poke(t, sim, g, "raddr", 5)
	sim.Step()
	if got := peek(t, sim, g, "rdata"); got != 0xdeadbeef {
		t.Fatalf("rdata = %#x, want 0xdeadbeef", got)
	}
}

const signedSrc = `
circuit Signed :
  module Signed :
    input a : SInt<8>
    input b : SInt<8>
    output lt_ab : UInt<1>
    output sum : SInt<9>
    output negb : SInt<9>

    lt_ab <= lt(a, b)
    sum <= add(a, b)
    negb <= neg(b)
`

func TestSigned(t *testing.T) {
	g := mustLoad(t, signedSrc)
	sim := refSim(t, g)
	// a = -5 (0xfb), b = 3.
	poke(t, sim, g, "a", 0xfb)
	poke(t, sim, g, "b", 3)
	sim.Step()
	if got := peek(t, sim, g, "lt_ab"); got != 1 {
		t.Fatalf("-5 < 3 should be 1, got %d", got)
	}
	// -5 + 3 = -2 → 9-bit two's complement 0x1fe.
	if got := peek(t, sim, g, "sum"); got != 0x1fe {
		t.Fatalf("sum = %#x, want 0x1fe (-2)", got)
	}
	// neg(3) = -3 → 0x1fd.
	if got := peek(t, sim, g, "negb"); got != 0x1fd {
		t.Fatalf("negb = %#x, want 0x1fd (-3)", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no-top", "circuit X :\n  module Y :\n    input a : UInt<1>\n"},
		{"bad-type", "circuit X :\n  module X :\n    input a : Fixed<8>\n"},
		{"undeclared", "circuit X :\n  module X :\n    output o : UInt<1>\n    o <= q\n"},
		{"bundle", "circuit X :\n  module X :\n    input a : {b : UInt<1>}\n"},
		{"width-required", "circuit X :\n  module X :\n    input a : UInt\n    output o : UInt<1>\n    o <= a\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(c.src); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestOneHotPattern(t *testing.T) {
	// The paper's §III-B one-hot example: C = bits(1 << A, k, k) should
	// simulate as A == k.
	src := `
circuit OneHot :
  module OneHot :
    input a : UInt<3>
    output c : UInt<1>
    node b = dshl(UInt<1>(1), a)
    c <= bits(b, 5, 5)
`
	g := mustLoad(t, src)
	sim := refSim(t, g)
	for av := uint64(0); av < 8; av++ {
		poke(t, sim, g, "a", av)
		sim.Step()
		want := uint64(0)
		if av == 5 {
			want = 1
		}
		if got := peek(t, sim, g, "c"); got != want {
			t.Fatalf("a=%d: c=%d want %d", av, got, want)
		}
	}
}
