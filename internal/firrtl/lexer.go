// Package firrtl is GSIM's frontend: an indentation-aware lexer and parser
// for a FIRRTL subset, and an elaborator that flattens the module hierarchy
// into an ir.Graph (paper §III-D: "GSIM includes a Firrtl parser that
// converts the input design into an abstract syntax tree and further
// transforms it into a graph").
//
// Supported subset (documented deviations from the full spec):
//   - circuit/module with input/output ports of UInt<w>, SInt<w>, Clock,
//     Reset, AsyncReset types (clocks are accepted and ignored; the engines
//     are full-cycle);
//   - wire, node, reg (with `with : (reset => (sig, init))`), regreset;
//   - mem blocks with data-type/depth/read-latency 0/write-latency 1 and
//     named reader/writer ports;
//   - inst/of with full flattening;
//   - when/else with last-connect semantics;
//   - connects (<=), is invalid, skip; stop/printf/assert parsed and ignored;
//   - all two-operand and one-operand primops of the spec except signed
//     division/remainder and signed dynamic right shift.
//
// Widths must be explicit on ports, wires, and registers (no global width
// inference); expression widths follow the spec rules.
package firrtl

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokIdent  // identifiers and keywords
	tokInt    // decimal integer literal
	tokString // quoted string
	tokPunct  // one of : , ( ) < > = . or multi-char <= =>
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokNewline:
		return "newline"
	case tokIndent:
		return "indent"
	case tokDedent:
		return "dedent"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes FIRRTL source, emitting INDENT/DEDENT tokens from leading
// whitespace the way the format requires.
func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	for li, raw := range lines {
		lineNo := li + 1
		// Strip comments and file-info annotations (@[...]).
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "@["); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tabs not supported in indentation", lineNo)
		}
		// Emit indent/dedent.
		cur := indents[len(indents)-1]
		switch {
		case indent > cur:
			indents = append(indents, indent)
			toks = append(toks, token{kind: tokIndent, line: lineNo})
		case indent < cur:
			for len(indents) > 1 && indents[len(indents)-1] > indent {
				indents = indents[:len(indents)-1]
				toks = append(toks, token{kind: tokDedent, line: lineNo})
			}
			if indents[len(indents)-1] != indent {
				return nil, fmt.Errorf("line %d: inconsistent indentation %d", lineNo, indent)
			}
		}
		// Tokenize the content.
		i := indent
		for i < len(line) {
			c := line[i]
			switch {
			case c == ' ' || c == '\t':
				i++
			case isIdentStart(c):
				j := i
				for j < len(line) && isIdentChar(line[j]) {
					j++
				}
				toks = append(toks, token{kind: tokIdent, text: line[i:j], line: lineNo, col: i})
				i = j
			case c >= '0' && c <= '9' || c == '-' && i+1 < len(line) && line[i+1] >= '0' && line[i+1] <= '9':
				j := i + 1
				for j < len(line) && (line[j] >= '0' && line[j] <= '9') {
					j++
				}
				toks = append(toks, token{kind: tokInt, text: line[i:j], line: lineNo, col: i})
				i = j
			case c == '"':
				j := i + 1
				for j < len(line) && line[j] != '"' {
					if line[j] == '\\' {
						j++
					}
					j++
				}
				if j >= len(line) {
					return nil, fmt.Errorf("line %d: unterminated string", lineNo)
				}
				toks = append(toks, token{kind: tokString, text: line[i+1 : j], line: lineNo, col: i})
				i = j + 1
			case c == '<' && i+1 < len(line) && line[i+1] == '=':
				toks = append(toks, token{kind: tokPunct, text: "<=", line: lineNo, col: i})
				i += 2
			case c == '=' && i+1 < len(line) && line[i+1] == '>':
				toks = append(toks, token{kind: tokPunct, text: "=>", line: lineNo, col: i})
				i += 2
			case strings.ContainsRune(":,()<>=.[]", rune(c)):
				toks = append(toks, token{kind: tokPunct, text: string(c), line: lineNo, col: i})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", lineNo, c)
			}
		}
		toks = append(toks, token{kind: tokNewline, line: lineNo})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{kind: tokDedent, line: len(lines)})
	}
	toks = append(toks, token{kind: tokEOF, line: len(lines)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

// isIdentChar additionally accepts '-' so hyphenated mem keys (data-type,
// read-latency, ...) lex as single identifiers. FIRRTL identifiers proper
// never contain '-', and negative literals always follow punctuation, so
// this is unambiguous.
func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}
