package firrtl

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// expr elaborates an AST expression to an IR expression with signedness.
// Signed values are stored as two's complement at their declared widths;
// signed operators sign-extend operands explicitly, so the unsigned IR
// semantics compute bit-identical results. Signed division/remainder and
// signed dynamic right shift are outside the supported subset.
func (e *elab) expr(m *Module, x Expr, vars env) (value, error) {
	fail := func(format string, args ...interface{}) (value, error) {
		return value{}, fmt.Errorf("module %s line %d: %s", m.Name, x.exprLine(), fmt.Sprintf(format, args...))
	}
	switch t := x.(type) {
	case *RefExpr:
		s, ok := vars[t.Name]
		if !ok {
			return fail("reference to undeclared signal %q", t.Name)
		}
		return value{e: ir.Ref(s.node), signed: s.signed}, nil

	case *LitExpr:
		v, err := litValue(t)
		if err != nil {
			return fail("%v", err)
		}
		return value{e: ir.Const(v), signed: t.Type.Signed()}, nil

	case *PrimExpr:
		return e.prim(m, t, vars)
	}
	return fail("unsupported expression %T", x)
}

// litValue evaluates a literal to a bit vector, inferring minimal width
// when none is given.
func litValue(t *LitExpr) (bitvec.BV, error) {
	// Parse at a generous width first to find the magnitude.
	raw, err := bitvec.Parse(4096, t.Val)
	if err != nil {
		return bitvec.BV{}, err
	}
	need := 1
	for i := len(raw.W) - 1; i >= 0; i-- {
		if raw.W[i] != 0 {
			need = i*64 + bits.Len64(raw.W[i])
			break
		}
	}
	width := t.Type.Width
	if width <= 0 {
		width = need
		if t.Type.Signed() {
			width = need + 1 // room for the sign bit
		}
	}
	v := bitvec.Pad(raw, width)
	if t.Neg {
		v = bitvec.Neg(v, width)
	}
	return v, nil
}

func (e *elab) prim(m *Module, t *PrimExpr, vars env) (value, error) {
	fail := func(format string, args ...interface{}) (value, error) {
		return value{}, fmt.Errorf("module %s line %d: %s(...): %s", m.Name, t.Line, t.Op, fmt.Sprintf(format, args...))
	}
	args := make([]value, len(t.Args))
	for i, a := range t.Args {
		v, err := e.expr(m, a, vars)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	need := func(nArgs, nInts int) error {
		if len(args) != nArgs || len(t.IntArgs) != nInts {
			return fmt.Errorf("module %s line %d: %s: want %d args and %d int params, got %d and %d",
				m.Name, t.Line, t.Op, nArgs, nInts, len(args), len(t.IntArgs))
		}
		return nil
	}
	// sextBoth sign- or zero-extends both operands to a common width w.
	extBoth := func(w int) (x, y *ir.Expr) {
		return fitSigned(args[0].e, w, args[0].signed), fitSigned(args[1].e, w, args[1].signed)
	}

	switch t.Op {
	case "add", "sub", "mul":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		sgn := args[0].signed || args[1].signed
		wa, wb := args[0].e.Width, args[1].e.Width
		var w int
		op := ir.OpAdd
		switch t.Op {
		case "add":
			w = max(wa, wb) + 1
		case "sub":
			w, op = max(wa, wb)+1, ir.OpSub
		case "mul":
			w, op = wa+wb, ir.OpMul
		}
		if sgn {
			// Sign-extend to the result width; modular arithmetic then
			// produces the correct two's complement result.
			x, y := extBoth(w)
			return value{e: fitSigned(ir.Binary(op, x, y), w, false), signed: true}, nil
		}
		return value{e: ir.Binary(op, args[0].e, args[1].e), signed: false}, nil

	case "div", "rem":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		if args[0].signed || args[1].signed {
			return fail("signed division is outside the supported subset")
		}
		op := ir.OpDiv
		if t.Op == "rem" {
			op = ir.OpRem
		}
		return value{e: ir.Binary(op, args[0].e, args[1].e)}, nil

	case "lt", "leq", "gt", "geq", "eq", "neq":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		sgn := args[0].signed || args[1].signed
		var op ir.Op
		switch t.Op {
		case "lt":
			op = ir.OpLt
			if sgn {
				op = ir.OpSLt
			}
		case "leq":
			op = ir.OpLeq
			if sgn {
				op = ir.OpSLeq
			}
		case "gt":
			op = ir.OpGt
			if sgn {
				op = ir.OpSGt
			}
		case "geq":
			op = ir.OpGeq
			if sgn {
				op = ir.OpSGeq
			}
		case "eq", "neq":
			if t.Op == "eq" {
				op = ir.OpEq
			} else {
				op = ir.OpNeq
			}
			if sgn {
				// Equality of sign-extended operands.
				w := max(args[0].e.Width, args[1].e.Width)
				x, y := extBoth(w)
				return value{e: ir.Binary(op, x, y)}, nil
			}
		}
		return value{e: ir.Binary(op, args[0].e, args[1].e)}, nil

	case "pad":
		if err := need(1, 1); err != nil {
			return value{}, err
		}
		w := t.IntArgs[0]
		if w < args[0].e.Width {
			w = args[0].e.Width
		}
		return value{e: fitSigned(args[0].e, w, args[0].signed), signed: args[0].signed}, nil

	case "shl":
		if err := need(1, 1); err != nil {
			return value{}, err
		}
		return value{e: ir.Unary(ir.OpShl, args[0].e, t.IntArgs[0]), signed: args[0].signed}, nil

	case "shr":
		if err := need(1, 1); err != nil {
			return value{}, err
		}
		n, w := t.IntArgs[0], args[0].e.Width
		if args[0].signed {
			// Arithmetic shift: keep the top bits (at least the sign bit).
			lo := n
			if lo > w-1 {
				lo = w - 1
			}
			return value{e: ir.BitsOf(args[0].e, w-1, lo), signed: true}, nil
		}
		return value{e: ir.Unary(ir.OpShr, args[0].e, n)}, nil

	case "dshl":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		if args[1].e.Width > 20 {
			return fail("dynamic shift amount wider than 20 bits")
		}
		return value{e: ir.Binary(ir.OpDshl, args[0].e, args[1].e), signed: args[0].signed}, nil

	case "dshr":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		if args[0].signed {
			return fail("signed dynamic right shift is outside the supported subset")
		}
		return value{e: ir.Binary(ir.OpDshr, args[0].e, args[1].e)}, nil

	case "cvt":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		if args[0].signed {
			return value{e: args[0].e, signed: true}, nil
		}
		return value{e: fitSigned(args[0].e, args[0].e.Width+1, false), signed: true}, nil

	case "neg":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		w := args[0].e.Width + 1
		x := fitSigned(args[0].e, w, args[0].signed)
		zero := ir.ConstUint(w, 0)
		return value{e: fitSigned(ir.Binary(ir.OpSub, zero, x), w, false), signed: true}, nil

	case "not":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		return value{e: ir.Unary(ir.OpNot, args[0].e, 0)}, nil

	case "and", "or", "xor":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		w := max(args[0].e.Width, args[1].e.Width)
		x, y := extBoth(w)
		var op ir.Op
		switch t.Op {
		case "and":
			op = ir.OpAnd
		case "or":
			op = ir.OpOr
		default:
			op = ir.OpXor
		}
		return value{e: ir.Binary(op, x, y)}, nil

	case "andr", "orr", "xorr":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		var op ir.Op
		switch t.Op {
		case "andr":
			op = ir.OpAndR
		case "orr":
			op = ir.OpOrR
		default:
			op = ir.OpXorR
		}
		return value{e: ir.Unary(op, args[0].e, 0)}, nil

	case "cat":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		return value{e: ir.Binary(ir.OpCat, args[0].e, args[1].e)}, nil

	case "bits":
		if err := need(1, 2); err != nil {
			return value{}, err
		}
		hi, lo := t.IntArgs[0], t.IntArgs[1]
		if hi < lo || hi >= args[0].e.Width {
			return fail("bits(%d, %d) out of range for width %d", hi, lo, args[0].e.Width)
		}
		return value{e: ir.BitsOf(args[0].e, hi, lo)}, nil

	case "head":
		if err := need(1, 1); err != nil {
			return value{}, err
		}
		n, w := t.IntArgs[0], args[0].e.Width
		if n < 1 || n > w {
			return fail("head(%d) out of range for width %d", n, w)
		}
		return value{e: ir.BitsOf(args[0].e, w-1, w-n)}, nil

	case "tail":
		if err := need(1, 1); err != nil {
			return value{}, err
		}
		n, w := t.IntArgs[0], args[0].e.Width
		if n < 0 || n >= w {
			return fail("tail(%d) out of range for width %d", n, w)
		}
		return value{e: ir.BitsOf(args[0].e, w-n-1, 0)}, nil

	case "mux":
		if err := need(3, 0); err != nil {
			return value{}, err
		}
		sgn := args[1].signed || args[2].signed
		w := max(args[1].e.Width, args[2].e.Width)
		tArm := fitSigned(args[1].e, w, args[1].signed)
		fArm := fitSigned(args[2].e, w, args[2].signed)
		sel := fitSigned(args[0].e, 1, false)
		return value{e: ir.MuxOf(sel, tArm, fArm), signed: sgn}, nil

	case "validif":
		if err := need(2, 0); err != nil {
			return value{}, err
		}
		// The invalid case is undefined; taking the value unconditionally is
		// a legal refinement.
		return args[1], nil

	case "asUInt":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		return value{e: args[0].e}, nil

	case "asSInt":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		return value{e: args[0].e, signed: true}, nil

	case "asClock", "asAsyncReset":
		if err := need(1, 0); err != nil {
			return value{}, err
		}
		return value{e: fitSigned(args[0].e, 1, false)}, nil
	}
	return fail("unsupported primop")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
