package firrtl

import (
	"fmt"
	"strconv"
)

// --- AST ---

// Circuit is a parsed FIRRTL circuit.
type Circuit struct {
	Name    string
	Modules map[string]*Module
	Order   []string
}

// Module is one FIRRTL module.
type Module struct {
	Name  string
	Ports []Port
	Body  []Stmt
}

// Port is a module port.
type Port struct {
	Name  string
	Input bool
	Type  Type
	Line  int
}

// Type is a FIRRTL ground type.
type Type struct {
	Kind  TypeKind
	Width int
}

// TypeKind enumerates supported ground types.
type TypeKind uint8

// Ground type kinds.
const (
	TyUInt TypeKind = iota
	TySInt
	TyClock
	TyReset
)

// Signed reports whether the type is SInt.
func (t Type) Signed() bool { return t.Kind == TySInt }

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type stmtBase struct{ Line int }

func (s stmtBase) stmtLine() int { return s.Line }

// WireStmt declares a wire.
type WireStmt struct {
	stmtBase
	Name string
	Type Type
}

// RegStmt declares a register, optionally with reset.
type RegStmt struct {
	stmtBase
	Name     string
	Type     Type
	HasReset bool
	ResetSig Expr
	Init     Expr
}

// NodeStmt names an expression.
type NodeStmt struct {
	stmtBase
	Name string
	Expr Expr
}

// ConnectStmt drives a target: target <= value.
type ConnectStmt struct {
	stmtBase
	Target string // dotted reference
	Value  Expr
}

// InvalidStmt marks a target invalid (driven to zero here).
type InvalidStmt struct {
	stmtBase
	Target string
}

// WhenStmt is a conditional block.
type WhenStmt struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// InstStmt instantiates a module.
type InstStmt struct {
	stmtBase
	Name   string
	Module string
}

// MemStmt declares a memory.
type MemStmt struct {
	stmtBase
	Name         string
	DataType     Type
	Depth        int
	ReadLatency  int
	WriteLatency int
	Readers      []string
	Writers      []string
}

// SkipStmt does nothing (also used for ignored stop/printf/assert).
type SkipStmt struct{ stmtBase }

// Expr is an expression node.
type Expr interface{ exprLine() int }

type exprBase struct{ Line int }

func (e exprBase) exprLine() int { return e.Line }

// RefExpr references a signal by dotted name.
type RefExpr struct {
	exprBase
	Name string
}

// LitExpr is a UInt/SInt literal.
type LitExpr struct {
	exprBase
	Type Type
	Val  string // literal body: decimal or "h.."/"o.."/"b.."
	Neg  bool
}

// PrimExpr is a primop application; IntArgs carry the trailing integer
// parameters (bits, shl, pad, head, tail).
type PrimExpr struct {
	exprBase
	Op      string
	Args    []Expr
	IntArgs []int
}

// --- Parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses FIRRTL source text.
func Parse(src string) (*Circuit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.circuit()
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return p.errf(t, "expected %q, got %s", word, t)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tokPunct && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	if p.peek().kind == tokIdent && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKind(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "unexpected %s", t)
	}
	return t, nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expectKind(tokIdent)
	return t.text, err
}

func (p *parser) intLit() (int, error) {
	t, err := p.expectKind(tokInt)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf(t, "bad integer %q", t.text)
	}
	return v, nil
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) circuit() (*Circuit, error) {
	p.skipNewlines()
	// Skip an optional FIRRTL version line.
	if p.acceptIdent("FIRRTL") {
		for p.peek().kind != tokNewline && p.peek().kind != tokEOF {
			p.pos++
		}
		p.skipNewlines()
	}
	if err := p.expectIdent("circuit"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	c := &Circuit{Name: name, Modules: map[string]*Module{}}
	p.skipNewlines()
	if _, err := p.expectKind(tokIndent); err != nil {
		return nil, err
	}
	for {
		p.skipNewlines()
		if p.peek().kind == tokDedent || p.peek().kind == tokEOF {
			break
		}
		m, err := p.module()
		if err != nil {
			return nil, err
		}
		if _, dup := c.Modules[m.Name]; dup {
			return nil, fmt.Errorf("duplicate module %q", m.Name)
		}
		c.Modules[m.Name] = m
		c.Order = append(c.Order, m.Name)
	}
	if _, ok := c.Modules[name]; !ok {
		return nil, fmt.Errorf("top module %q not defined", name)
	}
	return c, nil
}

func (p *parser) module() (*Module, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if _, err := p.expectKind(tokIndent); err != nil {
		return nil, err
	}
	m := &Module{Name: name}
	// Ports.
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind != tokIdent || (t.text != "input" && t.text != "output") {
			break
		}
		p.pos++
		pname, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, Port{Name: pname, Input: t.text == "input", Type: ty, Line: t.line})
	}
	body, err := p.stmtBlockRest()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

// stmtBlockRest parses statements until the enclosing DEDENT (consumed).
func (p *parser) stmtBlockRest() ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokDedent || t.kind == tokEOF {
			if t.kind == tokDedent {
				p.pos++
			}
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

// stmtBlock parses NEWLINE INDENT stmts DEDENT.
func (p *parser) stmtBlock() ([]Stmt, error) {
	p.skipNewlines()
	if _, err := p.expectKind(tokIndent); err != nil {
		return nil, err
	}
	return p.stmtBlockRest()
}

func (p *parser) parseType() (Type, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Type{}, p.errf(t, "expected type, got %s", t)
	}
	switch t.text {
	case "Clock":
		return Type{Kind: TyClock, Width: 1}, nil
	case "Reset", "AsyncReset":
		return Type{Kind: TyReset, Width: 1}, nil
	case "UInt", "SInt":
		ty := Type{Kind: TyUInt, Width: -1}
		if t.text == "SInt" {
			ty.Kind = TySInt
		}
		if p.acceptPunct("<") {
			w, err := p.intLit()
			if err != nil {
				return ty, err
			}
			if err := p.expectPunct(">"); err != nil {
				return ty, err
			}
			ty.Width = w
		}
		return ty, nil
	}
	return Type{}, p.errf(t, "unsupported type %q (bundles and vectors are outside the supported subset)", t.text)
}
