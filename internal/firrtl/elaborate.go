package firrtl

import (
	"fmt"
	"os"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// Load parses and elaborates FIRRTL source into a validated graph.
func Load(src string) (*ir.Graph, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(c)
}

// LoadFile loads a .fir file.
func LoadFile(path string) (*ir.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := Load(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return g, nil
}

// Elaborate flattens the circuit's module hierarchy into a single graph:
// instances are inlined with dotted name prefixes, when/else blocks fold
// into mux trees with last-connect-wins semantics, and memories become
// ir.Memory objects with combinational read and synchronous write ports.
func Elaborate(c *Circuit) (*ir.Graph, error) {
	e := &elab{circ: c, g: ir.NewGraph(c.Name)}
	top := c.Modules[c.Name]
	if _, err := e.module(top, "", true, nil); err != nil {
		return nil, err
	}
	e.g.Compact()
	if err := e.g.Validate(); err != nil {
		return nil, fmt.Errorf("firrtl: elaborated graph invalid: %v", err)
	}
	return e.g, nil
}

// sig is a named signal during elaboration: a value (ir node + signedness)
// and, when connectable, an accumulating list of conditional connects.
type sig struct {
	node   *ir.Node
	signed bool

	connectable bool
	conns       []conn
	isReg       bool
	hasReset    bool
	resetExpr   *ir.Expr
	initExpr    *ir.Expr
	initSigned  bool
	line        int
}

type conn struct {
	cond *ir.Expr // nil when unconditional
	val  *ir.Expr
	sgn  bool
}

type elab struct {
	circ  *Circuit
	g     *ir.Graph
	depth int
}

// value is an elaborated expression with signedness.
type value struct {
	e      *ir.Expr
	signed bool
}

type env map[string]*sig

// module elaborates one module under the given name prefix. When top is
// true, input ports become graph inputs and output ports become observable
// outputs; otherwise ports are wires bound into the parent's environment via
// portsOut. Returns the module's port signals keyed by port name.
func (e *elab) module(m *Module, prefix string, top bool, _ env) (map[string]*sig, error) {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > 64 {
		return nil, fmt.Errorf("module %s: instance nesting too deep (recursive instantiation?)", m.Name)
	}
	vars := env{}
	ports := map[string]*sig{}
	for _, p := range m.Ports {
		w := p.Type.Width
		if w <= 0 {
			return nil, fmt.Errorf("module %s port %s: explicit width required", m.Name, p.Name)
		}
		var s *sig
		if top && p.Input {
			n := e.g.AddNode(&ir.Node{Name: prefix + p.Name, Kind: ir.KindInput, Width: w})
			s = &sig{node: n, signed: p.Type.Signed()}
		} else {
			// Wire-like: inputs of instances are driven by the parent;
			// outputs are driven inside the module.
			n := e.g.AddNode(&ir.Node{Name: prefix + p.Name, Kind: ir.KindComb, Width: w})
			s = &sig{node: n, signed: p.Type.Signed(), connectable: true, line: p.Line}
			if top && !p.Input {
				n.IsOutput = true
			}
		}
		vars[p.Name] = s
		ports[p.Name] = s
	}
	if err := e.stmts(m, m.Body, prefix, vars, nil); err != nil {
		return nil, err
	}
	// Resolve all connect targets declared in this module.
	for name, s := range vars {
		if !s.connectable {
			continue
		}
		if err := e.resolve(prefix+name, s); err != nil {
			return nil, err
		}
	}
	return ports, nil
}

// resolve folds a signal's conditional connects into its final expression.
func (e *elab) resolve(name string, s *sig) error {
	w := s.node.Width
	var folded *ir.Expr
	if s.isReg {
		folded = ir.Ref(s.node) // registers hold their value by default
	} else {
		folded = ir.ConstUint(w, 0) // invalid / unconnected reads as zero
	}
	for _, cn := range s.conns {
		val := fitSigned(cn.val, w, cn.sgn)
		if cn.cond == nil {
			folded = val
		} else {
			folded = ir.MuxOf(cn.cond, val, folded)
		}
	}
	if s.isReg {
		if s.hasReset {
			folded = ir.MuxOf(s.resetExpr, fitSigned(s.initExpr, w, s.initSigned), folded)
		}
		s.node.Expr = folded
		return nil
	}
	if s.node.Kind == ir.KindMemWrite {
		return fmt.Errorf("internal: memwrite target %s resolved twice", name)
	}
	s.node.Expr = folded
	return nil
}

// fitSigned adjusts an expression to the target width: sign-extending when
// the source is signed, zero-extending otherwise.
func fitSigned(x *ir.Expr, w int, signed bool) *ir.Expr {
	switch {
	case x.Width == w:
		return x
	case x.Width < w:
		if signed {
			return &ir.Expr{Op: ir.OpSExt, Args: []*ir.Expr{x}, Width: w}
		}
		return &ir.Expr{Op: ir.OpPad, Args: []*ir.Expr{x}, Width: w}
	default:
		return ir.BitsOf(x, w-1, 0)
	}
}

func (e *elab) stmts(m *Module, body []Stmt, prefix string, vars env, cond *ir.Expr) error {
	for _, st := range body {
		if err := e.stmt(m, st, prefix, vars, cond); err != nil {
			return err
		}
	}
	return nil
}

func (e *elab) stmt(m *Module, st Stmt, prefix string, vars env, cond *ir.Expr) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("module %s line %d: %s", m.Name, st.stmtLine(), fmt.Sprintf(format, args...))
	}
	declare := func(name string, s *sig) error {
		if _, dup := vars[name]; dup {
			return fail("redeclaration of %q", name)
		}
		vars[name] = s
		return nil
	}
	switch s := st.(type) {
	case *SkipStmt:
		return nil

	case *WireStmt:
		if s.Type.Width <= 0 {
			return fail("wire %s: explicit width required", s.Name)
		}
		n := e.g.AddNode(&ir.Node{Name: prefix + s.Name, Kind: ir.KindComb, Width: s.Type.Width})
		return declare(s.Name, &sig{node: n, signed: s.Type.Signed(), connectable: true, line: s.Line})

	case *RegStmt:
		if s.Type.Width <= 0 {
			return fail("reg %s: explicit width required", s.Name)
		}
		w := s.Type.Width
		n := e.g.AddNode(&ir.Node{Name: prefix + s.Name, Kind: ir.KindReg, Width: w, Init: bitvec.New(w)})
		sg := &sig{node: n, signed: s.Type.Signed(), connectable: true, isReg: true, line: s.Line}
		if s.HasReset {
			rv, err := e.expr(m, s.ResetSig, vars)
			if err != nil {
				return err
			}
			iv, err := e.expr(m, s.Init, vars)
			if err != nil {
				return err
			}
			// Self-referential init (reset => (rst, r)) means "hold on
			// reset": equivalent to no reset behavior.
			if ref, ok := s.Init.(*RefExpr); ok && ref.Name == s.Name {
				return declare(s.Name, sg)
			}
			sg.hasReset = true
			sg.resetExpr = fitSigned(rv.e, 1, false)
			sg.initExpr = iv.e
			sg.initSigned = iv.signed
			if iv.e.IsConst() {
				n.Init = bitvec.Pad(iv.e.FoldConst(), w)
			}
		}
		return declare(s.Name, sg)

	case *NodeStmt:
		v, err := e.expr(m, s.Expr, vars)
		if err != nil {
			return err
		}
		n := e.g.AddNode(&ir.Node{Name: prefix + s.Name, Kind: ir.KindComb, Width: v.e.Width, Expr: v.e})
		return declare(s.Name, &sig{node: n, signed: v.signed})

	case *ConnectStmt:
		tgt, ok := vars[s.Target]
		if !ok {
			return fail("connect to undeclared signal %q", s.Target)
		}
		if !tgt.connectable {
			return fail("%q is not a connectable target", s.Target)
		}
		v, err := e.expr(m, s.Value, vars)
		if err != nil {
			return err
		}
		tgt.conns = append(tgt.conns, conn{cond: cond, val: v.e, sgn: v.signed})
		return nil

	case *InvalidStmt:
		tgt, ok := vars[s.Target]
		if !ok {
			return fail("invalidating undeclared signal %q", s.Target)
		}
		_ = tgt // invalid targets simply read as zero when unconnected
		return nil

	case *WhenStmt:
		cv, err := e.expr(m, s.Cond, vars)
		if err != nil {
			return err
		}
		c := fitSigned(cv.e, 1, false)
		thenCond, elseCond := c, ir.Unary(ir.OpNot, c, 0)
		if cond != nil {
			thenCond = ir.Binary(ir.OpAnd, cond, thenCond)
			elseCond = ir.Binary(ir.OpAnd, cond, elseCond)
		}
		if err := e.stmts(m, s.Then, prefix, vars, thenCond); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			return e.stmts(m, s.Else, prefix, vars, elseCond)
		}
		return nil

	case *InstStmt:
		sub, ok := e.circ.Modules[s.Module]
		if !ok {
			return fail("instance of unknown module %q", s.Module)
		}
		ports, err := e.module(sub, prefix+s.Name+".", false, nil)
		if err != nil {
			return err
		}
		for pname, psig := range ports {
			if err := declare(s.Name+"."+pname, psig); err != nil {
				return err
			}
		}
		return nil

	case *MemStmt:
		return e.memStmt(m, s, prefix, vars, fail)
	}
	return fail("unsupported statement %T", st)
}

func (e *elab) memStmt(m *Module, s *MemStmt, prefix string, vars env, fail func(string, ...interface{}) error) error {
	if s.Depth <= 0 || s.DataType.Width <= 0 {
		return fail("mem %s: depth and data-type required", s.Name)
	}
	if s.ReadLatency != 0 || s.WriteLatency != 1 {
		return fail("mem %s: only read-latency 0 / write-latency 1 supported", s.Name)
	}
	mem := e.g.AddMem(&ir.Memory{Name: prefix + s.Name, Depth: s.Depth, Width: s.DataType.Width})
	aw := mem.AddrWidth()
	declWire := func(field string, w int) *sig {
		n := e.g.AddNode(&ir.Node{Name: prefix + s.Name + "." + field, Kind: ir.KindComb, Width: w})
		sg := &sig{node: n, connectable: true, line: s.Line}
		vars[s.Name+"."+field] = sg
		return sg
	}
	for _, r := range s.Readers {
		addr := declWire(r+".addr", aw)
		declWire(r+".en", 1)
		declWire(r+".clk", 1)
		data := e.g.AddNode(&ir.Node{
			Name: prefix + s.Name + "." + r + ".data", Kind: ir.KindMemRead,
			Width: mem.Width, Mem: mem, Expr: ir.Ref(addr.node),
		})
		vars[s.Name+"."+r+".data"] = &sig{node: data, signed: s.DataType.Signed()}
	}
	for _, w := range s.Writers {
		addr := declWire(w+".addr", aw)
		en := declWire(w+".en", 1)
		declWire(w+".clk", 1)
		data := declWire(w+".data", mem.Width)
		mask := declWire(w+".mask", 1)
		// An unconnected mask enables the whole write (Chisel always drives
		// it; hand-written FIRRTL usually omits it).
		mask.conns = append(mask.conns, conn{val: ir.ConstUint(1, 1)})
		// The write port reads the resolved port wires; mask folds into the
		// enable (only 1-bit masks are supported).
		e.g.AddNode(&ir.Node{
			Name: prefix + s.Name + "." + w, Kind: ir.KindMemWrite,
			Width: mem.Width, Mem: mem,
			WAddr: ir.Ref(addr.node),
			WData: ir.Ref(data.node),
			WEn:   ir.Binary(ir.OpAnd, ir.Ref(en.node), ir.Ref(mask.node)),
		})
	}
	return nil
}
