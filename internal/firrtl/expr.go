package firrtl

import "strconv"

// primops taking expression arguments; trailing integer parameters are
// collected separately.
var primOps = map[string]bool{
	"add": true, "sub": true, "mul": true, "div": true, "rem": true,
	"lt": true, "leq": true, "gt": true, "geq": true, "eq": true, "neq": true,
	"pad": true, "shl": true, "shr": true, "dshl": true, "dshr": true,
	"cvt": true, "neg": true, "not": true, "and": true, "or": true, "xor": true,
	"andr": true, "orr": true, "xorr": true, "cat": true, "bits": true,
	"head": true, "tail": true, "mux": true, "validif": true,
	"asUInt": true, "asSInt": true, "asClock": true, "asAsyncReset": true,
}

// expr parses one expression.
func (p *parser) expr() (Expr, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected expression, got %s", t)
	}
	base := exprBase{Line: t.line}

	// Literals: UInt<8>("hff"), UInt(3), SInt<4>(-2).
	if t.text == "UInt" || t.text == "SInt" {
		save := p.pos
		p.pos++
		ty := Type{Kind: TyUInt, Width: -1}
		if t.text == "SInt" {
			ty.Kind = TySInt
		}
		if p.acceptPunct("<") {
			w, err := p.intLit()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(">"); err != nil {
				return nil, err
			}
			ty.Width = w
		}
		if !p.acceptPunct("(") {
			// Not a literal after all (e.g. a signal named UInt — illegal
			// anyway); restore and fall through to reference parsing.
			p.pos = save
		} else {
			lit := &LitExpr{exprBase: base, Type: ty}
			vt := p.next()
			switch vt.kind {
			case tokString:
				lit.Val = vt.text
			case tokInt:
				v := vt.text
				if len(v) > 0 && v[0] == '-' {
					lit.Neg = true
					v = v[1:]
				}
				lit.Val = v
			default:
				return nil, p.errf(vt, "expected literal value, got %s", vt)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return lit, nil
		}
	}

	// Primop application.
	if primOps[t.text] && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		p.pos += 2
		prim := &PrimExpr{exprBase: base, Op: t.text}
		for {
			at := p.peek()
			if at.kind == tokInt {
				p.pos++
				v, err := strconv.Atoi(at.text)
				if err != nil {
					return nil, p.errf(at, "bad integer %q", at.text)
				}
				prim.IntArgs = append(prim.IntArgs, v)
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				prim.Args = append(prim.Args, e)
			}
			if p.acceptPunct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
		return prim, nil
	}

	// Dotted reference.
	name, err := p.dottedRef()
	if err != nil {
		return nil, err
	}
	return &RefExpr{exprBase: base, Name: name}, nil
}
