package firrtl

import (
	"math/rand"
	"path/filepath"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/ir"
)

// TestTestdataDesigns loads every bundled .fir design, builds it under the
// full GSIM pipeline — single-threaded and multi-threaded — and runs it in
// lockstep against the golden model with random stimulus: an end-to-end
// frontend+pipeline integration test on hand-written (rather than generated)
// input.
func TestTestdataDesigns(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.fir")
	if err != nil || len(files) < 3 {
		t.Fatalf("expected >= 3 testdata designs, got %d (%v)", len(files), err)
	}
	for _, path := range files {
		for _, cfg := range []core.Config{core.GSIM(), core.GSIMMT(4)} {
			path, cfg := path, cfg
			t.Run(filepath.Base(path)+"/"+cfg.Name, func(t *testing.T) {
				g, err := LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := engine.NewReference(g)
				if err != nil {
					t.Fatal(err)
				}
				sys, err := core.Build(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				rng := rand.New(rand.NewSource(int64(len(path))))
				for cycle := 0; cycle < 200; cycle++ {
					for _, n := range g.Nodes {
						if n == nil || n.Kind != ir.KindInput || n.Name == "clock" {
							continue
						}
						v := bitvec.FromUint64(n.Width, rng.Uint64())
						if n.Name == "reset" {
							v = bitvec.FromUint64(1, uint64(rng.Intn(10)/9))
						}
						ref.Poke(n.ID, v)
						m := sys.Node(n.Name)
						sys.Sim.Poke(m.ID, v)
					}
					ref.Step()
					sys.Sim.Step()
					for _, n := range g.Nodes {
						if n == nil || !n.IsOutput {
							continue
						}
						m := sys.Node(n.Name)
						if m == nil {
							t.Fatalf("output %q missing after optimization", n.Name)
						}
						a, b := ref.Peek(n.ID), sys.Sim.Peek(m.ID)
						if !a.EqValue(b) {
							t.Fatalf("cycle %d: output %q: reference %s vs %s %s", cycle, n.Name, a, cfg.Name, b)
						}
					}
				}
			})
		}
	}
}

// TestFifoBehavior drives the bundled FIFO design functionally.
func TestFifoBehavior(t *testing.T) {
	g, err := LoadFile("../../testdata/fifo.fir")
	if err != nil {
		t.Fatal(err)
	}
	sim := refSim(t, g)
	poke(t, sim, g, "reset", 1)
	sim.Step()
	poke(t, sim, g, "reset", 0)

	// Push three values.
	for i, v := range []uint64{0x11, 0x22, 0x33} {
		poke(t, sim, g, "push", 1)
		poke(t, sim, g, "din", v)
		sim.Step()
		if got := peek(t, sim, g, "cnt"); got != uint64(i+1) {
			t.Fatalf("count after push %d = %d", i+1, got)
		}
	}
	poke(t, sim, g, "push", 0)
	// Pop them back in order.
	for _, want := range []uint64{0x11, 0x22, 0x33} {
		sim.Step() // settle dout for current head
		if got := peek(t, sim, g, "dout"); got != want {
			t.Fatalf("dout = %#x, want %#x", got, want)
		}
		poke(t, sim, g, "pop", 1)
		sim.Step()
		poke(t, sim, g, "pop", 0)
	}
	sim.Step()
	if got := peek(t, sim, g, "cnt"); got != 0 {
		t.Fatalf("count after draining = %d", got)
	}
}
