package firrtl

import (
	"math/rand"
	"strings"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/ir"
)

// TestWriterRoundTrip is the frontend's strongest property test: render a
// random graph to FIRRTL text, parse and elaborate it back, and require the
// two graphs to produce identical output trajectories under identical
// stimulus.
func TestWriterRoundTrip(t *testing.T) {
	cfg := gen.DefaultRandomConfig()
	cfg.WideFrac = 0.05
	for seed := int64(0); seed < 5; seed++ {
		g := gen.Random(seed, cfg)
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		g2, err := Load(sb.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n--- emitted ---\n%s", seed, err, clip(sb.String()))
		}
		refA, err := engine.NewReference(g)
		if err != nil {
			t.Fatal(err)
		}
		refB, err := engine.NewReference(g2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 99))
		for cycle := 0; cycle < 30; cycle++ {
			for _, n := range g.Nodes {
				if n == nil || n.Kind != ir.KindInput {
					continue
				}
				v := bitvec.FromWords(n.Width, []uint64{rng.Uint64(), rng.Uint64()})
				m := g2.FindNode(sanitizeID(n.Name))
				if m == nil {
					t.Fatalf("seed %d: input %q lost in round trip", seed, n.Name)
				}
				refA.Poke(n.ID, v)
				refB.Poke(m.ID, v)
			}
			refA.Step()
			refB.Step()
			for _, n := range g.Nodes {
				if n == nil || !n.IsOutput {
					continue
				}
				m := g2.FindNode(sanitizeID(n.Name) + "_out")
				if m == nil {
					t.Fatalf("seed %d: output %q lost in round trip", seed, n.Name)
				}
				a, b := refA.Peek(n.ID), refB.Peek(m.ID)
				if !a.EqValue(b) {
					t.Fatalf("seed %d cycle %d: output %q: %s vs %s", seed, cycle, n.Name, a, b)
				}
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...[clipped]"
	}
	return s
}

// TestWriterEmitsResetForm checks extracted resets re-expand to reg-with.
func TestWriterEmitsResetForm(t *testing.T) {
	b := ir.NewBuilder("R")
	rst := b.Input("reset", 1)
	d := b.Input("d", 8)
	r := b.RegInit("r", 8, bitvec.FromUint64(8, 0x5a))
	b.SetNext(r, b.Fit(b.R(d), 8))
	r.ResetSig = rst
	b.Output("o", b.R(r))
	var sb strings.Builder
	if err := Write(&sb, b.G); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "with : (reset => (reset, UInt<8>(\"h5a\")))") {
		t.Fatalf("reset form missing:\n%s", sb.String())
	}
	// And it must parse back with equivalent reset semantics.
	g2, err := Load(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.NewReference(g2)
	if err != nil {
		t.Fatal(err)
	}
	ref.Poke(g2.FindNode("reset").ID, bitvec.FromUint64(1, 1))
	ref.Step()
	if got := ref.Peek(g2.FindNode("r").ID).Uint64(); got != 0x5a {
		t.Fatalf("reset value = %#x, want 0x5a", got)
	}
}
