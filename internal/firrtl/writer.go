package firrtl

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// Write renders a graph back to FIRRTL text (one flat module). Round-trips
// through the parser: Write → Parse → Elaborate produces an equivalent
// graph, which the test suite verifies by simulation. Registers with
// extracted resets are re-expanded into `reg ... with : (reset => ...)`
// form so the output stands alone.
func Write(w io.Writer, g *ir.Graph) error {
	name := sanitizeID(g.Name)
	if name == "" {
		name = "Top"
	}
	fmt.Fprintf(w, "circuit %s :\n  module %s :\n", name, name)
	fmt.Fprintf(w, "    input clock : Clock\n")

	// Stable rename: FIRRTL identifiers cannot contain '.' or '#'.
	names := map[*ir.Node]string{}
	used := map[string]bool{"clock": true}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		base := sanitizeID(n.Name)
		if base == "" {
			base = fmt.Sprintf("s%d", n.ID)
		}
		cand := base
		for i := 2; used[cand]; i++ {
			cand = fmt.Sprintf("%s_%d", base, i)
		}
		used[cand] = true
		names[n] = cand
	}

	// Ports.
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindInput {
			fmt.Fprintf(w, "    input %s : UInt<%d>\n", names[n], n.Width)
		}
	}
	var outputs []*ir.Node
	for _, n := range g.Nodes {
		if n != nil && n.IsOutput {
			outputs = append(outputs, n)
			fmt.Fprintf(w, "    output %s_out : UInt<%d>\n", names[n], n.Width)
		}
	}
	fmt.Fprintln(w)

	// Memories. Port lists are derived from the node set directly (the
	// cached Memory.Reads/Writes lists are only maintained by Compact).
	reads := map[*ir.Memory][]*ir.Node{}
	writesOf := map[*ir.Memory][]*ir.Node{}
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		switch n.Kind {
		case ir.KindMemRead:
			reads[n.Mem] = append(reads[n.Mem], n)
		case ir.KindMemWrite:
			writesOf[n.Mem] = append(writesOf[n.Mem], n)
		}
	}
	memNames := map[*ir.Memory]string{}
	for _, m := range g.Mems {
		mn := sanitizeID(m.Name)
		if mn == "" || used[mn] {
			mn = fmt.Sprintf("mem%d", m.ID)
		}
		used[mn] = true
		memNames[m] = mn
		fmt.Fprintf(w, "    mem %s :\n", mn)
		fmt.Fprintf(w, "      data-type => UInt<%d>\n", m.Width)
		fmt.Fprintf(w, "      depth => %d\n", m.Depth)
		fmt.Fprintf(w, "      read-latency => 0\n      write-latency => 1\n")
		for i := range reads[m] {
			fmt.Fprintf(w, "      reader => r%d\n", i)
		}
		for i := range writesOf[m] {
			fmt.Fprintf(w, "      writer => w%d\n", i)
		}
	}

	// Declarations in topological order so every reference is declared
	// before use (the parser requires it).
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	// Registers first (they may be referenced before their position in the
	// topological order, which sorts by next-value dependence).
	for _, n := range g.Nodes {
		if n == nil || n.Kind != ir.KindReg {
			continue
		}
		init := bitvec.Pad(n.Init, n.Width)
		switch {
		case n.ResetSig != nil:
			fmt.Fprintf(w, "    reg %s : UInt<%d>, clock with : (reset => (%s, UInt<%d>(\"h%s\")))\n",
				names[n], n.Width, names[n.ResetSig], n.Width, hexBody(init))
		case !init.IsZero():
			// FIRRTL has no bare power-on init; a never-asserted reset
			// carries the value (the elaborator records constant init
			// values as the register's initial state).
			fmt.Fprintf(w, "    reg %s : UInt<%d>, clock with : (reset => (UInt<1>(0), UInt<%d>(\"h%s\")))\n",
				names[n], n.Width, n.Width, hexBody(init))
		default:
			fmt.Fprintf(w, "    reg %s : UInt<%d>, clock\n", names[n], n.Width)
		}
	}
	pr := &printer{names: names, memNames: memNames}
	memPortIdx := map[*ir.Node]string{}
	for _, m := range g.Mems {
		for i, rp := range reads[m] {
			memPortIdx[rp] = fmt.Sprintf("%s.r%d", memNames[m], i)
		}
		for i, wp := range writesOf[m] {
			memPortIdx[wp] = fmt.Sprintf("%s.w%d", memNames[m], i)
		}
	}
	for _, id := range order {
		n := g.Nodes[id]
		switch n.Kind {
		case ir.KindComb:
			fmt.Fprintf(w, "    node %s = %s\n", names[n], pr.expr(n.Expr))
		case ir.KindMemRead:
			port := memPortIdx[n]
			fmt.Fprintf(w, "    %s.addr <= %s\n", port, pr.expr(n.Expr))
			fmt.Fprintf(w, "    %s.en <= UInt<1>(1)\n", port)
			fmt.Fprintf(w, "    %s.clk <= clock\n", port)
			fmt.Fprintf(w, "    node %s = %s.data\n", names[n], port)
		case ir.KindMemWrite:
			port := memPortIdx[n]
			fmt.Fprintf(w, "    %s.addr <= %s\n", port, pr.expr(n.WAddr))
			fmt.Fprintf(w, "    %s.data <= %s\n", port, pr.expr(n.WData))
			fmt.Fprintf(w, "    %s.en <= %s\n", port, pr.expr(n.WEn))
			fmt.Fprintf(w, "    %s.clk <= clock\n", port)
			fmt.Fprintf(w, "    %s.mask <= UInt<1>(1)\n", port)
		}
	}
	// Register connects after all nodes exist.
	for _, n := range g.Nodes {
		if n != nil && n.Kind == ir.KindReg {
			fmt.Fprintf(w, "    %s <= %s\n", names[n], pr.expr(n.Expr))
		}
	}
	for _, n := range outputs {
		fmt.Fprintf(w, "    %s_out <= %s\n", names[n], pr.expr(ir.Ref(n)))
	}
	return nil
}

type printer struct {
	names    map[*ir.Node]string
	memNames map[*ir.Memory]string
}

func (p *printer) expr(e *ir.Expr) string {
	switch e.Op {
	case ir.OpRef:
		return p.names[e.Node]
	case ir.OpConst:
		return fmt.Sprintf("UInt<%d>(\"h%s\")", e.Width, hexBody(e.Imm))
	case ir.OpBits:
		return fmt.Sprintf("bits(%s, %d, %d)", p.expr(e.Args[0]), e.Hi, e.Lo)
	case ir.OpShl, ir.OpShr:
		return fmt.Sprintf("%s(%s, %d)", e.Op, p.expr(e.Args[0]), e.Lo)
	case ir.OpPad:
		return fmt.Sprintf("pad(%s, %d)", p.expr(e.Args[0]), e.Width)
	case ir.OpSExt:
		// asSInt/pad/asUInt triple expresses sign extension in spec primops.
		return fmt.Sprintf("asUInt(pad(asSInt(%s), %d))", p.expr(e.Args[0]), e.Width)
	case ir.OpNeg:
		// neg(UInt<w>) is SInt<w+1>; asUInt gives the IR's two's complement.
		return fmt.Sprintf("asUInt(neg(%s))", p.expr(e.Args[0]))
	case ir.OpSLt, ir.OpSLeq, ir.OpSGt, ir.OpSGeq:
		op := map[ir.Op]string{ir.OpSLt: "lt", ir.OpSLeq: "leq", ir.OpSGt: "gt", ir.OpSGeq: "geq"}[e.Op]
		return fmt.Sprintf("%s(asSInt(%s), asSInt(%s))", op, p.expr(e.Args[0]), p.expr(e.Args[1]))
	default:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = p.expr(a)
		}
		s := fmt.Sprintf("%s(%s)", e.Op, strings.Join(args, ", "))
		// Width-growing ops whose FIRRTL result may exceed the IR width are
		// truncated back explicitly.
		want := e.Width
		got := ir.ResultWidth(e.Op, argW(e, 0), argW(e, 1), e.Lo)
		if e.Op == ir.OpMux {
			got = want
		}
		if got > want {
			s = fmt.Sprintf("tail(%s, %d)", s, got-want)
		} else if got < want {
			s = fmt.Sprintf("pad(%s, %d)", s, want)
		}
		return s
	}
}

func argW(e *ir.Expr, i int) int {
	if i < len(e.Args) {
		return e.Args[i].Width
	}
	return 0
}

func hexBody(v bitvec.BV) string {
	s := v.String()
	if i := strings.Index(s, "'h"); i >= 0 {
		return s[i+2:]
	}
	return s
}

func sanitizeID(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if sb.Len() == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return strings.Trim(sb.String(), "_")
}

// unusedSortImport keeps the import list stable across edits.
var _ = sort.Ints
