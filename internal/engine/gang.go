package engine

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
)

// Gang steps K independent stimulus lanes through one compiled design in
// lockstep — full-cycle semantics per lane, amortizing instruction dispatch
// across lanes (see emit.GangMachine for the struct-of-arrays layout). Each
// lane is observationally identical to a scalar FullCycle engine fed the same
// stimulus: state trajectory, stat counters, waveform, and snapshot bytes all
// match bit for bit (the lockstep suites pin this).
//
// Lanes diverge by parking: SetLive masks a lane out of Step, freezing its
// state, counters, and waveform mid-run; waking it resumes exactly where it
// stopped. Masked execution routes through the per-lane fallback only for the
// cycles where lanes actually diverge — a full gang runs the dense kernels.
//
// A Gang is not an engine.Sim (its accessors take a lane index), but it
// follows the same lifecycle: construct, Poke/Step/Peek, Reset, Close.
// Like every engine, it is single-goroutine: no method may race another.
type Gang struct {
	g       *ir.Graph
	p       *emit.Program
	gm      *emit.GangMachine
	kernels []emit.GangFn

	k    int
	full uint64 // all-lanes mask for k
	live uint64 // lanes advanced by Step

	regs   []int32 // register node IDs
	writes []int32 // memory write-port node IDs
	nCoded int     // nodes with evaluation work (EvaluableNodes per lane)
	resets []resetGroup

	steps     uint64  // Step calls issued (gang cycles, lane-independent)
	laneStats []Stats // per-lane counters, mirroring a scalar FullCycle's
	laneExec  []uint64
	tracers   []Tracer
	view      []uint64 // scalar-image scratch for tracers and captures

	obs        *Metrics // attached process-wide bundle (see obs.go)
	obsFlushed Stats    // aggregate stats image as of the last flush
}

// NewGang builds a k-lane gang over a compiled program (1 <= k <=
// emit.MaxGangLanes). All lanes start live at the initial image.
func NewGang(p *emit.Program, k int) *Gang {
	g := &Gang{
		g:         p.Graph,
		p:         p,
		gm:        emit.NewGangMachine(p, k),
		kernels:   p.GangKernels(k),
		k:         k,
		full:      emit.GangFullMask(k),
		laneStats: make([]Stats, k),
		laneExec:  make([]uint64, k),
		tracers:   make([]Tracer, k),
		view:      make([]uint64, p.NumWords),
	}
	g.live = g.full
	bySig := map[int32]int{}
	for _, n := range p.Graph.Nodes {
		if n.HasCode() {
			g.nCoded++
		}
		switch n.Kind {
		case ir.KindReg:
			g.regs = append(g.regs, int32(n.ID))
			if n.ResetSig != nil {
				sig := int32(n.ResetSig.ID)
				gi, ok := bySig[sig]
				if !ok {
					gi = len(g.resets)
					bySig[sig] = gi
					g.resets = append(g.resets, resetGroup{sig: sig})
				}
				g.resets[gi].regs = append(g.resets[gi].regs, int32(n.ID))
			}
		case ir.KindMemWrite:
			g.writes = append(g.writes, int32(n.ID))
		}
	}
	for l := range g.laneStats {
		g.laneStats[l].EvaluableNodes = uint64(g.nCoded)
	}
	return g
}

// Lanes returns the gang's lane count.
func (g *Gang) Lanes() int { return g.k }

// Program exposes the shared compiled program (snapshot encoding needs it).
func (g *Gang) Program() *emit.Program { return g.p }

// LiveMask returns the current liveness mask (bit l = lane l advances).
func (g *Gang) LiveMask() uint64 { return g.live }

// SetLive parks (false) or wakes (true) one lane. A parked lane freezes
// completely — state, counters, waveform — and resumes exactly on wake.
func (g *Gang) SetLive(lane int, live bool) {
	g.checkLane(lane)
	if live {
		g.live |= uint64(1) << uint(lane)
	} else {
		g.live &^= uint64(1) << uint(lane)
	}
}

// Live reports whether a lane advances on Step.
func (g *Gang) Live(lane int) bool {
	g.checkLane(lane)
	return g.live&(uint64(1)<<uint(lane)) != 0
}

func (g *Gang) checkLane(lane int) {
	if lane < 0 || lane >= g.k {
		panic(fmt.Sprintf("engine: gang lane %d outside [0,%d)", lane, g.k))
	}
}

// Cycles returns the number of Step calls issued — the gang's wall-clock
// cycle count. Per-lane simulated cycles live in LaneStats (a lane parked
// for part of the run has fewer).
func (g *Gang) Cycles() uint64 { return g.steps }

// SetCycles re-anchors the lockstep counter. A gang rebuilt on a new process
// and refilled lane-by-lane from snapshots starts at zero Step calls; the
// restorer sets the counter to the migrated run's cycle so wall-clock
// reporting continues instead of restarting.
func (g *Gang) SetCycles(c uint64) { g.steps = c }

// Step simulates one clock cycle on every live lane.
func (g *Gang) Step() { g.StepLanes(g.live) }

// StepLanes simulates one clock cycle on the lanes selected by mask
// (intersected with the live set). Lanes outside the mask are untouched.
func (g *Gang) StepLanes(mask uint64) {
	g.steps++
	mask &= g.live & g.full
	if mask == 0 {
		return
	}
	for _, fn := range g.kernels {
		fn(g.gm, mask)
	}
	g.commitRegs(mask)
	g.commitWrites(mask)
	g.applyResets(mask)
	nInstrs := uint64(len(g.p.Instrs))
	for mm := mask; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		ls := &g.laneStats[l]
		ls.Cycles++
		ls.NodeEvals += uint64(g.nCoded)
		ls.InstrsExecuted += nInstrs
		g.laneExec[l] += nInstrs
		g.gm.Executed += nInstrs
		if t := g.tracers[l]; t != nil {
			g.gm.ExtractLane(l, g.view)
			t.Snapshot(g.view)
		}
	}
	g.maybeFlushObs()
}

// commitRegs copies next values over current values on the stepped lanes.
// With all lanes stepped, a register's words are one contiguous strided run,
// so the commit is a single copy per register.
func (g *Gang) commitRegs(mask uint64) {
	p, st, k := g.p, g.gm.State, g.k
	if mask == g.full {
		for _, id := range g.regs {
			cur := int(p.Off[id]) * k
			next := int(p.NextOff[id]) * k
			n := int(p.WordsOf[id]) * k
			copy(st[cur:cur+n], st[next:next+n])
		}
		return
	}
	for _, id := range g.regs {
		cur, next, w := int(p.Off[id]), int(p.NextOff[id]), int(p.WordsOf[id])
		for i := 0; i < w; i++ {
			cb, nb := (cur+i)*k, (next+i)*k
			for mm := mask; mm != 0; mm &= mm - 1 {
				l := bits.TrailingZeros64(mm)
				st[cb+l] = st[nb+l]
			}
		}
	}
}

// commitWrites applies enabled memory write ports on the stepped lanes. The
// 1-bit enables pack bit-parallel across lanes (PackBits), so lanes that
// wrote nothing cost one mask AND, not a branch per lane.
func (g *Gang) commitWrites(mask uint64) {
	p, st, k := g.p, g.gm.State, g.k
	for _, id := range g.writes {
		en := g.gm.PackBits(p.WEnOff[id]) & mask
		if en == 0 {
			continue
		}
		n := g.g.Nodes[id]
		memID := n.Mem.ID
		spec := &p.Mems[memID]
		addrOff := int(p.WAddrOff[id]) * k
		dataOff := int(p.WDataOff[id])
		mem := g.gm.Mems[memID]
		for mm := en; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			addr := st[addrOff+l]
			if addr >= uint64(spec.Depth) {
				continue
			}
			base := int(addr) * int(spec.WordsPer)
			for i := 0; i < int(spec.WordsPer); i++ {
				mem[(base+i)*k+l] = st[(dataOff+i)*k+l]
			}
		}
	}
}

// applyResets runs the reset slow path per stepped lane, with the 1-bit reset
// signals read bit-parallel across lanes. Stat accounting mirrors the scalar
// base.applyResets exactly: lanes with the signal low count the skipped
// checks, lanes with it high force inits and count changed registers.
func (g *Gang) applyResets(mask uint64) {
	p, st, k := g.p, g.gm.State, g.k
	for i := range g.resets {
		rg := &g.resets[i]
		sigs := g.gm.PackBits(p.Off[rg.sig]) & mask
		for mm := mask &^ sigs; mm != 0; mm &= mm - 1 {
			g.laneStats[bits.TrailingZeros64(mm)].ResetFastSkips += uint64(len(rg.regs))
		}
		for mm := sigs; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			for _, id := range rg.regs {
				cur, next, w := int(p.Off[id]), int(p.NextOff[id]), int(p.WordsOf[id])
				var diff uint64
				for j := 0; j < w; j++ {
					iv := p.Init[cur+j]
					diff |= st[(cur+j)*k+l] ^ iv
					st[(cur+j)*k+l] = iv
					st[(next+j)*k+l] = iv
				}
				if diff != 0 {
					g.laneStats[l].RegCommits++
				}
			}
		}
	}
}

// Poke sets an input node's value in one lane, taking effect on its next
// stepped cycle. Parked lanes accept pokes (they apply when the lane wakes).
func (g *Gang) Poke(lane, nodeID int, v bitvec.BV) {
	g.checkLane(lane)
	g.gm.LanePoke(lane, nodeID, v)
}

// Peek returns a node's current value in one lane.
func (g *Gang) Peek(lane, nodeID int) bitvec.BV {
	g.checkLane(lane)
	return g.gm.LanePeek(lane, nodeID)
}

// PeekMem returns one memory element in one lane.
func (g *Gang) PeekMem(lane, memID, addr int) bitvec.BV {
	g.checkLane(lane)
	return g.gm.LanePeekMem(lane, memID, addr)
}

// PokeMem overwrites one memory element in one lane (loader use).
func (g *Gang) PokeMem(lane, memID, addr int, v bitvec.BV) {
	g.checkLane(lane)
	g.gm.LanePokeMem(lane, memID, addr, v)
}

// LaneStats returns a copy of one lane's counters — the same values a scalar
// FullCycle fed the same stimulus would report.
func (g *Gang) LaneStats(lane int) Stats {
	g.checkLane(lane)
	return g.laneStats[lane]
}

// AggregateStats sums the per-lane counters (EvaluableNodes included, so the
// aggregate activity factor still normalizes correctly).
func (g *Gang) AggregateStats() Stats {
	var agg Stats
	for l := range g.laneStats {
		s := &g.laneStats[l]
		agg.Cycles += s.Cycles
		agg.NodeEvals += s.NodeEvals
		agg.Activations += s.Activations
		agg.Examinations += s.Examinations
		agg.InstrsExecuted += s.InstrsExecuted
		agg.RegCommits += s.RegCommits
		agg.EvaluableNodes += s.EvaluableNodes
		agg.ResetFastSkips += s.ResetFastSkips
	}
	return agg
}

// AttachLaneTracer routes one lane's waveform through t: every cycle the lane
// steps ends with one t.Snapshot over the lane's scalar-layout state image —
// the same bytes a scalar engine's tracer sees. Attach nil to detach.
func (g *Gang) AttachLaneTracer(lane int, t Tracer) {
	g.checkLane(lane)
	g.tracers[lane] = t
}

// ResetLane restores one lane to power-on state (image, memories, counters)
// without touching the others or the gang's liveness mask.
func (g *Gang) ResetLane(lane int) {
	g.checkLane(lane)
	g.FlushObs() // bank earned progress before the aggregate moves backward
	g.gm.ResetLane(lane)
	g.laneStats[lane] = Stats{EvaluableNodes: uint64(g.nCoded)}
	g.laneExec[lane] = 0
	g.recountExecuted()
	if g.obs != nil {
		g.obsFlushed = g.AggregateStats()
	}
}

// Reset restores every lane to power-on state and re-arms all lanes live —
// indistinguishable from a fresh NewGang of the same shape.
func (g *Gang) Reset() {
	g.FlushObs()
	g.gm.Reset()
	for l := range g.laneStats {
		g.laneStats[l] = Stats{EvaluableNodes: uint64(g.nCoded)}
		g.laneExec[l] = 0
	}
	g.live = g.full
	g.steps = 0
	if g.obs != nil {
		g.obsFlushed = g.AggregateStats()
	}
}

// Close releases engine resources — a no-op for the serial gang, present for
// lifecycle symmetry with engine.Sim.
func (g *Gang) Close() {}

// CaptureLane enumerates one lane's complete state as a scalar-layout
// SimState — byte-compatible (through snapshot.Encode) with a capture from a
// scalar FullCycle twin of the lane. The returned state owns fresh slices.
func (g *Gang) CaptureLane(lane int) (*SimState, error) {
	if lane < 0 || lane >= g.k {
		return nil, fmt.Errorf("engine: gang lane %d outside [0,%d)", lane, g.k)
	}
	st := &SimState{
		State:    make([]uint64, g.p.NumWords),
		Mems:     make([][]uint64, len(g.p.Mems)),
		Executed: g.laneExec[lane],
		Stats:    g.laneStats[lane],
	}
	g.gm.ExtractLane(lane, st.State)
	for i := range g.p.Mems {
		st.Mems[i] = make([]uint64, len(g.p.Mems[i].Init))
		g.gm.ExtractLaneMem(i, lane, st.Mems[i])
	}
	return st, nil
}

// RestoreLane overwrites one lane's state from a scalar-layout capture — the
// inverse of CaptureLane, and the cross-shape bridge: a scalar FullCycle
// snapshot restores into a gang lane and vice versa (same design hash). A
// capture that fails validation leaves the lane untouched.
func (g *Gang) RestoreLane(lane int, s *SimState) error {
	if lane < 0 || lane >= g.k {
		return fmt.Errorf("engine: gang lane %d outside [0,%d)", lane, g.k)
	}
	if len(s.State) != g.p.NumWords {
		return fmt.Errorf("engine: state image is %d words, gang lane has %d", len(s.State), g.p.NumWords)
	}
	if len(s.Mems) != len(g.p.Mems) {
		return fmt.Errorf("engine: snapshot has %d memories, gang has %d", len(s.Mems), len(g.p.Mems))
	}
	for i := range s.Mems {
		if len(s.Mems[i]) != len(g.p.Mems[i].Init) {
			return fmt.Errorf("engine: memory %d is %d words, gang has %d", i, len(s.Mems[i]), len(g.p.Mems[i].Init))
		}
	}
	g.gm.InjectLane(lane, s.State)
	for i := range s.Mems {
		g.gm.InjectLaneMem(i, lane, s.Mems[i])
	}
	g.laneExec[lane] = s.Executed
	g.laneStats[lane] = s.Stats
	g.laneStats[lane].EvaluableNodes = uint64(g.nCoded) // engine-derived, same design => same value
	g.recountExecuted()
	if g.obs != nil {
		// Restored history is not newly simulated work: re-baseline so the
		// jump (forward or backward) never reaches the process counters.
		g.obsFlushed = g.AggregateStats()
	}
	return nil
}

// recountExecuted rebuilds the aggregate retired-instruction counter after a
// per-lane restore or reset rewrote one lane's history.
func (g *Gang) recountExecuted() {
	var total uint64
	for _, e := range g.laneExec {
		total += e
	}
	g.gm.Executed = total
}
