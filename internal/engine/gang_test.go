package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
	"gsim/internal/trace"
)

// buildGangDesign compiles a design that exercises every gang execution
// shape: narrow ALU work, a mux-gated accumulator, a wide (>64-bit) datapath,
// a memory with read and write ports, and an extracted reset group.
func buildGangDesign(t *testing.T) (*emit.Program, *ir.Graph) {
	t.Helper()
	b := ir.NewBuilder("gang")
	en := b.Input("en", 1)
	d := b.Input("d", 16)
	rst := b.Input("rst", 1)
	waddr := b.Input("waddr", 4)
	wen := b.Input("wen", 1)

	acc := b.RegInit("acc", 16, bitvec.FromUint64(16, 7))
	b.SetNext(acc, b.Mux(b.R(en), b.AddW(b.R(acc), b.R(d), 16), b.R(acc)))
	acc.ResetSig = rst

	wide := b.Reg("wide", 100)
	b.SetNext(wide, b.Fit(b.Add(b.Shl(b.R(wide), 3), b.Cat(b.R(d), b.R(acc))), 100))

	m := b.Mem("m", 16, 16)
	b.MemWrite("wp", m, b.R(waddr), b.R(acc), b.R(wen))
	rd := b.MemRead("rd", m, b.R(waddr))

	b.Output("o", b.Xor(b.R(acc), b.R(rd)))
	b.Output("wred", b.XorR(b.R(wide)))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	return p, b.G
}

// pokeInputs drives the same random stimulus into one gang lane and its
// scalar twin.
func pokeInputs(g *Gang, lane int, twin *FullCycle, graph *ir.Graph, rng *rand.Rand) {
	for _, name := range []string{"en", "d", "rst", "waddr", "wen"} {
		n := graph.FindNode(name)
		var v bitvec.BV
		switch name {
		case "rst":
			v = bitvec.FromUint64(1, uint64(rng.Intn(10)/9)) // occasional reset pulse
		default:
			v = bitvec.FromUint64(n.Width, rng.Uint64())
		}
		g.Poke(lane, n.ID, v)
		if twin != nil {
			twin.Poke(n.ID, v)
		}
	}
}

// requireLaneEqualsTwin compares a gang lane's complete state (image, mems,
// stats, executed counter) against its scalar twin.
func requireLaneEqualsTwin(t *testing.T, g *Gang, lane int, twin *FullCycle, cycle int) {
	t.Helper()
	st, err := g.CaptureLane(lane)
	if err != nil {
		t.Fatal(err)
	}
	tm := twin.Machine()
	for w := range st.State {
		if st.State[w] != tm.State[w] {
			t.Fatalf("cycle %d lane %d: state word %d = %#x, twin %#x", cycle, lane, w, st.State[w], tm.State[w])
		}
	}
	for mi := range st.Mems {
		for j := range st.Mems[mi] {
			if st.Mems[mi][j] != tm.Mems[mi][j] {
				t.Fatalf("cycle %d lane %d: mem %d word %d = %#x, twin %#x", cycle, lane, mi, j, st.Mems[mi][j], tm.Mems[mi][j])
			}
		}
	}
	if st.Executed != tm.Executed {
		t.Fatalf("cycle %d lane %d: executed %d, twin %d", cycle, lane, st.Executed, tm.Executed)
	}
	if st.Stats != *twin.Stats() {
		t.Fatalf("cycle %d lane %d: stats %+v, twin %+v", cycle, lane, st.Stats, *twin.Stats())
	}
}

// TestGangLockstepScalar drives each lane of a 4-lane gang with its own
// random stimulus and checks every lane stays bit-identical — state, mems,
// stats, waveform — to a scalar FullCycle twin fed the same stimulus.
func TestGangLockstepScalar(t *testing.T) {
	p, graph := buildGangDesign(t)
	const k = 4
	g := NewGang(p, k)
	defer g.Close()

	twins := make([]*FullCycle, k)
	rngs := make([]*rand.Rand, k)
	var gangVCD, twinVCD [k]*bytes.Buffer
	for l := 0; l < k; l++ {
		twins[l] = NewFullCycle(p, EvalKernel)
		rngs[l] = rand.New(rand.NewSource(int64(100 + l)))
		gangVCD[l], twinVCD[l] = &bytes.Buffer{}, &bytes.Buffer{}
		gv, err := trace.NewVCD(gangVCD[l], p, nil, trace.Options{Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		tv, err := trace.NewVCD(twinVCD[l], p, nil, trace.Options{Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		g.AttachLaneTracer(l, gv)
		twins[l].AttachTracer(tv)
	}

	const cycles = 50
	for c := 0; c < cycles; c++ {
		for l := 0; l < k; l++ {
			pokeInputs(g, l, twins[l], graph, rngs[l])
		}
		g.Step()
		for l := 0; l < k; l++ {
			twins[l].Step()
			requireLaneEqualsTwin(t, g, l, twins[l], c)
		}
	}
	for l := 0; l < k; l++ {
		if !bytes.Equal(gangVCD[l].Bytes(), twinVCD[l].Bytes()) {
			t.Fatalf("lane %d VCD diverges from scalar twin (%d vs %d bytes)", l, gangVCD[l].Len(), twinVCD[l].Len())
		}
	}
	if agg := g.AggregateStats(); agg.Cycles != k*cycles {
		t.Fatalf("aggregate cycles = %d, want %d", agg.Cycles, k*cycles)
	}
}

// TestGangParkWake parks and wakes lanes at random and checks a parked lane
// freezes completely (its twin is stepped only on the lane's live cycles) and
// resumes bit-identically.
func TestGangParkWake(t *testing.T) {
	p, graph := buildGangDesign(t)
	const k = 3
	g := NewGang(p, k)
	defer g.Close()
	twins := make([]*FullCycle, k)
	rngs := make([]*rand.Rand, k)
	for l := 0; l < k; l++ {
		twins[l] = NewFullCycle(p, EvalKernel)
		rngs[l] = rand.New(rand.NewSource(int64(200 + l)))
	}
	ctrl := rand.New(rand.NewSource(42))
	for c := 0; c < 80; c++ {
		for l := 0; l < k; l++ {
			if ctrl.Intn(4) == 0 {
				g.SetLive(l, !g.Live(l))
			}
		}
		for l := 0; l < k; l++ {
			if g.Live(l) {
				// Stimulus only lands on live lanes so the twin stream stays
				// aligned; a parked lane's inputs freeze with the rest of it.
				pokeInputs(g, l, twins[l], graph, rngs[l])
			}
		}
		g.Step()
		for l := 0; l < k; l++ {
			if g.Live(l) {
				twins[l].Step()
			}
			requireLaneEqualsTwin(t, g, l, twins[l], c)
		}
	}
	if g.Cycles() != 80 {
		t.Fatalf("gang cycles = %d, want 80", g.Cycles())
	}
}

// TestGangLaneReset checks ResetLane restores power-on state for one lane
// without disturbing the others, and Reset restores the whole gang.
func TestGangLaneReset(t *testing.T) {
	p, graph := buildGangDesign(t)
	g := NewGang(p, 2)
	defer g.Close()
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 10; c++ {
		pokeInputs(g, 0, nil, graph, rng)
		pokeInputs(g, 1, nil, graph, rng)
		g.Step()
	}
	before1, err := g.CaptureLane(1)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]uint64(nil), before1.State...)
	g.ResetLane(0)
	fresh := NewFullCycle(p, EvalKernel)
	requireLaneEqualsTwin(t, g, 0, fresh, -1)
	after1, err := g.CaptureLane(1)
	if err != nil {
		t.Fatal(err)
	}
	for w := range keep {
		if keep[w] != after1.State[w] {
			t.Fatalf("ResetLane(0) disturbed lane 1 at word %d", w)
		}
	}
	g.Reset()
	requireLaneEqualsTwin(t, g, 1, fresh, -2)
	if g.LiveMask() != emit.GangFullMask(2) || g.Cycles() != 0 {
		t.Fatalf("Reset left live=%#x cycles=%d", g.LiveMask(), g.Cycles())
	}
}
