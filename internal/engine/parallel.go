package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
)

// Parallel is the multi-threaded full-cycle engine: the stand-in for
// Verilator's -threads mode. Nodes are levelized (all nodes in one level are
// mutually independent given earlier levels); each level is split across
// persistent workers separated by barriers. Like the real thing, the
// fixed per-level synchronization cost means small designs slow down while
// large designs speed up — the shape Fig. 6 reports.
type Parallel struct {
	base
	threads    int
	chunks     [][][]int32 // level -> worker -> node IDs
	memScratch []int32

	workers   sync.WaitGroup
	startCh   []chan struct{}
	doneCh    chan struct{}
	level     atomic.Int32
	pending   atomic.Int32
	closeOnce sync.Once
}

// NewParallel builds a parallel full-cycle engine with the given worker
// count. byLevel is the graph's levelization (ir.Graph.Levelize).
func NewParallel(p *emit.Program, byLevel [][]int32, threads int) *Parallel {
	if threads < 1 {
		threads = 1
	}
	e := &Parallel{base: newBase(p), threads: threads, doneCh: make(chan struct{})}
	// Split each level into per-worker chunks, skipping nodes with no code
	// and balancing by instruction count.
	for _, level := range byLevel {
		var ids []int32
		total := int64(0)
		for _, id := range level {
			if r := p.Code[id]; r.Len() > 0 {
				ids = append(ids, id)
				total += int64(r.Len())
			}
		}
		chunk := make([][]int32, threads)
		if len(ids) > 0 {
			per := total/int64(threads) + 1
			w, acc := 0, int64(0)
			for _, id := range ids {
				chunk[w] = append(chunk[w], id)
				acc += int64(p.Code[id].Len())
				if acc >= per && w < threads-1 {
					w++
					acc = 0
				}
			}
		}
		e.chunks = append(e.chunks, chunk)
	}
	e.startCh = make([]chan struct{}, threads)
	e.workers.Add(threads)
	for w := 0; w < threads; w++ {
		e.startCh[w] = make(chan struct{}, 1)
		go e.worker(w)
	}
	return e
}

// worker processes its chunk of every level, synchronizing with peers via an
// atomic countdown per level; the last worker through a level advances it.
// It exits when its start channel is closed.
func (e *Parallel) worker(w int) {
	defer e.workers.Done()
	for range e.startCh[w] {
		for lv := 0; lv < len(e.chunks); lv++ {
			// Wait for the level to open. Yield while spinning: worker
			// counts routinely exceed core counts (the experiments sweep
			// thread counts the way the paper does), and a pure spin then
			// starves the workers that still hold work.
			for e.level.Load() < int32(lv) {
				runtime.Gosched()
			}
			for _, id := range e.chunks[lv][w] {
				e.m.ExecRange(e.m.Prog.Code[id])
			}
			if e.pending.Add(-1) == 0 {
				// Last worker out resets the countdown and opens the next level.
				e.pending.Store(int32(e.threads))
				e.level.Add(1)
			}
		}
		e.doneCh <- struct{}{}
	}
}

// Reset restores initial state.
func (e *Parallel) Reset() { e.m.Reset() }

// Step simulates one cycle across all workers.
func (e *Parallel) Step() {
	e.stats.Cycles++
	e.level.Store(0)
	e.pending.Store(int32(e.threads))
	for w := 0; w < e.threads; w++ {
		e.startCh[w] <- struct{}{}
	}
	for w := 0; w < e.threads; w++ {
		<-e.doneCh
	}
	e.stats.NodeEvals += uint64(len(e.coded))
	e.stats.InstrsExecuted += uint64(len(e.m.Prog.Instrs))
	e.commitRegs()
	e.memScratch = e.commitWrites(e.memScratch[:0])
	e.applyResets(nil)
}

// Close shuts down the worker goroutines and blocks until every one has
// exited. It must not be called concurrently with Step; calling it more than
// once is safe.
func (e *Parallel) Close() {
	e.closeOnce.Do(func() {
		for w := 0; w < e.threads; w++ {
			close(e.startCh[w])
		}
		e.workers.Wait()
	})
}

// Poke sets an input value.
func (e *Parallel) Poke(nodeID int, v bitvec.BV) { e.m.Poke(nodeID, v) }
