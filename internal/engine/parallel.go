package engine

import (
	"gsim/internal/bitvec"
	"gsim/internal/emit"
)

// Parallel is the multi-threaded full-cycle engine: the stand-in for
// Verilator's -threads mode. Nodes are levelized (all nodes in one level are
// mutually independent given earlier levels); each level is split across
// persistent workers separated by barriers (workerPool). Like the real
// thing, the fixed per-level synchronization cost means small designs slow
// down while large designs speed up — the shape Fig. 6 reports.
//
// In kernel mode every (level, worker) chunk is fused into one bound closure
// chain (superinstructions, width classes, operand pointers pre-resolved),
// so a worker's share of a level is a single sweep with no per-node range
// lookups and no per-instruction dispatch; kernel-nofuse keeps the PR-2
// per-instruction closure concatenation.
type Parallel struct {
	base
	threads    int
	chunks     [][][]int32         // level -> worker -> node IDs
	fusedB     [][][]emit.BoundFn  // EvalKernel: level -> worker -> bound chain
	fused      [][][]emit.KernelFn // EvalKernelNoFuse: baseline closures
	pool       *workerPool
	memScratch []int32
}

// NewParallel builds a parallel full-cycle engine with the given worker
// count. byLevel is the graph's levelization (ir.Graph.Levelize).
func NewParallel(p *emit.Program, byLevel [][]int32, threads int, mode EvalMode) *Parallel {
	if threads < 1 {
		threads = 1
	}
	e := &Parallel{base: newBase(p, mode), threads: threads}
	// Split each level into per-worker chunks, skipping nodes with no code
	// and balancing by instruction count.
	for _, level := range byLevel {
		var ids []int32
		total := int64(0)
		for _, id := range level {
			if r := p.Code[id]; r.Len() > 0 {
				ids = append(ids, id)
				total += int64(r.Len())
			}
		}
		chunk := make([][]int32, threads)
		if len(ids) > 0 {
			per := total/int64(threads) + 1
			w, acc := 0, int64(0)
			for _, id := range ids {
				chunk[w] = append(chunk[w], id)
				acc += int64(p.Code[id].Len())
				if acc >= per && w < threads-1 {
					w++
					acc = 0
				}
			}
		}
		e.chunks = append(e.chunks, chunk)
	}
	switch mode {
	case EvalKernel:
		// Each (level, worker) chunk's concatenated member instructions
		// compile into one bound chain: superinstruction fusion, width
		// classes, operand pointers resolved into this engine's machine.
		e.fusedB = make([][][]emit.BoundFn, len(e.chunks))
		for lv, chunk := range e.chunks {
			e.fusedB[lv] = make([][]emit.BoundFn, threads)
			for w, ids := range chunk {
				e.fusedB[lv][w] = p.CompileNodesBound(e.m, ids)
			}
		}
	case EvalKernelNoFuse:
		// The PR-2 shape: the per-instruction baseline table concatenated
		// per chunk.
		e.fused = make([][][]emit.KernelFn, len(e.chunks))
		for lv, chunk := range e.chunks {
			e.fused[lv] = make([][]emit.KernelFn, threads)
			for w, ids := range chunk {
				var fns []emit.KernelFn
				for _, id := range ids {
					r := p.Code[id]
					fns = append(fns, p.KernelsBase[r.Start:r.End]...)
				}
				e.fused[lv][w] = fns
			}
		}
	}
	e.pool = newWorkerPool(threads, len(e.chunks), e.runLevel)
	e.obsLevels = len(e.chunks)
	e.obsOrigLevels = len(e.chunks)
	return e
}

// runLevel executes worker w's chunk of level lv.
func (e *Parallel) runLevel(w, lv int) {
	if e.fusedB != nil {
		for _, f := range e.fusedB[lv][w] {
			f()
		}
		return
	}
	if e.fused != nil {
		st := e.m.State
		for _, f := range e.fused[lv][w] {
			f(st, e.m)
		}
		return
	}
	for _, id := range e.chunks[lv][w] {
		e.m.ExecRange(e.m.Prog.Code[id])
	}
}

// Reset restores complete power-on state (image, memories, counters). The
// worker pool is untouched — workers are stateless between cycles — so Reset
// never recompiles and composes with Close in either order.
func (e *Parallel) Reset() { e.resetBase() }

// Step simulates one cycle across all workers.
func (e *Parallel) Step() {
	e.stats.Cycles++
	e.pool.cycle()
	e.stats.NodeEvals += uint64(len(e.coded))
	e.countInstrs(uint64(len(e.m.Prog.Instrs)))
	e.commitRegs()
	e.memScratch = e.commitWrites(e.memScratch[:0])
	e.applyResets(nil)
	e.sampleTrace()
}

// Close shuts down the worker goroutines and blocks until every one has
// exited. It must not be called concurrently with Step; calling it more than
// once is safe.
func (e *Parallel) Close() { e.pool.Close() }

// Poke sets an input value.
func (e *Parallel) Poke(nodeID int, v bitvec.BV) { e.m.Poke(nodeID, v) }
