package engine

import (
	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
)

// Reference is the golden-model simulator: it interprets the graph directly
// through the bitvec reference semantics, with no compiled program, no
// activity tracking, and no sharing with the optimized paths. It is slow and
// exists so every other engine has an independent oracle.
type Reference struct {
	g     *ir.Graph
	order []int32
	vals  []bitvec.BV // current value per node
	next  []bitvec.BV // next value per register
	mems  [][]bitvec.BV
	stats Stats
}

// NewReference builds the golden model for a compacted graph.
func NewReference(g *ir.Graph) (*Reference, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	r := &Reference{g: g, order: order}
	r.vals = make([]bitvec.BV, len(g.Nodes))
	r.next = make([]bitvec.BV, len(g.Nodes))
	r.mems = make([][]bitvec.BV, len(g.Mems))
	r.Reset()
	for _, n := range g.Nodes {
		if n.HasCode() {
			r.stats.EvaluableNodes++
		}
	}
	return r, nil
}

// Reset restores initial values.
func (r *Reference) Reset() {
	for _, n := range r.g.Nodes {
		if n == nil {
			continue
		}
		v := bitvec.New(n.Width)
		if n.Kind == ir.KindReg && n.Init.Width > 0 {
			v = bitvec.Pad(n.Init, n.Width)
		}
		r.vals[n.ID] = v
		r.next[n.ID] = v
	}
	for mi, m := range r.g.Mems {
		r.mems[mi] = make([]bitvec.BV, m.Depth)
		for a := 0; a < m.Depth; a++ {
			r.mems[mi][a] = bitvec.New(m.Width)
			if m.Init != nil {
				if v, ok := m.Init[a]; ok {
					r.mems[mi][a] = bitvec.Pad(v, m.Width)
				}
			}
		}
	}
}

func (r *Reference) read(n *ir.Node) bitvec.BV { return r.vals[n.ID] }

// Step simulates one cycle.
func (r *Reference) Step() {
	r.stats.Cycles++
	type write struct {
		mem  int
		addr uint64
		data bitvec.BV
		en   bool
	}
	var writes []write
	for _, id := range r.order {
		n := r.g.Nodes[id]
		switch n.Kind {
		case ir.KindInput:
			// poked externally
		case ir.KindComb:
			r.vals[id] = ir.EvalExpr(n.Expr, r.read)
			r.stats.NodeEvals++
		case ir.KindReg:
			r.next[id] = ir.EvalExpr(n.Expr, r.read)
			r.stats.NodeEvals++
		case ir.KindMemRead:
			addr := ir.EvalExpr(n.Expr, r.read)
			a := addr.Uint64()
			if len(addr.W) > 1 {
				for _, w := range addr.W[1:] {
					if w != 0 {
						a = uint64(n.Mem.Depth)
					}
				}
			}
			if a < uint64(n.Mem.Depth) {
				r.vals[id] = r.mems[n.Mem.ID][a].Clone()
			} else {
				r.vals[id] = bitvec.New(n.Width)
			}
			r.stats.NodeEvals++
		case ir.KindMemWrite:
			w := write{
				mem:  n.Mem.ID,
				addr: ir.EvalExpr(n.WAddr, r.read).Uint64(),
				data: ir.EvalExpr(n.WData, r.read),
				en:   !ir.EvalExpr(n.WEn, r.read).IsZero(),
			}
			writes = append(writes, w)
			r.stats.NodeEvals++
		}
	}
	// Commit registers.
	for _, id := range r.order {
		n := r.g.Nodes[id]
		if n.Kind == ir.KindReg {
			r.vals[id] = r.next[id]
		}
	}
	// Commit memory writes.
	for _, w := range writes {
		if w.en && w.addr < uint64(len(r.mems[w.mem])) {
			r.mems[w.mem][w.addr] = bitvec.Pad(w.data, r.g.Mems[w.mem].Width)
		}
	}
	// Extracted resets (present only if the reset pass ran on this graph).
	for _, n := range r.g.Nodes {
		if n.Kind == ir.KindReg && n.ResetSig != nil && !r.vals[n.ResetSig.ID].IsZero() {
			init := bitvec.Pad(n.Init, n.Width)
			r.vals[n.ID] = init
			r.next[n.ID] = init
		}
	}
}

// Peek returns a node's current value.
func (r *Reference) Peek(nodeID int) bitvec.BV { return r.vals[nodeID] }

// Poke sets an input value.
func (r *Reference) Poke(nodeID int, v bitvec.BV) {
	r.vals[nodeID] = bitvec.Pad(v, r.g.Nodes[nodeID].Width)
}

// PeekMem returns one memory element.
func (r *Reference) PeekMem(memID, addr int) bitvec.BV { return r.mems[memID][addr] }

// PokeMem overwrites one memory element.
func (r *Reference) PokeMem(memID, addr int, v bitvec.BV) {
	r.mems[memID][addr] = bitvec.Pad(v, r.g.Mems[memID].Width)
}

// Stats returns counters.
func (r *Reference) Stats() *Stats { return &r.stats }

// Machine returns nil: the reference has no compiled program.
func (r *Reference) Machine() *emit.Machine { return nil }

// Close is a no-op: the reference interpreter owns no goroutines.
func (r *Reference) Close() {}

// Graph returns the graph this reference simulates.
func (r *Reference) Graph() *ir.Graph { return r.g }
