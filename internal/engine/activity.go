package engine

import (
	"math/bits"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

// ActivationMode selects how successor activation is performed after a node's
// value changes (§III-B "Activation overhead optimization").
type ActivationMode uint8

// Activation strategies.
const (
	// ActBranch tests the change flag once and loops over successors only
	// when set (paper Listing 2 lines 4-5).
	ActBranch ActivationMode = iota
	// ActBranchless ORs a change mask into every successor's active word,
	// trading extra ALU work for the removal of a data-dependent branch —
	// ESSENT's strategy.
	ActBranchless
	// ActCostModel picks per node: branchless when the successor count is at
	// most BranchlessMax, branching otherwise — GSIM's strategy.
	ActCostModel
)

// ActivityConfig selects the essential-signal engine's optional techniques.
type ActivityConfig struct {
	// MultiBitCheck enables the fast path that examines 64 active bits with
	// one word test (paper Listing 4).
	MultiBitCheck bool
	// Activation selects the successor-activation strategy.
	Activation ActivationMode
	// BranchlessMax is the cost-model threshold for ActCostModel: nodes with
	// more successor supernodes than this use the branching strategy.
	BranchlessMax int
	// Coarsen enables adaptive level coarsening in the parallel engine
	// (ParallelActivity): consecutive sparse levels of the shard schedule
	// merge into one barrier span wherever the cross-level edges permit,
	// cutting barriers per cycle on deep, narrow designs. The serial engine
	// has no barriers and ignores it.
	Coarsen bool
	// CoarsenGrain overrides the coarsening grain (target minimum evaluation
	// weight per merged level); zero selects the adaptive default (mean
	// original level weight). See partition.CoarsenOptions.
	CoarsenGrain int64
}

// DefaultBranchlessMax is the activation cost-model threshold used when the
// config leaves it zero.
const DefaultBranchlessMax = 6

// Activity is the essential-signal engine (paper Listing 2/3/4): every
// supernode has an active bit; only active supernodes are evaluated; value
// changes activate reader supernodes.
type Activity struct {
	base
	part *partition.Result
	cfg  ActivityConfig
	*activationPlan

	active []uint64 // one bit per supernode

	// Kernel mode: per-supernode fused closure chains and the old-value
	// parking buffer their change tracking uses. nil under EvalInterp.
	supKerns []supKernel

	scratch     []uint64
	pending     []int32
	pendingFlag []bool
	memScratch  []int32
}

// activationPlan is the supernode-level activation policy shared by the
// serial (Activity) and parallel (ParallelActivity) essential-signal
// engines: per-node reader-supernode lists, the per-node activation
// strategy, and the supernodes re-armed by memory writes and reset pokes.
// Keeping it in one place guarantees the two engines activate identically —
// the equivalence tests assume exactly that.
type activationPlan struct {
	supStart []int32 // members[supStart[s]:supStart[s+1]] are supernode s's nodes
	members  []int32

	// Per-node tables (indexed by node ID).
	kind      []ir.NodeKind
	succStart []int32
	succSups  []int32 // flattened reader-supernode lists
	useBranch []bool

	maxWords int32 // widest node value, sizing the old-value scratch buffers

	memReadSups [][]int32 // memory ID -> read-port supernodes

	// resetRegSups maps a reset signal's node ID to the supernodes holding
	// its registers. Poking a reset signal re-arms those supernodes so the
	// registers recompute their next values the cycle reset deasserts —
	// after reset extraction the signal no longer appears in their
	// expressions, so normal dataflow activation cannot reach them.
	resetRegSups map[int32][]int32
}

// buildActivationPlan derives the activation policy for a compiled program
// and partition. resets is the engine's reset grouping (base.resets).
func buildActivationPlan(p *emit.Program, part *partition.Result, cfg ActivityConfig, resets []resetGroup) *activationPlan {
	g := p.Graph
	n := len(g.Nodes)
	pl := &activationPlan{maxWords: 1}

	// Flatten supernode membership.
	pl.supStart = make([]int32, part.Count()+1)
	for s, m := range part.Members {
		pl.supStart[s+1] = pl.supStart[s] + int32(len(m))
		pl.members = append(pl.members, m...)
	}

	// Node kind table and max value width.
	pl.kind = make([]ir.NodeKind, n)
	for _, node := range g.Nodes {
		pl.kind[node.ID] = node.Kind
		if w := p.WordsOf[node.ID]; w > pl.maxWords {
			pl.maxWords = w
		}
	}

	// Reader-supernode lists. For combinational nodes the node's own
	// supernode is excluded (members of one supernode are evaluated together
	// in dependence order, so intra-supernode edges need no activation);
	// registers and inputs keep every reader because their activations land
	// at commit/poke time for the *next* sweep.
	adj := g.BuildAdjacency()
	pl.succStart = make([]int32, n+1)
	for _, node := range g.Nodes {
		id := node.ID
		own := part.SupOf[id]
		seen := map[int32]bool{}
		for _, r := range adj.Succs[id] {
			s := part.SupOf[r]
			if s < 0 || seen[s] {
				continue
			}
			combLike := node.Kind == ir.KindComb || node.Kind == ir.KindMemRead
			if combLike && s == own {
				continue
			}
			seen[s] = true
			pl.succSups = append(pl.succSups, s)
		}
		pl.succStart[id+1] = int32(len(pl.succSups))
	}

	// Per-node activation strategy.
	pl.useBranch = make([]bool, n)
	for _, node := range g.Nodes {
		id := node.ID
		nsuccs := int(pl.succStart[id+1] - pl.succStart[id])
		switch cfg.Activation {
		case ActBranch:
			pl.useBranch[id] = true
		case ActBranchless:
			pl.useBranch[id] = false
		case ActCostModel:
			pl.useBranch[id] = nsuccs > cfg.BranchlessMax
		}
	}

	// Memory read-port supernodes, activated when a write changes contents.
	pl.memReadSups = make([][]int32, len(g.Mems))
	for mi, mem := range g.Mems {
		seen := map[int32]bool{}
		for _, rp := range mem.Reads {
			s := part.SupOf[rp.ID]
			if s >= 0 && !seen[s] {
				seen[s] = true
				pl.memReadSups[mi] = append(pl.memReadSups[mi], s)
			}
		}
	}

	if len(resets) > 0 {
		pl.resetRegSups = map[int32][]int32{}
		for _, rg := range resets {
			seen := map[int32]bool{}
			for _, reg := range rg.regs {
				s := part.SupOf[reg]
				if s >= 0 && !seen[s] {
					seen[s] = true
					pl.resetRegSups[rg.sig] = append(pl.resetRegSups[rg.sig], s)
				}
			}
		}
	}
	return pl
}

// NewActivity builds the essential-signal engine over a compiled program and
// a supernode partition of the same graph. In kernel mode (the default)
// every supernode is fused into one closure chain; EvalInterp selects the
// per-instruction reference interpreter.
func NewActivity(p *emit.Program, part *partition.Result, cfg ActivityConfig, mode EvalMode) *Activity {
	if cfg.BranchlessMax == 0 {
		cfg.BranchlessMax = DefaultBranchlessMax
	}
	a := &Activity{base: newBase(p, mode), part: part, cfg: cfg}
	a.activationPlan = buildActivationPlan(p, part, cfg, a.resets)
	a.active = make([]uint64, (part.Count()+63)/64)
	scratchWords := a.maxWords
	if mode != EvalInterp {
		var kw int32
		a.supKerns, kw = buildSupKernels(p, a.m, a.activationPlan, mode)
		if kw > scratchWords {
			scratchWords = kw
		}
	}
	a.scratch = make([]uint64, scratchWords)
	a.pendingFlag = make([]bool, len(p.Graph.Nodes))

	a.activateAll()
	return a
}

func (a *Activity) activateAll() {
	for i := range a.active {
		a.active[i] = ^uint64(0)
	}
	if n := uint(a.part.Count()) % 64; n != 0 && len(a.active) > 0 {
		a.active[len(a.active)-1] = (uint64(1) << n) - 1
	}
}

// Reset restores complete power-on state (image, memories, counters) and
// re-arms full evaluation — bit-for-bit the post-construction shape, with no
// recompilation.
func (a *Activity) Reset() {
	a.resetBase()
	a.activateAll()
	for _, id := range a.pending {
		a.pendingFlag[id] = false
	}
	a.pending = a.pending[:0]
}

// Close is a no-op: the serial engine owns no goroutines. It exists so every
// engine satisfies the same lifecycle (session pools Close uniformly).
func (a *Activity) Close() {}

// Poke sets an input and activates its readers when the value changes.
func (a *Activity) Poke(nodeID int, v bitvec.BV) {
	if a.m.Poke(nodeID, v) {
		a.activateReaders(int32(nodeID))
		for _, s := range a.resetRegSups[int32(nodeID)] {
			a.active[s>>6] |= uint64(1) << uint(s&63)
		}
	}
}

func (a *Activity) activateReaders(id int32) {
	for _, s := range a.succSups[a.succStart[id]:a.succStart[id+1]] {
		a.active[s>>6] |= uint64(1) << uint(s&63)
	}
	a.stats.Activations += uint64(a.succStart[id+1] - a.succStart[id])
}

// Step simulates one cycle: sweep active supernodes in topological order,
// then commit registers and memory writes, then run the reset slow path.
func (a *Activity) Step() {
	a.stats.Cycles++
	if a.cfg.MultiBitCheck {
		for wi := range a.active {
			a.stats.Examinations++
			for a.active[wi] != 0 {
				b := bits.TrailingZeros64(a.active[wi])
				a.active[wi] &^= uint64(1) << uint(b)
				a.stats.Examinations++
				a.evalSupernode(int32(wi<<6 + b))
			}
		}
	} else {
		nSups := int32(a.part.Count())
		for s := int32(0); s < nSups; s++ {
			a.stats.Examinations++
			w, b := s>>6, uint(s&63)
			if a.active[w]&(1<<b) != 0 {
				a.active[w] &^= 1 << b
				a.evalSupernode(s)
			}
		}
	}
	a.commit()
	a.sampleTrace()
}

// evalSupernode dispatches to the fused kernel chain or the interpreter
// sweep, whichever the engine was built with.
func (a *Activity) evalSupernode(s int32) {
	if a.supKerns != nil {
		a.evalSupernodeKernel(s)
		return
	}
	p := a.m.Prog
	st := a.m.State
	for k := a.supStart[s]; k < a.supStart[s+1]; k++ {
		id := a.members[k]
		code := p.Code[id]
		a.stats.NodeEvals++
		a.countInstrs(uint64(code.Len()))
		switch a.kind[id] {
		case ir.KindReg:
			a.m.Exec(code.Start, code.End)
			if !a.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
				a.pendingFlag[id] = true
				a.pending = append(a.pending, id)
			}
		case ir.KindMemWrite:
			a.m.Exec(code.Start, code.End)
		default: // comb, memread
			off, w := p.Off[id], p.WordsOf[id]
			old := a.scratch[:w]
			copy(old, st[off:off+w])
			a.m.Exec(code.Start, code.End)
			var diff uint64
			for i := int32(0); i < w; i++ {
				diff |= old[i] ^ st[off+i]
			}
			a.activate(id, diff)
		}
	}
}

// evalSupernodeKernel is the closure-threaded path: park the old values of
// every change-tracked member, run the supernode's fused closure chain, then
// diff and activate. It produces the same state trajectory, activations, and
// stat counters as the interpreter path (activation bit-ORs commute, and a
// member's value slot is written only by its own instructions).
func (a *Activity) evalSupernodeKernel(s int32) {
	sk := &a.supKerns[s]
	m := a.m
	st := m.State
	scr := a.scratch
	for _, t := range sk.track {
		copy(scr[t.scr:t.scr+t.w], st[t.off:t.off+t.w])
	}
	sk.sweep(st, m)
	a.stats.NodeEvals += sk.nodes
	a.countInstrs(sk.instrs)
	for _, t := range sk.track {
		var diff uint64
		for i := int32(0); i < t.w; i++ {
			diff |= scr[t.scr+i] ^ st[t.off+i]
		}
		a.activate(t.id, diff)
	}
	p := m.Prog
	for _, id := range sk.regs {
		if !a.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
			a.pendingFlag[id] = true
			a.pending = append(a.pending, id)
		}
	}
}

// activate applies the node's activation strategy given the XOR difference
// of its old and new value.
func (a *Activity) activate(id int32, diff uint64) {
	start, end := a.succStart[id], a.succStart[id+1]
	if start == end {
		return
	}
	if a.useBranch[id] {
		if diff != 0 {
			for _, s := range a.succSups[start:end] {
				a.active[s>>6] |= uint64(1) << uint(s&63)
			}
			a.stats.Activations += uint64(end - start)
		}
		return
	}
	// Branchless: mask is all-ones iff diff != 0.
	m := uint64(0) - ((diff | -diff) >> 63)
	for _, s := range a.succSups[start:end] {
		a.active[s>>6] |= (uint64(1) << uint(s&63)) & m
	}
	a.stats.Activations += uint64(end - start)
}

func (a *Activity) commit() {
	p := a.m.Prog
	st := a.m.State
	// Registers marked pending during evaluation have next != cur.
	for _, id := range a.pending {
		a.pendingFlag[id] = false
		cur, next, w := p.Off[id], p.NextOff[id], p.WordsOf[id]
		copy(st[cur:cur+w], st[next:next+w])
		a.stats.RegCommits++
		a.activateReaders(id)
	}
	a.pending = a.pending[:0]

	// Memory writes; content changes re-arm the read ports.
	a.memScratch = a.commitWrites(a.memScratch[:0])
	for _, memID := range a.memScratch {
		for _, s := range a.memReadSups[memID] {
			a.active[s>>6] |= uint64(1) << uint(s&63)
		}
	}

	// Reset slow path: one check per reset *signal* instead of one per
	// register with a reset port (paper Listing 6).
	a.applyResets(a.activateReaders)
}

func wordsEqual(st []uint64, a, b, w int32) bool {
	for i := int32(0); i < w; i++ {
		if st[a+i] != st[b+i] {
			return false
		}
	}
	return true
}
