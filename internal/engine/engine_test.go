package engine

import (
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

// buildCounter returns a compiled enable-gated counter design.
func buildCounter(t *testing.T) (*emit.Program, *ir.Graph, *ir.Node, *ir.Node) {
	t.Helper()
	b := ir.NewBuilder("cnt")
	en := b.Input("en", 1)
	r := b.Reg("c", 8)
	b.SetNext(r, b.Mux(b.R(en), b.AddW(b.R(r), b.C(8, 1), 8), b.R(r)))
	b.Output("o", b.R(r))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	return p, b.G, b.G.FindNode("en"), b.G.FindNode("c")
}

func TestFullCycleCounter(t *testing.T) {
	p, _, en, c := buildCounter(t)
	sim := NewFullCycle(p, EvalKernel)
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 5)
	if got := sim.Peek(c.ID).Uint64(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	sim.Poke(en.ID, bitvec.New(1))
	StepN(sim, 3)
	if got := sim.Peek(c.ID).Uint64(); got != 5 {
		t.Fatalf("gated counter moved to %d", got)
	}
	sim.Reset()
	if got := sim.Peek(c.ID).Uint64(); got != 0 {
		t.Fatalf("reset left counter at %d", got)
	}
}

func activityFor(t *testing.T, p *emit.Program, g *ir.Graph, kind partition.Kind, cfg ActivityConfig) *Activity {
	t.Helper()
	part := partition.Build(g, kind, 4)
	return NewActivity(p, part, cfg, EvalKernel)
}

func TestActivitySkipsIdleWork(t *testing.T) {
	p, g, en, c := buildCounter(t)
	sim := activityFor(t, p, g, partition.Enhanced, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel})
	// Cycle with enable off and nothing changing: after the first full
	// evaluation, evals per cycle must drop to ~zero.
	StepN(sim, 2)
	evalsBefore := sim.Stats().NodeEvals
	StepN(sim, 10)
	idleEvals := sim.Stats().NodeEvals - evalsBefore
	if idleEvals != 0 {
		t.Fatalf("idle circuit evaluated %d nodes over 10 cycles", idleEvals)
	}
	// Enabling re-activates and counts.
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 5)
	if got := sim.Peek(c.ID).Uint64(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if sim.Stats().ActivityFactor() >= 1 {
		t.Fatal("activity factor should be below 1")
	}
}

func TestActivityModesAgree(t *testing.T) {
	for _, kind := range []partition.Kind{partition.None, partition.MFFC, partition.Enhanced} {
		for _, cfg := range []ActivityConfig{
			{Activation: ActBranch},
			{Activation: ActBranchless},
			{MultiBitCheck: true, Activation: ActCostModel},
		} {
			p, g, en, c := buildCounter(t)
			sim := activityFor(t, p, g, kind, cfg)
			sim.Poke(en.ID, bitvec.FromUint64(1, 1))
			StepN(sim, 7)
			sim.Poke(en.ID, bitvec.New(1))
			StepN(sim, 2)
			if got := sim.Peek(c.ID).Uint64(); got != 7 {
				t.Fatalf("kind %v cfg %+v: counter = %d, want 7", kind, cfg, got)
			}
		}
	}
}

func TestParallelMatchesFullCycle(t *testing.T) {
	for _, threads := range []int{1, 2, 3} {
		p1, _, en1, c1 := buildCounter(t)
		full := NewFullCycle(p1, EvalKernel)
		p2, g2, en2, c2 := buildCounter(t)
		order := make([]int32, len(g2.Nodes))
		for i := range order {
			order[i] = int32(i)
		}
		_, byLevel := g2.Levelize(order)
		par := NewParallel(p2, byLevel, threads, EvalKernel)
		defer par.Close()
		full.Poke(en1.ID, bitvec.FromUint64(1, 1))
		par.Poke(en2.ID, bitvec.FromUint64(1, 1))
		for i := 0; i < 20; i++ {
			full.Step()
			par.Step()
			if a, b := full.Peek(c1.ID).Uint64(), par.Peek(c2.ID).Uint64(); a != b {
				t.Fatalf("threads=%d cycle %d: %d vs %d", threads, i, a, b)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p, g, en, _ := buildCounter(t)
	sim := activityFor(t, p, g, partition.Enhanced, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel})
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 10)
	st := sim.Stats()
	if st.Cycles != 10 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if st.NodeEvals == 0 || st.Examinations == 0 {
		t.Fatalf("counters not accumulating: %+v", st)
	}
	if st.RegCommits == 0 {
		t.Fatal("register commits not counted")
	}
}

// TestResetSlowPath builds a register population behind one reset signal and
// checks that the extracted slow path forces init values and that the
// ResetFastSkips counter reflects the per-register checks avoided.
func TestResetSlowPath(t *testing.T) {
	b := ir.NewBuilder("rst")
	rst := b.Input("reset", 1)
	d := b.Input("d", 8)
	var regs []*ir.Node
	for i := 0; i < 6; i++ {
		r := b.RegInit("r"+string(rune('0'+i)), 8, bitvec.FromUint64(8, uint64(i+1)))
		// Pre-extracted form: fast path without the reset mux.
		b.SetNext(r, b.AddW(b.R(d), b.C(8, uint64(i)), 8))
		r.ResetSig = rst
		regs = append(regs, r)
	}
	sum := b.R(regs[0])
	for _, r := range regs[1:] {
		sum = b.Xor(sum, b.R(r))
	}
	b.Output("o", sum)
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	part := partition.Build(b.G, partition.Enhanced, 4)
	sim := NewActivity(p, part, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel}, EvalKernel)

	dn := b.G.FindNode("d")
	sim.Poke(dn.ID, bitvec.FromUint64(8, 0x40))
	StepN(sim, 2)
	r0 := b.G.FindNode("r0")
	if got := sim.Peek(r0.ID).Uint64(); got != 0x40 {
		t.Fatalf("r0 = %#x, want 0x40", got)
	}
	// Assert reset: registers return to init at end of cycle.
	sim.Poke(b.G.FindNode("reset").ID, bitvec.FromUint64(1, 1))
	sim.Step()
	if got := sim.Peek(r0.ID).Uint64(); got != 1 {
		t.Fatalf("r0 after reset = %#x, want 1 (init)", got)
	}
	// Deassert: normal operation must resume the very next cycle.
	sim.Poke(b.G.FindNode("reset").ID, bitvec.New(1))
	sim.Poke(dn.ID, bitvec.FromUint64(8, 0x23))
	sim.Step()
	if got := sim.Peek(r0.ID).Uint64(); got != 0x23 {
		t.Fatalf("r0 after deassert = %#x, want 0x23", got)
	}
	if sim.Stats().ResetFastSkips == 0 {
		t.Fatal("reset fast-path skips not counted")
	}
}

func TestReferenceAgainstFullCycle(t *testing.T) {
	p, g, en, c := buildCounter(t)
	full := NewFullCycle(p, EvalKernel)
	ref, err := NewReference(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		v := bitvec.FromUint64(1, uint64(i%3)&1)
		full.Poke(en.ID, v)
		ref.Poke(en.ID, v)
		full.Step()
		ref.Step()
		if a, b := full.Peek(c.ID), ref.Peek(c.ID); !a.EqValue(b) {
			t.Fatalf("cycle %d: fullcycle %s vs reference %s", i, a, b)
		}
	}
}
