package engine

import "gsim/internal/obs"

// Metrics is the engine-layer observability bundle: process-wide counters
// every attached engine flushes into. One bundle serves all engines in a
// process (all sessions of a server), so the /metrics view is the fleet of
// simulations in aggregate — per-session numbers stay on Stats.
//
// Flushing is amortized: engines accumulate into their existing Stats block
// (unsynchronized, single-goroutine) and fold the delta into these counters
// every obsFlushEvery cycles plus once on Reset/Close/FlushObs. The per-Step
// cost with a bundle attached is one branch; with none attached, one nil
// check — that gap is what BenchmarkMetricsOverhead pins under 2%.
type Metrics struct {
	Cycles         *obs.Counter
	NodeEvals      *obs.Counter
	Instrs         *obs.Counter
	Activations    *obs.Counter
	Examinations   *obs.Counter
	RegCommits     *obs.Counter
	ResetFastSkips *obs.Counter
	// BarrierWaits counts worker-pool level barriers crossed: cycles × the
	// engine's scheduled levels. Serial engines contribute zero.
	BarrierWaits *obs.Counter
	// ActiveRatio is the paper's activity factor af over each flushing
	// engine's lifetime (last engine to flush wins; with one dominant design
	// per replica this is the signal the paper's model wants).
	ActiveRatio *obs.Gauge
	// SchedLevels / SchedLevelsOrig expose the (coarsened) barrier schedule
	// depth of the most recently flushed level-scheduled engine.
	SchedLevels     *obs.Gauge
	SchedLevelsOrig *obs.Gauge
}

// NewMetrics registers the engine metric family in r (idempotent — every
// caller sharing r gets the same instances).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Cycles:          r.Counter("gsim_engine_cycles_total", "Simulated clock cycles across all engines."),
		NodeEvals:       r.Counter("gsim_engine_node_evals_total", "Node evaluations performed (the paper's active-node count)."),
		Instrs:          r.Counter("gsim_engine_instrs_total", "Compiled kernel instructions retired (kernel dispatches)."),
		Activations:     r.Counter("gsim_engine_activations_total", "Successor-activation operations."),
		Examinations:    r.Counter("gsim_engine_examinations_total", "Active-bit/word examinations (the paper's Aexam)."),
		RegCommits:      r.Counter("gsim_engine_reg_commits_total", "Register commits that changed a value."),
		ResetFastSkips:  r.Counter("gsim_engine_reset_fast_skips_total", "Reset checks skipped by the slow-path optimization."),
		BarrierWaits:    r.Counter("gsim_engine_barrier_waits_total", "Worker-pool level barriers crossed (cycles x scheduled levels)."),
		ActiveRatio:     r.Gauge("gsim_engine_active_ratio", "Activity factor af of the most recently flushed engine."),
		SchedLevels:     r.Gauge("gsim_engine_sched_levels", "Scheduled (coarsened) barrier levels per cycle of the most recently flushed level-scheduled engine."),
		SchedLevelsOrig: r.Gauge("gsim_engine_sched_levels_orig", "Pre-coarsening dependence levels of the most recently flushed level-scheduled engine."),
	}
}

// obsFlushEvery is the amortization window: stats deltas fold into the
// process counters once per this many cycles, keeping the hot loop at one
// branch per Step while /metrics stays at most ~1k cycles stale (a step op
// also flushes on completion, so served sessions are exact between ops).
const obsFlushEvery = 1024

// AttachObs points the engine at a metrics bundle; every subsequent flush
// folds stats deltas into it. The current stats become the flush baseline,
// so attaching mid-run does not re-count history. Attach nil to detach.
func (b *base) AttachObs(m *Metrics) {
	b.obs = m
	b.obsFlushed = b.stats
}

// FlushObs folds the unflushed stats delta into the attached bundle. Safe to
// call at any serial point (between Steps); a no-op with nothing attached.
func (b *base) FlushObs() {
	m := b.obs
	if m == nil {
		return
	}
	s, f := &b.stats, &b.obsFlushed
	m.Cycles.Add(satSub(s.Cycles, f.Cycles))
	m.NodeEvals.Add(satSub(s.NodeEvals, f.NodeEvals))
	m.Instrs.Add(satSub(s.InstrsExecuted, f.InstrsExecuted))
	m.Activations.Add(satSub(s.Activations, f.Activations))
	m.Examinations.Add(satSub(s.Examinations, f.Examinations))
	m.RegCommits.Add(satSub(s.RegCommits, f.RegCommits))
	m.ResetFastSkips.Add(satSub(s.ResetFastSkips, f.ResetFastSkips))
	if b.obsLevels > 0 {
		m.BarrierWaits.Add(satSub(s.Cycles, f.Cycles) * uint64(b.obsLevels))
		m.SchedLevels.Set(float64(b.obsLevels))
		m.SchedLevelsOrig.Set(float64(b.obsOrigLevels))
	}
	m.ActiveRatio.Set(s.ActivityFactor())
	*f = *s
}

// maybeFlushObs is the per-Step hook: called from sampleTrace (the one
// serial end-of-Step point every engine already has).
func (b *base) maybeFlushObs() {
	if b.obs != nil && b.stats.Cycles-b.obsFlushed.Cycles >= obsFlushEvery {
		b.FlushObs()
	}
}

// AttachObs points the gang at a metrics bundle. The gang flushes its
// aggregate (all-lane) stats delta on the same amortization schedule as
// scalar engines.
func (g *Gang) AttachObs(m *Metrics) {
	g.obs = m
	g.obsFlushed = g.AggregateStats()
}

// FlushObs folds the gang's unflushed aggregate stats delta into the
// attached bundle.
func (g *Gang) FlushObs() {
	m := g.obs
	if m == nil {
		return
	}
	agg := g.AggregateStats()
	f := &g.obsFlushed
	m.Cycles.Add(satSub(agg.Cycles, f.Cycles))
	m.NodeEvals.Add(satSub(agg.NodeEvals, f.NodeEvals))
	m.Instrs.Add(satSub(agg.InstrsExecuted, f.InstrsExecuted))
	m.Activations.Add(satSub(agg.Activations, f.Activations))
	m.Examinations.Add(satSub(agg.Examinations, f.Examinations))
	m.RegCommits.Add(satSub(agg.RegCommits, f.RegCommits))
	m.ResetFastSkips.Add(satSub(agg.ResetFastSkips, f.ResetFastSkips))
	m.ActiveRatio.Set(agg.ActivityFactor())
	*f = agg
}

// satSub is saturating subtraction: a stat rewrite (Reset, snapshot restore)
// can move a counter backward between flushes; monotone process counters
// must absorb that as zero progress, never wrap.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// maybeFlushObs amortizes gang flushing by wall-clock gang cycles.
func (g *Gang) maybeFlushObs() {
	if g.obs != nil && g.steps%obsFlushEvery == 0 {
		g.FlushObs()
	}
}
