package engine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// VCD records value changes of selected nodes into a Value Change Dump
// stream — the waveform format every RTL debugging tool reads. The paper
// motivates software simulation with "100% signal visibility"; this is the
// visibility feature.
//
// Usage:
//
//	vcd, _ := engine.NewVCD(w, sim, graph, nil) // nil = all named signals
//	for { sim.Step(); vcd.Sample() }
//	vcd.Close()
type VCD struct {
	w      *bufio.Writer
	sim    Sim
	nodes  []*ir.Node
	ids    []string
	last   []bitvec.BV
	time   uint64
	opened bool
}

// NewVCD builds a dumper over the given nodes (all inputs, outputs, and
// registers when nodes is nil) and writes the VCD header.
func NewVCD(w io.Writer, sim Sim, g *ir.Graph, nodes []*ir.Node) (*VCD, error) {
	if nodes == nil {
		for _, n := range g.Nodes {
			if n == nil {
				continue
			}
			if n.Kind == ir.KindInput || n.Kind == ir.KindReg || n.IsOutput {
				nodes = append(nodes, n)
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	}
	v := &VCD{w: bufio.NewWriter(w), sim: sim, nodes: nodes}
	v.ids = make([]string, len(nodes))
	v.last = make([]bitvec.BV, len(nodes))
	for i := range nodes {
		v.ids[i] = vcdID(i)
	}
	if err := v.header(); err != nil {
		return nil, err
	}
	return v, nil
}

// vcdID generates the compact printable identifiers VCD uses.
func vcdID(i int) string {
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var sb strings.Builder
	for {
		sb.WriteByte(chars[i%len(chars)])
		i /= len(chars)
		if i == 0 {
			return sb.String()
		}
	}
}

func (v *VCD) header() error {
	fmt.Fprintf(v.w, "$date gsim $end\n$version gsim reproduction $end\n$timescale 1ns $end\n")
	fmt.Fprintf(v.w, "$scope module top $end\n")
	for i, n := range v.nodes {
		name := strings.ReplaceAll(n.Name, ".", "_")
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", n.Width, v.ids[i], name)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	return v.w.Flush()
}

// Sample records the current values, emitting changes since the last call.
// Call once per simulated cycle, after Step.
func (v *VCD) Sample() {
	wrote := false
	for i, n := range v.nodes {
		val := v.sim.Peek(n.ID)
		if v.opened && val.Equal(v.last[i]) {
			continue
		}
		if !wrote {
			fmt.Fprintf(v.w, "#%d\n", v.time)
			wrote = true
		}
		v.emit(n, v.ids[i], val)
		v.last[i] = val
	}
	v.opened = true
	v.time++
}

func (v *VCD) emit(n *ir.Node, id string, val bitvec.BV) {
	if n.Width == 1 {
		fmt.Fprintf(v.w, "%d%s\n", val.Uint64()&1, id)
		return
	}
	var sb strings.Builder
	sb.WriteByte('b')
	started := false
	for i := n.Width - 1; i >= 0; i-- {
		b := val.Bit(i)
		if !started && b == 0 && i > 0 {
			continue // VCD allows leading-zero suppression
		}
		started = true
		sb.WriteByte(byte('0' + b))
	}
	if !started {
		sb.WriteByte('0')
	}
	fmt.Fprintf(v.w, "%s %s\n", sb.String(), id)
}

// Close flushes the stream.
func (v *VCD) Close() error { return v.w.Flush() }
