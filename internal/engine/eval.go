package engine

import (
	"fmt"

	"gsim/internal/emit"
	"gsim/internal/ir"
)

// EvalMode selects how an engine executes compiled instructions on its
// hottest path.
type EvalMode uint8

const (
	// EvalKernel (the default) runs the full kernel-compiling pipeline:
	// pre-bound closures with opcode dispatch, operand offsets, widths, and
	// masks resolved at build time, superinstruction fusion over adjacent
	// two- and three-instruction idioms, width-class-specialized 2-word
	// kernels for the 65-128-bit range, and chains fused per supernode (and
	// per chunk, where
	// the engine sweeps chunks) so a sweep has no range lookups.
	EvalKernel EvalMode = iota
	// EvalInterp runs the reference switch-dispatch interpreter
	// (emit.Machine.Exec). It is the semantic baseline the kernel path is
	// pinned against, and the fallback to reach for when debugging.
	EvalInterp
	// EvalKernelNoFuse runs the PR-2 kernel path: one closure per
	// instruction, no superinstruction fusion, no width classes, no chunk
	// batching. It exists as the measurable baseline for the fused pipeline
	// (BenchmarkKernelVsInterp's kernel vs kernel-nofuse rows) and stays in
	// the conformance matrix so the baseline keeps working.
	EvalKernelNoFuse
)

// String returns the flag spelling of the mode.
func (m EvalMode) String() string {
	switch m {
	case EvalInterp:
		return "interp"
	case EvalKernelNoFuse:
		return "kernel-nofuse"
	}
	return "kernel"
}

// ParseEvalMode parses a -eval flag value.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "kernel":
		return EvalKernel, nil
	case "interp":
		return EvalInterp, nil
	case "kernel-nofuse":
		return EvalKernelNoFuse, nil
	}
	return 0, fmt.Errorf("unknown eval mode %q (want kernel, kernel-nofuse, or interp)", s)
}

// supKernel is one supernode compiled to closure-threaded form: the members'
// kernel closures fused into a single chain, plus the per-member bookkeeping
// the essential-signal sweep needs (old-value parking for change detection,
// register pending checks). Executing a supernode is then one scratch copy
// pass, one closure sweep, and one diff/activate pass — no per-member range
// lookups and no per-instruction dispatch. Under EvalKernel the chain is the
// bound form (superinstructions, width classes, operand pointers resolved
// into the engine's machine); under EvalKernelNoFuse it is the
// per-instruction baseline table.
type supKernel struct {
	fns    []emit.BoundFn  // EvalKernel: fused bound chain
	kfns   []emit.KernelFn // EvalKernelNoFuse: baseline closures
	instrs uint64
	nodes  uint64
	track  []trackSlot
	regs   []int32
}

// trackSlot locates one change-tracked member (comb or memory read port):
// its value words in the state image and its parking offset in the
// supernode-scratch buffer.
type trackSlot struct {
	id     int32
	off, w int32
	scr    int32
}

// buildSupKernels fuses every supernode of the activation plan into its
// kernel form. Under EvalKernel each supernode's concatenated member
// instructions are compiled as one bound chain with superinstruction fusion
// and width-class specialization (emit.Program.CompileChainBound); under
// EvalKernelNoFuse the per-instruction baseline table is concatenated
// unchanged (the PR-2 shape). The returned scratch size (in words) is the
// widest per-supernode old-value parking area; callers size their scratch
// buffers to max(plan.maxWords, scratchWords) so both evaluation paths fit.
//
// Correctness of the "park all old values up front" shape: a member's value
// slot is written only by that member's own instructions, so earlier members
// of the supernode cannot clobber a later member's pre-sweep value — parking
// everything before the fused sweep observes exactly the values the
// interpreter's interleaved copy-eval-diff loop observes. Fusion across
// member boundaries inside the chain is safe for the same reason: a fused
// closure performs exactly the stores of its source instructions (two or
// three, per the matched rule) in order.
func buildSupKernels(p *emit.Program, m *emit.Machine, pl *activationPlan, mode EvalMode) ([]supKernel, int32) {
	fuse := mode != EvalKernelNoFuse
	if !fuse {
		p.BuildKernelsBase()
	}
	nSups := len(pl.supStart) - 1
	sups := make([]supKernel, nSups)
	scratchWords := int32(1)
	var chain []emit.Instr
	for s := 0; s < nSups; s++ {
		sk := &sups[s]
		var scr int32
		chain = chain[:0]
		for k := pl.supStart[s]; k < pl.supStart[s+1]; k++ {
			id := pl.members[k]
			code := p.Code[id]
			if fuse {
				chain = append(chain, p.Instrs[code.Start:code.End]...)
			} else {
				sk.kfns = append(sk.kfns, p.KernelsBase[code.Start:code.End]...)
			}
			sk.instrs += uint64(code.Len())
			sk.nodes++
			switch pl.kind[id] {
			case ir.KindReg:
				sk.regs = append(sk.regs, id)
			case ir.KindMemWrite:
				// write-port expressions land in dedicated slots; the commit
				// phase reads them, no change tracking needed
			default: // comb, memread
				w := p.WordsOf[id]
				sk.track = append(sk.track, trackSlot{id: id, off: p.Off[id], w: w, scr: scr})
				scr += w
			}
		}
		if fuse {
			sk.fns = p.CompileChainBound(m, chain)
		}
		if scr > scratchWords {
			scratchWords = scr
		}
	}
	return sups, scratchWords
}

// sweep runs the supernode's compiled chain, whichever form it was built in.
func (sk *supKernel) sweep(st []uint64, m *emit.Machine) {
	if sk.fns != nil {
		for _, f := range sk.fns {
			f()
		}
		return
	}
	for _, f := range sk.kfns {
		f(st, m)
	}
}
