package engine

import (
	"fmt"

	"gsim/internal/emit"
	"gsim/internal/ir"
)

// EvalMode selects how an engine executes compiled instructions on its
// hottest path.
type EvalMode uint8

const (
	// EvalKernel (the default) runs pre-bound closure kernels — one closure
	// per instruction with opcode dispatch, operand offsets, widths, and
	// masks resolved at build time, fused per supernode so a supernode is a
	// single closure sweep with no range lookups.
	EvalKernel EvalMode = iota
	// EvalInterp runs the reference switch-dispatch interpreter
	// (emit.Machine.Exec). It is the semantic baseline the kernel path is
	// pinned against, and the fallback to reach for when debugging.
	EvalInterp
)

// String returns the flag spelling of the mode.
func (m EvalMode) String() string {
	if m == EvalInterp {
		return "interp"
	}
	return "kernel"
}

// ParseEvalMode parses a -eval flag value.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "kernel":
		return EvalKernel, nil
	case "interp":
		return EvalInterp, nil
	}
	return 0, fmt.Errorf("unknown eval mode %q (want kernel or interp)", s)
}

// supKernel is one supernode compiled to closure-threaded form: the members'
// kernel closures fused into a single chain, plus the per-member bookkeeping
// the essential-signal sweep needs (old-value parking for change detection,
// register pending checks). Executing a supernode is then one scratch copy
// pass, one closure sweep, and one diff/activate pass — no per-member range
// lookups and no per-instruction dispatch.
type supKernel struct {
	fns    []emit.KernelFn
	instrs uint64
	nodes  uint64
	track  []trackSlot
	regs   []int32
}

// trackSlot locates one change-tracked member (comb or memory read port):
// its value words in the state image and its parking offset in the
// supernode-scratch buffer.
type trackSlot struct {
	id     int32
	off, w int32
	scr    int32
}

// buildSupKernels fuses every supernode of the activation plan into its
// kernel form. The returned scratch size (in words) is the widest per-
// supernode old-value parking area; callers size their scratch buffers to
// max(plan.maxWords, scratchWords) so both evaluation paths fit.
//
// Correctness of the "park all old values up front" shape: a member's value
// slot is written only by that member's own instructions, so earlier members
// of the supernode cannot clobber a later member's pre-sweep value — parking
// everything before the fused sweep observes exactly the values the
// interpreter's interleaved copy-eval-diff loop observes.
func buildSupKernels(p *emit.Program, pl *activationPlan) ([]supKernel, int32) {
	p.BuildKernels()
	nSups := len(pl.supStart) - 1
	sups := make([]supKernel, nSups)
	scratchWords := int32(1)
	for s := 0; s < nSups; s++ {
		sk := &sups[s]
		var scr int32
		for k := pl.supStart[s]; k < pl.supStart[s+1]; k++ {
			id := pl.members[k]
			code := p.Code[id]
			sk.fns = append(sk.fns, p.Kernels[code.Start:code.End]...)
			sk.instrs += uint64(code.Len())
			sk.nodes++
			switch pl.kind[id] {
			case ir.KindReg:
				sk.regs = append(sk.regs, id)
			case ir.KindMemWrite:
				// write-port expressions land in dedicated slots; the commit
				// phase reads them, no change tracking needed
			default: // comb, memread
				w := p.WordsOf[id]
				sk.track = append(sk.track, trackSlot{id: id, off: p.Off[id], w: w, scr: scr})
				scr += w
			}
		}
		if scr > scratchWords {
			scratchWords = scr
		}
	}
	return sups, scratchWords
}
