package engine

import (
	"strings"
	"testing"

	"gsim/internal/bitvec"
)

func TestVCDDump(t *testing.T) {
	p, g, en, _ := buildCounter(t)
	sim := NewFullCycle(p, EvalKernel)
	var sb strings.Builder
	vcd, err := NewVCD(&sb, sim, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	for i := 0; i < 5; i++ {
		sim.Step()
		vcd.Sample()
	}
	if err := vcd.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"$timescale", "$var wire 8", "$var wire 1", "$enddefinitions",
		"#0", "#4", "b101 ", // counter value 5 at the final sample
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("VCD missing %q:\n%s", frag, out)
		}
	}
	// Unchanged signals must not be re-emitted every cycle: `en` appears in
	// the initial dump only.
	enID := ""
	for i, n := range vcd.nodes {
		if n.Name == "en" {
			enID = vcd.ids[i]
		}
	}
	if n := strings.Count(out, "1"+enID+"\n"); n != 1 {
		t.Fatalf("en emitted %d times, want 1 (change-only dumping)", n)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
