package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/gen"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

// buildRandomCompiled generates a random design and compiles it, returning
// the sorted graph (the reference and the compiled engines must agree on
// node IDs, so sort before building either).
func buildRandomCompiled(t *testing.T, seed int64) (*ir.Graph, *emit.Program) {
	t.Helper()
	g := gen.Random(seed, gen.DefaultRandomConfig())
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := emit.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

// TestParallelActivityMatchesReference runs the multi-threaded essential-
// signal engine in lockstep against the golden model on random designs with
// random stimulus, at several thread counts and partitionings.
func TestParallelActivityMatchesReference(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 60
	}
	for _, seed := range []int64{7, 8} {
		for _, threads := range []int{2, 4} {
			g, p := buildRandomCompiled(t, seed)
			ref, err := NewReference(g)
			if err != nil {
				t.Fatal(err)
			}
			part := partition.Build(g, partition.Enhanced, 4)
			sim := NewParallelActivity(p, part, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel}, threads, EvalKernel)
			defer sim.Close()

			var inputs []*ir.Node
			var watched []*ir.Node
			for _, n := range g.Nodes {
				if n.Kind == ir.KindInput {
					inputs = append(inputs, n)
				}
				if n.IsOutput || n.Kind == ir.KindReg {
					watched = append(watched, n)
				}
			}
			rng := rand.New(rand.NewSource(seed * 31))
			for c := 0; c < cycles; c++ {
				for _, in := range inputs {
					v := bitvec.FromUint64(in.Width, rng.Uint64())
					if in.Name == "reset" {
						v = bitvec.FromUint64(1, uint64(rng.Intn(10)/9))
					}
					ref.Poke(in.ID, v)
					sim.Poke(in.ID, v)
				}
				ref.Step()
				sim.Step()
				for _, n := range watched {
					a, b := ref.Peek(n.ID), sim.Peek(n.ID)
					if !a.EqValue(b) {
						t.Fatalf("seed %d threads %d cycle %d: node %q: reference %s vs gsimmt %s",
							seed, threads, c, n.Name, a, b)
					}
				}
			}
			if sim.Stats().ActivityFactor() >= 1 {
				t.Fatalf("seed %d threads %d: activity factor %.3f not below 1",
					seed, threads, sim.Stats().ActivityFactor())
			}
		}
	}
}

// TestParallelActivityModesAgree exercises every activation mode and the
// non-multi-bit scan path against the reference on one design.
func TestParallelActivityModesAgree(t *testing.T) {
	for _, cfg := range []ActivityConfig{
		{Activation: ActBranch},
		{Activation: ActBranchless},
		{MultiBitCheck: true, Activation: ActCostModel},
	} {
		g, p := buildRandomCompiled(t, 11)
		ref, err := NewReference(g)
		if err != nil {
			t.Fatal(err)
		}
		part := partition.Build(g, partition.MFFC, 8)
		sim := NewParallelActivity(p, part, cfg, 3, EvalKernel)
		var outs []*ir.Node
		for _, n := range g.Nodes {
			if n.IsOutput {
				outs = append(outs, n)
			}
		}
		rng := rand.New(rand.NewSource(99))
		for c := 0; c < 50; c++ {
			for _, n := range g.Nodes {
				if n.Kind != ir.KindInput {
					continue
				}
				v := bitvec.FromUint64(n.Width, rng.Uint64())
				ref.Poke(n.ID, v)
				sim.Poke(n.ID, v)
			}
			ref.Step()
			sim.Step()
			for _, n := range outs {
				if a, b := ref.Peek(n.ID), sim.Peek(n.ID); !a.EqValue(b) {
					t.Fatalf("cfg %+v cycle %d: output %q: %s vs %s", cfg, c, n.Name, a, b)
				}
			}
		}
		sim.Close()
	}
}

// TestParallelActivitySkipsIdleWork: the essential-signal property must
// survive parallelization — an idle design evaluates nothing.
func TestParallelActivitySkipsIdleWork(t *testing.T) {
	p, g, en, c := buildCounter(t)
	part := partition.Build(g, partition.Enhanced, 4)
	sim := NewParallelActivity(p, part, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel}, 2, EvalKernel)
	defer sim.Close()
	StepN(sim, 2)
	evalsBefore := sim.Stats().NodeEvals
	StepN(sim, 10)
	if idle := sim.Stats().NodeEvals - evalsBefore; idle != 0 {
		t.Fatalf("idle circuit evaluated %d nodes over 10 cycles", idle)
	}
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 5)
	if got := sim.Peek(c.ID).Uint64(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (worker exit is signaled slightly before the goroutine is gone).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline %d (now %d)", base, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelCloseJoinsWorkers: Close must deterministically stop every
// worker goroutine, including when called twice, and Step must still have
// produced correct results beforehand.
func TestParallelCloseJoinsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p, g, en, _ := buildCounter(t)
	order := make([]int32, len(g.Nodes))
	for i := range order {
		order[i] = int32(i)
	}
	_, byLevel := g.Levelize(order)
	sim := NewParallel(p, byLevel, 4, EvalKernel)
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 3)
	sim.Close()
	sim.Close() // idempotent
	waitForGoroutines(t, base)
}

// TestParallelActivityCloseJoinsWorkers: same contract for the GSIMMT engine.
func TestParallelActivityCloseJoinsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p, g, en, _ := buildCounter(t)
	part := partition.Build(g, partition.Enhanced, 4)
	sim := NewParallelActivity(p, part, ActivityConfig{MultiBitCheck: true, Activation: ActCostModel}, 4, EvalKernel)
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	StepN(sim, 3)
	sim.Close()
	sim.Close() // idempotent
	waitForGoroutines(t, base)
}
