package engine

import (
	"gsim/internal/bitvec"
	"gsim/internal/emit"
)

// FullCycle evaluates every node every cycle in topological order — the
// paper's Listing 1, the Verilator scheduling model. Because the compiler
// emits instructions in topological node order, one Step is a single linear
// sweep over the whole instruction stream followed by the register and
// memory commit.
type FullCycle struct {
	base
	// chain is the whole instruction stream compiled as one fused bound
	// chain (superinstructions, width classes, operand pointers resolved
	// into this engine's machine). nil unless mode is EvalKernel; the other
	// modes sweep through base.exec.
	chain      []emit.BoundFn
	memScratch []int32
}

// NewFullCycle builds a full-cycle engine for a compiled program. The
// program's graph must have been compacted in topological order (core.Build
// guarantees this). In kernel mode (the default) the whole instruction
// stream is one fused closure sweep; EvalInterp selects the reference
// interpreter and EvalKernelNoFuse the per-instruction baseline table.
func NewFullCycle(p *emit.Program, mode EvalMode) *FullCycle {
	f := &FullCycle{base: newBase(p, mode)}
	if mode == EvalKernel {
		f.chain = p.CompileChainBound(f.m, p.Instrs)
	}
	return f
}

// Reset restores complete power-on state (image, memories, counters).
func (f *FullCycle) Reset() {
	f.resetBase()
}

// Close is a no-op: the serial engine owns no goroutines. It exists so every
// engine satisfies the same lifecycle (session pools Close uniformly).
func (f *FullCycle) Close() {}

// Step simulates one cycle.
func (f *FullCycle) Step() {
	f.stats.Cycles++
	if f.chain != nil {
		for _, fn := range f.chain {
			fn()
		}
	} else {
		f.exec(0, int32(len(f.m.Prog.Instrs)))
	}
	f.stats.NodeEvals += uint64(len(f.coded))
	f.countInstrs(uint64(len(f.m.Prog.Instrs)))
	f.commitRegs()
	f.memScratch = f.commitWrites(f.memScratch[:0])
	f.applyResets(nil)
	f.sampleTrace()
}

// Poke sets an input value.
func (f *FullCycle) Poke(nodeID int, v bitvec.BV) {
	f.m.Poke(nodeID, v)
}
