package engine

import (
	"gsim/internal/bitvec"
	"gsim/internal/emit"
)

// FullCycle evaluates every node every cycle in topological order — the
// paper's Listing 1, the Verilator scheduling model. Because the compiler
// emits instructions in topological node order, one Step is a single linear
// sweep over the whole instruction stream followed by the register and
// memory commit.
type FullCycle struct {
	base
	memScratch []int32
}

// NewFullCycle builds a full-cycle engine for a compiled program. The
// program's graph must have been compacted in topological order (core.Build
// guarantees this). In kernel mode (the default) the whole instruction
// stream is one fused closure sweep; EvalInterp selects the reference
// interpreter.
func NewFullCycle(p *emit.Program, mode EvalMode) *FullCycle {
	return &FullCycle{base: newBase(p, mode)}
}

// Reset restores initial state.
func (f *FullCycle) Reset() {
	f.m.Reset()
}

// Step simulates one cycle.
func (f *FullCycle) Step() {
	f.stats.Cycles++
	f.exec(0, int32(len(f.m.Prog.Instrs)))
	f.stats.NodeEvals += uint64(len(f.coded))
	f.countInstrs(uint64(len(f.m.Prog.Instrs)))
	f.commitRegs()
	f.memScratch = f.commitWrites(f.memScratch[:0])
	f.applyResets(nil)
}

// Poke sets an input value.
func (f *FullCycle) Poke(nodeID int, v bitvec.BV) {
	f.m.Poke(nodeID, v)
}
