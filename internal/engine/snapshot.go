package engine

import (
	"fmt"
	"sort"
)

// SimState is the complete mutable state of a Sim between Steps — everything
// a checkpoint must carry for a resumed run to be bit-identical (state image,
// waveform, and stat counters) to an uninterrupted one. It lives next to
// Tracer as the second engine-introspection surface: Tracer streams state out
// per cycle, Snapshotter moves it in and out at rest.
//
// The first four fields are engine-independent (they mirror emit.Machine plus
// the Stats block every engine keeps). The activity fields carry the
// essential-signal engines' arming state in partition space — supernode
// indices, not active-word layouts — so a capture from the serial Activity
// engine restores into a ParallelActivity at any thread count (and vice
// versa): each engine re-derives its own word layout from the supernode set.
type SimState struct {
	State    []uint64   // machine state image (Program.NumWords words)
	Mems     [][]uint64 // memory arrays, per MemSpec
	Executed uint64     // Machine.Executed
	Stats    Stats

	// SupCount is the supernode count of the capturing engine's partition; 0
	// when the engine tracks no activity (FullCycle, Parallel). Restoring an
	// activity engine validates it against its own partition.
	SupCount int
	// ActiveSups lists the armed supernodes, ascending. Meaningful only when
	// SupCount > 0; restoring from a SupCount == 0 capture conservatively
	// re-arms everything (a full evaluation is always semantically safe).
	ActiveSups []int32
	// PendingRegs lists registers with an uncommitted next value. Engines
	// drain pending registers inside Step, so captures taken between Steps —
	// the only supported capture point — normally carry none; the field
	// exists so a restore fully determines the engine's commit bookkeeping.
	PendingRegs []int32
}

// Snapshotter is implemented by every engine: CaptureState enumerates the
// complete mutable state, RestoreState overwrites it. Both must be called
// between Steps (never concurrently with one). The returned SimState aliases
// live engine storage — serialize or copy it before stepping again.
// RestoreState copies out of the argument into the engine's existing buffers
// (compiled bound chains hold pointers into the machine's state image, so the
// image is overwritten in place, never reallocated) and fully re-derives the
// engine's private bookkeeping, so restoring into a used engine is exactly a
// restore into a fresh one.
type Snapshotter interface {
	CaptureState() *SimState
	RestoreState(*SimState) error
}

// captureBase fills the engine-independent fields.
func (b *base) captureBase() *SimState {
	return &SimState{
		State:    b.m.State,
		Mems:     b.m.Mems,
		Executed: b.m.Executed,
		Stats:    b.stats,
	}
}

// restoreBase validates shapes and copies the machine image and counters in
// place.
func (b *base) restoreBase(s *SimState) error {
	if len(s.State) != len(b.m.State) {
		return fmt.Errorf("engine: state image is %d words, engine has %d", len(s.State), len(b.m.State))
	}
	if len(s.Mems) != len(b.m.Mems) {
		return fmt.Errorf("engine: snapshot has %d memories, engine has %d", len(s.Mems), len(b.m.Mems))
	}
	for i := range s.Mems {
		if len(s.Mems[i]) != len(b.m.Mems[i]) {
			return fmt.Errorf("engine: memory %d is %d words, engine has %d", i, len(s.Mems[i]), len(b.m.Mems[i]))
		}
	}
	copy(b.m.State, s.State)
	for i := range s.Mems {
		copy(b.m.Mems[i], s.Mems[i])
	}
	b.m.Executed = s.Executed
	b.FlushObs() // bank progress earned before the counters are overwritten
	b.stats = s.Stats
	b.stats.EvaluableNodes = uint64(len(b.coded)) // engine-derived, same design => same value
	// Restored history is not newly simulated work: re-baseline so the jump
	// (forward or backward) never reaches the process counters.
	b.obsFlushed = b.stats
	return nil
}

// CaptureState enumerates the full-cycle engine's state: the machine image
// and counters are everything it has.
func (f *FullCycle) CaptureState() *SimState { return f.captureBase() }

// RestoreState overwrites the full-cycle engine's state.
func (f *FullCycle) RestoreState(s *SimState) error { return f.restoreBase(s) }

// CaptureState enumerates the parallel full-cycle engine's state. Workers
// hold no per-cycle residue between Steps, so the base state is complete.
func (e *Parallel) CaptureState() *SimState { return e.captureBase() }

// RestoreState overwrites the parallel full-cycle engine's state.
func (e *Parallel) RestoreState(s *SimState) error { return e.restoreBase(s) }

// CaptureState enumerates the essential-signal engine's state: machine image,
// counters, the armed supernode set, and any uncommitted registers.
func (a *Activity) CaptureState() *SimState {
	s := a.captureBase()
	s.SupCount = a.part.Count()
	for sup := int32(0); sup < int32(s.SupCount); sup++ {
		if a.active[sup>>6]&(uint64(1)<<uint(sup&63)) != 0 {
			s.ActiveSups = append(s.ActiveSups, sup)
		}
	}
	s.PendingRegs = append(s.PendingRegs, a.pending...)
	return s
}

// RestoreState overwrites the essential-signal engine's state and re-derives
// its activity bookkeeping from the snapshot's supernode set.
func (a *Activity) RestoreState(s *SimState) error {
	if err := checkSups(s, a.part.Count(), len(a.pendingFlag)); err != nil {
		return err
	}
	if err := a.restoreBase(s); err != nil {
		return err
	}
	for i := range a.active {
		a.active[i] = 0
	}
	for i := range a.pendingFlag {
		a.pendingFlag[i] = false
	}
	a.pending = a.pending[:0]
	if s.SupCount == 0 {
		a.activateAll() // capture carried no activity info: full re-evaluation is safe
	} else {
		for _, sup := range s.ActiveSups {
			a.active[sup>>6] |= uint64(1) << uint(sup&63)
		}
	}
	for _, id := range s.PendingRegs {
		a.pendingFlag[id] = true
		a.pending = append(a.pending, id)
	}
	return nil
}

// CaptureState enumerates the multi-threaded essential-signal engine's state.
// Outboxes and dirty flags are always drained by the end of a Step (every
// published activation targets a level the sweep still visits, and serial
// commits write active words directly), so the armed supernode set plus the
// base state is complete.
func (e *ParallelActivity) CaptureState() *SimState {
	s := e.captureBase()
	s.SupCount = e.part.Count()
	for sup := range e.supSlot {
		slot := e.supSlot[sup]
		if e.active[slot>>6]&(uint64(1)<<uint(slot&63)) != 0 {
			s.ActiveSups = append(s.ActiveSups, int32(sup))
		}
	}
	sort.Slice(s.ActiveSups, func(i, j int) bool { return s.ActiveSups[i] < s.ActiveSups[j] })
	for _, ws := range e.ws {
		s.PendingRegs = append(s.PendingRegs, ws.pending...)
	}
	return s
}

// RestoreState overwrites the multi-threaded essential-signal engine's state,
// re-deriving its private word layout from the snapshot's supernode set and
// clearing all worker residue (outboxes, dirty flags, pending lists) — the
// same shape a fresh engine has.
func (e *ParallelActivity) RestoreState(s *SimState) error {
	if err := checkSups(s, e.part.Count(), len(e.pendingFlag)); err != nil {
		return err
	}
	if err := e.restoreBase(s); err != nil {
		return err
	}
	for i := range e.active {
		e.active[i] = 0
	}
	for w := range e.out {
		out := e.out[w]
		for i := range out {
			out[i] = 0
		}
		dirty := e.dirty[w]
		for i := range dirty {
			dirty[i] = false
		}
	}
	for i := range e.pendingFlag {
		e.pendingFlag[i] = false
	}
	for _, ws := range e.ws {
		ws.pending = ws.pending[:0]
	}
	if s.SupCount == 0 {
		e.activateAll()
	} else {
		for _, sup := range s.ActiveSups {
			slot := e.supSlot[sup]
			e.active[slot>>6] |= uint64(1) << uint(slot&63)
		}
	}
	// Pending registers land on worker 0: commit drains every worker's list
	// serially and register commits commute (distinct registers, OR-ed
	// activations), so placement does not affect the trajectory.
	for _, id := range s.PendingRegs {
		e.pendingFlag[id] = true
		e.ws[0].pending = append(e.ws[0].pending, id)
	}
	return nil
}

// checkSups validates a snapshot's activity section against the restoring
// engine's partition — a capture that carried supernode state must come from
// the same partition shape, every listed index must be in range, and pending
// register IDs must be valid nodes — before any engine state is mutated.
func checkSups(s *SimState, count, nodes int) error {
	if s.SupCount != 0 && s.SupCount != count {
		return fmt.Errorf("engine: snapshot partition has %d supernodes, engine has %d", s.SupCount, count)
	}
	for _, sup := range s.ActiveSups {
		if sup < 0 || int(sup) >= count {
			return fmt.Errorf("engine: active supernode %d out of range [0,%d)", sup, count)
		}
	}
	for _, id := range s.PendingRegs {
		if id < 0 || int(id) >= nodes {
			return fmt.Errorf("engine: pending register %d out of range [0,%d)", id, nodes)
		}
	}
	return nil
}
