package engine

import (
	"strings"
	"sync/atomic"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/faultpoint"
)

// TestWorkerPoolPanicContained pins the fault-isolation contract of the
// shared worker pool: a panic inside one worker's run function must not kill
// the process or wedge the barrier — it surfaces as a panic on the goroutine
// that called cycle(), the pool stays coherent for further cycles, and Close
// still joins every worker.
func TestWorkerPoolPanicContained(t *testing.T) {
	var bomb atomic.Bool
	var runs atomic.Int64
	p := newWorkerPool(3, 4, func(w, lv int) {
		runs.Add(1)
		if bomb.Load() && w == 1 && lv == 2 {
			panic("kernel exploded")
		}
	})
	defer p.Close()

	p.cycle() // healthy warm-up sweep

	bomb.Store(true)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("cycle did not propagate the worker panic")
			}
			msg, ok := r.(error)
			if !ok || !strings.Contains(msg.Error(), "kernel exploded") {
				t.Fatalf("panic value %v does not carry the worker panic", r)
			}
			if !strings.Contains(msg.Error(), "worker 1 panicked at level 2") {
				t.Fatalf("panic value %v does not identify worker and level", r)
			}
		}()
		p.cycle()
	}()

	// The barrier protocol must have completed: every worker ran every level
	// in both sweeps despite the panic.
	if got := runs.Load(); got != 2*3*4 {
		t.Fatalf("runs = %d, want %d (barrier wedged?)", got, 2*3*4)
	}

	// The pool must remain usable after containment.
	bomb.Store(false)
	p.cycle()
	if got := runs.Load(); got != 3*3*4 {
		t.Fatalf("post-panic cycle ran %d total, want %d", got, 3*3*4)
	}
}

// TestParallelEngineInjectedPanic drives the same contract through a real
// parallel engine via the pool-panic fault point: Step panics on the caller,
// the process survives, and the engine can still be closed.
func TestParallelEngineInjectedPanic(t *testing.T) {
	defer faultpoint.Reset()
	p, g, en, _ := buildCounter(t)
	order := make([]int32, len(g.Nodes))
	for i := range order {
		order[i] = int32(i)
	}
	_, byLevel := g.Levelize(order)
	sim := NewParallel(p, byLevel, 2, EvalKernel)
	defer sim.Close()
	sim.Poke(en.ID, bitvec.FromUint64(1, 1))
	sim.Step()

	faultpoint.Arm(faultpoint.PoolPanic, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected worker panic did not surface from Step")
			}
		}()
		sim.Step()
	}()
	if faultpoint.Fired(faultpoint.PoolPanic) != 1 {
		t.Fatal("fault point did not fire")
	}
}
