// Package engine implements the RTL simulation engines the paper compares:
//
//   - FullCycle: static topological-order evaluation of every node every
//     cycle — the Verilator model (paper Listing 1). On an optimized graph it
//     also stands in for Arcilator (expression optimization, no activity
//     tracking).
//   - Parallel: the multi-threaded full-cycle variant (Verilator -NT),
//     levelized with barriers between levels.
//   - Activity: the essential-signal engine (paper Listing 2/3/4) with
//     per-supernode active bits. Configured with MFFC partitions and
//     always-branchless activation it models ESSENT; with the enhanced
//     partitioner, multi-bit active-word checking, the activation cost model,
//     and the reset slow path it is GSIM.
//
// All engines run the same compiled emit.Program and must produce identical
// state trajectories; the test suite enforces this on randomized circuits.
package engine

import (
	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
)

// Sim is a cycle-accurate simulator instance.
type Sim interface {
	// Reset restores complete power-on state without recompiling: register
	// init values, memory images, stat counters, and engine bookkeeping all
	// return to their post-construction values, and full evaluation is
	// re-armed for the next Step. Session pools rely on Reset being
	// indistinguishable from a fresh build of the same configuration.
	Reset()
	// Close releases engine resources (parallel worker goroutines; a no-op
	// for serial engines). Idempotent, and safe to interleave with Reset —
	// but never concurrent with Step. A closed engine must not be stepped.
	Close()
	// Step simulates one clock cycle.
	Step()
	// Peek returns a node's current value.
	Peek(nodeID int) bitvec.BV
	// Poke sets an input node's value, taking effect on the next Step.
	Poke(nodeID int, v bitvec.BV)
	// PeekMem returns one memory element.
	PeekMem(memID, addr int) bitvec.BV
	// PokeMem overwrites one memory element (loader use; does not activate).
	PokeMem(memID, addr int, v bitvec.BV)
	// Stats returns the engine's running counters.
	Stats() *Stats
	// Machine exposes the underlying state for debugging and verification.
	Machine() *emit.Machine
}

// Stats collects the quantities the paper's model and Table III report.
type Stats struct {
	Cycles         uint64
	NodeEvals      uint64 // "active node": node evaluations performed
	Activations    uint64 // "activation times": successor-activation operations
	Examinations   uint64 // Aexam: active-bit/word checks
	InstrsExecuted uint64 // compiled instructions retired
	RegCommits     uint64 // register next->cur copies that changed the value
	EvaluableNodes uint64 // nodes that carry evaluation work (denominator for af)
	ResetFastSkips uint64 // reset checks avoided by the slow-path optimization
}

// ActivityFactor returns the average fraction of evaluable nodes evaluated
// per cycle (the paper's af).
func (s *Stats) ActivityFactor() float64 {
	if s.Cycles == 0 || s.EvaluableNodes == 0 {
		return 0
	}
	return float64(s.NodeEvals) / float64(s.Cycles) / float64(s.EvaluableNodes)
}

// Tracer consumes one end-of-cycle state snapshot per Step. The engine hands
// it the live state image; the tracer must copy what it needs before
// returning (internal/trace packs traced words into a ring slot). Attach one
// with AttachTracer on any engine; every engine samples at the very end of
// Step, after commits and resets — the same values an external caller would
// observe by Peeking between Steps.
type Tracer interface {
	Snapshot(st []uint64)
}

// base carries the plumbing shared by every engine.
type base struct {
	g      *ir.Graph
	m      *emit.Machine
	exec   func(start, end int32) // bound to Machine.Exec or Machine.ExecKernelBase
	regs   []int32                // register node IDs
	writes []int32                // memory write-port node IDs
	coded  []int32                // all node IDs with evaluation work, in ID (== topo) order
	resets []resetGroup
	tracer Tracer
	stats  Stats

	// Observability plumbing (see obs.go): the attached process-wide bundle,
	// the stats image as of the last flush, and the barrier-schedule shape
	// level-scheduled engines report.
	obs           *Metrics
	obsFlushed    Stats
	obsLevels     int
	obsOrigLevels int
}

// resetGroup is the set of registers sharing one extracted reset signal.
// Registers gain a ResetSig after the reset-extraction pass; engines must
// then apply Init at the end of any cycle in which the signal is high (paper
// Listing 6). This is graph semantics, not an engine option, so every engine
// honors it.
type resetGroup struct {
	sig  int32
	regs []int32
}

func newBase(p *emit.Program, mode EvalMode) base {
	b := base{g: p.Graph, m: emit.NewMachine(p)}
	switch mode {
	case EvalInterp:
		b.exec = b.m.Exec
	case EvalKernelNoFuse:
		p.BuildKernelsBase()
		b.exec = b.m.ExecKernelBase
	default:
		// EvalKernel engines execute bound chains compiled against their own
		// machine (FullCycle's whole-stream chain, Parallel's per-chunk
		// chains, the activity engines' supernode chains); exec stays bound
		// to the interpreter as the semantically identical fallback for any
		// cold range-execution path.
		b.exec = b.m.Exec
	}
	bySig := map[int32]int{}
	for _, n := range p.Graph.Nodes {
		if n.HasCode() {
			b.coded = append(b.coded, int32(n.ID))
		}
		switch n.Kind {
		case ir.KindReg:
			b.regs = append(b.regs, int32(n.ID))
			if n.ResetSig != nil {
				sig := int32(n.ResetSig.ID)
				gi, ok := bySig[sig]
				if !ok {
					gi = len(b.resets)
					bySig[sig] = gi
					b.resets = append(b.resets, resetGroup{sig: sig})
				}
				b.resets[gi].regs = append(b.resets[gi].regs, int32(n.ID))
			}
		case ir.KindMemWrite:
			b.writes = append(b.writes, int32(n.ID))
		}
	}
	b.stats.EvaluableNodes = uint64(len(b.coded))
	return b
}

// applyResets runs the reset slow path: one check per reset signal; when a
// signal is high, every register in its group is forced to its init value.
// onChange, if non-nil, is called for each register whose value changed.
func (b *base) applyResets(onChange func(id int32)) {
	p := b.m.Prog
	st := b.m.State
	for _, rg := range b.resets {
		if st[p.Off[rg.sig]] == 0 {
			b.stats.ResetFastSkips += uint64(len(rg.regs))
			continue
		}
		for _, id := range rg.regs {
			cur, next, w := p.Off[id], p.NextOff[id], p.WordsOf[id]
			var diff uint64
			for i := int32(0); i < w; i++ {
				iv := p.Init[cur+i]
				diff |= st[cur+i] ^ iv
				st[cur+i] = iv
				st[next+i] = iv
			}
			if diff != 0 {
				b.stats.RegCommits++
				if onChange != nil {
					onChange(id)
				}
			}
		}
	}
}

// resetBase restores the engine-independent power-on state: the machine's
// state image, memory arrays, and retired-instruction counter, plus the stat
// block (EvaluableNodes is structural and survives). Engines layer their own
// re-arming (active bits, pending lists) on top.
func (b *base) resetBase() {
	b.FlushObs() // bank progress earned since the last flush before zeroing
	b.m.Reset()
	b.m.Executed = 0
	b.stats = Stats{EvaluableNodes: uint64(len(b.coded))}
	b.obsFlushed = b.stats
}

// countInstrs retires n instructions into both the engine stats and the
// machine's Executed counter. Engines call it only from serial context (per
// step, or at the end-of-cycle worker-stat merge), so the counters stay
// race-free and accurate regardless of evaluation mode and thread count.
func (b *base) countInstrs(n uint64) {
	b.stats.InstrsExecuted += n
	b.m.Executed += n
}

// AttachTracer routes waveform capture through t: every subsequent Step ends
// with one t.Snapshot call over the machine state. Attach nil to detach.
// Because every engine embeds base, the async pipeline (internal/trace) plugs
// into all four the same way.
func (b *base) AttachTracer(t Tracer) { b.tracer = t }

// sampleTrace feeds the attached tracer, if any, and amortizes the metrics
// flush. Engines call it as the last action of Step, from serial coordinator
// context — the one hook every engine already has at end-of-cycle.
func (b *base) sampleTrace() {
	if b.tracer != nil {
		b.tracer.Snapshot(b.m.State)
	}
	b.maybeFlushObs()
}

func (b *base) Peek(nodeID int) bitvec.BV            { return b.m.Peek(nodeID) }
func (b *base) PeekMem(memID, addr int) bitvec.BV    { return b.m.PeekMem(memID, addr) }
func (b *base) PokeMem(memID, addr int, v bitvec.BV) { b.m.PokeMem(memID, addr, v) }
func (b *base) Stats() *Stats                        { return &b.stats }
func (b *base) Machine() *emit.Machine               { return b.m }

// commitRegs copies each register's next value over its current value.
// Returns nothing; used by full-evaluation engines that re-evaluate
// everything anyway.
func (b *base) commitRegs() {
	p := b.m.Prog
	st := b.m.State
	for _, id := range b.regs {
		cur, next, w := p.Off[id], p.NextOff[id], p.WordsOf[id]
		copy(st[cur:cur+w], st[next:next+w])
	}
}

// commitWrites applies enabled memory write ports. It returns the IDs of
// memories whose contents changed (into the provided scratch slice).
func (b *base) commitWrites(changed []int32) []int32 {
	p := b.m.Prog
	st := b.m.State
	for _, id := range b.writes {
		if st[p.WEnOff[id]] == 0 {
			continue
		}
		n := b.g.Nodes[id]
		memID := n.Mem.ID
		spec := &p.Mems[memID]
		addr := st[p.WAddrOff[id]]
		if addr >= uint64(spec.Depth) {
			continue
		}
		dataOff := p.WDataOff[id]
		base := int32(addr) * spec.WordsPer
		mem := b.m.Mems[memID]
		diff := uint64(0)
		for i := int32(0); i < spec.WordsPer; i++ {
			v := st[dataOff+i]
			diff |= mem[base+i] ^ v
			mem[base+i] = v
		}
		if diff != 0 {
			changed = append(changed, int32(memID))
		}
	}
	return changed
}

// StepN runs n cycles on any Sim.
func StepN(s Sim, n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}
