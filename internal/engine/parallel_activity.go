package engine

import (
	"math/bits"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

// ParallelActivity is the multi-threaded essential-signal engine (GSIMMT):
// the Activity engine's per-supernode active bits combined with persistent
// workers and level barriers (workerPool).
//
// Supernodes are levelized over the dependence condensation and distributed
// across persistent worker shards (partition.Result.Shard). Each (shard,
// level) chunk owns a private, word-aligned range of the active-bit array, so
// the Listing-4 multi-bit check runs per shard with no sharing: a worker
// scans exactly its own words. Intra-cycle activations always target strictly
// later levels (dependence edges cannot stay within a level), so workers
// publish them into per-worker outbox masks that the owning shard OR-merges
// into its active words at the level barrier — never touching a word another
// worker can write in the same level. A per-(writer, chunk) dirty flag lets
// the merge skip outboxes that published nothing into the chunk, so an idle
// design no longer pays the O(threads x words) merge every cycle. Register
// and memory commits, external pokes, and the reset slow path run serially
// between cycles, exactly as in Activity.
//
// With ActivityConfig.Coarsen the schedule is the coarsened shard view
// (partition.ShardOpts): consecutive sparse levels merge into one barrier
// span, with every dependence edge inside a merged span co-assigned to one
// shard and ordered inside that shard's chunk. Activations can then target
// the worker's *own current chunk* — a strictly later slot, because chunks
// are sorted in supernode (== topological) order — so activate writes those
// bits straight into the active words (the worker owns them for the whole
// span) and the scan loop re-reads each word until it drains, the same way
// the serial Activity engine picks up same-word activations. Cross-chunk
// targets still go through the outbox and merge at the next barrier.
//
// The engine produces the same state trajectory as Activity and Reference in
// both evaluation modes; the equivalence tests enforce this at several
// thread counts.
type ParallelActivity struct {
	base
	part    *partition.Result
	cfg     ActivityConfig
	threads int
	shard   *partition.ShardView
	levels  int
	pool    *workerPool
	*activationPlan

	// Active-bit storage: one concatenated word array, shard-major then
	// level-minor, each (shard, level) chunk padded to whole words.
	active  []uint64
	out     [][]uint64 // per-worker activation outboxes, same word space
	dirty   [][]bool   // per-worker: chunk index -> outbox has pending bits
	wordLo  [][]int32  // [shard][level] -> first word; [shard][levels] ends it
	supSlot []int32    // supernode -> slot (word*64 + bit)
	slotSup []int32    // slot -> supernode; -1 for padding bits

	// Per-node successor targets (indexed via the embedded plan's
	// succStart): the plan's supernode lists resolved to (word, mask) pairs
	// in the active/outbox word space, plus the owning (shard, level) chunk
	// index for dirty marking.
	succWord  []int32
	succMask  []uint64
	succChunk []int32

	// Kernel mode: per-supernode fused closure chains. nil under EvalInterp.
	supKerns []supKernel

	// batches is the per-shard kernel batching fast path (EvalKernel with
	// MultiBitCheck only): for each active word whose supernodes all need no
	// change tracking, their chains pre-concatenated into one sweep. nil
	// when batching is off; a zero full mask marks a non-batchable word.
	batches []wordBatch

	pendingFlag  []bool
	memReadSlots [][]slotMask
	memScratch   []int32
	resetSlots   map[int32][]slotMask

	ws []*paWorker
}

// slotMask addresses one supernode's active bit: active[word] |= mask.
type slotMask struct {
	word int32
	mask uint64
}

// wordBatch is one active word's supernodes concatenated into a single
// closure sweep — the per-shard kernel batching of a (shard, level) chunk.
// A word qualifies when none of its supernodes has change-tracked members
// (no comb or memory-read nodes, so the sweep produces no activations); the
// fast path fires when the word is fully active, replacing per-bit dispatch
// with one chain sweep plus bulk stat accounting, exactly equivalent to
// evaluating the supernodes bit by bit.
type wordBatch struct {
	full   uint64 // mask of populated slots; 0 = word not batchable
	count  uint64 // populated slot count (popcount of full)
	fns    []emit.BoundFn
	nodes  uint64
	instrs uint64
	regs   []int32
}

// paWorker is one worker's private state: scratch buffer, pending-register
// list, and stat counters, merged serially at end of cycle.
type paWorker struct {
	e       *ParallelActivity
	id      int
	chunk   int32 // chunk index currently being swept (w*levels + lv)
	scratch []uint64
	pending []int32

	nodeEvals    uint64
	activations  uint64
	examinations uint64
	instrs       uint64
}

// NewParallelActivity builds the multi-threaded essential-signal engine over
// a compiled program and a supernode partition of the same graph. In kernel
// mode (the default) every supernode is fused into one closure chain;
// EvalInterp selects the per-instruction reference interpreter.
func NewParallelActivity(p *emit.Program, part *partition.Result, cfg ActivityConfig, threads int, mode EvalMode) *ParallelActivity {
	if threads < 1 {
		threads = 1
	}
	if cfg.BranchlessMax == 0 {
		cfg.BranchlessMax = DefaultBranchlessMax
	}
	e := &ParallelActivity{
		base:    newBase(p, mode),
		part:    part,
		cfg:     cfg,
		threads: threads,
	}
	g := p.Graph

	e.shard = part.ShardOpts(g, threads,
		func(id int32) int64 { return int64(p.Code[id].Len()) },
		partition.CoarsenOptions{Enable: cfg.Coarsen, Grain: cfg.CoarsenGrain})
	e.levels = e.shard.Levels
	e.obsLevels = e.shard.Levels
	e.obsOrigLevels = e.shard.OrigLevels
	e.activationPlan = buildActivationPlan(p, part, cfg, e.resets)

	// Slot layout: shard-major, level-minor, each chunk padded to whole
	// words, so no active word is shared between shards or between levels.
	e.supSlot = make([]int32, part.Count())
	e.wordLo = make([][]int32, threads)
	var words int32
	for w := 0; w < threads; w++ {
		e.wordLo[w] = make([]int32, e.levels+1)
		for lv := 0; lv < e.levels; lv++ {
			e.wordLo[w][lv] = words
			chunk := e.shard.Chunks[lv][w]
			for i, s := range chunk {
				e.supSlot[s] = words*64 + int32(i)
			}
			words += int32(len(chunk)+63) / 64
		}
		e.wordLo[w][e.levels] = words
	}
	e.active = make([]uint64, words)
	e.slotSup = make([]int32, int(words)*64)
	for i := range e.slotSup {
		e.slotSup[i] = -1
	}
	for s, slot := range e.supSlot {
		e.slotSup[slot] = int32(s)
	}
	e.out = make([][]uint64, threads)
	e.dirty = make([][]bool, threads)
	for w := range e.out {
		e.out[w] = make([]uint64, words)
		e.dirty[w] = make([]bool, threads*e.levels)
	}
	// wordChunk maps an active word to its owning (shard, level) chunk index
	// (shard*levels + level), the granule of outbox dirty tracking.
	wordChunk := make([]int32, words)
	for w := 0; w < threads; w++ {
		for lv := 0; lv < e.levels; lv++ {
			for wi := e.wordLo[w][lv]; wi < e.wordLo[w][lv+1]; wi++ {
				wordChunk[wi] = int32(w*e.levels + lv)
			}
		}
	}

	e.pendingFlag = make([]bool, len(g.Nodes))

	// Resolve the plan's supernode targets to (word, mask) pairs in this
	// engine's active/outbox word space.
	e.succWord = make([]int32, len(e.succSups))
	e.succMask = make([]uint64, len(e.succSups))
	e.succChunk = make([]int32, len(e.succSups))
	for i, s := range e.succSups {
		slot := e.supSlot[s]
		e.succWord[i] = slot >> 6
		e.succMask[i] = uint64(1) << uint(slot&63)
		e.succChunk[i] = wordChunk[slot>>6]
	}
	e.memReadSlots = make([][]slotMask, len(e.memReadSups))
	for mi, sups := range e.memReadSups {
		for _, s := range sups {
			e.memReadSlots[mi] = append(e.memReadSlots[mi], e.slotOf(s))
		}
	}
	if e.resetRegSups != nil {
		e.resetSlots = map[int32][]slotMask{}
		for sig, sups := range e.resetRegSups {
			for _, s := range sups {
				e.resetSlots[sig] = append(e.resetSlots[sig], e.slotOf(s))
			}
		}
	}

	scratchWords := e.maxWords
	if mode != EvalInterp {
		var kw int32
		e.supKerns, kw = buildSupKernels(p, e.m, e.activationPlan, mode)
		if kw > scratchWords {
			scratchWords = kw
		}
		if mode == EvalKernel && cfg.MultiBitCheck {
			e.batches = e.buildWordBatches()
		}
	}
	e.ws = make([]*paWorker, threads)
	for w := 0; w < threads; w++ {
		e.ws[w] = &paWorker{e: e, id: w, scratch: make([]uint64, scratchWords)}
	}
	e.pool = newWorkerPool(threads, e.levels, e.runLevel)

	e.activateAll()
	return e
}

// buildWordBatches derives the per-shard batching table: one entry per
// active word, populated when every supernode in the word is free of
// change-tracked members. Chunk padding guarantees a word never spans two
// (shard, level) chunks, so a batch is always a slice of one chunk and the
// sweep order (ascending slot == ascending supernode, a dependence order
// even inside coarsened chunks) matches per-bit dispatch exactly. The
// batch's chain is compiled whole from the member nodes rather than stitched
// from the per-supernode chains, so superinstruction fusion reaches across
// supernode boundaries inside the word.
func (e *ParallelActivity) buildWordBatches() []wordBatch {
	batches := make([]wordBatch, len(e.active))
	for wi := range batches {
		ba := &batches[wi]
		var sups []int32
		ok := true
		for b := 0; b < 64; b++ {
			s := e.slotSup[wi<<6+b]
			if s < 0 {
				continue // padding tail
			}
			sups = append(sups, s)
			ba.full |= uint64(1) << uint(b)
			if len(e.supKerns[s].track) != 0 {
				ok = false
			}
		}
		if !ok || len(sups) == 0 {
			*ba = wordBatch{}
			continue
		}
		ba.count = uint64(len(sups))
		var ids []int32
		for _, s := range sups {
			sk := &e.supKerns[s]
			ids = append(ids, e.members[e.supStart[s]:e.supStart[s+1]]...)
			ba.nodes += sk.nodes
			ba.instrs += sk.instrs
			ba.regs = append(ba.regs, sk.regs...)
		}
		ba.fns = e.m.Prog.CompileNodesBound(e.m, ids)
	}
	return batches
}

func (e *ParallelActivity) slotOf(sup int32) slotMask {
	slot := e.supSlot[sup]
	return slotMask{word: slot >> 6, mask: uint64(1) << uint(slot&63)}
}

func (e *ParallelActivity) activateAll() {
	for _, slot := range e.supSlot {
		e.active[slot>>6] |= uint64(1) << uint(slot&63)
	}
}

// Reset restores complete power-on state (image, memories, counters) and
// re-arms full evaluation: active bits, outboxes, dirty flags, and pending
// lists all return to their post-construction shape, with no recompilation.
func (e *ParallelActivity) Reset() {
	e.resetBase()
	for i := range e.active {
		e.active[i] = 0
	}
	e.activateAll()
	for w := range e.out {
		out := e.out[w]
		for i := range out {
			out[i] = 0
		}
		dirty := e.dirty[w]
		for i := range dirty {
			dirty[i] = false
		}
	}
	for _, ws := range e.ws {
		for _, id := range ws.pending {
			e.pendingFlag[id] = false
		}
		ws.pending = ws.pending[:0]
		ws.nodeEvals, ws.activations, ws.examinations, ws.instrs = 0, 0, 0, 0
	}
}

// Poke sets an input and activates its readers when the value changes.
func (e *ParallelActivity) Poke(nodeID int, v bitvec.BV) {
	if e.m.Poke(nodeID, v) {
		e.activateReaders(int32(nodeID))
		for _, sm := range e.resetSlots[int32(nodeID)] {
			e.active[sm.word] |= sm.mask
		}
	}
}

// activateReaders sets reader-supernode active bits directly; only safe while
// the workers are idle (poke, commit, and reset time).
func (e *ParallelActivity) activateReaders(id int32) {
	for k := e.succStart[id]; k < e.succStart[id+1]; k++ {
		e.active[e.succWord[k]] |= e.succMask[k]
	}
	e.stats.Activations += uint64(e.succStart[id+1] - e.succStart[id])
}

// Step simulates one cycle: all workers sweep their shards level by level,
// then registers, memories, and resets commit serially.
func (e *ParallelActivity) Step() {
	e.stats.Cycles++
	e.pool.cycle()
	for _, ws := range e.ws {
		e.stats.NodeEvals += ws.nodeEvals
		e.stats.Activations += ws.activations
		e.stats.Examinations += ws.examinations
		e.countInstrs(ws.instrs)
		ws.nodeEvals, ws.activations, ws.examinations, ws.instrs = 0, 0, 0, 0
	}
	e.commit()
	e.sampleTrace()
}

// runLevel sweeps worker w's chunk of level lv. The worker first drains
// every outbox marked dirty for its chunk (all writers finished strictly
// earlier levels, so the merge is race-free), then applies the multi-bit
// check to the merged words. Clean outboxes — the common case on idle
// designs — are skipped entirely.
//
// The scan re-reads each active word until it drains rather than working on
// a snapshot: under coarsening a supernode can activate a later slot of the
// chunk currently being swept — including a later bit of the same word —
// and the re-read picks it up, exactly like the serial Activity loop.
// Activation targets never precede their source in slot order (chunks are
// sorted in topological supernode order), so the forward scan misses
// nothing. Without coarsening no one writes a word mid-scan and the loop
// degenerates to the old snapshot behavior, examinations included.
func (e *ParallelActivity) runLevel(w, lv int) {
	ws := e.ws[w]
	lo, hi := e.wordLo[w][lv], e.wordLo[w][lv+1]
	if lo == hi {
		return
	}
	chunk := int32(w*e.levels + lv)
	ws.chunk = chunk
	for u := range e.out {
		du := e.dirty[u]
		if !du[chunk] {
			continue
		}
		du[chunk] = false
		out := e.out[u]
		for wi := lo; wi < hi; wi++ {
			e.active[wi] |= out[wi]
			out[wi] = 0
		}
	}
	for wi := lo; wi < hi; wi++ {
		if e.batches != nil {
			// Batch supernodes are track-free: the sweep publishes no
			// activations, so the word cannot refill mid-batch.
			if ba := &e.batches[wi]; ba.full != 0 && e.active[wi] == ba.full {
				e.active[wi] = 0
				ws.runBatch(ba)
				continue
			}
		}
		if e.cfg.MultiBitCheck {
			// Listing 4 applied per shard: one test clears 64 bits.
			ws.examinations++
			for {
				word := e.active[wi]
				if word == 0 {
					break
				}
				b := bits.TrailingZeros64(word)
				e.active[wi] &^= uint64(1) << uint(b)
				ws.examinations++
				ws.evalSupernode(e.slotSup[int(wi)<<6+b])
			}
		} else {
			for b := 0; b < 64; b++ {
				s := e.slotSup[int(wi)<<6+b]
				if s < 0 {
					break // padding tail; real slots are packed low
				}
				ws.examinations++
				if mask := uint64(1) << uint(b); e.active[wi]&mask != 0 {
					e.active[wi] &^= mask
					ws.evalSupernode(s)
				}
			}
		}
	}
}

// runBatch sweeps a fully-active word's concatenated supernode chains in one
// pass. Stat accounting mirrors the per-bit path exactly: one examination
// for the word test plus one per set bit, then the pre-summed node and
// instruction counts; the supernodes have no tracked members, so the only
// per-member bookkeeping left is the register pending check.
func (ws *paWorker) runBatch(ba *wordBatch) {
	e := ws.e
	ws.examinations += 1 + ba.count
	m := e.m
	st := m.State
	for _, f := range ba.fns {
		f()
	}
	ws.nodeEvals += ba.nodes
	ws.instrs += ba.instrs
	p := m.Prog
	for _, id := range ba.regs {
		if !e.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
			e.pendingFlag[id] = true
			ws.pending = append(ws.pending, id)
		}
	}
}

// evalSupernode evaluates one supernode's members, dispatching to the fused
// kernel chain or the interpreter sweep, whichever the engine was built
// with. Both mirror Activity.evalSupernode with worker-private side state.
func (ws *paWorker) evalSupernode(s int32) {
	e := ws.e
	if e.supKerns != nil {
		ws.evalSupernodeKernel(s)
		return
	}
	p := e.m.Prog
	st := e.m.State
	for k := e.supStart[s]; k < e.supStart[s+1]; k++ {
		id := e.members[k]
		code := p.Code[id]
		ws.nodeEvals++
		ws.instrs += uint64(code.Len())
		switch e.kind[id] {
		case ir.KindReg:
			e.m.Exec(code.Start, code.End)
			if !e.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
				e.pendingFlag[id] = true
				ws.pending = append(ws.pending, id)
			}
		case ir.KindMemWrite:
			e.m.Exec(code.Start, code.End)
		default: // comb, memread
			off, w := p.Off[id], p.WordsOf[id]
			old := ws.scratch[:w]
			copy(old, st[off:off+w])
			e.m.Exec(code.Start, code.End)
			var diff uint64
			for i := int32(0); i < w; i++ {
				diff |= old[i] ^ st[off+i]
			}
			ws.activate(id, diff)
		}
	}
}

// evalSupernodeKernel is the closure-threaded path: park old values, run the
// supernode's fused closure chain, then diff and activate — the parallel
// twin of Activity.evalSupernodeKernel over worker-private state.
func (ws *paWorker) evalSupernodeKernel(s int32) {
	e := ws.e
	sk := &e.supKerns[s]
	m := e.m
	st := m.State
	scr := ws.scratch
	for _, t := range sk.track {
		copy(scr[t.scr:t.scr+t.w], st[t.off:t.off+t.w])
	}
	sk.sweep(st, m)
	ws.nodeEvals += sk.nodes
	ws.instrs += sk.instrs
	for _, t := range sk.track {
		var diff uint64
		for i := int32(0); i < t.w; i++ {
			diff |= scr[t.scr+i] ^ st[t.off+i]
		}
		ws.activate(t.id, diff)
	}
	p := m.Prog
	for _, id := range sk.regs {
		if !e.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
			e.pendingFlag[id] = true
			ws.pending = append(ws.pending, id)
		}
	}
}

// activate publishes successor activations into the worker's outbox and
// marks the target chunks dirty. Targets always sit in strictly later
// levels, so the owning shard will merge them before examining the
// corresponding words — except, under coarsening, targets inside the
// worker's *own current chunk* (a dependence edge folded into the merged
// span): those bits go straight into the active words, which the worker owns
// for the whole span and re-reads as it scans forward. No other worker can
// hold that chunk, so the write is race-free; without coarsening the
// same-chunk case never fires. The branchless path marks dirty even for a
// zero mask (by design: it exists to avoid the data-dependent branch); a
// spurious dirty flag only costs the owner one clean-range scan, never
// correctness.
func (ws *paWorker) activate(id int32, diff uint64) {
	e := ws.e
	start, end := e.succStart[id], e.succStart[id+1]
	if start == end {
		return
	}
	out := e.out[ws.id]
	dirty := e.dirty[ws.id]
	if e.useBranch[id] {
		if diff != 0 {
			for k := start; k < end; k++ {
				if e.succChunk[k] == ws.chunk {
					e.active[e.succWord[k]] |= e.succMask[k]
					continue
				}
				out[e.succWord[k]] |= e.succMask[k]
				dirty[e.succChunk[k]] = true
			}
			ws.activations += uint64(end - start)
		}
		return
	}
	// Branchless: mask is all-ones iff diff != 0.
	m := uint64(0) - ((diff | -diff) >> 63)
	for k := start; k < end; k++ {
		if e.succChunk[k] == ws.chunk {
			e.active[e.succWord[k]] |= e.succMask[k] & m
			continue
		}
		out[e.succWord[k]] |= e.succMask[k] & m
		dirty[e.succChunk[k]] = true
	}
	ws.activations += uint64(end - start)
}

// commit batches register and memory commits at end of cycle, then runs the
// reset slow path — all serial, while the workers are parked.
func (e *ParallelActivity) commit() {
	p := e.m.Prog
	st := e.m.State
	for _, ws := range e.ws {
		for _, id := range ws.pending {
			e.pendingFlag[id] = false
			cur, next, w := p.Off[id], p.NextOff[id], p.WordsOf[id]
			copy(st[cur:cur+w], st[next:next+w])
			e.stats.RegCommits++
			e.activateReaders(id)
		}
		ws.pending = ws.pending[:0]
	}

	e.memScratch = e.commitWrites(e.memScratch[:0])
	for _, memID := range e.memScratch {
		for _, sm := range e.memReadSlots[memID] {
			e.active[sm.word] |= sm.mask
		}
	}

	e.applyResets(e.activateReaders)
}

// Close shuts down the worker goroutines and blocks until every one has
// exited. It must not be called concurrently with Step; calling it more than
// once is safe.
func (e *ParallelActivity) Close() { e.pool.Close() }

// Shard exposes the engine's thread-shard view (chunk membership and weight
// metadata) for diagnostics.
func (e *ParallelActivity) Shard() *partition.ShardView { return e.shard }

// BatchedWords reports how many active words qualified for per-shard kernel
// batching (0 when batching is off: interp/nofuse mode or no MultiBitCheck).
func (e *ParallelActivity) BatchedWords() (batched, total int) {
	for i := range e.batches {
		if e.batches[i].full != 0 {
			batched++
		}
	}
	return batched, len(e.active)
}
