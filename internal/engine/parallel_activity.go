package engine

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"gsim/internal/bitvec"
	"gsim/internal/emit"
	"gsim/internal/ir"
	"gsim/internal/partition"
)

// ParallelActivity is the multi-threaded essential-signal engine (GSIMMT):
// the Activity engine's per-supernode active bits combined with the Parallel
// engine's persistent workers and level barriers.
//
// Supernodes are levelized over the dependence condensation and distributed
// across persistent worker shards (partition.Result.Shard). Each (shard,
// level) chunk owns a private, word-aligned range of the active-bit array, so
// the Listing-4 multi-bit check runs per shard with no sharing: a worker
// scans exactly its own words. Intra-cycle activations always target strictly
// later levels (dependence edges cannot stay within a level), so workers
// publish them into per-worker outbox masks that the owning shard OR-merges
// into its active words at the level barrier — never touching a word another
// worker can write in the same level. Register and memory commits, external
// pokes, and the reset slow path run serially between cycles, exactly as in
// Activity.
//
// The engine produces the same state trajectory as Activity and Reference;
// the equivalence tests enforce this at several thread counts.
type ParallelActivity struct {
	base
	part    *partition.Result
	cfg     ActivityConfig
	threads int
	shard   *partition.ShardView
	levels  int
	*activationPlan

	// Active-bit storage: one concatenated word array, shard-major then
	// level-minor, each (shard, level) chunk padded to whole words.
	active  []uint64
	out     [][]uint64 // per-worker activation outboxes, same word space
	wordLo  [][]int32  // [shard][level] -> first word; [shard][levels] ends it
	supSlot []int32    // supernode -> slot (word*64 + bit)
	slotSup []int32    // slot -> supernode; -1 for padding bits

	// Per-node successor targets (indexed via the embedded plan's
	// succStart): the plan's supernode lists resolved to (word, mask) pairs
	// in the active/outbox word space.
	succWord []int32
	succMask []uint64

	pendingFlag  []bool
	memReadSlots [][]slotMask
	memScratch   []int32
	resetSlots   map[int32][]slotMask

	ws []*paWorker

	workers   sync.WaitGroup
	startCh   []chan struct{}
	doneCh    chan struct{}
	level     atomic.Int32
	barrier   atomic.Int32
	closeOnce sync.Once
}

// slotMask addresses one supernode's active bit: active[word] |= mask.
type slotMask struct {
	word int32
	mask uint64
}

// paWorker is one worker's private state: scratch buffer, pending-register
// list, and stat counters, merged serially at end of cycle.
type paWorker struct {
	e       *ParallelActivity
	id      int
	scratch []uint64
	pending []int32

	nodeEvals    uint64
	activations  uint64
	examinations uint64
	instrs       uint64
}

// NewParallelActivity builds the multi-threaded essential-signal engine over
// a compiled program and a supernode partition of the same graph.
func NewParallelActivity(p *emit.Program, part *partition.Result, cfg ActivityConfig, threads int) *ParallelActivity {
	if threads < 1 {
		threads = 1
	}
	if cfg.BranchlessMax == 0 {
		cfg.BranchlessMax = DefaultBranchlessMax
	}
	e := &ParallelActivity{
		base:    newBase(p),
		part:    part,
		cfg:     cfg,
		threads: threads,
		doneCh:  make(chan struct{}),
	}
	g := p.Graph

	e.shard = part.Shard(g, threads, func(id int32) int64 { return int64(p.Code[id].Len()) })
	e.levels = e.shard.Levels
	e.activationPlan = buildActivationPlan(p, part, cfg, e.resets)

	// Slot layout: shard-major, level-minor, each chunk padded to whole
	// words, so no active word is shared between shards or between levels.
	e.supSlot = make([]int32, part.Count())
	e.wordLo = make([][]int32, threads)
	var words int32
	for w := 0; w < threads; w++ {
		e.wordLo[w] = make([]int32, e.levels+1)
		for lv := 0; lv < e.levels; lv++ {
			e.wordLo[w][lv] = words
			chunk := e.shard.Chunks[lv][w]
			for i, s := range chunk {
				e.supSlot[s] = words*64 + int32(i)
			}
			words += int32(len(chunk)+63) / 64
		}
		e.wordLo[w][e.levels] = words
	}
	e.active = make([]uint64, words)
	e.slotSup = make([]int32, int(words)*64)
	for i := range e.slotSup {
		e.slotSup[i] = -1
	}
	for s, slot := range e.supSlot {
		e.slotSup[slot] = int32(s)
	}
	e.out = make([][]uint64, threads)
	for w := range e.out {
		e.out[w] = make([]uint64, words)
	}

	e.pendingFlag = make([]bool, len(g.Nodes))

	// Resolve the plan's supernode targets to (word, mask) pairs in this
	// engine's active/outbox word space.
	e.succWord = make([]int32, len(e.succSups))
	e.succMask = make([]uint64, len(e.succSups))
	for i, s := range e.succSups {
		slot := e.supSlot[s]
		e.succWord[i] = slot >> 6
		e.succMask[i] = uint64(1) << uint(slot&63)
	}
	e.memReadSlots = make([][]slotMask, len(e.memReadSups))
	for mi, sups := range e.memReadSups {
		for _, s := range sups {
			e.memReadSlots[mi] = append(e.memReadSlots[mi], e.slotOf(s))
		}
	}
	if e.resetRegSups != nil {
		e.resetSlots = map[int32][]slotMask{}
		for sig, sups := range e.resetRegSups {
			for _, s := range sups {
				e.resetSlots[sig] = append(e.resetSlots[sig], e.slotOf(s))
			}
		}
	}

	e.ws = make([]*paWorker, threads)
	e.startCh = make([]chan struct{}, threads)
	e.workers.Add(threads)
	for w := 0; w < threads; w++ {
		e.ws[w] = &paWorker{e: e, id: w, scratch: make([]uint64, e.maxWords)}
		e.startCh[w] = make(chan struct{}, 1)
		go e.workerLoop(w)
	}

	e.activateAll()
	return e
}

func (e *ParallelActivity) slotOf(sup int32) slotMask {
	slot := e.supSlot[sup]
	return slotMask{word: slot >> 6, mask: uint64(1) << uint(slot&63)}
}

func (e *ParallelActivity) activateAll() {
	for _, slot := range e.supSlot {
		e.active[slot>>6] |= uint64(1) << uint(slot&63)
	}
}

// Reset restores initial state and re-arms full evaluation.
func (e *ParallelActivity) Reset() {
	e.m.Reset()
	e.activateAll()
	for _, ws := range e.ws {
		for _, id := range ws.pending {
			e.pendingFlag[id] = false
		}
		ws.pending = ws.pending[:0]
	}
}

// Poke sets an input and activates its readers when the value changes.
func (e *ParallelActivity) Poke(nodeID int, v bitvec.BV) {
	if e.m.Poke(nodeID, v) {
		e.activateReaders(int32(nodeID))
		for _, sm := range e.resetSlots[int32(nodeID)] {
			e.active[sm.word] |= sm.mask
		}
	}
}

// activateReaders sets reader-supernode active bits directly; only safe while
// the workers are idle (poke, commit, and reset time).
func (e *ParallelActivity) activateReaders(id int32) {
	for k := e.succStart[id]; k < e.succStart[id+1]; k++ {
		e.active[e.succWord[k]] |= e.succMask[k]
	}
	e.stats.Activations += uint64(e.succStart[id+1] - e.succStart[id])
}

// Step simulates one cycle: all workers sweep their shards level by level,
// then registers, memories, and resets commit serially.
func (e *ParallelActivity) Step() {
	e.stats.Cycles++
	e.level.Store(0)
	e.barrier.Store(int32(e.threads))
	for w := 0; w < e.threads; w++ {
		e.startCh[w] <- struct{}{}
	}
	for w := 0; w < e.threads; w++ {
		<-e.doneCh
	}
	for _, ws := range e.ws {
		e.stats.NodeEvals += ws.nodeEvals
		e.stats.Activations += ws.activations
		e.stats.Examinations += ws.examinations
		e.stats.InstrsExecuted += ws.instrs
		ws.nodeEvals, ws.activations, ws.examinations, ws.instrs = 0, 0, 0, 0
	}
	e.commit()
}

// workerLoop runs one worker until its start channel is closed.
func (e *ParallelActivity) workerLoop(w int) {
	defer e.workers.Done()
	ws := e.ws[w]
	for range e.startCh[w] {
		ws.runCycle()
		e.doneCh <- struct{}{}
	}
}

// runCycle sweeps the worker's chunks of every level. At each level the
// worker first drains every outbox word targeting its chunk (all writers
// finished strictly earlier levels, so the merge is race-free), then applies
// the multi-bit check to the merged word.
func (ws *paWorker) runCycle() {
	e := ws.e
	for lv := 0; lv < e.levels; lv++ {
		// Wait for the level to open; yield while spinning, as worker counts
		// can exceed core counts during thread-sweep experiments.
		for e.level.Load() < int32(lv) {
			runtime.Gosched()
		}
		lo, hi := e.wordLo[ws.id][lv], e.wordLo[ws.id][lv+1]
		for wi := lo; wi < hi; wi++ {
			word := e.active[wi]
			e.active[wi] = 0
			for u := range e.out {
				word |= e.out[u][wi]
				e.out[u][wi] = 0
			}
			if e.cfg.MultiBitCheck {
				// Listing 4 applied per shard: one test clears 64 bits.
				ws.examinations++
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= uint64(1) << uint(b)
					ws.examinations++
					ws.evalSupernode(e.slotSup[int(wi)<<6+b])
				}
			} else {
				for b := 0; b < 64; b++ {
					s := e.slotSup[int(wi)<<6+b]
					if s < 0 {
						break // padding tail; real slots are packed low
					}
					ws.examinations++
					if word&(uint64(1)<<uint(b)) != 0 {
						ws.evalSupernode(s)
					}
				}
			}
		}
		if e.barrier.Add(-1) == 0 {
			// Last worker out resets the countdown and opens the next level.
			e.barrier.Store(int32(e.threads))
			e.level.Add(1)
		}
	}
}

// evalSupernode evaluates one supernode's members in dependence order,
// mirroring Activity.evalSupernode with worker-private side state.
func (ws *paWorker) evalSupernode(s int32) {
	e := ws.e
	p := e.m.Prog
	st := e.m.State
	for k := e.supStart[s]; k < e.supStart[s+1]; k++ {
		id := e.members[k]
		code := p.Code[id]
		ws.nodeEvals++
		ws.instrs += uint64(code.Len())
		switch e.kind[id] {
		case ir.KindReg:
			e.m.Exec(code.Start, code.End)
			if !e.pendingFlag[id] && !wordsEqual(st, p.Off[id], p.NextOff[id], p.WordsOf[id]) {
				e.pendingFlag[id] = true
				ws.pending = append(ws.pending, id)
			}
		case ir.KindMemWrite:
			e.m.Exec(code.Start, code.End)
		default: // comb, memread
			off, w := p.Off[id], p.WordsOf[id]
			old := ws.scratch[:w]
			copy(old, st[off:off+w])
			e.m.Exec(code.Start, code.End)
			var diff uint64
			for i := int32(0); i < w; i++ {
				diff |= old[i] ^ st[off+i]
			}
			ws.activate(id, diff)
		}
	}
}

// activate publishes successor activations into the worker's outbox. Targets
// always sit in strictly later levels, so the owning shard will merge them
// before examining the corresponding words.
func (ws *paWorker) activate(id int32, diff uint64) {
	e := ws.e
	start, end := e.succStart[id], e.succStart[id+1]
	if start == end {
		return
	}
	out := e.out[ws.id]
	if e.useBranch[id] {
		if diff != 0 {
			for k := start; k < end; k++ {
				out[e.succWord[k]] |= e.succMask[k]
			}
			ws.activations += uint64(end - start)
		}
		return
	}
	// Branchless: mask is all-ones iff diff != 0.
	m := uint64(0) - ((diff | -diff) >> 63)
	for k := start; k < end; k++ {
		out[e.succWord[k]] |= e.succMask[k] & m
	}
	ws.activations += uint64(end - start)
}

// commit batches register and memory commits at end of cycle, then runs the
// reset slow path — all serial, while the workers are parked.
func (e *ParallelActivity) commit() {
	p := e.m.Prog
	st := e.m.State
	for _, ws := range e.ws {
		for _, id := range ws.pending {
			e.pendingFlag[id] = false
			cur, next, w := p.Off[id], p.NextOff[id], p.WordsOf[id]
			copy(st[cur:cur+w], st[next:next+w])
			e.stats.RegCommits++
			e.activateReaders(id)
		}
		ws.pending = ws.pending[:0]
	}

	e.memScratch = e.commitWrites(e.memScratch[:0])
	for _, memID := range e.memScratch {
		for _, sm := range e.memReadSlots[memID] {
			e.active[sm.word] |= sm.mask
		}
	}

	e.applyResets(e.activateReaders)
}

// Close shuts down the worker goroutines and blocks until every one has
// exited. It must not be called concurrently with Step; calling it more than
// once is safe.
func (e *ParallelActivity) Close() {
	e.closeOnce.Do(func() {
		for w := 0; w < e.threads; w++ {
			close(e.startCh[w])
		}
		e.workers.Wait()
	})
}
