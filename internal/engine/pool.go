package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"gsim/internal/faultpoint"
)

// workerPool is the persistent worker-pool and level-barrier scaffolding
// shared by Parallel and ParallelActivity. It owns the goroutines, the
// per-cycle start/done handshake, the atomic level countdown between
// barriers, and the deterministic idempotent Close — keeping the two
// engines' synchronization behavior from diverging (ROADMAP open item).
//
// Each cycle() runs every worker through levels 0..levels-1: a worker calls
// run(w, lv) for its share of level lv, then waits at the barrier until the
// last worker through opens the next level. run must only touch state that
// is private to (w, lv) or published by strictly earlier levels; the barrier
// atomics provide the happens-before edges.
type workerPool struct {
	threads int
	levels  int
	run     func(w, lv int)

	wg        sync.WaitGroup
	startCh   []chan struct{}
	doneCh    chan struct{}
	level     atomic.Int32
	pending   atomic.Int32
	closeOnce sync.Once

	// A panic in a worker goroutine would kill the whole process (recover
	// only works on the panicking goroutine), taking every session down with
	// the one that hit a bad kernel. Instead each worker recovers, records
	// the first panic here, and keeps honoring the barrier protocol so the
	// cycle completes; cycle() then re-raises the panic on the calling
	// goroutine, where the session layer can contain it.
	panicMu  sync.Mutex
	panicVal error
}

// newWorkerPool starts threads persistent workers executing run.
func newWorkerPool(threads, levels int, run func(w, lv int)) *workerPool {
	p := &workerPool{
		threads: threads,
		levels:  levels,
		run:     run,
		startCh: make([]chan struct{}, threads),
		doneCh:  make(chan struct{}),
	}
	p.wg.Add(threads)
	for w := 0; w < threads; w++ {
		p.startCh[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

// loop runs one worker until its start channel is closed.
func (p *workerPool) loop(w int) {
	defer p.wg.Done()
	for range p.startCh[w] {
		for lv := 0; lv < p.levels; lv++ {
			// Wait for the level to open. Yield while spinning: worker counts
			// routinely exceed core counts (the experiments sweep thread
			// counts the way the paper does), and a pure spin then starves
			// the workers that still hold work.
			for p.level.Load() < int32(lv) {
				runtime.Gosched()
			}
			p.safeRun(w, lv)
			if p.pending.Add(-1) == 0 {
				// Last worker out resets the countdown and opens the next level.
				p.pending.Store(int32(p.threads))
				p.level.Add(1)
			}
		}
		p.doneCh <- struct{}{}
	}
}

// safeRun executes run(w, lv) with panic containment: a panicking worker
// records the failure (first panic wins) and returns normally, so the level
// countdown and barrier handshake still complete and the other workers and
// the coordinating goroutine are never wedged.
func (p *workerPool) safeRun(w, lv int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = fmt.Errorf("engine: worker %d panicked at level %d: %v\n%s", w, lv, r, debug.Stack())
			}
			p.panicMu.Unlock()
		}
	}()
	if faultpoint.Hit(faultpoint.PoolPanic) {
		panic("faultpoint: injected worker panic")
	}
	p.run(w, lv)
}

// cycle runs one full sweep: all workers through all levels, returning after
// every worker has parked again. A worker panic during the sweep is re-raised
// here, on the calling goroutine — the machine state for this cycle is
// indeterminate (the panicking worker's share is incomplete), but the pool's
// synchronization state is intact: the caller may Close it, and isolation
// layers above (server sessions) recover and poison only their own session.
func (p *workerPool) cycle() {
	p.level.Store(0)
	p.pending.Store(int32(p.threads))
	for w := 0; w < p.threads; w++ {
		p.startCh[w] <- struct{}{}
	}
	for w := 0; w < p.threads; w++ {
		<-p.doneCh
	}
	p.panicMu.Lock()
	pv := p.panicVal
	p.panicVal = nil
	p.panicMu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

// Close shuts down the worker goroutines and blocks until every one has
// exited. It must not be called concurrently with cycle; calling it more
// than once is safe.
func (p *workerPool) Close() {
	p.closeOnce.Do(func() {
		for w := 0; w < p.threads; w++ {
			close(p.startCh[w])
		}
		p.wg.Wait()
	})
}
