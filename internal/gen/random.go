// Package gen builds circuits: randomized graphs for property and
// equivalence testing, a library of processor-style components, and the
// synthetic large-scale design profiles standing in for Rocket, BOOM, and
// XiangShan (see DESIGN.md's substitution table).
package gen

import (
	"fmt"
	"math/rand"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// RandomConfig shapes a random circuit.
type RandomConfig struct {
	Nodes     int     // approximate combinational node count
	Inputs    int     // external inputs (besides reset)
	Regs      int     // registers
	MaxWidth  int     // widest signal
	MemDepth  int     // 0 disables the memory
	WideFrac  float64 // fraction of nodes pushed above 64 bits
	ResetFrac float64 // fraction of registers with a reset mux
}

// DefaultRandomConfig returns a moderate test circuit shape.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Nodes:     120,
		Inputs:    4,
		Regs:      16,
		MaxWidth:  48,
		MemDepth:  16,
		WideFrac:  0.1,
		ResetFrac: 0.5,
	}
}

// Random builds a random synchronous circuit: a DAG of primops over inputs
// and registers, register feedback (including reset muxes), one memory with
// a read and a write port, and a checksum output that keeps the whole cone
// live. Deterministic per seed. The result is validated.
func Random(seed int64, cfg RandomConfig) *ir.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder(fmt.Sprintf("random_%d", seed))

	width := func() int {
		w := 1 + rng.Intn(cfg.MaxWidth)
		if cfg.WideFrac > 0 && rng.Float64() < cfg.WideFrac {
			w = 65 + rng.Intn(cfg.MaxWidth+64)
		}
		return w
	}

	reset := b.Input("reset", 1)
	var pool []*ir.Node
	for i := 0; i < cfg.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in%d", i), width()))
	}
	var regs []*ir.Node
	for i := 0; i < cfg.Regs; i++ {
		r := b.RegInit(fmt.Sprintf("r%d", i), width(), bitvec.FromUint64(8, uint64(rng.Intn(200))))
		regs = append(regs, r)
		pool = append(pool, r)
	}

	pick := func() *ir.Expr { return b.R(pool[rng.Intn(len(pool))]) }
	pick1 := func() *ir.Expr { return b.Fit(pick(), 1) }

	var mem *ir.Memory
	if cfg.MemDepth > 0 {
		mem = b.Mem("m", cfg.MemDepth, 1+rng.Intn(32))
	}

	for i := 0; i < cfg.Nodes; i++ {
		var e *ir.Expr
		switch rng.Intn(16) {
		case 0:
			e = b.Add(pick(), pick())
		case 1:
			e = b.Sub(pick(), pick())
		case 2:
			x, y := pick(), pick()
			// Keep multiplications narrow enough to stay meaningful.
			e = b.Mul(b.Fit(x, min(x.Width, 24)), b.Fit(y, min(y.Width, 24)))
		case 3:
			x, y := pick(), pick()
			e = b.Div(b.Fit(x, min(x.Width, 64)), b.Fit(y, min(y.Width, 64)))
		case 4:
			e = b.And(pick(), pick())
		case 5:
			e = b.Or(pick(), pick())
		case 6:
			e = b.Xor(pick(), pick())
		case 7:
			e = b.Not(pick())
		case 8:
			e = b.Mux(pick1(), pick(), pick())
		case 9:
			e = b.Cat(pick(), pick())
		case 10:
			x := pick()
			hi := rng.Intn(x.Width)
			lo := rng.Intn(hi + 1)
			e = ir.BitsOf(x, hi, lo)
		case 11:
			x := pick()
			e = b.Shl(x, rng.Intn(8))
		case 12:
			x := pick()
			e = b.Shr(x, rng.Intn(x.Width))
		case 13:
			x, y := pick(), pick()
			e = b.Dshl(x, b.Fit(y, 5), x.Width+31)
		case 14:
			switch rng.Intn(4) {
			case 0:
				e = b.Eq(pick(), pick())
			case 1:
				e = b.Lt(pick(), pick())
			case 2:
				e = b.SLt(pick(), pick())
			default:
				e = b.OrR(pick())
			}
		default:
			// One-hot decode pattern, so the simplifier's special case gets
			// realistic exercise.
			x := b.Fit(pick(), 4)
			oneHot := b.DshlFull(b.C(1, 1), x)
			e = b.Bit(oneHot, rng.Intn(oneHot.Width))
		}
		n := b.Comb(fmt.Sprintf("n%d", i), e)
		pool = append(pool, n)
	}

	if mem != nil {
		rp := b.MemRead("m_rd", mem, pick())
		pool = append(pool, rp)
		b.MemWrite("m_wr", mem, pick(), pick(), pick1())
	}

	// Register feedback: next values drawn from the pool, half behind a
	// reset mux so the reset-extraction pass has work to do.
	for _, r := range regs {
		nextVal := b.Fit(pick(), r.Width)
		if rng.Float64() < cfg.ResetFrac {
			init := b.CB(bitvec.Pad(r.Init, r.Width))
			b.SetNext(r, b.Mux(b.R(reset), init, nextVal))
		} else {
			b.SetNext(r, nextVal)
		}
	}

	// Checksum outputs keep (nearly) everything live: fold the pool into a
	// few xor trees.
	const nOuts = 4
	var sums [nOuts]*ir.Expr
	for i, n := range pool {
		e := b.Fit(b.R(n), 64)
		if sums[i%nOuts] == nil {
			sums[i%nOuts] = e
		} else {
			sums[i%nOuts] = b.Xor(sums[i%nOuts], e)
		}
	}
	for i, s := range sums {
		if s != nil {
			b.Output(fmt.Sprintf("checksum%d", i), s)
		}
	}

	if err := b.G.Validate(); err != nil {
		panic(fmt.Sprintf("gen: random circuit invalid: %v", err))
	}
	return b.G
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
