package gen

import (
	"fmt"
	"math/rand"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// Profile parameterizes a synthetic processor-like design. The profiles
// stand in for the paper's evaluation designs (Table I): clusters of
// enable-gated execution units, one-hot decode, pipeline registers, FIFOs,
// scoreboards, cache-like memories, and wide concatenated buses with
// partial-bit consumers. Node counts are scaled versions of the paper's
// (the substitution table in DESIGN.md records the factors).
type Profile struct {
	Name            string
	Clusters        int // activity-gating granularity (front-end selects few)
	UnitsPerCluster int
	DataWidth       int // unit datapath width
	PipeDepth       int
	DecodeWays      int
	FifoDepth       int
	CacheSets       int
	Seed            int64
}

// StuCoreLike is a small profile in the spirit of the paper's student core —
// used where a real RV32 core is too slow to rebuild repeatedly.
func StuCoreLike() Profile {
	return Profile{Name: "stucore-like", Clusters: 4, UnitsPerCluster: 4,
		DataWidth: 16, PipeDepth: 2, DecodeWays: 4, FifoDepth: 2, CacheSets: 16, Seed: 11}
}

// RocketLike scales to roughly 1/10 of Rocket's IR size: an in-order
// single-issue shape with a handful of gated clusters.
func RocketLike() Profile {
	return Profile{Name: "rocket-like", Clusters: 16, UnitsPerCluster: 60,
		DataWidth: 32, PipeDepth: 4, DecodeWays: 8, FifoDepth: 4, CacheSets: 64, Seed: 12}
}

// BoomLike scales BOOM: wider datapath, more clusters, deeper pipes.
func BoomLike() Profile {
	return Profile{Name: "boom-like", Clusters: 20, UnitsPerCluster: 84,
		DataWidth: 48, PipeDepth: 5, DecodeWays: 12, FifoDepth: 6, CacheSets: 128, Seed: 13}
}

// XiangShanLike scales XiangShan: the largest profile, six-issue-like width.
func XiangShanLike() Profile {
	return Profile{Name: "xiangshan-like", Clusters: 32, UnitsPerCluster: 102,
		DataWidth: 64, PipeDepth: 6, DecodeWays: 16, FifoDepth: 8, CacheSets: 256, Seed: 14}
}

// Profiles lists the four evaluation designs in Table I order (stucore is
// the real RV32 core; this list covers the synthetic three plus the small
// stand-in).
func Profiles() []Profile {
	return []Profile{StuCoreLike(), RocketLike(), BoomLike(), XiangShanLike()}
}

// BuildProfile elaborates a profile into a validated graph. Inputs:
// "reset" (1 bit) and "stim" (64 bits). The low selector bits of stim choose
// which cluster's front-end is enabled, so a stimulus that dwells on few
// selector values produces the low, stable activity factor of a hot-loop
// workload, while a wide-ranging stimulus mimics a boot.
func BuildProfile(p Profile) *ir.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	b := ir.NewBuilder(p.Name)

	reset := b.Input("reset", 1)
	stim := b.Input("stim", 128)
	selW := bitsFor(p.Clusters)
	// Two independent cluster selectors: a hot-loop stimulus keeps both on
	// the same cluster (minimal activity), a boot-like stimulus spreads them
	// (shifting multi-cluster activity).
	sel := b.Comb("sel", ir.BitsOf(b.R(stim), selW-1, 0))
	sel2 := b.Comb("sel2", ir.BitsOf(b.R(stim), 2*selW-1, selW))

	// Cluster enables via the one-hot decode pattern.
	oh1 := onehotDecoder(b, "clken", b.R(sel), p.Clusters)
	oh2 := onehotDecoder(b, "clken2", b.R(sel2), p.Clusters)
	enables := make([]*ir.Expr, p.Clusters)
	for c := range enables {
		enables[c] = b.R(b.Comb(fmt.Sprintf("en%d", c), b.Or(oh1[c], oh2[c])))
	}

	var clusterSums []*ir.Expr
	for c := 0; c < p.Clusters; c++ {
		cb := b.Scoped(fmt.Sprintf("c%d", c))
		en := enables[c]

		// Front-end: a gated sample of the stimulus payload.
		head := pipeStage(cb, "head", ir.BitsOf(b.R(stim), 2*selW+p.DataWidth-1, 2*selW), en)

		prev := cb.R(head)
		var unitOuts []*ir.Expr
		for u := 0; u < p.UnitsPerCluster; u++ {
			ub := cb.Scoped(fmt.Sprintf("u%d", u))
			l := lfsr(ub, "rng", p.DataWidth, uint64(rng.Int63())|1, en)
			op := ub.Comb("op", ir.BitsOf(ub.R(l), 2, 0))
			// Decode ways gate small per-way accumulators.
			ways := onehotDecoder(ub, "dec", ub.Fit(ir.BitsOf(ub.R(l), 7, 3), bitsFor(p.DecodeWays)), p.DecodeWays)
			var wayAcc *ir.Expr
			for wI, wayEn := range ways {
				wr := pipeStage(ub, fmt.Sprintf("way%d", wI), ub.Fit(prev, 8), ub.Fit(ub.And(wayEn, en), 1))
				if wayAcc == nil {
					wayAcc = ub.Fit(ub.R(wr), p.DataWidth)
				} else {
					wayAcc = ub.Xor(wayAcc, ub.Fit(ub.R(wr), p.DataWidth))
				}
			}
			alu := aluCluster(ub, "ex", prev, ub.Xor(ub.R(l), wayAcc), ub.R(op))
			// Execution pipeline, enable-gated.
			v := alu
			for s := 0; s < p.PipeDepth; s++ {
				v = ub.R(pipeStage(ub, fmt.Sprintf("p%d", s), v, en))
			}
			unitOuts = append(unitOuts, v)
			prev = v
		}

		// Cluster-level structures.
		_, cnt := fifo(cb, "rob", p.DataWidth, p.FifoDepth,
			cb.Fit(cb.And(en, ir.BitsOf(prev, 0, 0)), 1),
			cb.Fit(cb.And(en, ir.BitsOf(prev, 1, 1)), 1),
			prev)
		sbSel := cb.Fit(prev, bitsFor(p.DataWidth))
		sb := scoreboard(cb, "busy", p.DataWidth, sbSel, cb.Fit(ir.BitsOf(prev, 7, 3), bitsFor(p.DataWidth)),
			cb.Fit(cb.And(en, ir.BitsOf(prev, 2, 2)), 1),
			cb.Fit(cb.And(en, ir.BitsOf(prev, 3, 3)), 1))
		cache := cacheLike(cb, "dc", p.CacheSets, 12, p.DataWidth, prev, cb.Fit(cb.And(en, ir.BitsOf(prev, 4, 4)), 1), rng)

		// Wide bus with sliced consumers (bit-splitting target).
		_, views := wideBus(cb, "bus", []*ir.Expr{
			prev,
			cb.Fit(cb.R(sb), p.DataWidth),
			cache,
			cb.Fit(cb.R(cnt), p.DataWidth),
		})
		sum := views[0]
		for _, v := range views[1:] {
			sum = cb.Xor(sum, v)
		}
		clusterSums = append(clusterSums, cb.R(cb.Comb("sum", sum)))
	}

	// Global checksum; a reset-gated control register exercises the reset
	// slow path on a realistic population of registers.
	total := clusterSums[0]
	for _, s := range clusterSums[1:] {
		total = b.Xor(total, s)
	}
	ctl := b.RegInit("ctl", 32, irConst32(0x1234))
	b.SetNext(ctl, b.Mux(b.R(reset), irConstExpr(32, 0x1234), b.AddW(b.R(ctl), b.Fit(total, 32), 32)))
	b.Output("checksum", b.Fit(b.Xor(b.Fit(total, 64), b.Fit(b.R(ctl), 64)), 64))

	if err := b.G.Validate(); err != nil {
		panic(fmt.Sprintf("gen: profile %s invalid: %v", p.Name, err))
	}
	return b.G
}

func irConst32(v uint64) bitvec.BV { return bitvec.FromUint64(32, v) }

func irConstExpr(w int, v uint64) *ir.Expr { return ir.ConstUint(w, v) }
