package gen

import (
	"fmt"
	"math/rand"

	"gsim/internal/ir"
)

// Component library for the synthetic processor profiles. Each block is the
// kind of structure real cores are made of — one-hot decoders, ALU clusters,
// pipeline registers with enables, FIFOs, scoreboards, wide concatenated
// buses with partial-bit consumers — because those structures are exactly
// what the paper's optimizations key on (one-hot patterns for expression
// simplification, cat/bits chains for bit-level splitting, enable-gated
// regions for low activity factors).

// lfsr builds a Galois LFSR register of the given width, stepped when en is
// high. Returns the register node.
func lfsr(b *ir.Builder, name string, width int, seedVal uint64, en *ir.Expr) *ir.Node {
	r := b.Reg(name, width)
	r.Init = r.Init.Clone()
	r.Init.W[0] = seedVal | 1
	fb := b.Bit(b.R(r), 0)
	shifted := b.Shr(b.R(r), 1)
	tapped := b.Xor(b.Fit(shifted, width), b.Fit(b.Mux(fb, b.C(width, taps(width)), b.C(width, 0)), width))
	b.SetNext(r, b.Mux(en, tapped, b.R(r)))
	return r
}

func taps(width int) uint64 {
	switch {
	case width >= 32:
		return 0xC0000401
	case width >= 16:
		return 0xB400
	default:
		return 0xB8
	}
}

// onehotDecoder produces the paper's one-hot decode structure: a shifted-one
// bus plus per-bit checks (bits(1<<sel, k, k)), which the simplifier should
// collapse to comparisons.
func onehotDecoder(b *ir.Builder, name string, sel *ir.Expr, ways int) []*ir.Expr {
	bus := b.Comb(name+"_oh", b.Fit(b.DshlFull(b.C(1, 1), sel), ways))
	outs := make([]*ir.Expr, ways)
	for k := 0; k < ways; k++ {
		outs[k] = b.R(b.Comb(fmt.Sprintf("%s_w%d", name, k), b.Bit(b.R(bus), k)))
	}
	return outs
}

// aluCluster builds a small ALU: add/sub/logic/shift/compare over two
// operands with a 3-bit op selector. Returns the result expression.
func aluCluster(b *ir.Builder, name string, x, y, op *ir.Expr) *ir.Expr {
	w := x.Width
	sum := b.AddW(x, y, w)
	dif := b.SubW(x, y, w)
	xo := b.Xor(x, y)
	an := b.And(x, y)
	orv := b.Or(x, y)
	sh := b.Fit(b.Dshl(x, b.Fit(y, 4), w+15), w)
	lt := b.Fit(b.Lt(x, y), w)
	eq := b.Fit(b.Eq(x, y), w)
	s0, s1, s2 := ir.BitsOf(op, 0, 0), ir.BitsOf(op, 1, 1), ir.BitsOf(op, 2, 2)
	m0 := b.Mux(s0, dif, sum)
	m1 := b.Mux(s0, an, xo)
	m2 := b.Mux(s0, lt, sh)
	m3 := b.Mux(s0, eq, orv)
	lo := b.Mux(s1, m1, m0)
	hi := b.Mux(s1, m3, m2)
	return b.R(b.Comb(name+"_alu", b.Mux(s2, hi, lo)))
}

// pipeStage registers a value behind an enable: classic enable-gated
// pipeline register.
func pipeStage(b *ir.Builder, name string, v *ir.Expr, en *ir.Expr) *ir.Node {
	r := b.Reg(name, v.Width)
	b.SetNext(r, b.Mux(en, v, b.R(r)))
	return r
}

// fifo builds a small register FIFO with push/pop and returns the head
// value and the occupancy register.
func fifo(b *ir.Builder, name string, width, depth int, push, pop *ir.Expr, in *ir.Expr) (*ir.Expr, *ir.Node) {
	slots := make([]*ir.Node, depth)
	for i := range slots {
		slots[i] = b.Reg(fmt.Sprintf("%s_s%d", name, i), width)
	}
	count := b.Reg(name+"_cnt", bitsFor(depth)+1)
	cnt := b.R(count)
	canPush := b.Comb(name+"_canpush", b.And(push, b.Lt(cnt, b.C(count.Width, uint64(depth)))))
	canPop := b.Comb(name+"_canpop", b.And(pop, b.Gt(cnt, b.C(count.Width, 0))))
	// Shift-register FIFO: push inserts at the tail position, pop shifts.
	for i := 0; i < depth; i++ {
		insHere := b.Eq(cnt, b.C(count.Width, uint64(i)))
		var shifted *ir.Expr
		if i+1 < depth {
			shifted = b.R(slots[i+1])
		} else {
			shifted = b.C(width, 0)
		}
		next := b.Mux(b.R(canPop),
			b.Mux(b.And(b.R(canPush), b.Eq(cnt, b.C(count.Width, uint64(i+1)))), b.Fit(in, width), shifted),
			b.Mux(b.And(b.R(canPush), insHere), b.Fit(in, width), b.R(slots[i])))
		b.SetNext(slots[i], next)
	}
	inc := b.Mux(b.R(canPush), b.C(2, 1), b.C(2, 0))
	dec := b.Mux(b.R(canPop), b.C(2, 1), b.C(2, 0))
	b.SetNext(count, b.Fit(b.Sub(b.Add(cnt, inc), dec), count.Width))
	return b.R(slots[0]), count
}

func bitsFor(n int) int {
	w := 1
	for 1<<uint(w) < n {
		w++
	}
	return w
}

// scoreboard is a bit-vector register with one-hot set and clear ports —
// the busy-table structure out-of-order cores carry.
func scoreboard(b *ir.Builder, name string, entries int, setSel, clrSel *ir.Expr, setEn, clrEn *ir.Expr) *ir.Node {
	sb := b.Reg(name, entries)
	setMask := b.Fit(b.Mux(setEn, b.DshlFull(b.C(1, 1), setSel), b.C(2, 0)), entries)
	clrMask := b.Fit(b.Mux(clrEn, b.DshlFull(b.C(1, 1), clrSel), b.C(2, 0)), entries)
	b.SetNext(sb, b.And(b.Or(b.R(sb), setMask), b.Not(clrMask)))
	return sb
}

// wideBus concatenates the inputs into one wide signal and returns sliced
// partial views — the cat/bits structure bit-level splitting targets
// (XiangShan: 23.7% of multi-bit nodes are concatenations, 23.2% of
// references read only a subset of bits).
func wideBus(b *ir.Builder, name string, parts []*ir.Expr) (*ir.Node, []*ir.Expr) {
	bus := b.Comb(name, b.CatAll(parts...))
	inverted := b.Comb(name+"_n", b.Not(b.R(bus)))
	views := make([]*ir.Expr, len(parts))
	off := 0
	for i := len(parts) - 1; i >= 0; i-- { // CatAll puts first part highest
		w := parts[i].Width
		views[i] = b.R(b.Comb(fmt.Sprintf("%s_v%d", name, i), ir.BitsOf(b.R(inverted), off+w-1, off)))
		off += w
	}
	return bus, views
}

// cacheLike builds a direct-mapped tag-compare structure over a memory:
// tag/data lookup with hit logic and a refill write port.
func cacheLike(b *ir.Builder, name string, sets, tagW, dataW int, addr *ir.Expr, refill *ir.Expr, rng *rand.Rand) *ir.Expr {
	idxW := bitsFor(sets)
	tags := b.Mem(name+"_tags", sets, tagW)
	data := b.Mem(name+"_data", sets, dataW)
	idx := b.Comb(name+"_idx", b.Fit(addr, idxW))
	wantTag := b.Comb(name+"_want", b.Fit(b.Shr(addr, idxW), tagW))
	tagRd := b.MemRead(name+"_tagrd", tags, b.R(idx))
	dataRd := b.MemRead(name+"_datard", data, b.R(idx))
	hit := b.Comb(name+"_hit", b.Eq(b.R(tagRd), b.R(wantTag)))
	// Refill on miss when the refill strobe is set.
	miss := b.Comb(name+"_miss", b.And(b.Not(b.R(hit)), refill))
	b.MemWrite(name+"_tagwr", tags, b.R(idx), b.R(wantTag), b.R(miss))
	b.MemWrite(name+"_datawr", data, b.R(idx), b.Fit(b.Mul(b.Fit(addr, 24), b.C(24, uint64(rng.Intn(1<<20)|5))), dataW), b.R(miss))
	return b.R(b.Comb(name+"_out", b.Mux(b.R(hit), b.R(dataRd), b.C(dataW, 0))))
}
