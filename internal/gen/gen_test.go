package gen

import (
	"testing"

	"gsim/internal/ir"
)

func TestRandomGraphsValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := Random(seed, DefaultRandomConfig())
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := g.ComputeStats()
		if s.Outputs == 0 || s.Regs == 0 || s.Inputs == 0 {
			t.Fatalf("seed %d: degenerate circuit %+v", seed, s)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, DefaultRandomConfig())
	b := Random(7, DefaultRandomConfig())
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different circuits")
	}
	for i, n := range a.Nodes {
		m := b.Nodes[i]
		if n.Name != m.Name || n.Kind != m.Kind || n.Width != m.Width {
			t.Fatalf("node %d differs: %v vs %v", i, n, m)
		}
		if (n.Expr == nil) != (m.Expr == nil) {
			t.Fatalf("node %d expr presence differs", i)
		}
		if n.Expr != nil && n.Expr.String() != m.Expr.String() {
			t.Fatalf("node %d expr differs", i)
		}
	}
}

func TestProfilesValidAndScaled(t *testing.T) {
	prev := 0
	for _, p := range Profiles() {
		g := BuildProfile(p)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := g.ComputeStats()
		t.Logf("%-16s nodes=%d edges=%d regs=%d mems=%d ops=%d", p.Name, s.Nodes, s.Edges, s.Regs, s.Mems, s.TotalOps)
		if s.Nodes <= prev {
			t.Fatalf("%s: profiles must grow monotonically (Table I shape): %d <= %d", p.Name, s.Nodes, prev)
		}
		prev = s.Nodes
		if s.Outputs == 0 {
			t.Fatalf("%s: no outputs", p.Name)
		}
	}
}

func TestProfileStructures(t *testing.T) {
	g := BuildProfile(StuCoreLike())
	// The profiles must contain the structures the optimizations target:
	// one-hot decode chains and wide concatenated buses with slice views.
	hasDshl, hasCat, hasSlice := false, false, false
	for _, n := range g.Live() {
		n.EachExpr(func(slot **ir.Expr) {
			(*slot).Walk(func(e *ir.Expr) {
				switch e.Op {
				case ir.OpDshl:
					hasDshl = true
				case ir.OpCat:
					hasCat = true
				case ir.OpBits:
					hasSlice = true
				}
			})
		})
	}
	if !hasDshl || !hasCat || !hasSlice {
		t.Fatalf("profile missing target structures: dshl=%v cat=%v bits=%v", hasDshl, hasCat, hasSlice)
	}
	if len(g.Mems) == 0 {
		t.Fatal("profile has no cache-like memories")
	}
	if g.FindNode("stim") == nil || g.FindNode("reset") == nil {
		t.Fatal("profile inputs missing")
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := BuildProfile(RocketLike())
	b := BuildProfile(RocketLike())
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("profile build not deterministic")
	}
}
