package emit

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
)

// execWide handles instructions with any operand or result wider than 64
// bits. Values are little-endian word arrays in the state image; results are
// computed in place (an instruction's destination never aliases its sources
// by construction in the compiler). Rare wide operations (multiplication,
// signed comparison) fall back to the bitvec reference implementation.
func (m *Machine) execWide(in *Instr) {
	st := m.State
	dw := wordsFor32(in.DW)
	aw := wordsFor32(in.AW)
	bw := wordsFor32(in.BW)
	dst := st[in.D : in.D+dw]

	// srcA/srcB read operand words with implicit zero extension.
	srcA := func(i int32) uint64 {
		if i < aw {
			return st[in.A+i]
		}
		return 0
	}
	srcB := func(i int32) uint64 {
		if i < bw {
			return st[in.B+i]
		}
		return 0
	}

	switch in.Op {
	case CCopy:
		for i := int32(0); i < dw; i++ {
			dst[i] = srcA(i)
		}
	case CAdd:
		var carry uint64
		for i := int32(0); i < dw; i++ {
			s, c1 := bits.Add64(srcA(i), srcB(i), 0)
			s, c2 := bits.Add64(s, carry, 0)
			dst[i] = s
			carry = c1 + c2
		}
	case CSub:
		var borrow uint64
		for i := int32(0); i < dw; i++ {
			d, b1 := bits.Sub64(srcA(i), srcB(i), borrow)
			dst[i] = d
			borrow = b1
		}
	case CAnd:
		for i := int32(0); i < dw; i++ {
			dst[i] = srcA(i) & srcB(i)
		}
	case COr:
		for i := int32(0); i < dw; i++ {
			dst[i] = srcA(i) | srcB(i)
		}
	case CXor:
		for i := int32(0); i < dw; i++ {
			dst[i] = srcA(i) ^ srcB(i)
		}
	case CNot:
		for i := int32(0); i < dw; i++ {
			dst[i] = ^srcA(i)
		}
	case CNeg:
		var borrow uint64
		for i := int32(0); i < dw; i++ {
			d, b1 := bits.Sub64(0, srcA(i), borrow)
			dst[i] = d
			borrow = b1
		}
	case CAndR:
		r := uint64(1)
		for i := int32(0); i < aw; i++ {
			want := ^uint64(0)
			if i == aw-1 {
				want = bitvec.TopMask(int(in.AW))
			}
			if st[in.A+i] != want {
				r = 0
				break
			}
		}
		dst[0] = r
	case COrR:
		r := uint64(0)
		for i := int32(0); i < aw; i++ {
			if st[in.A+i] != 0 {
				r = 1
				break
			}
		}
		dst[0] = r
	case CXorR:
		var p uint64
		for i := int32(0); i < aw; i++ {
			p ^= uint64(bits.OnesCount64(st[in.A+i])) & 1
		}
		dst[0] = p
	case CEq, CNeq:
		n := aw
		if bw > n {
			n = bw
		}
		eq := uint64(1)
		for i := int32(0); i < n; i++ {
			if srcA(i) != srcB(i) {
				eq = 0
				break
			}
		}
		if in.Op == CNeq {
			eq ^= 1
		}
		dst[0] = eq
	case CLt, CLeq, CGt, CGeq:
		cmp := cmpWide(srcA, srcB, aw, bw)
		var r uint64
		switch in.Op {
		case CLt:
			if cmp < 0 {
				r = 1
			}
		case CLeq:
			if cmp <= 0 {
				r = 1
			}
		case CGt:
			if cmp > 0 {
				r = 1
			}
		case CGeq:
			if cmp >= 0 {
				r = 1
			}
		}
		dst[0] = r
	case CShl:
		shlWide(dst, srcA, int32(in.Lo))
	case CBits, CShr:
		sh := int32(in.Lo)
		shrWideInto(dst, srcA, aw, sh)
	case CDshl:
		n := m.shiftAmount(in, bw)
		if n < 0 || n >= int64(in.DW) {
			clear(dst)
		} else {
			shlWide(dst, srcA, int32(n))
		}
	case CDshr:
		n := m.shiftAmount(in, bw)
		if n < 0 || n >= int64(in.AW) {
			clear(dst)
		} else {
			shrWideInto(dst, srcA, aw, int32(n))
		}
	case CCat:
		// dst = B | (A << BW)
		for i := int32(0); i < dw; i++ {
			dst[i] = srcB(i)
		}
		wordShift, bitShift := in.BW/64, uint(in.BW%64)
		for i := int32(0); i < aw; i++ {
			v := st[in.A+i]
			lo := i + wordShift
			if lo < dw {
				dst[lo] |= v << bitShift
			}
			if bitShift != 0 && lo+1 < dw {
				dst[lo+1] |= v >> (64 - bitShift)
			}
		}
	case CSExt:
		for i := int32(0); i < dw; i++ {
			dst[i] = srcA(i)
		}
		if in.AW < in.DW && bitAt(st, in.A, in.AW-1) != 0 {
			setBitsFrom(dst, int(in.AW), int(in.DW))
		}
	case CMux:
		src := in.C
		if st[in.A] != 0 {
			src = in.B
		}
		sw := wordsFor32(in.BW)
		for i := int32(0); i < dw; i++ {
			if i < sw {
				dst[i] = st[src+i]
			} else {
				dst[i] = 0
			}
		}
	case CMemRead:
		spec := &m.Prog.Mems[in.Lo]
		addr := st[in.A]
		for i := int32(1); i < aw; i++ {
			if st[in.A+i] != 0 {
				addr = uint64(spec.Depth) // force out of range
				break
			}
		}
		if addr < uint64(spec.Depth) {
			base := int32(addr) * spec.WordsPer
			copy(dst, m.Mems[in.Lo][base:base+spec.WordsPer])
		} else {
			clear(dst)
		}
	case CMul, CSLt, CSLeq, CSGt, CSGeq:
		m.execWideSlow(in, dst)
	default:
		panic(fmt.Sprintf("emit: bad wide opcode %d", in.Op))
	}
	dst[dw-1] &= bitvec.TopMask(int(in.DW))
}

// shiftAmount reads a dynamic shift amount; -1 means "too large".
func (m *Machine) shiftAmount(in *Instr, bw int32) int64 {
	for i := int32(1); i < bw; i++ {
		if m.State[in.B+i] != 0 {
			return -1
		}
	}
	n := m.State[in.B]
	if n > 1<<30 {
		return -1
	}
	return int64(n)
}

// execWideSlow routes rare wide operations through the bitvec reference.
func (m *Machine) execWideSlow(in *Instr, dst []uint64) {
	a := bitvec.FromWords(int(in.AW), m.State[in.A:in.A+wordsFor32(in.AW)])
	b := bitvec.FromWords(int(in.BW), m.State[in.B:in.B+wordsFor32(in.BW)])
	var r bitvec.BV
	switch in.Op {
	case CMul:
		r = bitvec.Mul(a, b, int(in.DW))
	case CSLt:
		r = bitvec.SLt(a, b)
	case CSLeq:
		r = bitvec.SLeq(a, b)
	case CSGt:
		r = bitvec.SGt(a, b)
	case CSGeq:
		r = bitvec.SGeq(a, b)
	}
	clear(dst)
	copy(dst, r.W)
}

func wordsFor32(w int32) int32 {
	if w <= 0 {
		return 0
	}
	return (w + 63) >> 6
}

// cmpWide compares two zero-extended word operands.
func cmpWide(srcA, srcB func(int32) uint64, aw, bw int32) int {
	n := aw
	if bw > n {
		n = bw
	}
	for i := n - 1; i >= 0; i-- {
		x, y := srcA(i), srcB(i)
		if x < y {
			return -1
		}
		if x > y {
			return 1
		}
	}
	return 0
}

// shlWide writes src << sh into dst (dst fully overwritten).
func shlWide(dst []uint64, src func(int32) uint64, sh int32) {
	wordShift, bitShift := sh/64, uint(sh%64)
	for i := int32(len(dst)) - 1; i >= 0; i-- {
		j := i - wordShift
		var v uint64
		if j >= 0 {
			v = src(j) << bitShift
			if bitShift != 0 && j > 0 {
				v |= src(j-1) >> (64 - bitShift)
			}
		}
		dst[i] = v
	}
}

// shrWideInto writes src >> sh into dst.
func shrWideInto(dst []uint64, src func(int32) uint64, aw, sh int32) {
	wordShift, bitShift := sh/64, uint(sh%64)
	for i := int32(0); i < int32(len(dst)); i++ {
		j := i + wordShift
		var v uint64
		if j < aw {
			v = src(j) >> bitShift
			if bitShift != 0 && j+1 < aw {
				v |= src(j+1) << (64 - bitShift)
			}
		}
		dst[i] = v
	}
}

// bitAt returns bit i of the operand at word offset off.
func bitAt(st []uint64, off, i int32) uint64 {
	if i < 0 {
		return 0
	}
	return (st[off+i/64] >> uint(i%64)) & 1
}

// setBitsFrom sets bits [from, to) in dst.
func setBitsFrom(dst []uint64, from, to int) {
	for i := from; i < to; i++ {
		dst[i/64] |= uint64(1) << uint(i%64)
	}
}
