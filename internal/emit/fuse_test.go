package emit

import (
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
)

// fusionCase is one exemplar instruction window for a fusion rule.
type fusionCase struct {
	name string
	rule FuseRule
	ins  []Instr
}

// fusionExemplars maps every generated fusion rule to at least one concrete
// instruction window. TestFusionRuleCoverage sweeps the FuseRule
// enumeration against this table, so adding a table line without an
// exemplar fails the suite — the generated sentinel (NumFuseRules) is the
// checklist.
//
// Slot layout: words 0-9 hold operands, 10 is the first instruction's
// destination, 11 the second's, 12 the third's (triples).
func fusionExemplars() []fusionCase {
	pair := func(name string, rule FuseRule, a, b Instr) fusionCase {
		return fusionCase{name, rule, []Instr{a, b}}
	}
	cmp := func(op OpCode) fusionCase {
		return pair("cmp-mux", FuseRuleCmpMux,
			Instr{Op: op, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 11},
			Instr{Op: CMux, D: 11, DW: 24, A: 10, AW: 1, B: 2, BW: 24, C: 3})
	}
	cases := []fusionCase{
		pair("copy-into-mux-arm-c", FuseRuleCopyMux,
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 2, BW: 16, C: 10}),
		pair("copy-into-mux-arm-b", FuseRuleCopyMux,
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 2}),
		pair("copy-into-mux-sel", FuseRuleCopyMux,
			Instr{Op: CCopy, D: 10, DW: 1, A: 0, AW: 1},
			Instr{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3}),
		pair("add-then-mask-bits", FuseRuleAddMask,
			Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 16, A: 10, AW: 17, Hi: 15, Lo: 0}),
		pair("add-then-mask-copy", FuseRuleAddMask,
			Instr{Op: CAdd, D: 10, DW: 33, A: 0, AW: 32, B: 1, BW: 32},
			Instr{Op: CCopy, D: 11, DW: 32, A: 10, AW: 33}),
		pair("sub-then-mask-bits", FuseRuleSubMask,
			Instr{Op: CSub, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 8, A: 10, AW: 16, Hi: 7, Lo: 0}),
		pair("and-then-eq", FuseRuleAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 16, B: 2, BW: 16}),
		pair("and-then-eq-swapped", FuseRuleAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 2, AW: 16, B: 10, BW: 16}),
		pair("and-then-neq", FuseRuleAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CNeq, D: 11, DW: 1, A: 10, AW: 16, B: 2, BW: 16}),
		pair("and-then-orr", FuseRuleAndOrr,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COrR, D: 11, DW: 1, A: 10, AW: 16}),
		pair("copy-into-mux-both-arms", FuseRuleCopyMux, // aliasing corner: t feeds both arms
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 10}),
		pair("and-then-eq-both-sides", FuseRuleAndEqz, // aliasing corner: t == t
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 16, B: 10, BW: 16}),
		pair("mux-into-mux", FuseRuleMuxMux,
			Instr{Op: CMux, D: 10, DW: 16, A: 0, AW: 1, B: 1, BW: 16, C: 2},
			Instr{Op: CMux, D: 11, DW: 16, A: 3, AW: 1, B: 4, BW: 16, C: 10}),
		pair("add-then-carry-slice", FuseRuleAddMask, // bits at a non-zero offset
			Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 1, A: 10, AW: 17, Hi: 16, Lo: 16}),
		pair("bits-into-bits", FuseRuleAluMask,
			Instr{Op: CBits, D: 10, DW: 12, A: 0, AW: 20, Hi: 15, Lo: 4},
			Instr{Op: CBits, D: 11, DW: 4, A: 10, AW: 12, Hi: 5, Lo: 2}),
		pair("shl-into-copy", FuseRuleAluMask,
			Instr{Op: CShl, D: 10, DW: 20, A: 0, AW: 16, Lo: 4},
			Instr{Op: CCopy, D: 11, DW: 18, A: 10, AW: 20}),
		pair("bits-into-mux-arm", FuseRuleAluMux,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 7, Lo: 2},
			Instr{Op: CMux, D: 11, DW: 8, A: 1, AW: 1, B: 10, BW: 8, C: 2}),
		pair("xor-into-mux-sel", FuseRuleAluMux,
			Instr{Op: CXor, D: 10, DW: 1, A: 0, AW: 1, B: 1, BW: 1},
			Instr{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3}),
		pair("bits-into-cat-hi", FuseRuleAluCat,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 9, Lo: 2},
			Instr{Op: CCat, D: 11, DW: 24, A: 10, AW: 8, B: 1, BW: 16}),
		pair("cat-into-cat-lo", FuseRuleAluCat,
			Instr{Op: CCat, D: 10, DW: 20, A: 0, AW: 4, B: 1, BW: 16},
			Instr{Op: CCat, D: 11, DW: 28, A: 2, AW: 8, B: 10, BW: 20}),
		pair("eq-into-or", FuseRuleAluLogic,
			Instr{Op: CEq, D: 10, DW: 1, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COr, D: 11, DW: 1, A: 10, AW: 1, B: 2, BW: 1}),
		pair("not-into-and", FuseRuleAluLogic,
			Instr{Op: CNot, D: 10, DW: 16, A: 0, AW: 16},
			Instr{Op: CAnd, D: 11, DW: 16, A: 1, AW: 16, B: 10, BW: 16}),
		pair("slt-into-xor", FuseRuleAluLogic,
			Instr{Op: CSLt, D: 10, DW: 1, A: 0, AW: 12, B: 1, BW: 9},
			Instr{Op: CXor, D: 11, DW: 1, A: 10, AW: 1, B: 2, BW: 1}),
		pair("bits-into-eq", FuseRuleAluEq,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 7, Lo: 0},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 8, B: 1, BW: 8}),
		pair("xor-into-neq", FuseRuleAluEq,
			Instr{Op: CXor, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CNeq, D: 11, DW: 1, A: 2, AW: 16, B: 10, BW: 16}),
		pair("bits-into-memread", FuseRuleAluMemread, // DW 2 keeps the address in range
			Instr{Op: CBits, D: 10, DW: 2, A: 0, AW: 16, Hi: 4, Lo: 3},
			Instr{Op: CMemRead, D: 11, DW: 8, A: 10, AW: 2, Lo: 0}),
		// Triples.
		{"mux-chain-of-three", FuseRuleMuxMuxMux, []Instr{
			{Op: CMux, D: 10, DW: 16, A: 0, AW: 1, B: 1, BW: 16, C: 2},
			{Op: CMux, D: 11, DW: 16, A: 3, AW: 1, B: 10, BW: 16, C: 4},
			{Op: CMux, D: 12, DW: 16, A: 5, AW: 1, B: 6, BW: 16, C: 11}}},
		{"mux-chain-aliasing", FuseRuleMuxMuxMux, []Instr{ // third mux's selector reads the first dest
			{Op: CMux, D: 10, DW: 1, A: 0, AW: 1, B: 1, BW: 1, C: 2},
			{Op: CMux, D: 11, DW: 16, A: 3, AW: 1, B: 4, BW: 16, C: 10},
			{Op: CMux, D: 12, DW: 16, A: 10, AW: 1, B: 11, BW: 16, C: 5}}},
		{"cmp-mux-then-mux", FuseRuleCmpMuxMux, []Instr{
			{Op: CLt, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 11},
			{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3},
			{Op: CMux, D: 12, DW: 16, A: 4, AW: 1, B: 11, BW: 16, C: 5}}},
		{"scmp-mux-then-mux", FuseRuleCmpMuxMux, []Instr{
			{Op: CSGeq, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 11},
			{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3},
			{Op: CMux, D: 12, DW: 16, A: 4, AW: 1, B: 5, BW: 16, C: 11}}},
		{"eq-mux-then-mux", FuseRuleCmpMuxMux, []Instr{
			{Op: CEq, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 14},
			{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3},
			{Op: CMux, D: 12, DW: 16, A: 10, AW: 1, B: 11, BW: 16, C: 5}}}, // cond reused as second selector
	}
	for _, op := range []OpCode{CEq, CNeq, CLt, CLeq, CGt, CGeq, CSLt, CSLeq, CSGt, CSGeq} {
		cases = append(cases, cmp(op))
	}
	return cases
}

// maskOperands canonicalizes every operand slot an instruction pair reads,
// as the compiler's invariants guarantee for real programs (every writer
// masks its result). Zero-width (unset) operands are skipped — unary
// instructions never read their B slot.
func maskOperands(st []uint64, ins ...Instr) {
	for _, in := range ins {
		if in.AW > 0 {
			st[in.A] &= mask(in.AW)
		}
		if in.BW > 0 {
			st[in.B] &= mask(in.BW)
		}
		if in.Op == CMux {
			st[in.C] &= mask(in.BW)
		}
	}
}

// TestFusionRuleCoverage sweeps the full generated FuseRule enumeration:
// every rule must have at least one exemplar window, the declared arity must
// match the exemplar, the generated matcher must classify each exemplar as
// its rule, and the fused closure must leave the state image bit-identical
// to executing the window's instructions back to back — over randomized
// operand values, including the aliasing corners the store-in-order design
// must survive.
func TestFusionRuleCoverage(t *testing.T) {
	cases := fusionExemplars()
	seen := make(map[FuseRule]bool)
	for _, c := range cases {
		seen[c.rule] = true
	}
	for r := FuseRuleNone + 1; r < NumFuseRules; r++ {
		if !seen[r] {
			t.Fatalf("fusion rule %d (%s) has no exemplar — extend fusionExemplars", r, r)
		}
		if r.Pattern() == "" {
			t.Fatalf("fusion rule %s has no pattern string", r)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for _, c := range cases {
		if got := c.rule.Arity(); got != len(c.ins) {
			t.Fatalf("%s: rule %s declares arity %d, exemplar has %d instructions", c.name, c.rule, got, len(c.ins))
		}
		switch len(c.ins) {
		case 2:
			if got := matchFuse2(c.ins[0], c.ins[1]); got != c.rule {
				t.Fatalf("%s: matchFuse2 = %s, want %s", c.name, got, c.rule)
			}
		case 3:
			if got := matchFuse3(c.ins[0], c.ins[1], c.ins[2]); got != c.rule {
				t.Fatalf("%s: matchFuse3 = %s, want %s", c.name, got, c.rule)
			}
		}
		p := &Program{NumWords: 13, Instrs: c.ins,
			Mems: []MemSpec{{Depth: 4, Width: 8, WordsPer: 1, Init: []uint64{0x5a, 9, 0xab, 3}}}}
		bnd := NewMachine(p)
		bfns := p.CompileChainBound(bnd, p.Instrs)
		if len(bfns) != 1 {
			t.Fatalf("%s: CompileChainBound produced %d closures, want 1 fused", c.name, len(bfns))
		}
		if stats := FusionStats(c.ins); stats[c.rule] != 1 {
			t.Fatalf("%s: FusionStats counted %d windows for %s, want 1", c.name, stats[c.rule], c.rule)
		}
		for trial := 0; trial < 200; trial++ {
			ref := NewMachine(p)
			for w := range ref.State {
				ref.State[w] = rng.Uint64()
			}
			maskOperands(ref.State, c.ins...)
			copy(bnd.State, ref.State)
			ref.Exec(0, int32(len(c.ins)))
			bfns[0]()
			for w := range ref.State {
				if ref.State[w] != bnd.State[w] {
					t.Fatalf("%s trial %d: state word %d: sequential %#x vs bound fused %#x",
						c.name, trial, w, ref.State[w], bnd.State[w])
				}
			}
		}
	}
}

// TestMatchFusionRejects pins the negative space: windows that look close to
// a rule but must not fuse.
func TestMatchFusionRejects(t *testing.T) {
	add := Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16}
	cases := []struct {
		name string
		a, b Instr
	}{
		{"no-dataflow", // copy dest feeds nothing in the mux
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 16},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 2, BW: 16, C: 3}},
		{"wide-first",
			Instr{Op: CCopy, D: 10, DW: 80, A: 0, AW: 80},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 2}},
		{"wide-second", add,
			Instr{Op: CCopy, D: 11, DW: 80, A: 10, AW: 80}},
		{"memread-producer", // not a pure value producer
			Instr{Op: CMemRead, D: 10, DW: 8, A: 0, AW: 4, Lo: 0},
			Instr{Op: CCopy, D: 11, DW: 8, A: 10, AW: 8}},
		{"orr-after-or", // the orr tail is only defined for the and producer
			Instr{Op: COr, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COrR, D: 11, DW: 1, A: 10, AW: 16}},
	}
	for _, c := range cases {
		if got := matchFuse2(c.a, c.b); got != FuseRuleNone {
			t.Fatalf("%s: matchFuse2 = %s, want none", c.name, got)
		}
	}
	triples := []struct {
		name    string
		a, b, c Instr
	}{
		{"mux-chain-middle-break", // second mux doesn't read the first
			Instr{Op: CMux, D: 10, DW: 16, A: 0, AW: 1, B: 1, BW: 16, C: 2},
			Instr{Op: CMux, D: 11, DW: 16, A: 3, AW: 1, B: 4, BW: 16, C: 5},
			Instr{Op: CMux, D: 12, DW: 16, A: 6, AW: 1, B: 11, BW: 16, C: 7}},
		{"mux-chain-sel-only-feed", // third mux reads the second only via its selector
			Instr{Op: CMux, D: 10, DW: 16, A: 0, AW: 1, B: 1, BW: 16, C: 2},
			Instr{Op: CMux, D: 11, DW: 1, A: 3, AW: 1, B: 10, BW: 1, C: 4},
			Instr{Op: CMux, D: 12, DW: 16, A: 11, AW: 1, B: 5, BW: 16, C: 6}},
		{"cmp-mux-wide-tail",
			Instr{Op: CLt, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 11},
			Instr{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3},
			Instr{Op: CMux, D: 12, DW: 80, A: 4, AW: 1, B: 11, BW: 80, C: 5}},
	}
	for _, c := range triples {
		if got := matchFuse3(c.a, c.b, c.c); got != FuseRuleNone {
			t.Fatalf("%s: matchFuse3 = %s, want none", c.name, got)
		}
	}
}

// ruleToLegacy maps each generated pair rule to the legacyPattern verdict
// the retired hand-written matcher returns for the same window (and-eqz and
// and-orr were one pattern there).
var ruleToLegacy = map[FuseRule]legacyPattern{
	FuseRuleNone:       legNone,
	FuseRuleCopyMux:    legCopyMux,
	FuseRuleCmpMux:     legCmpMux,
	FuseRuleMuxMux:     legMuxMux,
	FuseRuleAluMux:     legAluMux,
	FuseRuleAddMask:    legAddMask,
	FuseRuleSubMask:    legSubMask,
	FuseRuleAluMask:    legAluMask,
	FuseRuleAluCat:     legAluCat,
	FuseRuleAluLogic:   legAluLogic,
	FuseRuleAndEqz:     legAndEqz,
	FuseRuleAluEq:      legAluEq,
	FuseRuleAndOrr:     legAndEqz,
	FuseRuleAluMemread: legAluMemRead,
}

// TestGeneratedMatcherMatchesLegacy exhaustively checks that the generated
// pair matcher reproduces the retired hand-written matcher's verdicts:
// every opcode x opcode window, at widths crossing the narrow/wide boundary,
// across all eight combinations of which consumer slots read the producer's
// destination. This is the contract that made retiring the hand-written
// dispatch safe.
func TestGeneratedMatcherMatchesLegacy(t *testing.T) {
	widths := []int32{1, 8, 64, 80}
	for aOp := CCopy; aOp < OpCode(numOpCodes); aOp++ {
		for bOp := CCopy; bOp < OpCode(numOpCodes); bOp++ {
			for _, wa := range widths {
				for _, wb := range widths {
					for feed := 0; feed < 8; feed++ {
						a := Instr{Op: aOp, D: 10, DW: wa, A: 0, AW: wa, B: 1, BW: wa, C: 2}
						b := Instr{Op: bOp, D: 11, DW: wb, A: 3, AW: wb, B: 4, BW: wb, C: 5}
						if feed&1 != 0 {
							b.A = 10
						}
						if feed&2 != 0 {
							b.B = 10
						}
						if feed&4 != 0 {
							b.C = 10
						}
						got := matchFuse2(a, b)
						want := matchFusionLegacy(a, b)
						if ruleToLegacy[got] != want {
							t.Fatalf("aOp=%d bOp=%d wa=%d wb=%d feed=%03b: generated %s, legacy %d",
								aOp, bOp, wa, wb, feed, got, want)
						}
					}
				}
			}
		}
	}
}

// widthClassExpectation is the per-opcode classification at a representative
// 2-word shape. TestWidthClassCoverage sweeps the full opcode enumeration
// against it, so a new opcode cannot land without declaring (and, for
// WC2Word, exercising) its width class.
var widthClassExpectation = map[OpCode]WidthClass{
	CCopy: WC2Word, CAdd: WC2Word, CSub: WC2Word, CAnd: WC2Word, COr: WC2Word,
	CXor: WC2Word, CNot: WC2Word, CMux: WC2Word, CEq: WC2Word, CNeq: WC2Word,
	CMul: WCWide, CDiv: WCWide, CRem: WCWide, CNeg: WCWide,
	CAndR: WCWide, COrR: WCWide, CXorR: WCWide,
	CLt: WCWide, CLeq: WCWide, CGt: WCWide, CGeq: WCWide,
	CSLt: WCWide, CSLeq: WCWide, CSGt: WCWide, CSGeq: WCWide,
	CShl: WCWide, CShr: WCWide, CDshl: WCWide, CDshr: WCWide,
	CCat: WCWide, CBits: WCWide, CSExt: WCWide, CMemRead: WCWide,
}

// instr2W builds the representative 2-word-shape instruction for an opcode.
func instr2W(op OpCode, dw, aw, bw int32) Instr {
	in := Instr{Op: op, D: 12, DW: dw, A: 0, AW: aw, B: 4, BW: bw}
	if op == CMux {
		in.A, in.AW = 8, 1 // one-word selector
		in.B, in.BW = 0, aw
		in.C = 4
	}
	if op == CEq || op == CNeq {
		in.DW = 1
	}
	return in
}

// TestWidthClassCoverage sweeps every opcode through the width classifier at
// a 96-bit shape and pins the expected class; narrow shapes must classify
// WCNarrow for every opcode. A missing map entry is a failure, so the opcode
// and width-class enumerations stay covered together.
func TestWidthClassCoverage(t *testing.T) {
	for op := CCopy; op < OpCode(numOpCodes); op++ {
		want, ok := widthClassExpectation[op]
		if !ok {
			t.Fatalf("opcode %d has no width-class expectation — extend widthClassExpectation", op)
		}
		if got := classOf(instr2W(op, 96, 96, 96)); got != want {
			t.Fatalf("opcode %d at 96 bits: class %s, want %s", op, got, want)
		}
		narrow := Instr{Op: op, DW: 8, AW: 8, BW: 8}
		if got := classOf(narrow); got != WCNarrow {
			t.Fatalf("opcode %d at 8 bits: class %s, want narrow", op, got)
		}
	}
}

// TestWidthClass2WordMatchesWide executes every 2-word kernel against the
// execWide reference over randomized canonical state, across width shapes
// that exercise zero extension (one-word operands into two-word results),
// truncation (wider-than-class operands), and the top-word mask.
func TestWidthClass2WordMatchesWide(t *testing.T) {
	shapes := []struct{ dw, aw, bw int32 }{
		{96, 96, 96}, {128, 128, 128}, {65, 65, 65},
		{96, 40, 96}, {96, 96, 40}, {70, 64, 70}, {128, 1, 128},
	}
	eqShapes := []struct{ dw, aw, bw int32 }{
		{1, 96, 96}, {1, 65, 128}, {1, 96, 20}, {1, 20, 96}, {1, 128, 128},
	}
	rng := rand.New(rand.NewSource(11))
	for op, class := range widthClassExpectation {
		if class != WC2Word {
			continue
		}
		sh := shapes
		if op == CEq || op == CNeq {
			sh = eqShapes
		}
		for _, s := range sh {
			in := instr2W(op, s.dw, s.aw, s.bw)
			if classOf(in) != WC2Word {
				t.Fatalf("op %d shape %+v: expected 2-word class", op, s)
			}
			for trial := 0; trial < 100; trial++ {
				p := &Program{NumWords: 16}
				ref := NewMachine(p)
				bnd := NewMachine(p)
				bfn := compile2WBound(bnd, in)
				if bfn == nil {
					t.Fatalf("op %d shape %+v: no bound 2-word kernel", op, s)
				}
				for w := range ref.State {
					ref.State[w] = rng.Uint64()
				}
				// Canonicalize the operand slots to their widths.
				operands := []struct {
					off int32
					w   int32
				}{{in.A, in.AW}, {in.B, in.BW}}
				if in.Op == CMux {
					operands = append(operands, struct {
						off int32
						w   int32
					}{in.C, in.BW})
				}
				for _, o := range operands {
					words := wordsFor32(o.w)
					if words == 0 {
						continue
					}
					ref.State[o.off+words-1] &= bitvec.TopMask(int(o.w))
				}
				copy(bnd.State, ref.State)
				wide := in
				ref.execWide(&wide)
				bfn()
				for w := range ref.State {
					if ref.State[w] != bnd.State[w] {
						t.Fatalf("op %d shape %+v trial %d: state word %d: execWide %#x vs bound 2-word kernel %#x",
							op, s, trial, w, ref.State[w], bnd.State[w])
					}
				}
			}
		}
	}
}
