package emit

import (
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
)

// fusionCase is one exemplar instruction pair for a fusion pattern.
type fusionCase struct {
	name string
	pat  FusePattern
	a, b Instr
}

// fusionExemplars maps every fusion pattern to at least one concrete
// instruction pair. TestFusionPatternCoverage sweeps the FusePattern
// enumeration against this table, so adding a pattern without an exemplar
// fails the suite — the enum sentinel (NumFusePatterns) is the checklist.
//
// Slot layout: words 0-9 hold operands, 10 is the first instruction's
// destination, 11 the second's.
func fusionExemplars() []fusionCase {
	cmp := func(op OpCode) fusionCase {
		return fusionCase{"cmp-mux", FuseCmpMux,
			Instr{Op: op, D: 10, DW: 1, A: 0, AW: 14, B: 1, BW: 11},
			Instr{Op: CMux, D: 11, DW: 24, A: 10, AW: 1, B: 2, BW: 24, C: 3}}
	}
	cases := []fusionCase{
		{"copy-into-mux-arm-c", FuseCopyMux,
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 2, BW: 16, C: 10}},
		{"copy-into-mux-arm-b", FuseCopyMux,
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 2}},
		{"copy-into-mux-sel", FuseCopyMux,
			Instr{Op: CCopy, D: 10, DW: 1, A: 0, AW: 1},
			Instr{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3}},
		{"add-then-mask-bits", FuseAddMask,
			Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 16, A: 10, AW: 17, Hi: 15, Lo: 0}},
		{"add-then-mask-copy", FuseAddMask,
			Instr{Op: CAdd, D: 10, DW: 33, A: 0, AW: 32, B: 1, BW: 32},
			Instr{Op: CCopy, D: 11, DW: 32, A: 10, AW: 33}},
		{"sub-then-mask-bits", FuseSubMask,
			Instr{Op: CSub, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 8, A: 10, AW: 16, Hi: 7, Lo: 0}},
		{"and-then-eq", FuseAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 16, B: 2, BW: 16}},
		{"and-then-eq-swapped", FuseAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 2, AW: 16, B: 10, BW: 16}},
		{"and-then-neq", FuseAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CNeq, D: 11, DW: 1, A: 10, AW: 16, B: 2, BW: 16}},
		{"and-then-orr", FuseAndEqz,
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COrR, D: 11, DW: 1, A: 10, AW: 16}},
		{"copy-into-mux-both-arms", FuseCopyMux, // aliasing corner: t feeds both arms
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 20},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 10}},
		{"and-then-eq-both-sides", FuseAndEqz, // aliasing corner: t == t
			Instr{Op: CAnd, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 16, B: 10, BW: 16}},
		{"mux-into-mux", FuseMuxMux,
			Instr{Op: CMux, D: 10, DW: 16, A: 0, AW: 1, B: 1, BW: 16, C: 2},
			Instr{Op: CMux, D: 11, DW: 16, A: 3, AW: 1, B: 4, BW: 16, C: 10}},
		{"add-then-carry-slice", FuseAddMask, // bits at a non-zero offset
			Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CBits, D: 11, DW: 1, A: 10, AW: 17, Hi: 16, Lo: 16}},
		{"bits-into-bits", FuseAluMask,
			Instr{Op: CBits, D: 10, DW: 12, A: 0, AW: 20, Hi: 15, Lo: 4},
			Instr{Op: CBits, D: 11, DW: 4, A: 10, AW: 12, Hi: 5, Lo: 2}},
		{"shl-into-copy", FuseAluMask,
			Instr{Op: CShl, D: 10, DW: 20, A: 0, AW: 16, Lo: 4},
			Instr{Op: CCopy, D: 11, DW: 18, A: 10, AW: 20}},
		{"bits-into-mux-arm", FuseAluMux,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 7, Lo: 2},
			Instr{Op: CMux, D: 11, DW: 8, A: 1, AW: 1, B: 10, BW: 8, C: 2}},
		{"xor-into-mux-sel", FuseAluMux,
			Instr{Op: CXor, D: 10, DW: 1, A: 0, AW: 1, B: 1, BW: 1},
			Instr{Op: CMux, D: 11, DW: 16, A: 10, AW: 1, B: 2, BW: 16, C: 3}},
		{"bits-into-cat-hi", FuseAluCat,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 9, Lo: 2},
			Instr{Op: CCat, D: 11, DW: 24, A: 10, AW: 8, B: 1, BW: 16}},
		{"cat-into-cat-lo", FuseAluCat,
			Instr{Op: CCat, D: 10, DW: 20, A: 0, AW: 4, B: 1, BW: 16},
			Instr{Op: CCat, D: 11, DW: 28, A: 2, AW: 8, B: 10, BW: 20}},
		{"eq-into-or", FuseAluLogic,
			Instr{Op: CEq, D: 10, DW: 1, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COr, D: 11, DW: 1, A: 10, AW: 1, B: 2, BW: 1}},
		{"not-into-and", FuseAluLogic,
			Instr{Op: CNot, D: 10, DW: 16, A: 0, AW: 16},
			Instr{Op: CAnd, D: 11, DW: 16, A: 1, AW: 16, B: 10, BW: 16}},
		{"slt-into-xor", FuseAluLogic,
			Instr{Op: CSLt, D: 10, DW: 1, A: 0, AW: 12, B: 1, BW: 9},
			Instr{Op: CXor, D: 11, DW: 1, A: 10, AW: 1, B: 2, BW: 1}},
		{"bits-into-eq", FuseAluEq,
			Instr{Op: CBits, D: 10, DW: 8, A: 0, AW: 20, Hi: 7, Lo: 0},
			Instr{Op: CEq, D: 11, DW: 1, A: 10, AW: 8, B: 1, BW: 8}},
		{"xor-into-neq", FuseAluEq,
			Instr{Op: CXor, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: CNeq, D: 11, DW: 1, A: 2, AW: 16, B: 10, BW: 16}},
		{"bits-into-memread", FuseAluMemRead, // DW 2 keeps the address in range
			Instr{Op: CBits, D: 10, DW: 2, A: 0, AW: 16, Hi: 4, Lo: 3},
			Instr{Op: CMemRead, D: 11, DW: 8, A: 10, AW: 2, Lo: 0}},
	}
	for _, op := range []OpCode{CEq, CNeq, CLt, CLeq, CGt, CGeq, CSLt, CSLeq, CSGt, CSGeq} {
		cases = append(cases, cmp(op))
	}
	return cases
}

// maskOperands canonicalizes every operand slot an instruction pair reads,
// as the compiler's invariants guarantee for real programs (every writer
// masks its result). Zero-width (unset) operands are skipped — unary
// instructions never read their B slot.
func maskOperands(st []uint64, ins ...Instr) {
	for _, in := range ins {
		if in.AW > 0 {
			st[in.A] &= mask(in.AW)
		}
		if in.BW > 0 {
			st[in.B] &= mask(in.BW)
		}
		if in.Op == CMux {
			st[in.C] &= mask(in.BW)
		}
	}
}

// TestFusionPatternCoverage sweeps the full FusePattern enumeration: every
// pattern must have at least one exemplar pair, the matcher must classify
// each exemplar as its pattern, and the fused closure must leave the state
// image bit-identical to executing the two instructions back to back — over
// randomized operand values, including the aliasing corners the store-first
// design must survive.
func TestFusionPatternCoverage(t *testing.T) {
	cases := fusionExemplars()
	seen := make(map[FusePattern]bool)
	for _, c := range cases {
		seen[c.pat] = true
	}
	for pat := FuseNone + 1; pat < NumFusePatterns; pat++ {
		if !seen[pat] {
			t.Fatalf("fusion pattern %d (%s) has no exemplar — extend fusionExemplars", pat, pat)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for _, c := range cases {
		if got := MatchFusion(c.a, c.b); got != c.pat {
			t.Fatalf("%s: MatchFusion = %s, want %s", c.name, got, c.pat)
		}
		p := &Program{NumWords: 12, Instrs: []Instr{c.a, c.b},
			Mems: []MemSpec{{Depth: 4, Width: 8, WordsPer: 1, Init: []uint64{0x5a, 9, 0xab, 3}}}}
		bnd := NewMachine(p)
		bfns := p.CompileChainBound(bnd, p.Instrs)
		if len(bfns) != 1 {
			t.Fatalf("%s: CompileChainBound produced %d closures, want 1 fused", c.name, len(bfns))
		}
		for trial := 0; trial < 200; trial++ {
			ref := NewMachine(p)
			for w := range ref.State {
				ref.State[w] = rng.Uint64()
			}
			maskOperands(ref.State, c.a, c.b)
			copy(bnd.State, ref.State)
			ref.Exec(0, 2)
			bfns[0]()
			for w := range ref.State {
				if ref.State[w] != bnd.State[w] {
					t.Fatalf("%s trial %d: state word %d: sequential %#x vs bound fused %#x",
						c.name, trial, w, ref.State[w], bnd.State[w])
				}
			}
		}
	}
}

// TestMatchFusionRejects pins the negative space: pairs that look close to a
// pattern but must not fuse.
func TestMatchFusionRejects(t *testing.T) {
	add := Instr{Op: CAdd, D: 10, DW: 17, A: 0, AW: 16, B: 1, BW: 16}
	cases := []struct {
		name string
		a, b Instr
	}{
		{"no-dataflow", // copy dest feeds nothing in the mux
			Instr{Op: CCopy, D: 10, DW: 16, A: 0, AW: 16},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 2, BW: 16, C: 3}},
		{"wide-first",
			Instr{Op: CCopy, D: 10, DW: 80, A: 0, AW: 80},
			Instr{Op: CMux, D: 11, DW: 16, A: 1, AW: 1, B: 10, BW: 16, C: 2}},
		{"wide-second", add,
			Instr{Op: CCopy, D: 11, DW: 80, A: 10, AW: 80}},
		{"memread-producer", // not a pure value producer
			Instr{Op: CMemRead, D: 10, DW: 8, A: 0, AW: 4, Lo: 0},
			Instr{Op: CCopy, D: 11, DW: 8, A: 10, AW: 8}},
		{"orr-after-or", // the orr tail is only defined for the and producer
			Instr{Op: COr, D: 10, DW: 16, A: 0, AW: 16, B: 1, BW: 16},
			Instr{Op: COrR, D: 11, DW: 1, A: 10, AW: 16}},
	}
	for _, c := range cases {
		if got := MatchFusion(c.a, c.b); got != FuseNone {
			t.Fatalf("%s: MatchFusion = %s, want none", c.name, got)
		}
	}
}

// widthClassExpectation is the per-opcode classification at a representative
// 2-word shape. TestWidthClassCoverage sweeps the full opcode enumeration
// against it, so a new opcode cannot land without declaring (and, for
// WC2Word, exercising) its width class.
var widthClassExpectation = map[OpCode]WidthClass{
	CCopy: WC2Word, CAdd: WC2Word, CSub: WC2Word, CAnd: WC2Word, COr: WC2Word,
	CXor: WC2Word, CNot: WC2Word, CMux: WC2Word, CEq: WC2Word, CNeq: WC2Word,
	CMul: WCWide, CDiv: WCWide, CRem: WCWide, CNeg: WCWide,
	CAndR: WCWide, COrR: WCWide, CXorR: WCWide,
	CLt: WCWide, CLeq: WCWide, CGt: WCWide, CGeq: WCWide,
	CSLt: WCWide, CSLeq: WCWide, CSGt: WCWide, CSGeq: WCWide,
	CShl: WCWide, CShr: WCWide, CDshl: WCWide, CDshr: WCWide,
	CCat: WCWide, CBits: WCWide, CSExt: WCWide, CMemRead: WCWide,
}

// instr2W builds the representative 2-word-shape instruction for an opcode.
func instr2W(op OpCode, dw, aw, bw int32) Instr {
	in := Instr{Op: op, D: 12, DW: dw, A: 0, AW: aw, B: 4, BW: bw}
	if op == CMux {
		in.A, in.AW = 8, 1 // one-word selector
		in.B, in.BW = 0, aw
		in.C = 4
	}
	if op == CEq || op == CNeq {
		in.DW = 1
	}
	return in
}

// TestWidthClassCoverage sweeps every opcode through the width classifier at
// a 96-bit shape and pins the expected class; narrow shapes must classify
// WCNarrow for every opcode. A missing map entry is a failure, so the opcode
// and width-class enumerations stay covered together.
func TestWidthClassCoverage(t *testing.T) {
	for op := CCopy; op < OpCode(numOpCodes); op++ {
		want, ok := widthClassExpectation[op]
		if !ok {
			t.Fatalf("opcode %d has no width-class expectation — extend widthClassExpectation", op)
		}
		if got := classOf(instr2W(op, 96, 96, 96)); got != want {
			t.Fatalf("opcode %d at 96 bits: class %s, want %s", op, got, want)
		}
		narrow := Instr{Op: op, DW: 8, AW: 8, BW: 8}
		if got := classOf(narrow); got != WCNarrow {
			t.Fatalf("opcode %d at 8 bits: class %s, want narrow", op, got)
		}
	}
}

// TestWidthClass2WordMatchesWide executes every 2-word kernel against the
// execWide reference over randomized canonical state, across width shapes
// that exercise zero extension (one-word operands into two-word results),
// truncation (wider-than-class operands), and the top-word mask.
func TestWidthClass2WordMatchesWide(t *testing.T) {
	shapes := []struct{ dw, aw, bw int32 }{
		{96, 96, 96}, {128, 128, 128}, {65, 65, 65},
		{96, 40, 96}, {96, 96, 40}, {70, 64, 70}, {128, 1, 128},
	}
	eqShapes := []struct{ dw, aw, bw int32 }{
		{1, 96, 96}, {1, 65, 128}, {1, 96, 20}, {1, 20, 96}, {1, 128, 128},
	}
	rng := rand.New(rand.NewSource(11))
	for op, class := range widthClassExpectation {
		if class != WC2Word {
			continue
		}
		sh := shapes
		if op == CEq || op == CNeq {
			sh = eqShapes
		}
		for _, s := range sh {
			in := instr2W(op, s.dw, s.aw, s.bw)
			if classOf(in) != WC2Word {
				t.Fatalf("op %d shape %+v: expected 2-word class", op, s)
			}
			for trial := 0; trial < 100; trial++ {
				p := &Program{NumWords: 16}
				ref := NewMachine(p)
				bnd := NewMachine(p)
				bfn := compile2WBound(bnd, in)
				if bfn == nil {
					t.Fatalf("op %d shape %+v: no bound 2-word kernel", op, s)
				}
				for w := range ref.State {
					ref.State[w] = rng.Uint64()
				}
				// Canonicalize the operand slots to their widths.
				operands := []struct {
					off int32
					w   int32
				}{{in.A, in.AW}, {in.B, in.BW}}
				if in.Op == CMux {
					operands = append(operands, struct {
						off int32
						w   int32
					}{in.C, in.BW})
				}
				for _, o := range operands {
					words := wordsFor32(o.w)
					if words == 0 {
						continue
					}
					ref.State[o.off+words-1] &= bitvec.TopMask(int(o.w))
				}
				copy(bnd.State, ref.State)
				wide := in
				ref.execWide(&wide)
				bfn()
				for w := range ref.State {
					if ref.State[w] != bnd.State[w] {
						t.Fatalf("op %d shape %+v trial %d: state word %d: execWide %#x vs bound 2-word kernel %#x",
							op, s, trial, w, ref.State[w], bnd.State[w])
					}
				}
			}
		}
	}
}
