package emit

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// TestKernelMatchesInterp is the kernel-level property test: for random
// expression trees (narrow and wide), the closure-threaded kernel sweep must
// leave the machine in the exact state the interpreter leaves it in — every
// word, including temporaries.
func TestKernelMatchesInterp(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := ir.NewBuilder(fmt.Sprintf("k%d", seed))
		var inputs []*ir.Node
		vals := map[*ir.Node]bitvec.BV{}
		for i := 0; i < 4; i++ {
			w := 1 + rng.Intn(130)
			in := b.Input(fmt.Sprintf("i%d", i), w)
			inputs = append(inputs, in)
			v := bitvec.New(w)
			for j := range v.W {
				v.W[j] = rng.Uint64()
			}
			vals[in] = bitvec.FromWords(w, v.W)
		}
		e := randExpr(rng, b, inputs, 5)
		p, _ := compileExpr(t, inputs, b.G, e)
		p.BuildKernels()
		if len(p.Kernels) != len(p.Instrs) {
			t.Fatalf("seed %d: %d kernels for %d instructions", seed, len(p.Kernels), len(p.Instrs))
		}

		mi := NewMachine(p)
		mk := NewMachine(p)
		for _, in := range inputs {
			mi.Poke(in.ID, vals[in])
			mk.Poke(in.ID, vals[in])
		}
		mi.Exec(0, int32(len(p.Instrs)))
		mk.ExecKernel(0, int32(len(p.Instrs)))
		for w := range mi.State {
			if mi.State[w] != mk.State[w] {
				t.Fatalf("seed %d: state word %d: interp %#x vs kernel %#x\nexpr: %s",
					seed, w, mi.State[w], mk.State[w], e)
			}
		}
	}
}

// TestKernelOpcodeCoverage pins the contract the engines rely on: every
// opcode in the enumeration compiles to a kernel — a specialized narrow
// closure when all operands fit one word, and the explicit interpreter
// fallback (execWide) otherwise. A new opcode added without a kernel makes
// compileKernel panic, which this sweep turns into a test failure.
func TestKernelOpcodeCoverage(t *testing.T) {
	p := &Program{Mems: []MemSpec{{Depth: 2, Width: 8, WordsPer: 1, Init: make([]uint64, 2)}}}
	for op := int(CCopy); op < numOpCodes; op++ {
		narrow := Instr{Op: OpCode(op), DW: 8, AW: 8, BW: 8}
		if fn := mustCompile(t, p, narrow); fn == nil {
			t.Fatalf("opcode %d: no narrow kernel", op)
		}
		wide := Instr{Op: OpCode(op), DW: 128, AW: 128, BW: 128}
		if fn := mustCompile(t, p, wide); fn == nil {
			t.Fatalf("opcode %d: no wide fallback", op)
		}
	}
}

func mustCompile(t *testing.T, p *Program, in Instr) (fn KernelFn) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("opcode %d (widths %d/%d/%d): compileKernel panicked: %v", in.Op, in.DW, in.AW, in.BW, r)
		}
	}()
	return compileKernel(p, in)
}

// TestBuildKernelsIdempotent: building twice must not reallocate the table
// (engines sharing a program may all request kernels).
func TestBuildKernelsIdempotent(t *testing.T) {
	b := ir.NewBuilder("idem")
	in := b.Input("i", 8)
	p, _ := compileExpr(t, []*ir.Node{in}, b.G, b.Add(ir.Ref(in), ir.Ref(in)))
	p.BuildKernels()
	first := &p.Kernels[0]
	p.BuildKernels()
	if first != &p.Kernels[0] {
		t.Fatal("BuildKernels rebuilt the table")
	}
}
