package emit

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// TestKernelMatchesInterp is the kernel-level property test for the
// baseline table (the -eval kernel-nofuse production path): for random
// expression trees (narrow and wide), the closure-threaded kernel sweep must
// leave the machine in the exact state the interpreter leaves it in — every
// word, including temporaries.
func TestKernelMatchesInterp(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := ir.NewBuilder(fmt.Sprintf("k%d", seed))
		var inputs []*ir.Node
		vals := map[*ir.Node]bitvec.BV{}
		for i := 0; i < 4; i++ {
			w := 1 + rng.Intn(130)
			in := b.Input(fmt.Sprintf("i%d", i), w)
			inputs = append(inputs, in)
			v := bitvec.New(w)
			for j := range v.W {
				v.W[j] = rng.Uint64()
			}
			vals[in] = bitvec.FromWords(w, v.W)
		}
		e := randExpr(rng, b, inputs, 5)
		p, _ := compileExpr(t, inputs, b.G, e)
		p.BuildKernelsBase()
		if len(p.KernelsBase) != len(p.Instrs) {
			t.Fatalf("seed %d: %d kernels for %d instructions", seed, len(p.KernelsBase), len(p.Instrs))
		}

		mi := NewMachine(p)
		mk := NewMachine(p)
		for _, in := range inputs {
			mi.Poke(in.ID, vals[in])
			mk.Poke(in.ID, vals[in])
		}
		mi.Exec(0, int32(len(p.Instrs)))
		mk.ExecKernelBase(0, int32(len(p.Instrs)))
		for w := range mi.State {
			if mi.State[w] != mk.State[w] {
				t.Fatalf("seed %d: state word %d: interp %#x vs kernel %#x\nexpr: %s",
					seed, w, mi.State[w], mk.State[w], e)
			}
		}
	}
}

// TestKernelOpcodeCoverage pins the contract the engines rely on: every
// opcode in the enumeration compiles in both production compilers — the
// baseline table (compileKernelBase: specialized narrow closure, execWide
// fallback) and the bound-chain compiler (compileKernelBound) — so a new
// opcode added without kernels fails the sweep instead of panicking at
// engine construction.
func TestKernelOpcodeCoverage(t *testing.T) {
	p := &Program{NumWords: 8, Mems: []MemSpec{{Depth: 2, Width: 8, WordsPer: 1, Init: make([]uint64, 2)}}}
	mach := NewMachine(p)
	// The bound compiler adapted to the shared sweep signature.
	bound := func(_ *Program, in Instr) KernelFn {
		bf := compileKernelBound(mach, in)
		if bf == nil {
			return nil
		}
		return func(_ []uint64, _ *Machine) { bf() }
	}
	compilers := []struct {
		name    string
		compile func(*Program, Instr) KernelFn
	}{{"base", compileKernelBase}, {"bound", bound}}
	for op := int(CCopy); op < numOpCodes; op++ {
		narrow := Instr{Op: OpCode(op), DW: 8, AW: 8, BW: 8}
		wide := Instr{Op: OpCode(op), DW: 128, AW: 128, BW: 128}
		for _, c := range compilers {
			if fn := mustCompile(t, p, narrow, c.compile); fn == nil {
				t.Fatalf("opcode %d: no %s narrow kernel", op, c.name)
			}
			if fn := mustCompile(t, p, wide, c.compile); fn == nil {
				t.Fatalf("opcode %d: no %s wide fallback", op, c.name)
			}
		}
	}
}

func mustCompile(t *testing.T, p *Program, in Instr, compile func(*Program, Instr) KernelFn) (fn KernelFn) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("opcode %d (widths %d/%d/%d): compile panicked: %v", in.Op, in.DW, in.AW, in.BW, r)
		}
	}()
	return compile(p, in)
}

// TestBuildKernelsIdempotent: building twice must not reallocate the table
// (engines sharing a program may all request kernels). Same contract for the
// baseline table.
func TestBuildKernelsIdempotent(t *testing.T) {
	b := ir.NewBuilder("idem")
	in := b.Input("i", 8)
	p, _ := compileExpr(t, []*ir.Node{in}, b.G, b.Add(ir.Ref(in), ir.Ref(in)))
	p.BuildKernelsBase()
	first := &p.KernelsBase[0]
	p.BuildKernelsBase()
	if first != &p.KernelsBase[0] {
		t.Fatal("BuildKernelsBase rebuilt the table")
	}
}

// TestChainMatchesInterp is the chain-level property test: for random
// expression trees (narrow and wide), the fused chain — superinstructions,
// width classes, and all — must leave the machine in the exact state the
// interpreter leaves it in, every word including temporaries. It also pins
// that fusion only ever shrinks the closure count, never the semantics.
func TestChainMatchesInterp(t *testing.T) {
	for seed := int64(300); seed < 360; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := ir.NewBuilder(fmt.Sprintf("c%d", seed))
		var inputs []*ir.Node
		vals := map[*ir.Node]bitvec.BV{}
		for i := 0; i < 4; i++ {
			w := 1 + rng.Intn(130)
			in := b.Input(fmt.Sprintf("i%d", i), w)
			inputs = append(inputs, in)
			v := bitvec.New(w)
			for j := range v.W {
				v.W[j] = rng.Uint64()
			}
			vals[in] = bitvec.FromWords(w, v.W)
		}
		e := randExpr(rng, b, inputs, 6)
		p, _ := compileExpr(t, inputs, b.G, e)

		mi := NewMachine(p)
		mb := NewMachine(p)
		bfns := p.CompileChainBound(mb, p.Instrs)
		if len(bfns) > len(p.Instrs) {
			t.Fatalf("seed %d: chain grew: %d closures for %d instructions", seed, len(bfns), len(p.Instrs))
		}
		for _, in := range inputs {
			mi.Poke(in.ID, vals[in])
			mb.Poke(in.ID, vals[in])
		}
		mi.Exec(0, int32(len(p.Instrs)))
		for _, f := range bfns {
			f()
		}
		for w := range mi.State {
			if mi.State[w] != mb.State[w] {
				t.Fatalf("seed %d: state word %d: interp %#x vs bound chain %#x\nexpr: %s",
					seed, w, mi.State[w], mb.State[w], e)
			}
		}
	}
}
